// DMA consistency (§1, §2.5): a device reading buffers straight from main
// memory sees stale data unless the CPU explicitly writes its cached copy
// back first. The "device" here reads the simulated DRAM directly — exactly
// what a non-coherent DMA engine does — while the CPU prepares a buffer in
// its writeback caches.
package main

import (
	"fmt"

	"skipit"
)

const bufBase = 0x4000
const bufLines = 8

// deviceRead models a DMA engine pulling the buffer from main memory,
// bypassing the CPU caches.
func deviceRead(sys *skipit.System) []uint64 {
	out := make([]uint64, bufLines)
	for i := range out {
		out[i] = skipit.NVMMValue(sys, bufBase+uint64(i)*64)
	}
	return out
}

func prepare(withClean bool) *skipit.Program {
	b := skipit.NewProgram()
	for i := 0; i < bufLines; i++ {
		b.Store(bufBase+uint64(i)*64, uint64(100+i))
	}
	if withClean {
		for i := 0; i < bufLines; i++ {
			b.CboClean(bufBase + uint64(i)*64)
		}
	}
	b.Fence()
	return b.Build()
}

func run(withClean bool) {
	sys := skipit.NewSystem(1)
	if _, err := sys.Run([]*skipit.Program{prepare(withClean)}, 1_000_000); err != nil {
		panic(err)
	}
	got := deviceRead(sys)
	ok := true
	for i, v := range got {
		if v != uint64(100+i) {
			ok = false
		}
	}
	mode := "store + fence only      "
	if withClean {
		mode = "store + CBO.CLEAN + fence"
	}
	fmt.Printf("%s -> device sees %v", mode, got)
	if ok {
		fmt.Println("  (complete: DMA-safe)")
	} else {
		fmt.Println("  (STALE: the buffer is still in the CPU caches)")
	}
}

func main() {
	fmt.Println("device performs DMA reads from main memory, bypassing CPU caches:")
	run(false) // fence alone orders, but does not write anything back
	run(true)  // explicit clean makes the buffer visible to the device
}
