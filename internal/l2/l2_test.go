package l2

import (
	"testing"

	"skipit/internal/mem"
	"skipit/internal/tilelink"
)

// rig drives the L2 directly over hand-held client ports, playing the role
// of the L1s.
type rig struct {
	t     *testing.T
	c     *Cache
	m     *mem.Memory
	ports []*tilelink.ClientPort
	now   int64
}

func newRig(t *testing.T, clients int) *rig {
	t.Helper()
	ports := make([]*tilelink.ClientPort, clients)
	for i := range ports {
		ports[i] = tilelink.NewClientPort("t", 16, 64, 1)
	}
	m := mem.New(mem.DefaultConfig())
	cfg := DefaultConfig(clients)
	return &rig{t: t, c: New(cfg, ports, m), m: m, ports: ports}
}

func (r *rig) step() {
	r.m.Tick(r.now)
	r.c.Tick(r.now)
	r.now++
}

// send pushes a client->manager message, retrying while the link is busy.
func (r *rig) send(client int, m tilelink.Msg) {
	r.t.Helper()
	var link *tilelink.Link
	switch m.Op.Chan() {
	case tilelink.ChannelA:
		link = r.ports[client].A
	case tilelink.ChannelC:
		link = r.ports[client].C
	case tilelink.ChannelE:
		link = r.ports[client].E
	default:
		r.t.Fatalf("send on manager channel %v", m.Op.Chan())
	}
	for i := 0; i < 100; i++ {
		if link.Send(r.now, m) {
			return
		}
		r.step()
	}
	r.t.Fatalf("link busy for 100 cycles sending %v", m)
}

// expect steps until a B- or D-channel message arrives for client, with a
// bound.
func (r *rig) expect(client int, limit int) tilelink.Msg {
	r.t.Helper()
	for i := 0; i < limit; i++ {
		if m, ok := r.ports[client].B.Recv(r.now); ok {
			return m
		}
		if m, ok := r.ports[client].D.Recv(r.now); ok {
			return m
		}
		r.step()
	}
	r.t.Fatalf("no message for client %d within %d cycles", client, limit)
	return tilelink.Msg{}
}

// acquire performs a full Acquire->Grant->GrantAck transaction.
func (r *rig) acquire(client int, addr uint64, grow tilelink.Grow) tilelink.Msg {
	r.t.Helper()
	r.send(client, tilelink.Msg{Op: tilelink.OpAcquireBlock, Addr: addr, Source: client, Grow: grow})
	g := r.expect(client, 500)
	if g.Op != tilelink.OpGrantData && g.Op != tilelink.OpGrantDataDirty {
		r.t.Fatalf("acquire got %v, want GrantData*", g)
	}
	r.send(client, tilelink.Msg{Op: tilelink.OpGrantAck, Addr: addr, Source: client})
	r.step()
	return g
}

func TestAcquireMissReadsMemoryAndGrants(t *testing.T) {
	r := newRig(t, 1)
	r.m.PokeUint64(0x1000, 77)
	g := r.acquire(0, 0x1000, tilelink.GrowNtoT)
	if g.Op != tilelink.OpGrantData {
		t.Fatalf("clean line granted as %v", g.Op)
	}
	if g.Cap != tilelink.CapToT {
		t.Fatalf("NtoT acquire granted cap %v", g.Cap)
	}
	if got := uint64(g.Data[0]); got != 77 {
		t.Fatalf("granted data %d, want 77", got)
	}
	st := r.c.LineState(0x1000)
	if !st.Present || st.Perms[0] != tilelink.PermTrunk {
		t.Fatalf("directory after grant: %+v", st)
	}
	if r.c.Stats().MemReads != 1 {
		t.Fatal("no memory read for the miss")
	}
}

func TestSecondAcquireHitsL2(t *testing.T) {
	r := newRig(t, 1)
	r.acquire(0, 0x1000, tilelink.GrowNtoB)
	reads := r.c.Stats().MemReads
	// Client silently dropped its clean branch copy; re-acquire.
	r.acquire(0, 0x1000, tilelink.GrowNtoB)
	if r.c.Stats().MemReads != reads {
		t.Fatal("L2 hit went to memory")
	}
}

func TestExclusiveAcquireProbesSharer(t *testing.T) {
	r := newRig(t, 2)
	r.acquire(0, 0x1000, tilelink.GrowNtoB)
	// Client 1 wants it exclusively; client 0 must be probed toN.
	r.send(1, tilelink.Msg{Op: tilelink.OpAcquireBlock, Addr: 0x1000, Source: 1, Grow: tilelink.GrowNtoT})
	probe := r.expect(0, 500)
	if probe.Op != tilelink.OpProbe || probe.Cap != tilelink.CapToN {
		t.Fatalf("sharer got %v, want Probe toN", probe)
	}
	r.send(0, tilelink.Msg{Op: tilelink.OpProbeAck, Addr: 0x1000, Source: 0, Shrink: tilelink.ShrinkBtoN})
	g := r.expect(1, 500)
	if g.Op != tilelink.OpGrantData {
		t.Fatalf("client 1 got %v", g)
	}
	r.send(1, tilelink.Msg{Op: tilelink.OpGrantAck, Addr: 0x1000, Source: 1})
	r.step()
	st := r.c.LineState(0x1000)
	if st.Perms[0] != tilelink.PermNone || st.Perms[1] != tilelink.PermTrunk {
		t.Fatalf("directory %v after exclusive acquire", st.Perms)
	}
}

func TestSharedAcquireDowngradesTrunkAndGrantsDirty(t *testing.T) {
	r := newRig(t, 2)
	r.acquire(0, 0x1000, tilelink.GrowNtoT)
	// Client 1 reads: client 0 is probed toB and surrenders dirty data;
	// client 1's grant must be GrantDataDirty (skip bit stays unset, §6).
	r.send(1, tilelink.Msg{Op: tilelink.OpAcquireBlock, Addr: 0x1000, Source: 1, Grow: tilelink.GrowNtoB})
	probe := r.expect(0, 500)
	if probe.Cap != tilelink.CapToB {
		t.Fatalf("trunk owner probed %v, want toB", probe.Cap)
	}
	dirty := make([]byte, 64)
	dirty[0] = 99
	r.send(0, tilelink.Msg{Op: tilelink.OpProbeAckData, Addr: 0x1000, Source: 0,
		Shrink: tilelink.ShrinkTtoB, Data: dirty})
	g := r.expect(1, 500)
	if g.Op != tilelink.OpGrantDataDirty {
		t.Fatalf("grant of L2-dirty line = %v, want GrantDataDirty", g.Op)
	}
	if g.Data[0] != 99 {
		t.Fatal("grant missed the probed dirty data")
	}
	r.send(1, tilelink.Msg{Op: tilelink.OpGrantAck, Addr: 0x1000, Source: 1})
	r.step()
	if !r.c.LineState(0x1000).Dirty {
		t.Fatal("L2 lost the dirty bit after ProbeAckData")
	}
}

func TestVoluntaryReleaseData(t *testing.T) {
	r := newRig(t, 1)
	r.acquire(0, 0x1000, tilelink.GrowNtoT)
	data := make([]byte, 64)
	data[0] = 5
	r.send(0, tilelink.Msg{Op: tilelink.OpReleaseData, Addr: 0x1000, Source: 0,
		Shrink: tilelink.ShrinkTtoN, Data: data})
	ack := r.expect(0, 200)
	if ack.Op != tilelink.OpReleaseAck {
		t.Fatalf("release answered with %v", ack.Op)
	}
	st := r.c.LineState(0x1000)
	if !st.Dirty || st.Perms[0] != tilelink.PermNone {
		t.Fatalf("state after release: %+v", st)
	}
}

func TestRootReleaseFlushWritesBackAndInvalidates(t *testing.T) {
	r := newRig(t, 1)
	r.acquire(0, 0x1000, tilelink.GrowNtoT)
	dirty := make([]byte, 64)
	dirty[0] = 123
	// The L1's FSHR invalidated its copy and ships the dirty line (§5.5).
	r.send(0, tilelink.Msg{Op: tilelink.OpRootReleaseFlushData, Addr: 0x1000, Source: 0,
		Dirty: true, Data: dirty})
	ack := r.expect(0, 500)
	if ack.Op != tilelink.OpRootReleaseAck {
		t.Fatalf("RootRelease answered with %v", ack.Op)
	}
	if got := r.m.PeekUint64(0x1000); got != 123 {
		t.Fatalf("DRAM = %d after RootReleaseFlush, want 123", got)
	}
	if r.c.LineState(0x1000).Present {
		t.Fatal("flush left the line in L2")
	}
}

func TestRootReleaseCleanKeepsLine(t *testing.T) {
	r := newRig(t, 1)
	r.acquire(0, 0x1000, tilelink.GrowNtoT)
	dirty := make([]byte, 64)
	dirty[0] = 9
	r.send(0, tilelink.Msg{Op: tilelink.OpRootReleaseCleanData, Addr: 0x1000, Source: 0,
		Dirty: true, Data: dirty})
	if ack := r.expect(0, 500); ack.Op != tilelink.OpRootReleaseAck {
		t.Fatalf("got %v", ack.Op)
	}
	st := r.c.LineState(0x1000)
	if !st.Present {
		t.Fatal("clean dropped the L2 line")
	}
	if st.Dirty {
		t.Fatal("clean left the L2 dirty bit")
	}
	if st.Perms[0] != tilelink.PermTrunk {
		t.Fatal("clean revoked the requester's permissions")
	}
	if r.m.PeekUint64(0x1000) != 9 {
		t.Fatal("clean did not reach DRAM")
	}
}

func TestRootReleaseProbesRemoteOwner(t *testing.T) {
	// §5.5: the flush must extract dirty data from other cores even when
	// the requester never owned the line.
	r := newRig(t, 2)
	r.acquire(0, 0x1000, tilelink.GrowNtoT) // core 0 will hold dirty data
	r.send(1, tilelink.Msg{Op: tilelink.OpRootReleaseFlush, Addr: 0x1000, Source: 1})
	probe := r.expect(0, 500)
	if probe.Op != tilelink.OpProbe || probe.Cap != tilelink.CapToN {
		t.Fatalf("owner got %v, want Probe toN", probe)
	}
	dirty := make([]byte, 64)
	dirty[0] = 55
	r.send(0, tilelink.Msg{Op: tilelink.OpProbeAckData, Addr: 0x1000, Source: 0,
		Shrink: tilelink.ShrinkTtoN, Data: dirty})
	if ack := r.expect(1, 500); ack.Op != tilelink.OpRootReleaseAck {
		t.Fatalf("got %v", ack.Op)
	}
	if r.m.PeekUint64(0x1000) != 55 {
		t.Fatal("remote dirty data did not reach DRAM")
	}
}

func TestRootReleaseCleanDoesNotProbeRequester(t *testing.T) {
	r := newRig(t, 1)
	r.acquire(0, 0x1000, tilelink.GrowNtoT)
	r.send(0, tilelink.Msg{Op: tilelink.OpRootReleaseClean, Addr: 0x1000, Source: 0})
	if ack := r.expect(0, 500); ack.Op != tilelink.OpRootReleaseAck {
		t.Fatalf("got %v (the requester must not be probed on a clean)", ack.Op)
	}
	if r.c.Stats().ProbesSent != 0 {
		t.Fatal("clean probed the requester")
	}
}

func TestRootReleaseOfAbsentLineAcksImmediately(t *testing.T) {
	r := newRig(t, 1)
	r.send(0, tilelink.Msg{Op: tilelink.OpRootReleaseFlush, Addr: 0x9000, Source: 0})
	if ack := r.expect(0, 500); ack.Op != tilelink.OpRootReleaseAck {
		t.Fatalf("got %v", ack.Op)
	}
	if r.c.Stats().RootReleaseSkips != 1 {
		t.Fatal("absent-line RootRelease not counted as trivial skip")
	}
}

func TestTrivialSkipAvoidsMemoryWrite(t *testing.T) {
	// §5.5/§7.4: the LLC eliminates writebacks of clean lines by checking
	// its dirty bit.
	r := newRig(t, 1)
	r.acquire(0, 0x1000, tilelink.GrowNtoT)
	writes := r.m.Stats().Writes
	r.send(0, tilelink.Msg{Op: tilelink.OpRootReleaseClean, Addr: 0x1000, Source: 0})
	if ack := r.expect(0, 500); ack.Op != tilelink.OpRootReleaseAck {
		t.Fatalf("got %v", ack.Op)
	}
	if r.m.Stats().Writes != writes {
		t.Fatal("clean of a clean line wrote memory")
	}
}

func TestEvictionProbesAndWritesBack(t *testing.T) {
	r := newRig(t, 1)
	cfg := r.c.Config()
	// Fill one set beyond capacity: addresses with identical set index.
	stride := uint64(cfg.Sets) * cfg.LineBytes
	for w := 0; w <= cfg.Ways; w++ {
		addr := uint64(w) * stride
		r.send(0, tilelink.Msg{Op: tilelink.OpAcquireBlock, Addr: addr, Source: 0, Grow: tilelink.GrowNtoT})
		// The (Ways+1)-th acquire forces an eviction whose victim we
		// still own: answer the probe, then take the grant.
		for {
			m := r.expect(0, 2000)
			if m.Op == tilelink.OpProbe {
				r.send(0, tilelink.Msg{Op: tilelink.OpProbeAck, Addr: m.Addr, Source: 0,
					Shrink: tilelink.ShrinkTtoN})
				continue
			}
			if m.Op == tilelink.OpGrantData || m.Op == tilelink.OpGrantDataDirty {
				r.send(0, tilelink.Msg{Op: tilelink.OpGrantAck, Addr: addr, Source: 0})
				r.step()
				break
			}
			t.Fatalf("unexpected %v", m)
		}
	}
	if r.c.Stats().Evictions == 0 {
		t.Fatal("no eviction despite over-capacity set")
	}
	// The first line must be gone (inclusive eviction).
	if r.c.LineState(0).Present {
		t.Fatal("victim still present")
	}
}

func TestBusyAndReset(t *testing.T) {
	r := newRig(t, 1)
	if r.c.Busy() {
		t.Fatal("fresh L2 busy")
	}
	r.send(0, tilelink.Msg{Op: tilelink.OpAcquireBlock, Addr: 0x1000, Source: 0, Grow: tilelink.GrowNtoB})
	for i := 0; i < 5; i++ {
		r.step()
	}
	if !r.c.Busy() {
		t.Fatal("L2 idle with transaction in flight")
	}
	r.c.Reset()
	if r.c.Busy() {
		t.Fatal("L2 busy after reset")
	}
	if r.c.LineState(0x1000).Present {
		t.Fatal("line survived reset")
	}
}

func TestManyRootReleasesPipelineThroughMSHRs(t *testing.T) {
	// More concurrent RootReleases than MSHRs: the ListBuffer absorbs the
	// overflow and every request is eventually acknowledged.
	r := newRig(t, 1)
	n := r.c.Config().NumMSHRs * 3
	for i := 0; i < n; i++ {
		r.send(0, tilelink.Msg{Op: tilelink.OpRootReleaseFlush, Addr: uint64(i) * 64, Source: 0})
	}
	acks := 0
	for i := 0; i < 20_000 && acks < n; i++ {
		if m, ok := r.ports[0].D.Recv(r.now); ok {
			if m.Op != tilelink.OpRootReleaseAck {
				t.Fatalf("unexpected %v", m)
			}
			acks++
		}
		r.step()
	}
	if acks != n {
		t.Fatalf("%d/%d RootReleases acknowledged", acks, n)
	}
}

func TestSameLineRootReleasesSerializeInOrder(t *testing.T) {
	// Two back-to-back RootReleases for the same line: the ListBuffer must
	// serialize them (one MSHR per line), both get acknowledged, and only
	// the first (dirty) one writes memory — the second hits the §5.5
	// trivial skip.
	r := newRig(t, 1)
	r.acquire(0, 0x1000, tilelink.GrowNtoT)
	dirty := make([]byte, 64)
	dirty[0] = 77
	r.send(0, tilelink.Msg{Op: tilelink.OpRootReleaseCleanData, Addr: 0x1000, Source: 0,
		Dirty: true, Data: dirty})
	r.send(0, tilelink.Msg{Op: tilelink.OpRootReleaseClean, Addr: 0x1000, Source: 0})

	acks := 0
	for i := 0; i < 20_000 && acks < 2; i++ {
		if m, ok := r.ports[0].D.Recv(r.now); ok {
			if m.Op != tilelink.OpRootReleaseAck {
				t.Fatalf("unexpected %v", m)
			}
			acks++
		}
		r.step()
	}
	if acks != 2 {
		t.Fatalf("%d acks, want 2", acks)
	}
	if r.m.PeekUint64(0x1000) != 77 {
		t.Fatal("dirty data did not reach memory")
	}
	if got := r.m.Stats().Writes; got != 1 {
		t.Fatalf("memory writes = %d, want 1 (second clean trivially skipped)", got)
	}
	if r.c.Stats().RootReleaseSkips != 1 {
		t.Fatalf("trivial skips = %d, want 1", r.c.Stats().RootReleaseSkips)
	}
}

func TestGrantAfterFlushIsCleanGrantData(t *testing.T) {
	// After a flush wrote the line to DRAM, a re-acquire gets GrantData
	// (not Dirty): the refill comes from memory, so the skip bit is valid.
	r := newRig(t, 1)
	r.acquire(0, 0x1000, tilelink.GrowNtoT)
	dirty := make([]byte, 64)
	r.send(0, tilelink.Msg{Op: tilelink.OpRootReleaseFlushData, Addr: 0x1000, Source: 0,
		Dirty: true, Data: dirty})
	if ack := r.expect(0, 1000); ack.Op != tilelink.OpRootReleaseAck {
		t.Fatalf("got %v", ack.Op)
	}
	g := r.acquire(0, 0x1000, tilelink.GrowNtoT)
	if g.Op != tilelink.OpGrantData {
		t.Fatalf("post-flush grant = %v, want clean GrantData", g.Op)
	}
}
