package tlctest

import (
	"encoding/json"
	"os"
	"strconv"
	"testing"
)

// parVerdict flattens an episode result for byte comparison, optionally
// zeroing the skipped-cycle count (shards fast-forward locally, so the skip
// total is the one stat outside the serial/parallel identity contract — it
// is still identical across worker counts).
func parVerdict(t *testing.T, fail *Failure, st Stats, dropSkipped bool) string {
	t.Helper()
	if dropSkipped {
		st.Skipped = 0
	}
	raw, err := json.Marshal(struct {
		Fail  *Failure `json:"fail"`
		Stats Stats    `json:"stats"`
	}{fail, st})
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestEpisodeParallelSweep runs a randomized episode sweep serially and on
// 1, 2 and 4 workers: every parallel verdict must be byte-identical across
// worker counts, and identical to serial up to the skipped-cycle count.
// SKIPIT_PDES_EPISODES overrides the sweep size; CI's pdes-smoke job sets it
// to 10000 (plain and -race) while the default keeps `go test ./...` fast.
func TestEpisodeParallelSweep(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 10
	}
	if env := os.Getenv("SKIPIT_PDES_EPISODES"); env != "" {
		v, err := strconv.Atoi(env)
		if err != nil || v < 1 {
			t.Fatalf("bad SKIPIT_PDES_EPISODES %q", env)
		}
		n = v
	}
	for seed := int64(0); seed < int64(n); seed++ {
		s := BuildScript(DefaultParams(seed))
		serialFail, serialSt := RunScript(s)
		serial := parVerdict(t, serialFail, serialSt, true)
		ref := ""
		for _, workers := range []int{1, 2, 4} {
			fail, st := RunScriptParallel(s, workers)
			if got := parVerdict(t, fail, st, true); got != serial {
				t.Fatalf("seed %d parallel=%d diverged from serial:\n%s\nvs\n%s",
					seed, workers, got, serial)
			}
			full := parVerdict(t, fail, st, false)
			if ref == "" {
				ref = full
			} else if full != ref {
				t.Fatalf("seed %d parallel=%d not byte-identical across worker counts:\n%s\nvs\n%s",
					seed, workers, full, ref)
			}
		}
	}
}

// TestEpisodeParallelCatchesMutations replays the litmus-race mutation
// episodes on a parallel fabric: the scoreboard oracle must still convict
// every armed bug, with the same verdict serial reaches.
func TestEpisodeParallelCatchesMutations(t *testing.T) {
	for name, script := range map[string]Script{
		"race1": race1Script(true),
		"race2": race2Script(true),
	} {
		serialFail, _ := RunScript(script)
		if serialFail == nil {
			t.Fatalf("%s: serial run passed with the bug armed", name)
		}
		for _, workers := range []int{1, 2} {
			fail, _ := RunScriptParallel(script, workers)
			if fail == nil {
				t.Fatalf("%s: parallel=%d run passed, serial convicted: %s",
					name, workers, serialFail.Message)
			}
			if fail.Kind != serialFail.Kind || fail.Cycle != serialFail.Cycle ||
				fail.Message != serialFail.Message {
				t.Fatalf("%s: parallel=%d verdict %s@%d %q, serial %s@%d %q", name, workers,
					fail.Kind, fail.Cycle, fail.Message, serialFail.Kind, serialFail.Cycle, serialFail.Message)
			}
		}
	}
}
