package main

import (
	"strings"
	"testing"
)

func TestDedupIdenticalFindings(t *testing.T) {
	in := `[
		{"file": "/repo/internal/sim/sim.go", "line": 10, "col": 3, "analyzer": "hotalloc", "message": "allocation in hot path"},
		{"file": "/repo/internal/sim/sim.go", "line": 10, "col": 3, "analyzer": "hotalloc", "message": "allocation in hot path"},
		{"file": "/repo/internal/sim/sim.go", "line": 10, "col": 3, "analyzer": "detflow", "message": "allocation in hot path"},
		{"file": "/repo/internal/sim/sim.go", "line": 10, "col": 7, "analyzer": "hotalloc", "message": "allocation in hot path"}
	]`
	var out, errw strings.Builder
	if code := run(strings.NewReader(in), &out, &errw, "/repo"); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	lines := nonEmptyLines(out.String())
	if len(lines) != 3 {
		t.Fatalf("got %d annotations, want 3 (one duplicate dropped):\n%s", len(lines), out.String())
	}
	want := "::error file=internal/sim/sim.go,line=10,col=3,title=skipit-vet/hotalloc::allocation in hot path"
	if lines[0] != want {
		t.Errorf("first annotation:\n got %q\nwant %q", lines[0], want)
	}
	if !strings.Contains(errw.String(), "3 finding(s)") {
		t.Errorf("count on stderr reports raw total, want deduped: %q", errw.String())
	}
}

func TestDedupAcrossConcatenatedArrays(t *testing.T) {
	// Two skipit-vet invocations with overlapping patterns, outputs
	// concatenated; the overlap must annotate once. The second copy uses an
	// absolute path under the workspace while the first is already relative —
	// dedup happens after relativization, so they still collapse.
	in := `[
		{"file": "pkg/a.go", "line": 5, "col": 1, "analyzer": "lockorder", "message": "lock held across I/O"}
	]
	[
		{"file": "/repo/pkg/a.go", "line": 5, "col": 1, "analyzer": "lockorder", "message": "lock held across I/O"},
		{"file": "/repo/pkg/b.go", "line": 9, "col": 2, "analyzer": "shardiso", "message": "cross-shard write"}
	]`
	var out, errw strings.Builder
	if code := run(strings.NewReader(in), &out, &errw, "/repo"); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	lines := nonEmptyLines(out.String())
	if len(lines) != 2 {
		t.Fatalf("got %d annotations, want 2:\n%s", len(lines), out.String())
	}
}

func TestCleanInputExitsZero(t *testing.T) {
	var out, errw strings.Builder
	if code := run(strings.NewReader("[]"), &out, &errw, "/repo"); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if out.String() != "" {
		t.Errorf("unexpected output: %q", out.String())
	}
}

func TestMalformedInputExitsTwo(t *testing.T) {
	var out, errw strings.Builder
	if code := run(strings.NewReader("{not json"), &out, &errw, "/repo"); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestMessageEscaping(t *testing.T) {
	in := `[{"file": "a.go", "line": 1, "col": 1, "analyzer": "detflow", "message": "50% of\nruns"}]`
	var out, errw strings.Builder
	run(strings.NewReader(in), &out, &errw, "")
	if !strings.Contains(out.String(), "50%25 of%0Aruns") {
		t.Errorf("workflow-command characters not escaped: %q", out.String())
	}
}

func nonEmptyLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.TrimSpace(l) != "" {
			out = append(out, l)
		}
	}
	return out
}
