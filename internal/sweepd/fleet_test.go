package sweepd

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"skipit/internal/sweep"
)

// synthJob builds a deterministic synthetic measurement: cycles are a pure
// function of the name, so any executor computes the same record.
func synthJob(group, name string, cycles float64) sweep.Job {
	return sweep.Job{
		Group: group, Name: name, Fingerprint: "fp-" + name,
		Run: func(sweep.Sink) (sweep.Outcome, error) {
			return sweep.Outcome{Cycles: cycles, Reps: 1}, nil
		},
	}
}

func TestFleetFallsBackWhenCoordinatorUnreachable(t *testing.T) {
	st := testStore(t)
	var mu sync.Mutex
	var logs []string
	fleet := &Fleet{
		Client:        &Client{T: errTransport{}},
		Fallback:      sweep.Runner{Workers: 2},
		Store:         st,
		PollEvery:     time.Millisecond,
		SubmitRetries: 2,
		Logf: func(format string, args ...any) {
			mu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	}
	jobs := []sweep.Job{synthJob("g", "a", 100), synthJob("g", "b", 200)}
	results := fleet.Run(jobs)
	if err := sweep.FirstError(results); err != nil {
		t.Fatalf("fallback run failed: %v", err)
	}
	if results[0].Record.Cycles != 100 || results[1].Record.Cycles != 200 {
		t.Fatalf("fallback results: %+v", results)
	}
	degraded := false
	for _, l := range logs {
		if strings.Contains(l, "DEGRADED") {
			degraded = true
		}
	}
	if !degraded {
		t.Fatalf("downgrade was not logged: %v", logs)
	}
	if _, ok := st.Lookup("g", "a", "fp-a"); !ok {
		t.Fatal("fallback records did not land in the local store")
	}
}

func TestFleetServesLocalCacheHitsWithoutCoordinator(t *testing.T) {
	st := testStore(t)
	st.Put("g", sweep.Record{Group: "g", Name: "a", Fingerprint: "fp-a", Cycles: 5, Reps: 1})
	fleet := &Fleet{Client: &Client{T: errTransport{}}, Store: st}
	results := fleet.Run([]sweep.Job{synthJob("g", "a", 5)})
	if !results[0].Cached || results[0].Record.Cycles != 5 {
		t.Fatalf("cache hit should never touch the wire: %+v", results[0])
	}
}

func TestFleetRunsThroughCoordinatorByteIdentical(t *testing.T) {
	jobs := []sweep.Job{
		synthJob("figA", "p1", 1000),
		synthJob("figA", "p2", 1100),
		synthJob("figB", "q1", 2000),
		synthJob("figB", "q2", 2100),
	}

	// Serial reference run.
	serialStore := testStore(t)
	serial := sweep.Runner{Workers: 1, Store: serialStore}
	if err := sweep.FirstError(serial.Run(jobs)); err != nil {
		t.Fatal(err)
	}
	if err := serialStore.Flush(); err != nil {
		t.Fatal(err)
	}

	// Fleet run over the in-process HTTP stack, one worker.
	coordStore := testStore(t)
	c, err := NewCoordinator(CoordConfig{Store: coordStore, Seed: 3,
		LeaseTTL: 5 * time.Second, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	transport := &coordTransport{c: c}
	w := NewWorker(WorkerConfig{
		Name: "w1", Client: &Client{T: transport},
		Source: IndexJobs(jobs), PollEvery: 5 * time.Millisecond,
		ExitWhenDrained: true, Logf: t.Logf,
	})
	done := make(chan error, 1)
	go func() { done <- w.Run() }()

	fleetStore := testStore(t)
	fleet := &Fleet{
		Client: &Client{T: transport}, Fallback: sweep.Runner{Workers: 1},
		Store: fleetStore, PollEvery: 5 * time.Millisecond, Logf: t.Logf,
	}
	results := fleet.Run(jobs)
	if err := sweep.FirstError(results); err != nil {
		t.Fatalf("fleet run failed: %v", err)
	}
	for i := range jobs {
		if results[i].Record.Fingerprint != jobs[i].Fingerprint {
			t.Fatalf("result %d fingerprint: %+v", i, results[i].Record)
		}
	}
	if err := fleetStore.Flush(); err != nil {
		t.Fatal(err)
	}
	assertStoresByteIdentical(t, serialStore.Dir(), fleetStore.Dir(), []string{"figA", "figB"})

	waitFor(t, 5*time.Second, "worker drain", func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	})
}
