// Fact-store caching for the standalone driver.
//
// A Cache is a content-addressed, per-package store of analysis results:
// the diagnostics the suite reported while analyzing one package, plus the
// facts that package exported for its importers. On a warm run the driver
// still parses and type-checks every package (facts attach to *types.Object
// identities, so a typechecked universe must exist), but a package whose key
// matches skips every analyzer: its cached diagnostics are replayed through
// the normal sink and its cached facts are decoded back into the fact store,
// where downstream cache-miss packages import them exactly as if the
// analyzers had just run.
//
// The key must capture everything a diagnostic or fact can depend on:
//
//   - the analyzer binary itself (a sha256 of the running executable — any
//     rule change, new waiver semantics, or driver fix reshapes results, and
//     hashing the binary is the one key that cannot go stale);
//   - the toolchain version (standard-library facts and type identities);
//   - the set of root analyzers by name;
//   - the package's own source files, byte for byte — which also covers
//     //skipit:ignore and //skipit:shard-owned directives, since they live
//     in those bytes;
//   - the keys of every non-standard dependency, so a fact change deep in
//     the tree re-keys every importer transitively (the whack-a-mole
//     property: waiving a callee site re-seeds importer summaries, and this
//     dependency closure is what invalidates them).
//
// Entries are JSON files named <key>.json under the cache directory. Facts
// are gob-encoded (the go/analysis serializability contract) and bound to
// objects via golang.org/x/tools/go/types/objectpath, which names exactly
// the objects visible to importers; facts on function-local objects have no
// cross-package meaning and are not stored (a hit skips the whole package,
// so nothing reads them). All skipit fact types carry witness chains as
// pre-rendered strings, never token.Pos, so decoded facts are position-safe
// in a fresh process.
package driver

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/objectpath"
)

// cacheFormatVersion invalidates every entry when the on-disk shape changes.
const cacheFormatVersion = "skipit-vet-cache-v1"

// Cache is a directory of per-package analysis results. The zero value is
// not usable; Dir must name a directory (created on first store).
type Cache struct {
	Dir string
}

// cacheEntry is one package's stored results.
type cacheEntry struct {
	Package  string         `json:"package"` // go list ImportPath, for humans
	Diags    []cacheDiag    `json:"diags,omitempty"`
	PkgFacts []cacheFact    `json:"pkg_facts,omitempty"`
	ObjFacts []cacheObjFact `json:"obj_facts,omitempty"`
}

// cacheDiag is one replayable diagnostic, position pre-resolved.
type cacheDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// cacheFact is one gob-encoded package fact.
type cacheFact struct {
	Type string `json:"type"` // fact type's package path + "." + name
	Data []byte `json:"data"` // gob of the fact struct value
}

// cacheObjFact is one gob-encoded object fact, keyed by objectpath.
type cacheObjFact struct {
	Object string `json:"object"` // objectpath within the package
	Type   string `json:"type"`
	Data   []byte `json:"data"`
}

// exeSum hashes the running binary once; the analyzers are compiled into it,
// so this digest moves whenever any analyzer (or the driver) changes.
var exeSum = sync.OnceValue(func() string {
	exe, err := os.Executable()
	if err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			return hex.EncodeToString(sum[:])
		}
	}
	// No readable executable (unusual): fall back to a per-process random
	// key component would defeat caching entirely; the toolchain version at
	// least keeps same-toolchain runs sharing entries. Conservative enough:
	// the analyzer set names still participate in the key.
	return "no-exe"
})

// key computes the package's cache key. depKeys maps already-keyed package
// IDs (every non-standard dependency appears there: the driver walks in
// dependency order). File reads go through the same paths the loader parsed.
func (c *Cache) key(p *Package, analyzers []*analysis.Analyzer, depKeys map[string]string) (string, error) {
	h := sha256.New()
	fmt.Fprintln(h, cacheFormatVersion)
	fmt.Fprintln(h, exeSum())
	fmt.Fprintln(h, runtime.Version())
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	sort.Strings(names)
	fmt.Fprintln(h, strings.Join(names, ","))
	fmt.Fprintln(h, p.ID)
	for _, f := range p.GoFiles {
		data, err := os.ReadFile(f)
		if err != nil {
			return "", fmt.Errorf("cache key for %s: %v", p.ID, err)
		}
		fmt.Fprintf(h, "file %s %d\n", filepath.Base(f), len(data))
		h.Write(data)
	}
	var deps []string
	for _, imp := range p.imports {
		id := imp
		if m, ok := p.importMap[imp]; ok {
			id = m
		}
		if k, ok := depKeys[id]; ok {
			deps = append(deps, id+"="+k)
		}
		// Standard-library imports have no entry; runtime.Version() above
		// stands in for their content.
	}
	sort.Strings(deps)
	for _, d := range deps {
		fmt.Fprintln(h, "dep", d)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func (c *Cache) path(key string) string { return filepath.Join(c.Dir, key+".json") }

// load reads the entry for key, reporting ok=false on any miss or decode
// failure (a corrupt entry behaves as a miss and is overwritten).
func (c *Cache) load(key string) (*cacheEntry, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	e := new(cacheEntry)
	if err := json.Unmarshal(data, e); err != nil {
		return nil, false
	}
	return e, true
}

// store writes the entry atomically (rename over a temp file) so a crashed
// run never leaves a torn entry for a valid key.
func (c *Cache) store(key string, e *cacheEntry) error {
	if err := os.MkdirAll(c.Dir, 0o777); err != nil {
		return err
	}
	data, err := json.MarshalIndent(e, "", "\t")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.Dir, "tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(key))
}

// factRegistry maps serialized fact-type names to their reflect types, for
// every fact type any analyzer in the suite (or its requirements) declares.
func factRegistry(analyzers []*analysis.Analyzer) map[string]reflect.Type {
	reg := make(map[string]reflect.Type)
	seen := make(map[*analysis.Analyzer]bool)
	var walk func(a *analysis.Analyzer)
	walk = func(a *analysis.Analyzer) {
		if seen[a] {
			return
		}
		seen[a] = true
		for _, f := range a.FactTypes {
			t := reflect.TypeOf(f) // always a pointer per the analysis contract
			reg[factTypeName(t)] = t
		}
		for _, req := range a.Requires {
			walk(req)
		}
	}
	for _, a := range analyzers {
		walk(a)
	}
	return reg
}

// factTypeName names a fact's concrete type portably: the pointed-to
// struct's package path plus type name.
func factTypeName(t reflect.Type) string {
	e := t.Elem()
	return e.PkgPath() + "." + e.Name()
}

// encodeFact gobs the fact's struct value (not the interface, so no gob type
// registration is needed anywhere).
func encodeFact(f analysis.Fact) ([]byte, error) {
	var buf strings.Builder
	if err := gob.NewEncoder(&buf).EncodeValue(reflect.ValueOf(f).Elem()); err != nil {
		return nil, err
	}
	return []byte(buf.String()), nil
}

// decodeFact rebuilds a fact of type t (a pointer type) from gob bytes.
func decodeFact(t reflect.Type, data []byte) (analysis.Fact, error) {
	v := reflect.New(t.Elem())
	if err := gob.NewDecoder(strings.NewReader(string(data))).DecodeValue(v); err != nil {
		return nil, err
	}
	return v.Interface().(analysis.Fact), nil
}

// snapshot extracts the facts p's analysis exported — package facts under
// p's path and object facts on p's own package-level objects — into e.
// Objects with no objectpath (function-local) are skipped: a future hit
// skips the whole package, so nothing can ask for them.
func (s *factStore) snapshot(p *Package, e *cacheEntry) error {
	pkgFacts := s.pkgFacts[p.PkgPath]
	types := make([]string, 0, len(pkgFacts))
	byName := make(map[string]analysis.Fact, len(pkgFacts))
	for t, f := range pkgFacts {
		n := factTypeName(t)
		types = append(types, n)
		byName[n] = f
	}
	sort.Strings(types)
	for _, n := range types {
		data, err := encodeFact(byName[n])
		if err != nil {
			return fmt.Errorf("package fact %s: %v", n, err)
		}
		e.PkgFacts = append(e.PkgFacts, cacheFact{Type: n, Data: data})
	}

	for obj, m := range s.objFacts {
		if obj.Pkg() != p.Types {
			continue
		}
		path, err := objectpath.For(obj)
		if err != nil {
			continue // local object; invisible to importers
		}
		for t, f := range m {
			data, err := encodeFact(f)
			if err != nil {
				return fmt.Errorf("object fact %s on %s: %v", factTypeName(t), obj.Name(), err)
			}
			e.ObjFacts = append(e.ObjFacts, cacheObjFact{
				Object: string(path), Type: factTypeName(t), Data: data,
			})
		}
	}
	sort.Slice(e.ObjFacts, func(i, j int) bool {
		a, b := e.ObjFacts[i], e.ObjFacts[j]
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Type < b.Type
	})
	return nil
}

// restore decodes e's facts into the store against p's typechecked objects.
// Any failure poisons the hit: the caller falls back to running the
// analyzers live (an entry from a different binary or a renamed object must
// not half-apply).
func (s *factStore) restore(p *Package, e *cacheEntry, reg map[string]reflect.Type) error {
	for _, cf := range e.PkgFacts {
		t, ok := reg[cf.Type]
		if !ok {
			return fmt.Errorf("unknown fact type %s", cf.Type)
		}
		f, err := decodeFact(t, cf.Data)
		if err != nil {
			return fmt.Errorf("package fact %s: %v", cf.Type, err)
		}
		m := s.pkgFacts[p.PkgPath]
		if m == nil {
			m = make(map[reflect.Type]analysis.Fact)
			s.pkgFacts[p.PkgPath] = m
		}
		m[t] = f
	}
	for _, of := range e.ObjFacts {
		t, ok := reg[of.Type]
		if !ok {
			return fmt.Errorf("unknown fact type %s", of.Type)
		}
		obj, err := objectpath.Object(p.Types, objectpath.Path(of.Object))
		if err != nil {
			return fmt.Errorf("object %s: %v", of.Object, err)
		}
		f, err := decodeFact(t, of.Data)
		if err != nil {
			return fmt.Errorf("object fact %s on %s: %v", of.Type, of.Object, err)
		}
		m := s.objFacts[obj]
		if m == nil {
			m = make(map[reflect.Type]analysis.Fact)
			s.objFacts[obj] = m
		}
		m[t] = f
	}
	return nil
}
