package sim

import (
	"math/rand"
	"testing"

	"skipit/internal/isa"
)

// goldenRun executes a single-core program under trivially-correct
// sequential semantics: every load returns the last preceding store to its
// word, and a flush+fence chain determines durable values.
type goldenModel struct {
	mem map[uint64]uint64 // architectural values per word
}

func (g *goldenModel) run(p *isa.Program) (loads []uint64) {
	g.mem = map[uint64]uint64{}
	for _, in := range p.Instrs {
		switch in.Op {
		case isa.OpStore:
			g.mem[in.Addr&^7] = in.Data
		case isa.OpLoad:
			loads = append(loads, g.mem[in.Addr&^7])
		}
	}
	return loads
}

// TestDifferentialGoldenModel runs hundreds of random single-core programs
// on the cycle simulator and compares every load's value against the
// sequential golden model. Single-core RISC-V requires program-order load
// values regardless of the microarchitecture's reordering, so any
// divergence is a simulator bug (this is the check that would have caught
// the replay-window write reordering found by cmd/crashtest).
func TestDifferentialGoldenModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	words := []uint64{0x1000, 0x1008, 0x1040, 0x2000, 0x10000, 0x10040}
	for run := 0; run < 200; run++ {
		b := isa.NewBuilder()
		n := 20 + rng.Intn(60)
		for i := 0; i < n; i++ {
			w := words[rng.Intn(len(words))]
			switch rng.Intn(8) {
			case 0, 1, 2:
				b.Store(w, uint64(rng.Intn(1_000_000))+1)
			case 3, 4:
				b.Load(w)
			case 5:
				b.Cbo(w, rng.Intn(2) == 0)
			case 6:
				b.Fence()
			case 7:
				b.CflushDL1(w)
			}
		}
		b.Fence()
		p := b.Build()

		want := (&goldenModel{}).run(p)

		cfg := DefaultConfig(1)
		// Vary knobs across runs so the whole matrix sees traffic.
		cfg.L1.Flush.SkipIt = run%2 == 0
		cfg.L1.Flush.NumFSHRs = 1 + run%8
		cfg.L1.Flush.QueueDepth = 1 + run%8
		s := New(cfg)
		if _, err := s.Run([]*isa.Program{p}, 2_000_000); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}

		li := 0
		for idx, in := range p.Instrs {
			if in.Op != isa.OpLoad {
				continue
			}
			got := s.Cores[0].Timing(idx).LoadValue
			if got != want[li] {
				t.Fatalf("run %d: load #%d (instr %d, addr %#x) = %d, golden %d\nprogram: %v",
					run, li, idx, in.Addr, got, want[li], p.Instrs)
			}
			li++
		}
	}
}

// TestDifferentialGoldenModelDisjointCores extends the differential check to
// multiple cores with disjoint address spaces, where per-core sequential
// semantics still fully determine every load.
func TestDifferentialGoldenModelDisjointCores(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const cores = 3
	for run := 0; run < 40; run++ {
		progs := make([]*isa.Program, cores)
		wants := make([][]uint64, cores)
		for c := 0; c < cores; c++ {
			base := uint64(c+1) << 20
			b := isa.NewBuilder()
			for i := 0; i < 50; i++ {
				w := base + uint64(rng.Intn(4))*64
				switch rng.Intn(7) {
				case 0, 1, 2:
					b.Store(w, uint64(rng.Intn(1000))+1)
				case 3, 4:
					b.Load(w)
				case 5:
					b.Cbo(w, rng.Intn(2) == 0)
				case 6:
					b.Fence()
				}
			}
			b.Fence()
			progs[c] = b.Build()
			wants[c] = (&goldenModel{}).run(progs[c])
		}
		s := New(DefaultConfig(cores))
		if _, err := s.Run(progs, 3_000_000); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		for c := 0; c < cores; c++ {
			li := 0
			for idx, in := range progs[c].Instrs {
				if in.Op != isa.OpLoad {
					continue
				}
				if got := s.Cores[c].Timing(idx).LoadValue; got != wants[c][li] {
					t.Fatalf("run %d core %d load #%d = %d, golden %d", run, c, li, got, wants[c][li])
				}
				li++
			}
		}
	}
}
