package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// File is the on-disk shape of one result-store group: BENCH_<group>.json.
type File struct {
	SchemaVersion int      `json:"schema_version"`
	Group         string   `json:"group"`
	Records       []Record `json:"records"`
}

// FileName returns the store file name for a group: BENCH_fig09.json.
func FileName(group string) string { return "BENCH_" + group + ".json" }

// CorruptError is the typed diagnosis for a malformed store file: it names
// the file and the first offending field, so a truncated or schema-drifted
// baseline fails the gate with an actionable message instead of a panic or a
// silent pass. Detect it with errors.As.
type CorruptError struct {
	Path   string // the offending BENCH_*.json
	Field  string // JSON path of the first bad field ("records[3].cycles")
	Reason string // what is wrong with it
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("sweep: corrupt store file %s: field %s: %s", e.Path, e.Field, e.Reason)
}

// LoadFile reads one store file. A file whose schema version differs from
// SchemaVersion is rejected: its records predate the current measurement
// semantics and must all be re-measured. Truncated JSON, wrong field types,
// and structurally invalid records return a *CorruptError naming the file
// and field.
func LoadFile(path string) (File, error) {
	var f File
	b, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(b, &f); err != nil {
		field := "(document)"
		var typeErr *json.UnmarshalTypeError
		if errors.As(err, &typeErr) {
			field = typeErr.Field
			if field == "" {
				field = "(document)"
			}
		}
		return File{}, &CorruptError{Path: path, Field: field, Reason: err.Error()}
	}
	if f.SchemaVersion != SchemaVersion {
		return File{}, fmt.Errorf("sweep: %s has schema version %d, want %d (stale store)",
			path, f.SchemaVersion, SchemaVersion)
	}
	if err := f.Validate(path); err != nil {
		return File{}, err
	}
	return f, nil
}

// Validate checks the structural invariants every well-formed store file
// holds — non-empty record names and fingerprints, unique names, finite
// non-negative cycle counts and repetition counts — and returns a
// *CorruptError naming path and the first offending field. A drifted or
// hand-edited baseline fails here rather than poisoning Compare.
func (f *File) Validate(path string) error {
	bad := func(i int, field, reason string) error {
		return &CorruptError{Path: path, Field: fmt.Sprintf("records[%d].%s", i, field), Reason: reason}
	}
	seen := make(map[string]bool, len(f.Records))
	for i, r := range f.Records {
		if r.Name == "" {
			return bad(i, "name", "empty")
		}
		k := r.Group + "/" + r.Name
		if seen[k] {
			return bad(i, "name", fmt.Sprintf("duplicate record %q", k))
		}
		seen[k] = true
		if r.Fingerprint == "" {
			return bad(i, "fingerprint", "empty (record cannot be content-addressed)")
		}
		if math.IsNaN(r.Cycles) || math.IsInf(r.Cycles, 0) || r.Cycles < 0 {
			return bad(i, "cycles", fmt.Sprintf("not a finite non-negative number: %v", r.Cycles))
		}
		if r.Reps < 0 {
			return bad(i, "reps", fmt.Sprintf("negative: %d", r.Reps))
		}
	}
	return nil
}

// Store is a directory of per-group result files, addressed by
// (group, name, fingerprint). It is safe for concurrent use.
type Store struct {
	dir string

	mu     sync.Mutex
	groups map[string]*File
	dirty  map[string]bool
}

// Open opens (creating if needed) a result store rooted at dir. Existing
// group files load lazily on first access; files with a stale schema
// version are treated as empty and overwritten on the next Flush.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir, groups: map[string]*File{}, dirty: map[string]bool{}}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// group loads (or initializes) one group's file. Caller holds s.mu.
func (s *Store) group(name string) *File {
	if f, ok := s.groups[name]; ok {
		return f
	}
	f := &File{SchemaVersion: SchemaVersion, Group: name}
	loaded, err := LoadFile(filepath.Join(s.dir, FileName(name)))
	if err == nil {
		*f = loaded
	} else if !errors.Is(err, fs.ErrNotExist) {
		// Unreadable or stale-schema file: start empty; the next Flush
		// rewrites it under the current schema.
		s.dirty[name] = true
	}
	s.groups[name] = f
	return f
}

// Lookup returns the stored record for (group, name) when its fingerprint
// still matches — the content-addressed hit that lets a re-run skip an
// already-measured point. A record whose fingerprint differs is a miss: the
// configuration changed, so the stored number no longer describes it.
func (s *Store) Lookup(group, name, fingerprint string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.group(group).Records {
		if r.Name == name {
			if r.Fingerprint == fingerprint {
				return r, true
			}
			return Record{}, false
		}
	}
	return Record{}, false
}

// Put inserts or replaces the record named rec.Name in the group.
func (s *Store) Put(group string, rec Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.group(group)
	s.dirty[group] = true
	for i, r := range f.Records {
		if r.Name == rec.Name {
			f.Records[i] = rec
			return
		}
	}
	f.Records = append(f.Records, rec)
}

// Records returns a copy of the group's records in store order.
func (s *Store) Records(group string) []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Record(nil), s.group(group).Records...)
}

// Flush writes every modified group file. Output is deterministic: groups
// write in sorted order, records in store (submission) order, and no
// timestamps or host metadata are recorded.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var names []string
	for g := range s.dirty {
		if s.dirty[g] {
			names = append(names, g)
		}
	}
	sort.Strings(names)
	for _, g := range names {
		if err := writeFileLocked(filepath.Join(s.dir, FileName(g)), s.groups[g]); err != nil {
			return err
		}
		s.dirty[g] = false
	}
	return nil
}

// WriteFile writes one store file (used for combined baseline files that
// aggregate several groups' records under a single name).
func WriteFile(path string, f File) error {
	f.SchemaVersion = SchemaVersion
	return writeFileLocked(path, &f)
}

// writeFileLocked writes one store file crash-safely: the bytes land in a
// temp file in the same directory, are synced, and are renamed into place.
// A process killed mid-write can therefore never leave a torn BENCH_*.json —
// readers see either the old complete file or the new complete file, and a
// stray .tmp from a previous crash is overwritten-by-name on the next write
// of the same path and otherwise ignored by loads (the store only reads
// BENCH_<group>.json names).
func writeFileLocked(path string, f *File) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	tmp := path + ".tmp"
	t, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("sweep: writing %s: %w", path, err)
	}
	if _, err := t.Write(b); err != nil {
		t.Close()
		os.Remove(tmp)
		return fmt.Errorf("sweep: writing %s: %w", path, err)
	}
	if err := t.Sync(); err != nil {
		t.Close()
		os.Remove(tmp)
		return fmt.Errorf("sweep: syncing %s: %w", path, err)
	}
	if err := t.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("sweep: closing %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("sweep: committing %s: %w", path, err)
	}
	return nil
}
