package trace

import (
	"fmt"
	"sync"
)

// RecCode classifies a flight-recorder event. Codes are small integers so a
// RecEvent is a fixed-size all-integer struct the hot path can record
// without allocating or boxing.
type RecCode uint8

const (
	RecNone RecCode = iota
	RecLoadMiss
	RecStoreMiss
	RecAcquire
	RecGrant
	RecGrantAck
	RecRelease
	RecReleaseAck
	RecEvict
	RecProbe
	RecProbeAck
	RecCboOffer
	RecCboEnqueue
	RecFSHRAlloc
	RecFSHRAck
	RecRootRelease
	RecRootReleaseAck
	RecMemRead
	RecMemWrite
	// RecSkipAudit is the skip-audit channel: one event per writeback
	// skip/issue decision, with the reason in Cause. Arg is 1 when a
	// writeback was issued and 0 when it was skipped/suppressed.
	RecSkipAudit
)

var recCodeNames = [...]string{
	RecNone:           "none",
	RecLoadMiss:       "load-miss",
	RecStoreMiss:      "store-miss",
	RecAcquire:        "acquire",
	RecGrant:          "grant",
	RecGrantAck:       "grant-ack",
	RecRelease:        "release",
	RecReleaseAck:     "release-ack",
	RecEvict:          "evict",
	RecProbe:          "probe",
	RecProbeAck:       "probe-ack",
	RecCboOffer:       "cbo-offer",
	RecCboEnqueue:     "cbo-enqueue",
	RecFSHRAlloc:      "fshr-alloc",
	RecFSHRAck:        "fshr-ack",
	RecRootRelease:    "root-release",
	RecRootReleaseAck: "root-release-ack",
	RecMemRead:        "mem-read",
	RecMemWrite:       "mem-write",
	RecSkipAudit:      "skip-audit",
}

func (c RecCode) String() string {
	if int(c) < len(recCodeNames) {
		return recCodeNames[c]
	}
	return fmt.Sprintf("code(%d)", uint8(c))
}

// RecCause explains a skip-audit decision (and qualifies a few other
// codes). CauseNone means the event needs no qualifier.
type RecCause uint8

const (
	CauseNone RecCause = iota
	// CauseSkipBit: CBO dropped at the flush-unit queue head — line clean
	// with the skip bit set (§6.1).
	CauseSkipBit
	// CauseCleanLine: RootRelease writeback trivially skipped — line clean
	// in the LLC (§5.5).
	CauseCleanLine
	// CauseDirtyLine: line dirty, writeback data actually issued.
	CauseDirtyLine
	// CauseGrantDataDirty: L2 granted a dirty line, so the L1 left the skip
	// bit unset (§6).
	CauseGrantDataDirty
	// CauseFlushForced: data-less RootRelease issued anyway because the CBO
	// was a flush (invalidate) — nothing to write, but the LLC must act.
	CauseFlushForced
	// CauseMissNoCopy: RootRelease arrived for a line the LLC no longer
	// holds; nothing to write back.
	CauseMissNoCopy
	// CauseDataSurrendered: probe surrendered dirty data, clearing the skip
	// bit on the demoted copy.
	CauseDataSurrendered
)

var recCauseNames = [...]string{
	CauseNone:            "",
	CauseSkipBit:         "skip-bit-set",
	CauseCleanLine:       "clean-line",
	CauseDirtyLine:       "dirty-line",
	CauseGrantDataDirty:  "grant-data-dirty",
	CauseFlushForced:     "flush-forced",
	CauseMissNoCopy:      "miss-no-copy",
	CauseDataSurrendered: "data-surrendered",
}

func (c RecCause) String() string {
	if int(c) < len(recCauseNames) {
		return recCauseNames[c]
	}
	return fmt.Sprintf("cause(%d)", uint8(c))
}

// RecEvent is one flight-recorder entry: fixed size, all integers, no
// pointers, so recording is a struct store into a preallocated slot.
type RecEvent struct {
	Cycle int64
	Code  RecCode
	Cause RecCause
	Txn   uint64
	Addr  uint64
	// Arg is a code-specific scalar (issued flag for RecSkipAudit, payload
	// size for mem traffic, queue depth, …).
	Arg uint64
}

// Rec is one component's flight-recorder ring: a fixed-size buffer of the
// last N events, preallocated at construction (linepool-style) so the
// recording path never allocates. The mutex exists only for the live
// introspection server, which reads rings from its own goroutine; the
// simulator itself is single-goroutine, so the lock is always uncontended
// on the hot path.
type Rec struct {
	mu    sync.Mutex
	name  string
	buf   []RecEvent
	next  int
	count int
	total uint64
}

// Record stores one event, evicting the oldest when full. Nil-safe: a nil
// ring is a no-op, so components record unconditionally and pay one branch
// when the recorder is disabled.
//
//skipit:hotpath
func (r *Rec) Record(cycle int64, code RecCode, cause RecCause, txn, addr, arg uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = RecEvent{Cycle: cycle, Code: code, Cause: cause, Txn: txn, Addr: addr, Arg: arg}
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
	r.total++
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *Rec) Events() []RecEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RecEvent, 0, r.count)
	start := r.next - r.count
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.count; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Recorder owns one Rec per component. Components are registered up front
// (sim wiring time); the hot path only ever touches its own preassigned
// *Rec, so the map is never consulted per event.
type Recorder struct {
	mu    sync.Mutex
	depth int
	names []string // registration order, for stable dumps
	rings map[string]*Rec
}

// NewRecorder returns a recorder whose per-component rings retain the last
// depth events each.
func NewRecorder(depth int) *Recorder {
	if depth <= 0 {
		panic("trace: recorder depth must be positive")
	}
	return &Recorder{depth: depth, rings: make(map[string]*Rec)}
}

// Component returns (creating on first use) the ring for one component
// instance. Nil-safe: a nil recorder returns a nil ring, which records
// nothing.
func (rc *Recorder) Component(name string) *Rec {
	if rc == nil {
		return nil
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	r, ok := rc.rings[name]
	if !ok {
		r = &Rec{name: name, buf: make([]RecEvent, rc.depth)}
		rc.rings[name] = r
		rc.names = append(rc.names, name)
	}
	return r
}

// RecDumpEvent is the JSON-friendly rendering of one RecEvent, with enums
// spelled out so dumps read without the source.
type RecDumpEvent struct {
	Cycle int64  `json:"cycle"`
	Code  string `json:"code"`
	Cause string `json:"cause,omitempty"`
	Txn   uint64 `json:"txn,omitempty"`
	Addr  string `json:"addr"`
	Arg   uint64 `json:"arg,omitempty"`
}

// RecDump is one component's flight-recorder contents.
type RecDump struct {
	Component string         `json:"component"`
	Total     uint64         `json:"total_events"`
	Events    []RecDumpEvent `json:"events"`
}

// Dump snapshots every ring, components in registration order, events
// oldest first. Nil-safe: a nil recorder dumps nothing.
func (rc *Recorder) Dump() []RecDump {
	if rc == nil {
		return nil
	}
	rc.mu.Lock()
	names := append([]string(nil), rc.names...)
	rc.mu.Unlock()
	out := make([]RecDump, 0, len(names))
	for _, name := range names {
		r := rc.Component(name)
		r.mu.Lock()
		total := r.total
		r.mu.Unlock()
		evs := r.Events()
		d := RecDump{Component: name, Total: total, Events: make([]RecDumpEvent, 0, len(evs))}
		for _, e := range evs {
			d.Events = append(d.Events, RecDumpEvent{
				Cycle: e.Cycle,
				Code:  e.Code.String(),
				Cause: e.Cause.String(),
				Txn:   e.Txn,
				Addr:  fmt.Sprintf("%#x", e.Addr),
				Arg:   e.Arg,
			})
		}
		out = append(out, d)
	}
	return out
}
