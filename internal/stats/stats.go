// Package stats provides the small set of summary statistics the paper's
// evaluation reports: medians with standard deviations over repeated
// microbenchmark runs (§7.1 reports the median of 50 repetitions), plus
// means and speedups for the throughput studies.
package stats

import (
	"math"
	"sort"
)

// Median returns the median of xs; it panics on an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: median of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Mean returns the arithmetic mean of xs; it panics on an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: mean of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sigma returns the population standard deviation of xs.
func Sigma(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: sigma of empty slice")
	}
	m := Mean(xs)
	v := 0.0
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	return math.Sqrt(v / float64(len(xs)))
}

// Min returns the smallest element of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Speedup returns base/opt, the conventional "x times faster" ratio.
func Speedup(base, opt float64) float64 {
	if opt == 0 {
		return math.Inf(1)
	}
	return base / opt
}
