// Package litmus is a table-driven litmus-test suite for the §4 writeback
// and fence memory semantics on the cycle simulator: small multi-threaded
// programs whose sets of allowed final NVMM/register states are written down
// explicitly and checked over many interleavings (the simulator is
// deterministic per configuration, so interleavings are varied by skewing
// thread start offsets and by toggling microarchitectural knobs).
//
// The suite covers the three Fig. 5 scenarios, write-back ordering across
// lines, cross-core writeback visibility, coherence (load-value) tests, and
// the CBO.CLEAN/CBO.FLUSH residency difference.
package litmus

import (
	"fmt"

	"skipit/internal/isa"
	"skipit/internal/sim"
)

// Outcome is one observable final state: durable NVMM words and loaded
// register values, keyed by name.
type Outcome map[string]uint64

// key returns a canonical string for set membership.
func (o Outcome) key() string {
	// Outcomes are tiny; render deterministically by probing known names
	// in order. Names are provided by the test's Observe spec.
	return fmt.Sprintf("%v", o)
}

// Observation extracts one named value from a finished (possibly crashed)
// system.
type Observation struct {
	Name string
	// NVMM address to read after the run; used when Load is nil.
	Addr uint64
	// Load reads a loaded value from a core's timing record instead:
	// core index and instruction index.
	Core, Instr int
	FromLoad    bool
}

// Test is one litmus test: programs per core, a crash/no-crash mode, the
// observations to extract, and the set of allowed outcomes.
type Test struct {
	Name     string
	Programs []*isa.Program
	// CrashAfter > 0 crashes the machine once the given core count
	// completed... 0 means run to completion then crash (volatile state
	// dropped, NVMM inspected).
	RunToCompletion bool
	Observe         []Observation
	Allowed         []Outcome
	// Forbidden lists outcomes that must never appear (documentation +
	// double bookkeeping; anything not in Allowed already fails).
	Forbidden []Outcome
}

// skews are the start-offset combinations used to vary interleavings: core
// i's program is prefixed with skews[k][i] nops.
var skews = [][]int{
	{0, 0}, {0, 7}, {7, 0}, {0, 23}, {23, 0}, {13, 29}, {40, 0}, {0, 40},
}

// Run executes the test across all skews and reports the outcomes seen and
// the first violation, if any.
func Run(t Test) (seen []Outcome, err error) {
	allowed := map[string]bool{}
	for _, o := range t.Allowed {
		allowed[o.key()] = true
	}
	seenKeys := map[string]bool{}
	for _, skew := range skews {
		s := sim.New(sim.DefaultConfig(len(t.Programs)))
		progs := make([]*isa.Program, len(t.Programs))
		for i, p := range t.Programs {
			b := isa.NewBuilder()
			n := 0
			if i < len(skew) {
				n = skew[i]
			}
			b.Nops(n)
			b2 := b.Build()
			merged := &isa.Program{Instrs: append(append([]isa.Instr{}, b2.Instrs...), p.Instrs...)}
			progs[i] = merged
		}
		if _, runErr := s.Run(progs, 5_000_000); runErr != nil {
			return seen, fmt.Errorf("%s: %w", t.Name, runErr)
		}
		if invErr := s.CheckInvariants(); invErr != nil {
			return seen, fmt.Errorf("%s: %w", t.Name, invErr)
		}
		// Register observations must be read before the crash wipes
		// core state; NVMM observations after it (the crash drops only
		// volatile state, which is the point).
		o := Outcome{}
		for _, obs := range t.Observe {
			if obs.FromLoad {
				skewN := 0
				if obs.Core < len(skew) {
					skewN = skew[obs.Core]
				}
				o[obs.Name] = s.Cores[obs.Core].Timing(obs.Instr + skewN).LoadValue
			}
		}
		s.Crash(false)
		for _, obs := range t.Observe {
			if !obs.FromLoad {
				o[obs.Name] = s.Mem.PeekUint64(obs.Addr)
			}
		}
		k := o.key()
		if !seenKeys[k] {
			seenKeys[k] = true
			seen = append(seen, o)
		}
		if !allowed[k] {
			return seen, fmt.Errorf("%s: forbidden outcome %v (skew %v)", t.Name, o, skew)
		}
	}
	return seen, nil
}

// Crash variants: run to a fixed cycle, crash, observe NVMM. Used for the
// Fig. 5 "may or may not be durable" scenarios where both outcomes must be
// observable across crash points.
type CrashTest struct {
	Name    string
	Program *isa.Program
	// CrashCycles lists the injection points to try.
	CrashCycles []int64
	Observe     []Observation
	Allowed     []Outcome
}

// RunCrash executes the crash test at every injection point.
func RunCrash(t CrashTest) (seen []Outcome, err error) {
	allowed := map[string]bool{}
	for _, o := range t.Allowed {
		allowed[o.key()] = true
	}
	seenKeys := map[string]bool{}
	for _, at := range t.CrashCycles {
		s := sim.New(sim.DefaultConfig(1))
		s.Cores[0].SetProgram(t.Program)
		for s.Now() < at && !(s.Cores[0].Done() && s.Quiescent()) {
			s.Step()
		}
		s.Crash(false)
		o := Outcome{}
		for _, obs := range t.Observe {
			o[obs.Name] = s.Mem.PeekUint64(obs.Addr)
		}
		k := o.key()
		if !seenKeys[k] {
			seenKeys[k] = true
			seen = append(seen, o)
		}
		if !allowed[k] {
			return seen, fmt.Errorf("%s: forbidden post-crash state %v (crash@%d)", t.Name, o, at)
		}
	}
	return seen, nil
}
