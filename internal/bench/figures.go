package bench

import "skipit/internal/sweep"

// Figure describes one regenerable section of the paper's evaluation (§7):
// its -fig selector token, result-store group, presentation metadata, and the
// builder that decomposes it into fingerprinted sweep jobs.
//
// The table lives here — not in cmd/skipit-bench — because it is the shared
// job vocabulary of every executor: the bench CLI builds jobs from it to run
// (or submit to a fleet), and a sweepd worker builds the same table to
// resolve leased job specs back to closures. Both sides compiling the same
// builders is what makes the fingerprint interlock meaningful.
type Figure struct {
	Token string // -fig selector ("9", "ablations")
	Group string // result-store group / sidecar name ("fig09")
	Title string
	Note  string // paper anchor, printed under the title
	Mops  bool   // report Derived["mops"] instead of cycles
	Build func(quick bool) []sweep.Job
}

// Figures lists the evaluation's sections in figure order. Job builders read
// the package's sweep knobs at call time, so apply SetQuick first when
// running in quick mode.
func Figures() []Figure {
	return []Figure{
		{Token: "9", Group: "fig09",
			Title: "Figure 9 — CBO.X latency vs writeback size and thread count (cycles)",
			Note:  "paper anchors: 1 line ~100 cy; 32 KiB ~7460 cy; 8 threads ~7.2x faster",
			Build: func(bool) []sweep.Job { return Fig9Jobs("fig09", false) }},
		{Token: "10", Group: "fig10",
			Title: "Figure 10 — write, 10x CBO.X, fence, re-read (cycles)",
			Note:  "paper: re-read after CBO.CLEAN ~2x faster than after CBO.FLUSH",
			Build: func(bool) []sweep.Job { return Fig10Jobs(ThreadCounts) }},
		{Token: "11", Group: "fig11",
			Title: "Figure 11 — comparative writeback latency, 1 thread (cycles)",
			Build: func(bool) []sweep.Job { return ComparativeJobs("fig11", 1) }},
		{Token: "12", Group: "fig12",
			Title: "Figure 12 — comparative writeback latency, 8 threads (cycles)",
			Build: func(bool) []sweep.Job { return ComparativeJobs("fig12", 8) }},
		{Token: "13", Group: "fig13",
			Title: "Figure 13 — naive vs Skip It, 10 redundant CBO.X per line (cycles)",
			Note:  "paper: Skip It 15-30% faster (CBO.CLEAN variant; see EXPERIMENTS.md)",
			Build: func(bool) []sweep.Job { return Fig13Jobs(ThreadCounts, 10) }},
		{Token: "14", Group: "fig14", Mops: true,
			Title: "Figure 14 — §7.4 throughput, 5% updates, 2 threads (Mops/s)",
			Note:  "paper: Skip It >= FliT variants; link-and-persist ahead on automatic list/hash",
			Build: func(bool) []sweep.Job { return Fig14Jobs() }},
		{Token: "15", Group: "fig15", Mops: true,
			Title: "Figure 15 — throughput vs update percentage, automatic algorithm (Mops/s)",
			Build: func(quick bool) []sweep.Job {
				pcts := []int{0, 5, 10, 20, 50, 100}
				if quick {
					pcts = []int{0, 5, 20, 50}
				}
				return Fig15Jobs(pcts)
			}},
		{Token: "16", Group: "fig16", Mops: true,
			Title: "Figure 16 — BST (10k keys) throughput vs FliT hash-table size (Mops/s)",
			Note:  "paper: throughput is sensitive to the table size on the small-cache platform",
			Build: func(quick bool) []sweep.Job {
				sizes := []uint64{1 << 6, 1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20}
				if quick {
					sizes = []uint64{1 << 6, 1 << 12, 1 << 16, 1 << 20}
				}
				return Fig16Jobs(sizes)
			}},
		{Token: "ablations", Group: "ablations",
			Title: "Ablations — §5 design choices (cycles)",
			Note:  "widened data array, FSHR count, coalescing, flush-queue depth",
			Build: func(bool) []sweep.Job { return AblationJobs() }},
	}
}

// SetQuick shrinks the sweep knobs for a fast pass. Every executor in a
// fleet must agree on this setting: the knobs feed the job fingerprints, so
// a -quick client against full-size workers fails closed with
// fingerprint-mismatch instead of mixing measurements.
func SetQuick() {
	Reps = 1
	Sizes = []uint64{64, 1024, 4096, 32768}
	ThreadCounts = []int{1, 8}
	PersistOpsPerThr = 4000
}

// FigureJobs builds every job of the selected figures (nil tokens = all), in
// figure order — the canonical flat job list a worker indexes.
func FigureJobs(quick bool, tokens map[string]bool) []sweep.Job {
	var jobs []sweep.Job
	for _, f := range Figures() {
		if tokens != nil && !tokens[f.Token] {
			continue
		}
		jobs = append(jobs, f.Build(quick)...)
	}
	return jobs
}
