package sim

// Deterministic parallel stepping (Config.Parallel > 0).
//
// The SoC is partitioned into shards whose only coupling is the TileLink
// ports: each core plus its private L1 (and flush unit) forms one shard, and
// the L2 plus the DRAM controller form the hub shard. The pdes engine
// advances every shard independently over a window [now, h) whose horizon is
// conservative: h = G + 1 + LinkLatency, where G is the minimum over all
// shards' NextEvent folds. A message sent on a link at cycle t is receivable
// no earlier than t + beats + latency >= t + 1 + latency, so nothing sent
// inside the window can influence any tick inside it — every tick observes
// exactly the state it would have observed under serial stepping.
//
// Mid-window, sends go to producer-side staging (tilelink deferred mode);
// at the barrier the coordinator publishes them in a fixed (port index,
// channel, send order) sequence, rebalances the per-shard line pools, folds
// the shard-local watchdog signatures, fires any sampler/progress-hook
// boundaries the window covered (the horizon is clamped so a window never
// straddles one), and evaluates the exit conditions.
//
// Exit cycles are reconstructed, not observed: the serial loops in Run,
// Drain and the chaos runner interleave their exit checks with single
// stepping, so the cycle at which they stop is a function of when the last
// core finished (boom.DoneAt) and the last cycle any component actually
// acted (q*, the max of the shards' last event ticks). Both are tracked
// exactly, which is what makes the parallel results — return values, final
// Now, every counter, every sampled series, every hang report — byte-equal
// to serial for any worker count. Ticks beyond q* are provably no-ops
// (the fast-forward contract), so the two modes may tick different cycle
// sets without diverging in any observable.

import (
	"fmt"
	"strings"

	"skipit/internal/boom"
	"skipit/internal/l1"
	"skipit/internal/l2"
	"skipit/internal/linepool"
	"skipit/internal/mem"
	"skipit/internal/metrics"
	"skipit/internal/pdes"
	"skipit/internal/tilelink"
)

// Per-shard line pools are rebalanced against the hub pool at every barrier:
// grant buffers flow core-ward and writeback buffers hub-ward, so an
// asymmetric workload would otherwise drain one free list while another
// grows without bound (draining means allocating — the zero-alloc steady
// state would be lost). A shard leaves each barrier holding between poolLo
// and poolHi free buffers.
const (
	poolLo = 16
	poolHi = 64
)

// clientSide folds the client-facing half of a port (B and D deliveries plus
// the client's own staged work) for a core shard's local fast-forward;
// managerSide folds the manager-facing half (A, C, E) for the hub. Both are
// pointer-shaped so converting them to eventSource never allocates.
type clientSide struct{ p *tilelink.ClientPort }

func (c clientSide) NextEvent(last int64) int64 { return c.p.NextEventClient(last) }

type managerSide struct{ p *tilelink.ClientPort }

func (m managerSide) NextEvent(last int64) int64 { return m.p.NextEventManager(last) }

// coreShard is one core + L1 (+ flush unit) partition.
//
//skipit:shard-owned core
type coreShard struct {
	sys  *System
	core *boom.Core
	l1   *l1.DCache
	port *tilelink.ClientPort
	view clientSide
	pool *linepool.Pool

	// lastAct is the last cycle this shard's local fold predicted an event
	// and the shard ticked it — the shard's contribution to q*. ticking is
	// the cycle currently (or last) being ticked, read by the coordinator to
	// place panic reports. skipped accumulates locally fast-forwarded cycles
	// until the barrier drains it into sim.skipped_cycles.
	lastAct int64
	ticking int64
	skipped uint64

	// Shard-local watchdog signature tracking, mirroring StepGuarded:
	// wdLastChange is 1 + the last tick at which this shard's slice of the
	// global progress signature changed. The barrier folds the max.
	wdArmed      bool
	wdSig        uint64
	wdLastChange int64
}

func (sh *coreShard) next(last int64) int64 {
	n := foldNext(last, tilelink.NoEvent, sh.core)
	n = foldNext(last, n, sh.l1)
	n = foldNext(last, n, sh.view)
	return n
}

// NextEvent implements pdes.Shard; called single-threaded at barriers.
func (sh *coreShard) NextEvent(last int64) int64 { return sh.next(last) }

func (sh *coreShard) tick(now int64) {
	sh.ticking = now
	sh.l1.Tick(now)
	sh.core.Tick(now)
	if sh.wdArmed {
		if sig := sh.core.Committed() + sh.port.ClientEvents(); sig != sh.wdSig {
			sh.wdSig = sig
			sh.wdLastChange = now + 1
		}
	}
}

// RunWindow implements pdes.Shard: tick (and locally fast-forward) over
// [from, to), touching no state owned by another shard.
//
//skipit:hotpath
//skipit:shard-step core
func (sh *coreShard) RunWindow(from, to int64) {
	ff := sh.sys.fastForward
	tl := sh.sys.par.tickLast
	for now := from; now < to; {
		if next := sh.next(now - 1); next > now {
			if ff && now != tl {
				if tl > now && tl < next {
					next = tl // land on the observation cycle, then tick it
				}
				if next > to {
					next = to
				}
				sh.skipped += uint64(next - now)
				now = next
				continue
			}
			// Observation landing or fast-forward off: tick the cycle anyway
			// (serial does). It is provably a no-op for architectural state,
			// so it is not an event for lastAct.
			sh.tick(now)
			now++
			continue
		}
		sh.tick(now)
		sh.lastAct = now
		now++
	}
}

// hubShard is the L2 + DRAM partition, owning the manager side of every port.
//
//skipit:shard-owned hub
type hubShard struct {
	sys   *System
	mem   *mem.Memory
	l2    *l2.Cache
	ports []managerSide
	pool  *linepool.Pool

	lastAct int64
	ticking int64
	skipped uint64

	wdArmed      bool
	wdSig        uint64
	wdLastChange int64
}

func (sh *hubShard) next(last int64) int64 {
	n := foldNext(last, tilelink.NoEvent, sh.mem)
	n = foldNext(last, n, sh.l2)
	n = foldNextAll(last, n, sh.ports)
	return n
}

// NextEvent implements pdes.Shard; called single-threaded at barriers.
func (sh *hubShard) NextEvent(last int64) int64 { return sh.next(last) }

func (sh *hubShard) tick(now int64) {
	sh.ticking = now
	sh.mem.Tick(now)
	sh.l2.Tick(now)
	if sh.wdArmed {
		var sig uint64
		for _, p := range sh.ports {
			sig += p.p.ManagerEvents()
		}
		if sig != sh.wdSig {
			sh.wdSig = sig
			sh.wdLastChange = now + 1
		}
	}
}

// RunWindow implements pdes.Shard.
//
//skipit:hotpath
//skipit:shard-step hub
func (sh *hubShard) RunWindow(from, to int64) {
	ff := sh.sys.fastForward
	tl := sh.sys.par.tickLast
	for now := from; now < to; {
		if next := sh.next(now - 1); next > now {
			if ff && now != tl {
				if tl > now && tl < next {
					next = tl
				}
				if next > to {
					next = to
				}
				sh.skipped += uint64(next - now)
				now = next
				continue
			}
			sh.tick(now) //skipit:ignore hotalloc mem.Tick queue appends reuse steady-state capacity; journaling is an opt-in debug mode. CI alloc gate enforces zero steady-state allocs
			now++
			continue
		}
		sh.tick(now) //skipit:ignore hotalloc mem.Tick queue appends reuse steady-state capacity; journaling is an opt-in debug mode. CI alloc gate enforces zero steady-state allocs
		sh.lastAct = now
		now++
	}
}

// parRuntime is the parallel-stepping state hung off System.par. It is
// coordinator state: shard steps may read it (tickLast) but only the
// single-threaded barrier code writes it.
//
//skipit:shard-owned barrier
type parRuntime struct {
	engine *pdes.Engine
	hub    *hubShard
	cores  []*coreShard

	// samplerFired / hookFired track the last boundary cycle each observer
	// fired through, so barriers fire exactly the boundaries serial ticking
	// would have (and Snapshot-visible series stay identical).
	samplerFired int64
	hookFired    int64

	// tickLast, when >= 0, is a cycle every shard must tick rather than
	// locally fast-forward through: the window was clamped there by a
	// sampler/hook boundary or the watchdog's trip cycle. Serial stepping
	// lands on and ticks those cycles, and some per-cycle counters (e.g. the
	// fence drain-stall counter) attribute fast-forwarded gaps lazily at the
	// next tick — the forced tick makes them exact at the cycle an observer
	// reads them, exactly as under serial stepping. Architecturally it is a
	// provable no-op. Written by the coordinator between windows only.
	tickLast int64
}

// ticking returns the cycle shard i (engine index) was last ticking, for
// panic report placement.
func (p *parRuntime) ticking(shard int) int64 {
	if shard == 0 {
		return p.hub.ticking
	}
	return p.cores[shard-1].ticking
}

// initParallel builds the shards and engine; called from New after the
// components are assembled. pools holds the per-core line pools.
func (s *System) initParallel(workers int, pools []*linepool.Pool) {
	p := &parRuntime{samplerFired: -1, hookFired: -1, tickLast: -1}
	hub := &hubShard{sys: s, mem: s.Mem, l2: s.L2, pool: s.pool, lastAct: -1, ticking: -1}
	for _, port := range s.ports {
		hub.ports = append(hub.ports, managerSide{port})
		port.SetDeferred(true)
	}
	p.hub = hub
	// The hub is shard 0 so the coordinator (worker 0) always runs the
	// busiest shard itself.
	shards := make([]pdes.Shard, 0, len(s.Cores)+1)
	shards = append(shards, hub)
	for i := range s.Cores {
		cs := &coreShard{
			sys: s, core: s.Cores[i], l1: s.L1s[i], port: s.ports[i],
			view: clientSide{s.ports[i]}, pool: pools[i], lastAct: -1, ticking: -1,
		}
		p.cores = append(p.cores, cs)
		shards = append(shards, cs)
	}
	p.engine = pdes.New(shards, workers, int64(1+s.cfg.LinkLatency), s.reg)
	s.par = p
}

// armShards seeds the shard-local watchdog signature tracking; called from
// ArmWatchdog.
func (s *System) armShards() {
	p := s.par
	var sig uint64
	for _, m := range p.hub.ports {
		sig += m.p.ManagerEvents()
	}
	p.hub.wdArmed, p.hub.wdSig, p.hub.wdLastChange = true, sig, s.now
	for _, cs := range p.cores {
		cs.wdArmed = true
		cs.wdSig = cs.core.Committed() + cs.port.ClientEvents()
		cs.wdLastChange = s.now
	}
}

// parBarrier runs the single-threaded cross-shard bookkeeping after a
// window: publish staged link messages in fixed order, rebalance line pools,
// drain per-shard skip counts, and fold the watchdog signatures.
func (s *System) parBarrier() {
	p := s.par
	for _, port := range s.ports {
		port.CommitDeferred()
	}
	if hs := p.hub.skipped; hs != 0 {
		s.ctrSkipped.Add(hs)
		p.hub.skipped = 0
	}
	for _, cs := range p.cores {
		if cs.skipped != 0 {
			s.ctrSkipped.Add(cs.skipped)
			cs.skipped = 0
		}
		if n := cs.pool.Free(); n > poolHi {
			linepool.Transfer(s.pool, cs.pool, n-poolLo)
		} else if n < poolLo {
			linepool.Transfer(cs.pool, s.pool, poolLo-n)
		}
	}
	if s.wdLimit > 0 {
		last, sig := s.wdLastChange, p.hub.wdSig
		if p.hub.wdLastChange > last {
			last = p.hub.wdLastChange
		}
		for _, cs := range p.cores {
			sig += cs.wdSig
			if cs.wdLastChange > last {
				last = cs.wdLastChange
			}
		}
		s.wdLastChange, s.wdLastSig = last, sig
	}
}

// qStar returns the last cycle any shard actually acted.
func (s *System) qStar() int64 {
	q := s.par.hub.lastAct
	for _, cs := range s.par.cores {
		if cs.lastAct > q {
			q = cs.lastAct
		}
	}
	return q
}

// nextBoundary returns the smallest positive multiple-of-iv cycle strictly
// greater than fired (boundary 0 is represented by fired == -1).
func nextBoundary(fired, iv int64) int64 {
	b := fired + 1
	if r := b % iv; r != 0 {
		b += iv - r
	}
	return b
}

// fireBoundaries fires every sampler and progress-hook boundary in
// (fired, through], in cycle order with the sampler before the hook at equal
// cycles — exactly the order Step produces. The horizon clamps guarantee the
// counters read here hold their post-boundary-tick values.
func (s *System) fireBoundaries(through int64) {
	p := s.par
	for {
		sb, hb := int64(-1), int64(-1)
		if s.sampler != nil {
			if b := nextBoundary(p.samplerFired, s.sampler.Interval()); b <= through {
				sb = b
			}
		}
		if s.hookInterval > 0 {
			if b := nextBoundary(p.hookFired, s.hookInterval); b <= through {
				hb = b
			}
		}
		switch {
		case sb >= 0 && (hb < 0 || sb <= hb):
			s.sampler.Tick(sb)
			p.samplerFired = sb
		case hb >= 0:
			s.hook(hb)
			p.hookFired = hb
		default:
			return
		}
	}
}

// parHorizon computes the next window's exclusive end: the engine's
// conservative event horizon clamped to the next sampler/hook boundary (+1,
// so the barrier lands just past it and the boundary fires with post-tick
// counter values), the watchdog's trip cycle, and the caller's limits —
// then floored at now+1 so a window always makes progress (mirroring the
// serial loop's unconditional Step when fast-forward finds nothing to skip).
func (s *System) parHorizon(deadline int64, extra ...int64) int64 {
	h := s.par.engine.Horizon(s.now - 1)
	observed := false
	if s.sampler != nil {
		if b := nextBoundary(s.par.samplerFired, s.sampler.Interval()) + 1; b <= h {
			h = b
			observed = true
		}
	}
	if s.hookInterval > 0 {
		if b := nextBoundary(s.par.hookFired, s.hookInterval) + 1; b <= h {
			h = b
			observed = true
		}
	}
	if s.wdLimit > 0 {
		if d := s.wdLastChange + s.wdLimit; d <= h {
			h = d
			observed = true
		}
	}
	if deadline < h {
		h = deadline
		observed = false
	}
	for _, l := range extra {
		if l < h {
			h = l
			observed = false
		}
	}
	if h < s.now+1 {
		h = s.now + 1
	}
	// Shards must tick (not skip) an observation landing — see tickLast.
	if observed {
		s.par.tickLast = h - 1
	} else {
		s.par.tickLast = -1
	}
	return h
}

// maxDoneAt returns the latest boom.DoneAt across cores (-1 when no core
// ever finished a program).
func (s *System) maxDoneAt() int64 {
	d := int64(-1)
	for _, c := range s.Cores {
		if da := c.DoneAt(); da > d {
			d = da
		}
	}
	return d
}

func (s *System) allCoresDone() bool {
	for _, c := range s.Cores {
		if !c.Done() {
			return false
		}
	}
	return true
}

// runParallel is Run's windowed loop (programs already loaded). The serial
// loop latches "all cores done" one tick after it happens, re-checks
// quiescence each subsequent tick, and returns (t_done+1) with the clock at
// max(t_done+1, q*)+1; both are reconstructed here from DoneAt and q*.
func (s *System) runParallel(deadline, limit int64) (int64, error) {
	startNow := s.now
	var ret int64
	var err error
	s.par.engine.Session(func(window func(from, to int64)) {
		defer rethrowShardPanic()
		for {
			if s.allCoresDone() && s.Quiescent() {
				tDone := s.maxDoneAt()
				if startNow > tDone {
					tDone = startNow
				}
				f := tDone + 1
				if q := s.qStar(); q > f {
					f = q
				}
				f++
				if f <= deadline {
					s.now = f
					s.fireBoundaries(f - 1)
					ret = tDone + 1
					return
				}
				// The serial loop's deadline check wins: it would have hit
				// the limit before reaching its exit iteration.
			}
			s.fireBoundaries(s.now - 1)
			if s.now >= deadline {
				err = fmt.Errorf("%w (limit %d): %s", ErrTimeout, limit, s.describeStall())
				return
			}
			h := s.parHorizon(deadline)
			window(s.now, h)
			s.now = h
			s.parBarrier()
		}
	})
	return ret, err
}

// drainParallel is Drain's windowed loop.
func (s *System) drainParallel(deadline int64) error {
	var err error
	windowed := false
	s.par.engine.Session(func(window func(from, to int64)) {
		defer rethrowShardPanic()
		for {
			if s.Quiescent() {
				if windowed {
					// Serial returns right after the tick that drained the
					// last in-flight transaction.
					s.now = s.qStar() + 1
					s.fireBoundaries(s.now - 1)
				}
				return
			}
			s.fireBoundaries(s.now - 1)
			if s.now >= deadline {
				err = fmt.Errorf("%w while draining: %s", ErrTimeout, s.describeStall())
				return
			}
			h := s.parHorizon(deadline)
			window(s.now, h)
			s.now = h
			s.parBarrier()
			windowed = true
		}
	})
	return err
}

// rethrowShardPanic unwraps a *pdes.ShardPanic escaping an unguarded window
// back into the original panic value, for parity with serial Step.
func rethrowShardPanic() {
	if rec := recover(); rec != nil {
		if sp, ok := rec.(*pdes.ShardPanic); ok {
			panic(sp.Val)
		}
		panic(rec)
	}
}

// AdvanceWindowChecked advances a parallel system by one conservative window
// under the watchdog and panic guard — the windowed analogue of StepGuarded
// plus fast-forward, used by the chaos runner. The horizon is clamped to the
// given limits (the caller passes its cycle bound and the next scheduled
// fault's cycle, so faults land between windows exactly as they land between
// serial steps). When the window ends in the terminal state — every core
// done and the SoC quiescent — the clock is placed exactly where the serial
// checked loop would have stopped.
func (s *System) AdvanceWindowChecked(limits ...int64) (err error) {
	if s.par == nil {
		panic("sim: AdvanceWindowChecked needs a parallel system (Config.Parallel > 0)")
	}
	if len(limits) == 0 {
		panic("sim: AdvanceWindowChecked needs at least one cycle limit")
	}
	deadline := limits[0]
	for _, l := range limits[1:] {
		if l < deadline {
			deadline = l
		}
	}
	from := s.now
	defer func() {
		if rec := recover(); rec != nil {
			sp, ok := rec.(*pdes.ShardPanic)
			if !ok {
				panic(rec)
			}
			// Panic reports are best-effort placed at the shard's last
			// ticking cycle; stacks are host-dependent, so panic artifacts
			// sit outside the bit-identity contract.
			s.now = s.par.ticking(sp.Shard)
			rep := s.buildHangReport("panic")
			rep.Panic = fmt.Sprint(sp.Val)
			rep.Stack = string(sp.Stack)
			err = &HangError{Report: rep}
		}
	}()
	h := s.parHorizon(deadline)
	s.par.engine.Session(func(window func(from, to int64)) {
		window(from, h)
	})
	s.now = h
	s.parBarrier()
	if s.wdLimit > 0 && s.now-s.wdLastChange >= s.wdLimit {
		s.fireBoundaries(s.now - 1)
		s.ctrWatchdogTrips.Inc()
		rep := s.buildHangReport("no-progress")
		rep.Window = s.now - s.wdLastChange
		return &HangError{Report: rep}
	}
	if s.allCoresDone() && s.Quiescent() {
		f := s.maxDoneAt()
		if q := s.qStar(); q > f {
			f = q
		}
		f++
		if f < from+1 {
			f = from + 1
		}
		s.now = f
	}
	s.fireBoundaries(s.now - 1)
	return nil
}

// StripHostOnly removes the snapshot entries that are host- or
// schedule-dependent by design: skip counts (parallel shards skip locally,
// so totals differ from serial while remaining identical across worker
// counts), line-pool traffic (per-shard pools split differently than the
// serial shared pool), pdes scheduler telemetry, and host-throughput rates.
// Everything that survives is part of the serial/parallel bit-identity
// contract.
func StripHostOnly(snap *metrics.Snapshot) {
	for key := range snap.Counters {
		if key == "sim.skipped_cycles" || strings.HasPrefix(key, "pool.") || strings.HasPrefix(key, "pdes.") {
			delete(snap.Counters, key)
		}
	}
	for key := range snap.Histograms {
		if strings.HasPrefix(key, "pdes.") {
			delete(snap.Histograms, key)
		}
	}
	for key := range snap.Derived {
		if key == "ff_skipped_cycle_ratio" || key == "pool_hit_rate" ||
			key == "host_sim_cycles_per_sec" || strings.HasPrefix(key, "pdes.") {
			delete(snap.Derived, key)
		}
	}
}
