package tilelink

import "fmt"

// Link is one unidirectional TileLink channel between two agents. It models
// occupancy in beats: a message with a data payload occupies the channel for
// lineBytes/beatBytes consecutive cycles (4 cycles for a 64 B line on the
// SonicBOOM's 16 B system bus, §3.3/Fig. 3), a data-less message for one
// cycle, and delivery additionally incurs a fixed wire latency.
//
// Links are driven by the simulation clock: producers call Send with the
// current cycle, consumers call Recv with the current cycle. A message sent
// at cycle t is never receivable before t+1, which keeps the component tick
// order of the system loop free of zero-cycle combinational paths.
type Link struct {
	Name      string
	BeatBytes uint64
	LineBytes uint64
	Latency   int // wire cycles added after the final beat

	busyUntil int64 // last cycle at which the channel is occupied
	q         []inflight
}

type inflight struct {
	msg     Msg
	readyAt int64 // first cycle at which Recv may return the message
}

// NewLink returns a link with the given occupancy parameters. latency is the
// number of cycles between the last beat leaving the sender and the message
// becoming receivable.
func NewLink(name string, beatBytes, lineBytes uint64, latency int) *Link {
	if beatBytes == 0 || lineBytes%beatBytes != 0 {
		panic(fmt.Sprintf("tilelink: link %s: line %d not a multiple of beat %d", name, lineBytes, beatBytes))
	}
	return &Link{Name: name, BeatBytes: beatBytes, LineBytes: lineBytes, Latency: latency}
}

// Beats returns the number of beats the message occupies on this link.
func (l *Link) Beats(m Msg) int64 {
	if m.Op.HasData() {
		return int64(l.LineBytes / l.BeatBytes)
	}
	return 1
}

// CanSend reports whether the channel can accept the first beat of a new
// message at cycle now.
func (l *Link) CanSend(now int64) bool { return l.busyUntil <= now }

// Send enqueues a message at cycle now. It reports false without side
// effects when the channel is occupied; the caller must retry on a later
// cycle, as hardware would hold valid high until ready.
func (l *Link) Send(now int64, m Msg) bool {
	if !l.CanSend(now) {
		return false
	}
	if err := m.Validate(l.LineBytes); err != nil {
		panic(err)
	}
	beats := l.Beats(m)
	l.busyUntil = now + beats
	l.q = append(l.q, inflight{msg: m, readyAt: now + beats + int64(l.Latency)})
	return true
}

// Recv returns the oldest message that has fully arrived by cycle now, or
// ok=false. Messages are delivered strictly in send order.
func (l *Link) Recv(now int64) (Msg, bool) {
	if len(l.q) == 0 || l.q[0].readyAt > now {
		return Msg{}, false
	}
	m := l.q[0].msg
	// Shift rather than re-slice so the backing array does not grow
	// without bound over long simulations.
	copy(l.q, l.q[1:])
	l.q = l.q[:len(l.q)-1]
	return m, true
}

// Peek is Recv without consuming the message.
func (l *Link) Peek(now int64) (Msg, bool) {
	if len(l.q) == 0 || l.q[0].readyAt > now {
		return Msg{}, false
	}
	return l.q[0].msg, true
}

// Pending returns the number of in-flight messages (sent, not yet received).
func (l *Link) Pending() int { return len(l.q) }

// Reset drops all in-flight messages, e.g. when simulating a crash that
// destroys volatile state.
func (l *Link) Reset() {
	l.q = l.q[:0]
	l.busyUntil = 0
}

// ClientPort bundles the five channels of one client<->manager link, from the
// client's perspective: A, C, E are outbound; B, D are inbound.
type ClientPort struct {
	A, C, E *Link // client -> manager
	B, D    *Link // manager -> client
}

// NewClientPort builds a five-channel link bundle. All channels share beat
// and line geometry; only C and D can carry data in our protocol subset, but
// uniform geometry keeps the model simple and matches the shared system bus.
func NewClientPort(name string, beatBytes, lineBytes uint64, latency int) *ClientPort {
	mk := func(ch string) *Link {
		return NewLink(name+"."+ch, beatBytes, lineBytes, latency)
	}
	return &ClientPort{A: mk("A"), B: mk("B"), C: mk("C"), D: mk("D"), E: mk("E")}
}

// Pending returns the total number of in-flight messages across all five
// channels; zero means the link bundle is quiescent.
func (p *ClientPort) Pending() int {
	return p.A.Pending() + p.B.Pending() + p.C.Pending() + p.D.Pending() + p.E.Pending()
}

// Reset drops in-flight messages on all five channels.
func (p *ClientPort) Reset() {
	p.A.Reset()
	p.B.Reset()
	p.C.Reset()
	p.D.Reset()
	p.E.Reset()
}
