// Package driver loads Go packages and runs go/analysis analyzers over them
// in-process. It is the engine behind `skipit-vet ./...` (standalone mode)
// and the antest fixture runner.
//
// x/tools' own multichecker sits on go/packages, which drags in export-data
// readers and x/sync; this driver instead shells out to `go list -json -deps`
// for package metadata (the go command is the one tool guaranteed present)
// and type-checks every non-standard-library package from source in
// dependency order. Standard-library imports are resolved by the compiler's
// source importer. Everything is typechecked within one *token.FileSet and
// one importer universe, so type identities line up across packages and
// package facts flow along import edges exactly as in a real vet run.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// listPkg is the subset of `go list -json` output the driver consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	Standard   bool
	GoFiles    []string
	ForTest    string
	Imports    []string
	ImportMap  map[string]string
	Module     *struct {
		Path      string
		Version   string
		GoVersion string
		Main      bool
	}
	Error *struct{ Err string }
}

// Package is one loaded, type-checked package.
type Package struct {
	ID        string // go list ImportPath, unique per compilation unit
	PkgPath   string // canonical import path (test variants share the base's)
	Files     []*ast.File
	GoFiles   []string
	Types     *types.Package
	TypesInfo *types.Info
	Module    *analysis.Module
	importMap map[string]string
	imports   []string
	// Listed reports whether the package matched the load patterns itself
	// (as opposed to being pulled in as a dependency).
	Listed bool
}

// Diagnostic is one finding, with its analyzer and resolved position.
type Diagnostic struct {
	Analyzer string
	Posn     token.Position
	Message  string
}

// Loader loads and type-checks packages.
type Loader struct {
	Fset  *token.FileSet
	Tests bool   // include _test.go compilation units
	Dir   string // working directory for go list ("" = current)

	built map[string]*Package // by ID
	src   types.Importer      // source importer for the standard library
}

// Load runs `go list` on the patterns and type-checks every non-standard
// package in dependency order. It returns the loaded packages in that order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if l.Fset == nil {
		l.Fset = token.NewFileSet()
	}
	l.built = make(map[string]*Package)
	l.src = importer.ForCompiler(l.Fset, "source", nil)

	args := []string{"list", "-e", "-json=ImportPath,Dir,Name,Standard,GoFiles,ForTest,Imports,ImportMap,Module,Error", "-deps"}
	if l.Tests {
		args = append(args, "-test")
	}
	args = append(args, "--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, errb.String())
	}

	var metas []*listPkg
	dec := json.NewDecoder(&out)
	for dec.More() {
		m := new(listPkg)
		if err := dec.Decode(m); err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		metas = append(metas, m)
	}

	// `go list -deps` emits dependencies before dependents, so a single
	// forward pass type-checks every import before its importers.
	var pkgs []*Package
	for _, m := range metas {
		if m.Standard {
			continue // resolved by the source importer on demand
		}
		if strings.HasSuffix(m.ImportPath, ".test") || m.Name == "" {
			continue // synthesized test main packages
		}
		if m.Error != nil && len(m.GoFiles) == 0 {
			return nil, fmt.Errorf("%s: %s", m.ImportPath, m.Error.Err)
		}
		p, err := l.typecheck(m)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}

	// Mark the packages the caller actually named (rather than deps): a
	// second plain `go list` of the same patterns.
	named, err := l.listNames(patterns)
	if err != nil {
		return nil, err
	}
	for _, p := range pkgs {
		if named[p.PkgPath] {
			p.Listed = true
		}
	}
	return pkgs, nil
}

func (l *Loader) listNames(patterns []string) (map[string]bool, error) {
	args := []string{"list", "-e", "--"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v", patterns, err)
	}
	names := make(map[string]bool)
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if line != "" {
			names[strings.TrimSpace(line)] = true
		}
	}
	return names, nil
}

// typecheck parses and type-checks one package from source.
func (l *Loader) typecheck(m *listPkg) (*Package, error) {
	var files []*ast.File
	var goFiles []string
	for _, f := range m.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(m.Dir, f)
		}
		af, err := parser.ParseFile(l.Fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", m.ImportPath, err)
		}
		files = append(files, af)
		goFiles = append(goFiles, f)
	}

	pkgPath := m.ImportPath
	if i := strings.Index(pkgPath, " ["); i >= 0 {
		pkgPath = pkgPath[:i] // "p [p.test]" variants share the base path
	}

	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Instances:    make(map[*ast.Ident]types.Instance),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:       make(map[ast.Node]*types.Scope),
		FileVersions: make(map[*ast.File]string),
	}
	p := &Package{
		ID:        m.ImportPath,
		PkgPath:   pkgPath,
		Files:     files,
		GoFiles:   goFiles,
		TypesInfo: info,
		importMap: m.ImportMap,
		imports:   m.Imports,
	}
	if m.Module != nil {
		p.Module = &analysis.Module{Path: m.Module.Path, Version: m.Module.Version, GoVersion: m.Module.GoVersion}
	}
	conf := &types.Config{
		Importer: &pkgImporter{l: l, pkg: p},
		Error:    func(error) {}, // collect soft errors but keep going
	}
	tpkg, err := conf.Check(pkgPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", m.ImportPath, err)
	}
	p.Types = tpkg
	l.built[m.ImportPath] = p
	if _, exists := l.built[pkgPath]; m.ImportPath == pkgPath || !exists {
		// A test variant also answers for its base path unless the base was
		// built separately (importers resolve through ImportMap anyway).
		l.built[pkgPath] = p
	}
	return p, nil
}

// pkgImporter resolves one package's imports: module-local packages from the
// loader's already-built set (honoring the package's ImportMap for test
// variants), standard-library packages through the source importer.
type pkgImporter struct {
	l   *Loader
	pkg *Package
}

func (i *pkgImporter) Import(path string) (*types.Package, error) {
	id := path
	if m, ok := i.pkg.importMap[path]; ok {
		id = m
	}
	if p, ok := i.l.built[id]; ok {
		return p.Types, nil
	}
	return i.l.src.Import(path)
}

// Run executes the analyzers (and their transitive requirements) over each
// package, returning all root-analyzer diagnostics. Suppressed diagnostics
// never reach the returned slice (analyzers filter via suppress.Apply).
// Identical findings reported for both a package and its test variant are
// deduplicated.
func Run(pkgs []*Package, fset *token.FileSet, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	return RunCached(pkgs, fset, analyzers, nil)
}

// RunCached is Run with an optional fact-store cache (nil disables caching).
// A package whose cache key matches skips analysis entirely: its stored
// diagnostics replay through the normal sink and its exported facts decode
// back into the fact store for downstream cache-miss packages. Caching is
// per package, whole-suite: either every analyzer's result for a package
// comes from the cache, or every analyzer runs — so the cross-analyzer
// coupling inside a package (staleignore reading which directives the rest
// of the suite consumed) is preserved bit for bit.
func RunCached(pkgs []*Package, fset *token.FileSet, analyzers []*analysis.Analyzer, cache *Cache) ([]Diagnostic, error) {
	for _, a := range analyzers {
		if err := analysis.Validate([]*analysis.Analyzer{a}); err != nil {
			return nil, err
		}
	}
	facts := newFactStore()
	var diags []Diagnostic
	seen := make(map[string]bool)
	emit := func(d Diagnostic) {
		key := fmt.Sprintf("%s|%s|%s", d.Analyzer, d.Posn, d.Message)
		if seen[key] {
			return
		}
		seen[key] = true
		diags = append(diags, d)
	}
	var reg map[string]reflect.Type
	depKeys := make(map[string]string)
	if cache != nil {
		reg = factRegistry(analyzers)
	}
	for _, p := range pkgs {
		var key string
		if cache != nil {
			k, err := cache.key(p, analyzers, depKeys)
			if err != nil {
				return nil, err
			}
			key = k
			depKeys[p.ID] = k
			if e, ok := cache.load(k); ok {
				// Decode into a scratch store first: a torn or foreign entry
				// must fall back to a live run, not half-apply its facts.
				scratch := newFactStore()
				if err := scratch.restore(p, e, reg); err == nil {
					facts.merge(scratch)
					for _, cd := range e.Diags {
						emit(Diagnostic{
							Analyzer: cd.Analyzer,
							Posn:     token.Position{Filename: cd.File, Line: cd.Line, Column: cd.Col},
							Message:  cd.Message,
						})
					}
					continue
				}
			}
		}
		rec := &cacheEntry{Package: p.ID}
		recSeen := make(map[string]bool)
		results := make(map[*analysis.Analyzer]interface{})
		for _, a := range analyzers {
			if err := runAnalyzer(a, p, fset, facts, results, func(name string, d analysis.Diagnostic) {
				posn := fset.Position(d.Pos)
				emit(Diagnostic{Analyzer: name, Posn: posn, Message: d.Message})
				if cache != nil {
					k := fmt.Sprintf("%s|%s|%s", name, posn, d.Message)
					if !recSeen[k] {
						recSeen[k] = true
						rec.Diags = append(rec.Diags, cacheDiag{
							Analyzer: name,
							File:     posn.Filename,
							Line:     posn.Line,
							Col:      posn.Column,
							Message:  d.Message,
						})
					}
				}
			}); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, p.ID, err)
			}
		}
		if cache != nil {
			if err := facts.snapshot(p, rec); err != nil {
				return nil, fmt.Errorf("cache snapshot %s: %v", p.ID, err)
			}
			if err := cache.store(key, rec); err != nil {
				return nil, fmt.Errorf("cache store %s: %v", p.ID, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Posn.Filename != b.Posn.Filename {
			return a.Posn.Filename < b.Posn.Filename
		}
		if a.Posn.Line != b.Posn.Line {
			return a.Posn.Line < b.Posn.Line
		}
		if a.Posn.Column != b.Posn.Column {
			return a.Posn.Column < b.Posn.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// runAnalyzer runs a (and its requirements, memoized in results) on p.
// Requirement runs report through the same callback as roots: every analyzer
// in the suite is in the root set anyway, and routing requirement
// diagnostics to the real sink means root ordering cannot swallow them (the
// caller deduplicates, so an analyzer reached both as a root and as another
// root's requirement reports once).
func runAnalyzer(a *analysis.Analyzer, p *Package, fset *token.FileSet, facts *factStore, results map[*analysis.Analyzer]interface{}, report func(string, analysis.Diagnostic)) error {
	if _, done := results[a]; done {
		return nil
	}
	for _, req := range a.Requires {
		if err := runAnalyzer(req, p, fset, facts, results, report); err != nil {
			return err
		}
	}
	resultOf := make(map[*analysis.Analyzer]interface{})
	for _, req := range a.Requires {
		resultOf[req] = results[req]
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      p.Files,
		Pkg:        p.Types,
		TypesInfo:  p.TypesInfo,
		TypesSizes: types.SizesFor("gc", runtime.GOARCH),
		Module:     p.Module,
		ResultOf:   resultOf,
		Report:     func(d analysis.Diagnostic) { report(a.Name, d) },
		ReadFile:   os.ReadFile,
	}
	facts.bind(pass, p)
	res, err := a.Run(pass)
	if err != nil {
		return err
	}
	if a.ResultType != nil && res != nil && reflect.TypeOf(res) != a.ResultType {
		return fmt.Errorf("result type %T does not match declared %v", res, a.ResultType)
	}
	results[a] = res
	return nil
}

// factStore implements in-process package/object facts. Package facts are
// keyed by package path so that facts exported while analyzing a package are
// visible to its importers regardless of *types.Package identity.
type factStore struct {
	pkgFacts map[string]map[reflect.Type]analysis.Fact
	objFacts map[types.Object]map[reflect.Type]analysis.Fact
}

func newFactStore() *factStore {
	return &factStore{
		pkgFacts: make(map[string]map[reflect.Type]analysis.Fact),
		objFacts: make(map[types.Object]map[reflect.Type]analysis.Fact),
	}
}

// merge copies every fact in other into s (cache restores decode into a
// scratch store so a mid-restore failure cannot half-apply).
func (s *factStore) merge(other *factStore) {
	for path, m := range other.pkgFacts {
		dst := s.pkgFacts[path]
		if dst == nil {
			dst = make(map[reflect.Type]analysis.Fact)
			s.pkgFacts[path] = dst
		}
		for t, f := range m {
			dst[t] = f
		}
	}
	for obj, m := range other.objFacts {
		dst := s.objFacts[obj]
		if dst == nil {
			dst = make(map[reflect.Type]analysis.Fact)
			s.objFacts[obj] = dst
		}
		for t, f := range m {
			dst[t] = f
		}
	}
}

func (s *factStore) bind(pass *analysis.Pass, p *Package) {
	pass.ImportPackageFact = func(pkg *types.Package, fact analysis.Fact) bool {
		f, ok := s.pkgFacts[pkg.Path()][reflect.TypeOf(fact)]
		if !ok {
			return false
		}
		reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
		return true
	}
	pass.ExportPackageFact = func(fact analysis.Fact) {
		m := s.pkgFacts[p.PkgPath]
		if m == nil {
			m = make(map[reflect.Type]analysis.Fact)
			s.pkgFacts[p.PkgPath] = m
		}
		m[reflect.TypeOf(fact)] = fact
	}
	pass.AllPackageFacts = func() []analysis.PackageFact {
		var out []analysis.PackageFact
		for path, m := range s.pkgFacts {
			pkg := findImported(pass.Pkg, path)
			if pkg == nil {
				continue
			}
			for _, f := range m {
				out = append(out, analysis.PackageFact{Package: pkg, Fact: f})
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Package.Path() < out[j].Package.Path() })
		return out
	}
	pass.ImportObjectFact = func(obj types.Object, fact analysis.Fact) bool {
		f, ok := s.objFacts[obj][reflect.TypeOf(fact)]
		if !ok {
			return false
		}
		reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(f).Elem())
		return true
	}
	pass.ExportObjectFact = func(obj types.Object, fact analysis.Fact) {
		m := s.objFacts[obj]
		if m == nil {
			m = make(map[reflect.Type]analysis.Fact)
			s.objFacts[obj] = m
		}
		m[reflect.TypeOf(fact)] = fact
	}
	pass.AllObjectFacts = func() []analysis.ObjectFact {
		var out []analysis.ObjectFact
		for obj, m := range s.objFacts {
			for _, f := range m {
				out = append(out, analysis.ObjectFact{Object: obj, Fact: f})
			}
		}
		return out
	}
}

// findImported locates a package by path in the transitive imports of pkg
// (or pkg itself), for AllPackageFacts' Package field.
func findImported(pkg *types.Package, path string) *types.Package {
	if pkg.Path() == path {
		return pkg
	}
	seen := make(map[*types.Package]bool)
	var walk func(p *types.Package) *types.Package
	walk = func(p *types.Package) *types.Package {
		if seen[p] {
			return nil
		}
		seen[p] = true
		for _, imp := range p.Imports() {
			if imp.Path() == path {
				return imp
			}
			if f := walk(imp); f != nil {
				return f
			}
		}
		return nil
	}
	return walk(pkg)
}
