package shardiso_test

import (
	"testing"

	"skipit/internal/analysis/antest"
	"skipit/internal/analysis/shardiso"
)

// TestShardIso runs the analyzer over a miniature of the real parallel
// runtime: core- and hub-owned component packages, barrier bookkeeping, an
// unannotated staging port, and shard-step roots. The core step contains a
// deliberately planted cross-shard mutation reached through a helper — the
// finding must carry the witness chain down to the field write in the l2
// fixture package, proving Owned and Touches facts cross package
// boundaries.
func TestShardIso(t *testing.T) {
	antest.Run(t, shardiso.Analyzer,
		antest.Dir(t, "shardiso/internal/l1"),
		antest.Dir(t, "shardiso/internal/l2"),
		antest.Dir(t, "shardiso/internal/sim"))
}
