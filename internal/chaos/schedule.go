// Package chaos is a deterministic fault-injection harness for the simulated
// SoC: seeded schedules of timing perturbations (link jitter, stalls,
// acceptance backpressure), structural squeezes (MSHR/FSHR/ListBuffer
// capacity, forced nacks) and transient ECC-style bit flips, plus a fuzzer
// that runs random programs under random schedules with the invariant
// checker and forward-progress watchdog armed, and a shrinker that reduces
// failures to minimal replayable repro artifacts.
//
// Everything is derived from explicit seeds: the same seed always yields the
// same schedule, the same run, and the same shrunk repro.
package chaos

import (
	"fmt"
	"sort"

	"skipit/internal/detrand"
)

// Kind names one fault class. String-valued so schedules read naturally in
// .chaos.json artifacts.
type Kind string

const (
	// LinkDelay adds Extra cycles of delivery latency to every message
	// sent on the channel during the window. Delivery order is preserved.
	LinkDelay Kind = "link-delay"
	// LinkStall holds the channel's receive side (beat stall) during the
	// window: ready messages are not delivered.
	LinkStall Kind = "link-stall"
	// LinkRefuse makes the channel refuse new sends during the window
	// (acceptance backpressure); senders retry as for ordinary occupancy.
	LinkRefuse Kind = "link-refuse"
	// L1Nack forces the L1 to nack every request processed in the window.
	L1Nack Kind = "l1-nack"
	// L1MSHRSqueeze caps the L1's usable MSHRs at Quota for the window.
	L1MSHRSqueeze Kind = "l1-mshr-squeeze"
	// FSHRSqueeze caps the flush unit's usable FSHRs at Quota.
	FSHRSqueeze Kind = "fshr-squeeze"
	// L2MSHRSqueeze caps the L2's usable MSHRs at Quota.
	L2MSHRSqueeze Kind = "l2-mshr-squeeze"
	// L2ListBufferSqueeze caps the L2's usable ListBuffer depth at Quota.
	L2ListBufferSqueeze Kind = "l2-listbuffer-squeeze"
	// L1BitFlip flips Bit of the line holding Addr in core Core's L1 at
	// Cycle (clean lines only; dirty targets are flagged unrecoverable).
	L1BitFlip Kind = "l1-bit-flip"
	// L2BitFlip is the L2 counterpart.
	L2BitFlip Kind = "l2-bit-flip"
)

// IsWindow reports whether the kind perturbs behavior over [Cycle,
// Cycle+Duration) rather than firing once at Cycle.
func (k Kind) IsWindow() bool { return k != L1BitFlip && k != L2BitFlip }

// Fault is one (cycle, site, fault) tuple. Site addressing: Core selects the
// L1/link/flush-unit instance (ignored for L2 kinds); Channel selects the
// TileLink channel (0..4 = A,B,C,D,E) for link kinds.
type Fault struct {
	Cycle    int64 `json:"cycle"`
	Kind     Kind  `json:"kind"`
	Core     int   `json:"core,omitempty"`
	Channel  int   `json:"channel,omitempty"`
	Duration int64 `json:"duration,omitempty"`
	// Extra is the added latency for LinkDelay.
	Extra int64 `json:"extra,omitempty"`
	// Quota is the capacity cap for squeeze kinds.
	Quota int `json:"quota,omitempty"`
	// Addr and Bit target bit flips.
	Addr uint64 `json:"addr,omitempty"`
	Bit  uint64 `json:"bit,omitempty"`
}

// window returns the fault's active interval [from, to).
func (f *Fault) window() (from, to int64) {
	d := f.Duration
	if d < 1 {
		d = 1
	}
	return f.Cycle, f.Cycle + d
}

// activeAt reports whether a window fault is live at cycle now.
func (f *Fault) activeAt(now int64) bool {
	from, to := f.window()
	return now >= from && now < to
}

func (f Fault) String() string {
	s := fmt.Sprintf("@%d %s", f.Cycle, f.Kind)
	switch f.Kind {
	case LinkDelay, LinkStall, LinkRefuse:
		s += fmt.Sprintf(" core=%d ch=%c dur=%d", f.Core, 'A'+rune(f.Channel), f.Duration)
		if f.Kind == LinkDelay {
			s += fmt.Sprintf(" extra=%d", f.Extra)
		}
	case L1Nack:
		s += fmt.Sprintf(" core=%d dur=%d", f.Core, f.Duration)
	case L1MSHRSqueeze, FSHRSqueeze:
		s += fmt.Sprintf(" core=%d dur=%d quota=%d", f.Core, f.Duration, f.Quota)
	case L2MSHRSqueeze, L2ListBufferSqueeze:
		s += fmt.Sprintf(" dur=%d quota=%d", f.Duration, f.Quota)
	case L1BitFlip:
		s += fmt.Sprintf(" core=%d addr=%#x bit=%d", f.Core, f.Addr, f.Bit)
	case L2BitFlip:
		s += fmt.Sprintf(" addr=%#x bit=%d", f.Addr, f.Bit)
	}
	return s
}

// Schedule is an ordered fault list. Normalize sorts it by cycle (stable, so
// equal-cycle faults keep their authored order); Arm requires a normalized
// schedule and Generate returns one.
type Schedule struct {
	Faults []Fault `json:"faults"`
}

// Normalize sorts the faults by cycle, preserving authored order within a
// cycle.
func (s *Schedule) Normalize() {
	sort.SliceStable(s.Faults, func(i, j int) bool { return s.Faults[i].Cycle < s.Faults[j].Cycle })
}

// GenConfig parameterizes schedule generation.
type GenConfig struct {
	Cores     int
	NumFaults int
	// Faults are placed in [StartCycle, StartCycle+CycleSpan).
	StartCycle int64
	CycleSpan  int64
	// MaxDuration caps window lengths. Keep it well below the watchdog
	// limit so drained backpressure is never mistaken for a hang.
	MaxDuration int64
	// MaxExtra caps LinkDelay jitter.
	MaxExtra int64
	// MaxQuota caps squeeze quotas (quotas are drawn from [0, MaxQuota]).
	MaxQuota int
	// AddrPool supplies bit-flip target addresses (typically the address
	// set the fuzzed programs touch). Empty disables bit-flip faults.
	AddrPool []uint64
}

// DefaultGenConfig returns a fault mix sized for the default SoC: windows two
// orders of magnitude below the usual watchdog limit.
func DefaultGenConfig(cores int) GenConfig {
	return GenConfig{
		Cores:       cores,
		NumFaults:   12,
		StartCycle:  0,
		CycleSpan:   20_000,
		MaxDuration: 300,
		MaxExtra:    40,
		MaxQuota:    2,
	}
}

var windowKinds = []Kind{
	LinkDelay, LinkStall, LinkRefuse,
	L1Nack, L1MSHRSqueeze, FSHRSqueeze,
	L2MSHRSqueeze, L2ListBufferSqueeze,
}

// Generate derives a schedule from the seed: the same (seed, cfg) pair always
// yields the same schedule.
func Generate(seed int64, cfg GenConfig) Schedule {
	rng := detrand.New(seed)
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	if cfg.CycleSpan < 1 {
		cfg.CycleSpan = 1
	}
	if cfg.MaxDuration < 1 {
		cfg.MaxDuration = 1
	}
	kinds := windowKinds
	if len(cfg.AddrPool) > 0 {
		kinds = append(append([]Kind{}, windowKinds...), L1BitFlip, L2BitFlip)
	}
	var s Schedule
	for i := 0; i < cfg.NumFaults; i++ {
		f := Fault{
			Cycle: cfg.StartCycle + rng.Int63n(cfg.CycleSpan),
			Kind:  kinds[rng.Intn(len(kinds))],
		}
		switch f.Kind {
		case LinkDelay, LinkStall, LinkRefuse:
			f.Core = rng.Intn(cfg.Cores)
			f.Channel = rng.Intn(5)
			f.Duration = 1 + rng.Int63n(cfg.MaxDuration)
			if f.Kind == LinkDelay {
				f.Extra = 1 + rng.Int63n(maxi64(cfg.MaxExtra, 1))
			}
		case L1Nack:
			f.Core = rng.Intn(cfg.Cores)
			f.Duration = 1 + rng.Int63n(cfg.MaxDuration)
		case L1MSHRSqueeze, FSHRSqueeze:
			f.Core = rng.Intn(cfg.Cores)
			f.Duration = 1 + rng.Int63n(cfg.MaxDuration)
			f.Quota = rng.Intn(cfg.MaxQuota + 1)
		case L2MSHRSqueeze, L2ListBufferSqueeze:
			f.Duration = 1 + rng.Int63n(cfg.MaxDuration)
			f.Quota = rng.Intn(cfg.MaxQuota + 1)
		case L1BitFlip, L2BitFlip:
			f.Core = rng.Intn(cfg.Cores)
			f.Addr = cfg.AddrPool[rng.Intn(len(cfg.AddrPool))]
			f.Bit = uint64(rng.Intn(64 * 8))
		}
		s.Faults = append(s.Faults, f)
	}
	s.Normalize()
	return s
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
