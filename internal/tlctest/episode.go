package tlctest

import (
	"fmt"

	"skipit/internal/chaos"
	"skipit/internal/detrand"
	"skipit/internal/linepool"
	"skipit/internal/metrics"
	"skipit/internal/sim"
	"skipit/internal/trace"
)

// Params describes a randomized episode abstractly; BuildScript expands it
// deterministically into a concrete Script. Only the Script is needed to
// replay — Params is kept in artifacts for provenance.
type Params struct {
	Seed          int64 `json:"seed"`
	Agents        int   `json:"agents"`
	OpsPerAgent   int   `json:"ops_per_agent"`
	Faults        int   `json:"faults"`
	Addrs         int   `json:"addrs"`
	CycleLimit    int64 `json:"cycle_limit"`
	WatchdogLimit int64 `json:"watchdog_limit"`
}

// DefaultParams returns the smoke-sweep episode shape: three agents
// hammering six addresses folded onto two sets of a 4-set/2-way L2 (three
// aliases per set against two ways guarantees evictions), with a modest
// chaos schedule on top.
func DefaultParams(seed int64) Params {
	return Params{
		Seed:          seed,
		Agents:        3,
		OpsPerAgent:   24,
		Faults:        8,
		Addrs:         6,
		CycleLimit:    150_000,
		WatchdogLimit: 20_000,
	}
}

// Script is a fully concrete, replayable episode: the address universe, the
// per-agent op streams, the chaos schedule and the agents' private seeds.
// Running the same Script twice produces byte-identical verdicts.
type Script struct {
	Agents        int            `json:"agents"`
	Addrs         []uint64       `json:"addrs"`
	Init          []uint64       `json:"init"`
	AgentSeeds    []int64        `json:"agent_seeds"`
	Ops           []Op           `json:"ops"`
	Schedule      chaos.Schedule `json:"schedule"`
	CycleLimit    int64          `json:"cycle_limit"`
	WatchdogLimit int64          `json:"watchdog_limit"`

	// Bug mutations (mutation tests only; both default off).
	Bug Bug `json:"bug,omitempty"`
	// DropRootReleaseRaceData arms the L2-side mutation reverting the
	// RootRelease-vs-eviction race fix (Cache.PokeDropRootReleaseRaceData).
	DropRootReleaseRaceData bool `json:"drop_root_release_race_data,omitempty"`
}

// episodeBase is where the address universe starts; any line-aligned,
// set-0-aligned base works.
const episodeBase uint64 = 0x1000

// episodeAddr maps universe index i onto the fabric L2's tiny geometry
// (4 sets, 64-byte lines): even/odd indices alternate between sets 0 and 1,
// consecutive pairs are different tags (aliases) of the same sets.
func episodeAddr(i int) uint64 {
	return episodeBase + uint64(i/2)*4*64 + uint64(i%2)*64
}

// opWeights drives the scripted-op roulette (cumulative percentages).
var opWeights = []struct {
	limit int
	kind  OpKind
}{
	{15, OpAcquireB},
	{25, OpAcquireT},
	{50, OpWrite},
	{55, OpReleaseB},
	{65, OpReleaseN},
	{75, OpFlush},
	{82, OpClean},
	{100, OpIdle},
}

// tlcFaultKinds is the subset of chaos fault kinds meaningful on a
// core-less fabric: link perturbations on any channel plus the L2 resource
// squeezes. (L1/FSHR kinds have no target here; chaos.ArmPorts would
// silently ignore them, so the generator never draws them.)
var tlcFaultKinds = []chaos.Kind{
	chaos.LinkDelay, chaos.LinkStall, chaos.LinkRefuse,
	chaos.L2MSHRSqueeze, chaos.L2ListBufferSqueeze,
}

// BuildScript deterministically expands Params into a Script following the
// detrand split discipline: one child stream per concern, so adding draws
// to one concern never perturbs the others.
func BuildScript(p Params) Script {
	rng := detrand.New(p.Seed)
	s := Script{
		Agents:        p.Agents,
		CycleLimit:    p.CycleLimit,
		WatchdogLimit: p.WatchdogLimit,
	}
	for i := 0; i < p.Agents; i++ {
		s.AgentSeeds = append(s.AgentSeeds, detrand.SplitSeed(rng))
	}
	opRng := detrand.Split(rng)
	faultRng := detrand.Split(rng)

	for i := 0; i < p.Addrs; i++ {
		s.Addrs = append(s.Addrs, episodeAddr(i))
		s.Init = append(s.Init, 0x900000+uint64(i)*0x100)
	}

	valSeq := uint64(0)
	for a := 0; a < p.Agents; a++ {
		for j := 0; j < p.OpsPerAgent; j++ {
			op := Op{Agent: a, Addr: opRng.Intn(p.Addrs)}
			roll := opRng.Intn(100)
			for _, w := range opWeights {
				if roll < w.limit {
					op.Kind = w.kind
					break
				}
			}
			if op.Kind == OpWrite {
				valSeq++
				op.Val = uint64(a+1)<<32 | valSeq
			}
			if op.Kind == OpIdle || opRng.Intn(100) < 35 {
				op.Delay = 1 + opRng.Int63n(50)
			}
			if (op.Kind == OpFlush || op.Kind == OpClean) && opRng.Intn(2) == 0 {
				op.HoldC = opRng.Int63n(30)
			}
			s.Ops = append(s.Ops, op)
		}
	}

	span := int64(p.OpsPerAgent) * 120
	for i := 0; i < p.Faults; i++ {
		f := chaos.Fault{
			Kind:  tlcFaultKinds[faultRng.Intn(len(tlcFaultKinds))],
			Cycle: faultRng.Int63n(span),
		}
		switch f.Kind {
		case chaos.LinkDelay:
			f.Core = faultRng.Intn(p.Agents)
			f.Channel = faultRng.Intn(5)
			f.Duration = 1 + faultRng.Int63n(150)
			f.Extra = 1 + faultRng.Int63n(40)
		case chaos.LinkStall, chaos.LinkRefuse:
			f.Core = faultRng.Intn(p.Agents)
			f.Channel = faultRng.Intn(5)
			f.Duration = 1 + faultRng.Int63n(150)
		case chaos.L2MSHRSqueeze, chaos.L2ListBufferSqueeze:
			f.Duration = 1 + faultRng.Int63n(150)
			f.Quota = faultRng.Intn(3)
		}
		s.Schedule.Faults = append(s.Schedule.Faults, f)
	}
	s.Schedule.Normalize()
	return s
}

// Failure is an episode's structured verdict when something went wrong.
type Failure struct {
	Kind      string          `json:"kind"` // "violation" | "hang" | "panic" | "timeout"
	Cycle     int64           `json:"cycle"`
	Message   string          `json:"message"`
	Violation *Violation      `json:"violation,omitempty"`
	Report    *sim.HangReport `json:"report,omitempty"`
}

// Stats summarizes an episode's traffic, read back from the registry.
type Stats struct {
	Cycles           int64  `json:"cycles"`
	Skipped          uint64 `json:"skipped_cycles"`
	Acquires         uint64 `json:"acquires"`
	Grants           uint64 `json:"grants"`
	Writes           uint64 `json:"writes"`
	Releases         uint64 `json:"releases"`
	Flushes          uint64 `json:"flushes"`
	ProbesAnswered   uint64 `json:"probes_answered"`
	ValuePrunes      uint64 `json:"value_prunes"`
	RootReleaseRaces uint64 `json:"root_release_races"`
}

// RunScript executes one episode: it assembles a fresh core-less fabric,
// attaches one agent per port, arms the chaos schedule and steps until every
// agent is done and the system drains (or something fails). The returned
// Failure is nil on success.
func RunScript(s Script) (*Failure, Stats) {
	return runScript(s, 0)
}

// RunScriptParallel is RunScript on a parallel fabric: the agents form one
// shard, the L2 plus the DRAM controller the other, advanced in conservative
// windows (see sim.Fabric.EnableParallel). Verdicts and stats are identical
// for every worker count, and identical to serial except for the skipped-
// cycle count (shards fast-forward locally) — when two independent
// violations land in the same window, the one recorded first may also differ
// from serial's, but never across worker counts.
func RunScriptParallel(s Script, workers int) (*Failure, Stats) {
	return runScript(s, workers)
}

func runScript(s Script, workers int) (*Failure, Stats) {
	reg := metrics.NewRegistry()
	fcfg := sim.DefaultFabricConfig(s.Agents)
	pool := linepool.New(int(fcfg.L2.LineBytes), reg)
	fcfg.Metrics = reg
	fcfg.L2.Pool = pool
	fcfg.Mem.Pool = pool
	fab := sim.NewFabric(fcfg)
	// On a parallel fabric the agents allocate from their own pool — the hub
	// shard runs concurrently — and durability checks are deferred to the
	// window barriers, where the DRAM write journal pins the exact value the
	// serial run would have peeked.
	agentPool := pool
	var durable *DurableQueue
	if workers > 0 {
		agentPool = linepool.New(int(fcfg.L2.LineBytes), reg)
		durable = &DurableQueue{}
		fab.Mem.SetWriteJournal(true)
	}
	for i, addr := range s.Addrs {
		fab.Mem.PokeUint64(addr, s.Init[i])
	}

	sb := NewScoreboard(s.Agents, s.Addrs, s.Init, reg)
	txns := &trace.TxnSeq{}
	clients := make([]sim.FabricClient, s.Agents)
	agents := make([]*Agent, s.Agents)
	for i := 0; i < s.Agents; i++ {
		var ops []Op
		for _, op := range s.Ops {
			if op.Agent == i {
				ops = append(ops, op)
			}
		}
		agents[i] = NewAgent(AgentConfig{
			ID:         i,
			Port:       fab.Ports[i],
			Pool:       agentPool,
			Durable:    durable,
			LineBytes:  fcfg.L2.LineBytes,
			Addrs:      s.Addrs,
			Ops:        ops,
			Seed:       s.AgentSeeds[i],
			Scoreboard: sb,
			Txns:       txns,
			Bug:        s.Bug,
			MemPeek:    fab.Mem.PeekUint64,
			Metrics:    reg,
		})
		clients[i] = agents[i]
	}
	fab.Attach(clients...)
	if workers > 0 {
		fab.EnableParallel(workers, agentPool, pool)
	}
	if s.DropRootReleaseRaceData {
		fab.L2.PokeDropRootReleaseRaceData(true)
	}
	chaos.ArmPorts(fab.Ports, fab.L2, s.Schedule)
	if s.WatchdogLimit > 0 {
		fab.ArmWatchdog(s.WatchdogLimit)
	}

	allDone := func() bool {
		for _, a := range agents {
			if !a.Done() {
				return false
			}
		}
		return true
	}

	var fail *Failure
	if workers > 0 {
		for {
			if allDone() && fab.Quiescent() {
				fab.FinishParallel(s.CycleLimit)
				break
			}
			if fab.Now() >= s.CycleLimit {
				fail = &Failure{Kind: "timeout", Cycle: fab.Now(),
					Message: fmt.Sprintf("episode exceeded %d cycles", s.CycleLimit)}
				break
			}
			err := fab.AdvanceWindowChecked(s.CycleLimit)
			durable.Resolve(sb, fab.Mem.PeekUint64, fab.Mem.DrainWriteJournal(), fcfg.L2.LineBytes)
			v := sb.Violation()
			if err != nil {
				he := err.(*sim.HangError)
				// Serial checks the scoreboard after every clean step, so a
				// violation recorded before the hang/panic cycle wins there.
				if v != nil && v.Cycle < he.Report.Cycle {
					fail = &Failure{Kind: "violation", Cycle: v.Cycle, Message: v.Error(), Violation: v}
				} else {
					kind := "hang"
					if he.Report.Reason == "panic" {
						kind = "panic"
					}
					fail = &Failure{Kind: kind, Cycle: he.Report.Cycle, Message: he.Error(), Report: he.Report}
				}
				break
			}
			if v != nil {
				fail = &Failure{Kind: "violation", Cycle: v.Cycle, Message: v.Error(), Violation: v}
				break
			}
		}
	} else {
		for {
			if allDone() && fab.Quiescent() {
				break
			}
			if fab.Now() >= s.CycleLimit {
				fail = &Failure{Kind: "timeout", Cycle: fab.Now(),
					Message: fmt.Sprintf("episode exceeded %d cycles", s.CycleLimit)}
				break
			}
			if err := fab.StepGuarded(); err != nil {
				he := err.(*sim.HangError)
				kind := "hang"
				if he.Report.Reason == "panic" {
					kind = "panic"
				}
				fail = &Failure{Kind: kind, Cycle: he.Report.Cycle, Message: he.Error(), Report: he.Report}
				break
			}
			if v := sb.Violation(); v != nil {
				fail = &Failure{Kind: "violation", Cycle: v.Cycle, Message: v.Error(), Violation: v}
				break
			}
			fab.FastForward(s.CycleLimit)
		}
	}

	if fail == nil {
		// The system has drained: every address's freshest committed copy
		// (L2 if resident, else DRAM) must be a permissible value.
		for _, addr := range s.Addrs {
			got := fab.Mem.PeekUint64(addr)
			if line, ok := fab.L2.PeekLine(addr); ok {
				got = decodeVal(line)
			}
			sb.CheckFinal(fab.Now(), addr, got)
		}
		if v := sb.Violation(); v != nil {
			fail = &Failure{Kind: "violation", Cycle: v.Cycle, Message: v.Error(), Violation: v}
		}
	}

	st := Stats{
		Cycles:           fab.Now(),
		Skipped:          reg.CounterValue("sim.skipped_cycles"),
		Acquires:         reg.CounterValue("tlc.acquires"),
		Grants:           reg.CounterValue("tlc.grants"),
		Writes:           reg.CounterValue("tlc.writes"),
		Releases:         reg.CounterValue("tlc.releases"),
		Flushes:          reg.CounterValue("tlc.flushes"),
		ProbesAnswered:   reg.CounterValue("tlc.probes_answered"),
		ValuePrunes:      reg.CounterValue("tlc.value_prunes"),
		RootReleaseRaces: reg.CounterValue("l2.root_release_races"),
	}
	return fail, st
}

// Run builds and executes the episode Params describes, returning the
// expanded script alongside the verdict so failures can be shrunk and
// archived without rebuilding.
func Run(p Params) (Script, *Failure, Stats) {
	s := BuildScript(p)
	fail, st := RunScript(s)
	return s, fail, st
}
