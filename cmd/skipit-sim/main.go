// Command skipit-sim runs a writeback microbenchmark on the cycle-accurate
// SoC simulator and prints per-phase latencies and hardware statistics —
// the interactive counterpart of the Figure 9/13 harnesses.
//
// Usage:
//
//	skipit-sim [-cores N] [-size BYTES] [-op clean|flush] [-redundant K]
//	           [-skipit=true|false] [-trace] [-trace-format text|chrome]
//	           [-trace-out FILE] [-metrics FILE] [-sample-interval K]
//	           [-http ADDR] [-publish-interval K] [-recorder N]
//	skipit-sim -file prog.s [-skipit=...] [-trace]
//
// With -file, the program is read from an assembly file (one instruction per
// line: sd/ld/cbo.clean/cbo.flush/cflush.d.l1/fence/nop; see isa.Parse) and
// run on a single core; per-instruction timings are printed.
//
// -metrics writes the system's aggregated telemetry snapshot (every
// counter, gauge and histogram, plus derived rates and sampled time
// series) as JSON. -trace-format=chrome writes the event trace in Chrome
// trace_event format, loadable in Perfetto.
//
// -http serves live introspection endpoints (/metrics in Prometheus text,
// /snapshot, /trace, /recorder, /events SSE) while the run is in flight;
// -publish-interval sets the snapshot cadence in cycles. -recorder N arms a
// per-component flight recorder whose last-N-events dump rides along in hang
// reports and is served at /recorder.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"skipit/internal/introspect"
	"skipit/internal/isa"
	"skipit/internal/sim"
	"skipit/internal/trace"
)

// onOff is a boolean flag.Value that also accepts the spellings on/off.
type onOff bool

func (o *onOff) String() string {
	if bool(*o) {
		return "on"
	}
	return "off"
}

func (o *onOff) Set(s string) error {
	switch strings.ToLower(s) {
	case "on":
		*o = true
	case "off":
		*o = false
	default:
		v, err := strconv.ParseBool(s)
		if err != nil {
			return fmt.Errorf("invalid value %q (want on or off)", s)
		}
		*o = onOff(v)
	}
	return nil
}

func (o *onOff) IsBoolFlag() bool { return true }

func main() {
	cores := flag.Int("cores", 1, "number of simulated cores (threads)")
	size := flag.Uint64("size", 4096, "bytes of dirty data per run (split across cores)")
	op := flag.String("op", "flush", "writeback instruction: clean or flush")
	redundant := flag.Int("redundant", 0, "redundant CBO.X per line after the first")
	skipIt := flag.Bool("skipit", true, "enable the Skip It optimization")
	doTrace := flag.Bool("trace", false, "trace component events")
	traceFormat := flag.String("trace-format", "text", "trace output format: text or chrome (Perfetto-compatible)")
	traceOut := flag.String("trace-out", "", "trace output file (default stderr; chrome format writes on exit)")
	metricsOut := flag.String("metrics", "", "write the aggregated metrics snapshot as JSON to this file (- for stdout)")
	sampleInterval := flag.Int64("sample-interval", 0, "sample all counters into time series every K cycles (0 disables)")
	file := flag.String("file", "", "run an assembly file instead of the built-in sweep")
	httpAddr := flag.String("http", "", "serve live introspection endpoints on this address (e.g. localhost:6060; empty disables)")
	publishInterval := flag.Int64("publish-interval", 5000, "cycles between snapshot publishes to the -http server")
	recorderDepth := flag.Int("recorder", 0, "arm a flight recorder holding the last N events per component (0 disables)")
	parallel := flag.Int("parallel", 0, "deterministic parallel stepping with N workers (0 = serial; results are bit-identical)")
	fastForward := onOff(true)
	flag.Var(&fastForward, "fast-forward", "next-event clock: on skips provably idle cycles, off single-steps (results are identical)")
	flag.Parse()

	clean := false
	switch *op {
	case "clean":
		clean = true
	case "flush":
	default:
		log.Fatalf("unknown -op %q (want clean or flush)", *op)
	}

	cfg := sim.DefaultConfig(*cores)
	cfg.L1.Flush.SkipIt = *skipIt
	cfg.Parallel = *parallel
	s := sim.New(cfg)
	s.SetFastForward(bool(fastForward))
	if *recorderDepth > 0 {
		s.EnableFlightRecorder(*recorderDepth)
	} else if *httpAddr != "" {
		// The /recorder endpoint is only useful with a ring armed; give the
		// debug server a sensible default depth.
		s.EnableFlightRecorder(64)
	}
	finishTrace, chromeTracer := setupTracer(s, *doTrace, *traceFormat, *traceOut)
	defer finishTrace()
	if *httpAddr != "" {
		srv, err := introspect.New(*httpAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		if chromeTracer != nil {
			srv.AttachChromeTrace(chromeTracer)
		}
		srv.AttachRecorder(s.FlightRecorder())
		s.SetProgressHook(*publishInterval, func(int64) {
			srv.PublishSnapshot(s.Snapshot())
		})
		fmt.Fprintf(os.Stderr, "introspection server on http://%s (/metrics /snapshot /trace /recorder /events)\n", srv.Addr())
	}
	// On SIGINT/SIGTERM, flush the buffered Chrome trace and dump the flight
	// recorder before exiting: an interrupted run used to lose both (the
	// deferred Close never ran past log.Fatal or a signal).
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigC
		fmt.Fprintf(os.Stderr, "skipit-sim: %v: flushing trace and flight recorder\n", sig)
		finishTrace()
		if rec := s.FlightRecorder(); rec != nil {
			if b, err := json.MarshalIndent(rec.Dump(), "", "  "); err == nil {
				fmt.Fprintf(os.Stderr, "flight recorder dump:\n%s\n", b)
			}
		}
		os.Exit(130)
	}()
	if *sampleInterval > 0 {
		s.EnableSampling(*sampleInterval)
	}
	defer writeMetrics(s, *metricsOut)

	if *file != "" {
		runFile(s, *file)
		return
	}

	const lineBytes = 64
	per := *size / uint64(*cores)
	if per < lineBytes {
		per = lineBytes
	}
	progs := make([]*isa.Program, *cores)
	start := make([]int, *cores)
	fence := make([]int, *cores)
	for t := 0; t < *cores; t++ {
		base := uint64(t) * (1 << 16)
		b := isa.NewBuilder().StoreRegion(base, per, lineBytes, 0xAB).Fence()
		start[t] = b.Mark()
		for a := base; a < base+per; a += lineBytes {
			b.Cbo(a, clean)
			for r := 0; r < *redundant; r++ {
				b.Cbo(a, clean)
			}
		}
		fence[t] = b.Mark()
		b.Fence()
		progs[t] = b.Build()
	}

	if _, err := s.Run(progs, 50_000_000); err != nil {
		log.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		log.Fatalf("invariant violation: %v", err)
	}

	var begin, end int64 = 1 << 62, 0
	for t := 0; t < *cores; t++ {
		tm := s.Cores[t].Timings()
		if is := tm[start[t]].IssuedAt; is < begin {
			begin = is
		}
		if c := tm[fence[t]].CompletedAt; c > end {
			end = c
		}
	}

	lines := per / lineBytes * uint64(*cores)
	fmt.Printf("cores=%d size=%dB lines=%d op=cbo.%s redundant=%d skipit=%v\n",
		*cores, per*uint64(*cores), lines, *op, *redundant, *skipIt)
	fmt.Printf("writeback-phase latency: %d cycles (%.1f cycles/line)\n",
		end-begin, float64(end-begin)/float64(lines))
	fmt.Println()
	for t := 0; t < *cores; t++ {
		fu := s.L1s[t].FlushUnit().Stats()
		d := s.L1s[t].Stats()
		fmt.Printf("l1[%d]: cbo offered=%d enqueued=%d skip-dropped=%d coalesced=%d "+
			"nacks(queue=%d fshr=%d) rootreleases=%d(with-data=%d) evictions=%d\n",
			t, fu.Offered, fu.Enqueued, fu.SkipDropped, fu.Coalesced,
			fu.NackQueueFull, fu.NackFSHRBusy, fu.RootReleases, fu.DataWritebacks, d.Writebacks)
	}
	l2 := s.L2.Stats()
	fmt.Printf("l2: acquires=%d rootreleases=%d trivially-skipped=%d probes=%d mem(r=%d w=%d)\n",
		l2.Acquires, l2.RootReleases, l2.RootReleaseSkips, l2.ProbesSent,
		l2.MemReads, l2.MemWrites)
	m := s.Mem.Stats()
	fmt.Printf("dram: reads=%d writes=%d stalled=%d\n", m.Reads, m.Writes, m.StalledSends)
	printHostStats(s)
}

// printHostStats reports the simulator's own throughput: how many cycles the
// next-event clock skipped and how often the line pool avoided an allocation.
func printHostStats(s *sim.System) {
	reg := s.Metrics()
	hits := reg.Counter("pool", "hits").Value()
	misses := reg.Counter("pool", "misses").Value()
	// In parallel mode each shard fast-forwards independently, so the
	// counter holds shard-cycles and the ratio normalizes by Now()*shards.
	if shards := s.Shards(); shards > 0 {
		line := fmt.Sprintf("host: %d cycles simulated, %d shard-cycles fast-forwarded", s.Now(), s.SkippedCycles())
		if s.Now() > 0 {
			line += fmt.Sprintf(" (%.1f%%)", 100*float64(s.SkippedCycles())/float64(uint64(shards)*uint64(s.Now())))
		}
		if hits+misses > 0 {
			line += fmt.Sprintf(", pool hit-rate %.1f%%", 100*float64(hits)/float64(hits+misses))
		}
		fmt.Println(line)
		return
	}
	line := fmt.Sprintf("host: %d cycles simulated, %d fast-forwarded", s.Now(), s.SkippedCycles())
	if s.Now() > 0 {
		line += fmt.Sprintf(" (%.1f%%)", 100*float64(s.SkippedCycles())/float64(s.Now()))
	}
	if hits+misses > 0 {
		line += fmt.Sprintf(", pool hit-rate %.1f%%", 100*float64(hits)/float64(hits+misses))
	}
	fmt.Println(line)
}

// setupTracer attaches the requested tracer and returns a cleanup that
// flushes buffered formats, plus the Chrome tracer when that format is
// selected (for the introspection server's /trace endpoint). The cleanup is
// idempotent so both the defer and the signal handler may call it.
func setupTracer(s *sim.System, enabled bool, format, out string) (func(), *trace.ChromeTracer) {
	if !enabled {
		return func() {}, nil
	}
	var w io.Writer = os.Stderr
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		w = f
	}
	switch format {
	case "text":
		s.SetTracer(trace.NewWriter(w))
		return func() {}, nil
	case "chrome":
		ct := trace.NewChromeTracer(w)
		s.SetTracer(ct)
		closed := false
		return func() {
			if closed {
				return
			}
			closed = true
			if err := ct.Close(); err != nil {
				log.Fatalf("writing chrome trace: %v", err)
			}
		}, ct
	default:
		log.Fatalf("unknown -trace-format %q (want text or chrome)", format)
		return nil, nil
	}
}

// writeMetrics serializes the system snapshot when -metrics is given.
func writeMetrics(s *sim.System, path string) {
	if path == "" {
		return
	}
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.Snapshot()); err != nil {
		log.Fatalf("writing metrics: %v", err)
	}
}

// runFile assembles and runs a program file on core 0, printing per-
// instruction timings and the resulting NVMM view of every touched line.
func runFile(s *sim.System, path string) {
	src, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := isa.Parse(string(src))
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	progs := make([]*isa.Program, len(s.Cores))
	progs[0] = prog
	if _, err := s.Run(progs, 50_000_000); err != nil {
		log.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		log.Fatalf("invariant violation: %v", err)
	}
	fmt.Printf("%-4s %-24s %8s %8s %8s %8s\n", "idx", "instr", "disp", "issue", "done", "commit")
	touched := map[uint64]bool{}
	for i, in := range prog.Instrs {
		tm := s.Cores[0].Timing(i)
		extra := ""
		if in.Op == isa.OpLoad {
			extra = fmt.Sprintf("  = %d", tm.LoadValue)
		}
		fmt.Printf("%-4d %-24v %8d %8d %8d %8d%s\n",
			i, in, tm.DispatchedAt, tm.IssuedAt, tm.CompletedAt, tm.CommittedAt, extra)
		if in.Op != isa.OpNop && in.Op != isa.OpFence {
			touched[in.Addr&^63] = true
		}
	}
	fmt.Println()
	for addr := range touched {
		fmt.Printf("NVMM[%#x] = %d\n", addr, s.Mem.PeekUint64(addr))
	}
}
