// Package shardiso implements the PDES shard-isolation checker: it turns
// the parallel simulator's by-convention state partitioning into a
// machine-checked contract.
//
// The deterministic PDES path (internal/pdes + internal/sim's parallel
// runtime) is only bit-identical to the serial schedule if each shard's
// window step touches nothing but its own state, communicating with other
// shards exclusively through TileLink messages staged for delivery at the
// next barrier. The ownership annotations make that partitioning explicit:
//
//	//skipit:shard-owned <domain>
//
// on a struct type declaration marks every field of the struct as owned by
// <domain> (a field's own //skipit:shard-owned comment overrides the type's
// domain). The repository uses three domains: "core" (core + L1 + flush
// engine state), "hub" (L2 + DRAM state), and the special domain "barrier"
// for coordinator bookkeeping that shard code may READ (the coordinator
// only writes it between windows) but never write.
//
//	//skipit:shard-step <domain>
//
// on a function or method declaration marks a shard entry point: everything
// reachable from it (over the internal/analysis/callsum graph, across
// package boundaries via Touches facts) must access only <domain>-owned
// fields, plus reads of barrier-owned ones. Reaching a foreign shard's
// state — or writing barrier state — is a finding, reported at the access
// site (or at the call site through which the foreign access is reached,
// with the witness chain down to the concrete field access).
//
// The TileLink port types are deliberately unannotated: staged sends are the
// sanctioned cross-shard channel, so accesses through them register nothing.
//
// Ownership travels as Owned facts on field objects and per-function access
// summaries travel as Touches facts, so a core shard that reaches hub state
// through a helper three packages away is still caught. The usual callsum
// soundness limits apply: accesses behind interface calls or function
// values are invisible, which is why the runtime replay gate stays on.
package shardiso

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"skipit/internal/analysis/callsum"
	"skipit/internal/analysis/suppress"
)

// OwnDirective marks a struct type (or single field) as shard-owned.
const OwnDirective = "//skipit:shard-owned"

// StepDirective marks a shard entry point held to the isolation contract.
const StepDirective = "//skipit:shard-step"

// BarrierDomain is readable from any shard step but writable by none: the
// coordinator mutates it only between windows.
const BarrierDomain = "barrier"

var Analyzer = &analysis.Analyzer{
	Name: "shardiso",
	Doc: "prove //skipit:shard-step code touches only its own //skipit:shard-owned state (reads of barrier state allowed)\n\n" +
		"Ownership and per-function access summaries travel as facts, so cross-package reaches are caught with witness chains.",
	Requires:  []*analysis.Analyzer{callsum.Analyzer},
	FactTypes: []analysis.Fact{new(Owned), new(Touches)},
	Run:       run,
}

// chainMax bounds witness chains embedded in facts and diagnostics.
const chainMax = 8

// Owned is attached to a struct field object claimed by a shard domain.
type Owned struct {
	Domain string
}

// AFact marks Owned as an analysis fact.
func (*Owned) AFact() {}

func (o *Owned) String() string { return "owned(" + o.Domain + ")" }

// Touches summarizes which owned state a function (transitively) accesses.
// At most one Access per (Domain, Write) pair is kept — enough to decide
// every violation, with the first (source-order) witness.
type Touches struct {
	Accs []Access
}

// Access is one reach into owned state. Chain is the witness path from the
// summarized function down to the concrete field access.
type Access struct {
	Domain string
	Write  bool
	Chain  []string
}

// AFact marks Touches as an analysis fact.
func (*Touches) AFact() {}

func (t *Touches) String() string {
	parts := make([]string, len(t.Accs))
	for i, a := range t.Accs {
		verb := "reads"
		if a.Write {
			verb = "writes"
		}
		parts[i] = verb + " " + a.Domain
	}
	return "touches(" + strings.Join(parts, ", ") + ")"
}

// accKey merges accesses: one witness per (domain, write) is sufficient.
type accKey struct {
	domain string
	write  bool
}

// localAcc pairs an Access with the position it is reportable at in this
// package: the field access itself, or the call site that reaches it.
type localAcc struct {
	Access
	pos token.Pos
}

func run(pass *analysis.Pass) (interface{}, error) {
	suppress.Apply(pass)
	sums := pass.ResultOf[callsum.Analyzer].(*callsum.Summaries)
	waived := suppress.CoveredLines(pass, pass.Analyzer.Name)

	owned := collectOwned(pass)
	domainOf := func(v *types.Var) string {
		if d, ok := owned[v]; ok {
			return d
		}
		var fact Owned
		if pass.ImportObjectFact(v, &fact) {
			return fact.Domain
		}
		return ""
	}

	// Seed each function's summary with its own field accesses.
	touches := make(map[*callsum.FuncInfo]map[accKey]*localAcc)
	for _, fi := range sums.Funcs {
		if fi.TestFile || fi.Decl.Body == nil {
			continue
		}
		m := make(map[accKey]*localAcc)
		fieldAccesses(pass, fi.Decl, domainOf, func(pos token.Pos, domain string, write bool, desc string) {
			if waived(pos) {
				return
			}
			k := accKey{domain, write}
			if m[k] == nil {
				m[k] = &localAcc{Access: Access{Domain: domain, Write: write, Chain: []string{desc}}, pos: pos}
			}
		})
		touches[fi] = m
	}

	calleeTouches := func(c callsum.Call) []Access {
		if local, ok := sums.ByObj[c.Callee]; ok {
			m := touches[local]
			accs := make([]Access, 0, len(m))
			for _, la := range m {
				accs = append(accs, la.Access)
			}
			sortAccs(accs)
			return accs
		}
		var fact Touches
		if pass.ImportObjectFact(c.Callee, &fact) {
			return fact.Accs
		}
		return nil
	}

	// Propagate bottom-up to a fixpoint: a caller inherits every (domain,
	// write) pair its callees touch, witnessed through the call site.
	for changed := true; changed; {
		changed = false
		for _, fi := range sums.Funcs {
			m := touches[fi]
			if m == nil {
				continue
			}
			for _, c := range fi.Calls {
				if waived(c.Pos) {
					continue
				}
				for _, acc := range calleeTouches(c) {
					k := accKey{acc.Domain, acc.Write}
					if m[k] != nil {
						continue
					}
					hop := fmt.Sprintf("%s (%s)", callsum.Name(c.Callee), callsum.ShortPos(pass.Fset, c.Pos))
					m[k] = &localAcc{
						Access: Access{Domain: acc.Domain, Write: acc.Write, Chain: callsum.TrimChain(append([]string{hop}, acc.Chain...), chainMax)},
						pos:    c.Pos,
					}
					changed = true
				}
			}
		}
	}

	for fi, m := range touches {
		if len(m) == 0 {
			continue
		}
		accs := make([]Access, 0, len(m))
		for _, la := range m {
			accs = append(accs, la.Access)
		}
		sortAccs(accs)
		pass.ExportObjectFact(fi.Obj, &Touches{Accs: accs})
	}

	// Findings: each shard-step root may touch only its own domain, plus
	// reads of barrier state.
	for _, fi := range sums.Funcs {
		domain, ok := stepDomain(pass, fi.Decl)
		if !ok {
			continue
		}
		accs := make([]*localAcc, 0, len(touches[fi]))
		for _, la := range touches[fi] {
			accs = append(accs, la)
		}
		sort.Slice(accs, func(i, j int) bool { return accs[i].pos < accs[j].pos })
		for _, la := range accs {
			switch {
			case la.Domain == domain:
			case la.Domain == BarrierDomain && !la.Write:
			case la.Domain == BarrierDomain:
				pass.Report(analysis.Diagnostic{
					Pos: la.pos,
					Message: fmt.Sprintf("%s shard step writes barrier-owned coordinator state (shards may only read it between-window values): %s",
						domain, strings.Join(la.Chain, " -> ")),
				})
			default:
				pass.Report(analysis.Diagnostic{
					Pos: la.pos,
					Message: fmt.Sprintf("%s shard step reaches %s-owned state (cross-shard traffic must use staged TileLink sends): %s",
						domain, la.Domain, strings.Join(la.Chain, " -> ")),
				})
			}
		}
	}
	return nil, nil
}

// sortAccs orders accesses for deterministic fact encoding.
func sortAccs(accs []Access) {
	sort.Slice(accs, func(i, j int) bool {
		if accs[i].Domain != accs[j].Domain {
			return accs[i].Domain < accs[j].Domain
		}
		return !accs[i].Write && accs[j].Write
	})
}

// stepDomain parses the //skipit:shard-step directive off a declaration's
// doc comment, reporting a malformed one.
func stepDomain(pass *analysis.Pass, fn *ast.FuncDecl) (string, bool) {
	d, pos, found := directive(fn.Doc, StepDirective)
	if !found {
		return "", false
	}
	if d == "" {
		pass.Report(analysis.Diagnostic{
			Pos:     pos,
			Message: "skipit:shard-step directive needs a domain: //skipit:shard-step <domain>",
		})
		return "", false
	}
	return d, true
}

// directive scans a comment group for marker, returning its first argument.
func directive(cg *ast.CommentGroup, marker string) (arg string, pos token.Pos, found bool) {
	if cg == nil {
		return "", token.NoPos, false
	}
	for _, c := range cg.List {
		if c.Text != marker && !strings.HasPrefix(c.Text, marker+" ") {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(c.Text, marker))
		if len(fields) > 0 {
			arg = fields[0]
		}
		return arg, c.Pos(), true
	}
	return "", token.NoPos, false
}

// collectOwned parses every //skipit:shard-owned annotation in the package,
// exporting an Owned fact per claimed field so other packages see the
// ownership, and returns the local field->domain map.
func collectOwned(pass *analysis.Pass) map[*types.Var]string {
	owned := make(map[*types.Var]string)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				typeDomain, tdPos, tdFound := directive(ts.Doc, OwnDirective)
				if !tdFound && len(gd.Specs) == 1 {
					typeDomain, tdPos, tdFound = directive(gd.Doc, OwnDirective)
				}
				if tdFound && typeDomain == "" {
					pass.Report(analysis.Diagnostic{
						Pos:     tdPos,
						Message: "skipit:shard-owned directive needs a domain: //skipit:shard-owned <domain>",
					})
					tdFound = false
				}
				st, isStruct := ts.Type.(*ast.StructType)
				if !isStruct {
					if tdFound {
						pass.Report(analysis.Diagnostic{
							Pos:     tdPos,
							Message: "skipit:shard-owned applies to struct types only",
						})
					}
					continue
				}
				for _, field := range st.Fields.List {
					fieldDomain, fdPos, fdFound := directive(field.Doc, OwnDirective)
					if !fdFound {
						fieldDomain, fdPos, fdFound = directive(field.Comment, OwnDirective)
					}
					if fdFound && fieldDomain == "" {
						pass.Report(analysis.Diagnostic{
							Pos:     fdPos,
							Message: "skipit:shard-owned directive needs a domain: //skipit:shard-owned <domain>",
						})
						fdFound = false
					}
					domain := typeDomain
					if fdFound {
						domain = fieldDomain
					} else if !tdFound {
						continue
					}
					for _, name := range field.Names {
						if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
							owned[v] = domain
							pass.ExportObjectFact(v, &Owned{Domain: domain})
						}
					}
					// Embedded fields have no names; the implicit field
					// object is not separately claimable, which is fine: the
					// embedded type's own annotation covers its fields.
				}
			}
		}
	}
	return owned
}

// fieldAccesses walks one function body and emits every access to an owned
// field, classified as read or write.
func fieldAccesses(pass *analysis.Pass, fn *ast.FuncDecl, domainOf func(*types.Var) string, emit func(token.Pos, string, bool, string)) {
	// First pass: mark selector expressions that appear in write position —
	// assignment targets, ++/--, and address-takes (a retained pointer can
	// be written through later, so &x.f counts as a write of f).
	writes := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markWriteTarget(lhs, writes)
			}
		case *ast.IncDecStmt:
			markWriteTarget(n.X, writes)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				markWriteTarget(n.X, writes)
			}
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
		if !ok || !v.IsField() {
			return true
		}
		domain := domainOf(v)
		if domain == "" {
			return true
		}
		write := writes[sel]
		verb := "read of"
		if write {
			verb = "write to"
		}
		desc := fmt.Sprintf("%s %s at %s", verb, fieldRef(pass, sel, v), callsum.ShortPos(pass.Fset, sel.Pos()))
		emit(sel.Pos(), domain, write, desc)
		return true
	})
}

// markWriteTarget finds the selector being mutated by an lvalue expression:
// c.sys.tick = x writes field tick (the outer selector); c.lines[i] = x
// mutates storage reached through field lines.
func markWriteTarget(e ast.Expr, writes map[*ast.SelectorExpr]bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			writes[x] = true
			return
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return
		}
	}
}

// fieldRef renders an owned-field access as "Type.field".
func fieldRef(pass *analysis.Pass, sel *ast.SelectorExpr, v *types.Var) string {
	t := pass.TypesInfo.TypeOf(sel.X)
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name() + "." + v.Name()
	}
	return v.Name()
}
