// Package suppress implements the shared suppression mechanism for the
// skipit-vet analyzers (see internal/analysis).
//
// A diagnostic is silenced by a directive comment:
//
//	//skipit:ignore <analyzer> <reason>
//
// placed either at the end of the offending line or alone on the line
// immediately above it. The reason is mandatory: a directive without one is
// itself reported as a diagnostic, so every waiver in the tree documents why
// the invariant does not apply at that site. A directive names exactly one
// analyzer and silences only that analyzer's diagnostics, and only on its
// target line — it never blankets a file or function.
//
// Every analyzer in the suite opts in by calling Apply(pass) as the first
// statement of its Run function; Apply wraps pass.Report with the filter and
// reports malformed directives that name the wrapped analyzer.
package suppress

import (
	"go/ast"
	"go/token"
	"strings"
	"sync"

	"golang.org/x/tools/go/analysis"
)

// Prefix is the directive marker. Like //go: directives it must start the
// comment with no space after the slashes.
const Prefix = "//skipit:ignore"

// Directive is one parsed //skipit:ignore comment.
type Directive struct {
	Pos      token.Pos // position of the comment
	Analyzer string    // analyzer it names ("" if absent)
	Reason   string    // justification ("" if absent)
	File     string    // file the directive appears in
	Line     int       // line the directive appears on
	Trailing bool      // shares its line with code (suppresses that line)
}

// Target returns the source line the directive covers: its own line when
// trailing, the next line when standalone.
func (d Directive) Target() int {
	if d.Trailing {
		return d.Line
	}
	return d.Line + 1
}

// usage records, process-wide, which directives actually suppressed a
// diagnostic. The staleignore analyzer reads it after the rest of the suite
// has run over a package — a well-formed directive whose (file, target line,
// analyzer) key was never hit is a dead waiver. The map is keyed by file
// path, so runs over distinct packages never collide; test-variant packages
// share their base package's files and simply mark the same keys again.
// Guarded by a mutex because unitchecker runs analyzers concurrently.
var usage struct {
	sync.Mutex
	hit map[usageKey]bool
}

type usageKey struct {
	file     string
	line     int
	analyzer string
}

func markUsed(file string, line int, analyzer string) {
	usage.Lock()
	if usage.hit == nil {
		usage.hit = make(map[usageKey]bool)
	}
	usage.hit[usageKey{file, line, analyzer}] = true
	usage.Unlock()
}

// Used reports whether a directive covering (file, line) for the named
// analyzer suppressed at least one diagnostic in this process.
func Used(file string, line int, analyzer string) bool {
	usage.Lock()
	defer usage.Unlock()
	return usage.hit[usageKey{file, line, analyzer}]
}

// Apply wraps pass.Report so that diagnostics on lines covered by a
// well-formed //skipit:ignore directive naming this analyzer are dropped,
// and reports directives naming this analyzer that are missing a reason.
// Call it first in every analyzer's Run.
func Apply(pass *analysis.Pass) {
	dirs := Collect(pass)

	// A well-formed trailing directive covers its own line; a standalone
	// directive covers the next line.
	covered := make(map[int]bool)
	for _, d := range dirs {
		if d.Analyzer != pass.Analyzer.Name || d.Reason == "" {
			continue
		}
		covered[d.Target()] = true
	}

	orig := pass.Report
	pass.Report = func(diag analysis.Diagnostic) {
		posn := pass.Fset.Position(diag.Pos)
		if covered[posn.Line] {
			markUsed(posn.Filename, posn.Line, pass.Analyzer.Name)
			return
		}
		orig(diag)
	}

	// Malformed directives that name this analyzer are diagnostics in their
	// own right (and do not suppress anything, so the original finding
	// surfaces too).
	for _, d := range dirs {
		if d.Analyzer != pass.Analyzer.Name || d.Reason != "" {
			continue
		}
		pass.Report(analysis.Diagnostic{
			Pos:     d.Pos,
			Message: "skipit:ignore directive needs a reason: //skipit:ignore " + pass.Analyzer.Name + " <why this site is exempt>",
		})
	}
}

// CoveredLines returns the source lines (per file) waived for the named
// analyzer by well-formed directives. Interprocedural analyzers use it to
// keep waived sites out of exported summaries: a site a human certified as
// harmless must not taint every transitive caller. A directive that blocks
// a summary entry this way has done real work, so it is recorded in the
// usage tracker just like one that suppressed a diagnostic — staleignore
// must not flag it.
func CoveredLines(pass *analysis.Pass, analyzer string) func(token.Pos) bool {
	type fl struct {
		file string
		line int
	}
	covered := make(map[fl]bool)
	for _, d := range Collect(pass) {
		if d.Analyzer == analyzer && d.Reason != "" {
			covered[fl{d.File, d.Target()}] = true
		}
	}
	return func(pos token.Pos) bool {
		p := pass.Fset.Position(pos)
		if !covered[fl{p.Filename, p.Line}] {
			return false
		}
		markUsed(p.Filename, p.Line, analyzer)
		return true
	}
}

// Collect parses every skipit:ignore directive in the package's files.
func Collect(pass *analysis.Pass) []Directive {
	var out []Directive
	for _, f := range pass.Files {
		// Record, per line, the earliest offset of any code token so that a
		// directive can be classified as trailing (code before it on the
		// line) or standalone.
		codeOn := make(map[int]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil || !n.Pos().IsValid() {
				return true
			}
			if _, ok := n.(*ast.Comment); ok {
				return true
			}
			if _, ok := n.(*ast.CommentGroup); ok {
				return true
			}
			codeOn[pass.Fset.Position(n.Pos()).Line] = true
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, Prefix)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				posn := pass.Fset.Position(c.Pos())
				d := Directive{
					Pos:  c.Pos(),
					File: posn.Filename,
					Line: posn.Line,
				}
				if len(fields) > 0 {
					d.Analyzer = fields[0]
				}
				if len(fields) > 1 {
					d.Reason = strings.Join(fields[1:], " ")
				}
				// The AST walk above sees the comment's own line as code-free
				// unless a statement shares it, because comments were skipped.
				d.Trailing = codeOn[d.Line]
				out = append(out, d)
			}
		}
	}
	return out
}
