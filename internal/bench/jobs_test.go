package bench

import (
	"reflect"
	"testing"

	"skipit/internal/ds"
	"skipit/internal/persist"
	"skipit/internal/sweep"
)

// Fig9 jobs must reproduce the direct harness point for point.
func TestFig9JobsMatchDirect(t *testing.T) {
	small(t)
	direct := Fig9(nil, false)
	jobs := Fig9Jobs("fig09", false)
	if len(jobs) != len(direct) {
		t.Fatalf("%d jobs for %d rows", len(jobs), len(direct))
	}
	results := sweep.Runner{Workers: 1}.Run(jobs)
	for i, res := range results {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Record.Cycles != direct[i].Cycles || res.Record.Sigma != direct[i].Sigma {
			t.Fatalf("job %s = %.0f±%.1f, direct row = %+v",
				res.Record.Name, res.Record.Cycles, res.Record.Sigma, direct[i])
		}
	}
}

// The whole point of the sweep runner: records (and snapshots) from a
// parallel run are bit-identical to a serial run of the same jobs.
func TestJobsDeterministicAcrossWorkerCounts(t *testing.T) {
	small(t)
	build := func() []sweep.Job {
		jobs := Fig9Jobs("fig09", false)
		jobs = append(jobs, Fig13Jobs([]int{1, 2}, 4)...)
		return jobs
	}
	serial := sweep.Runner{Workers: 1, WithSnapshots: true}.Run(build())
	parallel := sweep.Runner{Workers: 4, WithSnapshots: true}.Run(build())
	if err := sweep.FirstError(serial); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sweep.Records(serial), sweep.Records(parallel)) {
		t.Fatal("parallel records diverged from serial")
	}
	for i := range serial {
		// host_sim_cycles_per_sec is wall-clock derived and documented as
		// host-dependent; every simulated metric must still match exactly.
		for _, res := range [][]sweep.LabeledSnapshot{serial[i].Snaps, parallel[i].Snaps} {
			for _, ls := range res {
				delete(ls.Snapshot.Derived, "host_sim_cycles_per_sec")
			}
		}
		if !reflect.DeepEqual(serial[i].Snaps, parallel[i].Snaps) {
			t.Fatalf("job %d snapshots diverged between serial and parallel", i)
		}
	}
}

// Two different figures running concurrently with live snapshot sinks: the
// scenario that raced on the old bench.SnapshotSink package-global. Run
// under -race (CI does) this fails loudly if any shared mutable state is
// left in the measurement path.
func TestParallelFiguresNoRace(t *testing.T) {
	small(t)
	jobs := append(Fig9Jobs("fig09", false), Fig13Jobs([]int{1}, 4)...)
	results := sweep.Runner{Workers: 2, WithSnapshots: true}.Run(jobs)
	if err := sweep.FirstError(results); err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if len(res.Snaps) == 0 {
			t.Fatalf("job %s emitted no snapshots", res.Record.Name)
		}
	}
}

// The §7.4 harness interleaves thread operations deterministically: two runs
// of one configuration must agree to the bit, or the result store could
// never recognize its own records.
func TestPersistConfigDeterministic(t *testing.T) {
	small(t)
	a := RunPersistConfig(ds.NameHash, persist.Automatic, PolicySkipIt, 20, FliTDefaultTable)
	b := RunPersistConfig(ds.NameHash, persist.Automatic, PolicySkipIt, 20, FliTDefaultTable)
	if a != b {
		t.Fatalf("identical configs measured differently:\n%+v\n%+v", a, b)
	}
	if a.Cycles <= 0 {
		t.Fatalf("non-positive gated cycles: %+v", a)
	}
}

// Persist jobs carry the virtual-cycle metric for gating and throughput as
// a derived metric.
func TestPersistJobOutcome(t *testing.T) {
	small(t)
	jobs := Fig16Jobs([]uint64{64})
	results := sweep.Runner{}.Run(jobs)
	if err := sweep.FirstError(results); err != nil {
		t.Fatal(err)
	}
	rec := results[0].Record
	if rec.Cycles <= 0 || rec.Derived["mops"] <= 0 {
		t.Fatalf("record = %+v", rec)
	}
}

// Every job across all figures must have a unique (group, name) and a
// non-empty fingerprint — the store's addressing invariants.
func TestJobIdentityInvariants(t *testing.T) {
	small(t)
	var jobs []sweep.Job
	jobs = append(jobs, Fig9Jobs("fig09", false)...)
	jobs = append(jobs, Fig10Jobs(ThreadCounts)...)
	jobs = append(jobs, ComparativeJobs("fig11", 1)...)
	jobs = append(jobs, ComparativeJobs("fig12", 8)...)
	jobs = append(jobs, Fig13Jobs(ThreadCounts, 10)...)
	jobs = append(jobs, Fig14Jobs()...)
	jobs = append(jobs, Fig15Jobs([]int{0, 50})...)
	jobs = append(jobs, Fig16Jobs([]uint64{64, 4096})...)
	jobs = append(jobs, AblationJobs()...)
	seen := map[string]bool{}
	for _, j := range jobs {
		key := j.Group + "/" + j.Name
		if seen[key] {
			t.Errorf("duplicate job %s", key)
		}
		seen[key] = true
		if j.Fingerprint == "" {
			t.Errorf("job %s has no fingerprint", key)
		}
		if j.Group == "" || j.Name == "" {
			t.Errorf("job with empty identity: %+v", j)
		}
	}
	if len(jobs) < 100 {
		t.Fatalf("suspiciously small full grid: %d jobs", len(jobs))
	}
}
