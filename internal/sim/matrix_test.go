package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"skipit/internal/isa"
)

// configMatrix enumerates the microarchitectural knobs whose combinations
// must all preserve correctness: the ablation parameters change performance
// only, never semantics.
func configMatrix() []Config {
	var out []Config
	for _, skipIt := range []bool{true, false} {
		for _, coalesce := range []bool{true, false} {
			for _, cross := range []bool{false, true} {
				for _, wide := range []bool{true, false} {
					for _, depth := range []int{1, 8} {
						for _, fshrs := range []int{1, 8} {
							cfg := DefaultConfig(2)
							cfg.L1.Flush.SkipIt = skipIt
							cfg.L1.Flush.Coalescing = coalesce
							cfg.L1.Flush.CoalesceCrossKind = cross
							cfg.L1.Flush.WideDataArray = wide
							cfg.L1.Flush.QueueDepth = depth
							cfg.L1.Flush.NumFSHRs = fshrs
							out = append(out, cfg)
						}
					}
				}
			}
		}
	}
	return out
}

func matrixName(cfg Config) string {
	f := cfg.L1.Flush
	return fmt.Sprintf("skip=%v coal=%v cross=%v wide=%v q=%d fshr=%d",
		f.SkipIt, f.Coalescing, f.CoalesceCrossKind, f.WideDataArray, f.QueueDepth, f.NumFSHRs)
}

// TestConfigMatrixDurability runs the same randomized workload on every
// configuration: regardless of the knobs, a flush+fence chain makes data
// durable, invariants hold, and the system drains.
func TestConfigMatrixDurability(t *testing.T) {
	// One deterministic program pair shared by all configs.
	build := func(seed int64, base uint64) *isa.Program {
		rng := rand.New(rand.NewSource(seed))
		lines := []uint64{base, base + 64, base + 4096}
		b := isa.NewBuilder()
		for i := 0; i < 60; i++ {
			a := lines[rng.Intn(len(lines))]
			switch rng.Intn(6) {
			case 0, 1:
				b.Store(a, uint64(rng.Intn(100))+1)
			case 2:
				b.CboClean(a)
			case 3:
				b.CboFlush(a)
			case 4:
				b.Load(a)
			case 5:
				b.Fence()
			}
		}
		// Deterministic epilogue: a known value, flushed and fenced.
		b.Store(base, 4242).CboFlush(base).Fence()
		return b.Build()
	}

	for _, cfg := range configMatrix() {
		cfg := cfg
		t.Run(matrixName(cfg), func(t *testing.T) {
			t.Parallel()
			s := New(cfg)
			progs := []*isa.Program{build(1, 0x1000), build(2, 0x100000)}
			if _, err := s.Run(progs, 2_000_000); err != nil {
				t.Fatal(err)
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			s.Crash(false)
			if got := s.Mem.PeekUint64(0x1000); got != 4242 {
				t.Fatalf("core 0 epilogue not durable: %d", got)
			}
			if got := s.Mem.PeekUint64(0x100000); got != 4242 {
				t.Fatalf("core 1 epilogue not durable: %d", got)
			}
		})
	}
}

// TestConfigMatrixLoadValues checks functional correctness of loads across
// the matrix: each core's final load of its private word must see its last
// store despite intervening CBO.X traffic.
func TestConfigMatrixLoadValues(t *testing.T) {
	for _, cfg := range configMatrix() {
		cfg := cfg
		t.Run(matrixName(cfg), func(t *testing.T) {
			t.Parallel()
			s := New(cfg)
			mk := func(base uint64) *isa.Program {
				b := isa.NewBuilder()
				b.Store(base, 10).CboClean(base)
				b.Store(base, 20).CboFlush(base).Fence()
				b.Store(base, 30).CboClean(base).Fence()
				b.Load(base)
				b.Fence()
				return b.Build()
			}
			progs := []*isa.Program{mk(0x2000), mk(0x200000)}
			if _, err := s.Run(progs, 2_000_000); err != nil {
				t.Fatal(err)
			}
			for c, base := range []uint64{0x2000, 0x200000} {
				tm := s.Cores[c].Timings()
				if got := tm[len(tm)-2].LoadValue; got != 30 {
					t.Fatalf("core %d final load = %d, want 30", c, got)
				}
				if got := s.Mem.PeekUint64(base); got != 30 {
					t.Fatalf("core %d NVMM = %d, want 30", c, got)
				}
			}
		})
	}
}

// TestMatrixFourCoreStress runs a shared-line workload on four cores for a
// few key configurations with per-cycle invariant checking.
func TestMatrixFourCoreStress(t *testing.T) {
	for _, skipIt := range []bool{true, false} {
		skipIt := skipIt
		t.Run(fmt.Sprintf("skipit=%v", skipIt), func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig(4)
			cfg.L1.Flush.SkipIt = skipIt
			s := New(cfg)
			lines := []uint64{0x1000, 0x1040, 0x8000}
			for c := 0; c < 4; c++ {
				rng := rand.New(rand.NewSource(int64(c) + 100))
				b := isa.NewBuilder()
				for i := 0; i < 80; i++ {
					a := lines[rng.Intn(len(lines))]
					switch rng.Intn(6) {
					case 0, 1:
						b.Store(a, uint64(c*1000+i))
					case 2:
						b.Load(a)
					case 3:
						b.CboClean(a)
					case 4:
						b.CboFlush(a)
					case 5:
						b.Fence()
					}
				}
				b.Fence()
				s.Cores[c].SetProgram(b.Build())
			}
			for i := 0; i < 400_000; i++ {
				if err := s.StepChecked(); err != nil {
					t.Fatalf("cycle %d: %v", s.Now(), err)
				}
				done := true
				for _, c := range s.Cores {
					if !c.Done() {
						done = false
						break
					}
				}
				if done && s.Quiescent() {
					return
				}
			}
			t.Fatal("stress did not finish")
		})
	}
}
