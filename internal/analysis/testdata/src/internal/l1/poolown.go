// Package l1fix is the poolown-analyzer fixture. It exercises the linepool
// ownership discipline against the real skipit/internal/linepool package.
package l1fix

import "skipit/internal/linepool"

type msg struct {
	data []byte
}

type mshr struct {
	line []byte
}

var parked []byte // package-level: buffers must never land here

// exactlyOnce is the happy path: one Get, one Put on every path.
func exactlyOnce(p *linepool.Pool, n int, dirty bool) {
	b := p.Get(n)
	if dirty {
		b[0] = 1
	}
	p.Put(b)
}

// handoffField transfers ownership into a transaction structure.
func handoffField(p *linepool.Pool, m *mshr, n int) {
	b := p.Get(n)
	m.line = b // ok: the MSHR owns it now
}

// handoffCall transfers ownership to another component.
func handoffCall(p *linepool.Pool, n int, sink func([]byte)) {
	b := p.Get(n)
	sink(b) // ok: the callee owns it now
}

// handoffReturn transfers ownership to the caller.
func handoffReturn(p *linepool.Pool, n int) []byte {
	b := p.Get(n)
	return b // ok: the caller owns it now
}

// handoffMsg transfers ownership inside a composite literal.
func handoffMsg(p *linepool.Pool, n int, ch chan msg) {
	b := p.Get(n)
	ch <- msg{data: b} // ok: the message owns it now
}

// handoffNested transfers ownership inside a struct literal built directly
// in the argument list (the L2's mem.Submit(now, Request{Data: b}) shape);
// the conditional Put covers the callee-rejected branch.
func handoffNested(p *linepool.Pool, n int, submit func(m msg) bool) {
	b := p.Get(n)
	if !submit(msg{data: b}) { // ok: the callee owns it on acceptance
		p.Put(b)
	}
}

// leakOnBranch forgets the buffer on the error path.
func leakOnBranch(p *linepool.Pool, n int, ready bool) {
	b := p.Get(n) // want `buffer b is not released or handed off on every path`
	if !ready {
		return // leaks here
	}
	p.Put(b)
}

// doublePut releases twice on the same path.
func doublePut(p *linepool.Pool, n int, flush bool) {
	b := p.Get(n)
	if flush {
		p.Put(b)
	}
	p.Put(b) // want `released twice on this path`
}

// useAfterPut touches the buffer once the pool may have recycled it.
func useAfterPut(p *linepool.Pool, n int) byte {
	b := p.Get(n)
	p.Put(b)
	return b[0] // want `use of linepool buffer b after Put`
}

// globalStore parks a buffer beyond any transaction scope.
func globalStore(p *linepool.Pool, n int) {
	b := p.Get(n)
	parked = b // want `stored in a package-level variable`
}

// discarded drops the buffer on the floor.
func discarded(p *linepool.Pool, n int) {
	p.Get(n) // want `linepool.Get result discarded`
}

// overwritten re-Gets into the same variable while still owning a buffer.
func overwritten(p *linepool.Pool, n int) {
	b := p.Get(n)
	b = p.Get(n) // want `overwritten while still owned`
	p.Put(b)
}

// loopPaired is fine: each iteration releases what it acquired.
func loopPaired(p *linepool.Pool, n, iters int) {
	for i := 0; i < iters; i++ {
		b := p.Get(n)
		b[0] = byte(i)
		p.Put(b)
	}
}

// waived documents an intentional hold (the WBU-style reference that is
// dropped without Put after a successful send).
func waived(p *linepool.Pool, n int) {
	//skipit:ignore poolown reference dropped without Put after successful send, consumer releases
	b := p.Get(n)
	b[0] = 1
}
