// Command ghannotate turns skipit-vet's JSON findings into GitHub Actions
// workflow annotations, so lint findings appear inline on the pull-request
// diff:
//
//	go run ./cmd/skipit-vet -json ./... | go run ./cmd/ghannotate
//
// Each finding becomes an ::error command; paths are made repo-relative
// (annotations require it) against the current working directory or
// $GITHUB_WORKSPACE. The input may hold several concatenated JSON arrays
// (one per skipit-vet invocation when a job lints package sets separately);
// identical findings — same file, line, column, analyzer and message — are
// annotated once, so overlapping package patterns and base/test-variant
// duplicates do not double-post on the diff. Exit status: 0 when the input
// holds no findings, 1 otherwise — so the pipeline fails the job exactly
// when annotations were emitted.
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	root := os.Getenv("GITHUB_WORKSPACE")
	if root == "" {
		root, _ = os.Getwd()
	}
	os.Exit(run(os.Stdin, os.Stdout, os.Stderr, root))
}

// run reads findings (one or more concatenated JSON arrays), emits one
// annotation per distinct finding, and returns the process exit status.
func run(in io.Reader, out, errw io.Writer, root string) int {
	var findings []finding
	dec := json.NewDecoder(in)
	for {
		var batch []finding
		if err := dec.Decode(&batch); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			fmt.Fprintf(errw, "ghannotate: reading findings: %v\n", err)
			return 2
		}
		findings = append(findings, batch...)
	}

	seen := make(map[finding]bool)
	emitted := 0
	for _, f := range findings {
		if root != "" {
			if rel, err := filepath.Rel(root, f.File); err == nil && !strings.HasPrefix(rel, "..") {
				f.File = filepath.ToSlash(rel)
			}
		}
		// Dedup after relativization: the same finding reported under an
		// absolute and a repo-relative path is still one annotation.
		if seen[f] {
			continue
		}
		seen[f] = true
		emitted++
		fmt.Fprintf(out, "::error file=%s,line=%d,col=%d,title=skipit-vet/%s::%s\n",
			f.File, f.Line, f.Col, f.Analyzer, escape(f.Message))
	}
	if emitted > 0 {
		fmt.Fprintf(errw, "ghannotate: %d finding(s)\n", emitted)
		return 1
	}
	return 0
}

// escape encodes the characters the workflow-command grammar reserves in
// message data.
func escape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}
