// Package buf is the hotalloc interprocedural fixture's helper package: no
// //skipit:hotpath directives, so nothing is reported here — but Grow and
// Fill export Allocates facts that the engine package's pass imports.
package buf

// Grow holds the concrete allocation site at the bottom of the chains.
func Grow(b []byte, n int) []byte {
	return append(b, make([]byte, n)...)
}

// Fill allocates one hop up: its chain names Grow and the append line.
func Fill(n int) []byte {
	return Grow(nil, n)
}

// Reset is clean: no allocation, no fact.
func Reset(b []byte) []byte {
	return b[:0]
}

// Miss allocates behind a waiver: a certified cold path earns no fact, so
// hot callers stay clean.
func Miss(n int) []byte {
	//skipit:ignore hotalloc fixture: cold pool-miss path, measured off the per-cycle loop
	return make([]byte, n)
}

// Hot is an audited hot helper: hotpath functions are barriers in the
// propagation, so callers of Hot never inherit an Allocates fact — its own
// body is checked site-by-site instead.
//
//skipit:hotpath
func Hot(b []byte) []byte {
	return b[:0]
}
