module skipit

go 1.22
