// Package parfix is the shardiso fixture's parallel runtime, mirroring the
// real internal/sim layout: a core shard (L1 + flush state), a hub shard
// (L2 + DRAM), barrier bookkeeping, and an unannotated staging port as the
// sanctioned cross-shard channel. The core shard's window step contains a
// deliberately planted cross-shard mutation (reached through a local helper,
// so the finding must carry the two-hop witness chain into the l2 package)
// plus a barrier write; both must be detected, while the hub shard's step
// and the waived drain stay clean.
package parfix

import (
	l1 "skipit/internal/analysis/testdata/src/shardiso/internal/l1"
	l2 "skipit/internal/analysis/testdata/src/shardiso/internal/l2"
)

// port is deliberately unannotated: the fixture's stand-in for a TileLink
// staged channel, free for any shard to use.
type port struct {
	queued []uint64
}

func (p *port) stage(addr uint64) { p.queued = append(p.queued, addr) }

// runtimeState is barrier bookkeeping, written by the coordinator between
// windows; shard steps may read it but never write it.
//
//skipit:shard-owned barrier
type runtimeState struct {
	tickLast    uint64
	fastForward bool
}

// coreShard owns the core-domain references.
//
//skipit:shard-owned core
type coreShard struct {
	dc  *l1.DCache
	hub *l2.HubCache
	out *port
	sys *runtimeState
}

// hubShard owns the hub-domain references; dbg demonstrates a per-field
// domain override inside an otherwise hub-owned struct.
//
//skipit:shard-owned hub
type hubShard struct {
	l2  *l2.HubCache
	sys *runtimeState
	dbg int //skipit:shard-owned core
}

// flushHub is the planted cross-shard mutation: core code reaching hub
// state through a helper, two hops from the concrete field write.
func (c *coreShard) flushHub() {
	c.hub.Fill(7)
}

// RunWindow is the core shard's step.
//
//skipit:shard-step core
func (c *coreShard) RunWindow(n uint64) {
	for i := uint64(0); i < n; i++ {
		if !c.dc.Lookup(i) {
			c.dc.Insert(i)
			c.out.stage(i) // ok: staged send through the unannotated port
		}
	}
	if c.sys.fastForward { // ok: shard steps may read barrier state
		return
	}
	_ = c.hub.Probe(3)                  // want `core shard step reaches hub-owned state .*: \(l2\.HubCache\)\.Probe \(par\.go:\d+\) -> read of HubCache\.tags at l2\.go:\d+`
	c.flushHub()                        // want `core shard step reaches hub-owned state \(cross-shard traffic must use staged TileLink sends\): \(sim\.coreShard\)\.flushHub \(par\.go:\d+\) -> \(l2\.HubCache\)\.Fill \(par\.go:\d+\) -> write to HubCache\.tags at l2\.go:\d+`
	c.sys.tickLast = c.sys.tickLast + 1 // want `core shard step writes barrier-owned coordinator state \(shards may only read it between-window values\): write to runtimeState\.tickLast at par\.go:\d+`
}

// RunWindow is the hub shard's step: hub state plus barrier reads only —
// except for the overridden dbg field, which is core-owned and therefore a
// finding.
//
//skipit:shard-step hub
func (h *hubShard) RunWindow(n uint64) {
	for i := uint64(0); i < n; i++ {
		if !h.l2.Probe(i) {
			h.l2.Fill(i)
		}
	}
	_ = h.sys.fastForward
	h.dbg++ // want `hub shard step reaches core-owned state .*: write to hubShard\.dbg at par\.go:\d+`
}

// Drain runs between windows on the coordinator's goroutine, so its barrier
// write is certified by a waiver and must not be reported.
//
//skipit:shard-step core
func (c *coreShard) Drain() {
	c.sys.tickLast++ //skipit:ignore shardiso fixture: drain runs between windows on the coordinator goroutine
}
