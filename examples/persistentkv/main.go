// Persistent key-value store: the §7.4 software stack end to end. A
// lock-free hash table runs a mixed workload from two threads under the
// automatic persistence algorithm, once per flush-elision scheme; the
// virtual-time throughputs show why eliding redundant writebacks matters
// and where Skip It lands against the software schemes.
package main

import (
	"fmt"
	"math/rand"
	"sync"

	"skipit"
)

const (
	threads   = 2
	keyRange  = 4096
	opsPerThr = 10_000
	updatePct = 10
)

func run(name string, mkPolicy func(h *skipit.Hierarchy, alloc *skipit.Allocator) skipit.Policy) {
	h := skipit.NewHierarchy(threads)
	alloc := skipit.NewAllocator(1 << 20)
	env := &skipit.PersistEnv{Pol: mkPolicy(h, alloc), Mode: skipit.Automatic}
	kv := skipit.NewHashTable(env, alloc, 512)

	// Prefill half the key range.
	rng := rand.New(rand.NewSource(1))
	for n := 0; n < keyRange/2; {
		if kv.Insert(0, uint64(rng.Intn(keyRange))+1) {
			n++
		}
	}

	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(tid) + 42))
			for i := 0; i < opsPerThr; i++ {
				key := uint64(r.Intn(keyRange)) + 1
				switch roll := r.Intn(200); {
				case roll < updatePct:
					kv.Insert(tid, key)
				case roll < 2*updatePct:
					kv.Delete(tid, key)
				default:
					kv.Contains(tid, key)
				}
			}
		}(tid)
	}
	wg.Wait()

	ops := float64(threads * opsPerThr)
	fmt.Printf("  %-18s %8.3f Mops/s\n", name, ops/h.MaxSeconds()/1e6)
}

func main() {
	fmt.Printf("persistent hash table, %d threads, %d%% updates, automatic persistence:\n",
		threads, updatePct)
	run("plain", func(h *skipit.Hierarchy, _ *skipit.Allocator) skipit.Policy {
		return skipit.NewPlainPolicy(h)
	})
	run("flit-adjacent", func(h *skipit.Hierarchy, _ *skipit.Allocator) skipit.Policy {
		return skipit.NewFliTAdjacentPolicy(h)
	})
	run("flit-hash", func(h *skipit.Hierarchy, alloc *skipit.Allocator) skipit.Policy {
		const entries = 1 << 20
		return skipit.NewFliTHashPolicy(h, entries, alloc.Alloc(entries*8))
	})
	run("link-and-persist", func(h *skipit.Hierarchy, _ *skipit.Allocator) skipit.Policy {
		return skipit.NewLinkAndPersistPolicy(h)
	})
	run("skipit", func(h *skipit.Hierarchy, _ *skipit.Allocator) skipit.Policy {
		return skipit.NewSkipItPolicy(h)
	})
}
