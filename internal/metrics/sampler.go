package metrics

// Sampler snapshots selected counters every Interval cycles into in-memory
// time series, so per-window rates ("DRAM writes per 10k cycles", the shape
// of the paper's Fig. 13 curves) fall out of a single run. The stored values
// are cumulative; Series.Deltas recovers the per-window rate.
//
// Drive it from the system clock: call Tick once per cycle. Sampling cost is
// one modulo check per cycle plus one atomic load per tracked counter per
// window, so even a 1-cycle interval keeps simulation speed usable.
type Sampler struct {
	reg      *Registry
	interval int64
	keys     []string // explicit track list; empty means every counter
	series   map[string]*Series
	order    []string // insertion order for stable output
}

// NewSampler returns a sampler reading reg every interval cycles. With no
// keys, every counter registered at sampling time is tracked (new counters
// join with zero-padded history implied by their first sample). With keys,
// only those counters are tracked.
func NewSampler(reg *Registry, interval int64, keys ...string) *Sampler {
	if interval <= 0 {
		panic("metrics: sampler interval must be positive")
	}
	return &Sampler{
		reg:      reg,
		interval: interval,
		keys:     append([]string(nil), keys...),
		series:   make(map[string]*Series),
	}
}

// Interval returns the sampling period in cycles.
func (s *Sampler) Interval() int64 { return s.interval }

// Tick samples when now lands on an interval boundary. Call once per cycle.
func (s *Sampler) Tick(now int64) {
	if now%s.interval != 0 {
		return
	}
	s.Sample(now)
}

// Sample unconditionally records one point for every tracked counter at the
// given cycle. Harnesses call it once after a run to capture the final state.
func (s *Sampler) Sample(now int64) {
	keys := s.keys
	if len(keys) == 0 {
		keys = s.reg.CounterKeys()
	}
	for _, k := range keys {
		sr, ok := s.series[k]
		if !ok {
			sr = &Series{Key: k, Interval: s.interval}
			s.series[k] = sr
			s.order = append(s.order, k)
		}
		// Skip duplicate samples for the same cycle (Tick boundary plus an
		// explicit final Sample can coincide).
		if n := len(sr.Cycles); n > 0 && sr.Cycles[n-1] == now {
			continue
		}
		sr.Cycles = append(sr.Cycles, now)
		sr.Values = append(sr.Values, s.reg.CounterValue(k))
	}
}

// Series returns the collected time series in first-tracked order.
func (s *Sampler) Series() []*Series {
	out := make([]*Series, 0, len(s.order))
	for _, k := range s.order {
		out = append(out, s.series[k])
	}
	return out
}

// Snapshots returns the collected series as JSON-serializable values.
func (s *Sampler) Snapshots() []SeriesSnapshot {
	out := make([]SeriesSnapshot, 0, len(s.order))
	for _, k := range s.order {
		sr := s.series[k]
		out = append(out, SeriesSnapshot{
			Key:      sr.Key,
			Interval: sr.Interval,
			Cycles:   append([]int64(nil), sr.Cycles...),
			Values:   append([]uint64(nil), sr.Values...),
			Deltas:   sr.Deltas(),
		})
	}
	return out
}

// Series is one counter's sampled history. Values are cumulative counts at
// the matching Cycles entries.
type Series struct {
	Key      string
	Interval int64
	Cycles   []int64
	Values   []uint64
}

// Deltas returns the per-window increments: Deltas()[i] is the count accrued
// between sample i-1 and sample i (the first window starts from zero).
func (s *Series) Deltas() []uint64 {
	out := make([]uint64, len(s.Values))
	prev := uint64(0)
	for i, v := range s.Values {
		out[i] = v - prev
		prev = v
	}
	return out
}

// SeriesSnapshot is the JSON view of one sampled series.
type SeriesSnapshot struct {
	Key      string   `json:"key"`
	Interval int64    `json:"interval"`
	Cycles   []int64  `json:"cycles"`
	Values   []uint64 `json:"values"`
	Deltas   []uint64 `json:"deltas"`
}
