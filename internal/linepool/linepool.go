// Package linepool provides a deterministic free pool of line-sized byte
// buffers for the simulator's hot paths. The cycle loop used to allocate a
// fresh make([]byte, LineBytes) for every DRAM read response, L2 grant, L1
// writeback and probe downgrade; at tens of millions of cycles per sweep that
// allocation (and the GC pressure behind it) dominates host time. The pool
// turns those sites into a pointer pop.
//
// Unlike sync.Pool the free list is a plain LIFO slice: no per-P sharding, no
// GC-driven eviction, and therefore bit-identical reuse order from run to run.
// One pool belongs to one simulated System and is shared by its memory
// controller, L2, L1s and flush units — the components a line buffer migrates
// between over a transaction's lifetime. The simulator is single-goroutine,
// so the pool takes no locks; the hit/miss counters are registry-backed
// atomics and may be read concurrently by benchmark harnesses.
//
// Ownership discipline: a buffer obtained with Get travels with its
// transaction (a tilelink.Msg.Data payload or a mem.Request/Response.Data
// payload) and is returned with Put exactly once, by the component that
// consumes the payload — the L2 when it installs a grant-ack'd line or sinks
// writeback data, the L1 when an MSHR installs granted data, the memory
// controller when it applies a write. Components that merely hold a reference
// after a successful send (the WBU awaiting ReleaseAck, an FSHR awaiting
// RootReleaseAck) must drop it without Put. A nil *Pool is valid everywhere
// and degrades to plain allocation, so components remain usable standalone.
package linepool

import "skipit/internal/metrics"

// Pool is a free list of fixed-size line buffers. The zero value is not
// usable; construct with New. All methods are nil-receiver safe.
type Pool struct {
	lineBytes int
	free      [][]byte

	hits     *metrics.Counter // Get served from the free list
	misses   *metrics.Counter // Get fell back to make
	recycles *metrics.Counter // Put accepted a buffer back
}

// New returns a pool of lineBytes-sized buffers, registering its counters
// under the instance name "pool" in reg (nil gets a private registry).
func New(lineBytes int, reg *metrics.Registry) *Pool {
	if lineBytes <= 0 {
		panic("linepool: non-positive line size")
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Pool{
		lineBytes: lineBytes,
		hits:      reg.Counter("pool", "hits"),
		misses:    reg.Counter("pool", "misses"),
		recycles:  reg.Counter("pool", "recycles"),
	}
}

// Get returns a buffer of exactly size bytes. Buffers are recycled dirty —
// every call site overwrites the full line before use. A nil pool, or a size
// the pool was not built for, falls back to a fresh allocation.
//
//skipit:hotpath
func (p *Pool) Get(size int) []byte {
	if p == nil || size != p.lineBytes {
		return make([]byte, size) //skipit:ignore hotalloc cold fallback for nil pool or foreign size, off the steady-state path
	}
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.hits.Inc()
		return b
	}
	p.misses.Inc()
	return make([]byte, p.lineBytes) //skipit:ignore hotalloc pool-miss fallback taken only until the working set is seeded
}

// Put returns a buffer to the free list. Nil pools, nil buffers and
// foreign-sized buffers are ignored, so consumption points may Put whatever
// payload reached them without caring where it was allocated.
//
//skipit:hotpath
func (p *Pool) Put(b []byte) {
	if p == nil || b == nil || len(b) != p.lineBytes {
		return
	}
	p.recycles.Inc()
	p.free = append(p.free, b) //skipit:ignore hotalloc free-list growth is amortized, steady state reuses capacity
}

// Transfer moves up to n free buffers from src to dst, LIFO on both sides,
// and returns how many moved. The parallel scheduler rebalances per-shard
// pools with it at barriers: line buffers migrate between shards inside
// message payloads (grants out, writebacks back), so without rebalancing an
// asymmetric workload would drain one pool while another grows without
// bound. Transfers bypass the hit/miss/recycle counters — they are a host
// optimization, not simulated behavior — and both pools must share a line
// size. Must only be called at a barrier (no concurrent Get/Put).
func Transfer(dst, src *Pool, n int) int {
	if dst == nil || src == nil || dst == src || dst.lineBytes != src.lineBytes {
		return 0
	}
	if n > len(src.free) {
		n = len(src.free)
	}
	for i := 0; i < n; i++ {
		last := len(src.free) - 1
		dst.free = append(dst.free, src.free[last])
		src.free[last] = nil
		src.free = src.free[:last]
	}
	return n
}

// Free returns the current free-list depth (for tests).
func (p *Pool) Free() int {
	if p == nil {
		return 0
	}
	return len(p.free)
}

// Stats returns (hits, misses, recycles) for tests and snapshots.
func (p *Pool) Stats() (hits, misses, recycles uint64) {
	if p == nil {
		return 0, 0, 0
	}
	return p.hits.Value(), p.misses.Value(), p.recycles.Value()
}
