package bench

import (
	"testing"

	"skipit/internal/isa"
	"skipit/internal/sim"
)

// stepWorkload builds a program that keeps the whole hierarchy busy: stores
// dirty lines, CBOs push them down, loads pull them back. Used by the
// steady-state benchmarks, so its shape should exercise every pooled
// allocation site (DRAM reads, L2 grants, L1 writebacks, flush-unit FSHRs).
func stepWorkload(rep int) *isa.Program {
	b := isa.NewBuilder()
	base := uint64(0x1000 + rep*0x40000)
	b.StoreRegion(base, 4096, 64, 0xAB)
	b.Fence()
	b.CboRegion(base, 4096, 64, true)
	b.Fence()
	b.LoadRegion(base, 4096, 64)
	b.StoreRegion(base, 4096, 64, 0xCD)
	b.CboRegion(base, 4096, 64, false)
	b.Fence()
	return b.Build()
}

// steadyProgs is the pre-built workload rotation, shared by the zero-alloc
// guard and BenchmarkStep so program construction stays out of the measured
// region.
var steadyProgs = []*isa.Program{
	stepWorkload(0), stepWorkload(1), stepWorkload(2), stepWorkload(3),
}

// runSteadyState runs `rounds` back-to-back pre-built workloads on one warmed
// system and returns the total simulated cycles.
func runSteadyState(s *sim.System, rounds int) int64 {
	start := s.Now()
	for r := 0; r < rounds; r++ {
		if _, err := s.Run([]*isa.Program{steadyProgs[r%len(steadyProgs)]}, runLimit); err != nil {
			panic(err)
		}
	}
	return s.Now() - start
}

// TestStepSteadyStateZeroAlloc is the zero-allocation guard for the cycle
// loop: after one warm-up round fills the line pool and the per-component
// scratch slices, a full additional workload must allocate (amortized)
// nothing per cycle. The small fixed budget covers per-Run setup
// (SetProgram's timing slice, builder output) — what must not appear is
// anything proportional to cycles or misses.
func TestStepSteadyStateZeroAlloc(t *testing.T) {
	s := sim.New(sim.DefaultConfig(1))
	runSteadyState(s, 2*len(steadyProgs)) // warm: pool, scratch slices, DRAM first-touch
	var cycles int64
	allocs := testing.AllocsPerRun(1, func() {
		cycles = runSteadyState(s, 4)
	})
	if cycles == 0 {
		t.Fatal("workload ran no cycles")
	}
	perKCycle := allocs / float64(cycles) * 1000
	// The only allocations left should be per-Run setup (SetProgram's timing
	// slice — one per round, not per cycle). The pre-pool hot loop allocated
	// one line buffer per miss, hundreds per round, >100 allocs/kcycle; hold
	// the steady state two orders of magnitude below that.
	if perKCycle > 2 {
		t.Fatalf("steady state allocates %.0f objects over %d cycles (%.1f per kcycle)",
			allocs, cycles, perKCycle)
	}
}

// BenchmarkStep measures the raw cycle loop: one core stepping through the
// steady-state workload, reporting ns and allocations per simulated cycle.
// CI compares allocs/op against the committed baseline (bench_baseline.txt).
func BenchmarkStep(b *testing.B) {
	s := sim.New(sim.DefaultConfig(1))
	s.SetFastForward(false)               // measure the honest per-cycle cost
	runSteadyState(s, 2*len(steadyProgs)) // warm the pool and DRAM backing store
	b.ReportAllocs()
	b.ResetTimer()
	cycles := int64(0)
	for b.Loop() {
		cycles += runSteadyState(s, 1)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(cycles), "ns/cycle")
}

// BenchmarkStepRecorder is BenchmarkStep with the flight recorder armed: the
// per-component rings record every coherence event on the hot path, and this
// variant exists to prove (against the same committed baseline) that doing
// so adds zero allocations per op — recording is a plain struct store into a
// preallocated slot.
func BenchmarkStepRecorder(b *testing.B) {
	s := sim.New(sim.DefaultConfig(1))
	s.SetFastForward(false)               // measure the honest per-cycle cost
	s.EnableFlightRecorder(64)
	runSteadyState(s, 2*len(steadyProgs)) // warm the pool and DRAM backing store
	b.ReportAllocs()
	b.ResetTimer()
	cycles := int64(0)
	for b.Loop() {
		cycles += runSteadyState(s, 1)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(cycles), "ns/cycle")
}

// TestStepRecorderSteadyStateZeroAlloc is TestStepSteadyStateZeroAlloc with
// the flight recorder armed: the same amortized budget must hold, proving
// the recorder adds no per-event allocation.
func TestStepRecorderSteadyStateZeroAlloc(t *testing.T) {
	s := sim.New(sim.DefaultConfig(1))
	s.EnableFlightRecorder(64)
	runSteadyState(s, 2*len(steadyProgs)) // warm: pool, scratch slices, DRAM first-touch
	var cycles int64
	allocs := testing.AllocsPerRun(1, func() {
		cycles = runSteadyState(s, 4)
	})
	if cycles == 0 {
		t.Fatal("workload ran no cycles")
	}
	if perKCycle := allocs / float64(cycles) * 1000; perKCycle > 2 {
		t.Fatalf("recorder-armed steady state allocates %.0f objects over %d cycles (%.1f per kcycle)",
			allocs, cycles, perKCycle)
	}
}

// BenchmarkRunFigure measures one real evaluation point (a Fig. 9 sweep,
// 4 KiB / 1 thread) end to end, fast-forward clock on, as the sweep runner
// executes it.
func BenchmarkRunFigure(b *testing.B) {
	b.ReportAllocs()
	for b.Loop() {
		SweepOnce(nil, 4096, 1, true)
	}
}

// BenchmarkRunFigureNoFF is the same point with the next-event clock off —
// the before/after pair quoted in the README.
func BenchmarkRunFigureNoFF(b *testing.B) {
	b.ReportAllocs()
	for b.Loop() {
		cfg := sim.DefaultConfig(1)
		measureSweepNoFF(nil, cfg, 4096, 1, true)
	}
}

// measureSweepNoFF mirrors measureSweep with fast-forwarding disabled.
func measureSweepNoFF(sink Sink, cfg sim.Config, total uint64, threads int, clean bool) float64 {
	threads = clampThreads(total, threads)
	cfg.NumCores = threads
	cfg.L2.NumClients = threads
	s := sim.New(cfg)
	s.SetFastForward(false)
	progs := make([]*isa.Program, threads)
	starts := make([]int, threads)
	ends := make([]int, threads)
	per := total / uint64(threads)
	for t := 0; t < threads; t++ {
		base := uint64(t) * (1 << 16)
		progs[t], starts[t], ends[t] = buildSweep(base, per, clean)
	}
	if _, err := s.Run(progs, runLimit); err != nil {
		panic(err)
	}
	emitSnapshot(sink, s, "sweep_noff_size%d_threads%d_clean%v", total, threads, clean)
	var begin, end int64 = 1 << 62, 0
	for t := 0; t < threads; t++ {
		tm := s.Cores[t].Timings()
		if is := tm[starts[t]].IssuedAt; is < begin {
			begin = is
		}
		if c := tm[ends[t]].CompletedAt; c > end {
			end = c
		}
	}
	return float64(end - begin)
}

// idleHeavyProg is the idle-heavy workload: batches of cold misses sized to
// the L1's miss resources (4 MSHRs x 8 replay-queue slots = 32 loads per
// batch, filling the LDQ exactly), so every load is accepted without nack
// chatter and the core then sits fully idle until the fills return. Paired
// with a PMEM-grade read latency, almost every simulated cycle is a memory
// wait — the workload shape the next-event clock exists for.
var idleHeavyProg = func() *isa.Program {
	pb := isa.NewBuilder()
	for batch := 0; batch < 12; batch++ {
		base := 0x10000 + uint64(batch)*0x10000
		for i := 0; i < 32; i++ {
			pb.Load(base + uint64(i%4)*0x1000)
		}
	}
	pb.Fence()
	return pb.Build()
}()

func benchmarkIdleHeavy(b *testing.B, ff bool) {
	cfg := sim.DefaultConfig(1)
	cfg.Mem.ReadLatency = 800 // NVM-grade reads: the paper's persistence domain
	b.ReportAllocs()
	var cycles int64
	for b.Loop() {
		s := sim.New(cfg)
		s.SetFastForward(ff)
		n, err := s.Run([]*isa.Program{idleHeavyProg}, runLimit)
		if err != nil {
			panic(err)
		}
		cycles += n
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(cycles), "ns/cycle")
}

func BenchmarkIdleHeavy(b *testing.B)     { benchmarkIdleHeavy(b, true) }
func BenchmarkIdleHeavyNoFF(b *testing.B) { benchmarkIdleHeavy(b, false) }

// --- Deterministic-parallel (PDES) host-throughput benchmarks ---
//
// The serial/parallel pairs below produce bit-identical simulated results
// (see internal/sim/parallel_test.go); what they measure is host throughput.
// The committed speedup note lives in testdata/PARALLEL_SPEEDUP.md and the
// README Performance section quotes the dense 4-core pair.

// denseWorkload is stepWorkload scaled to 16 KiB regions: long enough that
// the per-Run fixed cost (program setup, the engine Session's worker
// launches) amortizes to nothing against the cycles it covers.
func denseWorkload(rep int) *isa.Program {
	b := isa.NewBuilder()
	base := uint64(0x1000 + rep*0x40000)
	b.StoreRegion(base, 16384, 64, 0xAB)
	b.Fence()
	b.CboRegion(base, 16384, 64, true)
	b.Fence()
	b.LoadRegion(base, 16384, 64)
	b.StoreRegion(base, 16384, 64, 0xCD)
	b.CboRegion(base, 16384, 64, false)
	b.Fence()
	return b.Build()
}

// denseProgs returns one dense workload per core on disjoint 256 KiB-spaced
// regions: every core is busy storing, flushing, and reloading at once — the
// dense shape where sharding pays.
func denseProgs(cores, rep int) []*isa.Program {
	progs := make([]*isa.Program, cores)
	for c := range progs {
		progs[c] = denseWorkload(rep*cores + c)
	}
	return progs
}

// runDense runs `rounds` back-to-back pre-built 4-core workloads on one
// warmed system and returns the simulated cycles covered.
func runDense(s *sim.System, rotation [][]*isa.Program, rounds int) int64 {
	start := s.Now()
	for r := 0; r < rounds; r++ {
		if _, err := s.Run(rotation[r%len(rotation)], runLimit); err != nil {
			panic(err)
		}
	}
	return s.Now() - start
}

// benchmarkDense4 is the 4-core dense figure quoted in the README: the same
// warmed system and workload rotation, stepped serially (parallel=0) or with
// PDES workers.
func benchmarkDense4(b *testing.B, parallel int) {
	cfg := sim.DefaultConfig(4)
	cfg.Parallel = parallel
	rotation := [][]*isa.Program{denseProgs(4, 0), denseProgs(4, 1)}
	s := sim.New(cfg)
	runDense(s, rotation, 2*len(rotation)) // warm the pools and DRAM backing store
	b.ReportAllocs()
	b.ResetTimer()
	cycles := int64(0)
	for b.Loop() {
		cycles += runDense(s, rotation, 1)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(cycles), "ns/cycle")
}

func BenchmarkDense4Core(b *testing.B)         { benchmarkDense4(b, 0) }
func BenchmarkDense4CoreParallel(b *testing.B) { benchmarkDense4(b, 4) }

// benchmarkRunFigure4 measures a real 4-thread Fig. 9 evaluation point end
// to end through the sweep runner, serial versus parallel.
func benchmarkRunFigure4(b *testing.B, parallel int) {
	old := Parallel
	Parallel = parallel
	defer func() { Parallel = old }()
	b.ReportAllocs()
	for b.Loop() {
		SweepOnce(nil, 1<<18, 4, true)
	}
}

func BenchmarkRunFigure4Core(b *testing.B)         { benchmarkRunFigure4(b, 0) }
func BenchmarkRunFigure4CoreParallel(b *testing.B) { benchmarkRunFigure4(b, 4) }

// BenchmarkStepParallel is BenchmarkStep with PDES stepping on (a one-core
// system shards into core+hub, so this is the smallest parallel pipeline).
// CI holds its allocs/op to the same committed baseline as BenchmarkStep:
// windowed stepping must stay allocation-free once the pools are warm.
func BenchmarkStepParallel(b *testing.B) {
	cfg := sim.DefaultConfig(1)
	cfg.Parallel = 2
	s := sim.New(cfg)
	s.SetFastForward(false)               // measure the honest per-cycle cost
	runSteadyState(s, 2*len(steadyProgs)) // warm the pool and DRAM backing store
	b.ReportAllocs()
	b.ResetTimer()
	cycles := int64(0)
	for b.Loop() {
		cycles += runSteadyState(s, 1)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(cycles), "ns/cycle")
}

// TestStepParallelSteadyStateZeroAlloc is the zero-allocation guard with
// PDES stepping on at 4 cores: per-shard line pools and the staged mailboxes
// must keep the windowed cycle loop amortized allocation-free, same budget
// as the serial guard. (Each Run enters a fresh engine Session, so the small
// fixed per-Run cost now includes the worker goroutine launches; that is
// rounds-proportional, not cycle-proportional, and fits the same budget.)
func TestStepParallelSteadyStateZeroAlloc(t *testing.T) {
	cfg := sim.DefaultConfig(4)
	cfg.Parallel = 4
	s := sim.New(cfg)
	rotation := [][]*isa.Program{denseProgs(4, 0), denseProgs(4, 1)}
	runDense(s, rotation, 2*len(rotation)) // warm: pools, scratch slices, DRAM first-touch
	var cycles int64
	allocs := testing.AllocsPerRun(1, func() {
		cycles = runDense(s, rotation, 4)
	})
	if cycles == 0 {
		t.Fatal("workload ran no cycles")
	}
	if perKCycle := allocs / float64(cycles) * 1000; perKCycle > 2 {
		t.Fatalf("parallel steady state allocates %.0f objects over %d cycles (%.1f per kcycle)",
			allocs, cycles, perKCycle)
	}
}
