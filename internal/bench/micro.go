// Package bench contains the workload generators and harnesses that
// regenerate every table and figure of the paper's evaluation (§7). Each
// FigNN function returns the rows/series the corresponding figure plots;
// cmd/skipit-bench prints them and bench_test.go wraps them in testing.B
// targets. EXPERIMENTS.md records paper-vs-measured values.
package bench

import (
	"fmt"

	"skipit/internal/isa"
	"skipit/internal/sim"
	"skipit/internal/stats"
	"skipit/internal/sweep"
)

// LoopNops models the per-iteration loop overhead (address arithmetic,
// compare, branch) of the paper's C microbenchmark loops, executed at the
// core's dispatch width alongside each CBO.X.
var LoopNops = 8

// Reps is the repetition count for cycle-accurate microbenchmarks. The paper
// repeats 50 times and reports medians (§7.1); the simulator is
// deterministic across repetitions of an identical program, so repetitions
// vary the region base address to sample different set-index alignments.
var Reps = 5

const lineBytes = 64

// runLimit bounds every simulated program.
const runLimit = 20_000_000

// FastForward controls the simulator's next-event clock for every
// cycle-accurate measurement (cmd/skipit-bench's -fast-forward flag). It
// changes host time only — measured cycle counts are identical either way;
// the committed BENCH_*.json stores prove it at tolerance 0.
var FastForward = true

// Parallel is the deterministic-parallel worker count applied to every
// cycle-accurate measurement system (cmd/skipit-bench's -parallel flag;
// 0 runs serially). Like FastForward it changes host time only: measured
// cycle counts and snapshots are bit-identical for every worker count, and
// the tolerance-0 bench gate holds with it on.
var Parallel = 0

// newSystem builds a measurement system honoring the FastForward and
// Parallel switches.
func newSystem(cfg sim.Config) *sim.System {
	cfg.Parallel = Parallel
	s := sim.New(cfg)
	s.SetFastForward(FastForward)
	return s
}

// Sink receives the labeled metrics snapshot of every completed
// cycle-accurate measurement run. Each harness invocation carries its own
// sink (nil discards snapshots): snapshots used to flow through a
// SnapshotSink package-global, which was a data race the moment two
// measurements ran concurrently under the sweep runner. The figures that run
// on the analytic memsim model (14-16) produce no snapshots.
type Sink = sweep.Sink

// emitSnapshot forwards a finished system's snapshot to the sink.
func emitSnapshot(sink Sink, s *sim.System, format string, args ...any) {
	if sink == nil {
		return
	}
	sink(fmt.Sprintf(format, args...), s.Snapshot())
}

// Sizes is the writeback-size sweep of Figures 9–13: 64 B to 32 KiB.
var Sizes = []uint64{64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768}

// ThreadCounts is the thread sweep of §7.2.
var ThreadCounts = []int{1, 2, 4, 8}

// MicroRow is one point of a latency microbenchmark: the median cycle count
// (and sigma) to write back Size bytes with Threads threads.
type MicroRow struct {
	Size    uint64
	Threads int
	Cycles  float64
	Sigma   float64
}

func (r MicroRow) String() string {
	return fmt.Sprintf("size=%6d threads=%d  %10.0f cycles (sigma %.1f)", r.Size, r.Threads, r.Cycles, r.Sigma)
}

// buildSweep constructs the Fig. 9 per-core program: dirty the region, fence,
// then one CBO.X per line and a single fence at the end (§7.2). It returns
// the program and the index of the first CBO (the measurement start) and of
// the final fence (the measurement end).
func buildSweep(base, size uint64, clean bool) (p *isa.Program, startIdx, endIdx int) {
	b := isa.NewBuilder()
	b.StoreRegion(base, size, lineBytes, 0xD1)
	b.Fence()
	startIdx = b.Mark()
	b.CboRegionLoop(base, size, lineBytes, clean, LoopNops)
	endIdx = b.Mark()
	b.Fence()
	return b.Build(), startIdx, endIdx
}

// clampThreads caps threads so every thread owns at least one full line of
// the region; the job builders use the same clamp when fingerprinting.
func clampThreads(total uint64, threads int) int {
	if total < uint64(threads)*lineBytes {
		threads = int(total / lineBytes)
		if threads == 0 {
			threads = 1
		}
	}
	return threads
}

// measureSweep runs one Fig. 9 configuration: total bytes of dirty data are
// split evenly over threads cores (one simulated core per thread, see
// DESIGN.md §3), each flushing its own region; the reported latency is from
// the first CBO.X issue to the last core's final fence completion.
func measureSweep(sink Sink, cfg sim.Config, total uint64, threads int, clean bool, rep int) float64 {
	threads = clampThreads(total, threads)
	cfg.NumCores = threads
	cfg.L2.NumClients = threads
	s := newSystem(cfg)
	per := total / uint64(threads)
	progs := make([]*isa.Program, threads)
	starts := make([]int, threads)
	ends := make([]int, threads)
	// Regions are spaced 64 KiB apart so threads never contend (§7.2
	// "non-contended lines") and per-core regions fit the L1.
	for t := 0; t < threads; t++ {
		base := uint64(t)*(1<<16) + uint64(rep)*4096
		progs[t], starts[t], ends[t] = buildSweep(base, per, clean)
	}
	if _, err := s.Run(progs, runLimit); err != nil {
		panic(err)
	}
	emitSnapshot(sink, s, "sweep_size%d_threads%d_clean%v_rep%d", total, threads, clean, rep)
	var begin, end int64 = 1 << 62, 0
	for t := 0; t < threads; t++ {
		tm := s.Cores[t].Timings()
		if is := tm[starts[t]].IssuedAt; is < begin {
			begin = is
		}
		if c := tm[ends[t]].CompletedAt; c > end {
			end = c
		}
	}
	return float64(end - begin)
}

// SweepOnce measures one Fig. 9/11/12 point: cycles to write back `total`
// bytes of dirty data with `threads` threads on the simulated SonicBOOM.
func SweepOnce(sink Sink, total uint64, threads int, clean bool) float64 {
	return measureSweep(sink, sim.DefaultConfig(1), total, threads, clean, 0)
}

// measureSweepPoint runs one (size, threads) Fig. 9 point over Reps
// repetitions and summarizes it; Fig9 and the fig09 jobs share it.
func measureSweepPoint(sink Sink, size uint64, threads int, clean bool) MicroRow {
	cfg := sim.DefaultConfig(1)
	var samples []float64
	for r := 0; r < Reps; r++ {
		samples = append(samples, measureSweep(sink, cfg, size, threads, clean, r))
	}
	med, sig := stats.MedianSigma(samples)
	return MicroRow{Size: size, Threads: threads, Cycles: med, Sigma: sig}
}

// Fig9 regenerates Figure 9: CBO.X latency across writeback sizes and thread
// counts, non-contended regions, fence at the end.
func Fig9(sink Sink, clean bool) []MicroRow {
	var rows []MicroRow
	for _, threads := range ThreadCounts {
		for _, size := range Sizes {
			rows = append(rows, measureSweepPoint(sink, size, threads, clean))
		}
	}
	return rows
}

// Fig10Row is one point of the write–CBO.X–fence–read benchmark.
type Fig10Row struct {
	Size    uint64
	Threads int
	Clean   bool
	Cycles  float64
}

func (r Fig10Row) String() string {
	op := "flush"
	if r.Clean {
		op = "clean"
	}
	return fmt.Sprintf("size=%6d threads=%d op=%s  %10.0f cycles", r.Size, r.Threads, op, r.Cycles)
}

// Fig10 regenerates Figure 10 ("Write - Clean/Flush x 10 - Fence - Read"):
// per region, write every line, issue ten CBO.X per line, fence, then
// re-read every line. CBO.CLEAN keeps the lines resident so the re-read
// hits; CBO.FLUSH forces refetches, costing ~2x.
func Fig10(sink Sink, threadCounts []int) []Fig10Row {
	var rows []Fig10Row
	for _, threads := range threadCounts {
		for _, clean := range []bool{true, false} {
			for _, size := range Sizes {
				rows = append(rows, Fig10Row{
					Size:    size,
					Threads: threads,
					Clean:   clean,
					Cycles:  measureWriteCboFenceRead(sink, size, threads, clean),
				})
			}
		}
	}
	return rows
}

func measureWriteCboFenceRead(sink Sink, total uint64, threads int, clean bool) float64 {
	threads = clampThreads(total, threads)
	cfg := sim.DefaultConfig(threads)
	s := newSystem(cfg)
	per := total / uint64(threads)
	progs := make([]*isa.Program, threads)
	startIdx := make([]int, threads)
	for t := 0; t < threads; t++ {
		base := uint64(t) * (1 << 16)
		b := isa.NewBuilder()
		startIdx[t] = b.Mark()
		for a := base; a < base+per; a += lineBytes {
			b.Store(a, 7)
			for r := 0; r < 10; r++ {
				b.Cbo(a, clean).Nops(LoopNops)
			}
		}
		b.Fence()
		b.LoadRegion(base, per, lineBytes)
		progs[t] = b.Build()
	}
	if _, err := s.Run(progs, runLimit); err != nil {
		panic(err)
	}
	emitSnapshot(sink, s, "wcfr_size%d_threads%d_clean%v", total, threads, clean)
	var begin, end int64 = 1 << 62, 0
	for t := 0; t < threads; t++ {
		tm := s.Cores[t].Timings()
		if is := tm[startIdx[t]].IssuedAt; is < begin {
			begin = is
		}
		if c := tm[len(tm)-1].CompletedAt; c > end {
			end = c
		}
	}
	return float64(end - begin)
}

// Fig13Row is one point of the Skip It redundant-writeback microbenchmark.
type Fig13Row struct {
	Size    uint64
	Threads int
	SkipIt  bool
	Cycles  float64
}

func (r Fig13Row) String() string {
	mode := "naive "
	if r.SkipIt {
		mode = "skipit"
	}
	return fmt.Sprintf("size=%6d threads=%d %s  %10.0f cycles", r.Size, r.Threads, mode, r.Cycles)
}

// Fig13 regenerates Figure 13: per line, a store, one real CBO.X, and ten
// redundant CBO.X, with Skip It on or off. The paper runs CBO.FLUSH and
// notes the results are identical for CBO.CLEAN; our reproduction uses
// CBO.CLEAN so the redundant requests hit a resident line, which is the case
// the §6.1 skip bit eliminates (see EXPERIMENTS.md for the flush variant,
// where both modes fall through to the LLC's trivial dirty-bit skip).
func Fig13(sink Sink, threadCounts []int, redundant int) []Fig13Row {
	var rows []Fig13Row
	for _, threads := range threadCounts {
		for _, skipIt := range []bool{false, true} {
			for _, size := range Sizes {
				rows = append(rows, Fig13Row{
					Size:    size,
					Threads: threads,
					SkipIt:  skipIt,
					Cycles:  measureRedundant(sink, size, threads, redundant, skipIt, true),
				})
			}
		}
	}
	return rows
}

// Fig13Flush is the paper's literal CBO.FLUSH variant of Figure 13: the
// first flush invalidates the line, so the redundant flushes miss and are
// eliminated (cheaply) by the LLC's dirty-bit check in both modes.
func Fig13Flush(sink Sink, threadCounts []int, redundant int) []Fig13Row {
	var rows []Fig13Row
	for _, threads := range threadCounts {
		for _, skipIt := range []bool{false, true} {
			for _, size := range Sizes {
				rows = append(rows, Fig13Row{
					Size:    size,
					Threads: threads,
					SkipIt:  skipIt,
					Cycles:  measureRedundant(sink, size, threads, redundant, skipIt, false),
				})
			}
		}
	}
	return rows
}

// redundantConfig is the system configuration measureRedundant runs under;
// the fig13 job builders fingerprint exactly this.
func redundantConfig(threads int, skipIt bool) sim.Config {
	cfg := sim.DefaultConfig(threads)
	cfg.L1.Flush.SkipIt = skipIt
	return cfg
}

func measureRedundant(sink Sink, total uint64, threads, redundant int, skipIt, clean bool) float64 {
	threads = clampThreads(total, threads)
	cfg := redundantConfig(threads, skipIt)
	s := newSystem(cfg)
	per := total / uint64(threads)
	progs := make([]*isa.Program, threads)
	startIdx := make([]int, threads)
	for t := 0; t < threads; t++ {
		base := uint64(t) * (1 << 16)
		b := isa.NewBuilder()
		startIdx[t] = b.Mark()
		for a := base; a < base+per; a += lineBytes {
			b.Store(a, 3)
			b.Cbo(a, clean).Nops(LoopNops)
			for r := 0; r < redundant; r++ {
				b.Cbo(a, clean).Nops(LoopNops)
			}
		}
		b.Fence()
		progs[t] = b.Build()
	}
	if _, err := s.Run(progs, runLimit); err != nil {
		panic(err)
	}
	emitSnapshot(sink, s, "redundant_size%d_threads%d_red%d_skipit%v_clean%v", total, threads, redundant, skipIt, clean)
	var begin, end int64 = 1 << 62, 0
	for t := 0; t < threads; t++ {
		tm := s.Cores[t].Timings()
		if is := tm[startIdx[t]].IssuedAt; is < begin {
			begin = is
		}
		if c := tm[len(tm)-1].CompletedAt; c > end {
			end = c
		}
	}
	return float64(end - begin)
}
