// Package storefix is the lockorder fixture's helper package. It sits
// outside the analyzer's scope, so holding its own lock across the file
// write is not reported here — but Put's Summary fact (acquires Store.mu,
// performs I/O) crosses the package boundary into the sweepd fixture.
package storefix

import (
	"os"
	"sync"
)

// Store persists key/value pairs.
type Store struct {
	mu sync.Mutex
	f  *os.File
}

// Put appends one pair under the store lock.
func (s *Store) Put(k, v string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.f.WriteString(k + "=" + v + "\n")
	return err
}
