package core

// Chaos is the fault-injection hook the flush unit consults when armed. The
// method must be a pure function of the current cycle and the injector's
// schedule, so replays are bit-identical.
type Chaos interface {
	// FSHRQuota returns the number of FSHRs usable at cycle now; negative
	// means unlimited. A squeeze below current occupancy does not cancel
	// in-flight flushes, it only blocks new dequeues.
	FSHRQuota(now int64) int
}

// SetChaos installs (or, with nil, removes) the fault-injection hook.
func (u *FlushUnit) SetChaos(c Chaos) { u.chaos = c }

// fshrQuotaFull reports whether an armed capacity squeeze forbids allocating
// another FSHR at cycle now. Attributed to the ordinary FSHR-full stall
// counter: a squeezed unit behaves exactly like one built with fewer FSHRs.
func (u *FlushUnit) fshrQuotaFull(now int64) bool {
	if u.chaos == nil {
		return false
	}
	q := u.chaos.FSHRQuota(now)
	return q >= 0 && u.ActiveFSHRs() >= q
}

// FSHRDebug is the JSON-friendly view of one FSHR, for hang reports.
type FSHRDebug struct {
	State string `json:"state"`
	Addr  uint64 `json:"addr"`
}

// FlushDebug snapshots the flush unit's state for hang reports.
type FlushDebug struct {
	QueueLen int         `json:"queue_len"`
	Counter  int         `json:"counter"`
	FSHRs    []FSHRDebug `json:"fshrs"`
}

// Debug returns the unit's state snapshot.
func (u *FlushUnit) Debug() FlushDebug {
	dbg := FlushDebug{QueueLen: len(u.queue), Counter: u.counter}
	for i := range u.fshrs {
		f := &u.fshrs[i]
		if !f.active() {
			continue
		}
		dbg.FSHRs = append(dbg.FSHRs, FSHRDebug{State: f.state.String(), Addr: f.req.addr})
	}
	return dbg
}

// PokePendingCount skews the flush counter by delta, bypassing the protocol.
// Test-only: it exists so invariant-checker tests can seed the §5.2
// counter-accounting violation.
func (u *FlushUnit) PokePendingCount(delta int) { u.counter += delta }
