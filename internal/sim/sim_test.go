package sim

import (
	"math/rand"
	"testing"

	"skipit/internal/isa"
)

const runLimit = 200_000

func run1(t *testing.T, p *isa.Program) *System {
	t.Helper()
	s := New(DefaultConfig(1))
	if _, err := s.Run([]*isa.Program{p}, runLimit); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreLoadRoundTrip(t *testing.T) {
	p := isa.NewBuilder().
		Store(0x1000, 42).
		Load(0x1000).
		Build()
	s := run1(t, p)
	if got := s.Cores[0].Timing(1).LoadValue; got != 42 {
		t.Fatalf("load = %d, want 42", got)
	}
}

func TestLoadFromDRAM(t *testing.T) {
	s := New(DefaultConfig(1))
	s.Mem.PokeUint64(0x2000, 7)
	if _, err := s.Run([]*isa.Program{isa.NewBuilder().Load(0x2000).Build()}, runLimit); err != nil {
		t.Fatal(err)
	}
	if got := s.Cores[0].Timing(0).LoadValue; got != 7 {
		t.Fatalf("load = %d, want 7", got)
	}
}

func TestStoreWithoutWritebackStaysVolatile(t *testing.T) {
	// Fig. 5(a): without an explicit writeback the store may linger in the
	// cache indefinitely; in a bounded run it has certainly not reached
	// the persistence domain.
	s := run1(t, isa.NewBuilder().Store(0x1000, 99).Build())
	if got := s.Mem.PeekUint64(0x1000); got != 0 {
		t.Fatalf("store reached NVMM without writeback: %d", got)
	}
}

func TestFlushFencePersists(t *testing.T) {
	// Fig. 5(c): writeback + fence guarantees the value is durable.
	p := isa.NewBuilder().
		Store(0x1000, 123).
		CboFlush(0x1000).
		Fence().
		Build()
	s := run1(t, p)
	if got := s.Mem.PeekUint64(0x1000); got != 123 {
		t.Fatalf("NVMM = %d after flush+fence, want 123", got)
	}
	// CBO.FLUSH invalidates: the line must be gone from L1 and L2.
	if s.L1s[0].LineState(0x1000).Valid {
		t.Error("flush left the line valid in L1")
	}
	if s.L2.LineState(0x1000).Present {
		t.Error("flush left the line present in L2")
	}
}

func TestCleanFencePersistsAndKeepsLine(t *testing.T) {
	p := isa.NewBuilder().
		Store(0x1000, 55).
		CboClean(0x1000).
		Fence().
		Load(0x1000).
		Build()
	s := run1(t, p)
	if got := s.Mem.PeekUint64(0x1000); got != 55 {
		t.Fatalf("NVMM = %d after clean+fence, want 55", got)
	}
	st := s.L1s[0].LineState(0x1000)
	if !st.Valid {
		t.Fatal("clean invalidated the line")
	}
	if st.Dirty {
		t.Error("clean left the dirty bit set")
	}
	if !st.Skip {
		t.Error("completed clean did not set the skip bit")
	}
	if got := s.Cores[0].Timing(3).LoadValue; got != 55 {
		t.Fatalf("re-read after clean = %d, want 55", got)
	}
}

func TestCleanRereadFasterThanFlushReread(t *testing.T) {
	// Fig. 10: re-reading after CBO.CLEAN hits the cache; after CBO.FLUSH
	// it refetches from memory, roughly 2x slower end to end.
	measure := func(clean bool) int64 {
		b := isa.NewBuilder().Store(0x1000, 1).Cbo(0x1000, clean).Fence()
		loadIdx := b.Mark()
		b.Load(0x1000)
		s := run1(t, b.Build())
		tm := s.Cores[0].Timing(loadIdx)
		return tm.CompletedAt - tm.IssuedAt
	}
	cleanLat := measure(true)
	flushLat := measure(false)
	if cleanLat >= flushLat {
		t.Fatalf("re-read after clean (%d cy) not faster than after flush (%d cy)", cleanLat, flushLat)
	}
}

func TestFenceWaitsForFlushCompletion(t *testing.T) {
	b := isa.NewBuilder().Store(0x1000, 1)
	cboIdx := b.Mark()
	b.CboFlush(0x1000)
	fenceIdx := b.Mark()
	b.Fence()
	s := run1(t, b.Build())
	cbo := s.Cores[0].Timing(cboIdx)
	fence := s.Cores[0].Timing(fenceIdx)
	// The CBO commits as soon as it is buffered (§5.2); the fence completes
	// strictly later, once the writeback has been acknowledged by memory.
	if fence.CompletedAt <= cbo.CompletedAt+10 {
		t.Fatalf("fence completed %d cycles after CBO buffered; expected a full memory round trip",
			fence.CompletedAt-cbo.CompletedAt)
	}
	// And the value must already be durable the cycle the fence completes.
	if got := s.Mem.PeekUint64(0x1000); got != 1 {
		t.Fatal("fence completed without durable data")
	}
}

func TestAsyncWritebackCommitsBeforeCompletion(t *testing.T) {
	// §4: the writeback instruction commits out of order with respect to
	// its own completion; buffering in the flush queue is enough. The
	// prologue warms the line so the measured CBO hits immediately.
	b := isa.NewBuilder().Store(0x1000, 0).CboClean(0x1000).Fence()
	b.Store(0x1000, 1)
	cboIdx := b.Mark()
	b.CboFlush(0x1000)
	// 20 nops pad the ROB so commit can run ahead.
	for i := 0; i < 20; i++ {
		b.Nop()
	}
	s := run1(t, b.Build())
	cbo := s.Cores[0].Timing(cboIdx)
	if cbo.CommittedAt < 0 {
		t.Fatal("CBO never committed")
	}
	// The store to NVMM finishes long after commit; verify commit did not
	// wait a memory round trip (committed within ~20 cycles of issue).
	if cbo.CommittedAt-cbo.IssuedAt > 20 {
		t.Fatalf("CBO.FLUSH commit waited %d cycles; writebacks must be asynchronous",
			cbo.CommittedAt-cbo.IssuedAt)
	}
}

func TestSkipItDropsRedundantCleans(t *testing.T) {
	b := isa.NewBuilder().Store(0x1000, 9).CboClean(0x1000).Fence()
	for i := 0; i < 10; i++ {
		b.CboClean(0x1000)
	}
	b.Fence()
	s := run1(t, b.Build())
	st := s.L1s[0].FlushUnit().Stats()
	if st.SkipDropped != 10 {
		t.Fatalf("SkipDropped = %d, want 10 (redundant cleans eliminated)", st.SkipDropped)
	}
	if got := s.L2.Stats().RootReleases; got != 1 {
		t.Fatalf("L2 saw %d RootReleases, want 1", got)
	}
}

func TestNaiveSendsRedundantCleansToL2(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.L1.Flush.SkipIt = false
	cfg.L1.Flush.Coalescing = false
	s := New(cfg)
	b := isa.NewBuilder().Store(0x1000, 9).CboClean(0x1000).Fence()
	for i := 0; i < 10; i++ {
		b.CboClean(0x1000).Fence()
	}
	if _, err := s.Run([]*isa.Program{b.Build()}, runLimit); err != nil {
		t.Fatal(err)
	}
	l2stats := s.L2.Stats()
	if l2stats.RootReleases != 11 {
		t.Fatalf("L2 RootReleases = %d, want 11 without Skip It", l2stats.RootReleases)
	}
	// The LLC's trivial dirty-bit check (§5.5) still avoids 10 DRAM writes.
	if l2stats.RootReleaseSkips != 10 {
		t.Fatalf("L2 trivial skips = %d, want 10", l2stats.RootReleaseSkips)
	}
	if s.Mem.Stats().Writes != 1 {
		t.Fatalf("DRAM writes = %d, want 1", s.Mem.Stats().Writes)
	}
}

func TestCapacityEvictionWritesBackDirtyLines(t *testing.T) {
	// Two regions of 32 KiB each overflow the 32 KiB L1: the first region
	// is evicted to L2 via the writeback unit.
	const l1Size = 32 << 10
	b := isa.NewBuilder().
		StoreRegion(0, l1Size, 64, 1).
		StoreRegion(l1Size, l1Size, 64, 2).
		LoadRegion(0, l1Size, 64)
	s := run1(t, b.Build())
	if s.L1s[0].Stats().Writebacks == 0 {
		t.Fatal("no evictions despite 2x capacity working set")
	}
	timings := s.Cores[0].Timings()
	base := 2 * (l1Size / 64)
	for i := 0; i < l1Size/64; i++ {
		if got := timings[base+i].LoadValue; got != 1 {
			t.Fatalf("load %d = %d after eviction round trip, want 1", i, got)
		}
	}
}

func TestCrossCoreCoherence(t *testing.T) {
	// Core 0 writes, core 1 spins reading... our cores have no branches,
	// so instead: core 0 writes+flushes+fences; then we run core 1 reading.
	s := New(DefaultConfig(2))
	w := isa.NewBuilder().Store(0x1000, 77).Fence().Build()
	if _, err := s.Run([]*isa.Program{w, nil}, runLimit); err != nil {
		t.Fatal(err)
	}
	// Core 1 now loads: the probe must extract core 0's dirty data.
	r := isa.NewBuilder().Load(0x1000).Build()
	if _, err := s.Run([]*isa.Program{nil, r}, runLimit); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := s.Cores[1].Timing(0).LoadValue; got != 77 {
		t.Fatalf("cross-core load = %d, want 77", got)
	}
	// Core 0 surrendered its dirty data but keeps a readable copy.
	st0 := s.L1s[0].LineState(0x1000)
	if st0.Valid && st0.Dirty {
		t.Error("core 0 still dirty after probe extraction")
	}
	// L2 is now the dirty holder: core 1's copy must not claim persistence.
	if st1 := s.L1s[1].LineState(0x1000); st1.Valid && st1.Skip {
		t.Error("core 1 received a dirty line with the skip bit set (§6.2 violation)")
	}
}

func TestCrossCoreStoreInvalidatesSharer(t *testing.T) {
	s := New(DefaultConfig(2))
	if _, err := s.Run([]*isa.Program{
		isa.NewBuilder().Store(0x1000, 1).Build(), nil}, runLimit); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run([]*isa.Program{nil,
		isa.NewBuilder().Store(0x1000, 2).Load(0x1000).Build()}, runLimit); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.L1s[0].LineState(0x1000).Valid {
		t.Error("core 0 keeps a copy after core 1 acquired exclusively")
	}
	if got := s.Cores[1].Timing(1).LoadValue; got != 2 {
		t.Fatalf("core 1 load = %d, want 2", got)
	}
}

func TestCrossCoreFlushWritesBackRemoteDirtyData(t *testing.T) {
	// §5.5: the RootRelease probes other owners even when the requester
	// does not hold the line — core 1 flushes a line dirty only in core 0.
	s := New(DefaultConfig(2))
	if _, err := s.Run([]*isa.Program{
		isa.NewBuilder().Store(0x1000, 31).Build(), nil}, runLimit); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run([]*isa.Program{nil,
		isa.NewBuilder().CboFlush(0x1000).Fence().Build()}, runLimit); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := s.Mem.PeekUint64(0x1000); got != 31 {
		t.Fatalf("NVMM = %d after remote flush, want 31", got)
	}
	if s.L1s[0].LineState(0x1000).Valid {
		t.Error("flush left core 0's copy valid")
	}
}

func TestCrashLosesUnflushedData(t *testing.T) {
	s := New(DefaultConfig(1))
	p := isa.NewBuilder().
		Store(0x1000, 10).
		Store(0x1040, 20).
		CboFlush(0x1000).
		Fence().
		Build()
	if _, err := s.Run([]*isa.Program{p}, runLimit); err != nil {
		t.Fatal(err)
	}
	s.Crash(false)
	if got := s.Mem.PeekUint64(0x1000); got != 10 {
		t.Fatalf("flushed value lost in crash: %d", got)
	}
	if got := s.Mem.PeekUint64(0x1040); got != 0 {
		t.Fatalf("unflushed value survived crash: %d", got)
	}
	// The system must be usable after the crash: reload the durable value.
	if _, err := s.Run([]*isa.Program{isa.NewBuilder().Load(0x1000).Build()}, runLimit); err != nil {
		t.Fatal(err)
	}
	if got := s.Cores[0].Timing(0).LoadValue; got != 10 {
		t.Fatalf("post-crash load = %d, want 10", got)
	}
}

func TestMemorySemanticsFig5b(t *testing.T) {
	// Fig. 5(b): writeback(x) then store(y): y's durability is NOT implied
	// by x's writeback. x is durable after the fence; y need not be.
	p := isa.NewBuilder().
		Store(0x1000, 1). // x
		CboFlush(0x1000).
		Store(0x2000, 2). // y, after the async writeback was issued
		Fence().          // orders the flush of x only; y was never written back
		Build()
	s := run1(t, p)
	if got := s.Mem.PeekUint64(0x1000); got != 1 {
		t.Fatal("x not durable after flush+fence")
	}
	if got := s.Mem.PeekUint64(0x2000); got != 0 {
		t.Fatal("y became durable without any writeback")
	}
}

func TestRandomStressInvariants(t *testing.T) {
	// Randomized two-core workload over a small line pool with invariant
	// checks every cycle.
	rng := rand.New(rand.NewSource(7))
	lines := []uint64{0x1000, 0x1040, 0x2000, 0x10000, 0x10040, 0x20000}
	build := func() *isa.Program {
		b := isa.NewBuilder()
		for i := 0; i < 150; i++ {
			a := lines[rng.Intn(len(lines))]
			switch rng.Intn(10) {
			case 0, 1, 2, 3:
				b.Store(a, uint64(rng.Intn(1000)))
			case 4, 5, 6:
				b.Load(a)
			case 7:
				b.CboClean(a)
			case 8:
				b.CboFlush(a)
			case 9:
				b.Fence()
			}
		}
		b.Fence()
		return b.Build()
	}
	s := New(DefaultConfig(2))
	s.Cores[0].SetProgram(build())
	s.Cores[1].SetProgram(build())
	for i := 0; i < 300_000; i++ {
		if err := s.StepChecked(); err != nil {
			t.Fatalf("cycle %d: %v", s.Now(), err)
		}
		if s.Cores[0].Done() && s.Cores[1].Done() && s.Quiescent() {
			return
		}
	}
	t.Fatalf("stress run did not finish: %s", s.describeStall())
}

func TestSingleLineFlushLatencyBand(t *testing.T) {
	// §7.2: a single-line clean or flush lands near 100 cycles.
	for _, clean := range []bool{true, false} {
		b := isa.NewBuilder().Store(0x1000, 1)
		start := b.Mark()
		b.Cbo(0x1000, clean)
		fence := b.Mark()
		b.Fence()
		s := run1(t, b.Build())
		lat := s.Cores[0].Timing(fence).CompletedAt - s.Cores[0].Timing(start).IssuedAt
		if lat < 40 || lat > 250 {
			t.Errorf("single-line CBO(clean=%v)+fence latency = %d cycles, want ~100", clean, lat)
		}
	}
}
