package ds

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"skipit/internal/memsim"
	"skipit/internal/persist"
)

// newEnv returns a fresh non-persistent environment (structure logic under
// test, not flush policy).
func newEnv(threads int) (*persist.Env, *memsim.Allocator) {
	h := memsim.New(memsim.DefaultConfig(threads))
	return &persist.Env{Pol: persist.NewPlain(h, false), Mode: persist.Manual},
		memsim.NewAllocator(1 << 20)
}

type maker struct {
	name string
	mk   func(env *persist.Env, alloc *memsim.Allocator) Set
}

func makers() []maker {
	return []maker{
		{NameList, func(e *persist.Env, a *memsim.Allocator) Set { return NewLinkedList(e, a) }},
		{NameHash, func(e *persist.Env, a *memsim.Allocator) Set { return NewHashTable(e, a, 64) }},
		{NameBST, func(e *persist.Env, a *memsim.Allocator) Set { return NewBST(e, a) }},
		{NameSkiplist, func(e *persist.Env, a *memsim.Allocator) Set { return NewSkiplist(e, a) }},
	}
}

func TestSequentialSemantics(t *testing.T) {
	for _, m := range makers() {
		t.Run(m.name, func(t *testing.T) {
			env, alloc := newEnv(1)
			s := m.mk(env, alloc)
			if s.Contains(0, 5) {
				t.Fatal("empty set contains 5")
			}
			if !s.Insert(0, 5) {
				t.Fatal("first insert failed")
			}
			if s.Insert(0, 5) {
				t.Fatal("duplicate insert succeeded")
			}
			if !s.Contains(0, 5) {
				t.Fatal("inserted key missing")
			}
			if s.Delete(0, 6) {
				t.Fatal("deleted absent key")
			}
			if !s.Delete(0, 5) {
				t.Fatal("delete of present key failed")
			}
			if s.Contains(0, 5) {
				t.Fatal("deleted key still present")
			}
			if s.Delete(0, 5) {
				t.Fatal("double delete succeeded")
			}
		})
	}
}

func TestSequentialBulk(t *testing.T) {
	for _, m := range makers() {
		t.Run(m.name, func(t *testing.T) {
			env, alloc := newEnv(1)
			s := m.mk(env, alloc)
			rng := rand.New(rand.NewSource(3))
			ref := map[uint64]bool{}
			for i := 0; i < 4000; i++ {
				key := uint64(rng.Intn(300)) + 1
				switch rng.Intn(3) {
				case 0:
					if got, want := s.Insert(0, key), !ref[key]; got != want {
						t.Fatalf("Insert(%d) = %v, want %v", key, got, want)
					}
					ref[key] = true
				case 1:
					if got, want := s.Delete(0, key), ref[key]; got != want {
						t.Fatalf("Delete(%d) = %v, want %v", key, got, want)
					}
					delete(ref, key)
				case 2:
					if got, want := s.Contains(0, key), ref[key]; got != want {
						t.Fatalf("Contains(%d) = %v, want %v", key, got, want)
					}
				}
			}
			for key := uint64(1); key <= 300; key++ {
				if got := s.Contains(0, key); got != ref[key] {
					t.Fatalf("final Contains(%d) = %v, want %v", key, got, ref[key])
				}
			}
		})
	}
}

func TestBoundaryKeys(t *testing.T) {
	for _, m := range makers() {
		t.Run(m.name, func(t *testing.T) {
			env, alloc := newEnv(1)
			s := m.mk(env, alloc)
			for _, key := range []uint64{1, KeyMax} {
				if !s.Insert(0, key) || !s.Contains(0, key) {
					t.Fatalf("boundary key %d not usable", key)
				}
				if !s.Delete(0, key) {
					t.Fatalf("boundary key %d not deletable", key)
				}
			}
		})
	}
}

func TestKeyRangePanics(t *testing.T) {
	env, alloc := newEnv(1)
	s := NewLinkedList(env, alloc)
	for _, bad := range []uint64{0, KeyMax + 1, ^uint64(0)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("key %d accepted", bad)
				}
			}()
			s.Insert(0, bad)
		}()
	}
}

// TestConcurrentToggleConsistency is the main concurrency check: successful
// inserts and deletes of a key strictly alternate (the structures linearize
// them), so per-key success counts determine final membership regardless of
// interleaving.
func TestConcurrentToggleConsistency(t *testing.T) {
	const (
		threads = 4
		keys    = 64
		opsPer  = 8000
	)
	for _, m := range makers() {
		t.Run(m.name, func(t *testing.T) {
			env, alloc := newEnv(threads)
			s := m.mk(env, alloc)
			var inserted, deleted [keys + 1]atomic.Int64
			var wg sync.WaitGroup
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(tid) * 977))
					for i := 0; i < opsPer; i++ {
						key := uint64(rng.Intn(keys)) + 1
						switch rng.Intn(3) {
						case 0:
							if s.Insert(tid, key) {
								inserted[key].Add(1)
							}
						case 1:
							if s.Delete(tid, key) {
								deleted[key].Add(1)
							}
						default:
							s.Contains(tid, key)
						}
					}
				}(tid)
			}
			wg.Wait()
			for key := uint64(1); key <= keys; key++ {
				net := inserted[key].Load() - deleted[key].Load()
				if net != 0 && net != 1 {
					t.Fatalf("key %d: %d successful inserts, %d deletes — impossible history",
						key, inserted[key].Load(), deleted[key].Load())
				}
				if got, want := s.Contains(0, key), net == 1; got != want {
					t.Fatalf("key %d: final Contains = %v, want %v", key, got, want)
				}
			}
		})
	}
}

// TestConcurrentDisjointRanges gives each thread a private key range, so
// every operation's result is deterministic even under concurrency.
func TestConcurrentDisjointRanges(t *testing.T) {
	const threads = 4
	for _, m := range makers() {
		t.Run(m.name, func(t *testing.T) {
			env, alloc := newEnv(threads)
			s := m.mk(env, alloc)
			var wg sync.WaitGroup
			errs := make(chan error, threads)
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					base := uint64(tid*10_000) + 1
					ref := map[uint64]bool{}
					rng := rand.New(rand.NewSource(int64(tid)))
					for i := 0; i < 5000; i++ {
						key := base + uint64(rng.Intn(200))
						switch rng.Intn(3) {
						case 0:
							if s.Insert(tid, key) == ref[key] {
								errs <- errAt(m.name, "insert", key)
								return
							}
							ref[key] = true
						case 1:
							if s.Delete(tid, key) != ref[key] {
								errs <- errAt(m.name, "delete", key)
								return
							}
							delete(ref, key)
						default:
							if s.Contains(tid, key) != ref[key] {
								errs <- errAt(m.name, "contains", key)
								return
							}
						}
					}
				}(tid)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

type opError struct {
	ds, op string
	key    uint64
}

func errAt(ds, op string, key uint64) error { return opError{ds, op, key} }
func (e opError) Error() string {
	return e.ds + ": concurrent " + e.op + " returned wrong result (private key range)"
}

// TestConcurrentSameKeyHammer maximizes contention: all threads fight over
// three keys, exercising helping paths (marked-node unlink, BST cleanup).
func TestConcurrentSameKeyHammer(t *testing.T) {
	const threads = 8
	for _, m := range makers() {
		t.Run(m.name, func(t *testing.T) {
			env, alloc := newEnv(threads)
			s := m.mk(env, alloc)
			var inserted, deleted [4]atomic.Int64
			var wg sync.WaitGroup
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(tid) + 31))
					for i := 0; i < 6000; i++ {
						key := uint64(rng.Intn(3)) + 1
						if rng.Intn(2) == 0 {
							if s.Insert(tid, key) {
								inserted[key].Add(1)
							}
						} else {
							if s.Delete(tid, key) {
								deleted[key].Add(1)
							}
						}
					}
				}(tid)
			}
			wg.Wait()
			for key := uint64(1); key <= 3; key++ {
				net := inserted[key].Load() - deleted[key].Load()
				if net != 0 && net != 1 {
					t.Fatalf("key %d: net %d", key, net)
				}
				if got := s.Contains(0, key); got != (net == 1) {
					t.Fatalf("key %d: Contains=%v net=%d", key, got, net)
				}
			}
		})
	}
}

func TestEveryPolicyRunsEveryStructure(t *testing.T) {
	// Smoke: all five policies drive all four structures without deadlock
	// or state corruption, across all three modes.
	h := memsim.New(memsim.DefaultConfig(2))
	base := uint64(1 << 22)
	pols := []persist.Policy{
		persist.NewPlain(h, false),
		persist.NewSkipIt(h, false),
		persist.NewFliT(h, true, 0, 0, false),
		persist.NewFliT(h, false, 1<<12, 1<<41, false),
		persist.NewLinkAndPersist(h, false),
	}
	for _, pol := range pols {
		for _, mode := range persist.Modes() {
			env := &persist.Env{Pol: pol, Mode: mode}
			alloc := memsim.NewAllocator(base)
			base += 1 << 22
			for _, m := range makers() {
				s := m.mk(env, alloc)
				var wg sync.WaitGroup
				for tid := 0; tid < 2; tid++ {
					wg.Add(1)
					go func(tid int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(int64(tid)))
						for i := 0; i < 400; i++ {
							key := uint64(rng.Intn(40)) + 1
							switch rng.Intn(3) {
							case 0:
								s.Insert(tid, key)
							case 1:
								s.Delete(tid, key)
							default:
								s.Contains(tid, key)
							}
						}
					}(tid)
				}
				wg.Wait()
			}
		}
	}
}

func TestHashTableRejectsBadBucketCount(t *testing.T) {
	env, alloc := newEnv(1)
	for _, bad := range []int{0, -1, 3, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bucket count %d accepted", bad)
				}
			}()
			NewHashTable(env, alloc, bad)
		}()
	}
}

func TestSkiplistHeightDistribution(t *testing.T) {
	env, alloc := newEnv(1)
	s := NewSkiplist(env, alloc)
	heights := map[int]int{}
	for i := 0; i < 2000; i++ {
		heights[s.randomHeight()]++
	}
	if heights[1] < 700 || heights[1] > 1300 {
		t.Errorf("height-1 frequency %d of 2000, want ~1000 (geometric p=1/2)", heights[1])
	}
	for h := range heights {
		if h < 1 || h > skipMaxHeight {
			t.Errorf("height %d out of range", h)
		}
	}
}
