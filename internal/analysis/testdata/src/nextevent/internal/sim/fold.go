package simfold

// This file is the nextevent-analyzer fold fixture: a System mirroring the
// real sim.System, with one component folded into nextEventCycle and one
// forgotten.

type core struct{ wake int64 }

func (c *core) Tick(now int64)            {}
func (c *core) NextEvent(now int64) int64 { return c.wake }

type dma struct{ wake int64 }

func (d *dma) Tick(now int64)            {}
func (d *dma) NextEvent(now int64) int64 { return d.wake }

// System folds Cores but forgot the DMA engine.
type System struct {
	Cores []*core
	DMA   *dma // want `System field DMA implements NextEvent but is not folded into nextEventCycle`

	now int64 // ok: not a component
}

func (s *System) nextEventCycle(last int64) int64 {
	next := int64(1 << 62)
	for _, c := range s.Cores {
		if t := c.NextEvent(last); t < next {
			next = t
		}
	}
	return next
}
