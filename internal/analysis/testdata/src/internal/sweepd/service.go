// Package sweepdfix is the determinism-analyzer service-tier fixture. Its
// import path ends in internal/sweepd, which the analyzer's -service list
// exempts from the simulator rules even when -pkgs is widened to match it —
// so this file uses every construct the analyzer forbids in the simulator
// core and expects zero diagnostics (no want comments anywhere).
//
// Everything here is the normal idiom of the real internal/sweepd: lease
// deadlines and heartbeat timers read the wall clock, workers run in
// goroutines, and status maps are iterated for logging.
package sweepdfix

import (
	"fmt"
	"io"
	"time"
)

// leaseExpiry computes a lease deadline from the host clock — the canonical
// legitimate wall-clock read in service code.
func leaseExpiry(ttl time.Duration) time.Time {
	return time.Now().Add(ttl)
}

// heartbeatAge measures how long a worker has been silent.
func heartbeatAge(last time.Time) time.Duration {
	return time.Since(last)
}

// spawnWorkers launches the worker pool; host-side concurrency is the point
// of the service tier.
func spawnWorkers(n int, run func()) chan struct{} {
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func() {
			run()
			done <- struct{}{}
		}()
	}
	return done
}

// dumpState logs per-job states in map order; service logs are not part of
// the byte-identical result surface.
func dumpState(w io.Writer, states map[string]string) []string {
	var ids []string
	for id, st := range states {
		fmt.Fprintf(w, "%s: %s\n", id, st)
		ids = append(ids, id)
	}
	return ids
}
