package ds

import (
	"skipit/internal/memsim"
	"skipit/internal/persist"
)

// HashTable is a fixed-size bucket array of Harris lists, the log-free hash
// table design of David et al. [ATC'18]. The bucket array itself lives in
// the simulated heap, so indexing it costs a cache access.
type HashTable struct {
	Common
	buckets    []*LinkedList
	bucketBase uint64
	mask       uint64
}

// NewHashTable builds a table with the given power-of-two bucket count.
func NewHashTable(env *persist.Env, alloc *memsim.Allocator, buckets int) *HashTable {
	if buckets <= 0 || buckets&(buckets-1) != 0 {
		panic("ds: bucket count must be a positive power of two")
	}
	h := &HashTable{
		Common: NewCommon(env, alloc),
		mask:   uint64(buckets - 1),
	}
	h.bucketBase = alloc.Alloc(uint64(buckets) * 8)
	h.buckets = make([]*LinkedList, buckets)
	for i := range h.buckets {
		h.buckets[i] = NewLinkedList(env, alloc)
	}
	return h
}

// Name identifies the structure in benchmark output.
func (h *HashTable) Name() string { return NameHash }

func (h *HashTable) bucket(tid int, key uint64) *LinkedList {
	idx := (key * 0x9E3779B97F4A7C15) & h.mask
	// Reading the bucket array entry is a real access.
	h.env.ReadTraverse(tid, h.bucketBase+idx*8)
	return h.buckets[idx]
}

// Insert adds key; it reports false if already present.
func (h *HashTable) Insert(tid int, key uint64) bool {
	return h.bucket(tid, key).Insert(tid, key)
}

// Delete removes key; it reports false if absent.
func (h *HashTable) Delete(tid int, key uint64) bool {
	return h.bucket(tid, key).Delete(tid, key)
}

// Contains reports membership.
func (h *HashTable) Contains(tid int, key uint64) bool {
	return h.bucket(tid, key).Contains(tid, key)
}
