// Package suppresscheck exercises the //skipit:ignore mechanism itself,
// against a test-only analyzer that reports every call to boom. The contract
// under test: a well-formed directive silences exactly one line for exactly
// one analyzer, and a reason-less directive is itself a diagnostic that
// suppresses nothing.
package suppresscheck

func boom() {}

// unwaived: every call reports.
func unwaived() {
	boom() // want `call to boom`
	boom() // want `call to boom`
}

// standalone: a directive alone on a line silences exactly the next line.
func standalone() {
	//skipit:ignore testlint fixture waiver with a documented reason
	boom()
	boom() // want `call to boom`
}

// trailing: a directive at the end of a line silences that line only.
func trailing() {
	boom() //skipit:ignore testlint fixture waiver with a documented reason
	boom() // want `call to boom`
}

// wrongAnalyzer: a directive naming a different analyzer suppresses nothing
// here (and testlint does not complain about the foreign directive).
func wrongAnalyzer() {
	//skipit:ignore otherlint belongs to a different analyzer
	boom() // want `call to boom`
}

// missingReason: a reason-less directive is reported in its own right and
// does not suppress the finding it hoped to cover.
func missingReason() {
	/* want `skipit:ignore directive needs a reason` */ //skipit:ignore testlint
	boom()                                              // want `call to boom`
}
