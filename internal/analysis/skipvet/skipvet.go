// Package skipvet assembles the skipit-vet analyzer suite: the five
// analyzers that statically enforce the simulator's determinism, zero-alloc
// and ownership invariants. cmd/skipit-vet runs exactly this list; tests and
// future tools should import it rather than enumerating analyzers
// themselves so the suite cannot drift between entry points.
package skipvet

import (
	"golang.org/x/tools/go/analysis"
	"skipit/internal/analysis/determinism"
	"skipit/internal/analysis/hotalloc"
	"skipit/internal/analysis/metricname"
	"skipit/internal/analysis/nextevent"
	"skipit/internal/analysis/poolown"
)

// Analyzers is the full skipit-vet suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	hotalloc.Analyzer,
	poolown.Analyzer,
	nextevent.Analyzer,
	metricname.Analyzer,
}
