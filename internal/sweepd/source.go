package sweepd

import "skipit/internal/sweep"

// JobSource resolves a wire JobSpec back to a runnable sweep.Job. Workers
// are compiled with the same job builders as the client (the bench figure
// table), so (group, name) identifies the closure and the fingerprint
// proves the worker's build computes the same measurement.
type JobSource interface {
	Resolve(group, name string) (sweep.Job, bool)
}

// jobIndex is the map-backed JobSource.
type jobIndex map[string]sweep.Job

func (ix jobIndex) Resolve(group, name string) (sweep.Job, bool) {
	j, ok := ix[group+"/"+name]
	return j, ok
}

// IndexJobs builds a JobSource over a job slice. Later duplicates of a
// (group, name) win, matching the store's replace-by-name semantics.
func IndexJobs(jobs []sweep.Job) JobSource {
	ix := make(jobIndex, len(jobs))
	for _, j := range jobs {
		ix[j.Group+"/"+j.Name] = j
	}
	return ix
}
