// Package hot is the detflow fixture's hotpath tier: the package is outside
// the simulator scope, so only the //skipit:hotpath function is held to the
// no-taint rule — cold code may call tainted helpers freely.
package hot

import "skipit/internal/analysis/testdata/src/detflow/internal/svc"

// tick is the per-cycle fold.
//
//skipit:hotpath
func tick() int {
	return svc.Jitter() // want `call into nondeterministic code from hot path tick: svc\.Jitter -> rand\.Intn at svc\.go:\d+`
}

// cold is neither hot nor simulator code: it becomes tainted, but calling
// into taint from here is not a finding.
func cold() int64 {
	return svc.Stamp()
}
