package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// File is the on-disk shape of one result-store group: BENCH_<group>.json.
type File struct {
	SchemaVersion int      `json:"schema_version"`
	Group         string   `json:"group"`
	Records       []Record `json:"records"`
}

// FileName returns the store file name for a group: BENCH_fig09.json.
func FileName(group string) string { return "BENCH_" + group + ".json" }

// LoadFile reads one store file. A file whose schema version differs from
// SchemaVersion is rejected: its records predate the current measurement
// semantics and must all be re-measured.
func LoadFile(path string) (File, error) {
	var f File
	b, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(b, &f); err != nil {
		return f, fmt.Errorf("sweep: parsing %s: %w", path, err)
	}
	if f.SchemaVersion != SchemaVersion {
		return File{}, fmt.Errorf("sweep: %s has schema version %d, want %d (stale store)",
			path, f.SchemaVersion, SchemaVersion)
	}
	return f, nil
}

// Store is a directory of per-group result files, addressed by
// (group, name, fingerprint). It is safe for concurrent use.
type Store struct {
	dir string

	mu     sync.Mutex
	groups map[string]*File
	dirty  map[string]bool
}

// Open opens (creating if needed) a result store rooted at dir. Existing
// group files load lazily on first access; files with a stale schema
// version are treated as empty and overwritten on the next Flush.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir, groups: map[string]*File{}, dirty: map[string]bool{}}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// group loads (or initializes) one group's file. Caller holds s.mu.
func (s *Store) group(name string) *File {
	if f, ok := s.groups[name]; ok {
		return f
	}
	f := &File{SchemaVersion: SchemaVersion, Group: name}
	loaded, err := LoadFile(filepath.Join(s.dir, FileName(name)))
	if err == nil {
		*f = loaded
	} else if !errors.Is(err, fs.ErrNotExist) {
		// Unreadable or stale-schema file: start empty; the next Flush
		// rewrites it under the current schema.
		s.dirty[name] = true
	}
	s.groups[name] = f
	return f
}

// Lookup returns the stored record for (group, name) when its fingerprint
// still matches — the content-addressed hit that lets a re-run skip an
// already-measured point. A record whose fingerprint differs is a miss: the
// configuration changed, so the stored number no longer describes it.
func (s *Store) Lookup(group, name, fingerprint string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.group(group).Records {
		if r.Name == name {
			if r.Fingerprint == fingerprint {
				return r, true
			}
			return Record{}, false
		}
	}
	return Record{}, false
}

// Put inserts or replaces the record named rec.Name in the group.
func (s *Store) Put(group string, rec Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.group(group)
	s.dirty[group] = true
	for i, r := range f.Records {
		if r.Name == rec.Name {
			f.Records[i] = rec
			return
		}
	}
	f.Records = append(f.Records, rec)
}

// Records returns a copy of the group's records in store order.
func (s *Store) Records(group string) []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Record(nil), s.group(group).Records...)
}

// Flush writes every modified group file. Output is deterministic: groups
// write in sorted order, records in store (submission) order, and no
// timestamps or host metadata are recorded.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var names []string
	for g := range s.dirty {
		if s.dirty[g] {
			names = append(names, g)
		}
	}
	sort.Strings(names)
	for _, g := range names {
		if err := writeFileLocked(filepath.Join(s.dir, FileName(g)), s.groups[g]); err != nil {
			return err
		}
		s.dirty[g] = false
	}
	return nil
}

// WriteFile writes one store file (used for combined baseline files that
// aggregate several groups' records under a single name).
func WriteFile(path string, f File) error {
	f.SchemaVersion = SchemaVersion
	return writeFileLocked(path, &f)
}

func writeFileLocked(path string, f *File) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("sweep: writing %s: %w", path, err)
	}
	return nil
}
