package chaos

import (
	"fmt"

	"skipit/internal/l2"
	"skipit/internal/metrics"
	"skipit/internal/sim"
	"skipit/internal/tilelink"
)

// FlipRecord logs the outcome of one bit-flip fault, so callers can tell
// recovered upsets apart from injections the cache refused (line absent or
// mid-transaction) and from unrecoverable dirty-line hits.
type FlipRecord struct {
	Fault   Fault  `json:"fault"`
	Outcome string `json:"outcome"`
}

// Runner drives one armed system: it applies scheduled faults as the clock
// reaches them and steps the SoC under the watchdog and invariant checker.
type Runner struct {
	s     *sim.System
	sched Schedule
	next  int // first fault not yet counted/applied
	flips []FlipRecord

	ctrInjected *metrics.Counter
}

// Arm installs the schedule's fault hooks on a freshly built system and
// returns the Runner that will apply it. The schedule must be normalized
// (sorted by cycle; Generate's output always is). Sites with no faults keep a
// nil hook, preserving the zero-overhead fast path; Arm with an empty
// schedule installs nothing at all.
//
// Arm must be called before the first step that should see a fault; hooks are
// pure functions of the cycle number, so replaying the same schedule on the
// same programs is bit-identical.
func Arm(s *sim.System, sched Schedule) *Runner {
	r := &Runner{
		s:           s,
		sched:       sched,
		ctrInjected: s.Metrics().Counter("chaos", "faults_injected"), //skipit:ignore metricname shared SoC-wide chaos counter, pre-registered by sim.New
	}
	// Split window faults per site.
	type linkKey struct{ core, ch int }
	linkFaults := map[linkKey][]Fault{}
	l1Faults := map[int][]Fault{}
	fshrFaults := map[int][]Fault{}
	var l2Faults []Fault
	for _, f := range sched.Faults {
		switch f.Kind {
		case LinkDelay, LinkStall, LinkRefuse:
			k := linkKey{f.Core, f.Channel}
			linkFaults[k] = append(linkFaults[k], f)
		case L1Nack, L1MSHRSqueeze:
			l1Faults[f.Core] = append(l1Faults[f.Core], f)
		case FSHRSqueeze:
			fshrFaults[f.Core] = append(fshrFaults[f.Core], f)
		case L2MSHRSqueeze, L2ListBufferSqueeze:
			l2Faults = append(l2Faults, f)
		case L1BitFlip, L2BitFlip:
			// Push faults are applied by advance(), not hooks.
		default:
			panic(fmt.Sprintf("chaos: unknown fault kind %q", f.Kind))
		}
	}
	ports := s.Ports()
	for k, fs := range linkFaults {
		if k.core < 0 || k.core >= len(ports) {
			continue
		}
		channelOf(ports[k.core], k.ch).SetChaos(&linkHook{faults: fs})
	}
	for c, fs := range l1Faults {
		if c < 0 || c >= len(s.L1s) {
			continue
		}
		s.L1s[c].SetChaos(&l1Hook{faults: fs})
	}
	for c, fs := range fshrFaults {
		if c < 0 || c >= len(s.L1s) {
			continue
		}
		s.L1s[c].FlushUnit().SetChaos(&fshrHook{faults: fs})
	}
	if len(l2Faults) > 0 {
		s.L2.SetChaos(&l2Hook{faults: l2Faults})
	}
	return r
}

// ArmPorts installs the schedule's link and L2 hooks on a bare port/L2
// fabric — a harness (like tlctest) that drives the L2's TileLink ports
// directly, with no cores or L1s in the loop. Fault kinds addressing L1 or
// flush-unit sites are silently ignored; the Fault.Core field selects the
// client port for link kinds. The same purity rules as Arm apply, so replays
// are bit-identical.
func ArmPorts(ports []*tilelink.ClientPort, cache *l2.Cache, sched Schedule) {
	type linkKey struct{ core, ch int }
	linkFaults := map[linkKey][]Fault{}
	var l2Faults []Fault
	for _, f := range sched.Faults {
		switch f.Kind {
		case LinkDelay, LinkStall, LinkRefuse:
			linkFaults[linkKey{f.Core, f.Channel}] = append(linkFaults[linkKey{f.Core, f.Channel}], f)
		case L2MSHRSqueeze, L2ListBufferSqueeze:
			l2Faults = append(l2Faults, f)
		}
	}
	for k, fs := range linkFaults {
		if k.core < 0 || k.core >= len(ports) {
			continue
		}
		channelOf(ports[k.core], k.ch).SetChaos(&linkHook{faults: fs})
	}
	if len(l2Faults) > 0 {
		cache.SetChaos(&l2Hook{faults: l2Faults})
	}
}

func channelOf(p *tilelink.ClientPort, ch int) *tilelink.Link {
	switch ch {
	case 0:
		return p.A
	case 1:
		return p.B
	case 2:
		return p.C
	case 3:
		return p.D
	case 4:
		return p.E
	}
	panic(fmt.Sprintf("chaos: channel index %d out of range", ch))
}

// advance applies every fault whose cycle has arrived: push faults (bit
// flips) fire here, window faults are counted once as their window opens (the
// hooks themselves stay pure).
func (r *Runner) advance(now int64) {
	for r.next < len(r.sched.Faults) && r.sched.Faults[r.next].Cycle <= now {
		f := r.sched.Faults[r.next]
		r.next++
		r.ctrInjected.Inc()
		switch f.Kind {
		case L1BitFlip:
			if f.Core >= 0 && f.Core < len(r.s.L1s) {
				out := r.s.L1s[f.Core].InjectBitFlip(f.Addr, f.Bit)
				r.flips = append(r.flips, FlipRecord{Fault: f, Outcome: out.String()})
			}
		case L2BitFlip:
			out := r.s.L2.InjectBitFlip(f.Addr, f.Bit)
			r.flips = append(r.flips, FlipRecord{Fault: f, Outcome: out.String()})
		}
	}
}

// StepChecked applies due faults, advances one cycle under the watchdog and
// panic guard, then verifies the cross-layer invariants. The first error wins.
// After a clean step it lets the fast-forward clock skip a provably idle
// window, clamped to the next scheduled fault's cycle: push faults must fire
// exactly at their scheduled cycle, and a window fault's opening must be
// observed (counted) there too. Invariants need no re-check across a skipped
// window — by construction nothing changes state in it.
//
// Callers with their own cycle bounds pass them as limits so a verdict's
// cycle number (e.g. a timeout's) is the same with fast-forwarding on or
// off: the clock never lands past a limit it would have single-stepped to.
func (r *Runner) StepChecked(limits ...int64) error {
	r.advance(r.s.Now())
	if r.s.Parallel() > 0 {
		// Windowed stepping: the horizon is clamped to the next scheduled
		// fault's cycle, so push faults land between windows exactly as they
		// land between serial steps (window hooks are pure functions of the
		// cycle and fire mid-window on their own). Invariants are verified at
		// barriers instead of every tick; a violation is still caught at the
		// first barrier after it arises, with the same verdict on every
		// worker count.
		if r.next < len(r.sched.Faults) {
			limits = append(limits, r.sched.Faults[r.next].Cycle)
		}
		if err := r.s.AdvanceWindowChecked(limits...); err != nil {
			return err
		}
		return r.s.CheckInvariants()
	}
	if err := r.s.StepGuarded(); err != nil {
		return err
	}
	if err := r.s.CheckInvariants(); err != nil {
		return err
	}
	// Terminal state: every core done and the memory system quiescent. The
	// driving loop is about to break; skipping ahead (e.g. to the watchdog's
	// trip cycle) would only distort the final cycle count.
	done := true
	for _, c := range r.s.Cores {
		if !c.Done() {
			done = false
			break
		}
	}
	if done && r.s.Quiescent() {
		return nil
	}
	if r.next < len(r.sched.Faults) {
		limits = append(limits, r.sched.Faults[r.next].Cycle)
	}
	r.s.FastForward(limits...)
	return nil
}

// Flips returns the outcome log of all bit-flip faults applied so far.
func (r *Runner) Flips() []FlipRecord { return r.flips }

// System returns the armed system.
func (r *Runner) System() *sim.System { return r.s }

// linkHook implements tilelink.Chaos over this channel's window faults.
// Methods are pure functions of now, so Peek and Recv within a cycle agree
// and replays are exact.
type linkHook struct{ faults []Fault }

func (h *linkHook) SendFault(now int64) (extra int64, refuse bool) {
	for i := range h.faults {
		f := &h.faults[i]
		if !f.activeAt(now) {
			continue
		}
		switch f.Kind {
		case LinkDelay:
			extra += f.Extra
		case LinkRefuse:
			return 0, true
		}
	}
	return extra, false
}

func (h *linkHook) RecvStall(now int64) bool {
	for i := range h.faults {
		f := &h.faults[i]
		if f.Kind == LinkStall && f.activeAt(now) {
			return true
		}
	}
	return false
}

// minQuota folds the active squeeze windows of the given kind into a single
// quota: the tightest one wins; -1 means unconstrained.
func minQuota(faults []Fault, kind Kind, now int64) int {
	q := -1
	for i := range faults {
		f := &faults[i]
		if f.Kind != kind || !f.activeAt(now) {
			continue
		}
		if q < 0 || f.Quota < q {
			q = f.Quota
		}
	}
	return q
}

// l1Hook implements l1.Chaos.
type l1Hook struct{ faults []Fault }

func (h *l1Hook) ForceNack(now int64) bool {
	for i := range h.faults {
		f := &h.faults[i]
		if f.Kind == L1Nack && f.activeAt(now) {
			return true
		}
	}
	return false
}

func (h *l1Hook) MSHRQuota(now int64) int { return minQuota(h.faults, L1MSHRSqueeze, now) }

// fshrHook implements core.Chaos.
type fshrHook struct{ faults []Fault }

func (h *fshrHook) FSHRQuota(now int64) int { return minQuota(h.faults, FSHRSqueeze, now) }

// l2Hook implements l2.Chaos.
type l2Hook struct{ faults []Fault }

func (h *l2Hook) MSHRQuota(now int64) int { return minQuota(h.faults, L2MSHRSqueeze, now) }

func (h *l2Hook) ListBufferQuota(now int64) int { return minQuota(h.faults, L2ListBufferSqueeze, now) }
