package sim

// Parallel stepping for the core-less Fabric harness (see parallel.go for
// the System version and the full horizon/ordering argument). The fabric
// partitions into exactly two shards: every attached client (plus the client
// side of its port) in one, the L2 and the DRAM controller (plus the manager
// sides) in the other. The TileLink links are again the sole cross-shard
// channels, so the same conservative horizon — min NextEvent fold plus
// 1 + LinkLatency — makes every windowed tick observe exactly the state it
// would have observed under serial stepping, for any worker count.
//
// The episode driver (tlctest.RunScript) owns the loop; the fabric exposes
// the windowed advance plus the exit reconstruction. Serial RunScript has a
// quirk the reconstruction must reproduce: it fast-forwards after every
// step without re-checking quiescence, so once the episode drains the clock
// jumps to min(watchdog-trip - 1, cycle limit) before the loop's exit check
// sees the drained state. FinishParallel lands the clock on that same cycle.

import (
	"fmt"

	"skipit/internal/linepool"
	"skipit/internal/pdes"
	"skipit/internal/tilelink"
)

// fabClientShard runs every attached FabricClient and the client sides of
// all ports.
//
//skipit:shard-owned client
type fabClientShard struct {
	fab     *Fabric
	views   []clientSide
	ticking int64

	skipped uint64

	wdArmed      bool
	wdSig        uint64
	wdLastChange int64
}

func (sh *fabClientShard) next(last int64) int64 {
	n := foldNextAll(last, tilelink.NoEvent, sh.fab.clients)
	n = foldNextAll(last, n, sh.views)
	return n
}

// NextEvent implements pdes.Shard; called single-threaded at barriers.
func (sh *fabClientShard) NextEvent(last int64) int64 { return sh.next(last) }

func (sh *fabClientShard) tick(now int64) {
	sh.ticking = now
	for _, c := range sh.fab.clients {
		c.Tick(now)
	}
	if sh.wdArmed {
		var sig uint64
		for _, v := range sh.views {
			sig += v.p.ClientEvents()
		}
		if sig != sh.wdSig {
			sh.wdSig = sig
			sh.wdLastChange = now + 1
		}
	}
}

// RunWindow implements pdes.Shard.
//
//skipit:hotpath
//skipit:shard-step client
func (sh *fabClientShard) RunWindow(from, to int64) {
	ff := sh.fab.fastForward
	for now := from; now < to; {
		if next := sh.next(now - 1); next > now {
			if ff {
				if next > to {
					next = to
				}
				sh.skipped += uint64(next - now)
				now = next
				continue
			}
			sh.tick(now)
			now++
			continue
		}
		sh.tick(now)
		now++
	}
}

// fabHubShard runs the L2 and the DRAM controller plus the manager sides.
//
//skipit:shard-owned hub
type fabHubShard struct {
	fab     *Fabric
	ports   []managerSide
	ticking int64

	skipped uint64

	wdArmed      bool
	wdSig        uint64
	wdLastChange int64
}

func (sh *fabHubShard) next(last int64) int64 {
	n := foldNext(last, tilelink.NoEvent, sh.fab.Mem)
	n = foldNext(last, n, sh.fab.L2)
	n = foldNextAll(last, n, sh.ports)
	return n
}

// NextEvent implements pdes.Shard; called single-threaded at barriers.
func (sh *fabHubShard) NextEvent(last int64) int64 { return sh.next(last) }

func (sh *fabHubShard) tick(now int64) {
	sh.ticking = now
	sh.fab.Mem.Tick(now)
	sh.fab.L2.Tick(now)
	if sh.wdArmed {
		var sig uint64
		for _, p := range sh.ports {
			sig += p.p.ManagerEvents()
		}
		if sig != sh.wdSig {
			sh.wdSig = sig
			sh.wdLastChange = now + 1
		}
	}
}

// RunWindow implements pdes.Shard.
//
//skipit:hotpath
//skipit:shard-step hub
func (sh *fabHubShard) RunWindow(from, to int64) {
	ff := sh.fab.fastForward
	for now := from; now < to; {
		if next := sh.next(now - 1); next > now {
			if ff {
				if next > to {
					next = to
				}
				sh.skipped += uint64(next - now)
				now = next
				continue
			}
			sh.tick(now) //skipit:ignore hotalloc mem.Tick queue appends reuse steady-state capacity; journaling is an opt-in debug mode. CI alloc gate enforces zero steady-state allocs
			now++
			continue
		}
		sh.tick(now) //skipit:ignore hotalloc mem.Tick queue appends reuse steady-state capacity; journaling is an opt-in debug mode. CI alloc gate enforces zero steady-state allocs
		now++
	}
}

// fabRuntime hangs off Fabric.par when parallel stepping is enabled.
type fabRuntime struct {
	engine     *pdes.Engine
	clientSh   *fabClientShard
	hubSh      *fabHubShard
	clientPool *linepool.Pool
	hubPool    *linepool.Pool
}

// EnableParallel switches the fabric to windowed parallel stepping; it must
// be called after Attach. clientPool is the line pool the attached clients
// allocate from, hubPool the one the L2 and the controller share — they must
// be distinct (the shards run concurrently) and are rebalanced against each
// other at every barrier.
func (f *Fabric) EnableParallel(workers int, clientPool, hubPool *linepool.Pool) {
	if len(f.clients) == 0 {
		panic("sim: EnableParallel before Attach")
	}
	if clientPool == hubPool {
		panic("sim: parallel fabric needs distinct client and hub line pools")
	}
	hub := &fabHubShard{fab: f, ticking: -1}
	for _, p := range f.Ports {
		hub.ports = append(hub.ports, managerSide{p})
		p.SetDeferred(true)
	}
	cs := &fabClientShard{fab: f, ticking: -1}
	for _, p := range f.Ports {
		cs.views = append(cs.views, clientSide{p})
	}
	f.par = &fabRuntime{
		engine:     pdes.New([]pdes.Shard{hub, cs}, workers, int64(1+f.linkLatency), f.reg),
		clientSh:   cs,
		hubSh:      hub,
		clientPool: clientPool,
		hubPool:    hubPool,
	}
	if f.wdLimit > 0 {
		f.armFabShards()
	}
}

// Parallel returns the engine's worker count, or 0 for a serial fabric.
func (f *Fabric) Parallel() int {
	if f.par == nil {
		return 0
	}
	return f.par.engine.Workers()
}

func (f *Fabric) armFabShards() {
	p := f.par
	var sig uint64
	for _, m := range p.hubSh.ports {
		sig += m.p.ManagerEvents()
	}
	p.hubSh.wdArmed, p.hubSh.wdSig, p.hubSh.wdLastChange = true, sig, f.now
	sig = 0
	for _, v := range p.clientSh.views {
		sig += v.p.ClientEvents()
	}
	p.clientSh.wdArmed, p.clientSh.wdSig, p.clientSh.wdLastChange = true, sig, f.now
}

// fabBarrier publishes the staged link messages in fixed order, rebalances
// the two line pools, drains the shard skip counts and folds the watchdog
// state.
func (f *Fabric) fabBarrier() {
	p := f.par
	for _, port := range f.Ports {
		port.CommitDeferred()
	}
	if sk := p.hubSh.skipped + p.clientSh.skipped; sk != 0 {
		f.ctrSkipped.Add(sk)
		p.hubSh.skipped, p.clientSh.skipped = 0, 0
	}
	if n := p.clientPool.Free(); n > poolHi {
		linepool.Transfer(p.hubPool, p.clientPool, n-poolLo)
	} else if n < poolLo {
		linepool.Transfer(p.clientPool, p.hubPool, poolLo-n)
	}
	if f.wdLimit > 0 {
		last := f.wdLastChange
		if p.hubSh.wdLastChange > last {
			last = p.hubSh.wdLastChange
		}
		if p.clientSh.wdLastChange > last {
			last = p.clientSh.wdLastChange
		}
		f.wdLastChange, f.wdLastSig = last, p.hubSh.wdSig+p.clientSh.wdSig
	}
}

// fabHorizon is the next window's exclusive end: the engine's conservative
// horizon clamped to the watchdog's trip cycle and the caller's limits,
// floored at now+1.
func (f *Fabric) fabHorizon(limits ...int64) int64 {
	h := f.par.engine.Horizon(f.now - 1)
	if f.wdLimit > 0 {
		if d := f.wdLastChange + f.wdLimit; d < h {
			h = d
		}
	}
	for _, l := range limits {
		if l < h {
			h = l
		}
	}
	if h < f.now+1 {
		h = f.now + 1
	}
	return h
}

// AdvanceWindowChecked advances the fabric by one conservative window under
// the watchdog and panic guard — the windowed analogue of StepGuarded, with
// the horizon clamped to the given limits.
func (f *Fabric) AdvanceWindowChecked(limits ...int64) (err error) {
	if f.par == nil {
		panic("sim: AdvanceWindowChecked needs a parallel fabric (EnableParallel)")
	}
	from := f.now
	defer func() {
		if rec := recover(); rec != nil {
			sp, ok := rec.(*pdes.ShardPanic)
			if !ok {
				panic(rec)
			}
			if sp.Shard == 0 {
				f.now = f.par.hubSh.ticking
			} else {
				f.now = f.par.clientSh.ticking
			}
			rep := f.buildHangReport("panic")
			rep.Panic = fmt.Sprint(sp.Val)
			rep.Stack = string(sp.Stack)
			err = &HangError{Report: rep}
		}
	}()
	h := f.fabHorizon(limits...)
	f.par.engine.Session(func(window func(from, to int64)) {
		window(from, h)
	})
	f.now = h
	f.fabBarrier()
	if f.wdLimit > 0 && f.now-f.wdLastChange >= f.wdLimit {
		f.ctrWatchdogTrips.Inc()
		rep := f.buildHangReport("no-progress")
		rep.Window = f.now - f.wdLastChange
		return &HangError{Report: rep}
	}
	return nil
}

// FinishParallel reproduces serial RunScript's exit landing on a drained
// fabric: the serial loop fast-forwards after the draining step without
// re-checking quiescence, so the clock jumps to the watchdog's pre-trip
// cycle (or the cycle limit, whichever is lower) before the exit check runs.
// The skipped-cycle counter absorbs the jump, exactly as serial's does.
func (f *Fabric) FinishParallel(limit int64) {
	if f.par == nil {
		return
	}
	final := limit
	if f.wdLimit > 0 {
		if d := f.wdLastChange + f.wdLimit - 1; d < final {
			final = d
		}
	}
	if final > f.now {
		f.ctrSkipped.Add(uint64(final - f.now))
		f.now = final
	}
}
