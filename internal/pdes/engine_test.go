package pdes

import (
	"fmt"
	"sync/atomic"
	"testing"

	"skipit/internal/metrics"
	"skipit/internal/tilelink"
)

// recShard records every window it is asked to run and advances a scripted
// event queue for the horizon fold.
type recShard struct {
	id      int
	events  []int64 // scripted NextEvent answers, consumed as last passes them
	windows []string
	ticked  atomic.Int64 // cycles covered, written inside RunWindow
}

func (s *recShard) RunWindow(from, to int64) {
	s.windows = append(s.windows, fmt.Sprintf("[%d,%d)", from, to))
	s.ticked.Add(to - from)
}

func (s *recShard) NextEvent(last int64) int64 {
	for _, t := range s.events {
		if t > last {
			return t
		}
	}
	return tilelink.NoEvent
}

func newShards(n int, events ...[]int64) []*recShard {
	out := make([]*recShard, n)
	for i := range out {
		out[i] = &recShard{id: i}
		if i < len(events) {
			out[i].events = events[i]
		}
	}
	return out
}

func asShards(rs []*recShard) []Shard {
	out := make([]Shard, len(rs))
	for i, r := range rs {
		out[i] = r
	}
	return out
}

func TestWorkersClamped(t *testing.T) {
	shards := asShards(newShards(3))
	for _, tc := range []struct{ req, want int }{
		{0, 1}, {-2, 1}, {1, 1}, {2, 2}, {3, 3}, {8, 3},
	} {
		if got := New(shards, tc.req, 1, nil).Workers(); got != tc.want {
			t.Errorf("workers=%d: resolved %d, want %d", tc.req, got, tc.want)
		}
	}
}

func TestHorizonFold(t *testing.T) {
	// Shard events at 10 and 7; lookahead 3 -> horizon min(10,7)+3 = 10.
	rs := newShards(2, []int64{10, 50}, []int64{7})
	e := New(asShards(rs), 2, 3, nil)
	if got := e.Horizon(0); got != 10 {
		t.Fatalf("Horizon(0) = %d, want 10", got)
	}
	// Past the early events the fold moves to the next one.
	if got := e.Horizon(20); got != 53 {
		t.Fatalf("Horizon(20) = %d, want 53", got)
	}
	// Fully idle shards report no event at all.
	if got := e.Horizon(60); got != tilelink.NoEvent {
		t.Fatalf("Horizon(60) = %d, want NoEvent", got)
	}
}

// TestSessionWindows drives identical window sequences at every worker count
// and checks each shard saw exactly that sequence, in order, with full cycle
// coverage — the determinism contract the sim layer builds on.
func TestSessionWindows(t *testing.T) {
	bounds := [][2]int64{{0, 10}, {10, 11}, {11, 40}, {40, 100}}
	want := make([]string, len(bounds))
	for i, b := range bounds {
		want[i] = fmt.Sprintf("[%d,%d)", b[0], b[1])
	}
	for _, workers := range []int{1, 2, 4, 8} {
		rs := newShards(5)
		e := New(asShards(rs), workers, 1, nil)
		e.Session(func(window func(from, to int64)) {
			for _, b := range bounds {
				window(b[0], b[1])
			}
		})
		for _, s := range rs {
			if got := fmt.Sprint(s.windows); got != fmt.Sprint(want) {
				t.Fatalf("workers=%d shard %d ran %v, want %v", workers, s.id, s.windows, want)
			}
			if s.ticked.Load() != 100 {
				t.Fatalf("workers=%d shard %d covered %d cycles, want 100", workers, s.id, s.ticked.Load())
			}
		}
		if got := e.Windows(); got != uint64(len(bounds)) {
			t.Fatalf("workers=%d: %d windows counted, want %d", workers, got, len(bounds))
		}
	}
}

// TestSessionLeavesNoGoroutines proves serial stepping is safe between
// sessions: a second Session on the same engine works, and windows run
// during it are seen by all shards.
func TestSessionReentry(t *testing.T) {
	rs := newShards(4)
	e := New(asShards(rs), 4, 1, nil)
	for i := int64(0); i < 3; i++ {
		e.Session(func(window func(from, to int64)) {
			window(i*10, i*10+10)
		})
	}
	for _, s := range rs {
		if s.ticked.Load() != 30 {
			t.Fatalf("shard %d covered %d cycles across sessions, want 30", s.id, s.ticked.Load())
		}
	}
}

// panicShard panics at a scripted window start.
type panicShard struct {
	recShard
	at int64
}

func (s *panicShard) RunWindow(from, to int64) {
	if from >= s.at {
		panic(fmt.Sprintf("shard %d boom at %d", s.id, from))
	}
	s.recShard.RunWindow(from, to)
}

// TestShardPanicLowestWins injects panics in two shards in the same window:
// the coordinator must re-panic with a *ShardPanic for the lowest shard
// index, at every worker count.
func TestShardPanicLowestWins(t *testing.T) {
	for _, workers := range []int{1, 2, 3} {
		shards := []Shard{
			&recShard{id: 0},
			&panicShard{recShard: recShard{id: 1}, at: 5},
			&panicShard{recShard: recShard{id: 2}, at: 5},
		}
		e := New(shards, workers, 1, metrics.NewRegistry())
		var got *ShardPanic
		func() {
			defer func() {
				r := recover()
				sp, ok := r.(*ShardPanic)
				if !ok {
					t.Fatalf("workers=%d: recovered %v, want *ShardPanic", workers, r)
				}
				got = sp
			}()
			e.Session(func(window func(from, to int64)) {
				window(0, 5)
				window(5, 10)
				t.Fatalf("workers=%d: window after panic ran", workers)
			})
		}()
		if got.Shard != 1 {
			t.Fatalf("workers=%d: panic from shard %d, want shard 1 (lowest wins)", workers, got.Shard)
		}
		if got.Val != "shard 1 boom at 5" {
			t.Fatalf("workers=%d: panic value %v", workers, got.Val)
		}
		if len(got.Stack) == 0 {
			t.Fatalf("workers=%d: panic carried no stack", workers)
		}
	}
}

func TestNewValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("no shards", func() { New(nil, 1, 1, nil) })
	mustPanic("zero lookahead", func() { New(asShards(newShards(1)), 1, 0, nil) })
}
