package hotalloc_test

import (
	"testing"

	"skipit/internal/analysis/antest"
	"skipit/internal/analysis/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	antest.Run(t, hotalloc.Analyzer, antest.Dir(t, "internal/linepool"))
}

// TestHotAllocCrossPackage proves Allocates facts survive the cross-package
// export/import round trip: the buf fixture exports them (reporting nothing
// itself), and the engine fixture's hotpath calls report with the full
// witness chain reconstructed from the imported facts.
func TestHotAllocCrossPackage(t *testing.T) {
	antest.Run(t, hotalloc.Analyzer,
		antest.Dir(t, "hotcross/buf"),
		antest.Dir(t, "hotcross/engine"))
}
