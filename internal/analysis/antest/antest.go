// Package antest is a minimal analysistest replacement for the skipit-vet
// analyzers (x/tools' analysistest is not vendored; see
// third_party/golang.org/x/tools/README.md).
//
// Fixture packages live under internal/analysis/testdata/src/... as ordinary
// compilable packages — testdata directories are invisible to `./...`
// patterns, so `go build ./...`, `go test ./...` and skipit-vet itself never
// see the intentional violations, while antest loads them by explicit
// directory path. Expectations use analysistest's comment syntax:
//
//	time.Now() // want `wall-clock`
//
// Each `// want` comment carries one or more quoted or backquoted regular
// expressions; every diagnostic on that line must match one of them, and
// every expectation must be matched by exactly one diagnostic.
package antest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
	"skipit/internal/analysis/driver"
)

// Dir returns the path of the shared fixture tree,
// internal/analysis/testdata/src, joined with elem.
func Dir(t *testing.T, elem string) string {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("antest: cannot locate source tree")
	}
	return filepath.Join(filepath.Dir(self), "..", "testdata", "src", elem)
}

// Run loads the fixture packages rooted at dirs (paths relative to the
// repository or absolute), runs the analyzer over them, and checks the
// diagnostics against the fixtures' want comments.
func Run(t *testing.T, a *analysis.Analyzer, dirs ...string) {
	t.Helper()
	l := &driver.Loader{}
	pkgs, err := l.Load(dirs...)
	if err != nil {
		t.Fatalf("antest: load %v: %v", dirs, err)
	}
	diags, err := driver.Run(pkgs, l.Fset, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("antest: run %s: %v", a.Name, err)
	}

	// Only the named fixture packages carry expectations; dependencies (for
	// example the real linepool or metrics packages) are analyzed for facts
	// but must stay diagnostic-free in fixtures.
	wants := make(map[string][]*want) // file:line -> expectations
	fixtureFiles := make(map[string]bool)
	for _, p := range pkgs {
		if !p.Listed {
			continue
		}
		for i, f := range p.GoFiles {
			fixtureFiles[f] = true
			collectWants(t, l.Fset, p, i, wants)
		}
	}

	var failed bool
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Posn.Filename, d.Posn.Line)
		if !fixtureFiles[d.Posn.Filename] {
			t.Errorf("unexpected diagnostic outside fixture: %s: %s (%s)", d.Posn, d.Message, d.Analyzer)
			failed = true
			continue
		}
		if !consume(wants[key], d.Message) {
			t.Errorf("unexpected diagnostic: %s: %s (%s)", d.Posn, d.Message, d.Analyzer)
			failed = true
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re.String())
				failed = true
			}
		}
	}
	if failed {
		t.Logf("all diagnostics from %s:", a.Name)
		for _, d := range diags {
			t.Logf("  %s: %s", d.Posn, d.Message)
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// consume marks the first unmatched expectation matching msg.
func consume(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses `// want` comments out of the i-th file of p.
func collectWants(t *testing.T, fset *token.FileSet, p *driver.Package, i int, wants map[string][]*want) {
	t.Helper()
	file := p.Files[i]
	name := p.GoFiles[i]
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			// Both comment forms carry expectations; the block form exists
			// for lines whose // position is already taken (for example a
			// line holding a skipit:ignore directive, which would swallow a
			// trailing // want as its reason).
			text := c.Text
			if strings.HasPrefix(text, "//") {
				text = strings.TrimPrefix(text, "//")
			} else {
				text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
			}
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, "want ")
			if !ok {
				continue
			}
			line := fset.Position(c.Pos()).Line
			key := fmt.Sprintf("%s:%d", name, line)
			for _, pat := range splitPatterns(t, name, line, rest) {
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", name, line, pat, err)
				}
				wants[key] = append(wants[key], &want{re: re})
			}
		}
	}
}

// splitPatterns parses a want payload: a sequence of "double-quoted" or
// `backquoted` strings.
func splitPatterns(t *testing.T, file string, line int, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				t.Fatalf("%s:%d: unterminated want pattern: %s", file, line, s)
			}
			pat, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %s: %v", file, line, s[:end+1], err)
			}
			out = append(out, pat)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want pattern: %s", file, line, s)
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			t.Fatalf("%s:%d: want patterns must be quoted or backquoted: %s", file, line, s)
		}
	}
	return out
}
