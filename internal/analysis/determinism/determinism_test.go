package determinism_test

import (
	"testing"

	"skipit/internal/analysis/antest"
	"skipit/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	antest.Run(t, determinism.Analyzer, antest.Dir(t, "internal/sim"))
}
