package l1

import (
	"skipit/internal/tilelink"
	"skipit/internal/trace"
)

// Chaos is the fault-injection hook the data cache consults when armed. Both
// methods must be pure functions of the current cycle and the injector's
// schedule, so replays are bit-identical. A nil hook (the default) costs one
// pointer compare on the request path.
type Chaos interface {
	// ForceNack reports whether the request being processed at cycle now
	// must be nacked regardless of cache state. Forced nacks are counted
	// under their own attribution cause (nack_chaos) and are retried by
	// the LSU like any structural nack.
	ForceNack(now int64) bool
	// MSHRQuota returns the number of MSHRs usable at cycle now; negative
	// means unlimited. A squeeze below current occupancy does not cancel
	// in-flight misses, it only blocks new allocations.
	MSHRQuota(now int64) int
}

// SetChaos installs (or, with nil, removes) the fault-injection hook.
func (d *DCache) SetChaos(c Chaos) { d.chaos = c }

// FlipOutcome classifies an attempted ECC-style bit flip.
type FlipOutcome uint8

const (
	// FlipMiss: the target line is not resident; nothing to corrupt.
	FlipMiss FlipOutcome = iota
	// FlipBlocked: the line is mid-transaction (active MSHR or flush-unit
	// bookkeeping); the model only corrupts stable resident lines.
	FlipBlocked
	// FlipDirtyUnrecoverable: the line is dirty — the only copy of the
	// data in the system. A flip here cannot be healed by refetch, so it
	// is flagged and NOT applied; silently healing it would hide real
	// data loss.
	FlipDirtyUnrecoverable
	// FlipApplied: the clean line was corrupted and marked poisoned; the
	// next access detects it and recovers through the ordinary miss path.
	FlipApplied
)

func (o FlipOutcome) String() string {
	return [...]string{"miss", "blocked", "dirty-unrecoverable", "applied"}[o]
}

// InjectBitFlip models a transient ECC-scale upset on the line holding addr:
// bit (modulo the line size in bits) is inverted in the data array. Only
// clean, transaction-free lines are corrupted — a clean line is by definition
// backed by an intact copy below, so detection at the next access invalidates
// the line and the refetch restores correct data. Dirty lines hold the sole
// copy; a flip there is reported as unrecoverable and not applied.
func (d *DCache) InjectBitFlip(addr uint64, bit uint64) FlipOutcome {
	lineAddr := d.lineAddr(addr)
	m := d.lookup(lineAddr)
	if m == nil {
		return FlipMiss
	}
	if m.dirty {
		d.ctr.eccDirtyUnrec.Inc()
		return FlipDirtyUnrecoverable
	}
	if d.mshrFor(lineAddr) != nil || d.flush.ActiveOn(lineAddr) {
		return FlipBlocked
	}
	set := d.index(lineAddr)
	way := d.findWay(lineAddr, true)
	bit %= d.cfg.LineBytes * 8
	d.data[set][way][bit/8] ^= 1 << (bit % 8)
	if d.poisoned == nil {
		d.poisoned = make(map[uint64]struct{})
	}
	d.poisoned[lineAddr] = struct{}{}
	d.ctr.eccFlips.Inc()
	return FlipApplied
}

// eccScrub is the check-on-access half of the ECC model: a request touching a
// poisoned line detects the corruption, invalidates the line (clearing dirty
// and skip — the line is clean by construction) and lets the request fall
// through to the ordinary miss path, which refetches the intact copy from the
// L2. Called only while the poison set is non-empty.
func (d *DCache) eccScrub(now int64, lineAddr uint64) {
	if _, bad := d.poisoned[lineAddr]; !bad {
		return
	}
	delete(d.poisoned, lineAddr)
	m := d.lookup(lineAddr)
	if m == nil {
		return
	}
	m.valid = false
	m.dirty = false
	m.skip = false
	d.ctr.refetchRecoveries.Inc()
	trace.Emit(d.tr, now, d.name, "ecc-scrub", lineAddr, "poisoned line invalidated; refetching")
}

// clearPoison drops the poison mark when the line's data is wholly replaced
// or the line leaves the cache.
func (d *DCache) clearPoison(lineAddr uint64) {
	if len(d.poisoned) != 0 {
		delete(d.poisoned, lineAddr)
	}
}

// PokeMeta force-writes the metadata bits of a resident line, bypassing the
// coherence protocol. Test-only: it exists so invariant-checker tests can
// seed each violation class on top of an otherwise legal state. Reports
// whether the line was resident.
func (d *DCache) PokeMeta(addr uint64, perm tilelink.Perm, dirty, skip bool) bool {
	m := d.lookup(d.lineAddr(addr))
	if m == nil {
		return false
	}
	m.perm = perm
	m.dirty = dirty
	m.skip = skip
	return true
}

func (s mState) String() string {
	return [...]string{"free", "send_acquire", "wait_grant", "victim", "install", "replay", "grant_ack"}[s]
}

// MSHRDebug is the JSON-friendly view of one MSHR, for hang reports.
type MSHRDebug struct {
	State string `json:"state"`
	Addr  uint64 `json:"addr"`
	RPQ   int    `json:"rpq"`
}

// DCacheDebug snapshots the cache's transactional state for hang reports.
type DCacheDebug struct {
	MSHRs      []MSHRDebug `json:"mshrs"`
	WBState    string      `json:"wb_state"`
	WBAddr     uint64      `json:"wb_addr"`
	ProbeState string      `json:"probe_state"`
	ProbeQueue int         `json:"probe_queue"`
	InQ        int         `json:"in_q"`
	RespQ      int         `json:"resp_q"`
}

// Debug returns the cache's transactional state snapshot.
func (d *DCache) Debug() DCacheDebug {
	dbg := DCacheDebug{
		WBState:    [...]string{"idle", "send_release", "wait_ack"}[d.wb.state],
		WBAddr:     d.wb.addr,
		ProbeState: [...]string{"idle", "inval_flushq", "respond"}[d.probe.state],
		ProbeQueue: len(d.probe.q),
		InQ:        len(d.inQ),
		RespQ:      len(d.respQ),
	}
	for i := range d.mshrs {
		m := &d.mshrs[i]
		if m.state == mFree {
			continue
		}
		dbg.MSHRs = append(dbg.MSHRs, MSHRDebug{State: m.state.String(), Addr: m.addr, RPQ: len(m.rpq)})
	}
	return dbg
}
