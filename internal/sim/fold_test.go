package sim

import (
	"testing"

	"skipit/internal/isa"
	"skipit/internal/tilelink"
)

// fixedEvent is an eventSource that always reports the same cycle.
type fixedEvent int64

func (f fixedEvent) NextEvent(last int64) int64 { return int64(f) }

// countingEvent records how many times it was queried, to prove the fold
// bails out at the floor.
type countingEvent struct {
	at    int64
	calls int
}

func (c *countingEvent) NextEvent(last int64) int64 {
	c.calls++
	return c.at
}

func TestFoldNextAll(t *testing.T) {
	cases := []struct {
		name string
		last int64
		next int64
		srcs []fixedEvent
		want int64
	}{
		{"empty slice keeps seed", 10, tilelink.NoEvent, nil, tilelink.NoEvent},
		{"single later event", 10, tilelink.NoEvent, []fixedEvent{42}, 42},
		{"minimum wins", 10, tilelink.NoEvent, []fixedEvent{42, 20, 99}, 20},
		{"seed below all events wins", 10, 15, []fixedEvent{42, 20}, 15},
		{"event below seed wins", 10, 50, []fixedEvent{42}, 42},
		{"floor report clamps to floor", 10, tilelink.NoEvent, []fixedEvent{11}, 11},
		{"below-floor report clamps to floor", 10, tilelink.NoEvent, []fixedEvent{3}, 11},
		{"seed at floor returns floor", 10, 11, []fixedEvent{99}, 11},
		{"seed below floor clamps up", 10, 5, []fixedEvent{99}, 11},
		{"all idle stays NoEvent", 10, tilelink.NoEvent, []fixedEvent{fixedEvent(tilelink.NoEvent), fixedEvent(tilelink.NoEvent)}, tilelink.NoEvent},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := foldNextAll(tc.last, tc.next, tc.srcs); got != tc.want {
				t.Fatalf("foldNextAll(last=%d, next=%d, %v) = %d, want %d",
					tc.last, tc.next, tc.srcs, got, tc.want)
			}
		})
	}
}

func TestFoldNextSingle(t *testing.T) {
	cases := []struct {
		name string
		last int64
		next int64
		src  fixedEvent
		want int64
	}{
		{"later event lowers", 0, tilelink.NoEvent, 7, 7},
		{"seed wins", 0, 5, 7, 5},
		{"floor clamps", 0, tilelink.NoEvent, 1, 1},
		{"below-floor clamps", 0, tilelink.NoEvent, -3, 1},
		{"seed at floor short-circuits", 0, 1, 99, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := foldNext(tc.last, tc.next, tc.src); got != tc.want {
				t.Fatalf("foldNext(last=%d, next=%d, src=%d) = %d, want %d",
					tc.last, tc.next, tc.src, got, tc.want)
			}
		})
	}
}

func TestFoldBailsAtFloor(t *testing.T) {
	// Once a source reports at or below the floor, the rest of the slice
	// must not be queried, and chained folds must short-circuit.
	early := &countingEvent{at: 11} // floor for last=10
	late := &countingEvent{at: 99}
	got := foldNextAll(10, tilelink.NoEvent, []*countingEvent{early, late})
	if got != 11 {
		t.Fatalf("fold = %d, want floor 11", got)
	}
	if late.calls != 0 {
		t.Fatalf("fold queried a source after reaching the floor (%d calls)", late.calls)
	}
	if foldNext(10, got, late) != 11 || late.calls != 0 {
		t.Fatalf("chained foldNext at floor queried its source")
	}
	if foldNextAll(10, got, []*countingEvent{late}) != 11 || late.calls != 0 {
		t.Fatalf("chained foldNextAll at floor queried its source")
	}
}

// TestFoldMatchesSystem pins the refactored System.nextEventCycle to the
// fold helpers on a live system: the fold of an idle multi-core SoC must
// land strictly beyond now, and a busy one at the floor.
func TestFoldMatchesSystem(t *testing.T) {
	s := New(DefaultConfig(2))
	// Freshly built and empty: nothing can act, so the fold reports NoEvent.
	if got := s.nextEventCycle(s.Now() - 1); got < tilelink.NoEvent {
		t.Fatalf("idle system nextEventCycle = %d, want >= NoEvent", got)
	}
	s.Cores[0].SetProgram(isa.NewBuilder().Load(0x100).Build())
	if got, want := s.nextEventCycle(s.Now()-1), s.Now(); got != want {
		t.Fatalf("busy system nextEventCycle = %d, want floor %d", got, want)
	}
}
