package sim

import (
	"encoding/json"
	"fmt"
	"runtime/debug"

	"skipit/internal/boom"
	"skipit/internal/core"
	"skipit/internal/l1"
	"skipit/internal/l2"
	"skipit/internal/tilelink"
	"skipit/internal/trace"
)

// HangReport is the structured diagnosis emitted when the forward-progress
// watchdog trips or a panic escapes a simulator component: a snapshot of
// every unit's transactional state, JSON-serializable for repro artifacts.
type HangReport struct {
	Cycle  int64  `json:"cycle"`
	Reason string `json:"reason"` // "no-progress" | "panic"
	// Window is the number of cycles without progress (no-progress trips).
	Window int64 `json:"window,omitempty"`
	// Panic and Stack carry the recovered panic value and its stack trace.
	Panic string `json:"panic,omitempty"`
	Stack string `json:"stack,omitempty"`

	Cores []boom.CoreDebug       `json:"cores"`
	L1s   []l1.DCacheDebug       `json:"l1s"`
	Flush []core.FlushDebug      `json:"flush"`
	L2    l2.CacheDebug          `json:"l2"`
	Links [][]tilelink.LinkDebug `json:"links"` // per client, channels A..E
	// MemOutstanding counts accepted-but-incomplete DRAM requests plus
	// undelivered responses.
	MemOutstanding int `json:"mem_outstanding"`

	// FlightRecorder is the dump of the per-component event rings, present
	// when the system had a flight recorder armed (EnableFlightRecorder):
	// the last N structured events each component saw before the hang.
	FlightRecorder []trace.RecDump `json:"flight_recorder,omitempty"`
}

// JSON renders the report, indented for human eyes.
func (r *HangReport) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		// Every field is a plain value; marshalling cannot fail.
		panic(err)
	}
	return b
}

// ParseHangReport decodes a report previously rendered with JSON. This is
// the watchdog's wire export: the sweepd worker ships a mid-job hang
// diagnosis to the coordinator as the report's JSON bytes, and either end
// (or a human with the journal) reconstructs it here. Round-tripping is
// lossless for every field HangReport declares.
func ParseHangReport(b []byte) (*HangReport, error) {
	var r HangReport
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("sim: parsing hang report: %w", err)
	}
	return &r, nil
}

// Summary is the one-line version for error strings and logs.
func (r *HangReport) Summary() string {
	s := fmt.Sprintf("%s at cycle %d", r.Reason, r.Cycle)
	if r.Reason == "no-progress" {
		s += fmt.Sprintf(" (%d idle cycles)", r.Window)
	}
	if r.Panic != "" {
		s += ": " + r.Panic
	}
	return s
}

// HangError wraps a HangReport as an error, returned by StepGuarded.
type HangError struct {
	Report *HangReport
}

func (e *HangError) Error() string { return "sim: " + e.Report.Summary() }

// buildHangReport snapshots the whole SoC.
func (s *System) buildHangReport(reason string) *HangReport {
	r := &HangReport{
		Cycle:          s.now,
		Reason:         reason,
		L2:             s.L2.Debug(),
		MemOutstanding: s.Mem.Outstanding(),
	}
	for _, c := range s.Cores {
		r.Cores = append(r.Cores, c.Debug())
	}
	for _, d := range s.L1s {
		r.L1s = append(r.L1s, d.Debug())
		r.Flush = append(r.Flush, d.FlushUnit().Debug())
	}
	for _, p := range s.ports {
		r.Links = append(r.Links, p.Debug())
	}
	r.FlightRecorder = s.recorder.Dump()
	return r
}

// ArmWatchdog enables the forward-progress watchdog: if no core retires an
// instruction and no TileLink message moves for limit cycles, StepGuarded
// returns a *HangError carrying a full HangReport. Zero disables. The limit
// must comfortably exceed the longest legal stall (DRAM latency plus queue
// drains, hundreds of cycles at the default configuration).
func (s *System) ArmWatchdog(limit int64) {
	s.wdLimit = limit
	s.wdLastSig = s.progressSignature()
	s.wdLastChange = s.now
	if s.par != nil {
		s.armShards()
	}
}

// progressSignature folds the per-core commit counters and per-link activity
// counters into one number that changes whenever anything retires or moves.
// Both counters are monotone, so equality means literal inactivity.
func (s *System) progressSignature() uint64 {
	var sig uint64
	for _, c := range s.Cores {
		sig += c.Committed()
	}
	for _, p := range s.ports {
		sig += p.Events()
	}
	return sig
}

// StepGuarded advances one cycle under the watchdog, converting both
// forward-progress stalls and panics escaping deep simulator paths into a
// structured *HangError. Any other error return is nil.
func (s *System) StepGuarded() (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			rep := s.buildHangReport("panic")
			rep.Panic = fmt.Sprint(rec)
			rep.Stack = string(debug.Stack())
			err = &HangError{Report: rep}
		}
	}()
	s.Step()
	if s.wdLimit <= 0 {
		return nil
	}
	if sig := s.progressSignature(); sig != s.wdLastSig {
		s.wdLastSig = sig
		s.wdLastChange = s.now
		return nil
	}
	if s.now-s.wdLastChange < s.wdLimit {
		return nil
	}
	s.ctrWatchdogTrips.Inc()
	rep := s.buildHangReport("no-progress")
	rep.Window = s.now - s.wdLastChange
	return &HangError{Report: rep}
}
