// Package producer is the upstream half of the metricname cross-package
// fixture: it registers keys that the consumer package then collides with.
package producer

import "skipit/internal/metrics"

// Register claims this package's instrument keys.
func Register(r *metrics.Registry) {
	r.Counter("l2", "acquires")
	r.Gauge("l2", "mshr_occupancy")
}
