package determinism_test

import (
	"testing"

	"skipit/internal/analysis/antest"
	"skipit/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	antest.Run(t, determinism.Analyzer, antest.Dir(t, "internal/sim"))
}

// TestDeterminismParallelScheduler exercises the //skipit:parallel-scheduler
// waiver: in the scheduler package (internal/pdes) a well-formed directive
// silences exactly the goroutine it annotates and nothing else, while in a
// component package (internal/l1) the directive is inert and the goroutine
// stays a finding.
func TestDeterminismParallelScheduler(t *testing.T) {
	antest.Run(t, determinism.Analyzer,
		antest.Dir(t, "pdescheck/internal/pdes"),
		antest.Dir(t, "pdescheck/internal/l1"))
}

// TestDeterminismServiceBoundary proves the -service exclusion wins over
// -pkgs: even with internal/sweepd explicitly added to the simulator list,
// the sweepd fixture — wall clocks, goroutines, logged map ranges, and not
// one want comment — must stay diagnostic-free, while the sim fixture in the
// same run keeps every diagnostic it has under the default flags.
func TestDeterminismServiceBoundary(t *testing.T) {
	f := determinism.Analyzer.Flags.Lookup("pkgs")
	orig := f.Value.String()
	if err := f.Value.Set(orig + ",internal/sweepd"); err != nil {
		t.Fatal(err)
	}
	defer f.Value.Set(orig) //nolint:errcheck
	antest.Run(t, determinism.Analyzer,
		antest.Dir(t, "internal/sweepd"),
		antest.Dir(t, "internal/sim"))
}
