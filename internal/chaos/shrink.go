package chaos

import "skipit/internal/isa"

// ShrinkOpts bounds the shrinking loop.
type ShrinkOpts struct {
	// MaxRuns caps the number of candidate re-executions (each one is a
	// full simulation). Zero means DefaultShrinkRuns.
	MaxRuns int
}

// DefaultShrinkRuns is plenty for the schedule and program sizes the fuzzer
// produces; shrinking converges long before this on typical failures.
const DefaultShrinkRuns = 400

// Shrink greedily minimizes a failing input: first the fault schedule (ddmin
// style — drop halves, then quarters, down to single faults), then each
// core's program (instruction spans, largest first). A candidate is accepted
// iff it still fails with the same FailKind; the run count actually spent is
// returned alongside the minimized input.
//
// Shrinking is deterministic: candidate order is a pure function of the
// input, and every candidate run replays bit-identically.
func Shrink(in Input, want FailKind, opts ShrinkOpts) (Input, int) {
	maxRuns := opts.MaxRuns
	if maxRuns <= 0 {
		maxRuns = DefaultShrinkRuns
	}
	// Work on a private copy of the program list so the caller's input
	// survives untouched.
	in.Progs = append([]*isa.Program(nil), in.Progs...)
	runs := 0
	stillFails := func(cand Input) bool {
		if runs >= maxRuns {
			return false
		}
		runs++
		fail, _ := RunInput(cand)
		return fail != nil && fail.Kind == want
	}

	// Phase 1: minimize the fault schedule.
	in.Schedule.Faults = ShrinkSlice(in.Schedule.Faults, func(faults []Fault) bool {
		cand := in
		cand.Schedule = Schedule{Faults: faults}
		return stillFails(cand)
	})

	// Phase 2: minimize each program in turn.
	for c := range in.Progs {
		if in.Progs[c] == nil {
			continue
		}
		instrs := ShrinkSlice(in.Progs[c].Instrs, func(instrs []isa.Instr) bool {
			cand := in
			progs := make([]*isa.Program, len(in.Progs))
			copy(progs, in.Progs)
			progs[c] = &isa.Program{Instrs: instrs}
			cand.Progs = progs
			return stillFails(cand)
		})
		in.Progs[c] = &isa.Program{Instrs: instrs}
	}
	return in, runs
}

// ShrinkSlice is the ddmin core shared by every repro shrinker (chaos inputs,
// tlctest episodes): it removes ever-smaller spans from items while keep still
// accepts the remainder, until no single-element removal is accepted.
// Deterministic: candidate order is a pure function of the input.
func ShrinkSlice[T any](items []T, keep func([]T) bool) []T {
	span := len(items) / 2
	if span < 1 {
		span = 1
	}
	for {
		removedAny := false
		for start := 0; start < len(items); {
			end := start + span
			if end > len(items) {
				end = len(items)
			}
			cand := make([]T, 0, len(items)-(end-start))
			cand = append(cand, items[:start]...)
			cand = append(cand, items[end:]...)
			if keep(cand) {
				items = cand
				removedAny = true
				// Retry the same start index against the new tail.
			} else {
				start = end
			}
		}
		if span == 1 {
			if !removedAny {
				return items
			}
			continue
		}
		span /= 2
	}
}
