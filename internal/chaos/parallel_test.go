package chaos

import (
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"
)

// failureBytes renders a verdict for byte-level comparison across worker
// counts.
func failureBytes(t *testing.T, fail *Failure, st Stats) []byte {
	t.Helper()
	b, err := json.Marshal(struct {
		Failure *Failure `json:"failure"`
		Stats   Stats    `json:"stats"`
	}{fail, st})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// assertVerdictsMatch compares a serial verdict with a parallel one on the
// fields the bit-identity contract covers across the serial/parallel border:
// kind, cycle, message and every stat. Flight-recorder dumps are compared
// only across worker counts (parallel systems mint transaction ids from
// per-shard strided sequences, so ids differ from serial while staying
// identical for every worker count).
func assertVerdictsMatch(t *testing.T, label string, serial, par *Failure, stSerial, stPar Stats) {
	t.Helper()
	if (serial == nil) != (par == nil) {
		t.Fatalf("%s: verdict presence differs: serial %+v, parallel %+v", label, serial, par)
	}
	if serial != nil {
		if serial.Kind != par.Kind || serial.Cycle != par.Cycle || serial.Message != par.Message {
			t.Fatalf("%s: verdict differs:\nserial:   %s@%d %q\nparallel: %s@%d %q",
				label, serial.Kind, serial.Cycle, serial.Message, par.Kind, par.Cycle, par.Message)
		}
		if (serial.Report == nil) != (par.Report == nil) {
			t.Fatalf("%s: hang report presence differs", label)
		}
		if serial.Report != nil &&
			(serial.Report.Cycle != par.Report.Cycle || serial.Report.Window != par.Report.Window) {
			t.Fatalf("%s: hang report differs: serial %d/%d, parallel %d/%d", label,
				serial.Report.Cycle, serial.Report.Window, par.Report.Cycle, par.Report.Window)
		}
	}
	if !reflect.DeepEqual(stSerial, stPar) {
		t.Fatalf("%s: stats differ:\nserial:   %+v\nparallel: %+v", label, stSerial, stPar)
	}
}

// TestChaosParallelEquivalence runs full fuzzer cases serially and on 1, 2
// and 4 workers. Every parallel verdict must be byte-identical across worker
// counts (including flight-recorder dumps) and must match the serial verdict
// and stats.
func TestChaosParallelEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		in := BuildInput(DefaultCase(seed, 4))
		serialFail, serialSt := runInput(in, true, 0)
		var ref []byte
		for _, workers := range []int{1, 2, 4} {
			fail, st := RunInputParallel(in, workers)
			assertVerdictsMatch(t, "seed", serialFail, fail, serialSt, st)
			b := failureBytes(t, fail, st)
			if ref == nil {
				ref = b
			} else if string(b) != string(ref) {
				t.Fatalf("seed %d: parallel=%d verdict not byte-identical:\n%s\nvs\n%s",
					seed, workers, b, ref)
			}
		}
	}
}

// TestChaosArtifactsReplayParallel replays every committed .chaos.json
// artifact on 1, 2 and 4 workers: each replay must reproduce the recorded
// verdict, and all worker counts must agree byte for byte.
func TestChaosArtifactsReplayParallel(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".chaos.json") {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			data, err := os.ReadFile("testdata/" + e.Name())
			if err != nil {
				t.Fatal(err)
			}
			r, err := DecodeRepro(data)
			if err != nil {
				t.Fatal(err)
			}
			in, err := r.Input()
			if err != nil {
				t.Fatal(err)
			}
			var ref []byte
			for _, workers := range []int{1, 2, 4} {
				fail, st := RunInputParallel(in, workers)
				if fail == nil {
					t.Fatalf("parallel=%d: replay ran clean", workers)
				}
				if fail.Kind != r.Failure.Kind || fail.Cycle != r.Failure.Cycle {
					t.Fatalf("parallel=%d: replay diverged: got %s@%d, recorded %s@%d",
						workers, fail.Kind, fail.Cycle, r.Failure.Kind, r.Failure.Cycle)
				}
				b := failureBytes(t, fail, st)
				if ref == nil {
					ref = b
				} else if string(b) != string(ref) {
					t.Fatalf("parallel=%d verdict not byte-identical across worker counts", workers)
				}
			}
		})
	}
}
