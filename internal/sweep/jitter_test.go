package sweep

import (
	"testing"

	"skipit/internal/detrand"
	"skipit/internal/sim"
)

// jitteredConfig derives a config variant from one child of a split seed
// stream: every knob perturbation draws from its own child, following the
// detrand discipline the chaos fuzzer and the tlctest harness use.
func jitteredConfig(seed int64) sim.Config {
	rng := detrand.New(seed)
	cfg := sim.DefaultConfig(1 + rng.Intn(4))
	knobs := detrand.Split(rng)
	cfg.L1.NumMSHRs = 1 + knobs.Intn(8)
	cfg.L2.NumMSHRs = 1 + knobs.Intn(16)
	cfg.Mem.ReadLatency = 20 + knobs.Intn(100)
	return cfg
}

// TestFingerprintJitterDistinct checks that seed-jittered job configurations
// fingerprint distinctly: a sweep over split seeds can never silently collapse
// two different configurations into one cached result.
func TestFingerprintJitterDistinct(t *testing.T) {
	root := detrand.New(20260808)
	seen := map[string]int64{}
	for i := 0; i < 64; i++ {
		seed := detrand.SplitSeed(root)
		fp := Fingerprint("jitter", jitteredConfig(seed), seed)
		if prev, dup := seen[fp]; dup {
			t.Fatalf("seeds %d and %d produced the same fingerprint %s", prev, seed, fp)
		}
		seen[fp] = seed
	}
}

// TestFingerprintJitterStable checks the other direction: replaying the same
// split chain yields byte-identical fingerprints, so a re-run sweep hits the
// result store instead of recomputing.
func TestFingerprintJitterStable(t *testing.T) {
	run := func() []string {
		root := detrand.New(42)
		var fps []string
		for i := 0; i < 16; i++ {
			seed := detrand.SplitSeed(root)
			fps = append(fps, Fingerprint("jitter", jitteredConfig(seed), seed))
		}
		return fps
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fingerprint %d drifted between identical split chains: %s != %s", i, a[i], b[i])
		}
	}
}
