package sweepd

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"skipit/internal/detrand"
	"skipit/internal/sweep"
)

// CoordConfig configures a Coordinator. The zero value of every field has a
// usable default except Store, which is required.
type CoordConfig struct {
	// Store receives committed results (content-addressed; commits are
	// idempotent). Required.
	Store *sweep.Store
	// JournalPath enables the write-ahead journal; "" runs without crash
	// recovery (tests, throwaway sweeps).
	JournalPath string
	// Seed pins the retry-backoff jitter (detrand.Mix over job id and
	// attempt); the same seed replays the same schedule byte-identically.
	Seed int64
	// LeaseTTL is how long a lease survives without a heartbeat.
	// Default 10s.
	LeaseTTL time.Duration
	// HeartbeatEvery is the interval suggested to workers. Default
	// LeaseTTL/4.
	HeartbeatEvery time.Duration
	// MaxAttempts bounds the retry budget per job. Default 3.
	MaxAttempts int
	// BackoffBase is the first retry delay; attempt k waits
	// BackoffBase<<(k-1) plus jitter in [0, BackoffBase), capped at
	// BackoffMax. Defaults 250ms / 10s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MinWorkers is the degradation floor: when fewer workers are live AND
	// the pending queue exceeds MaxQueue, the lowest-priority pending jobs
	// are shed with FailOverloaded until the queue fits. 0 disables
	// shedding.
	MinWorkers int
	// MaxQueue is the pending ceiling enforced while degraded. Default 0 =
	// shed everything above the floor's capacity... see MinWorkers; only
	// consulted when MinWorkers > 0.
	MaxQueue int
	// Clock supplies wall time; tests inject a fake. Default time.Now.
	// (sweepd is a service package: wall clocks are legitimate here, unlike
	// in the simulator core — see the determinism analyzer's service list.)
	Clock func() time.Time
	// Logf receives operational log lines. Default discards.
	Logf func(format string, args ...any)
	// Events, when non-nil, receives (event, payload) notifications on job
	// state transitions — the hook the introspection server's SSE stream
	// attaches to.
	Events func(event string, payload any)
}

// workerInfo tracks one registered worker's liveness.
type workerInfo struct {
	lastSeen time.Time
}

// jobEntry is the coordinator's per-job state.
type jobEntry struct {
	spec      JobSpec
	state     JobState
	attempt   int // attempts consumed (leases granted)
	worker    string
	leaseID   uint64
	expiry    time.Time // lease deadline while leased
	notBefore time.Time // backoff gate while pending
	progress  string
	record    *sweep.Record
	failure   *Failure
	cached    bool
}

// Coordinator owns the job queue, leases, retry policy, journal, and result
// commits. All methods are safe for concurrent use; the HTTP layer in
// http.go is a thin JSON shim over them.
type Coordinator struct {
	cfg CoordConfig

	mu       sync.Mutex
	jobs     map[string]*jobEntry
	order    []string // submission order, for deterministic leasing
	workers  map[string]*workerInfo
	leaseSeq uint64
	journal  *journal
	closed   bool
}

// NewCoordinator builds a coordinator, replaying the journal if one exists
// at cfg.JournalPath.
func NewCoordinator(cfg CoordConfig) (*Coordinator, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("sweepd: CoordConfig.Store is required")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = cfg.LeaseTTL / 4
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 250 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 10 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	c := &Coordinator{
		cfg:     cfg,
		jobs:    map[string]*jobEntry{},
		workers: map[string]*workerInfo{},
	}
	if cfg.JournalPath != "" {
		j, entries, err := openJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		c.journal = j
		c.replay(entries)
	}
	return c, nil
}

// replay rebuilds queue state from journal entries (no lock needed: the
// coordinator is not yet shared).
func (c *Coordinator) replay(entries []journalEntry) {
	for _, e := range entries {
		switch e.Op {
		case opSubmit:
			if e.Job == nil {
				continue
			}
			id := e.Job.ID()
			if _, ok := c.jobs[id]; ok {
				continue
			}
			c.jobs[id] = &jobEntry{spec: *e.Job, state: StatePending}
			c.order = append(c.order, id)
		case opLease:
			// Every granted lease was journaled, so counting them keeps
			// leaseSeq monotone across restarts: a resurrected worker's stale
			// lease ID can never collide with a freshly issued one.
			c.leaseSeq++
			if j := c.jobs[e.ID]; j != nil && j.state == StatePending {
				// The lease itself died with the old coordinator; keep the
				// attempt accounting (the budget was consumed) but requeue.
				j.attempt = e.Attempt
			}
		case opRequeue:
			if j := c.jobs[e.ID]; j != nil && j.state == StatePending {
				j.attempt = e.Attempt
			}
		case opDone:
			if j := c.jobs[e.ID]; j != nil {
				j.state = StateDone
				j.record = e.Record
				j.cached = e.Cached
				j.worker = e.Worker
			}
		case opFailed:
			if j := c.jobs[e.ID]; j != nil {
				j.state = StateFailed
				j.failure = e.Failure
				j.attempt = e.Attempt
			}
		}
	}
	var pending, done, failed int
	for _, j := range c.jobs {
		switch j.state {
		case StatePending:
			pending++
		case StateDone:
			done++
		case StateFailed:
			failed++
		}
	}
	if len(c.jobs) > 0 {
		c.cfg.Logf("sweepd: journal replay: %d jobs recovered (%d pending, %d done, %d failed)",
			len(c.jobs), pending, done, failed)
	}
}

// Close stops accepting work and closes the journal.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	c.closed = true
	j := c.journal
	c.journal = nil
	c.mu.Unlock()
	return j.close()
}

// emit publishes an event outside the lock discipline concerns of callers
// (the hook must not call back into the coordinator).
func (c *Coordinator) emit(event string, payload any) {
	if c.cfg.Events != nil {
		c.cfg.Events(event, payload)
	}
}

// backoffFor computes the deterministic retry delay before attempt+1 of job
// id: exponential in the attempt, with jitter drawn from a stream keyed by
// (seed, id, attempt) so the schedule replays byte-identically for a given
// seed regardless of goroutine interleaving.
func (c *Coordinator) backoffFor(id string, attempt int) time.Duration {
	d := c.cfg.BackoffBase << uint(attempt-1)
	if d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	jitter := time.Duration(detrand.Keyed(c.cfg.Seed, id, fmt.Sprint(attempt)).Int63n(int64(c.cfg.BackoffBase)))
	if d+jitter > c.cfg.BackoffMax {
		return c.cfg.BackoffMax
	}
	return d + jitter
}

// Submit enqueues jobs (idempotent by ID), resolving store hits immediately
// and applying overload policy. It is the client's entry point.
func (c *Coordinator) Submit(req SubmitRequest) (SubmitResponse, error) {
	c.mu.Lock() //skipit:ignore lockorder WAL ordering: state mutation and its journal append must be atomic under mu, or a crash between them loses the entry
	defer c.mu.Unlock()
	if c.closed {
		return SubmitResponse{}, fmt.Errorf("sweepd: coordinator closed")
	}
	var resp SubmitResponse
	for _, spec := range req.Jobs {
		id := spec.ID()
		if _, ok := c.jobs[id]; ok {
			resp.Known++
			continue
		}
		j := &jobEntry{spec: spec, state: StatePending}
		if err := c.journal.append(journalEntry{Op: opSubmit, Job: &spec}); err != nil {
			return resp, err
		}
		c.jobs[id] = j
		c.order = append(c.order, id)
		resp.Accepted++
		// Content-address hit: the store already holds this measurement.
		if rec, ok := c.cfg.Store.Lookup(spec.Group, spec.Name, spec.Fingerprint); ok {
			r := rec
			if err := c.commitDoneLocked(j, &r, true, ""); err != nil {
				return resp, err
			}
			continue
		}
		c.emit("sweepd", JobStatus{Job: spec, State: StatePending})
	}
	shed, err := c.shedLocked()
	if err != nil {
		return resp, err
	}
	resp.Shed = shed
	return resp, nil
}

// commitDoneLocked makes a job terminal-done: store commit (atomic, then
// flushed) before the journal line, so "done" in the journal implies the
// record is durable.
func (c *Coordinator) commitDoneLocked(j *jobEntry, rec *sweep.Record, cached bool, worker string) error {
	if !cached {
		c.cfg.Store.Put(j.spec.Group, *rec)
		if err := c.cfg.Store.Flush(); err != nil {
			return err
		}
	}
	if err := c.journal.append(journalEntry{Op: opDone, ID: j.spec.ID(), Worker: worker,
		Record: rec, Cached: cached}); err != nil {
		return err
	}
	j.state = StateDone
	j.record = rec
	j.cached = cached
	j.worker = worker
	j.progress = ""
	c.emit("sweepd", JobStatus{Job: j.spec, State: StateDone, Worker: worker, Cached: cached})
	return nil
}

// failLocked makes a job terminal-failed.
func (c *Coordinator) failLocked(j *jobEntry, f *Failure) error {
	if err := c.journal.append(journalEntry{Op: opFailed, ID: j.spec.ID(),
		Attempt: j.attempt, Failure: f}); err != nil {
		return err
	}
	j.state = StateFailed
	j.failure = f
	j.progress = ""
	c.emit("sweepd", JobStatus{Job: j.spec, State: StateFailed, Attempt: j.attempt, Failure: f})
	return nil
}

// requeueLocked returns a leased job to pending with backoff, or fails it
// terminally when the retry budget is gone.
func (c *Coordinator) requeueLocked(j *jobEntry, cause *Failure, now time.Time) error {
	if j.attempt >= c.cfg.MaxAttempts {
		return c.failLocked(j, cause)
	}
	if err := c.journal.append(journalEntry{Op: opRequeue, ID: j.spec.ID(),
		Attempt: j.attempt, Reason: cause.Code}); err != nil {
		return err
	}
	j.state = StatePending
	j.worker = ""
	j.leaseID = 0
	j.progress = ""
	j.notBefore = now.Add(c.backoffFor(j.spec.ID(), j.attempt))
	c.cfg.Logf("sweepd: requeued %s after %s (attempt %d/%d, next not before %s)",
		j.spec.ID(), cause.Code, j.attempt, c.cfg.MaxAttempts, j.notBefore.Format(time.RFC3339Nano))
	c.emit("sweepd", JobStatus{Job: j.spec, State: StatePending, Attempt: j.attempt, Failure: cause})
	return nil
}

// liveWorkersLocked counts workers heard from within two lease TTLs.
func (c *Coordinator) liveWorkersLocked(now time.Time) int {
	n := 0
	for _, w := range c.workers {
		if now.Sub(w.lastSeen) <= 2*c.cfg.LeaseTTL {
			n++
		}
	}
	return n
}

// shedLocked applies the degradation policy: with the live pool below the
// floor and the pending queue above its ceiling, the lowest-priority pending
// jobs fail with FailOverloaded (newest first within a priority) until the
// queue fits. Returns the shed job IDs.
func (c *Coordinator) shedLocked() ([]string, error) {
	if c.cfg.MinWorkers <= 0 {
		return nil, nil
	}
	now := c.cfg.Clock()
	if c.liveWorkersLocked(now) >= c.cfg.MinWorkers {
		return nil, nil
	}
	var pending []*jobEntry
	for _, id := range c.order {
		if j := c.jobs[id]; j.state == StatePending {
			pending = append(pending, j)
		}
	}
	if len(pending) <= c.cfg.MaxQueue {
		return nil, nil
	}
	// Shed order: lowest priority first; within a priority, newest
	// submission first (the oldest work was promised first).
	victims := append([]*jobEntry(nil), pending...)
	sort.SliceStable(victims, func(a, b int) bool {
		return victims[a].spec.Priority < victims[b].spec.Priority
	})
	toShed := len(pending) - c.cfg.MaxQueue
	var shed []string
	for i := 0; i < len(victims) && toShed > 0; i++ {
		// Within equal priority, prefer the latest submitted: scan this
		// priority class from its end.
		j := i
		for j+1 < len(victims) && victims[j+1].spec.Priority == victims[i].spec.Priority {
			j++
		}
		for k := j; k >= i && toShed > 0; k-- {
			v := victims[k]
			msg := fmt.Sprintf("worker pool below floor (%d live < %d) with %d pending > %d queue cap",
				c.liveWorkersLocked(now), c.cfg.MinWorkers, len(pending), c.cfg.MaxQueue)
			if err := c.failLocked(v, &Failure{Code: FailOverloaded, Message: msg}); err != nil {
				return shed, err
			}
			shed = append(shed, v.spec.ID())
			toShed--
		}
		i = j
	}
	if len(shed) > 0 {
		c.cfg.Logf("sweepd: OVERLOAD: shed %d job(s): %v", len(shed), shed)
	}
	return shed, nil
}

// Register announces (or refreshes) a worker.
func (c *Coordinator) Register(req RegisterRequest) (RegisterResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock()
	if _, ok := c.workers[req.Worker]; !ok {
		c.cfg.Logf("sweepd: worker %s registered", req.Worker)
	}
	c.workers[req.Worker] = &workerInfo{lastSeen: now}
	return RegisterResponse{
		LeaseMillis:     c.cfg.LeaseTTL.Milliseconds(),
		HeartbeatMillis: c.cfg.HeartbeatEvery.Milliseconds(),
	}, nil
}

// Lease hands the first runnable pending job (submission order, backoff
// respected) to the worker under a fresh lease.
func (c *Coordinator) Lease(req LeaseRequest) (LeaseResponse, error) {
	c.mu.Lock() //skipit:ignore lockorder WAL ordering: state mutation and its journal append must be atomic under mu, or a crash between them loses the entry
	defer c.mu.Unlock()
	now := c.cfg.Clock()
	if w := c.workers[req.Worker]; w != nil {
		w.lastSeen = now
	} else {
		c.workers[req.Worker] = &workerInfo{lastSeen: now}
	}
	if err := c.reapLocked(now); err != nil {
		return LeaseResponse{}, err
	}
	// Lease is idempotent per worker: a worker that already holds a live
	// lease gets the same lease back. Without this, a duplicated request or
	// a dropped response would orphan a lease — granted but unknown to the
	// worker — which then burns a full TTL and a retry attempt for nothing.
	// (Workers run one job at a time, so a re-request means the previous
	// grant never arrived.)
	for _, id := range c.order {
		if j := c.jobs[id]; j.state == StateLeased && j.worker == req.Worker {
			j.expiry = now.Add(c.cfg.LeaseTTL)
			spec := j.spec
			return LeaseResponse{Job: &spec, LeaseID: j.leaseID, Attempt: j.attempt}, nil
		}
	}
	drained := true
	var nextWake time.Duration
	for _, id := range c.order {
		j := c.jobs[id]
		if j.state == StateDone || j.state == StateFailed {
			continue
		}
		drained = false
		if j.state != StatePending {
			continue
		}
		if j.notBefore.After(now) {
			if wait := j.notBefore.Sub(now); nextWake == 0 || wait < nextWake {
				nextWake = wait
			}
			continue
		}
		j.attempt++
		c.leaseSeq++
		j.state = StateLeased
		j.worker = req.Worker
		j.leaseID = c.leaseSeq
		j.expiry = now.Add(c.cfg.LeaseTTL)
		j.progress = "leased"
		if err := c.journal.append(journalEntry{Op: opLease, ID: id,
			Worker: req.Worker, Attempt: j.attempt}); err != nil {
			return LeaseResponse{}, err
		}
		c.emit("sweepd", JobStatus{Job: j.spec, State: StateLeased, Attempt: j.attempt, Worker: req.Worker})
		spec := j.spec
		return LeaseResponse{Job: &spec, LeaseID: j.leaseID, Attempt: j.attempt}, nil
	}
	wait := c.cfg.HeartbeatEvery
	if nextWake > 0 && nextWake < wait {
		wait = nextWake
	}
	return LeaseResponse{WaitMillis: wait.Milliseconds(), Drained: drained}, nil
}

// Heartbeat renews a lease and records progress. A heartbeat for a lease
// that is no longer current tells the worker to abandon the run.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock()
	if w := c.workers[req.Worker]; w != nil {
		w.lastSeen = now
	}
	for _, j := range c.jobs {
		if j.state == StateLeased && j.leaseID == req.LeaseID && j.worker == req.Worker {
			j.expiry = now.Add(c.cfg.LeaseTTL)
			if req.Progress != "" {
				j.progress = req.Progress
			}
			return HeartbeatResponse{}, nil
		}
	}
	return HeartbeatResponse{Cancel: true}, nil
}

// Complete finishes a lease. The idempotence rules that make duplicate and
// resurrected-worker completions harmless:
//
//   - current lease + record  -> commit.
//   - current lease + failure -> requeue (budget permitting) or fail.
//   - stale lease + record whose fingerprint matches the job -> commit
//     anyway (deterministic measurement, content-addressed: the bytes are
//     the bytes). If the job is already done, a repeated commit rewrites
//     identical content — a no-op by value.
//   - stale lease + failure -> discarded; the retry already lives elsewhere.
func (c *Coordinator) Complete(req CompleteRequest) (CompleteResponse, error) {
	c.mu.Lock() //skipit:ignore lockorder commit ordering: a job is marked done only after the durable store write succeeds, so both stay under mu
	defer c.mu.Unlock()
	now := c.cfg.Clock()
	if w := c.workers[req.Worker]; w != nil {
		w.lastSeen = now
	}
	var j *jobEntry
	if req.Record != nil {
		j = c.jobs[req.Record.Group+"/"+req.Record.Name]
	}
	if j == nil {
		for _, cand := range c.jobs {
			if cand.leaseID == req.LeaseID && cand.state == StateLeased {
				j = cand
				break
			}
		}
	}
	if j == nil {
		return CompleteResponse{Stale: true}, nil
	}
	current := j.state == StateLeased && j.leaseID == req.LeaseID && j.worker == req.Worker
	switch {
	case req.Record != nil:
		if req.Record.Fingerprint != j.spec.Fingerprint {
			c.cfg.Logf("sweepd: rejected completion for %s: fingerprint %s != spec %s",
				j.spec.ID(), req.Record.Fingerprint, j.spec.Fingerprint)
			return CompleteResponse{Stale: !current}, nil
		}
		if j.state == StateDone {
			return CompleteResponse{Accepted: true, Stale: true}, nil
		}
		if j.state == StateFailed {
			// Terminal failure already surfaced to clients; keep it stable.
			return CompleteResponse{Stale: true}, nil
		}
		if err := c.commitDoneLocked(j, req.Record, false, req.Worker); err != nil {
			return CompleteResponse{}, err
		}
		return CompleteResponse{Accepted: true, Stale: !current}, nil
	case req.Failure != nil:
		if !current {
			return CompleteResponse{Stale: true}, nil
		}
		if err := c.requeueLocked(j, req.Failure, now); err != nil {
			return CompleteResponse{}, err
		}
		return CompleteResponse{Accepted: true}, nil
	default:
		return CompleteResponse{}, fmt.Errorf("sweepd: complete carries neither record nor failure")
	}
}

// reapLocked requeues jobs whose lease deadline passed (missed heartbeats:
// worker died, network partitioned, or the run wedged past its watchdog) and
// applies shedding if the pool has shrunk below the floor.
func (c *Coordinator) reapLocked(now time.Time) error {
	for _, id := range c.order {
		j := c.jobs[id]
		if j.state == StateLeased && now.After(j.expiry) {
			c.cfg.Logf("sweepd: lease on %s (worker %s) expired", id, j.worker)
			cause := &Failure{Code: FailLeaseExpired,
				Message: fmt.Sprintf("worker %s missed heartbeats (lease ttl %s)", j.worker, c.cfg.LeaseTTL)}
			if err := c.requeueLocked(j, cause, now); err != nil {
				return err
			}
		}
	}
	_, err := c.shedLocked()
	return err
}

// Reap is the public tick: lease expiry plus degradation policy. The serving
// loop calls it periodically; tests call it directly with a fake clock.
func (c *Coordinator) Reap() error {
	c.mu.Lock() //skipit:ignore lockorder WAL ordering: state mutation and its journal append must be atomic under mu, or a crash between them loses the entry
	defer c.mu.Unlock()
	return c.reapLocked(c.cfg.Clock())
}

// ReapLoop runs Reap every interval until stop closes.
func (c *Coordinator) ReapLoop(stop <-chan struct{}, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if err := c.Reap(); err != nil {
				c.cfg.Logf("sweepd: reap: %v", err)
			}
		}
	}
}

// statusLocked renders one job's external view.
func statusLocked(j *jobEntry) JobStatus {
	st := JobStatus{Job: j.spec, State: j.state, Attempt: j.attempt,
		Worker: j.worker, Progress: j.progress, Cached: j.cached}
	if j.record != nil {
		r := *j.record
		st.Record = &r
	}
	if j.failure != nil {
		f := *j.failure
		st.Failure = &f
	}
	return st
}

// Results reports job states. Unknown IDs are returned as failed with
// FailUnknownJob so a client polling a restarted, journal-less coordinator
// terminates instead of spinning.
func (c *Coordinator) Results(req ResultsRequest) (ResultsResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := req.IDs
	if len(ids) == 0 {
		ids = c.order
	}
	resp := ResultsResponse{Done: true}
	for _, id := range ids {
		j, ok := c.jobs[id]
		if !ok {
			group, name := splitID(id)
			resp.Jobs = append(resp.Jobs, JobStatus{
				Job: JobSpec{Group: group, Name: name}, State: StateFailed,
				Failure: &Failure{Code: FailUnknownJob, Message: "job not known to this coordinator"},
			})
			continue
		}
		st := statusLocked(j)
		if st.State != StateDone && st.State != StateFailed {
			resp.Done = false
		}
		resp.Jobs = append(resp.Jobs, st)
	}
	return resp, nil
}

// splitID inverts JobSpec.ID — group before the first slash, name after —
// so an unknown-job status still carries a spec whose ID matches the poll.
func splitID(id string) (group, name string) {
	if i := strings.Index(id, "/"); i >= 0 {
		return id[:i], id[i+1:]
	}
	return "", id
}

// State renders the whole queue for humans (/api/sweepd/state).
func (c *Coordinator) State() StateResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock()
	resp := StateResponse{LiveWorkers: c.liveWorkersLocked(now)}
	for _, id := range c.order {
		j := c.jobs[id]
		resp.Jobs = append(resp.Jobs, statusLocked(j))
		switch j.state {
		case StatePending:
			resp.Pending++
		case StateLeased:
			resp.Leased++
		case StateDone:
			resp.Done++
		case StateFailed:
			resp.Failed++
		}
	}
	return resp
}
