package l1

import (
	"testing"

	"skipit/internal/tilelink"
)

// mockManager plays the L2 side of the L1's TileLink port: it grants every
// Acquire (optionally as GrantDataDirty), acks releases and root releases,
// and records the traffic for assertions.
type mockManager struct {
	t    *testing.T
	port *tilelink.ClientPort

	grantDirty   map[uint64]bool // addr -> respond GrantDataDirty
	fill         map[uint64]uint64
	acquires     []tilelink.Msg
	releases     []tilelink.Msg
	rootReleases []tilelink.Msg
	probeAcks    []tilelink.Msg
	grantAcks    int
	outD         []tilelink.Msg
}

func newMock(t *testing.T, port *tilelink.ClientPort) *mockManager {
	return &mockManager{t: t, port: port, grantDirty: map[uint64]bool{}, fill: map[uint64]uint64{}}
}

func (m *mockManager) tick(now int64) {
	if len(m.outD) > 0 && m.port.D.Send(now, m.outD[0]) {
		m.outD = m.outD[1:]
	}
	if msg, ok := m.port.A.Recv(now); ok {
		m.acquires = append(m.acquires, msg)
		op := tilelink.OpGrantData
		if m.grantDirty[msg.Addr] {
			op = tilelink.OpGrantDataDirty
		}
		cap := tilelink.CapToT
		if msg.Grow == tilelink.GrowNtoB {
			cap = tilelink.CapToB
		}
		data := make([]byte, 64)
		v := m.fill[msg.Addr]
		for i := uint64(0); i < 8; i++ {
			data[i] = byte(v >> (8 * i))
		}
		m.outD = append(m.outD, tilelink.Msg{Op: op, Addr: msg.Addr, Cap: cap, Data: data})
	}
	if msg, ok := m.port.C.Recv(now); ok {
		switch {
		case msg.Op.IsRootRelease():
			m.rootReleases = append(m.rootReleases, msg)
			m.outD = append(m.outD, tilelink.Msg{Op: tilelink.OpRootReleaseAck, Addr: msg.Addr})
		case msg.Op == tilelink.OpRelease || msg.Op == tilelink.OpReleaseData:
			m.releases = append(m.releases, msg)
			m.outD = append(m.outD, tilelink.Msg{Op: tilelink.OpReleaseAck, Addr: msg.Addr})
		default:
			m.probeAcks = append(m.probeAcks, msg)
		}
	}
	if _, ok := m.port.E.Recv(now); ok {
		m.grantAcks++
	}
}

type l1rig struct {
	t   *testing.T
	d   *DCache
	mgr *mockManager
	now int64
	id  int
}

func newL1Rig(t *testing.T, mut func(*Config)) *l1rig {
	t.Helper()
	port := tilelink.NewClientPort("t", 16, 64, 1)
	cfg := DefaultConfig(0)
	if mut != nil {
		mut(&cfg)
	}
	return &l1rig{t: t, d: New(cfg, port), mgr: newMock(t, port)}
}

func (r *l1rig) step() {
	r.d.Tick(r.now)
	r.mgr.tick(r.now)
	r.now++
}

// do submits a request and steps until its response arrives; it retries
// nacks.
func (r *l1rig) do(req Req) Resp {
	r.t.Helper()
	for attempt := 0; attempt < 200; attempt++ {
		req.ID = r.id
		r.id++
		for !r.d.Submit(r.now, req) {
			r.step()
		}
		for i := 0; i < 2000; i++ {
			r.step()
			for _, resp := range r.d.PollResponses(r.now) {
				if resp.ID != req.ID {
					r.t.Fatalf("response for unknown id %d", resp.ID)
				}
				if resp.Nack {
					goto retry
				}
				return resp
			}
		}
		r.t.Fatalf("no response for %v", req)
	retry:
	}
	r.t.Fatalf("endless nacks for %v", req)
	return Resp{}
}

func (r *l1rig) drain() {
	for i := 0; i < 2000 && r.d.Busy(); i++ {
		r.step()
	}
	if r.d.Busy() {
		r.t.Fatal("L1 did not drain")
	}
}

func TestMissFillsAndHits(t *testing.T) {
	r := newL1Rig(t, nil)
	r.mgr.fill[0x1000&^63] = 1234
	resp := r.do(Req{Kind: Load, Addr: 0x1000})
	if resp.Data != 1234 {
		t.Fatalf("miss load = %d, want 1234", resp.Data)
	}
	if len(r.mgr.acquires) != 1 {
		t.Fatalf("%d acquires, want 1", len(r.mgr.acquires))
	}
	r.do(Req{Kind: Load, Addr: 0x1000})
	if len(r.mgr.acquires) != 1 {
		t.Fatal("hit re-acquired the line")
	}
	st := r.d.LineState(0x1000)
	if !st.Valid || !st.Skip {
		t.Fatalf("GrantData install state: %+v (skip must be set)", st)
	}
}

func TestGrantDataDirtyClearsSkip(t *testing.T) {
	r := newL1Rig(t, nil)
	r.mgr.grantDirty[0x1000] = true
	r.do(Req{Kind: Load, Addr: 0x1000})
	if r.d.LineState(0x1000).Skip {
		t.Fatal("GrantDataDirty set the skip bit (§6.1 violation)")
	}
}

func TestStoreMakesDirtyAndLoadSeesIt(t *testing.T) {
	r := newL1Rig(t, nil)
	r.do(Req{Kind: Store, Addr: 0x2000, Data: 55})
	r.drain()
	st := r.d.LineState(0x2000)
	if !st.Valid || !st.Dirty {
		t.Fatalf("state after store: %+v", st)
	}
	if got := r.do(Req{Kind: Load, Addr: 0x2000}); got.Data != 55 {
		t.Fatalf("load = %d, want 55", got.Data)
	}
}

func TestLoadAcquiresBranchStoreAcquiresTrunk(t *testing.T) {
	r := newL1Rig(t, nil)
	r.do(Req{Kind: Load, Addr: 0x1000})
	r.do(Req{Kind: Store, Addr: 0x3000, Data: 1})
	r.drain()
	if g := r.mgr.acquires[0].Grow; g != tilelink.GrowNtoB {
		t.Fatalf("load acquired %v", g)
	}
	if g := r.mgr.acquires[1].Grow; g != tilelink.GrowNtoT {
		t.Fatalf("store acquired %v", g)
	}
}

func TestStoreUpgradeUsesBtoT(t *testing.T) {
	r := newL1Rig(t, nil)
	r.do(Req{Kind: Load, Addr: 0x1000}) // branch copy
	r.do(Req{Kind: Store, Addr: 0x1000, Data: 9})
	r.drain()
	if len(r.mgr.acquires) != 2 {
		t.Fatalf("%d acquires", len(r.mgr.acquires))
	}
	if g := r.mgr.acquires[1].Grow; g != tilelink.GrowBtoT {
		t.Fatalf("upgrade acquired %v, want BtoT", g)
	}
	if got := r.do(Req{Kind: Load, Addr: 0x1000}); got.Data != 9 {
		t.Fatalf("load after upgrade = %d", got.Data)
	}
}

func TestEvictionReleasesDirtyVictim(t *testing.T) {
	r := newL1Rig(t, nil)
	cfg := r.d.Config()
	stride := uint64(cfg.Sets) * cfg.LineBytes
	// Fill one set with dirty lines, then one more to force an eviction.
	for w := 0; w <= cfg.Ways; w++ {
		r.do(Req{Kind: Store, Addr: uint64(w) * stride, Data: uint64(w)})
	}
	r.drain()
	found := false
	for _, rel := range r.mgr.releases {
		if rel.Op == tilelink.OpReleaseData {
			found = true
		}
	}
	if !found {
		t.Fatal("no ReleaseData despite dirty victim eviction")
	}
}

func TestCboFlushSendsRootReleaseAndInvalidates(t *testing.T) {
	r := newL1Rig(t, nil)
	r.do(Req{Kind: Store, Addr: 0x1000, Data: 7})
	r.drain()
	r.do(Req{Kind: CboFlush, Addr: 0x1000})
	r.drain()
	if len(r.mgr.rootReleases) != 1 {
		t.Fatalf("%d RootReleases", len(r.mgr.rootReleases))
	}
	rr := r.mgr.rootReleases[0]
	if rr.Op != tilelink.OpRootReleaseFlushData {
		t.Fatalf("op = %v", rr.Op)
	}
	if rr.Data[0] != 7 {
		t.Fatal("RootRelease carried wrong data")
	}
	if r.d.LineState(0x1000).Valid {
		t.Fatal("flush left line valid")
	}
}

func TestRedundantCleanDroppedBySkipBit(t *testing.T) {
	r := newL1Rig(t, nil)
	r.do(Req{Kind: Store, Addr: 0x1000, Data: 7})
	r.drain()
	r.do(Req{Kind: CboClean, Addr: 0x1000})
	r.drain()
	if !r.d.LineState(0x1000).Skip {
		t.Fatal("completed clean did not set skip")
	}
	before := len(r.mgr.rootReleases)
	r.do(Req{Kind: CboClean, Addr: 0x1000})
	r.drain()
	if len(r.mgr.rootReleases) != before {
		t.Fatal("redundant clean reached the L2 despite Skip It")
	}
}

func TestProbeToNInvalidatesAndReturnsDirtyData(t *testing.T) {
	r := newL1Rig(t, nil)
	r.do(Req{Kind: Store, Addr: 0x1000, Data: 88})
	r.drain()
	r.mgr.port.B.Send(r.now, tilelink.Msg{Op: tilelink.OpProbe, Addr: 0x1000 &^ 63, Cap: tilelink.CapToN})
	for i := 0; i < 200 && len(r.mgr.probeAcks) == 0; i++ {
		r.step()
	}
	if len(r.mgr.probeAcks) != 1 {
		t.Fatal("no ProbeAck")
	}
	ack := r.mgr.probeAcks[0]
	if ack.Op != tilelink.OpProbeAckData || ack.Shrink != tilelink.ShrinkTtoN {
		t.Fatalf("ProbeAck = %v", ack)
	}
	if ack.Data[0] != 88 {
		t.Fatal("probe lost dirty data")
	}
	if r.d.LineState(0x1000).Valid {
		t.Fatal("probed-toN line still valid")
	}
}

func TestProbeToBKeepsCleanCopyAndClearsSkip(t *testing.T) {
	r := newL1Rig(t, nil)
	r.do(Req{Kind: Store, Addr: 0x1000, Data: 3})
	r.drain()
	r.mgr.port.B.Send(r.now, tilelink.Msg{Op: tilelink.OpProbe, Addr: 0x1000 &^ 63, Cap: tilelink.CapToB})
	for i := 0; i < 200 && len(r.mgr.probeAcks) == 0; i++ {
		r.step()
	}
	st := r.d.LineState(0x1000)
	if !st.Valid || st.Dirty || st.Perm != tilelink.PermBranch {
		t.Fatalf("state after toB probe: %+v", st)
	}
	if st.Skip {
		t.Fatal("skip bit survived surrendering dirty data (§6.2 violation)")
	}
}

func TestProbeOfAbsentLineAcksNtoN(t *testing.T) {
	r := newL1Rig(t, nil)
	r.mgr.port.B.Send(r.now, tilelink.Msg{Op: tilelink.OpProbe, Addr: 0x7000, Cap: tilelink.CapToN})
	for i := 0; i < 200 && len(r.mgr.probeAcks) == 0; i++ {
		r.step()
	}
	if ack := r.mgr.probeAcks[0]; ack.Op != tilelink.OpProbeAck || ack.Shrink != tilelink.ShrinkNtoN {
		t.Fatalf("ProbeAck = %v", ack)
	}
}

func TestSecondaryLoadPiggybacksOnStoreMiss(t *testing.T) {
	r := newL1Rig(t, nil)
	// Fire a store (primary, NtoT) and a load (secondary) back to back
	// without waiting; both must be served by one MSHR / one Acquire.
	s := Req{ID: 1000, Kind: Store, Addr: 0x1000, Data: 5}
	l := Req{ID: 1001, Kind: Load, Addr: 0x1008}
	if !r.d.Submit(r.now, s) || !r.d.Submit(r.now, l) {
		t.Fatal("submissions rejected")
	}
	var loadResp *Resp
	for i := 0; i < 2000 && loadResp == nil; i++ {
		r.step()
		for _, resp := range r.d.PollResponses(r.now) {
			if resp.ID == 1001 {
				if resp.Nack {
					t.Fatal("secondary load nacked despite RPQ capacity")
				}
				v := resp
				loadResp = &v
			}
		}
	}
	if loadResp == nil {
		t.Fatal("secondary load never completed")
	}
	if len(r.mgr.acquires) != 1 {
		t.Fatalf("%d acquires, want 1 (RPQ merge)", len(r.mgr.acquires))
	}
}

func TestSecondaryStoreOnLoadMissNacked(t *testing.T) {
	// §3.3: the RPQ rejects a secondary needing more permission than the
	// primary acquired (no AcquirePerm upgrade).
	r := newL1Rig(t, nil)
	l := Req{ID: 1, Kind: Load, Addr: 0x1000}
	s := Req{ID: 2, Kind: Store, Addr: 0x1008, Data: 9}
	if !r.d.Submit(r.now, l) || !r.d.Submit(r.now, s) {
		t.Fatal("submissions rejected")
	}
	nacked := false
	for i := 0; i < 2000; i++ {
		r.step()
		for _, resp := range r.d.PollResponses(r.now) {
			if resp.ID == 2 && resp.Nack {
				nacked = true
			}
		}
		if nacked {
			break
		}
	}
	if !nacked {
		t.Fatal("store accepted as secondary of a Branch acquire")
	}
}

func TestNoFreeMSHRNacks(t *testing.T) {
	r := newL1Rig(t, func(c *Config) { c.NumMSHRs = 1; c.InputDepth = 8; c.InputWidth = 8 })
	// Two misses to different lines in one cycle: the second has no MSHR.
	if !r.d.Submit(r.now, Req{ID: 1, Kind: Load, Addr: 0x1000}) {
		t.Fatal("submit 1")
	}
	if !r.d.Submit(r.now, Req{ID: 2, Kind: Load, Addr: 0x9000}) {
		t.Fatal("submit 2")
	}
	gotNack := false
	for i := 0; i < 2000; i++ {
		r.step()
		for _, resp := range r.d.PollResponses(r.now) {
			if resp.ID == 2 && resp.Nack {
				gotNack = true
			}
		}
		if gotNack {
			break
		}
	}
	if !gotNack {
		t.Fatal("second miss not nacked with a single MSHR")
	}
}

func TestInputWidthLimitsAcceptance(t *testing.T) {
	r := newL1Rig(t, nil) // width 2
	if !r.d.Submit(r.now, Req{ID: 1, Kind: Load, Addr: 0x1000}) {
		t.Fatal("submit 1")
	}
	if !r.d.Submit(r.now, Req{ID: 2, Kind: Load, Addr: 0x1008}) {
		t.Fatal("submit 2")
	}
	if r.d.Submit(r.now, Req{ID: 3, Kind: Load, Addr: 0x1010}) {
		t.Fatal("third submission accepted in one cycle (width 2)")
	}
}
