package persist

// Mode selects the persistence algorithm the data structures run under
// (§7.4): where flushes and fences are inserted around each operation.
type Mode uint8

const (
	// Automatic is the general linearizability transform [Izraelevitz et
	// al., DISC'16]: every shared-memory read and write is followed by a
	// writeback, and every operation ends with a fence. Correct for any
	// linearizable structure, and maximally redundant — the case elision
	// schemes exist for.
	Automatic Mode = iota
	// NVTraverse [Friedman et al., PLDI'20] splits operations into a
	// traversal phase that needs no writebacks and a critical phase whose
	// reads and writes are persisted.
	NVTraverse
	// Manual is the hand-tuned algorithm [David et al., ATC'18]: only the
	// modified locations are written back, once, before the fence.
	Manual
)

func (m Mode) String() string {
	switch m {
	case Automatic:
		return "automatic"
	case NVTraverse:
		return "nvtraverse"
	case Manual:
		return "manual"
	}
	return "Mode(?)"
}

// Modes lists the three algorithms in figure order.
func Modes() []Mode { return []Mode{Automatic, NVTraverse, Manual} }

// Env is what a data structure operation threads through its shared-memory
// accesses: a policy (how flushes execute) plus a mode (where they are
// inserted). The hooks encode the three algorithms' rules so structure code
// stays algorithm-agnostic.
type Env struct {
	Pol  Policy
	Mode Mode
	// NonPersistent disables all writebacks and fences: the dark-green
	// baseline of Figures 14–15.
	NonPersistent bool
}

// ReadTraverse is a shared read in the traversal phase (list/tree walking).
// Automatic persists everything it reads; NVTraverse and manual do not.
func (e *Env) ReadTraverse(tid int, addr uint64) {
	e.Pol.Load(tid, addr)
	if e.NonPersistent {
		return
	}
	if e.Mode == Automatic {
		e.Pol.Flush(tid, addr)
	}
}

// ReadCritical is a shared read in the critical phase (the nodes an update
// decides over, or a lookup's final node). NVTraverse persists these.
func (e *Env) ReadCritical(tid int, addr uint64) {
	e.Pol.Load(tid, addr)
	if e.NonPersistent {
		return
	}
	if e.Mode == Automatic || e.Mode == NVTraverse {
		e.Pol.Flush(tid, addr)
	}
}

// Write is a shared write that is not the linearization point (node
// initialization before publication).
func (e *Env) Write(tid int, addr uint64) {
	e.Pol.Store(tid, addr)
	if e.NonPersistent {
		return
	}
	if e.Mode == Automatic {
		e.Pol.Flush(tid, addr)
	}
}

// WriteCommit is the linearizing write (the publishing CAS). Every
// persistence algorithm writes it back.
func (e *Env) WriteCommit(tid int, addr uint64) {
	e.Pol.Store(tid, addr)
	if e.NonPersistent {
		return
	}
	e.Pol.Flush(tid, addr)
}

// FlushNew persists a freshly initialized object before it is published
// (NVTraverse and manual flush it once; automatic already flushed each
// word).
func (e *Env) FlushNew(tid int, addr uint64) {
	if e.NonPersistent || e.Mode == Automatic {
		return
	}
	e.Pol.Flush(tid, addr)
}

// EndOp closes an operation. Automatic fences every operation; NVTraverse
// and manual fence only operations that wrote.
func (e *Env) EndOp(tid int, wrote bool) {
	if e.NonPersistent {
		return
	}
	if e.Mode == Automatic || wrote {
		e.Pol.Fence(tid)
	}
}
