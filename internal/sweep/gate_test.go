package sweep

import (
	"strings"
	"testing"

	"skipit/internal/mem"
	"skipit/internal/sim"
)

func rec(name, fp string, cycles float64) Record {
	return Record{Name: name, Fingerprint: fp, Cycles: cycles, Reps: 1}
}

func TestCompareClassifiesDeltas(t *testing.T) {
	baseline := []Record{
		rec("ok", "f", 100),
		rec("slow", "f", 100),
		rec("fast", "f", 100),
		rec("drift", "f1", 100),
		rec("gone", "f", 100),
	}
	current := []Record{
		rec("ok", "f", 105),
		rec("slow", "f", 125),
		rec("fast", "f", 70),
		rec("drift", "f2", 100),
		rec("fresh", "f", 10),
	}
	cmp := Compare(baseline, current, 10)
	want := map[string]Status{
		"ok": StatusOK, "slow": StatusRegression, "fast": StatusImproved,
		"drift": StatusMismatch, "gone": StatusMissing, "fresh": StatusNew,
	}
	got := map[string]Status{}
	for _, d := range cmp.Deltas {
		got[d.Name] = d.Status
	}
	for name, status := range want {
		if got[name] != status {
			t.Errorf("%s: got %q, want %q", name, got[name], status)
		}
	}
	if cmp.OK() {
		t.Fatal("gate passed despite a regression and a mismatch")
	}
	if cmp.Regressions != 1 || cmp.Mismatches != 1 || cmp.Improved != 1 || cmp.New != 1 || cmp.Missing != 1 {
		t.Fatalf("counts = %+v", cmp)
	}
	out := cmp.String()
	for _, frag := range []string{"REGRESSION", "MISMATCH", "slow", "+25.0%"} {
		if !strings.Contains(out, frag) {
			t.Errorf("summary missing %q:\n%s", frag, out)
		}
	}
}

func TestComparePassesWithinTolerance(t *testing.T) {
	baseline := []Record{rec("a", "f", 1000), rec("b", "f", 2000)}
	current := []Record{rec("a", "f", 1050), rec("b", "f", 1900)}
	if cmp := Compare(baseline, current, 10); !cmp.OK() {
		t.Fatalf("gate failed within tolerance: %s", cmp)
	}
	// Missing points (a gate targeting -fig subsets) never fail the gate.
	if cmp := Compare(baseline, current[:1], 10); !cmp.OK() || cmp.Missing != 1 {
		t.Fatalf("subset gating broken: %+v", cmp)
	}
}

// The acceptance check in ISSUE 2: artificially inflating a latency constant
// must fail the gate. The constant lives in the fingerprinted config, so the
// failure arrives as a fingerprint mismatch — the stored baseline no longer
// describes the measured machine.
func TestGateCatchesInflatedLatencyConstant(t *testing.T) {
	point := func(memCfg mem.Config) Record {
		cfg := sim.DefaultConfig(1)
		cfg.Mem = memCfg
		return rec("fig09/flush/size64/threads1", Fingerprint("fig9", cfg), 100)
	}
	baseline := []Record{point(mem.DefaultConfig())}
	inflated := mem.DefaultConfig()
	inflated.ReadLatency *= 3
	cmp := Compare(baseline, []Record{point(inflated)}, 10)
	if cmp.OK() || cmp.Mismatches != 1 {
		t.Fatalf("inflated latency constant passed the gate: %+v", cmp)
	}
	// And a pure behavioral slowdown (same config, more cycles) fails too.
	slower := point(mem.DefaultConfig())
	slower.Cycles = 200
	if cmp := Compare(baseline, []Record{slower}, 10); cmp.OK() || cmp.Regressions != 1 {
		t.Fatalf("2x cycle regression passed the gate: %+v", cmp)
	}
}
