package tlctest

import (
	"path/filepath"
	"testing"

	"skipit/internal/chaos"
)

// The litmus tests replay the two races PR 3 fixed, as directed episodes:
// once against the fixed code (must pass, and must actually traverse the
// race window), and once with the fix reverted via a mutation knob (the
// scoreboard must fire, and the shrunk repro must replay).

// race1Script is the L1 discipline race: an Acquire issued while the same
// block's dirty ReleaseData is still crawling down a chaos-delayed C
// channel. With the discipline intact the Acquire waits for the ReleaseAck;
// with the bug armed the Acquire overtakes the Release on A and the L2
// grants the stale pre-write line.
func race1Script(bug bool) Script {
	s := Script{
		Agents:        2,
		Addrs:         []uint64{episodeAddr(0), episodeAddr(1)},
		Init:          []uint64{0x11, 0x22},
		AgentSeeds:    []int64{101, 202},
		CycleLimit:    20_000,
		WatchdogLimit: 5_000,
		Ops: []Op{
			{Agent: 0, Kind: OpWrite, Addr: 0, Val: 0xA1},
			{Agent: 0, Kind: OpReleaseN, Addr: 0},
			{Agent: 0, Kind: OpAcquireB, Addr: 0},
			{Agent: 1, Kind: OpAcquireB, Addr: 0, Delay: 800},
		},
		Schedule: chaos.Schedule{Faults: []chaos.Fault{
			{Cycle: 0, Kind: chaos.LinkDelay, Core: 0, Channel: 2, Duration: 2000, Extra: 40},
		}},
	}
	s.Bug.AcquireWhileReleasePending = bug
	return s
}

// race2Script is the L2 RootRelease-vs-eviction race: agent 0 flushes its
// dirty line but the RootReleaseFlushData sits in the FSHR-arbitration
// window (HoldC) while agent 1's acquires evict the line. Reaching the
// window needs the ProbeDuringFlushHold relaxation — with the §5.4.1
// flush_rdy discipline intact the evict probe would wait for the
// RootRelease and C-channel FIFO would land the data on a still-valid
// line — so the evict probe finds agent 0 already locally invalidated,
// answers NtoN, and the L2 drops the line. The flush data then arrives for
// an absent line. The fixed L2 captures it for a DRAM write-through; the
// drop mutation reverts that. Addresses are three aliases of L2 set 0
// against two ways.
func race2Script(drop bool) Script {
	s := Script{
		Agents:        2,
		Addrs:         []uint64{episodeAddr(0), episodeAddr(2), episodeAddr(4)},
		Init:          []uint64{0x11, 0x22, 0x33},
		AgentSeeds:    []int64{303, 404},
		CycleLimit:    30_000,
		WatchdogLimit: 5_000,
		Ops: []Op{
			{Agent: 0, Kind: OpWrite, Addr: 0, Val: 0xF1},
			{Agent: 0, Kind: OpFlush, Addr: 0, HoldC: 120},
			{Agent: 1, Kind: OpAcquireT, Addr: 1, Delay: 90},
			{Agent: 1, Kind: OpAcquireT, Addr: 2},
		},
		DropRootReleaseRaceData: drop,
	}
	s.Bug.ProbeDuringFlushHold = true
	return s
}

func TestLitmusRace1Fixed(t *testing.T) {
	fail, st := RunScript(race1Script(false))
	if fail != nil {
		t.Fatalf("fixed-discipline litmus failed: %s (cycle %d)", fail.Message, fail.Cycle)
	}
	if st.Releases == 0 || st.Grants < 3 {
		t.Fatalf("litmus did not exercise the release/reacquire path: %+v", st)
	}
}

func TestLitmusRace1Mutation(t *testing.T) {
	s := race1Script(true)
	fail, _ := RunScript(s)
	if fail == nil {
		t.Fatal("reverting the acquire-while-release-pending discipline did not fire the scoreboard")
	}
	if fail.Kind != "violation" || fail.Violation == nil || fail.Violation.Kind != "value" {
		t.Fatalf("expected a value violation (stale grant), got: %+v", fail)
	}

	shrunk, runs := ShrinkScript(s, "violation", 200)
	if len(shrunk.Schedule.Faults) > len(s.Schedule.Faults) || len(shrunk.Ops) > len(s.Ops) {
		t.Fatalf("shrinking grew the script (%d runs)", runs)
	}
	// The race needs at least the write, the release and the racing
	// acquire; ddmin must keep it failing.
	sfail, _ := RunScript(shrunk)
	if sfail == nil || sfail.Kind != "violation" {
		t.Fatalf("shrunk script no longer fails: %+v", sfail)
	}

	path := filepath.Join(t.TempDir(), "race1.tlc.json")
	if err := WriteRepro(path, Repro{Script: shrunk, Failure: sfail}); err != nil {
		t.Fatal(err)
	}
	rep, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	rfail, _ := RunScript(rep.Script)
	if rfail == nil || rfail.Kind != "violation" || rfail.Violation.Kind != "value" {
		t.Fatalf("replayed artifact does not reproduce the violation: %+v", rfail)
	}
	if rfail.Cycle != sfail.Cycle {
		t.Fatalf("replay is not cycle-identical: %d vs %d", rfail.Cycle, sfail.Cycle)
	}
}

func TestLitmusRace2Fixed(t *testing.T) {
	fail, st := RunScript(race2Script(false))
	if fail != nil {
		t.Fatalf("fixed-L2 litmus failed: %s (cycle %d)", fail.Message, fail.Cycle)
	}
	// The whole point of the script is to traverse the race branch: the
	// RootRelease data must have arrived for an already-evicted line.
	if st.RootReleaseRaces == 0 {
		t.Fatalf("litmus did not reach the RootRelease-vs-eviction race window: %+v", st)
	}
}

func TestLitmusRace2Mutation(t *testing.T) {
	s := race2Script(true)
	fail, st := RunScript(s)
	if fail == nil {
		t.Fatal("dropping the raced RootRelease writeback did not fire the scoreboard")
	}
	if fail.Kind != "violation" || fail.Violation == nil || fail.Violation.Kind != "durability" {
		t.Fatalf("expected a durability violation (lost writeback), got: %+v", fail)
	}
	if st.RootReleaseRaces == 0 {
		t.Fatalf("mutation fired without traversing the race window: %+v", st)
	}

	shrunk, _ := ShrinkScript(s, "violation", 200)
	sfail, _ := RunScript(shrunk)
	if sfail == nil || sfail.Kind != "violation" {
		t.Fatalf("shrunk script no longer fails: %+v", sfail)
	}

	path := filepath.Join(t.TempDir(), "race2.tlc.json")
	if err := WriteRepro(path, Repro{Script: shrunk, Failure: sfail}); err != nil {
		t.Fatal(err)
	}
	rep, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	rfail, _ := RunScript(rep.Script)
	if rfail == nil || rfail.Kind != "violation" || rfail.Violation.Kind != "durability" {
		t.Fatalf("replayed artifact does not reproduce the violation: %+v", rfail)
	}
}
