package skipit_test

import (
	"fmt"

	"skipit"
)

// The canonical durability chain of Fig. 5(c): a store becomes durable once
// a writeback of its line and a subsequent fence have completed.
func Example_durability() {
	sys := skipit.NewSystem(1)
	prog := skipit.NewProgram().
		Store(0x1000, 42).
		CboClean(0x1000).
		Fence().
		Build()
	if _, err := sys.Run([]*skipit.Program{prog}, 1_000_000); err != nil {
		panic(err)
	}
	sys.Crash(false) // power loss: caches gone, NVMM survives
	fmt.Println(skipit.NVMMValue(sys, 0x1000))
	// Output: 42
}

// Skip It drops redundant writebacks of persisted lines in the L1 (§6.1):
// ten redundant CBO.CLEANs produce a single RootRelease to the L2.
func Example_skipIt() {
	sys := skipit.NewSystem(1)
	b := skipit.NewProgram().Store(0x1000, 1).CboClean(0x1000).Fence()
	for i := 0; i < 10; i++ {
		b.CboClean(0x1000)
	}
	b.Fence()
	if _, err := sys.Run([]*skipit.Program{b.Build()}, 1_000_000); err != nil {
		panic(err)
	}
	st := sys.L1s[0].FlushUnit().Stats()
	fmt.Printf("dropped=%d rootreleases=%d\n", st.SkipDropped, st.RootReleases)
	// Output: dropped=10 rootreleases=1
}

// The behavioral layer runs real lock-free data structures over a simulated
// cache hierarchy with virtual per-thread clocks (§7.4).
func Example_persistentSet() {
	h := skipit.NewHierarchy(1)
	alloc := skipit.NewAllocator(1 << 20)
	env := &skipit.PersistEnv{Pol: skipit.NewSkipItPolicy(h), Mode: skipit.Automatic}
	set := skipit.NewBST(env, alloc)

	set.Insert(0, 7)
	fmt.Println(set.Contains(0, 7), set.Contains(0, 8), set.Delete(0, 7), set.Contains(0, 7))
	fmt.Println(h.Clock(0) > 0) // every access charged virtual cycles
	// Output:
	// true false true false
	// true
}

// Tracing records a cache line's life story through the hierarchy.
func Example_tracing() {
	sys := skipit.NewSystem(1)
	ring := skipit.NewTraceRing(128)
	sys.SetTracer(ring)
	prog := skipit.NewProgram().Store(0x1000, 1).CboFlush(0x1000).Fence().Build()
	if _, err := sys.Run([]*skipit.Program{prog}, 1_000_000); err != nil {
		panic(err)
	}
	for _, e := range ring.ForAddr(0x1000) {
		fmt.Println(e.Source, e.Kind)
	}
	// Output:
	// l1[0] store-miss
	// l1[0] acquire
	// l2 grant
	// l1[0] grant
	// l1[0] grant-ack
	// flush[0] cbo-enqueue
	// flush[0] fshr-alloc
	// flush[0] root-release
	// l2 root-release
	// flush[0] fshr-ack
}
