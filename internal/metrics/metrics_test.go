package metrics

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("l1[0]", "loads")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Get-or-create returns the same instrument.
	if r.Counter("l1[0]", "loads") != c {
		t.Fatal("second Counter call returned a different instance")
	}
	if got := r.CounterValue("l1[0].loads"); got != 5 {
		t.Fatalf("CounterValue = %d, want 5", got)
	}
	if got := r.CounterValue("no.such"); got != 0 {
		t.Fatalf("absent CounterValue = %d, want 0", got)
	}

	g := r.Gauge("l2", "mshr_occupancy")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("flush[0]", "latency", []uint64{10, 100, 1000})
	for i := 0; i < 90; i++ {
		h.Observe(5) // bucket <=10
	}
	for i := 0; i < 9; i++ {
		h.Observe(50) // bucket <=100
	}
	h.Observe(5000) // overflow

	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if got := h.Quantile(0.50); got != 10 {
		t.Fatalf("p50 = %v, want 10 (bucket bound)", got)
	}
	if got := h.Quantile(0.95); got != 100 {
		t.Fatalf("p95 = %v, want 100", got)
	}
	if got := h.Quantile(1.0); got != 5000 {
		t.Fatalf("p100 = %v, want observed max 5000", got)
	}
	s := h.Snapshot()
	if s.Min != 5 || s.Max != 5000 {
		t.Fatalf("min/max = %d/%d, want 5/5000", s.Min, s.Max)
	}
	if len(s.Buckets) != len(s.Bounds)+1 {
		t.Fatalf("buckets = %d for %d bounds", len(s.Buckets), len(s.Bounds))
	}
	if s.Buckets[0] != 90 || s.Buckets[1] != 9 || s.Buckets[3] != 1 {
		t.Fatalf("bucket counts = %v", s.Buckets)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := newHistogram(nil)
	if h.Quantile(0.99) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	s := h.Snapshot()
	if s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

// TestConcurrentEmit exercises the registry from many goroutines under the
// race detector: counters, gauges, histograms, and snapshot reads all racing.
func TestConcurrentEmit(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("l1[0]", "loads")
			g := r.Gauge("l2", "depth")
			h := r.Histogram("flush[0]", "latency", nil)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(uint64(i % 512))
				if i%100 == 0 {
					_ = r.Snapshot(int64(i))
					_ = r.CounterValue("l1[0].loads")
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.CounterValue("l1[0].loads"); got != workers*perWorker {
		t.Fatalf("loads = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("flush[0]", "latency", nil).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestSamplerSeriesAndDeltas(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mem", "writes")
	s := NewSampler(r, 10, "mem.writes")
	for now := int64(0); now <= 30; now++ {
		if now > 0 && now <= 25 {
			c.Inc() // 1 write per cycle for cycles 1..25
		}
		s.Tick(now)
	}
	series := s.Series()
	if len(series) != 1 {
		t.Fatalf("series = %d, want 1", len(series))
	}
	sr := series[0]
	wantCycles := []int64{0, 10, 20, 30}
	wantValues := []uint64{0, 10, 20, 25}
	wantDeltas := []uint64{0, 10, 10, 5}
	if len(sr.Cycles) != len(wantCycles) {
		t.Fatalf("cycles = %v", sr.Cycles)
	}
	for i := range wantCycles {
		if sr.Cycles[i] != wantCycles[i] || sr.Values[i] != wantValues[i] {
			t.Fatalf("sample %d = (%d, %d), want (%d, %d)",
				i, sr.Cycles[i], sr.Values[i], wantCycles[i], wantValues[i])
		}
	}
	for i, d := range sr.Deltas() {
		if d != wantDeltas[i] {
			t.Fatalf("deltas = %v, want %v", sr.Deltas(), wantDeltas)
		}
	}
}

func TestSamplerTracksAllCountersWhenUnconfigured(t *testing.T) {
	r := NewRegistry()
	r.Counter("a", "x").Inc()
	s := NewSampler(r, 5)
	s.Tick(0)
	r.Counter("b", "y").Add(3) // registered after first sample
	s.Tick(5)
	s.Sample(5) // duplicate cycle must not double-record
	got := s.Snapshots()
	if len(got) != 2 {
		t.Fatalf("series count = %d, want 2", len(got))
	}
	for _, sr := range got {
		if sr.Key == "b.y" {
			if len(sr.Cycles) != 1 || sr.Values[0] != 3 {
				t.Fatalf("late counter series = %+v", sr)
			}
		}
		if sr.Key == "a.x" && len(sr.Cycles) != 2 {
			t.Fatalf("a.x sampled %d times, want 2", len(sr.Cycles))
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("l1[0]", "writebacks").Add(42)
	r.Gauge("l2", "listbuffer").Set(3)
	r.Histogram("flush[0]", "latency", nil).Observe(100)
	snap := r.Snapshot(1234)
	snap.Derived["skip_rate"] = 0.5

	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Cycle != 1234 || back.Counters["l1[0].writebacks"] != 42 {
		t.Fatalf("round trip = %+v", back)
	}
	if back.Derived["skip_rate"] != 0.5 {
		t.Fatalf("derived lost: %+v", back.Derived)
	}
	if back.Histograms["flush[0].latency"].Count != 1 {
		t.Fatalf("histogram lost: %+v", back.Histograms)
	}
}

// TestKeyValidation pins the registration-time guard: any component or name
// that could not be rendered as a legal Prometheus series (see prom.go and
// the skipit-vet metricname analyzer) must panic at the instrument's creation
// site, not surface later as a scrape error.
func TestKeyValidation(t *testing.T) {
	valid := [][2]string{
		{"l1[0]", "writebacks"},
		{"l2", "listbuffer.depth"},
		{"flush[12]", "latency"},
		{"mem", "read_hits"},
	}
	for _, kv := range valid {
		r := NewRegistry()
		r.Counter(kv[0], kv[1])             //skipit:ignore metricname validation test exercises the runtime guard with table-driven keys
		r.Gauge(kv[0], kv[1]+".g")          //skipit:ignore metricname validation test exercises the runtime guard with table-driven keys
		r.Histogram(kv[0], kv[1]+".h", nil) //skipit:ignore metricname validation test exercises the runtime guard with table-driven keys
	}

	invalid := [][2]string{
		{"L1", "writebacks"},     // uppercase component
		{"l1[x]", "writebacks"},  // non-numeric instance
		{"l1[0]x", "writebacks"}, // trailing junk after instance
		{"", "writebacks"},       // empty component
		{"l1[0]", "Writebacks"},  // uppercase name
		{"l1[0]", "foo-bar"},     // dash in name
		{"l1[0]", ".loads"},      // leading dot
		{"l1[0]", "loads."},      // trailing dot
		{"l1[0]", ""},            // empty name
	}
	mustPanic := func(component, name string, create func(*Registry)) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("component=%q name=%q: expected panic, got none", component, name)
			}
		}()
		create(NewRegistry())
	}
	for _, kv := range invalid {
		component, name := kv[0], kv[1]
		mustPanic(component, name, func(r *Registry) { r.Counter(component, name) })        //skipit:ignore metricname validation test feeds deliberately bad keys
		mustPanic(component, name, func(r *Registry) { r.Gauge(component, name) })          //skipit:ignore metricname validation test feeds deliberately bad keys
		mustPanic(component, name, func(r *Registry) { r.Histogram(component, name, nil) }) //skipit:ignore metricname validation test feeds deliberately bad keys
	}

	// The guard runs only on the create branch: a steady-state lookup of an
	// existing instrument must not re-validate (hot-path cost is a map hit).
	r := NewRegistry()
	c := r.Counter("l1[0]", "loads")
	if r.Counter("l1[0]", "loads") != c {
		t.Fatal("lookup created a new instrument")
	}
}
