// Package skipit is a software reproduction of "Skip It: Take Control of
// Your Cache!" (Anand, Friedman, Giardino, Alonso — ASPLOS 2024): a
// cycle-level simulator of the paper's SonicBOOM-based SoC with
// user-controlled cache writebacks (CBO.CLEAN / CBO.FLUSH), the flush unit
// microarchitecture of §5, and the Skip It redundant-writeback eliminator of
// §6 — plus the software persistence substrate (lock-free data structures
// and flush-elision baselines) its evaluation compares against.
//
// The package is a facade: it re-exports the stable API surface of the
// internal packages via type aliases, so downstream users can drive
// everything through import "skipit".
//
// # Quick start
//
//	sys := skipit.NewSystem(1)
//	prog := skipit.NewProgram().
//		Store(0x1000, 42).
//		CboClean(0x1000).
//		Fence().
//		Build()
//	cycles, err := sys.Run([]*skipit.Program{prog}, 1_000_000)
//	// skipit.NVMMValue(sys, 0x1000) == 42: the store is durable.
//
// Three layers are exposed:
//
//   - The cycle-accurate SoC (System, Program): BOOM-style cores, L1 data
//     caches embedding the flush unit, a shared inclusive L2, DRAM/NVMM.
//     Used for the §7.2/§7.3 microbenchmarks and crash-consistency work.
//   - The behavioral persistence layer (Hierarchy, policies, sets): real
//     lock-free data structures over a fast cache model with virtual time.
//     Used for the §7.4 throughput study.
//   - The benchmark harnesses (Fig9 … Fig16) regenerating every figure of
//     the paper's evaluation; see EXPERIMENTS.md.
package skipit

import (
	"skipit/internal/boom"
	"skipit/internal/commercial"
	"skipit/internal/ds"
	"skipit/internal/isa"
	"skipit/internal/l1"
	"skipit/internal/l2"
	"skipit/internal/mem"
	"skipit/internal/memsim"
	"skipit/internal/persist"
	"skipit/internal/sim"
	"skipit/internal/trace"
)

// --- Cycle-accurate SoC layer ---

// System is the assembled SoC: N cores with private L1s, a shared inclusive
// L2, and the DRAM/NVMM controller. See sim.System for methods.
type System = sim.System

// SystemConfig parameterizes the SoC.
type SystemConfig = sim.Config

// Program is an instruction sequence for one hardware thread.
type Program = isa.Program

// ProgramBuilder assembles programs fluently.
type ProgramBuilder = isa.Builder

// CoreConfig parameterizes the BOOM-style core model.
type CoreConfig = boom.Config

// L1Config parameterizes the L1 data cache (including the flush unit via
// its Flush field).
type L1Config = l1.Config

// L2Config parameterizes the inclusive L2.
type L2Config = l2.Config

// MemConfig parameterizes the DRAM/NVMM controller.
type MemConfig = mem.Config

// NewSystem assembles a numCores-core SoC with the paper's configuration:
// 32 KiB 8-way L1s with the §5 flush unit (Skip It enabled), a shared
// 512 KiB inclusive L2, and a 16-byte system bus.
func NewSystem(numCores int) *System {
	return sim.New(sim.DefaultConfig(numCores))
}

// NewSystemWithConfig assembles a custom SoC; start from DefaultSystemConfig
// and adjust (e.g. cfg.L1.Flush.SkipIt = false for the naive baseline).
func NewSystemWithConfig(cfg SystemConfig) *System {
	return sim.New(cfg)
}

// DefaultSystemConfig returns the paper's SoC configuration for numCores
// cores.
func DefaultSystemConfig(numCores int) SystemConfig {
	return sim.DefaultConfig(numCores)
}

// NewProgram returns an empty program builder.
func NewProgram() *ProgramBuilder { return isa.NewBuilder() }

// NVMMValue reads the durable 8-byte value at addr from the system's
// persistence domain — what survives a crash.
func NVMMValue(s *System, addr uint64) uint64 {
	return s.Mem.PeekUint64(addr)
}

// --- Behavioral persistence layer (§7.4) ---

// Hierarchy is the fast tag-only cache model under the software persistence
// study, with one virtual clock per thread.
type Hierarchy = memsim.Hierarchy

// HierarchyConfig parameterizes the behavioral model.
type HierarchyConfig = memsim.Config

// Allocator hands out simulated persistent-heap addresses.
type Allocator = memsim.Allocator

// Policy is a flush-elision scheme (plain, FliT, link-and-persist, Skip It).
type Policy = persist.Policy

// PersistEnv couples a Policy with a persistence algorithm (Mode).
type PersistEnv = persist.Env

// PersistMode selects the persistence algorithm: Automatic, NVTraverse or
// Manual.
type PersistMode = persist.Mode

// The three persistence algorithms of §7.4.
const (
	Automatic  = persist.Automatic
	NVTraverse = persist.NVTraverse
	Manual     = persist.Manual
)

// Set is the concurrent-set interface the four lock-free structures expose.
type Set = ds.Set

// NewHierarchy builds the behavioral cache model for the given thread count
// with the paper's platform parameters.
func NewHierarchy(threads int) *Hierarchy {
	return memsim.New(memsim.DefaultConfig(threads))
}

// NewAllocator starts a simulated persistent heap at base.
func NewAllocator(base uint64) *Allocator { return memsim.NewAllocator(base) }

// NewPlainPolicy returns the no-elision baseline over naive hardware.
func NewPlainPolicy(h *Hierarchy) Policy { return persist.NewPlain(h, false) }

// NewSkipItPolicy returns plain software over Skip It hardware: redundant
// writebacks are dropped in the L1 (§6).
func NewSkipItPolicy(h *Hierarchy) Policy { return persist.NewSkipIt(h, false) }

// NewFliTAdjacentPolicy returns FliT with per-object counters.
func NewFliTAdjacentPolicy(h *Hierarchy) Policy {
	return persist.NewFliT(h, true, 0, 0, false)
}

// NewFliTHashPolicy returns FliT with a counter hash table of the given
// entry count placed at tableBase in the simulated heap.
func NewFliTHashPolicy(h *Hierarchy, entries, tableBase uint64) Policy {
	return persist.NewFliT(h, false, entries, tableBase, false)
}

// NewLinkAndPersistPolicy returns the link-and-persist scheme (bit 63 of
// each word marks unpersisted data).
func NewLinkAndPersistPolicy(h *Hierarchy) Policy {
	return persist.NewLinkAndPersist(h, false)
}

// NewLinkedList builds the lock-free sorted linked list (Harris).
func NewLinkedList(env *PersistEnv, alloc *Allocator) Set { return ds.NewLinkedList(env, alloc) }

// NewHashTable builds the lock-free hash table (power-of-two buckets of
// Harris lists).
func NewHashTable(env *PersistEnv, alloc *Allocator, buckets int) Set {
	return ds.NewHashTable(env, alloc, buckets)
}

// NewBST builds the lock-free external BST (Natarajan–Mittal style).
func NewBST(env *PersistEnv, alloc *Allocator) Set { return ds.NewBST(env, alloc) }

// NewSkiplist builds the lock-free skiplist.
func NewSkiplist(env *PersistEnv, alloc *Allocator) Set { return ds.NewSkiplist(env, alloc) }

// --- Tracing ---

// Tracer receives simulator events; attach with System.SetTracer.
type Tracer = trace.Tracer

// TraceEvent is one timestamped simulator occurrence.
type TraceEvent = trace.Event

// TraceRing is a bounded in-memory tracer keeping the most recent events.
type TraceRing = trace.Ring

// NewTraceRing returns a tracer retaining the last n events.
func NewTraceRing(n int) *TraceRing { return trace.NewRing(n) }

// --- Commercial comparison models (§7.3) ---

// CommercialModel is one writeback instruction on one commercial CPU.
type CommercialModel = commercial.Model

// CommercialModels returns the §7.3 instruction set (Intel/AMD/Graviton3).
func CommercialModels() []CommercialModel { return commercial.Models() }
