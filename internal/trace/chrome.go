package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// ChromeTracer renders simulator events in the Chrome trace_event JSON
// format, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. One
// simulated cycle maps to one microsecond of trace time, so the timeline
// ruler reads directly in cycles.
//
// Each component instance (Event.Source) becomes a named thread. The flush
// unit's fshr-alloc/fshr-ack events become asynchronous begin/end pairs
// keyed by line address, so every in-flight flush renders as a span whose
// length is its latency; all other events render as thread-scoped instants.
//
// Events are buffered in memory; Close writes the whole document. The
// tracer is safe for concurrent Emit.
type ChromeTracer struct {
	mu     sync.Mutex
	w      io.Writer
	events []chromeEvent
	tids   map[string]int
	order  []string // sources in first-seen order, for stable thread ids
}

// chromeEvent is one trace_event record. Field names follow the format
// specification; empty optional fields are omitted.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// NewChromeTracer returns a tracer that writes its document to w on Close.
func NewChromeTracer(w io.Writer) *ChromeTracer {
	return &ChromeTracer{w: w, tids: make(map[string]int)}
}

// Emit buffers one event.
func (t *ChromeTracer) Emit(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tid, ok := t.tids[e.Source]
	if !ok {
		tid = len(t.order)
		t.tids[e.Source] = tid
		t.order = append(t.order, e.Source)
	}
	ce := chromeEvent{Name: e.Kind, TS: e.Cycle, TID: tid}
	if e.Detail != "" {
		ce.Args = map[string]any{"detail": e.Detail}
	}
	if e.HasAddr {
		if ce.Args == nil {
			ce.Args = map[string]any{}
		}
		ce.Args["addr"] = fmt.Sprintf("%#x", e.Addr)
	}
	switch e.Kind {
	case "fshr-alloc":
		ce.Phase = "b"
		ce.Cat = "flush"
		ce.Name = "flush"
		ce.ID = fmt.Sprintf("%#x", e.Addr)
	case "fshr-ack":
		ce.Phase = "e"
		ce.Cat = "flush"
		ce.Name = "flush"
		ce.ID = fmt.Sprintf("%#x", e.Addr)
	default:
		ce.Phase = "i"
		ce.Scope = "t"
	}
	t.events = append(t.events, ce)
}

// Close writes the buffered document. The tracer must not be used after.
func (t *ChromeTracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	doc := chromeDoc{DisplayTimeUnit: "ms"}
	// Thread-name metadata first, so viewers label rows by component.
	for tid, src := range t.order {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			TID:   tid,
			Args:  map[string]any{"name": src},
		})
	}
	doc.TraceEvents = append(doc.TraceEvents, t.events...)
	enc := json.NewEncoder(t.w)
	if err := enc.Encode(doc); err != nil {
		return err
	}
	if c, ok := t.w.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
