// Package determinism implements the skipit-vet analyzer that statically
// enforces the simulator's reproducibility contract: identical inputs must
// produce byte-identical results (the property the sweep result store, the
// chaos replay artifacts and the fast-forward A/B gate all stand on).
//
// Within the simulator packages (configurable with -pkgs; defaults to the
// cycle-accurate core: boom, l1, l2, mem, tilelink, sim, memsim, linepool,
// chaos) it reports:
//
//   - wall-clock reads: time.Now / time.Since / time.Until. Host time must
//     never influence simulated state; the one legitimate use (host
//     throughput telemetry) carries a //skipit:ignore waiver.
//   - global math/rand and math/rand/v2 top-level functions (rand.Intn,
//     rand.Shuffle, ...). The global source is seeded from runtime entropy
//     and shared across goroutines; deterministic code derives a private
//     *rand.Rand from an explicit seed (rand.New(rand.NewSource(seed))).
//   - goroutine launches. The cycle loop is single-threaded by design;
//     host-side concurrency belongs in internal/sweep. (Skipped in _test.go
//     files, where harness goroutines are routine.) The one sanctioned
//     exception is the PDES scheduler (-schedulers; defaults to
//     internal/pdes): there, a goroutine may be waived line by line with a
//     //skipit:parallel-scheduler <reason> directive, trailing on the go
//     statement or alone on the line above it. The directive is inert in
//     every other package — annotating a goroutine in a component package
//     like internal/l1 reports both the goroutine and the misplaced
//     directive, so the waiver can never creep past the scheduler boundary.
//   - order-sensitive map iteration: a `range` over a map whose body writes
//     to the ranged map itself, appends to an outer slice with no sort
//     following the loop, sends on a channel, accumulates floats or strings,
//     or writes to an io.Writer/strings.Builder. Map iteration order is
//     deliberately randomized by the runtime, so each of these effects can
//     differ run to run.
//
// Service-tier packages (-service; defaults to sweepd, introspect, sweep) are
// always exempt, even when a fragment in -pkgs would match them: the sweep
// coordinator, its workers and the introspection server live on the host
// side of the determinism boundary, where wall clocks (lease deadlines,
// heartbeats, backoff timers) and goroutines are the point, not a bug. The
// exclusion wins over the inclusion so widening -pkgs can never silently
// drag a service package under simulator rules — the boundary is the
// simulator/service split, not the flag order.
package determinism

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"skipit/internal/analysis/suppress"
)

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "report wall-clock reads, global rand, goroutines, and order-sensitive map iteration in simulator packages\n\n" +
		"The sweep result store, chaos replay artifacts and fast-forward A/B gate all require byte-identical reruns; " +
		"this analyzer rejects the constructs that silently break that property.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// pkgs is the comma-separated list of import-path fragments that mark a
// package as part of the deterministic simulator core; see matches for the
// fragment rules.
var pkgs = "internal/boom,internal/l1,internal/l2,internal/mem,internal/tilelink,internal/sim,internal/memsim,internal/linepool,internal/chaos,internal/detrand,internal/tlctest,internal/pdes"

// service is the comma-separated list of import-path fragments that mark a
// package as host-side service code (the sweepd coordinator/worker fleet,
// the introspection server, the sweep runner). Matching packages are exempt
// from the simulator rules regardless of -pkgs: the exclusion always wins.
var service = "internal/sweepd,internal/introspect,internal/sweep"

// schedulers is the comma-separated list of import-path fragments naming the
// PDES scheduler packages — the only place a //skipit:parallel-scheduler
// directive can waive the goroutine ban. The scheduler still lives under
// the simulator rules for everything else (wall clocks, global rand, map
// ranges); the waiver is per-line and goroutine-only.
var schedulers = "internal/pdes"

func init() {
	Analyzer.Flags.StringVar(&pkgs, "pkgs", pkgs, "comma-separated import-path fragments of deterministic simulator packages")
	Analyzer.Flags.StringVar(&service, "service", service, "comma-separated import-path fragments of host-side service packages, always exempt (wins over -pkgs)")
	Analyzer.Flags.StringVar(&schedulers, "schedulers", schedulers, "comma-separated import-path fragments of PDES scheduler packages where //skipit:parallel-scheduler may waive goroutines")
}

// matches reports whether path matches any fragment of the comma-separated
// list: an exact match, a trailing path segment, or an interior path segment
// (so fixture trees mirroring the real layout under testdata/src/ are
// matched too). Fragment boundaries are whole segments — "internal/sweep"
// does not match "internal/sweepd".
func matches(path, list string) bool {
	for _, frag := range strings.Split(list, ",") {
		frag = strings.TrimSpace(frag)
		if frag == "" {
			continue
		}
		if path == frag || strings.HasSuffix(path, "/"+frag) || strings.Contains(path, "/"+frag+"/") {
			return true
		}
	}
	return false
}

// InScope reports whether path is held to the simulator rules: listed in
// -pkgs and not excluded as a -service package. Exported for detflow, which
// shares the determinism analyzer's scope definition (including any
// -determinism.pkgs/-determinism.service overrides) so the two rule sets can
// never disagree about where the simulator/service boundary lies.
func InScope(path string) bool {
	return matches(path, pkgs) && !matches(path, service)
}

// wallClockFuncs are the time package functions that read the host clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededConstructors are the math/rand functions that are fine to call:
// they build explicitly seeded sources rather than consuming the global one.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

func run(pass *analysis.Pass) (interface{}, error) {
	suppress.Apply(pass)
	if !InScope(pass.Pkg.Path()) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	waived := schedulerWaivers(pass, pass.Report)

	isTestFile := func(pos token.Pos) bool {
		return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
	}

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil), (*ast.GoStmt)(nil), (*ast.RangeStmt)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.GoStmt:
			if p := pass.Fset.Position(n.Pos()); !isTestFile(n.Pos()) && !waived[fileLine{p.Filename, p.Line}] {
				pass.Report(analysis.Diagnostic{
					Pos:     n.Pos(),
					Message: "goroutine launched in a simulator package: the cycle loop is single-threaded; host-side concurrency belongs in internal/sweep",
				})
			}
		case *ast.RangeStmt:
			MapRangeIssues(pass, n, func(pos token.Pos, what string) {
				pass.Report(analysis.Diagnostic{Pos: pos, Message: "map iteration order is randomized: " + what})
			})
		}
	})
	return nil, nil
}

// schedulerPrefix is the goroutine-waiver directive marker. Like //go:
// directives it must start the comment with no space after the slashes.
const schedulerPrefix = "//skipit:parallel-scheduler"

// fileLine keys a waived source line.
type fileLine struct {
	file string
	line int
}

// SchedulerWaived returns a predicate for positions whose go statements are
// waived by a well-formed //skipit:parallel-scheduler directive in a
// -schedulers package. detflow uses it to keep sanctioned scheduler
// goroutines out of the taint seed; malformed directives are NOT re-reported
// here (that is the determinism analyzer's job).
func SchedulerWaived(pass *analysis.Pass) func(token.Pos) bool {
	waived := schedulerWaivers(pass, func(analysis.Diagnostic) {})
	return func(pos token.Pos) bool {
		p := pass.Fset.Position(pos)
		return waived[fileLine{p.Filename, p.Line}]
	}
}

// schedulerWaivers collects the //skipit:parallel-scheduler directives of the
// package and returns the lines whose go statements they waive. Only
// well-formed directives (with a reason) in a -schedulers package waive
// anything; a reasonless directive and a directive outside the scheduler
// packages are reported through report (the determinism run passes
// pass.Report; SchedulerWaived passes a no-op so the findings are not
// duplicated), and the goroutine finding they sit on surfaces as usual. A
// trailing directive covers its own line, a standalone one the line below —
// the waiver is per-line and goroutine-only, mirroring //skipit:ignore.
func schedulerWaivers(pass *analysis.Pass, report func(analysis.Diagnostic)) map[fileLine]bool {
	inScheduler := matches(pass.Pkg.Path(), schedulers)
	waived := make(map[fileLine]bool)
	for _, f := range pass.Files {
		// Classify each directive as trailing (code shares its line) or
		// standalone, the same way suppress does.
		codeOn := make(map[int]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil || !n.Pos().IsValid() {
				return true
			}
			if _, ok := n.(*ast.Comment); ok {
				return true
			}
			if _, ok := n.(*ast.CommentGroup); ok {
				return true
			}
			codeOn[pass.Fset.Position(n.Pos()).Line] = true
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				reason, ok := strings.CutPrefix(c.Text, schedulerPrefix)
				if !ok || (reason != "" && reason[0] != ' ' && reason[0] != '\t') {
					continue
				}
				switch {
				case strings.TrimSpace(reason) == "":
					report(analysis.Diagnostic{
						Pos:     c.Pos(),
						Message: "skipit:parallel-scheduler directive needs a reason: //skipit:parallel-scheduler <why this goroutine is part of the deterministic scheduler>",
					})
				case !inScheduler:
					report(analysis.Diagnostic{
						Pos:     c.Pos(),
						Message: "skipit:parallel-scheduler has no effect outside scheduler packages (-schedulers): component packages stay single-threaded",
					})
				default:
					pos := pass.Fset.Position(c.Pos())
					if codeOn[pos.Line] {
						waived[fileLine{pos.Filename, pos.Line}] = true
					} else {
						waived[fileLine{pos.Filename, pos.Line + 1}] = true
					}
				}
			}
		}
	}
	return waived
}

// checkCall flags wall-clock reads and global-rand calls.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	src, ok := NondetCall(pass.TypesInfo, call)
	if !ok {
		return
	}
	if strings.HasPrefix(src, "time.") {
		pass.Report(analysis.Diagnostic{
			Pos:     call.Pos(),
			Message: fmt.Sprintf("wall-clock read %s in a simulator package: host time must never influence simulated state (use the cycle clock)", src),
		})
	} else {
		pass.Report(analysis.Diagnostic{
			Pos:     call.Pos(),
			Message: fmt.Sprintf("global %s in a simulator package: the shared source is unseeded; derive a private generator with rand.New(rand.NewSource(seed))", src),
		})
	}
}

// NondetCall reports whether call is a direct nondeterminism source — a
// wall-clock read (time.Now/Since/Until) or a global math/rand function —
// returning a short description like "time.Now" or "rand.Intn". Methods on
// *rand.Rand or time.Time are the approved deterministic idiom and do not
// match. Shared with detflow, which seeds its interprocedural taint from the
// same definition of "source".
func NondetCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	// Only package-level functions: methods on *rand.Rand or time.Time are
	// the approved deterministic idiom.
	if fn.Type().(*types.Signature).Recv() != nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			return "time." + fn.Name(), true
		}
	case "math/rand", "math/rand/v2":
		if !seededConstructors[fn.Name()] {
			return "rand." + fn.Name(), true
		}
	}
	return "", false
}

// MapRangeIssues invokes emit for every order-sensitive effect inside a
// range over a map (writes to the ranged map, outer-slice appends with no
// sort, channel sends, float/string accumulation, writer output). The
// determinism run reports them directly; detflow seeds taint from them.
func MapRangeIssues(pass *analysis.Pass, rng *ast.RangeStmt, emit func(token.Pos, string)) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	rangedObj := exprObject(pass, rng.X)
	report := emit

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			report(n.Pos(), "channel send inside a map range makes message order nondeterministic")
		case *ast.IncDecStmt:
			// ++/-- on ints is commutative; nothing to report.
		case *ast.AssignStmt:
			checkRangeAssign(pass, rng, rangedObj, n, report)
		case *ast.CallExpr:
			checkRangeCall(pass, rng, n, report)
		}
		return true
	})
}

// checkRangeAssign inspects one assignment inside a map-range body.
func checkRangeAssign(pass *analysis.Pass, rng *ast.RangeStmt, rangedObj types.Object, as *ast.AssignStmt, report func(token.Pos, string)) {
	for i, lhs := range as.Lhs {
		// Writing to the map being ranged: the spec leaves it unspecified
		// whether entries added during iteration are visited.
		if idx, ok := lhs.(*ast.IndexExpr); ok {
			if obj := exprObject(pass, idx.X); obj != nil && obj == rangedObj {
				report(as.Pos(), "writing to the map being ranged over (new entries may or may not be visited this iteration)")
				continue
			}
		}
		// Order-sensitive accumulation into variables declared outside the
		// loop: float/string += (non-commutative or order-revealing).
		if as.Tok == token.ADD_ASSIGN || as.Tok == token.SUB_ASSIGN || as.Tok == token.MUL_ASSIGN || as.Tok == token.QUO_ASSIGN {
			obj := exprObject(pass, lhs)
			if obj != nil && declaredOutside(obj, rng) {
				switch b := pass.TypesInfo.TypeOf(lhs).Underlying().(type) {
				case *types.Basic:
					if b.Info()&types.IsFloat != 0 {
						report(as.Pos(), "float accumulation across map entries is order-sensitive (rounding differs per visit order)")
					} else if b.Info()&types.IsString != 0 {
						report(as.Pos(), "string concatenation across map entries depends on visit order")
					}
				}
			}
		}
		// x = append(x, ...) growing an outer slice: element order follows
		// visit order unless the slice is sorted afterwards.
		if i < len(as.Rhs) {
			if call, ok := as.Rhs[i].(*ast.CallExpr); ok && isBuiltin(pass, call.Fun, "append") {
				obj := exprObject(pass, lhs)
				if obj != nil && declaredOutside(obj, rng) && !sortedAfter(pass, rng, obj) {
					report(as.Pos(), "appending to an outer slice in map-visit order with no sort after the loop")
				}
			}
		}
	}
}

// checkRangeCall flags writes to writers/builders from inside a map range.
func checkRangeCall(pass *analysis.Pass, rng *ast.RangeStmt, call *ast.CallExpr, report func(token.Pos, string)) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if fn.Pkg().Path() == "fmt" && (strings.HasPrefix(fn.Name(), "Fprint") || strings.HasPrefix(fn.Name(), "Print")) {
		report(call.Pos(), "printing per map entry emits output in visit order")
		return
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil && strings.HasPrefix(fn.Name(), "Write") {
		if robj := exprObject(pass, sel.X); robj != nil && declaredOutside(robj, rng) {
			report(call.Pos(), "writing to an outer writer per map entry emits output in visit order")
		}
	}
}

// sortedAfter reports whether a statement after rng in its enclosing block
// sorts the slice held by obj (sort.* or slices.Sort*).
func sortedAfter(pass *analysis.Pass, rng *ast.RangeStmt, obj types.Object) bool {
	block := enclosingBlock(pass, rng)
	if block == nil {
		return false
	}
	after := false
	for _, stmt := range block.List {
		if stmt == ast.Stmt(rng) {
			after = true
			continue
		}
		if !after {
			continue
		}
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fnObj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fnObj.Pkg() == nil {
				return true
			}
			pkg := fnObj.Pkg().Path()
			if pkg != "sort" && pkg != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if exprObject(pass, arg) == obj {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// enclosingBlock finds the innermost block statement containing n.
func enclosingBlock(pass *analysis.Pass, n ast.Node) *ast.BlockStmt {
	for _, f := range pass.Files {
		if f.Pos() <= n.Pos() && n.End() <= f.End() {
			var best *ast.BlockStmt
			ast.Inspect(f, func(m ast.Node) bool {
				if m == nil {
					return false
				}
				if m.Pos() > n.Pos() || n.End() > m.End() {
					return false
				}
				if b, ok := m.(*ast.BlockStmt); ok && m != n {
					best = b
				}
				return true
			})
			return best
		}
	}
	return nil
}

// exprObject resolves an expression to the variable object it denotes
// (ident or selector chain tail), or nil.
func exprObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.TypesInfo.ObjectOf(e)
	case *ast.SelectorExpr:
		return pass.TypesInfo.ObjectOf(e.Sel)
	}
	return nil
}

// declaredOutside reports whether obj's declaration lies outside rng's body
// (struct fields and package-level vars count as outside).
func declaredOutside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Body.Pos() || obj.Pos() > rng.Body.End()
}

// isBuiltin reports whether fun denotes the named builtin.
func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}
