// Timing channel mitigation (§1, §8): cache state left behind by a victim
// leaks which lines it touched — a flush+reload-style observation. Explicit
// flushes at the security boundary (as FaSe/MI6-style defenses do, with
// exactly the instructions this paper implements) close the channel.
//
// The example also demonstrates a real interaction the paper does not
// discuss: §6.1 drops a CBO.FLUSH that hits a clean line with the skip bit
// set — *without invalidating it*. That is sound for persistence (the data
// is already durable) but defeats flush-based timing-channel defenses: the
// victim's read-only footprint stays cached. Security-boundary flushing
// therefore needs Skip It disabled (or a non-droppable flush variant).
package main

import (
	"fmt"
	"log"

	"skipit"
)

const (
	line0 = 0x10000 // probed line for secret=0
	line1 = 0x20000 // probed line for secret=1
)

// run executes victim-then-attacker time-shared on one core and returns the
// attacker's probe latencies for both lines.
func run(secret int, mitigate, skipIt bool) (lat0, lat1 int64) {
	cfg := skipit.DefaultSystemConfig(1)
	cfg.L1.Flush.SkipIt = skipIt
	sys := skipit.NewSystemWithConfig(cfg)
	b := skipit.NewProgram()

	// Victim: secret-dependent access.
	if secret == 0 {
		b.Load(line0)
	} else {
		b.Load(line1)
	}
	b.Fence()

	// Security boundary (context switch): the OS flushes the shared
	// footprint before the attacker runs.
	if mitigate {
		b.CboFlush(line0).CboFlush(line1).Fence()
	}

	// Attacker: probe both lines and time each load.
	p0 := b.Mark()
	b.Load(line0)
	b.Fence()
	p1 := b.Mark()
	b.Load(line1)
	b.Fence()

	if _, err := sys.Run([]*skipit.Program{b.Build()}, 1_000_000); err != nil {
		log.Fatal(err)
	}
	t0 := sys.Cores[0].Timing(p0)
	t1 := sys.Cores[0].Timing(p1)
	return t0.CompletedAt - t0.IssuedAt, t1.CompletedAt - t1.IssuedAt
}

// guess applies the attacker's decision rule: a clearly faster probe is the
// line the victim touched.
func guess(lat0, lat1 int64) string {
	const margin = 10
	switch {
	case lat0+margin < lat1:
		return "attacker infers secret=0"
	case lat1+margin < lat0:
		return "attacker infers secret=1"
	}
	return "indistinguishable (channel closed)"
}

func show(label string, mitigate, skipIt bool) {
	fmt.Println(label)
	for secret := 0; secret <= 1; secret++ {
		l0, l1 := run(secret, mitigate, skipIt)
		fmt.Printf("  real secret=%d: probe latencies %3d / %3d cycles -> %s\n",
			secret, l0, l1, guess(l0, l1))
	}
}

func main() {
	show("no mitigation (victim state survives the context switch):", false, true)
	show("boundary CBO.FLUSH with Skip It ON — §6.1 drops the flush of the clean victim line, so it stays cached and STILL leaks:", true, true)
	show("boundary CBO.FLUSH with Skip It OFF — the flush really invalidates:", true, false)
}
