// Package l2fix is the shardiso fixture's hub-domain component: its cache
// type is claimed for the hub shard. Core-shard code reaching these methods
// must be reported with a witness chain ending at the field access below.
package l2fix

// HubCache is hub-shard state.
//
//skipit:shard-owned hub
type HubCache struct {
	tags   []uint64
	misses int
}

// Probe reads hub state.
func (c *HubCache) Probe(addr uint64) bool {
	for _, t := range c.tags {
		if t == addr {
			return true
		}
	}
	return false
}

// Fill writes hub state.
func (c *HubCache) Fill(addr uint64) {
	c.tags = append(c.tags, addr)
	c.misses++
}
