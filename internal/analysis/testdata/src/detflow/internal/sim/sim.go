// Package simflow is the detflow fixture's simulator tier. Its import path
// ends in internal/sim, so every call into tainted code must produce a
// finding whose witness chain was imported from the svc package's facts —
// this package never sees svc's function bodies, only its exported facts.
package simflow

import "skipit/internal/analysis/testdata/src/detflow/internal/svc"

// step calls across the package boundary into tainted functions.
func step(m map[string]int) {
	_ = svc.Stamp()  // want `call into nondeterministic code from a simulator package: svc\.Stamp -> svc\.clock \(svc\.go:\d+\) -> time\.Now at svc\.go:\d+`
	_ = svc.Jitter() // want `svc\.Jitter -> rand\.Intn at svc\.go:\d+`
	_ = svc.Keys(m)  // want `svc\.Keys -> order-sensitive map range at svc\.go:\d+`
	svc.Spawn(nil)   // want `svc\.Spawn -> goroutine launch at svc\.go:\d+`
	_ = svc.Sorted(m)
	_ = svc.Seeded(7)
	_ = svc.Waived() // ok: the source is waived at its site, so no fact crosses
}

// localRelay is tainted transitively through its own call into svc: the
// call is a finding here, and the taint continues up to tick below.
func localRelay() int64 {
	return svc.Stamp() // want `svc\.Stamp -> svc\.clock`
}

// tick shows the intra-package hop: the chain now starts at localRelay and
// still bottoms out at the time.Now line two packages away.
func tick() int64 {
	return localRelay() // want `sim\.localRelay -> svc\.Stamp \(sim\.go:\d+\) -> svc\.clock`
}

// audited demonstrates the detflow waiver: the call is certified, the
// finding is suppressed, and audited itself does not become tainted.
func audited() int64 {
	return svc.Stamp() //skipit:ignore detflow fixture: timestamp feeds the run manifest, not simulated state
}

// indirect proves the waiver above stopped propagation: calling audited is
// clean.
func indirect() int64 {
	return audited()
}
