// Package l1fix proves the scheduler waiver cannot creep into component
// packages: its import path ends in internal/l1, which is not in the
// -schedulers list, so even an annotated goroutine is still a finding — and
// the misplaced directive is one too.
package l1fix

func spawn(done chan struct{}) {
	go func() { close(done) }() // want `goroutine launched in a simulator package`

	go func() { <-done }() /* want `goroutine launched in a simulator package` `has no effect outside scheduler packages` */ //skipit:parallel-scheduler prefetch fill off-thread
}
