// Package tilelink models the subset of the TileLink cached (TL-C) protocol
// used by the BOOM L1 data cache and the SiFive inclusive L2: the five
// unidirectional channels A–E, the Acquire/Grant/GrantAck, Probe/ProbeAck and
// Release/ReleaseAck transactions of Fig. 1 in the paper, and the two message
// extensions the paper introduces (RootRelease on C, RootReleaseAck and
// GrantDataDirty on D).
//
// Links account for beat timing: the SonicBOOM system bus is 16 bytes wide, so
// a 64-byte cache line message occupies a channel for four cycles while
// data-less messages occupy it for one.
package tilelink

import "fmt"

// Perm is the permission a client agent holds on a cache line. TileLink names
// the levels after tree positions: a Trunk holds read/write (exclusive)
// permissions, a Branch holds read (possibly shared) permissions, and None
// holds nothing. These correspond to the MESI M/E, S and I states.
type Perm uint8

const (
	PermNone Perm = iota
	PermBranch
	PermTrunk
)

func (p Perm) String() string {
	switch p {
	case PermNone:
		return "None"
	case PermBranch:
		return "Branch"
	case PermTrunk:
		return "Trunk"
	}
	return fmt.Sprintf("Perm(%d)", uint8(p))
}

// CanRead reports whether the permission level allows reading the line.
func (p Perm) CanRead() bool { return p != PermNone }

// CanWrite reports whether the permission level allows writing the line.
func (p Perm) CanWrite() bool { return p == PermTrunk }

// Grow is the permission transition requested by an Acquire message.
type Grow uint8

const (
	GrowNtoB Grow = iota // none -> branch (read)
	GrowNtoT             // none -> trunk (read/write)
	GrowBtoT             // branch -> trunk (upgrade)
)

func (g Grow) String() string {
	switch g {
	case GrowNtoB:
		return "NtoB"
	case GrowNtoT:
		return "NtoT"
	case GrowBtoT:
		return "BtoT"
	}
	return fmt.Sprintf("Grow(%d)", uint8(g)) //skipit:ignore hotalloc Sprintf fallback for unknown grow codes only; named codes return interned strings
}

// From returns the permission level the client must currently hold for the
// grow transition to be legal.
func (g Grow) From() Perm {
	if g == GrowBtoT {
		return PermBranch
	}
	return PermNone
}

// To returns the permission level the client holds after the grant.
func (g Grow) To() Perm {
	if g == GrowNtoB {
		return PermBranch
	}
	return PermTrunk
}

// Cap is the ceiling a Probe or Grant imposes on a client's permissions.
type Cap uint8

const (
	CapToN Cap = iota // demote to None (invalidate)
	CapToB            // demote to Branch (keep a read-only copy)
	CapToT            // grant Trunk
)

func (c Cap) String() string {
	switch c {
	case CapToN:
		return "toN"
	case CapToB:
		return "toB"
	case CapToT:
		return "toT"
	}
	return fmt.Sprintf("Cap(%d)", uint8(c))
}

// Perm returns the permission level the cap corresponds to.
func (c Cap) Perm() Perm {
	switch c {
	case CapToB:
		return PermBranch
	case CapToT:
		return PermTrunk
	}
	return PermNone
}

// Shrink reports a client-side permission downgrade carried by a ProbeAck or
// Release message: the level held before and after.
type Shrink uint8

const (
	ShrinkTtoB Shrink = iota
	ShrinkTtoN
	ShrinkBtoN
	ShrinkTtoT // report: no change, held trunk
	ShrinkBtoB // report: no change, held branch
	ShrinkNtoN // report: no change, held nothing
)

func (s Shrink) String() string {
	switch s {
	case ShrinkTtoB:
		return "TtoB"
	case ShrinkTtoN:
		return "TtoN"
	case ShrinkBtoN:
		return "BtoN"
	case ShrinkTtoT:
		return "TtoT"
	case ShrinkBtoB:
		return "BtoB"
	case ShrinkNtoN:
		return "NtoN"
	}
	return fmt.Sprintf("Shrink(%d)", uint8(s))
}

// From returns the permission held before the downgrade.
func (s Shrink) From() Perm {
	switch s {
	case ShrinkTtoB, ShrinkTtoN, ShrinkTtoT:
		return PermTrunk
	case ShrinkBtoN, ShrinkBtoB:
		return PermBranch
	}
	return PermNone
}

// To returns the permission held after the downgrade.
func (s Shrink) To() Perm {
	switch s {
	case ShrinkTtoB:
		return PermBranch
	case ShrinkTtoT:
		return PermTrunk
	case ShrinkBtoB:
		return PermBranch
	}
	return PermNone
}

// ShrinkFor builds the Shrink parameter for a client moving between the two
// given permission levels. It panics if the transition would be an upgrade,
// which is illegal on channel C.
func ShrinkFor(from, to Perm) Shrink {
	switch {
	case from == PermTrunk && to == PermBranch:
		return ShrinkTtoB
	case from == PermTrunk && to == PermNone:
		return ShrinkTtoN
	case from == PermBranch && to == PermNone:
		return ShrinkBtoN
	case from == PermTrunk && to == PermTrunk:
		return ShrinkTtoT
	case from == PermBranch && to == PermBranch:
		return ShrinkBtoB
	case from == PermNone && to == PermNone:
		return ShrinkNtoN
	}
	panic(fmt.Sprintf("tilelink: illegal shrink %v -> %v", from, to))
}
