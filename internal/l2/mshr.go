package l2

import (
	"fmt"

	"skipit/internal/mem"
	"skipit/internal/tilelink"
	"skipit/internal/trace"
)

// mshrState sequences an L2 transaction. Acquire transactions walk
// evict->memRead/probe->grant->grantAck; RootRelease transactions walk
// probe->memWrite->finish (§5.5).
type msState uint8

const (
	msFree msState = iota
	msStart
	msEvictProbe    // probing owners of the victim line
	msEvictMemWrite // writing the dirty victim back to DRAM
	msMemRead       // reading the missing line from DRAM
	msProbe         // probing owners of the requested line
	msMemWrite      // RootRelease: writing the dirty line to DRAM
	msGrant         // Acquire: send Grant*, wait for GrantAck
	msFinish        // RootRelease: send RootReleaseAck / ReleaseAck
)

type txnKind uint8

const (
	txnAcquire txnKind = iota
	txnRootRelease
)

// mshr is one L2 miss status holding register.
type mshr struct {
	state  msState
	kind   txnKind
	addr   uint64
	client int
	since  int64 // cycle the MSHR may begin work (tag pipeline latency)
	// txn is the initiating client's transaction id, echoed on every probe,
	// grant, ack and memory request this MSHR issues so the whole chain
	// shares one causal span. Eviction sub-actions inherit it.
	txn uint64

	// Acquire fields.
	grow tilelink.Grow

	// RootRelease fields.
	clean bool
	// wbData is dirty RootRelease data whose line was evicted while the
	// message was in flight; written straight to DRAM (see sinkC).
	wbData []byte

	pendingProbes int
	memSubmitted  bool // current memory request accepted by the controller

	// Victim bookkeeping for Acquire misses.
	victimSet, victimWay int
	hasVictim            bool
}

// freeMSHR returns an unused MSHR, honoring an armed chaos capacity squeeze:
// a quota below the configured count makes the cache behave as if built with
// fewer MSHRs for the window, without cancelling in-flight transactions.
func (c *Cache) freeMSHR(now int64) *mshr {
	limit := len(c.mshrs)
	if c.chaos != nil {
		if q := c.chaos.MSHRQuota(now); q >= 0 && q < limit {
			limit = q
		}
	}
	inUse := 0
	var free *mshr
	for i := range c.mshrs {
		if c.mshrs[i].state == msFree {
			if free == nil {
				free = &c.mshrs[i]
			}
		} else {
			inUse++
		}
	}
	if inUse >= limit {
		return nil
	}
	return free
}

// mshrFor returns the active MSHR transacting on addr's line, if any. L2
// serializes transactions per line.
func (c *Cache) mshrFor(addr uint64) *mshr {
	for i := range c.mshrs {
		m := &c.mshrs[i]
		if m.state != msFree && m.addr == addr {
			return m
		}
	}
	return nil
}

// lineBusy reports whether addr's line is under an active transaction,
// either directly or as the victim of an in-flight eviction; buffered
// requests for it must wait.
func (c *Cache) lineBusy(addr uint64) bool {
	if c.mshrFor(addr) != nil {
		return true
	}
	for i := range c.mshrs {
		m := &c.mshrs[i]
		if m.state != msEvictProbe && m.state != msEvictMemWrite {
			continue
		}
		v := &c.lines[m.victimSet][m.victimWay]
		if v.valid && c.addrOf(m.victimSet, v.tag) == addr {
			return true
		}
	}
	return false
}

func (c *Cache) mshrIndex(m *mshr) int {
	for i := range c.mshrs {
		if &c.mshrs[i] == m {
			return i
		}
	}
	panic("l2: foreign mshr")
}

// sendProbe queues a Probe to client via SourceB and counts it against m.
func (c *Cache) sendProbe(m *mshr, client int, addr uint64, cap tilelink.Cap) {
	c.outB[client] = append(c.outB[client], tilelink.Msg{ //skipit:ignore hotalloc per-client outB depth is bounded by outstanding probes (one per MSHR); append reuses its backing after warmup
		Op:   tilelink.OpProbe,
		Addr: addr,
		Cap:  cap,
		Txn:  m.txn,
	})
	m.pendingProbes++
	c.ctr.probesSent.Inc()
}

// startAcquire begins serving an Acquire that has an allocated MSHR.
func (c *Cache) startAcquire(now int64, m *mshr) {
	l := c.lookup(m.addr)
	if l == nil {
		// Miss: evict a victim if the set is full, then read from DRAM.
		set := c.index(m.addr)
		way := c.pickVictim(set)
		if way < 0 {
			return // all ways under transaction; stay in msStart
		}
		v := &c.lines[set][way]
		v.reserved = true
		if v.valid {
			m.victimSet, m.victimWay = set, way
			m.hasVictim = true
			victimAddr := c.addrOf(set, v.tag)
			// Inclusive policy: revoke all client copies of the
			// victim before dropping it (§3.4).
			probed := false
			for cl, p := range v.perms {
				if p != tilelink.PermNone {
					c.sendProbe(m, cl, victimAddr, tilelink.CapToN)
					probed = true
				}
			}
			c.ctr.evictions.Inc()
			if probed {
				m.state = msEvictProbe
				return
			}
			c.finishEvict(now, m)
			return
		}
		m.victimSet, m.victimWay = set, way
		m.hasVictim = false
		c.submitMemRead(now, m)
		return
	}

	// Hit: revoke or downgrade other owners as the requested growth
	// demands.
	c.probeForAcquire(m, l)
	if m.pendingProbes > 0 {
		m.state = msProbe
		return
	}
	c.sendGrant(now, m)
}

// probeForAcquire issues the probes an Acquire hit requires: exclusive
// growth revokes every other copy; shared growth downgrades a foreign trunk
// to branch (extracting its dirty data).
func (c *Cache) probeForAcquire(m *mshr, l *line) {
	switch m.grow {
	case tilelink.GrowNtoT, tilelink.GrowBtoT:
		for cl, p := range l.perms {
			if cl != m.client && p != tilelink.PermNone {
				c.sendProbe(m, cl, m.addr, tilelink.CapToN)
			}
		}
	case tilelink.GrowNtoB:
		for cl, p := range l.perms {
			if cl != m.client && p == tilelink.PermTrunk {
				c.sendProbe(m, cl, m.addr, tilelink.CapToB)
			}
		}
	}
}

// startRootRelease begins serving a RootRelease (§5.5). The carried dirty
// data, if any, was already applied to the BankedStore at SinkC. Probing and
// revocation happen even if the requesting core did not possess the line.
func (c *Cache) startRootRelease(now int64, m *mshr) {
	c.ctr.rootReleases.Inc()
	c.rec.Record(now, trace.RecRootRelease, trace.CauseNone, m.txn, m.addr, uint64(m.client))
	if c.tr != nil {
		kind := "flush"
		if m.clean {
			kind = "clean"
		}
		trace.EmitTxn(c.tr, now, "l2", "root-release", m.txn, m.addr,
			fmt.Sprintf("%s from client %d", kind, m.client)) //skipit:ignore hotalloc trace formatting runs only with a tracer attached; untraced runs never reach it
	}
	l := c.lookup(m.addr)
	if l == nil {
		if len(m.wbData) > 0 {
			// The flush raced an eviction: the RootRelease data
			// arrived after the L2 dropped the line, so it never
			// reached the BankedStore. It is the freshest copy —
			// write it through to DRAM before acknowledging.
			trace.EmitTxn(c.tr, now, "l2", "root-release-race", m.txn, m.addr,
				"line evicted in flight; writing carried data to DRAM")
			c.rec.Record(now, trace.RecSkipAudit, trace.CauseDirtyLine, m.txn, m.addr, 1)
			m.state = msMemWrite
			if c.mem.Submit(now, mem.Request{Kind: mem.Write, Addr: m.addr, Data: m.wbData, Tag: c.mshrIndex(m), Txn: m.txn}) {
				c.ctr.memWrites.Inc()
				m.memSubmitted = true
			} else {
				m.memSubmitted = false
			}
			return
		}
		// Inclusive L2 without the line: no cached copy exists
		// anywhere, so DRAM already holds the authoritative data.
		// Acknowledge immediately (the §5.5 trivial skip).
		c.ctr.rootReleaseSkips.Inc()
		// Skip-audit: no LLC copy, nothing to write back.
		c.rec.Record(now, trace.RecSkipAudit, trace.CauseMissNoCopy, m.txn, m.addr, 0)
		m.state = msFinish
		return
	}
	if len(m.wbData) > 0 {
		// The line was evicted and then re-installed between SinkC and
		// dispatch; apply the carried data now, exactly as SinkC would
		// have with the line present.
		copy(l.data, m.wbData)
		l.dirty = true
		c.clearPoison(m.addr)
		c.cfg.Pool.Put(m.wbData)
		m.wbData = nil
	}

	if m.clean {
		// RootReleaseClean: extract dirty data from a foreign trunk
		// owner, if one exists; copies stay readable.
		for cl, p := range l.perms {
			if cl != m.client && p == tilelink.PermTrunk {
				c.sendProbe(m, cl, m.addr, tilelink.CapToB)
			}
		}
	} else {
		// RootReleaseFlush: revoke every copy, including any stale
		// registration of the requester (its L1 already invalidated
		// its own copy in the FSHR meta_write state and reported so
		// in the RootRelease).
		l.perms[m.client] = tilelink.PermNone
		for cl, p := range l.perms {
			if cl != m.client && p != tilelink.PermNone {
				c.sendProbe(m, cl, m.addr, tilelink.CapToN)
			}
		}
	}
	if m.pendingProbes > 0 {
		m.state = msProbe
		return
	}
	c.rootReleaseWriteback(now, m)
}

// rootReleaseWriteback writes the line to DRAM if it is dirty anywhere in
// the L2's domain, then finishes. The LLC's trivial skip (§5.5, §7.4) lives
// here: a clean line means no DRAM write and an immediate acknowledgement.
func (c *Cache) rootReleaseWriteback(now int64, m *mshr) {
	l := c.lookup(m.addr)
	if l == nil || !l.dirty {
		c.ctr.rootReleaseSkips.Inc()
		trace.EmitTxn(c.tr, now, "l2", "trivial-skip", m.txn, m.addr, "line clean in LLC (§5.5)")
		// Skip-audit: the §5.5 trivial skip — clean in the LLC, no DRAM
		// write issued.
		c.rec.Record(now, trace.RecSkipAudit, trace.CauseCleanLine, m.txn, m.addr, 0)
		c.finishRootRelease(m)
		return
	}
	data := c.cfg.Pool.Get(int(c.cfg.LineBytes))
	copy(data, l.data)
	m.state = msMemWrite
	// Skip-audit: dirty in the LLC — the flush issues a real DRAM write.
	c.rec.Record(now, trace.RecSkipAudit, trace.CauseDirtyLine, m.txn, m.addr, 1)
	if c.mem.Submit(now, mem.Request{Kind: mem.Write, Addr: m.addr, Data: data, Tag: c.mshrIndex(m), Txn: m.txn}) {
		c.ctr.memWrites.Inc()
		m.memSubmitted = true
	} else {
		// Memory controller busy: retry from Tick next cycle.
		m.memSubmitted = false
		c.cfg.Pool.Put(data)
	}
}

// finishRootRelease invalidates the L2 copy for flushes and queues the
// RootReleaseAck.
func (c *Cache) finishRootRelease(m *mshr) {
	if !m.clean {
		if l := c.lookup(m.addr); l != nil {
			l.valid = false
			l.dirty = false
			for i := range l.perms {
				l.perms[i] = tilelink.PermNone
			}
			c.clearPoison(m.addr)
		}
	}
	m.state = msFinish
}

// finishEvict runs after the victim's probes are answered: write back the
// victim if dirty, then read the requested line.
func (c *Cache) finishEvict(now int64, m *mshr) {
	v := &c.lines[m.victimSet][m.victimWay]
	if v.dirty {
		victimAddr := c.addrOf(m.victimSet, v.tag)
		data := c.cfg.Pool.Get(int(c.cfg.LineBytes))
		copy(data, v.data)
		m.state = msEvictMemWrite
		if c.mem.Submit(now, mem.Request{Kind: mem.Write, Addr: victimAddr, Data: data, Tag: c.mshrIndex(m), Txn: m.txn}) {
			c.ctr.memWrites.Inc()
			m.memSubmitted = true
		} else {
			m.memSubmitted = false
			c.cfg.Pool.Put(data)
		}
		return
	}
	v.valid = false
	c.clearPoison(c.addrOf(m.victimSet, v.tag))
	c.submitMemRead(now, m)
}

// submitMemRead issues the DRAM read for an Acquire miss (retrying while the
// controller is busy).
func (c *Cache) submitMemRead(now int64, m *mshr) {
	m.state = msMemRead
	if c.mem.Submit(now, mem.Request{Kind: mem.Read, Addr: m.addr, Tag: c.mshrIndex(m), Txn: m.txn}) {
		c.ctr.memReads.Inc()
		m.memSubmitted = true
	} else {
		m.memSubmitted = false
	}
}

// sendGrant queues the Grant* for a completed Acquire. GrantDataDirty is
// selected when the line is dirty in L2, telling the L1 to leave the skip
// bit unset (§6.1).
func (c *Cache) sendGrant(now int64, m *mshr) {
	l := c.lookup(m.addr)
	if l == nil {
		panic(fmt.Sprintf("l2: grant for absent line %#x", m.addr))
	}
	// The grant is the only reader of clean line data; the ECC model
	// detects a poisoned frame here and restores it from DRAM.
	if !l.dirty {
		c.eccRestore(now, l, m.addr)
	}
	op := tilelink.OpGrantData
	dirtyArg := uint64(0)
	if l.dirty {
		op = tilelink.OpGrantDataDirty
		c.ctr.grantsDataDirty.Inc()
		dirtyArg = 1
	} else {
		c.ctr.grantsData.Inc()
	}
	c.rec.Record(now, trace.RecGrant, trace.CauseNone, m.txn, m.addr, dirtyArg)
	if c.tr != nil {
		trace.EmitTxn(c.tr, now, "l2", "grant", m.txn, m.addr,
			fmt.Sprintf("%v to client %d", op, m.client)) //skipit:ignore hotalloc trace formatting runs only with a tracer attached; untraced runs never reach it
	}
	capTo := tilelink.CapToT
	if m.grow == tilelink.GrowNtoB {
		capTo = tilelink.CapToB
	}
	data := c.cfg.Pool.Get(int(c.cfg.LineBytes))
	copy(data, l.data)
	c.outD[m.client] = append(c.outD[m.client], tilelink.Msg{ //skipit:ignore hotalloc per-client outD depth is bounded by outstanding transactions; append reuses its backing after warmup
		Op:   op,
		Addr: m.addr,
		Cap:  capTo,
		Data: data,
		Txn:  m.txn,
	})
	l.perms[m.client] = capTo.Perm()
	l.lastUsed = now
	m.state = msGrant
}

// pickVictim chooses an invalid way if one exists, else the LRU way that is
// not under an active transaction.
func (c *Cache) pickVictim(set int) int {
	for w := range c.lines[set] {
		if !c.lines[set][w].valid && !c.lines[set][w].reserved {
			return w
		}
	}
	best, bestUsed := -1, int64(1<<62)
	for w := range c.lines[set] {
		l := &c.lines[set][w]
		if l.reserved || c.mshrFor(c.addrOf(set, l.tag)) != nil {
			continue
		}
		if l.lastUsed < bestUsed {
			best, bestUsed = w, l.lastUsed
		}
	}
	// best is -1 when every way is under an active transaction; the
	// caller stalls and retries next cycle.
	return best
}
