package tilelink

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPermPredicates(t *testing.T) {
	cases := []struct {
		p           Perm
		read, write bool
	}{
		{PermNone, false, false},
		{PermBranch, true, false},
		{PermTrunk, true, true},
	}
	for _, c := range cases {
		if got := c.p.CanRead(); got != c.read {
			t.Errorf("%v.CanRead() = %v, want %v", c.p, got, c.read)
		}
		if got := c.p.CanWrite(); got != c.write {
			t.Errorf("%v.CanWrite() = %v, want %v", c.p, got, c.write)
		}
	}
}

func TestGrowEndpoints(t *testing.T) {
	cases := []struct {
		g        Grow
		from, to Perm
	}{
		{GrowNtoB, PermNone, PermBranch},
		{GrowNtoT, PermNone, PermTrunk},
		{GrowBtoT, PermBranch, PermTrunk},
	}
	for _, c := range cases {
		if c.g.From() != c.from || c.g.To() != c.to {
			t.Errorf("%v: got %v->%v, want %v->%v", c.g, c.g.From(), c.g.To(), c.from, c.to)
		}
	}
}

func TestShrinkForRoundTrip(t *testing.T) {
	perms := []Perm{PermNone, PermBranch, PermTrunk}
	for _, from := range perms {
		for _, to := range perms {
			if to > from {
				continue // upgrades are illegal on channel C
			}
			s := ShrinkFor(from, to)
			if s.From() != from || s.To() != to {
				t.Errorf("ShrinkFor(%v,%v) = %v with endpoints %v->%v", from, to, s, s.From(), s.To())
			}
		}
	}
}

func TestShrinkForPanicsOnUpgrade(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ShrinkFor(None, Trunk) did not panic")
		}
	}()
	ShrinkFor(PermNone, PermTrunk)
}

func TestOpcodeChannels(t *testing.T) {
	cases := map[Opcode]Channel{
		OpAcquireBlock:     ChannelA,
		OpAcquirePerm:      ChannelA,
		OpProbe:            ChannelB,
		OpProbeAck:         ChannelC,
		OpProbeAckData:     ChannelC,
		OpRelease:          ChannelC,
		OpReleaseData:      ChannelC,
		OpRootReleaseFlush: ChannelC,
		OpRootReleaseClean: ChannelC,
		OpGrant:            ChannelD,
		OpGrantData:        ChannelD,
		OpGrantDataDirty:   ChannelD,
		OpReleaseAck:       ChannelD,
		OpRootReleaseAck:   ChannelD,
		OpGrantAck:         ChannelE,
	}
	for op, want := range cases {
		if got := op.Chan(); got != want {
			t.Errorf("%v.Chan() = %v, want %v", op, got, want)
		}
	}
}

func TestWireEncoding(t *testing.T) {
	// §5.1: the new messages reuse existing opcodes with new parameters so
	// the opcode bitvector does not grow.
	cases := []struct {
		op    Opcode
		enc   Opcode
		param string
	}{
		{OpRootReleaseFlush, OpProbeAck, "FLUSH"},
		{OpRootReleaseClean, OpProbeAck, "CLEAN"},
		{OpRootReleaseAck, OpReleaseAck, "ROOT"},
		{OpGrant, OpGrant, ""},
		{OpProbe, OpProbe, ""},
	}
	for _, c := range cases {
		enc, param := c.op.WireEncoding()
		if enc != c.enc || param != c.param {
			t.Errorf("%v.WireEncoding() = (%v,%q), want (%v,%q)", c.op, enc, param, c.enc, c.param)
		}
	}
}

func TestMsgValidate(t *testing.T) {
	line := make([]byte, 64)
	good := Msg{Op: OpGrantData, Addr: 0x1000, Data: line, Cap: CapToT}
	if err := good.Validate(64); err != nil {
		t.Errorf("valid message rejected: %v", err)
	}
	if err := (Msg{Op: OpGrantData, Addr: 0x1000, Data: line[:8]}).Validate(64); err == nil {
		t.Error("short payload accepted")
	}
	if err := (Msg{Op: OpGrant, Addr: 0x1000, Data: line}).Validate(64); err == nil {
		t.Error("payload on data-less opcode accepted")
	}
	if err := (Msg{Op: OpGrant, Addr: 0x1004}).Validate(64); err == nil {
		t.Error("unaligned address accepted")
	}
}

func TestLinkBeatOccupancy(t *testing.T) {
	l := NewLink("t", 16, 64, 0)
	data := Msg{Op: OpGrantData, Addr: 0, Data: make([]byte, 64)}
	if !l.Send(0, data) {
		t.Fatal("send rejected on idle link")
	}
	// A 64 B message on a 16 B bus occupies 4 beats: cycles 0..3.
	for now := int64(1); now <= 3; now++ {
		if l.CanSend(now) {
			t.Errorf("link free at cycle %d during 4-beat transfer", now)
		}
	}
	if !l.CanSend(4) {
		t.Error("link still busy after transfer completed")
	}
	if _, ok := l.Recv(3); ok {
		t.Error("data message delivered before final beat")
	}
	if m, ok := l.Recv(4); !ok || m.Op != OpGrantData {
		t.Errorf("Recv(4) = %v,%v; want GrantData,true", m, ok)
	}
}

func TestLinkDataLessSingleBeat(t *testing.T) {
	l := NewLink("t", 16, 64, 0)
	if !l.Send(10, Msg{Op: OpGrant, Addr: 64}) {
		t.Fatal("send rejected")
	}
	if l.CanSend(10) {
		t.Error("link free during its single busy cycle")
	}
	if !l.CanSend(11) {
		t.Error("link busy after single-beat message")
	}
	if _, ok := l.Recv(10); ok {
		t.Error("message delivered in its send cycle")
	}
	if _, ok := l.Recv(11); !ok {
		t.Error("message not delivered after one beat")
	}
}

func TestLinkLatencyAddsAfterBeats(t *testing.T) {
	l := NewLink("t", 16, 64, 5)
	l.Send(0, Msg{Op: OpProbeAckData, Addr: 0, Shrink: ShrinkTtoN, Data: make([]byte, 64)})
	if _, ok := l.Recv(8); ok {
		t.Error("delivered before beats+latency")
	}
	if _, ok := l.Recv(9); !ok {
		t.Error("not delivered at beats+latency")
	}
}

func TestLinkFIFOOrder(t *testing.T) {
	l := NewLink("t", 16, 64, 0)
	now := int64(0)
	for i := 0; i < 10; i++ {
		m := Msg{Op: OpGrant, Addr: uint64(i) * 64}
		for !l.Send(now, m) {
			now++
		}
		now++
	}
	now += 100
	for i := 0; i < 10; i++ {
		m, ok := l.Recv(now)
		if !ok {
			t.Fatalf("message %d missing", i)
		}
		if m.Addr != uint64(i)*64 {
			t.Fatalf("message %d out of order: addr %#x", i, m.Addr)
		}
	}
}

func TestLinkPeekDoesNotConsume(t *testing.T) {
	l := NewLink("t", 16, 64, 0)
	l.Send(0, Msg{Op: OpGrant, Addr: 0})
	if _, ok := l.Peek(1); !ok {
		t.Fatal("peek missed delivered message")
	}
	if _, ok := l.Recv(1); !ok {
		t.Fatal("recv after peek missed message")
	}
	if _, ok := l.Recv(1); ok {
		t.Fatal("message delivered twice")
	}
}

func TestLinkReset(t *testing.T) {
	l := NewLink("t", 16, 64, 0)
	l.Send(0, Msg{Op: OpGrant, Addr: 0})
	l.Reset()
	if l.Pending() != 0 {
		t.Error("pending messages after reset")
	}
	if !l.CanSend(0) {
		t.Error("link busy after reset")
	}
}

func TestClientPortQuiescence(t *testing.T) {
	p := NewClientPort("l1", 16, 64, 1)
	if p.Pending() != 0 {
		t.Fatal("fresh port not quiescent")
	}
	p.A.Send(0, Msg{Op: OpAcquireBlock, Addr: 0, Grow: GrowNtoT})
	p.D.Send(0, Msg{Op: OpGrant, Addr: 0, Cap: CapToT})
	if p.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", p.Pending())
	}
	p.Reset()
	if p.Pending() != 0 {
		t.Fatal("port not quiescent after reset")
	}
}

// Property: on any random schedule of sends, every message is delivered
// exactly once, in order, and never before send+beats cycles have elapsed.
func TestLinkDeliveryProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := NewLink("q", 16, 64, rng.Intn(4))
		type sent struct {
			addr   uint64
			sentAt int64
			beats  int64
		}
		var log []sent
		var got []Msg
		now := int64(0)
		toSend := int(n%32) + 1
		for len(got) < toSend {
			if len(log) < toSend && rng.Intn(2) == 0 {
				var m Msg
				if rng.Intn(2) == 0 {
					m = Msg{Op: OpReleaseData, Addr: uint64(len(log)) * 64,
						Shrink: ShrinkTtoN, Data: make([]byte, 64)}
				} else {
					m = Msg{Op: OpRelease, Addr: uint64(len(log)) * 64, Shrink: ShrinkBtoN}
				}
				if l.Send(now, m) {
					log = append(log, sent{m.Addr, now, l.Beats(m)})
				}
			}
			if m, ok := l.Recv(now); ok {
				i := len(got)
				got = append(got, m)
				if i >= len(log) || log[i].addr != m.Addr {
					return false // out of order or phantom
				}
				if now < log[i].sentAt+log[i].beats+int64(l.Latency) {
					return false // delivered too early
				}
			}
			now++
			if now > 10_000 {
				return false // lost messages
			}
		}
		return l.Pending() == 0 || len(log) > len(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
