package sweep

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"skipit/internal/metrics"
)

// constJob returns a job whose outcome is derived only from its inputs.
func constJob(group, name string, cycles float64) Job {
	return Job{
		Group: group, Name: name, Fingerprint: Fingerprint(group, name),
		Run: func(sink Sink) (Outcome, error) {
			if sink != nil {
				sink(name, metrics.Snapshot{Cycle: int64(cycles)})
			}
			return Outcome{Cycles: cycles, Reps: 1}, nil
		},
	}
}

func TestRunnerPreservesSubmissionOrder(t *testing.T) {
	var jobs []Job
	for i := 0; i < 20; i++ {
		jobs = append(jobs, constJob("g", fmt.Sprintf("p%02d", i), float64(i)))
	}
	for _, workers := range []int{1, 4} {
		r := Runner{Workers: workers}
		results := r.Run(jobs)
		if len(results) != len(jobs) {
			t.Fatalf("workers=%d: %d results", workers, len(results))
		}
		for i, res := range results {
			if res.Err != nil || res.Record.Name != jobs[i].Name || res.Record.Cycles != float64(i) {
				t.Fatalf("workers=%d: slot %d holds %+v", workers, i, res)
			}
		}
	}
}

// The parallel runner must be bit-identical to serial execution: snapshots
// and records included.
func TestRunnerDeterministicAcrossWorkerCounts(t *testing.T) {
	var jobs []Job
	for i := 0; i < 12; i++ {
		jobs = append(jobs, constJob("g", fmt.Sprintf("p%02d", i), float64(i*i)))
	}
	serial := Runner{Workers: 1, WithSnapshots: true}.Run(jobs)
	parallel := Runner{Workers: 6, WithSnapshots: true}.Run(jobs)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel results diverged from serial:\n%+v\nvs\n%+v", serial, parallel)
	}
}

// Two jobs that each wait for the other to start can only finish if the
// runner genuinely overlaps them — the parallelism the tentpole promises.
func TestRunnerOverlapsJobs(t *testing.T) {
	a, b := make(chan struct{}), make(chan struct{})
	meet := func(mine, theirs chan struct{}) (Outcome, error) {
		close(mine)
		select {
		case <-theirs:
			return Outcome{Cycles: 1, Reps: 1}, nil
		case <-time.After(10 * time.Second):
			return Outcome{}, errors.New("peer never started: jobs ran serially")
		}
	}
	jobs := []Job{
		{Group: "g", Name: "a", Run: func(Sink) (Outcome, error) { return meet(a, b) }},
		{Group: "g", Name: "b", Run: func(Sink) (Outcome, error) { return meet(b, a) }},
	}
	results := Runner{Workers: 2}.Run(jobs)
	if err := FirstError(results); err != nil {
		t.Fatal(err)
	}
}

func TestRunnerStoreSkipAndForce(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	runs := 0
	job := Job{
		Group: "g", Name: "p", Fingerprint: Fingerprint("v1"),
		Run: func(Sink) (Outcome, error) {
			runs++
			return Outcome{Cycles: 10, Reps: 1}, nil
		},
	}
	if res := (&Runner{Store: st}).Run([]Job{job}); res[0].Cached || res[0].Err != nil {
		t.Fatalf("first run: %+v", res[0])
	}
	// Same fingerprint: served from the store, not re-measured.
	if res := (&Runner{Store: st}).Run([]Job{job}); !res[0].Cached || res[0].Record.Cycles != 10 {
		t.Fatalf("second run not cached: %+v", res[0])
	}
	if runs != 1 {
		t.Fatalf("job ran %d times", runs)
	}
	// -force overrides the hit.
	if res := (&Runner{Store: st, Force: true}).Run([]Job{job}); res[0].Cached {
		t.Fatal("Force run served from store")
	}
	if runs != 2 {
		t.Fatalf("job ran %d times after force", runs)
	}
	// A changed fingerprint misses.
	job.Fingerprint = Fingerprint("v2")
	(&Runner{Store: st}).Run([]Job{job})
	if runs != 3 {
		t.Fatalf("changed fingerprint did not re-run (runs=%d)", runs)
	}
}

func TestRunnerCapturesErrorsAndPanics(t *testing.T) {
	jobs := []Job{
		{Group: "g", Name: "boom", Run: func(Sink) (Outcome, error) { panic("sim: cycle limit exceeded") }},
		{Group: "g", Name: "err", Run: func(Sink) (Outcome, error) { return Outcome{}, errors.New("nope") }},
		constJob("g", "fine", 3),
	}
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	results := (&Runner{Store: st}).Run(jobs)
	if results[0].Err == nil || results[1].Err == nil || results[2].Err != nil {
		t.Fatalf("error routing wrong: %v / %v / %v", results[0].Err, results[1].Err, results[2].Err)
	}
	if got := Records(results); len(got) != 1 || got[0].Name != "fine" {
		t.Fatalf("Records = %+v", got)
	}
	// Failed jobs must not pollute the store.
	if recs := st.Records("g"); len(recs) != 1 || recs[0].Name != "fine" {
		t.Fatalf("store holds %+v", recs)
	}
}
