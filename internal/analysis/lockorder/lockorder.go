// Package lockorder implements mutex discipline checking for the service
// tier (internal/sweepd, internal/introspect by default): lock-order cycles,
// self-deadlocks, and locks held across I/O.
//
// The simulator proper is single-goroutine by contract (the determinism
// analyzer enforces that), but the sweep coordinator and the introspection
// server are real concurrent servers whose mutexes guard journals, stores,
// and HTTP responses. Three rules:
//
//  1. A lock acquired while another lock is held creates an ordering edge.
//     Edges are unioned across packages (each package exports its edges as a
//     LockGraph package fact) and a cycle in the union — the classic AB/BA
//     deadlock — is reported at the local acquisition that closes it.
//  2. Re-acquiring a lock already held by the same function (directly or
//     through a callee, resolved via Summary facts) is a self-deadlock:
//     sync.Mutex is not reentrant.
//  3. A lock held across an I/O call — file, network, HTTP response,
//     encoder/decoder writes, or time.Sleep, reached directly or
//     transitively — serializes every other critical section behind the
//     kernel; it is reported at the Lock() site so the waiver (when the
//     blocking is intentional, as with sweepd's WAL commit ordering) sits on
//     the acquisition it certifies. One finding per (function, lock).
//
// Held intervals are tracked positionally, not over the CFG: events (Lock,
// Unlock, deferred Unlock, calls) are replayed in source order, a deferred
// Unlock pins the lock held to the end of the function, and an early-return
// branch releasing a lock is treated as releasing it for the remainder of
// the function. This under-approximates holding across divergent branches —
// acceptable for lint — and the usual callsum limits apply (locks taken
// behind interface calls or function values are invisible).
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"skipit/internal/analysis/callsum"
	"skipit/internal/analysis/suppress"
)

var pkgs = "internal/sweepd,internal/introspect"

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "flag lock-order cycles, self-deadlocks, and mutexes held across I/O in the service packages\n\n" +
		"Acquisition summaries and lock-graph edges travel as facts, so cross-package cycles are caught.",
	Requires:  []*analysis.Analyzer{callsum.Analyzer},
	FactTypes: []analysis.Fact{new(Summary), new(LockGraph)},
	Run:       run,
}

func init() {
	Analyzer.Flags.StringVar(&pkgs, "pkgs", pkgs, "comma-separated import-path fragments of packages whose lock discipline is checked (facts are computed everywhere)")
}

// chainMax bounds witness chains embedded in facts and diagnostics.
const chainMax = 8

// Summary is the per-function lock/I-O fact: which locks the function
// (transitively) acquires and whether it (transitively) performs I/O.
type Summary struct {
	// Acquires lists locks taken directly or through callees, each with a
	// witness chain down to the concrete Lock() call.
	Acquires []Acq
	// IO is the witness chain to an I/O call, nil when the function is pure.
	IO []string
}

// Acq is one (transitively) acquired lock.
type Acq struct {
	Lock  string
	Chain []string
}

// AFact marks Summary as an analysis fact.
func (*Summary) AFact() {}

func (s *Summary) String() string {
	locks := make([]string, len(s.Acquires))
	for i, a := range s.Acquires {
		locks[i] = a.Lock
	}
	out := "acquires(" + strings.Join(locks, ", ") + ")"
	if s.IO != nil {
		out += " io"
	}
	return out
}

// LockGraph is the package fact carrying this package's ordering edges:
// From was held while To was acquired.
type LockGraph struct {
	Edges []Edge
}

// Edge is one observed acquisition order.
type Edge struct {
	From, To string
}

// AFact marks LockGraph as an analysis fact.
func (*LockGraph) AFact() {}

func (g *LockGraph) String() string {
	parts := make([]string, len(g.Edges))
	for i, e := range g.Edges {
		parts[i] = e.From + "->" + e.To
	}
	return "lockgraph(" + strings.Join(parts, ", ") + ")"
}

// event kinds for the positional replay.
const (
	evAcquire = iota
	evRelease
	evCall
	evIO
)

type event struct {
	pos    token.Pos
	kind   int
	lock   string      // evAcquire/evRelease
	shared bool        // RLock/RUnlock
	callee *types.Func // evCall
	desc   string      // evIO: "os.File.Sync"
}

func run(pass *analysis.Pass) (interface{}, error) {
	suppress.Apply(pass)
	sums := pass.ResultOf[callsum.Analyzer].(*callsum.Summaries)
	waived := suppress.CoveredLines(pass, pass.Analyzer.Name)

	// Gather each function's event stream once; summaries and findings both
	// replay it.
	events := make(map[*callsum.FuncInfo][]event)
	for _, fi := range sums.Funcs {
		if fi.TestFile || fi.Decl.Body == nil {
			continue
		}
		events[fi] = collectEvents(pass, fi.Decl, waived)
	}

	// Seed summaries from direct events.
	local := make(map[*callsum.FuncInfo]*Summary)
	for _, fi := range sums.Funcs {
		if fi.TestFile {
			continue
		}
		s := &Summary{}
		seen := map[string]bool{}
		for _, ev := range events[fi] {
			switch ev.kind {
			case evAcquire:
				if !seen[ev.lock] {
					seen[ev.lock] = true
					s.Acquires = append(s.Acquires, Acq{Lock: ev.lock, Chain: []string{fmt.Sprintf("%s.Lock at %s", ev.lock, callsum.ShortPos(pass.Fset, ev.pos))}})
				}
			case evIO:
				if s.IO == nil {
					s.IO = []string{fmt.Sprintf("%s at %s", ev.desc, callsum.ShortPos(pass.Fset, ev.pos))}
				}
			}
		}
		local[fi] = s
	}

	calleeSummary := func(callee *types.Func) *Summary {
		if lf, ok := sums.ByObj[callee]; ok {
			return local[lf]
		}
		var fact Summary
		if pass.ImportObjectFact(callee, &fact) {
			return &fact
		}
		return nil
	}

	// Propagate acquisitions and I/O bottom-up to a fixpoint.
	for changed := true; changed; {
		changed = false
		for _, fi := range sums.Funcs {
			s := local[fi]
			if s == nil {
				continue
			}
			have := map[string]bool{}
			for _, a := range s.Acquires {
				have[a.Lock] = true
			}
			for _, ev := range events[fi] {
				if ev.kind != evCall {
					continue
				}
				cs := calleeSummary(ev.callee)
				if cs == nil {
					continue
				}
				hop := fmt.Sprintf("%s (%s)", callsum.Name(ev.callee), callsum.ShortPos(pass.Fset, ev.pos))
				for _, a := range cs.Acquires {
					if !have[a.Lock] {
						have[a.Lock] = true
						s.Acquires = append(s.Acquires, Acq{Lock: a.Lock, Chain: callsum.TrimChain(append([]string{hop}, a.Chain...), chainMax)})
						changed = true
					}
				}
				if s.IO == nil && cs.IO != nil {
					s.IO = callsum.TrimChain(append([]string{hop}, cs.IO...), chainMax)
					changed = true
				}
			}
		}
	}

	for fi, s := range local {
		if len(s.Acquires) == 0 && s.IO == nil {
			continue
		}
		sort.Slice(s.Acquires, func(i, j int) bool { return s.Acquires[i].Lock < s.Acquires[j].Lock })
		pass.ExportObjectFact(fi.Obj, s)
	}

	// Replay each function to collect ordering edges (exported for every
	// package) and, in scoped packages, report findings.
	scoped := matches(pass.Pkg.Path(), pkgs)
	edges := make(map[Edge]ownEdge) // first witness per edge
	for _, fi := range sums.Funcs {
		held := make(map[string]event) // lock -> acquisition event
		ioReported := make(map[string]bool)
		for _, ev := range events[fi] {
			switch ev.kind {
			case evAcquire:
				if prev, ok := held[ev.lock]; ok && scoped && !(prev.shared && ev.shared) {
					pass.Report(analysis.Diagnostic{
						Pos:     ev.pos,
						Message: fmt.Sprintf("lock %s reacquired while already held (self-deadlock; acquired at %s)", ev.lock, callsum.ShortPos(pass.Fset, prev.pos)),
					})
				}
				for other := range held {
					if other == ev.lock {
						continue
					}
					e := Edge{From: other, To: ev.lock}
					if _, ok := edges[e]; !ok {
						edges[e] = ownEdge{pos: ev.pos, chain: []string{fmt.Sprintf("%s.Lock at %s", ev.lock, callsum.ShortPos(pass.Fset, ev.pos))}}
					}
				}
				held[ev.lock] = ev
			case evRelease:
				delete(held, ev.lock)
			case evIO:
				for lock, acq := range held {
					reportHeldIO(pass, scoped, ioReported, lock, acq,
						fmt.Sprintf("%s at %s", ev.desc, callsum.ShortPos(pass.Fset, ev.pos)))
				}
			case evCall:
				cs := calleeSummary(ev.callee)
				if cs == nil {
					continue
				}
				hop := fmt.Sprintf("%s (%s)", callsum.Name(ev.callee), callsum.ShortPos(pass.Fset, ev.pos))
				for _, a := range cs.Acquires {
					if prev, ok := held[a.Lock]; ok && scoped && !prev.shared {
						pass.Report(analysis.Diagnostic{
							Pos: ev.pos,
							Message: fmt.Sprintf("lock %s reacquired through call while already held (self-deadlock; acquired at %s): %s",
								a.Lock, callsum.ShortPos(pass.Fset, prev.pos), strings.Join(callsum.TrimChain(append([]string{hop}, a.Chain...), chainMax), " -> ")),
						})
					}
					for other := range held {
						if other == a.Lock {
							continue
						}
						e := Edge{From: other, To: a.Lock}
						if _, ok := edges[e]; !ok {
							edges[e] = ownEdge{pos: ev.pos, chain: callsum.TrimChain(append([]string{hop}, a.Chain...), chainMax)}
						}
					}
				}
				if cs.IO != nil {
					for lock, acq := range held {
						reportHeldIO(pass, scoped, ioReported, lock, acq,
							strings.Join(callsum.TrimChain(append([]string{hop}, cs.IO...), chainMax), " -> "))
					}
				}
			}
		}
	}

	// Publish this package's edges and close the graph over everything the
	// analyzed dependencies exported.
	if len(edges) > 0 {
		g := &LockGraph{}
		for e := range edges {
			g.Edges = append(g.Edges, e)
		}
		sort.Slice(g.Edges, func(i, j int) bool {
			if g.Edges[i].From != g.Edges[j].From {
				return g.Edges[i].From < g.Edges[j].From
			}
			return g.Edges[i].To < g.Edges[j].To
		})
		pass.ExportPackageFact(g)
	}
	if scoped {
		reportCycles(pass, edges)
	}
	return nil, nil
}

// reportHeldIO emits the one-per-(function, lock) held-across-I/O finding at
// the acquisition site.
func reportHeldIO(pass *analysis.Pass, scoped bool, reported map[string]bool, lock string, acq event, io string) {
	if !scoped || reported[lock] {
		return
	}
	reported[lock] = true
	pass.Report(analysis.Diagnostic{
		Pos:     acq.pos,
		Message: fmt.Sprintf("lock %s held across I/O: %s", lock, io),
	})
}

// ownEdge is a locally witnessed edge with its reporting position.
type ownEdge struct {
	pos   token.Pos
	chain []string
}

// reportCycles unions the local edges with every dependency's LockGraph fact
// and reports each local edge that closes a cycle.
func reportCycles(pass *analysis.Pass, own map[Edge]ownEdge) {
	succ := make(map[string][]string)
	add := func(e Edge) {
		succ[e.From] = append(succ[e.From], e.To)
	}
	for _, pf := range pass.AllPackageFacts() {
		if g, ok := pf.Fact.(*LockGraph); ok {
			for _, e := range g.Edges {
				add(e)
			}
		}
	}
	ownEdges := make([]Edge, 0, len(own))
	for e := range own {
		add(e)
		ownEdges = append(ownEdges, e)
	}
	sort.Slice(ownEdges, func(i, j int) bool { return own[ownEdges[i]].pos < own[ownEdges[j]].pos })
	for _, succs := range succ {
		sort.Strings(succs)
	}

	reported := make(map[Edge]bool)
	for _, e := range ownEdges {
		if reported[e] {
			continue
		}
		// A cycle through e exists iff e.From is reachable from e.To.
		path := findPath(succ, e.To, e.From)
		if path == nil {
			continue
		}
		reported[e] = true
		cycle := append([]string{e.From}, path...)
		pass.Report(analysis.Diagnostic{
			Pos:     own[e].pos,
			Message: fmt.Sprintf("lock order cycle: %s (this acquisition closes the cycle: %s)", strings.Join(cycle, " -> "), strings.Join(own[e].chain, " -> ")),
		})
	}
}

// findPath BFSes from start to goal, returning the node path including both
// endpoints, or nil.
func findPath(succ map[string][]string, start, goal string) []string {
	prev := map[string]string{start: start}
	queue := []string{start}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == goal {
			var path []string
			for at := goal; ; at = prev[at] {
				path = append([]string{at}, path...)
				if at == start {
					return path
				}
			}
		}
		for _, m := range succ[n] {
			if _, seen := prev[m]; !seen {
				prev[m] = n
				queue = append(queue, m)
			}
		}
	}
	return nil
}

// collectEvents flattens one function body into a position-ordered stream of
// lock operations, I/O calls, and resolvable ordinary calls. Events on lines
// waived for this analyzer are dropped, so a waived Lock() contributes
// neither findings nor summary entries.
func collectEvents(pass *analysis.Pass, fn *ast.FuncDecl, waived func(token.Pos) bool) []event {
	var evs []event
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if waived(call.Pos()) {
			return true
		}
		if lock, op, shared, ok := lockOp(pass, call); ok {
			// A deferred Unlock pins the lock held to function end: drop the
			// release. (A deferred Lock is nonsense; drop it too.)
			if deferred[call] {
				return true
			}
			evs = append(evs, event{pos: call.Pos(), kind: op, lock: lock, shared: shared})
			return true
		}
		callee := callsum.StaticCallee(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		if desc, ok := ioFunc(callee); ok {
			evs = append(evs, event{pos: call.Pos(), kind: evIO, desc: desc})
			return true
		}
		evs = append(evs, event{pos: call.Pos(), kind: evCall, callee: callee})
		return true
	})
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	return evs
}

// lockOp classifies a call as a mutex operation and names the lock.
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (lock string, kind int, shared, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false, false
	}
	fn, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false, false
	}
	switch fn.Name() {
	case "Lock":
		kind = evAcquire
	case "RLock":
		kind, shared = evAcquire, true
	case "Unlock":
		kind = evRelease
	case "RUnlock":
		kind, shared = evRelease, true
	default:
		return "", 0, false, false // TryLock may fail; Wait/Signal are not ordering
	}
	return lockName(pass, sel.X), kind, shared, true
}

// lockName renders a stable identity for the mutex expression: the owning
// type and field for struct-held mutexes ("sweepd.Coordinator.mu"), the
// package-qualified name for globals, the bare name for locals.
func lockName(pass *analysis.Pass, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if v, ok := pass.TypesInfo.Uses[x.Sel].(*types.Var); ok {
			if v.IsField() {
				return ownerType(pass, x.X) + "." + v.Name()
			}
			return qualify(v)
		}
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[x].(*types.Var); ok {
			if v.IsField() { // embedded mutex accessed through the receiver
				return qualify(v)
			}
			return qualify(v)
		}
	case *ast.IndexExpr:
		return lockName(pass, x.X) + "[...]"
	}
	// Embedded mutexes promoted through a value: name the value's type.
	return ownerType(pass, e)
}

// ownerType names the struct type an expression evaluates to.
func ownerType(pass *analysis.Pass, e ast.Expr) string {
	t := pass.TypesInfo.TypeOf(e)
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok {
		name := named.Obj().Name()
		if named.Obj().Pkg() != nil {
			name = shortPkg(named.Obj().Pkg().Path()) + "." + name
		}
		return name
	}
	return "?"
}

// qualify names a non-field variable, package-qualified when package-level.
func qualify(v *types.Var) string {
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return shortPkg(v.Pkg().Path()) + "." + v.Name()
	}
	return v.Name()
}

func shortPkg(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// ioNonBlocking lists, per I/O package, the pure helpers that never touch
// the kernel and are fine to call under a lock.
var ioNonBlocking = map[string]map[string]bool{
	"os": {
		"Getenv": true, "LookupEnv": true, "Environ": true, "Expand": true, "ExpandEnv": true,
		"Getpid": true, "Getppid": true, "Getuid": true, "Geteuid": true, "Getgid": true,
		"IsNotExist": true, "IsExist": true, "IsPermission": true, "IsTimeout": true,
		"NewSyscallError": true, "TempDir": true,
	},
	"bufio": {
		"NewReader": true, "NewReaderSize": true, "NewWriter": true, "NewWriterSize": true,
		"NewScanner": true, "NewReadWriter": true, "ScanLines": true, "ScanWords": true,
	},
	"io": {
		"LimitReader": true, "MultiReader": true, "MultiWriter": true, "NewSectionReader": true,
		"NopCloser": true, "TeeReader": true, "Discard": true,
	},
	"net": {
		"JoinHostPort": true, "SplitHostPort": true, "ParseIP": true, "ParseCIDR": true,
		"IPv4": true, "CIDRMask": true, "ParseMAC": true,
	},
	"net/http": {
		"NewRequest": true, "NewRequestWithContext": true, "NewServeMux": true,
		"StatusText": true, "CanonicalHeaderKey": true, "DetectContentType": true,
	},
	"encoding/json": {
		"Marshal": true, "MarshalIndent": true, "Unmarshal": true, "Valid": true,
		"NewEncoder": true, "NewDecoder": true, "Compact": true, "Indent": true, "HTMLEscape": true,
	},
	"encoding/gob": {
		"Register": true, "RegisterName": true, "NewEncoder": true, "NewDecoder": true,
	},
}

// ioFunc classifies calls into the blocking-I/O packages. Methods count
// (file writes, response writes, encoder flushes); the pure constructors and
// formatters in ioNonBlocking do not.
func ioFunc(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	switch pkg.Path() {
	case "os", "net", "net/http", "bufio", "io", "io/ioutil", "encoding/json", "encoding/gob":
		sig := fn.Type().(*types.Signature)
		if sig.Recv() == nil && ioNonBlocking[pkg.Path()][fn.Name()] {
			return "", false
		}
		name := shortPkg(pkg.Path()) + "." + fn.Name()
		if sig.Recv() != nil {
			name = fmt.Sprintf("(%s).%s", ownerTypeOf(sig.Recv().Type(), pkg), fn.Name())
		}
		return name, true
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep", true
		}
	case "fmt":
		// Writer-directed formatting blocks on the destination.
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln":
			return "fmt." + fn.Name(), true
		}
	}
	return "", false
}

// ownerTypeOf renders a receiver type as pkg.Type.
func ownerTypeOf(t types.Type, pkg *types.Package) string {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok {
		return shortPkg(pkg.Path()) + "." + named.Obj().Name()
	}
	return shortPkg(pkg.Path())
}

// matches mirrors the determinism analyzer's fragment matching.
func matches(path, list string) bool {
	for _, frag := range strings.Split(list, ",") {
		frag = strings.TrimSpace(frag)
		if frag == "" {
			continue
		}
		if path == frag || strings.HasSuffix(path, "/"+frag) || strings.Contains(path, "/"+frag+"/") {
			return true
		}
	}
	return false
}
