package tilelink

import "testing"

func TestDeferredSendInvisibleUntilCommit(t *testing.T) {
	l := NewLink("t", 16, 64, 0)
	l.SetDeferred(true)
	if !l.Send(0, Msg{Op: OpGrant, Addr: 64}) {
		t.Fatal("deferred send rejected")
	}
	if _, ok := l.Recv(100); ok {
		t.Fatal("staged message delivered before commit")
	}
	if _, ok := l.Peek(100); ok {
		t.Fatal("staged message visible to Peek before commit")
	}
	if got := l.NextEvent(100); got != NoEvent {
		t.Fatalf("staged message visible to NextEvent: %d", got)
	}
	if l.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 (staged messages count)", l.Pending())
	}
	l.CommitDeferred()
	if m, ok := l.Recv(100); !ok || m.Addr != 64 {
		t.Fatalf("Recv after commit = %v,%v", m, ok)
	}
}

func TestDeferredOccupancyMatchesImmediate(t *testing.T) {
	// Send timing (busyUntil, readyAt) is computed at Send in both modes;
	// only publication is deferred. Replaying the same send sequence must
	// produce identical delivery cycles.
	imm := NewLink("imm", 16, 64, 1)
	def := NewLink("def", 16, 64, 1)
	def.SetDeferred(true)
	data := Msg{Op: OpGrantData, Addr: 0, Data: make([]byte, 64)}
	for now := int64(0); now < 20; now++ {
		a := imm.Send(now, data)
		b := def.Send(now, data)
		if a != b {
			t.Fatalf("cycle %d: immediate accepted=%v deferred accepted=%v", now, a, b)
		}
	}
	def.CommitDeferred()
	for now := int64(0); now < 60; now++ {
		ma, oka := imm.Recv(now)
		mb, okb := def.Recv(now)
		if oka != okb || ma.Addr != mb.Addr {
			t.Fatalf("cycle %d: immediate (%v,%v) != deferred (%v,%v)", now, ma, oka, mb, okb)
		}
	}
	if imm.Pending() != 0 || def.Pending() != 0 {
		t.Fatal("messages left undelivered")
	}
}

func TestDeferredCommitPreservesSendOrder(t *testing.T) {
	l := NewLink("t", 16, 64, 0)
	l.SetDeferred(true)
	now := int64(0)
	for i := 0; i < 8; i++ {
		m := Msg{Op: OpGrant, Addr: uint64(i) * 64}
		for !l.Send(now, m) {
			now++
		}
		now++
	}
	l.CommitDeferred()
	for i := 0; i < 8; i++ {
		m, ok := l.Recv(now + 100)
		if !ok || m.Addr != uint64(i)*64 {
			t.Fatalf("message %d out of order after commit: %v,%v", i, m, ok)
		}
	}
}

func TestDeferredResetDropsStaged(t *testing.T) {
	l := NewLink("t", 16, 64, 0)
	l.SetDeferred(true)
	l.Send(0, Msg{Op: OpGrant, Addr: 0})
	l.Reset()
	if l.Pending() != 0 {
		t.Fatal("staged message survived Reset")
	}
	l.CommitDeferred()
	if _, ok := l.Recv(100); ok {
		t.Fatal("reset staged message delivered")
	}
}

func TestSetDeferredOffWithStagedPanics(t *testing.T) {
	l := NewLink("t", 16, 64, 0)
	l.SetDeferred(true)
	l.Send(0, Msg{Op: OpGrant, Addr: 0})
	defer func() {
		if recover() == nil {
			t.Fatal("leaving deferred mode with staged messages did not panic")
		}
	}()
	l.SetDeferred(false)
}

func TestPerSideEventCounters(t *testing.T) {
	p := NewClientPort("l1", 16, 64, 1)
	p.A.Send(0, Msg{Op: OpAcquireBlock, Addr: 0, Grow: GrowNtoB})
	if _, ok := p.A.Recv(10); !ok {
		t.Fatal("acquire not delivered")
	}
	p.D.Send(10, Msg{Op: OpGrant, Addr: 0})
	// A carried one send (client) + one recv (manager); D one send (manager).
	if got := p.ClientEvents(); got != 1 {
		t.Fatalf("ClientEvents = %d, want 1", got)
	}
	if got := p.ManagerEvents(); got != 2 {
		t.Fatalf("ManagerEvents = %d, want 2", got)
	}
	if p.Events() != p.ClientEvents()+p.ManagerEvents() {
		t.Fatalf("Events %d != client %d + manager %d", p.Events(), p.ClientEvents(), p.ManagerEvents())
	}
}

func TestPerSideNextEvent(t *testing.T) {
	p := NewClientPort("l1", 16, 64, 1)
	// Client-produced traffic on A is the manager's event, not the client's.
	p.A.Send(0, Msg{Op: OpAcquireBlock, Addr: 0, Grow: GrowNtoB})
	if got := p.NextEventClient(0); got != NoEvent {
		t.Fatalf("NextEventClient sees outbound A traffic: %d", got)
	}
	if got := p.NextEventManager(0); got == NoEvent {
		t.Fatal("NextEventManager blind to inbound A traffic")
	}
	p.D.Send(5, Msg{Op: OpGrant, Addr: 0})
	if got := p.NextEventClient(5); got == NoEvent {
		t.Fatal("NextEventClient blind to inbound D traffic")
	}
	if p.NextEvent(0) > p.NextEventManager(0) || p.NextEvent(5) > p.NextEventClient(5) {
		t.Fatal("combined NextEvent later than a per-side fold")
	}
}
