package sim

// Mutation-style coverage for CheckInvariants: each test builds an otherwise
// legal state by running a real program, then seeds exactly one violation
// class through the test-only pokers and asserts the checker names it. A
// checker that misses any of these classes would silently pass every stress
// run, so this file is the checker's own regression net.

import (
	"strings"
	"testing"

	"skipit/internal/isa"
	"skipit/internal/tilelink"
)

// mutationSystem runs one store+fence on core 0 so the L1 holds 0x1000 as a
// dirty trunk line, verifies the state is legal, and hands it to the test.
func mutationSystem(t *testing.T, cores int) *System {
	t.Helper()
	s := New(DefaultConfig(cores))
	progs := make([]*isa.Program, cores)
	progs[0] = isa.NewBuilder().Store(0x1000, 7).Fence().Build()
	for i := 1; i < cores; i++ {
		progs[i] = isa.NewBuilder().Build()
	}
	if _, err := s.Run(progs, 10_000); err != nil {
		t.Fatalf("setup run: %v", err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("legal state flagged before mutation: %v", err)
	}
	return s
}

func wantViolation(t *testing.T, s *System, substr string) {
	t.Helper()
	err := s.CheckInvariants()
	if err == nil {
		t.Fatalf("mutation not detected; want error containing %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("wrong violation: got %q, want substring %q", err, substr)
	}
}

func TestMutationInclusion(t *testing.T) {
	s := mutationSystem(t, 1)
	if !s.L2.PokeDrop(0x1000) {
		t.Fatal("line not resident in L2")
	}
	wantViolation(t, s, "inclusion")
}

func TestMutationDirectoryConservatism(t *testing.T) {
	s := mutationSystem(t, 1)
	// The L1 holds trunk; rewrite the directory to claim it only granted a
	// branch.
	if !s.L2.PokePerm(0x1000, 0, tilelink.PermBranch) {
		t.Fatal("line not resident in L2")
	}
	wantViolation(t, s, "directory")
}

func TestMutationDirtyWithoutTrunk(t *testing.T) {
	s := mutationSystem(t, 1)
	if !s.L1s[0].PokeMeta(0x1000, tilelink.PermBranch, true, false) {
		t.Fatal("line not resident in L1")
	}
	wantViolation(t, s, "dirty line")
}

func TestMutationStaleSkipBit(t *testing.T) {
	s := mutationSystem(t, 1)
	// A clean L1 line with skip set while the L2 copy is dirty and no CBO
	// is in flight: a redundant-writeback drop here would lose the L2's
	// obligation to write back.
	if !s.L1s[0].PokeMeta(0x1000, tilelink.PermTrunk, false, true) {
		t.Fatal("line not resident in L1")
	}
	if !s.L2.PokeDirty(0x1000, true) {
		t.Fatal("line not resident in L2")
	}
	wantViolation(t, s, "skip-bit")
}

func TestMutationSingleWriter(t *testing.T) {
	s := mutationSystem(t, 2)
	// Core 0 owns the trunk; forge a second holder in the directory.
	if !s.L2.PokePerm(0x1000, 1, tilelink.PermBranch) {
		t.Fatal("line not resident in L2")
	}
	wantViolation(t, s, "single-writer")
}

func TestMutationFlushCounter(t *testing.T) {
	s := mutationSystem(t, 1)
	s.L1s[0].FlushUnit().PokePendingCount(1)
	wantViolation(t, s, "flush counter")
}
