package l1

import (
	"fmt"

	"skipit/internal/linepool"
	"skipit/internal/tilelink"
	"skipit/internal/trace"
)

// wbUnit is the writeback unit (§3.3): it releases one evicted line at a
// time to the L2 and holds probes (wb_rdy low) while doing so. Per §5.4.2,
// wb_rdy low also blocks flush queue dequeues.
type wbUnit struct {
	state wbState
	addr  uint64
	data  []byte
	dirty bool
	perm  tilelink.Perm
	txn   uint64 // transaction id of the Release→ReleaseAck chain
}

type wbState uint8

const (
	wbIdle wbState = iota
	wbSendRelease
	wbWaitAck
)

func (w *wbUnit) idle() bool { return w.state == wbIdle }

// start snapshots an eviction. Only a dirty line's data travels with the
// Release, so only that case draws a (pooled) buffer; a clean Release carries
// no payload and needs no copy at all.
func (w *wbUnit) start(pool *linepool.Pool, addr uint64, data []byte, dirty bool, perm tilelink.Perm, txn uint64) {
	if w.state != wbIdle {
		panic("l1: writeback unit double start")
	}
	w.addr = addr
	w.dirty = dirty
	w.perm = perm
	w.txn = txn
	w.data = nil
	if dirty {
		w.data = pool.Get(len(data))
		copy(w.data, data)
	}
	w.state = wbSendRelease
}

func (d *DCache) tickWB(now int64) {
	w := &d.wb
	if w.state != wbSendRelease {
		return
	}
	shrink := tilelink.ShrinkFor(w.perm, tilelink.PermNone)
	msg := tilelink.Msg{Op: tilelink.OpRelease, Addr: w.addr, Source: d.cfg.Source, Shrink: shrink, Txn: w.txn}
	dirtyArg := uint64(0)
	if w.dirty {
		msg.Op = tilelink.OpReleaseData
		msg.Data = w.data
		dirtyArg = 1
	}
	if d.port.C.Send(now, msg) {
		if d.tr != nil {
			trace.EmitTxn(d.tr, now, d.name, "release", w.txn, w.addr, msg.Op.String())
		}
		d.rec.Record(now, trace.RecRelease, trace.CauseNone, w.txn, w.addr, dirtyArg)
		w.state = wbWaitAck
	}
}

// onReleaseAck completes the in-flight eviction.
func (d *DCache) onReleaseAck(now int64, msg tilelink.Msg) {
	if d.wb.state != wbWaitAck || d.wb.addr != msg.Addr {
		panic(fmt.Sprintf("l1[%d]: stray ReleaseAck %#x", d.cfg.Source, msg.Addr))
	}
	if d.tr != nil {
		trace.EmitTxn(d.tr, now, d.name, "release-ack", d.wb.txn, d.wb.addr, "")
	}
	d.rec.Record(now, trace.RecReleaseAck, trace.CauseNone, d.wb.txn, d.wb.addr, 0)
	d.wb = wbUnit{}
}

// probeUnit handles coherence probes from the L2 (§3.3). Exactly one probe
// is serviced at a time; arrival lowers probe_rdy, which blocks flush queue
// dequeues until the probe has invalidated conflicting flush queue entries
// and completed (§5.4.1).
type probeUnit struct {
	q     []tilelink.Msg
	state pState
	cur   tilelink.Msg
	resp  tilelink.Msg
}

type pState uint8

const (
	pIdle pState = iota
	pInvalFlushQ
	pRespond
)

func (p *probeUnit) busy() bool { return p.state != pIdle || len(p.q) > 0 }

// probeRdy mirrors §5.4.1: low from the moment a probe arrives until the
// probe unit finishes with it.
func (d *DCache) probeRdy() bool { return !d.probe.busy() }

func (d *DCache) enqueueProbe(msg tilelink.Msg) {
	d.probe.q = append(d.probe.q, msg) //skipit:ignore hotalloc probe queue depth is bounded by outstanding L2 probes (one per MSHR); append reuses its backing
}

func (d *DCache) tickProbe(now int64) {
	p := &d.probe
	switch p.state {
	case pIdle:
		if len(p.q) == 0 {
			return
		}
		// §5.4.1/§5.4.2: the probe may not start while an FSHR is
		// mutating line state (flush_rdy low) or the WBU is mid-release
		// (wb_rdy low). Both windows are bounded, so no deadlock: an
		// FSHR waiting in root_release_ack keeps flush_rdy high, and
		// its L2-side transaction is what generates further probes.
		if !d.flush.FlushRdy() || !d.wb.idle() {
			return
		}
		// An MSHR mid-install/replay on the probed line is the §3.3
		// mshr_rdy window; hold the probe for those bounded states.
		if m := d.mshrFor(p.q[0].Addr); m != nil &&
			(m.state == mVictim || m.state == mInstall || m.state == mReplay) {
			return
		}
		p.cur = p.q[0]
		copy(p.q, p.q[1:])
		p.q = p.q[:len(p.q)-1]
		// First cycle: invalidate conflicting flush queue entries via
		// the probe_invalidate input (§5.4.1).
		d.flush.ProbeInvalidate(p.cur.Addr, p.cur.Cap)
		p.state = pInvalFlushQ

	case pInvalFlushQ:
		// Second cycle: downgrade the line and build the response.
		p.resp = d.buildProbeAck(now, p.cur)
		p.state = pRespond
		d.tickProbe2(now)

	case pRespond:
		d.tickProbe2(now)
	}
}

func (d *DCache) tickProbe2(now int64) {
	p := &d.probe
	if p.state != pRespond {
		return
	}
	if d.port.C.Send(now, p.resp) {
		d.ctr.probesServed.Inc()
		d.rec.Record(now, trace.RecProbeAck, trace.CauseNone, p.resp.Txn, p.resp.Addr, 0)
		if d.tr != nil {
			trace.EmitTxn(d.tr, now, d.name, "probe-ack", p.resp.Txn, p.resp.Addr, p.resp.Op.String())
		}
		p.state = pIdle
		p.cur = tilelink.Msg{}
		p.resp = tilelink.Msg{}
	}
}

// buildProbeAck applies the permission downgrade a probe demands and
// constructs the acknowledgement, carrying dirty data when the downgrade
// surrenders it. Surrendering dirty data to a toB probe leaves our copy
// clean while making L2 dirty, so the skip bit is cleared to preserve the
// §6.2 invariant.
func (d *DCache) buildProbeAck(now int64, probe tilelink.Msg) tilelink.Msg {
	addr := probe.Addr
	meta := d.lookup(addr)
	if meta == nil {
		return tilelink.Msg{
			Op:     tilelink.OpProbeAck,
			Addr:   addr,
			Source: d.cfg.Source,
			Shrink: tilelink.ShrinkNtoN,
			Txn:    probe.Txn,
		}
	}
	from := meta.perm
	to := probe.Cap.Perm()
	if to >= from {
		// Report-only: we already hold no more than the cap.
		return tilelink.Msg{
			Op:     tilelink.OpProbeAck,
			Addr:   addr,
			Source: d.cfg.Source,
			Shrink: tilelink.ShrinkFor(from, from),
			Txn:    probe.Txn,
		}
	}
	shrink := tilelink.ShrinkFor(from, to)
	msg := tilelink.Msg{Op: tilelink.OpProbeAck, Addr: addr, Source: d.cfg.Source, Shrink: shrink, Txn: probe.Txn}
	if meta.dirty {
		way := d.findWay(addr, true)
		set := d.index(addr)
		data := d.cfg.Pool.Get(int(d.cfg.LineBytes))
		copy(data, d.data[set][way])
		msg.Op = tilelink.OpProbeAckData
		msg.Data = data
		meta.dirty = false
	}
	switch probe.Cap {
	case tilelink.CapToN:
		meta.valid = false
		meta.skip = false
		d.clearPoison(d.lineAddr(addr))
	case tilelink.CapToB:
		meta.perm = tilelink.PermBranch
		if msg.Op == tilelink.OpProbeAckData {
			// L2 is now the dirty holder; our clean copy is not
			// persisted (§6.2 case 3 boundary).
			meta.skip = false
			// Skip-audit: the surrendered data clears the skip bit, so a
			// future CBO on this line will issue again.
			d.rec.Record(now, trace.RecSkipAudit, trace.CauseDataSurrendered, probe.Txn, addr, 0)
		}
	}
	return msg
}
