// Package isa defines the instruction vocabulary the simulated cores
// execute: 64-bit loads and stores, the RISC-V cache management operations
// CBO.CLEAN and CBO.FLUSH (§2.6), the full-strength FENCE RW,RW (the only
// fence the BOOM core implements, §4), and a compute no-op for padding.
//
// Programs are built with a fluent builder and are plain data: the boom
// package gives them timing, the sim package gives them memory.
package isa

import "fmt"

// Op is an instruction opcode.
type Op uint8

const (
	OpNop Op = iota
	OpLoad
	OpStore
	OpCboClean
	OpCboFlush
	OpFence
	// OpCflushDL1 is SiFive's vendor extension CFLUSH.D.L1 (§2.6): it
	// evicts the line from the L1 only — dirty data reaches the L2, not
	// main memory — which is exactly why it cannot substitute for the
	// CBO.X instructions in persistence code.
	OpCflushDL1
	// OpAmoAdd and OpAmoSwap are RISC-V A-extension atomics (§2.4 lists
	// them among the orderings RVWMO provides): read-modify-write on the
	// 64-bit word, returning the old value. Like stores they live in the
	// STQ and fire at the ROB head, executing atomically in the L1 with
	// exclusive (Trunk) permissions.
	OpAmoAdd
	OpAmoSwap
)

func (o Op) String() string {
	return [...]string{"nop", "ld", "sd", "cbo.clean", "cbo.flush", "fence", "cflush.d.l1", "amoadd", "amoswap"}[o]
}

// IsMem reports whether the opcode accesses the memory system.
func (o Op) IsMem() bool { return o != OpNop }

// IsStoreQueue reports whether the opcode occupies an STQ slot: stores,
// CBO.X (encoded as STQ requests, §5.1) and fences (§3.2).
func (o Op) IsStoreQueue() bool {
	switch o {
	case OpStore, OpCboClean, OpCboFlush, OpFence, OpCflushDL1, OpAmoAdd, OpAmoSwap:
		return true
	}
	return false
}

// Instr is one instruction. Addr is a byte address (8-byte aligned for
// loads/stores); Data is the store payload. Loads deliver their result via
// the per-instruction timing record rather than a register file — the
// microbenchmarks of §7 measure cycles, not dataflow.
type Instr struct {
	Op   Op
	Addr uint64
	Data uint64
}

func (i Instr) String() string {
	switch i.Op {
	case OpNop, OpFence:
		return i.Op.String()
	case OpStore, OpAmoAdd, OpAmoSwap:
		return fmt.Sprintf("%s %#x <- %d", i.Op, i.Addr, i.Data)
	default:
		return fmt.Sprintf("%s %#x", i.Op, i.Addr)
	}
}

// Program is an instruction sequence for one hardware thread.
type Program struct {
	Instrs []Instr
}

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.Instrs) }

// Builder assembles programs fluently:
//
//	p := isa.NewBuilder().Store(a, 1).CboFlush(a).Fence().Load(a).Build()
type Builder struct {
	instrs []Instr
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder { return &Builder{} }

// Store appends a 64-bit store of val to addr.
func (b *Builder) Store(addr, val uint64) *Builder {
	b.instrs = append(b.instrs, Instr{Op: OpStore, Addr: addr, Data: val})
	return b
}

// Load appends a 64-bit load from addr.
func (b *Builder) Load(addr uint64) *Builder {
	b.instrs = append(b.instrs, Instr{Op: OpLoad, Addr: addr})
	return b
}

// CboClean appends a non-invalidating writeback of addr's line.
func (b *Builder) CboClean(addr uint64) *Builder {
	b.instrs = append(b.instrs, Instr{Op: OpCboClean, Addr: addr})
	return b
}

// CboFlush appends an invalidating writeback of addr's line.
func (b *Builder) CboFlush(addr uint64) *Builder {
	b.instrs = append(b.instrs, Instr{Op: OpCboFlush, Addr: addr})
	return b
}

// Cbo appends CboClean when clean is true, else CboFlush.
func (b *Builder) Cbo(addr uint64, clean bool) *Builder {
	if clean {
		return b.CboClean(addr)
	}
	return b.CboFlush(addr)
}

// AmoAdd appends an atomic fetch-and-add of val to the word at addr.
func (b *Builder) AmoAdd(addr, val uint64) *Builder {
	b.instrs = append(b.instrs, Instr{Op: OpAmoAdd, Addr: addr, Data: val})
	return b
}

// AmoSwap appends an atomic exchange of val with the word at addr.
func (b *Builder) AmoSwap(addr, val uint64) *Builder {
	b.instrs = append(b.instrs, Instr{Op: OpAmoSwap, Addr: addr, Data: val})
	return b
}

// CflushDL1 appends SiFive's CFLUSH.D.L1: evict addr's line from the L1
// data cache to the next level (not to memory).
func (b *Builder) CflushDL1(addr uint64) *Builder {
	b.instrs = append(b.instrs, Instr{Op: OpCflushDL1, Addr: addr})
	return b
}

// Fence appends a FENCE RW,RW.
func (b *Builder) Fence() *Builder {
	b.instrs = append(b.instrs, Instr{Op: OpFence})
	return b
}

// Nop appends a compute no-op.
func (b *Builder) Nop() *Builder {
	b.instrs = append(b.instrs, Instr{Op: OpNop})
	return b
}

// Nops appends n compute no-ops, modeling the address arithmetic and branch
// overhead of a benchmark loop iteration.
func (b *Builder) Nops(n int) *Builder {
	for i := 0; i < n; i++ {
		b.Nop()
	}
	return b
}

// StoreRegion appends one store per cache line covering [base, base+size).
func (b *Builder) StoreRegion(base, size, lineBytes uint64, val uint64) *Builder {
	for a := base; a < base+size; a += lineBytes {
		b.Store(a, val)
	}
	return b
}

// CboRegion appends one CBO.X per cache line covering [base, base+size).
func (b *Builder) CboRegion(base, size, lineBytes uint64, clean bool) *Builder {
	for a := base; a < base+size; a += lineBytes {
		b.Cbo(a, clean)
	}
	return b
}

// CboRegionLoop is CboRegion with overheadNops no-ops per line, modeling the
// measured benchmark loop's address arithmetic and branch instructions.
func (b *Builder) CboRegionLoop(base, size, lineBytes uint64, clean bool, overheadNops int) *Builder {
	for a := base; a < base+size; a += lineBytes {
		b.Cbo(a, clean).Nops(overheadNops)
	}
	return b
}

// LoadRegion appends one load per cache line covering [base, base+size).
func (b *Builder) LoadRegion(base, size, lineBytes uint64) *Builder {
	for a := base; a < base+size; a += lineBytes {
		b.Load(a)
	}
	return b
}

// Mark returns the index the next appended instruction will have; benches
// use marks to measure cycle spans between program points.
func (b *Builder) Mark() int { return len(b.instrs) }

// Build returns the assembled program.
func (b *Builder) Build() *Program {
	return &Program{Instrs: b.instrs}
}
