package l1

import (
	"fmt"

	"skipit/internal/core"
	"skipit/internal/metrics"
	"skipit/internal/tilelink"
	"skipit/internal/trace"
)

// CanAccept reports whether Submit would accept a request at cycle now: the
// per-cycle fire width and the input pipeline depth both bound acceptance.
func (d *DCache) CanAccept(now int64) bool {
	if len(d.inQ) >= d.cfg.InputDepth {
		return false
	}
	return d.lastAcceptCycle != now || d.acceptedThisCycle < d.cfg.InputWidth
}

// Submit offers an LSU request to the data cache at cycle now. A false
// return means structural rejection (width/depth); the LSU keeps the request
// and re-fires later. Accepted requests produce exactly one Resp, which may
// be a nack.
func (d *DCache) Submit(now int64, req Req) bool {
	if !d.CanAccept(now) {
		return false
	}
	if d.lastAcceptCycle != now {
		d.lastAcceptCycle = now
		d.acceptedThisCycle = 0
	}
	d.acceptedThisCycle++
	d.inQ = append(d.inQ, pendingReq{req: req, readyAt: now + 1}) //skipit:ignore hotalloc inQ is bounded by the accept-width backpressure (CanAccept); append reuses its backing after warmup
	return true
}

// PollResponses returns every response ready at cycle now. The returned
// slice is valid only until the next PollResponses call: it reuses a scratch
// buffer so the steady-state cycle loop does not allocate.
func (d *DCache) PollResponses(now int64) []Resp {
	out := d.respScratch[:0]
	kept := d.respQ[:0]
	for _, r := range d.respQ {
		if r.readyAt <= now {
			out = append(out, r.resp) //skipit:ignore hotalloc scratch-buffer reuse; capacity persists across calls (see doc comment)
		} else {
			kept = append(kept, r) //skipit:ignore hotalloc filter-in-place reslice of respQ; never exceeds the original backing array
		}
	}
	d.respQ = kept
	d.respScratch = out
	return out
}

func (d *DCache) respond(at int64, r Resp) {
	d.respQ = append(d.respQ, timedResp{resp: r, readyAt: at}) //skipit:ignore hotalloc respQ depth is bounded by outstanding requests (ROB-limited); append reuses its backing after warmup
}

// Tick advances the data cache one cycle: ingest TL-D and TL-B, run the
// probe and writeback units, the flush unit, the MSHRs, and finally the
// request pipeline.
func (d *DCache) Tick(now int64) {
	d.sinkD(now)
	d.sinkB(now)
	d.tickProbe(now)
	d.tickWB(now)
	d.flush.Tick(now, d.probeRdy(), d.wb.idle())
	d.tickMSHRs(now)
	d.processRequests(now)
}

// sinkD routes TL-D messages: grants to MSHRs, release acks to the WBU, and
// RootReleaseAcks to the flush unit (§5.2 state 6).
func (d *DCache) sinkD(now int64) {
	for {
		msg, ok := d.port.D.Recv(now)
		if !ok {
			return
		}
		switch msg.Op {
		case tilelink.OpGrant, tilelink.OpGrantData, tilelink.OpGrantDataDirty:
			d.onGrant(now, msg)
		case tilelink.OpReleaseAck:
			d.onReleaseAck(now, msg)
		case tilelink.OpRootReleaseAck:
			d.flush.OnRootReleaseAck(now, msg.Addr)
		default:
			panic(fmt.Sprintf("l1[%d]: %v on channel D", d.cfg.Source, msg.Op))
		}
	}
}

// sinkB queues incoming probes for the probe unit.
func (d *DCache) sinkB(now int64) {
	for {
		msg, ok := d.port.B.Recv(now)
		if !ok {
			return
		}
		if msg.Op != tilelink.OpProbe {
			panic(fmt.Sprintf("l1[%d]: %v on channel B", d.cfg.Source, msg.Op))
		}
		d.enqueueProbe(msg)
	}
}

// processRequests serves the input pipeline in order. A request that cannot
// be served produces a nack response; the pipeline never reorders requests
// for the same cycle, mirroring the cache's in-order request bus.
func (d *DCache) processRequests(now int64) {
	kept := d.inQ[:0]
	for _, p := range d.inQ {
		if p.readyAt > now {
			kept = append(kept, p) //skipit:ignore hotalloc filter-in-place reslice of inQ; never exceeds the original backing array
			continue
		}
		d.process(now, p.req)
	}
	d.inQ = kept
}

func (d *DCache) process(now int64, req Req) {
	lineAddr := d.lineAddr(req.Addr)

	// A probe mid-downgrade on this line makes its state transient; nack
	// and let the LSU retry, as the blocked metadata port would.
	if d.probe.state != pIdle && d.lineAddr(d.probe.cur.Addr) == lineAddr {
		d.nack(now, req, d.ctr.nackProbeTransient)
		return
	}

	if d.chaos != nil && d.chaos.ForceNack(now) {
		d.nack(now, req, d.ctr.nackChaos)
		return
	}

	// ECC check-on-access: any request touching a poisoned line detects the
	// corruption here; the line is invalidated and the request proceeds as
	// a miss, refetching the intact copy from the L2.
	if len(d.poisoned) != 0 {
		d.eccScrub(now, lineAddr)
	}

	switch req.Kind {
	case CboClean, CboFlush:
		d.processCbo(now, req, lineAddr)
	case CflushDL1:
		d.processCflushDL1(now, req, lineAddr)
	case Load:
		d.processLoad(now, req, lineAddr)
	case Store:
		d.processStore(now, req, lineAddr)
	case AmoAdd, AmoSwap:
		d.processAmo(now, req, lineAddr)
	}
}

// processAmo executes an atomic read-modify-write: same permission and
// conflict rules as a store, but the old word value is returned and the
// response waits for the data (no early MSHR acknowledgement).
func (d *DCache) processAmo(now int64, req Req, lineAddr uint64) {
	d.ctr.stores.Inc()
	if d.flush.StoreConflict(lineAddr) {
		d.nack(now, req, d.ctr.nackFlushConflict)
		return
	}
	if d.mshrFor(lineAddr) != nil {
		d.missPath(now, req, lineAddr)
		return
	}
	if meta := d.lookup(lineAddr); meta != nil && meta.perm.CanWrite() {
		set := d.index(lineAddr)
		way := d.findWay(lineAddr, true)
		old := d.amoApply(set, way, req)
		meta.dirty = true
		meta.lastUsed = now
		d.ctr.storeHits.Inc()
		d.respond(now+int64(d.cfg.HitLatency), Resp{ID: req.ID, Data: old})
		return
	}
	d.ctr.storeMisses.Inc()
	d.missPath(now, req, lineAddr)
}

// amoApply performs the read-modify-write on the data array and returns the
// old value.
func (d *DCache) amoApply(set, way int, req Req) uint64 {
	old := d.readWord(set, way, req.Addr)
	switch req.Kind {
	case AmoAdd:
		d.writeWord(set, way, req.Addr, old+req.Data)
	case AmoSwap:
		d.writeWord(set, way, req.Addr, req.Data)
	default:
		panic("l1: amoApply on non-AMO request")
	}
	return old
}

// processCflushDL1 implements the SiFive vendor instruction: evict the line
// from the L1 to the L2 via the writeback unit. A miss completes
// immediately; a hit needs the WBU free (one eviction at a time) and must
// not collide with the flush unit's bookkeeping.
func (d *DCache) processCflushDL1(now int64, req Req, lineAddr uint64) {
	// An in-flight miss will install the line after us; wait for it so
	// the eviction actually evicts (same hazard as processCbo).
	if d.mshrFor(lineAddr) != nil {
		d.nack(now, req, d.ctr.nackMSHRBusy)
		return
	}
	meta := d.lookup(lineAddr)
	if meta == nil {
		// Not in L1: nothing to evict (the instruction makes no
		// guarantee about deeper levels — its §2.6 limitation).
		d.respond(now+int64(d.cfg.CboLatency), Resp{ID: req.ID})
		return
	}
	if d.flush.QueuedConflict(lineAddr) || !d.flush.FlushRdy() || !d.wb.idle() {
		d.nack(now, req, d.ctr.nackFlushConflict)
		return
	}
	d.flush.EvictInvalidate(lineAddr)
	d.clearPoison(lineAddr)
	way := d.findWay(lineAddr, true)
	set := d.index(lineAddr)
	d.wb.start(d.cfg.Pool, lineAddr, d.data[set][way], meta.dirty, meta.perm, d.cfg.Txns.Next())
	d.ctr.writebacks.Inc()
	meta.valid = false
	meta.dirty = false
	meta.skip = false
	d.respond(now+int64(d.cfg.CboLatency), Resp{ID: req.ID})
}

func (d *DCache) processCbo(now int64, req Req, lineAddr uint64) {
	// A CBO.X against a line with an in-flight miss would snapshot stale
	// metadata (the MSHR's install and replays have not happened yet);
	// nack until the miss completes.
	if d.mshrFor(lineAddr) != nil {
		d.nack(now, req, d.ctr.nackMSHRBusy)
		return
	}
	meta := core.LineMeta{}
	if m := d.lookup(lineAddr); m != nil {
		meta = core.LineMeta{Hit: true, Dirty: m.dirty, Perm: m.perm, Skip: m.skip}
	}
	switch d.flush.Offer(now, lineAddr, req.Kind == CboClean, meta) {
	case core.OfferAccepted, core.OfferDropped:
		// Buffered or eliminated: the instruction is complete for the
		// LSU (§5.2) once it clears the cache pipeline. CBO.X requests
		// traverse the longer metadata-snapshot + flush-queue
		// arbitration path before success is signaled.
		d.respond(now+int64(d.cfg.CboLatency), Resp{ID: req.ID})
	case core.OfferNack:
		d.nack(now, req, d.ctr.nackFlushConflict)
	}
}

func (d *DCache) processLoad(now int64, req Req, lineAddr uint64) {
	d.ctr.loads.Inc()
	// A line with an active MSHR must be accessed through it: older
	// buffered requests (e.g. the store of a BtoT upgrade) replay in
	// arrival order, and a direct hit on the still-valid old copy would
	// read stale data or reorder ahead of them (§3.3). The replay queue
	// either takes the request as a secondary or nacks it.
	if d.mshrFor(lineAddr) != nil {
		d.missPath(now, req, lineAddr)
		return
	}
	if meta := d.lookup(lineAddr); meta != nil && meta.perm.CanRead() {
		set := d.index(lineAddr)
		way := d.findWay(lineAddr, true)
		meta.lastUsed = now
		d.ctr.loadHits.Inc()
		d.respond(now+int64(d.cfg.HitLatency), Resp{ID: req.ID, Data: d.readWord(set, way, req.Addr)})
		return
	}
	// Miss: consult the flush unit first (§5.3). A miss on a line with a
	// queued flush request would install the line and invalidate the
	// queued snapshot; nack until the request executes. A filled FSHR
	// buffer forwards; an unfilled one nacks.
	if d.flush.QueuedConflict(lineAddr) {
		d.nack(now, req, d.ctr.nackFlushConflict)
		return
	}
	if fwd, mustNack := d.flush.LoadConflict(lineAddr); mustNack {
		d.nack(now, req, d.ctr.nackFlushConflict)
		return
	} else if fwd != nil {
		off := req.Addr & (d.cfg.LineBytes - 1)
		var v uint64
		for i := uint64(0); i < 8; i++ {
			v |= uint64(fwd[off+i]) << (8 * i)
		}
		d.ctr.fshrForwards.Inc()
		d.respond(now+int64(d.cfg.HitLatency), Resp{ID: req.ID, Data: v})
		return
	}
	d.ctr.loadMisses.Inc()
	trace.Emit(d.tr, now, d.name, "load-miss", lineAddr, "")
	d.missPath(now, req, lineAddr)
}

func (d *DCache) processStore(now int64, req Req, lineAddr uint64) {
	d.ctr.stores.Inc()
	// §5.3 store rules come first: even a would-be hit must nack while the
	// flush unit holds a conflicting request.
	if d.flush.StoreConflict(lineAddr) {
		d.nack(now, req, d.ctr.nackFlushConflict)
		return
	}
	// Same MSHR-serialization rule as loads (§3.3: consecutive writes
	// must not reorder around the replay queue).
	if d.mshrFor(lineAddr) != nil {
		d.missPath(now, req, lineAddr)
		return
	}
	if meta := d.lookup(lineAddr); meta != nil && meta.perm.CanWrite() {
		set := d.index(lineAddr)
		way := d.findWay(lineAddr, true)
		d.writeWord(set, way, req.Addr, req.Data)
		meta.dirty = true
		meta.lastUsed = now
		d.ctr.storeHits.Inc()
		d.respond(now+int64(d.cfg.HitLatency), Resp{ID: req.ID})
		return
	}
	d.ctr.storeMisses.Inc()
	trace.Emit(d.tr, now, d.name, "store-miss", lineAddr, "")
	d.missPath(now, req, lineAddr)
}

// missPath allocates or joins an MSHR for a missing line. Stores are
// acknowledged at acceptance (the ROB considers them complete once in the
// data cache, §3.3); loads respond at replay.
func (d *DCache) missPath(now int64, req Req, lineAddr uint64) {
	// TileLink forbids a master from acquiring a block while its own
	// Release for that block still awaits a ReleaseAck: the L2 would
	// register the fresh grant and then process the stale Release,
	// deregistering a copy we still hold. Hold the miss until the
	// writeback unit drains (the ack window is bounded).
	if !d.wb.idle() && d.wb.addr == lineAddr {
		d.nack(now, req, d.ctr.nackMSHRBusy)
		return
	}
	if m := d.mshrFor(lineAddr); m != nil {
		if !m.canAcceptSecondary(req, d.cfg.RPQDepth) {
			d.nack(now, req, d.ctr.nackMSHRFull)
			return
		}
		m.rpq = append(m.rpq, req) //skipit:ignore hotalloc replay queue is bounded by RPQDepth (checked above); append reuses its backing after warmup
		// Plain stores are complete once buffered (§3.3); loads and
		// AMOs respond at replay with their data.
		if req.Kind == Store {
			d.respond(now+int64(d.cfg.HitLatency), Resp{ID: req.ID})
		}
		return
	}
	m := d.freeMSHR(now)
	if m == nil {
		d.nack(now, req, d.ctr.nackMSHRFull)
		return
	}
	d.allocMSHR(now, m, req)
	if req.Kind == Store {
		d.respond(now+int64(d.cfg.HitLatency), Resp{ID: req.ID})
	}
}

// nack rejects a request, attributing it to exactly one cause counter.
func (d *DCache) nack(now int64, req Req, cause *metrics.Counter) {
	d.ctr.nacks.Inc()
	cause.Inc()
	d.respond(now+1, Resp{ID: req.ID, Nack: true})
}
