package core

import (
	"fmt"

	"skipit/internal/tilelink"
	"skipit/internal/trace"
)

// FSHRState enumerates the flush status holding register states of Fig. 7.
type FSHRState uint8

const (
	FSHRInvalid FSHRState = iota
	FSHRMetaWrite
	FSHRFillBuffer
	FSHRRootReleaseData
	FSHRRootRelease
	FSHRRootReleaseAck
)

func (s FSHRState) String() string {
	switch s {
	case FSHRInvalid:
		return "invalid"
	case FSHRMetaWrite:
		return "meta_write"
	case FSHRFillBuffer:
		return "fill_buffer"
	case FSHRRootReleaseData:
		return "root_release_data"
	case FSHRRootRelease:
		return "root_release"
	case FSHRRootReleaseAck:
		return "root_release_ack"
	}
	return fmt.Sprintf("FSHRState(%d)", uint8(s))
}

// fshr asynchronously executes one dequeued CBO.X request (§5.2). The
// execution plan — which states the register passes through — is fixed at
// allocation time from the request's snapshot metadata:
//
//	hit+dirty:        meta_write -> fill_buffer -> root_release_data
//	hit+clean flush:  meta_write -> root_release
//	hit+clean clean:  root_release
//	miss:             root_release
//
// and every plan ends in root_release_ack. A RootRelease is sent even on a
// miss because the line may still need to be written back from other cores
// or from higher levels of the hierarchy (§5.2).
type fshr struct {
	state FSHRState
	req   flushReq
	// allocAt is the cycle the request was dequeued into this FSHR; the
	// flush unit observes completion latency against it at the ack.
	allocAt int64

	// buffer is the per-FSHR data buffer (§5.2) holding the dirty line
	// being written back.
	buffer       []byte
	bufferFilled bool
	// fillCycles counts remaining data-array read cycles; one with the
	// widened array, lineBytes/8 without (§5.2).
	fillCycles int
}

// flushReq is one flush queue entry (§5.2): the line address plus the
// bookkeeping bits snapshotted from the metadata array at enqueue time.
type flushReq struct {
	addr    uint64 // line-aligned
	isHit   bool
	isDirty bool
	isClean bool // CBO.CLEAN (vs CBO.FLUSH)
	// txn is the transaction id assigned at enqueue; the whole CBO
	// lifecycle — queue entry, FSHR, RootRelease, ack — shares it.
	txn uint64
}

func (r flushReq) kind() string {
	if r.isClean {
		return "clean"
	}
	return "flush"
}

// allocate loads a dequeued request into a free FSHR and sets up the
// execution plan (the invalid-state action of Fig. 7).
func (f *fshr) allocate(req flushReq, now int64) {
	if f.state != FSHRInvalid {
		panic("core: allocating busy FSHR")
	}
	f.req = req
	f.allocAt = now
	f.bufferFilled = false
	switch {
	case req.isHit && req.isDirty:
		f.state = FSHRMetaWrite
	case req.isHit && !req.isClean:
		// Clean line, CBO.FLUSH: permissions must still be invalidated.
		f.state = FSHRMetaWrite
	default:
		// Hit on a clean line with CBO.CLEAN, or a miss: metadata is
		// unchanged; go straight to the data-less release.
		f.state = FSHRRootRelease
	}
}

// busyPreAck reports whether the FSHR holds a request and has not yet reached
// root_release_ack. The flush unit's flush_rdy output is the NOR of this
// across all FSHRs (§5.4.1).
func (f *fshr) busyPreAck() bool {
	return f.state != FSHRInvalid && f.state != FSHRRootReleaseAck
}

// active reports whether the FSHR holds a request in any state.
func (f *fshr) active() bool { return f.state != FSHRInvalid }

// step advances the FSHR state machine by one cycle. It returns true when the
// FSHR finished a state's work this cycle (for stats/tracing).
func (u *FlushUnit) stepFSHR(now int64, f *fshr) {
	switch f.state {
	case FSHRInvalid, FSHRRootReleaseAck:
		// Nothing to do; root_release_ack exits via OnRootReleaseAck.

	case FSHRMetaWrite:
		// §5.2 state 2: invalidate for a flush, clear the dirty bit for
		// a clean. Per §6.1 the skip bit is left alone: while this
		// writeback is in flight a stale set bit lets redundant CBO.X
		// requests drop immediately, which is safe because this FSHR
		// already carries the line's dirty data and the flush counter
		// holds fences until the acknowledgement arrives.
		if f.req.isClean {
			u.ports.MetaClearDirty(f.req.addr)
		} else {
			u.ports.MetaInvalidate(f.req.addr)
		}
		if f.req.isDirty {
			f.fillCycles = 1
			if !u.cfg.WideDataArray {
				f.fillCycles = int(u.cfg.LineBytes / 8)
			}
			f.state = FSHRFillBuffer
		} else {
			f.state = FSHRRootRelease
		}

	case FSHRFillBuffer:
		// §5.2 state 3: the widened data array serves the whole line in
		// one cycle; the stock array needs one word per cycle.
		f.fillCycles--
		if f.fillCycles > 0 {
			return
		}
		f.buffer = u.ports.DataRead(f.req.addr)
		f.bufferFilled = true
		f.state = FSHRRootReleaseData

	case FSHRRootReleaseData:
		// §5.2 state 4: send RootRelease with data. The TL-C link
		// models the four beats a 64 B line takes on the 16 B bus.
		m := tilelink.Msg{
			Op:     rootReleaseOp(f.req.isClean, true),
			Addr:   f.req.addr,
			Source: u.cfg.Source,
			Dirty:  true,
			Data:   f.buffer,
			Txn:    f.req.txn,
		}
		if u.ports.SendRootRelease(now, m) {
			u.ctr.rootReleases.Inc()
			u.ctr.dataWritebacks.Inc()
			if u.tr != nil {
				trace.EmitTxn(u.tr, now, u.name, "root-release", f.req.txn, f.req.addr, m.Op.String())
			}
			u.rec.Record(now, trace.RecRootRelease, trace.CauseDirtyLine, f.req.txn, f.req.addr, 1)
			// Skip-audit: the line was dirty in L1, so this CBO issues a
			// full data writeback.
			u.rec.Record(now, trace.RecSkipAudit, trace.CauseDirtyLine, f.req.txn, f.req.addr, 1)
			f.state = FSHRRootReleaseAck
		} else {
			u.ctr.stallLinkBusy.Inc()
		}

	case FSHRRootRelease:
		// §5.2 state 5: send RootRelease without data in one beat.
		m := tilelink.Msg{
			Op:     rootReleaseOp(f.req.isClean, false),
			Addr:   f.req.addr,
			Source: u.cfg.Source,
			Txn:    f.req.txn,
		}
		if u.ports.SendRootRelease(now, m) {
			u.ctr.rootReleases.Inc()
			if u.tr != nil {
				trace.EmitTxn(u.tr, now, u.name, "root-release", f.req.txn, f.req.addr, m.Op.String())
			}
			u.rec.Record(now, trace.RecRootRelease, trace.CauseNone, f.req.txn, f.req.addr, 0)
			// Skip-audit: no data travels from this L1 — either the line
			// was clean here (the LLC decides whether anything is dirty
			// below us) or a flush forced a data-less release.
			cause := trace.CauseCleanLine
			if !f.req.isClean {
				cause = trace.CauseFlushForced
			}
			u.rec.Record(now, trace.RecSkipAudit, cause, f.req.txn, f.req.addr, 0)
			f.state = FSHRRootReleaseAck
		} else {
			u.ctr.stallLinkBusy.Inc()
		}
	}
}

// rootReleaseOp maps the request kind to the §5.1 message encoding.
func rootReleaseOp(clean, withData bool) tilelink.Opcode {
	switch {
	case clean && withData:
		return tilelink.OpRootReleaseCleanData
	case clean:
		return tilelink.OpRootReleaseClean
	case withData:
		return tilelink.OpRootReleaseFlushData
	}
	return tilelink.OpRootReleaseFlush
}
