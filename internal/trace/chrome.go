package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// ChromeTracer renders simulator events in the Chrome trace_event JSON
// format, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. One
// simulated cycle maps to one microsecond of trace time, so the timeline
// ruler reads directly in cycles.
//
// Each component instance (Event.Source) becomes a named thread. The flush
// unit's fshr-alloc/fshr-ack events become asynchronous begin/end pairs
// keyed by line address, so every in-flight flush renders as a span whose
// length is its latency; all other events render as thread-scoped instants.
//
// Events are buffered in memory; Close writes the whole document. The
// tracer is safe for concurrent Emit.
type ChromeTracer struct {
	mu     sync.Mutex
	w      io.Writer
	events []chromeEvent
	tids   map[string]int
	order  []string          // sources in first-seen order, for stable thread ids
	open   map[uint64]string // open txn spans: id -> span name, for matching "e" records
}

// chromeEvent is one trace_event record. Field names follow the format
// specification; empty optional fields are omitted.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// NewChromeTracer returns a tracer that writes its document to w on Close.
func NewChromeTracer(w io.Writer) *ChromeTracer {
	return &ChromeTracer{w: w, tids: make(map[string]int), open: make(map[uint64]string)}
}

// txnSpanNames maps the event kind that opens a transaction to the span's
// display name. Any other txn-bearing kind that arrives first (partial
// chains at trace start) opens the span under its own kind name.
var txnSpanNames = map[string]string{
	"load-miss":   "acquire",
	"store-miss":  "acquire",
	"acquire":     "acquire",
	"evict":       "writeback",
	"release":     "writeback",
	"cbo-enqueue": "flush",
	"fshr-alloc":  "flush",
}

// txnEndKinds are the kinds that close a transaction span: the final
// message of each causal chain (E-channel GrantAck, D-channel ReleaseAck /
// RootReleaseAck observed by the flush unit).
var txnEndKinds = map[string]bool{
	"grant-ack":   true,
	"release-ack": true,
	"fshr-ack":    true,
}

// Emit buffers one event.
func (t *ChromeTracer) Emit(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tid, ok := t.tids[e.Source]
	if !ok {
		tid = len(t.order)
		t.tids[e.Source] = tid
		t.order = append(t.order, e.Source)
	}
	ce := chromeEvent{Name: e.Kind, TS: e.Cycle, TID: tid}
	if e.Detail != "" {
		ce.Args = map[string]any{"detail": e.Detail}
	}
	if e.HasAddr {
		if ce.Args == nil {
			ce.Args = map[string]any{}
		}
		ce.Args["addr"] = fmt.Sprintf("%#x", e.Addr)
	}
	switch {
	case e.Txn != 0:
		// Transaction-bearing events render as one async span per txn id:
		// the first event opens it, the chain's final ack closes it, and
		// everything in between nests inside as async instants. Perfetto
		// then shows each miss→Acquire→Grant→GrantAck chain, writeback, and
		// CBO→FSHR→RootRelease→ack flush as a single causal span.
		ce.ID = fmt.Sprintf("txn%d", e.Txn)
		ce.Cat = "txn"
		if ce.Args == nil {
			ce.Args = map[string]any{}
		}
		ce.Args["txn"] = e.Txn
		name, isOpen := t.open[e.Txn]
		switch {
		case !isOpen:
			name = txnSpanNames[e.Kind]
			if name == "" {
				name = e.Kind
			}
			t.open[e.Txn] = name
			ce.Phase = "b"
			ce.Name = name
			ce.Args["begin"] = e.Kind
		case txnEndKinds[e.Kind]:
			delete(t.open, e.Txn)
			ce.Phase = "e"
			ce.Name = name
			ce.Args["end"] = e.Kind
		default:
			ce.Phase = "n"
			ce.Name = e.Kind
		}
	case e.Kind == "fshr-alloc":
		ce.Phase = "b"
		ce.Cat = "flush"
		ce.Name = "flush"
		ce.ID = fmt.Sprintf("%#x", e.Addr)
	case e.Kind == "fshr-ack":
		ce.Phase = "e"
		ce.Cat = "flush"
		ce.Name = "flush"
		ce.ID = fmt.Sprintf("%#x", e.Addr)
	default:
		ce.Phase = "i"
		ce.Scope = "t"
	}
	t.events = append(t.events, ce)
}

// document assembles the trace_event document from the buffered events.
// Callers must hold t.mu.
func (t *ChromeTracer) documentLocked() chromeDoc {
	doc := chromeDoc{DisplayTimeUnit: "ms"}
	// Thread-name metadata first, so viewers label rows by component.
	for tid, src := range t.order {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			TID:   tid,
			Args:  map[string]any{"name": src},
		})
	}
	doc.TraceEvents = append(doc.TraceEvents, t.events...)
	return doc
}

// WriteSnapshot writes the document as buffered so far to w, leaving the
// tracer usable. The live introspection server's /trace endpoint uses it to
// serve a loadable mid-run trace.
func (t *ChromeTracer) WriteSnapshot(w io.Writer) error {
	t.mu.Lock()
	doc := t.documentLocked()
	t.mu.Unlock()
	return json.NewEncoder(w).Encode(doc)
}

// Close writes the buffered document. The tracer must not be used after.
func (t *ChromeTracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	enc := json.NewEncoder(t.w)
	if err := enc.Encode(t.documentLocked()); err != nil {
		return err
	}
	if c, ok := t.w.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
