// Package memsim is the fast behavioral memory model under the software
// persistence study (Figures 14–16). Where package sim models the SoC cycle
// by cycle, memsim models only what drives those figures' throughput
// differences: cache capacity (tag-only set-associative L1 per thread plus a
// shared L2), coherence (write-invalidate), per-line dirty/persisted state
// including the Skip It bit, and a virtual cycle clock per thread that every
// access and writeback charges.
//
// Real concurrent Go code (the lock-free structures in internal/ds) calls
// into a Hierarchy from multiple goroutines; a single mutex guards the tag
// state. The mutex serializes simulation bookkeeping, not virtual time:
// throughput is computed from the per-thread virtual clocks, so wall-clock
// lock contention never distorts results.
package memsim

import (
	"fmt"
	"sync"
)

// Config sets geometry and the cycle-cost model. The costs are calibrated
// against the cycle-accurate simulator in package sim (see EXPERIMENTS.md).
type Config struct {
	Threads   int
	L1Sets    int // per-thread L1: 64x8x64B = 32 KiB
	L1Ways    int
	L2Sets    int // shared L2: 1024x8x64B = 512 KiB
	L2Ways    int
	LineBytes uint64

	// Access costs in cycles.
	L1Hit     float64
	L2Hit     float64
	Mem       float64
	Coherence float64 // extra cost when a line is fetched from another L1

	// Writeback costs in cycles.
	CboPipeline float64 // any CBO.X traversing the pipeline to the L1
	FlushL2     float64 // CBO resolved by the L2's trivial dirty-bit skip
	FlushMem    float64 // CBO that writes the line back to memory
	Fence       float64

	// ClockMHz converts virtual cycles to seconds for throughput; the
	// paper's §7.4 platform runs at 50 MHz.
	ClockMHz float64
}

// DefaultConfig mirrors the paper's Enzian platform (§7.1): per-core 32 KiB
// L1s and a shared 512 KiB L2 at 50 MHz, with costs matching the calibrated
// cycle simulator.
func DefaultConfig(threads int) Config {
	return Config{
		Threads:   threads,
		L1Sets:    64,
		L1Ways:    8,
		L2Sets:    1024,
		L2Ways:    8,
		LineBytes: 64,

		L1Hit:     3,
		L2Hit:     25,
		Mem:       100,
		Coherence: 15,

		// A dropped CBO.X costs the pipeline traversal alone; the
		// out-of-order core hides part of it behind neighboring loads.
		CboPipeline: 5,
		FlushL2:     30,
		FlushMem:    100,
		Fence:       20,

		ClockMHz: 50,
	}
}

type l1Line struct {
	valid bool
	tag   uint64
	dirty bool
	skip  bool
	used  uint64
}

type l2Line struct {
	valid bool
	tag   uint64
	dirty bool
	used  uint64
}

// Stats counts hierarchy traffic, aggregated across threads.
type Stats struct {
	Accesses        uint64
	L1Hits          uint64
	L2Hits          uint64
	MemFills        uint64
	CoherenceMisses uint64
	Flushes         uint64 // CBO.X requests that reached the flush path
	FlushDropsL1    uint64 // dropped by the Skip It bit in L1
	FlushSkipsL2    uint64 // resolved by the L2 trivial dirty check
	FlushWrites     uint64 // writebacks that reached memory
	Fences          uint64
}

// Hierarchy is the shared two-level tag-only cache model.
type Hierarchy struct {
	mu     sync.Mutex
	cfg    Config
	l1     [][]l1Line // [thread][set*ways+way]
	l2     []l2Line
	clocks []float64
	tick   uint64
	stats  Stats
}

// New builds a hierarchy for cfg.Threads threads.
func New(cfg Config) *Hierarchy {
	if cfg.Threads <= 0 || cfg.L1Sets <= 0 || cfg.L2Sets <= 0 {
		panic("memsim: bad config")
	}
	h := &Hierarchy{cfg: cfg}
	h.l1 = make([][]l1Line, cfg.Threads)
	for t := range h.l1 {
		h.l1[t] = make([]l1Line, cfg.L1Sets*cfg.L1Ways)
	}
	h.l2 = make([]l2Line, cfg.L2Sets*cfg.L2Ways)
	h.clocks = make([]float64, cfg.Threads)
	return h
}

// Config returns the configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

func (h *Hierarchy) line(addr uint64) uint64 { return addr / h.cfg.LineBytes }

func (h *Hierarchy) l1Slot(tid int, lineNo uint64) (setBase int, tag uint64) {
	set := int(lineNo % uint64(h.cfg.L1Sets))
	return set * h.cfg.L1Ways, lineNo / uint64(h.cfg.L1Sets)
}

func (h *Hierarchy) l2Slot(lineNo uint64) (setBase int, tag uint64) {
	set := int(lineNo % uint64(h.cfg.L2Sets))
	return set * h.cfg.L2Ways, lineNo / uint64(h.cfg.L2Sets)
}

func (h *Hierarchy) findL1(tid int, lineNo uint64) *l1Line {
	base, tag := h.l1Slot(tid, lineNo)
	ways := h.l1[tid][base : base+h.cfg.L1Ways]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			return &ways[i]
		}
	}
	return nil
}

func (h *Hierarchy) findL2(lineNo uint64) *l2Line {
	base, tag := h.l2Slot(lineNo)
	ways := h.l2[base : base+h.cfg.L2Ways]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			return &ways[i]
		}
	}
	return nil
}

// victimL1 returns the way to fill for lineNo in tid's L1, evicting as
// needed (dirty victims move their dirty bit into L2).
func (h *Hierarchy) victimL1(tid int, lineNo uint64) *l1Line {
	base, tag := h.l1Slot(tid, lineNo)
	ways := h.l1[tid][base : base+h.cfg.L1Ways]
	var victim *l1Line
	for i := range ways {
		if !ways[i].valid {
			victim = &ways[i]
			break
		}
		if victim == nil || ways[i].used < victim.used {
			victim = &ways[i]
		}
	}
	if victim.valid && victim.dirty {
		// Victim writeback: the dirty data lands in L2 (inclusive).
		set := int(lineNo % uint64(h.cfg.L1Sets))
		victimLine := victim.tag*uint64(h.cfg.L1Sets) + uint64(set)
		if l2 := h.findL2(victimLine); l2 != nil {
			l2.dirty = true
		} else {
			// The L2 lost the line (inclusive eviction is modeled
			// lazily); treat the victim as persisted via memory.
			h.stats.FlushWrites++
		}
	}
	victim.valid = false
	victim.tag = tag
	return victim
}

// fillL2 ensures lineNo is resident in L2, returning the entry and whether
// it missed. A dirty L2 victim is written to memory; L1 copies of the victim
// are invalidated (inclusion).
func (h *Hierarchy) fillL2(lineNo uint64) (*l2Line, bool) {
	if l := h.findL2(lineNo); l != nil {
		return l, false
	}
	base, tag := h.l2Slot(lineNo)
	ways := h.l2[base : base+h.cfg.L2Ways]
	var victim *l2Line
	for i := range ways {
		if !ways[i].valid {
			victim = &ways[i]
			break
		}
		if victim == nil || ways[i].used < victim.used {
			victim = &ways[i]
		}
	}
	if victim.valid {
		set := int(lineNo % uint64(h.cfg.L2Sets))
		victimLine := victim.tag*uint64(h.cfg.L2Sets) + uint64(set)
		for t := 0; t < h.cfg.Threads; t++ {
			if l1 := h.findL1(t, victimLine); l1 != nil {
				if l1.dirty {
					victim.dirty = true
				}
				l1.valid = false
			}
		}
		if victim.dirty {
			h.stats.FlushWrites++ // inclusive eviction writeback
		}
	}
	victim.valid = true
	victim.tag = tag
	victim.dirty = false
	return victim, true
}

// Access models one 8-byte load or store by thread tid, charging its virtual
// clock and updating tag/dirty/skip state.
func (h *Hierarchy) Access(tid int, addr uint64, write bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.tick++
	h.stats.Accesses++
	lineNo := h.line(addr)

	own := h.findL1(tid, lineNo)
	if own != nil && (!write || own.dirty) {
		// Read hit, or write hit on a line we already own dirty.
		own.used = h.tick
		if write {
			own.dirty = true
		}
		h.clocks[tid] += h.cfg.L1Hit
		h.stats.L1Hits++
		return
	}

	cost := h.cfg.L1Hit
	if write {
		// Invalidate every other copy (write-invalidate coherence),
		// collecting remote dirty data into L2.
		for t := 0; t < h.cfg.Threads; t++ {
			if t == tid {
				continue
			}
			if other := h.findL1(t, lineNo); other != nil {
				if other.dirty {
					l2, _ := h.fillL2(lineNo)
					l2.dirty = true
					cost += h.cfg.Coherence
				}
				other.valid = false
			}
		}
	}

	if own != nil {
		// Write hit on a clean (possibly shared) line: an upgrade.
		own.dirty = true
		own.used = h.tick
		h.clocks[tid] += cost + h.cfg.Coherence/2
		h.stats.L1Hits++
		return
	}

	// L1 miss: find the data. A dirty copy in another L1 is the expensive
	// coherence path; otherwise L2, otherwise memory.
	skip := true
	var remoteDirty bool
	for t := 0; t < h.cfg.Threads; t++ {
		if t == tid {
			continue
		}
		if other := h.findL1(t, lineNo); other != nil && other.dirty {
			remoteDirty = true
			l2, _ := h.fillL2(lineNo)
			l2.dirty = true
			other.dirty = false
			other.skip = false
			if write {
				other.valid = false
			}
		}
	}
	l2, missed := h.fillL2(lineNo)
	l2.used = h.tick
	switch {
	case remoteDirty:
		cost += h.cfg.L2Hit + h.cfg.Coherence
		h.stats.CoherenceMisses++
	case missed:
		cost += h.cfg.Mem
		h.stats.MemFills++
	default:
		cost += h.cfg.L2Hit
		h.stats.L2Hits++
	}
	// GrantData vs GrantDataDirty (§6.1): the skip bit is set only when
	// the granted line is not dirty in L2.
	skip = !l2.dirty

	v := h.victimL1(tid, lineNo)
	v.valid = true
	v.dirty = write
	v.skip = skip
	v.used = h.tick
	h.clocks[tid] += cost
}

// Flush models one CBO.X by thread tid. With skipItHW, a hit on a clean line
// with the skip bit set is dropped at the L1 for the pipeline cost alone
// (§6.1). Otherwise the request resolves at the L2 (trivially skipped when
// nothing is dirty, §5.5) or writes the line back to memory. clean selects
// CBO.CLEAN semantics (copies survive) vs CBO.FLUSH (copies invalidated).
func (h *Hierarchy) Flush(tid int, addr uint64, clean, skipItHW bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.tick++
	h.stats.Flushes++
	lineNo := h.line(addr)

	own := h.findL1(tid, lineNo)
	if skipItHW && own != nil && !own.dirty && own.skip {
		h.clocks[tid] += h.cfg.CboPipeline
		h.stats.FlushDropsL1++
		return
	}

	// Collect dirtiness across the hierarchy.
	dirty := false
	for t := 0; t < h.cfg.Threads; t++ {
		if l := h.findL1(t, lineNo); l != nil {
			if l.dirty {
				dirty = true
			}
			l.dirty = false
			if clean {
				l.skip = t == tid // §6.1: the requester's ack sets its bit
			} else {
				l.valid = false
			}
		}
	}
	l2 := h.findL2(lineNo)
	if l2 != nil {
		if l2.dirty {
			dirty = true
		}
		l2.dirty = false
		if !clean {
			l2.valid = false
		}
	}

	if dirty {
		h.clocks[tid] += h.cfg.CboPipeline + h.cfg.FlushMem
		h.stats.FlushWrites++
	} else {
		h.clocks[tid] += h.cfg.CboPipeline + h.cfg.FlushL2
		h.stats.FlushSkipsL2++
	}
}

// Fence charges the fence cost to tid's clock.
func (h *Hierarchy) Fence(tid int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.stats.Fences++
	h.clocks[tid] += h.cfg.Fence
}

// AddCycles charges raw compute cycles (bit masking, counter arithmetic in
// software elision schemes) to tid's clock.
func (h *Hierarchy) AddCycles(tid int, c float64) {
	h.mu.Lock()
	h.clocks[tid] += c
	h.mu.Unlock()
}

// DirtyAnywhere reports whether addr's line holds unpersisted data in any
// cache level — the predicate a correct flush-elision scheme must respect.
func (h *Hierarchy) DirtyAnywhere(addr uint64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	lineNo := h.line(addr)
	for t := 0; t < h.cfg.Threads; t++ {
		if l := h.findL1(t, lineNo); l != nil && l.dirty {
			return true
		}
	}
	if l := h.findL2(lineNo); l != nil && l.dirty {
		return true
	}
	return false
}

// Clock returns tid's virtual cycle count.
func (h *Hierarchy) Clock(tid int) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.clocks[tid]
}

// MaxSeconds converts the slowest thread's clock to seconds.
func (h *Hierarchy) MaxSeconds() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	max := 0.0
	for _, c := range h.clocks {
		if c > max {
			max = c
		}
	}
	return max / (h.cfg.ClockMHz * 1e6)
}

// Stats returns aggregated counters.
func (h *Hierarchy) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// ResetClocks zeroes the virtual clocks (e.g. after warmup) while keeping
// cache state.
func (h *Hierarchy) ResetClocks() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.clocks {
		h.clocks[i] = 0
	}
	h.stats = Stats{}
}

func (h *Hierarchy) String() string {
	return fmt.Sprintf("memsim.Hierarchy{threads=%d l1=%dKiB l2=%dKiB}",
		h.cfg.Threads,
		h.cfg.L1Sets*h.cfg.L1Ways*int(h.cfg.LineBytes)/1024,
		h.cfg.L2Sets*h.cfg.L2Ways*int(h.cfg.LineBytes)/1024)
}
