package sweepd

import (
	"os"
	"path/filepath"
	"testing"

	"skipit/internal/sweep"
)

func TestJournalAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, entries, err := openJournal(path)
	if err != nil {
		t.Fatalf("openJournal: %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("fresh journal replayed %d entries", len(entries))
	}
	spec := JobSpec{Group: "fig09", Name: "flush/size64", Fingerprint: "fp1"}
	rec := sweep.Record{Group: "fig09", Name: "flush/size64", Fingerprint: "fp1", Cycles: 1234, Reps: 3}
	want := []journalEntry{
		{Op: opSubmit, Job: &spec},
		{Op: opLease, ID: spec.ID(), Worker: "w1", Attempt: 1},
		{Op: opRequeue, ID: spec.ID(), Attempt: 1, Reason: FailLeaseExpired},
		{Op: opLease, ID: spec.ID(), Worker: "w2", Attempt: 2},
		{Op: opDone, ID: spec.ID(), Worker: "w2", Record: &rec},
	}
	for _, e := range want {
		if err := j.append(e); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := j.close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	j2, got, err := openJournal(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Op != want[i].Op || got[i].ID != want[i].ID ||
			got[i].Worker != want[i].Worker || got[i].Attempt != want[i].Attempt {
			t.Errorf("entry %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if got[0].Job == nil || got[0].Job.Fingerprint != "fp1" {
		t.Errorf("submit entry lost the job spec: %+v", got[0].Job)
	}
	if got[4].Record == nil || got[4].Record.Cycles != 1234 {
		t.Errorf("done entry lost the record: %+v", got[4].Record)
	}
}

func TestJournalTornTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Group: "g", Name: "a", Fingerprint: "f"}
	if err := j.append(journalEntry{Op: opSubmit, Job: &spec}); err != nil {
		t.Fatal(err)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a partial JSON line with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"done","id":"g/a","rec`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, entries, err := openJournal(path)
	if err != nil {
		t.Fatalf("openJournal with torn tail: %v", err)
	}
	if len(entries) != 1 || entries[0].Op != opSubmit {
		t.Fatalf("torn tail not dropped: replayed %+v", entries)
	}
	// The torn bytes must be truncated so the next append starts clean.
	if err := j2.append(journalEntry{Op: opLease, ID: "g/a", Worker: "w", Attempt: 1}); err != nil {
		t.Fatal(err)
	}
	j2.close()
	_, entries, err = openJournal(path)
	if err != nil {
		t.Fatalf("reopen after repair: %v", err)
	}
	if len(entries) != 2 || entries[1].Op != opLease {
		t.Fatalf("append after torn tail corrupted the journal: %+v", entries)
	}
}

func TestJournalMalformedMidFileFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	content := `{"op":"submit","job":{"group":"g","name":"a","fingerprint":"f"}}` + "\n" +
		`{"op": not json}` + "\n" +
		`{"op":"lease","id":"g/a","attempt":1}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := openJournal(path); err == nil {
		t.Fatal("mid-file corruption accepted; want an error")
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *journal
	if err := j.append(journalEntry{Op: opSubmit}); err != nil {
		t.Fatalf("nil journal append: %v", err)
	}
	if err := j.close(); err != nil {
		t.Fatalf("nil journal close: %v", err)
	}
}
