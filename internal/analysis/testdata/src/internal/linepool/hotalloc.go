// Package poolfix is the hotalloc-analyzer fixture: allocation constructs
// inside and outside //skipit:hotpath functions, plus suppression waivers.
package poolfix

type line struct {
	data []byte
	tag  uint64
}

type sink interface{ accept(interface{}) }

// notHot allocates freely: no directive, no diagnostics.
func notHot(n int) []byte {
	buf := make([]byte, n)
	buf = append(buf, 1)
	return buf
}

//skipit:hotpath
func hotAllocs(n int, s []int, snk sink, f func(any)) {
	_ = make([]byte, n) // want `make allocates`
	_ = new(line)       // want `new allocates`
	s = append(s, n)    // want `append may grow and allocate`
	_ = map[int]int{}   // want `map literal allocates`
	_ = []int{1, 2}     // want `slice literal allocates`
	_ = &line{tag: 1}   // want `pointer-to-composite literal allocates`
	v := line{tag: 2}   // ok: value composite stays on the stack
	_ = v

	snk.accept(n) // want `interface boxing of int value allocates`
	f(v)          // want `interface boxing of .*line value allocates`
	f(&v)         // ok: pointers fit the interface word
	f(nil)        // ok: nil boxes nothing

	var i interface{} = v // want `interface boxing of .*line value allocates`
	_ = i

	_ = []byte("conv") // want `conversion string -> \[\]byte copies and allocates`
	_ = uint64(n)      // ok: numeric conversions do not allocate
}

//skipit:hotpath
func hotClosures(xs []int) func() int {
	total := 0
	inc := func() int { // want `closure captures total`
		total++
		return total
	}
	for range xs {
		defer inc() // want `defer inside a loop heap-allocates its record`
	}
	pure := func() int { return 42 } // ok: captures nothing
	_ = pure
	return inc
}

//skipit:hotpath
func hotReturnsBox(v line) interface{} {
	return v // want `interface boxing of .*line value allocates`
}

//skipit:hotpath
func hotWaived(n int) []byte {
	//skipit:ignore hotalloc cold fallback taken only on pool miss
	return make([]byte, n)
}
