package sim

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"skipit/internal/isa"
)

func TestWatchdogQuietDuringNormalRun(t *testing.T) {
	s := New(DefaultConfig(2))
	s.ArmWatchdog(5_000)
	progs := []*isa.Program{
		isa.NewBuilder().Store(0x1000, 1).CboFlush(0x1000).Fence().Load(0x1000).Build(),
		isa.NewBuilder().Store(0x100000, 2).Fence().Build(),
	}
	for i, p := range progs {
		s.Cores[i].SetProgram(p)
	}
	for i := 0; i < 10_000; i++ {
		if err := s.StepGuarded(); err != nil {
			t.Fatalf("watchdog tripped on a healthy run: %v", err)
		}
		if s.Cores[0].Done() && s.Cores[1].Done() && s.Quiescent() {
			return
		}
	}
	t.Fatal("run did not finish")
}

func TestWatchdogTripsWithoutProgress(t *testing.T) {
	s := New(DefaultConfig(1))
	s.Cores[0].SetProgram(isa.NewBuilder().Build())
	// Let the (empty) program retire, then arm: from here nothing retires
	// and nothing moves, which is exactly the no-progress condition.
	for i := 0; i < 10; i++ {
		s.Step()
	}
	const limit = 50
	s.ArmWatchdog(limit)
	var hang *HangError
	for i := 0; i < 10*limit; i++ {
		if err := s.StepGuarded(); err != nil {
			if !errors.As(err, &hang) {
				t.Fatalf("want *HangError, got %T: %v", err, err)
			}
			break
		}
	}
	if hang == nil {
		t.Fatal("watchdog never tripped")
	}
	r := hang.Report
	if r.Reason != "no-progress" || r.Window < limit {
		t.Fatalf("bad report: reason=%q window=%d", r.Reason, r.Window)
	}
	if len(r.Cores) != 1 || len(r.L1s) != 1 || len(r.Flush) != 1 || len(r.Links) != 1 {
		t.Fatalf("report missing sections: %+v", r)
	}
	if len(r.Links[0]) != 5 {
		t.Fatalf("want 5 channel snapshots, got %d", len(r.Links[0]))
	}
	if got := s.Metrics().Counter("sim", "watchdog_trips").Value(); got != 1 {
		t.Fatalf("watchdog_trips = %d, want 1", got)
	}
	// The report must round-trip as JSON for repro artifacts.
	var back map[string]any
	if err := json.Unmarshal(r.JSON(), &back); err != nil {
		t.Fatalf("report JSON invalid: %v", err)
	}
	if !strings.Contains(hang.Error(), "no-progress") {
		t.Fatalf("error string %q lacks reason", hang.Error())
	}
}

// panicHook triggers a panic on the first send attempt, standing in for a
// bug deep inside a simulator component.
type panicHook struct{}

func (panicHook) SendFault(now int64) (int64, bool) { panic("injected test panic") }
func (panicHook) RecvStall(now int64) bool          { return false }

func TestStepGuardedRecoversPanics(t *testing.T) {
	s := New(DefaultConfig(1))
	s.Ports()[0].A.SetChaos(panicHook{})
	// A load miss must acquire through channel A, hitting the panic hook.
	s.Cores[0].SetProgram(isa.NewBuilder().Load(0x1000).Build())
	var hang *HangError
	for i := 0; i < 1_000; i++ {
		if err := s.StepGuarded(); err != nil {
			if !errors.As(err, &hang) {
				t.Fatalf("want *HangError, got %T: %v", err, err)
			}
			break
		}
	}
	if hang == nil {
		t.Fatal("panic never surfaced")
	}
	r := hang.Report
	if r.Reason != "panic" || !strings.Contains(r.Panic, "injected test panic") {
		t.Fatalf("bad panic report: reason=%q panic=%q", r.Reason, r.Panic)
	}
	if r.Stack == "" {
		t.Fatal("panic report lacks a stack trace")
	}
}
