// Package sim assembles and clocks the full simulated SoC: N BOOM-style
// cores with private L1 data caches (each embedding the paper's flush unit),
// a shared SiFive-style inclusive L2, and a DRAM controller whose backing
// store is the persistence domain. It corresponds to the paper's FireSim /
// Enzian FPGA platforms (§7.1), with a deterministic global cycle clock in
// place of RDCYCLE.
package sim

import (
	"errors"
	"fmt"
	"time"

	"skipit/internal/boom"
	"skipit/internal/isa"
	"skipit/internal/l1"
	"skipit/internal/l2"
	"skipit/internal/linepool"
	"skipit/internal/mem"
	"skipit/internal/metrics"
	"skipit/internal/tilelink"
	"skipit/internal/trace"
)

// Config describes the SoC. Zero values are filled from the defaults.
type Config struct {
	NumCores    int
	Core        boom.Config
	L1          l1.Config // template; Source is overridden per core
	L2          l2.Config
	Mem         mem.Config
	BeatBytes   uint64 // system bus width (§3.3: 16 B)
	LinkLatency int    // wire cycles per channel hop

	// Parallel selects deterministic parallel stepping (see parallel.go and
	// internal/pdes) with that many workers: 0 keeps classic serial
	// stepping, 1 runs the sharded window scheduler inline on one
	// goroutine, >= 2 fans shards out across workers. Results are
	// bit-identical for every value. Excluded from JSON so sweep
	// fingerprints — which hash the config — are identical however the
	// host chooses to schedule the simulation.
	Parallel int `json:"-"`
}

// DefaultConfig mirrors the paper's platform: 32 KiB 8-way L1s, a shared
// 512 KiB 8-way inclusive L2, a 16-byte system bus, and the flush unit of
// §5 with Skip It enabled.
func DefaultConfig(numCores int) Config {
	return Config{
		NumCores:    numCores,
		Core:        boom.DefaultConfig(),
		L1:          l1.DefaultConfig(0),
		L2:          l2.DefaultConfig(numCores),
		Mem:         mem.DefaultConfig(),
		BeatBytes:   16,
		LinkLatency: 1,
	}
}

// System is one assembled SoC. During a parallel window System fields are
// coordinator state: shard steps may read them (fastForward, par) but all
// writes happen single-threaded between windows.
//
//skipit:shard-owned barrier
type System struct {
	cfg   Config
	Cores []*boom.Core
	L1s   []*l1.DCache
	L2    *l2.Cache
	Mem   *mem.Memory
	ports []*tilelink.ClientPort

	// reg is the SoC-wide metrics registry every component registers its
	// counters with; sampler, when enabled, snapshots selected counters
	// into time series as the clock advances.
	reg     *metrics.Registry
	sampler *metrics.Sampler

	now int64

	// pool recycles cache-line buffers across mem, L2, L1s and flush units;
	// see package linepool for the ownership discipline.
	pool *linepool.Pool

	// fastForward enables the next-event clock (see fastforward.go); on by
	// default, switchable for A/B validation.
	fastForward bool
	ctrSkipped  *metrics.Counter

	// hostNanos accumulates wall-clock time spent inside Run and Drain, for
	// the host-throughput figures in Snapshot. Host time never enters the
	// sweep result store — records would stop being host-independent.
	hostNanos int64

	// Forward-progress watchdog state (see ArmWatchdog / StepGuarded).
	wdLimit          int64
	wdLastSig        uint64
	wdLastChange     int64
	ctrWatchdogTrips *metrics.Counter

	// txns is the SoC-wide coherence-transaction id sequence shared by every
	// L1 and flush unit. Ids are assigned unconditionally (tracing on or
	// off), so a given workload produces identical ids regardless of
	// observers or fast-forwarding.
	txns *trace.TxnSeq

	// recorder, when armed via EnableFlightRecorder, holds the per-component
	// flight-recorder rings; its dump rides along in HangReports.
	recorder *trace.Recorder

	// progress hook (see SetProgressHook): called every hookInterval ticked
	// cycles with the current cycle, for live introspection publishers.
	hookInterval int64
	hook         func(now int64)

	// par holds the parallel-stepping runtime (shards + scheduler) when
	// cfg.Parallel > 0; see parallel.go. Serial systems leave it nil.
	par *parRuntime
}

// New assembles a system. All components share one metrics registry
// (available via Metrics), with instruments named by instance: "core[i]",
// "l1[i]", "flush[i]", "l2", "mem".
func New(cfg Config) *System {
	if cfg.NumCores <= 0 {
		panic("sim: need at least one core")
	}
	s := &System{cfg: cfg, reg: metrics.NewRegistry(), fastForward: true, txns: &trace.TxnSeq{}}
	s.pool = linepool.New(int(cfg.L1.LineBytes), s.reg)
	memCfg := cfg.Mem
	memCfg.Metrics = s.reg
	memCfg.Pool = s.pool
	s.Mem = mem.New(memCfg)
	s.ports = make([]*tilelink.ClientPort, cfg.NumCores)
	s.L1s = make([]*l1.DCache, cfg.NumCores)
	s.Cores = make([]*boom.Core, cfg.NumCores)
	// Parallel mode gives each core shard its own line pool and a strided
	// transaction-id sequence, removing the two cross-shard hot-path
	// couplings (see parallel.go); all pools share the registry counters.
	var shardPools []*linepool.Pool
	for i := 0; i < cfg.NumCores; i++ {
		s.ports[i] = tilelink.NewClientPort(
			fmt.Sprintf("l1[%d]<->l2", i), cfg.BeatBytes, cfg.L1.LineBytes, cfg.LinkLatency)
		l1cfg := cfg.L1
		l1cfg.Source = i
		l1cfg.Metrics = s.reg
		l1cfg.Pool = s.pool
		l1cfg.Txns = s.txns
		if cfg.Parallel > 0 {
			shPool := linepool.New(int(cfg.L1.LineBytes), s.reg)
			shardPools = append(shardPools, shPool)
			l1cfg.Pool = shPool
			l1cfg.Txns = trace.NewStridedTxnSeq(uint64(i+1), uint64(cfg.NumCores))
		}
		s.L1s[i] = l1.New(l1cfg, s.ports[i])
		coreCfg := cfg.Core
		coreCfg.Metrics = s.reg
		s.Cores[i] = boom.New(coreCfg, i, s.L1s[i])
	}
	l2cfg := cfg.L2
	l2cfg.NumClients = cfg.NumCores
	l2cfg.Metrics = s.reg
	l2cfg.Pool = s.pool
	s.L2 = l2.New(l2cfg, s.ports, s.Mem)
	// Pre-register the chaos and watchdog instruments so they appear in
	// every Snapshot even when nothing is armed (get-or-create: the L1/L2
	// constructors above share the same "chaos" counters).
	// The chaos injector re-registers faults_injected (get-or-create
	// sharing by design); metricname reports the duplicate at the
	// injector-side registration, which carries the waiver.
	s.reg.Counter("chaos", "faults_injected")
	s.reg.Counter("chaos", "ecc_flips")                         //skipit:ignore metricname shared SoC-wide chaos counter, pre-registered here by design
	s.reg.Counter("chaos", "ecc_dirty_unrecoverable")           //skipit:ignore metricname shared SoC-wide chaos counter, pre-registered here by design
	s.reg.Counter("chaos", "refetch_recoveries")                //skipit:ignore metricname shared SoC-wide chaos counter, pre-registered here by design
	s.ctrWatchdogTrips = s.reg.Counter("sim", "watchdog_trips") //skipit:ignore metricname System and Fabric are alternative harnesses over disjoint registries; sharing the key keeps sweep/report tooling uniform
	s.ctrSkipped = s.reg.Counter("sim", "skipped_cycles")       //skipit:ignore metricname System and Fabric are alternative harnesses over disjoint registries; sharing the key keeps sweep/report tooling uniform
	if cfg.Parallel > 0 {
		s.initParallel(cfg.Parallel, shardPools)
	}
	return s
}

// Parallel returns the configured worker count, 0 when stepping serially.
func (s *System) Parallel() int {
	if s.par == nil {
		return 0
	}
	return s.par.engine.Workers()
}

// Shards returns the number of PDES shards (hub + one per core), 0 when
// stepping serially. In parallel mode sim.skipped_cycles sums each shard's
// local fast-forwards, so per-cycle ratios should normalize by Now()*Shards().
func (s *System) Shards() int {
	if s.par == nil {
		return 0
	}
	return 1 + len(s.par.cores)
}

// Ports returns the per-core TileLink bundles, for fault-injection wiring and
// diagnostics.
func (s *System) Ports() []*tilelink.ClientPort { return s.ports }

// Metrics returns the SoC-wide metrics registry.
func (s *System) Metrics() *metrics.Registry { return s.reg }

// EnableSampling snapshots the named counters (all counters when none are
// given) every interval cycles as the system steps; the resulting time
// series ride along in Snapshot().
func (s *System) EnableSampling(interval int64, keys ...string) {
	s.sampler = metrics.NewSampler(s.reg, interval, keys...)
	if s.par != nil {
		s.par.samplerFired = s.now - 1
	}
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// SetTracer attaches an event tracer to every component (nil disables).
func (s *System) SetTracer(t trace.Tracer) {
	for _, d := range s.L1s {
		d.SetTracer(t)
	}
	s.L2.SetTracer(t)
}

// EnableFlightRecorder arms a per-component flight recorder holding the last
// depth structured events for each of "l1[i]", "flush[i]", "l2", and "mem".
// The rings are preallocated here; recording on the hot path is a plain
// struct store. The dump rides along in every HangReport (and in chaos
// artifacts built from them) and is available live via FlightRecorder.
func (s *System) EnableFlightRecorder(depth int) {
	s.recorder = trace.NewRecorder(depth)
	for i, d := range s.L1s {
		d.SetRecorder(s.recorder.Component(fmt.Sprintf("l1[%d]", i)))
		d.FlushUnit().SetRecorder(s.recorder.Component(fmt.Sprintf("flush[%d]", i)))
	}
	s.L2.SetRecorder(s.recorder.Component("l2"))
	s.Mem.SetRecorder(s.recorder.Component("mem"))
}

// FlightRecorder returns the armed recorder, or nil.
func (s *System) FlightRecorder() *trace.Recorder { return s.recorder }

// SetProgressHook installs a callback invoked every interval ticked cycles
// (before the cycle counter advances), used by the live introspection server
// to publish snapshots from the simulation goroutine. The fast-forward clock
// lands on hook boundaries exactly as it does on sampler boundaries, so the
// hook fires at the same cycles with fast-forwarding on or off. Interval <= 0
// or fn == nil uninstalls the hook.
func (s *System) SetProgressHook(interval int64, fn func(now int64)) {
	if interval <= 0 || fn == nil {
		s.hookInterval, s.hook = 0, nil
		return
	}
	s.hookInterval, s.hook = interval, fn
	if s.par != nil {
		s.par.hookFired = s.now - 1
	}
}

// Now returns the current cycle.
func (s *System) Now() int64 { return s.now }

// Step advances the whole SoC by one cycle.
//
//skipit:hotpath
func (s *System) Step() {
	s.Mem.Tick(s.now) //skipit:ignore hotalloc mem.Tick queue appends reuse steady-state capacity; journaling is an opt-in debug mode. CI alloc gate enforces zero steady-state allocs
	s.L2.Tick(s.now)
	for _, d := range s.L1s {
		d.Tick(s.now)
	}
	for _, c := range s.Cores {
		c.Tick(s.now)
	}
	if s.par != nil {
		// Parallel systems run their ports in deferred mode; a serial Step
		// publishes the staged sends immediately, so single-stepping a
		// parallel system is state-equivalent to stepping a serial one.
		for _, p := range s.ports {
			p.CommitDeferred()
		}
		s.par.samplerFired, s.par.hookFired = s.now, s.now
	}
	if s.sampler != nil {
		s.sampler.Tick(s.now) //skipit:ignore hotalloc Sample allocates only on first observation of a key; steady-state samples are allocation-free
	}
	if s.hookInterval > 0 && s.now%s.hookInterval == 0 {
		s.hook(s.now)
	}
	s.now++
}

// ErrTimeout reports a run that exceeded its cycle limit.
var ErrTimeout = errors.New("sim: cycle limit exceeded")

// Run loads one program per core (nil entries idle the core) and steps until
// every program has committed and the memory system is quiescent. It returns
// the cycle at which the last core finished.
func (s *System) Run(progs []*isa.Program, limit int64) (int64, error) {
	if len(progs) != len(s.Cores) {
		return 0, fmt.Errorf("sim: %d programs for %d cores", len(progs), len(s.Cores))
	}
	for i, p := range progs {
		if p == nil {
			p = isa.NewBuilder().Build()
		}
		s.Cores[i].SetProgram(p)
	}
	t0 := time.Now()                                               //skipit:ignore determinism host-side throughput timer, never read by simulated state
	defer func() { s.hostNanos += time.Since(t0).Nanoseconds() }() //skipit:ignore determinism host-side throughput timer, never read by simulated state
	deadline := s.now + limit
	if s.par != nil {
		return s.runParallel(deadline, limit)
	}
	coresDone := int64(-1)
	for s.now < deadline {
		s.Step()
		if coresDone < 0 {
			all := true
			for _, c := range s.Cores {
				if !c.Done() {
					all = false
					break
				}
			}
			if all {
				// Defer the quiescence check to the next iteration, as
				// the single-stepping loop always has, instead of
				// fast-forwarding past it (a fully idle SoC reports no
				// next event at all).
				coresDone = s.now
				continue
			}
		} else if s.Quiescent() {
			return coresDone, nil
		}
		s.FastForward(deadline)
	}
	return 0, fmt.Errorf("%w (limit %d): %s", ErrTimeout, limit, s.describeStall())
}

// Quiescent reports whether no transaction is in flight anywhere.
func (s *System) Quiescent() bool {
	if s.Mem.Outstanding() != 0 || s.L2.Busy() {
		return false
	}
	for _, d := range s.L1s {
		if d.Busy() {
			return false
		}
	}
	for _, p := range s.ports {
		if p.Pending() != 0 {
			return false
		}
	}
	return true
}

// Drain steps until quiescence or the limit elapses.
func (s *System) Drain(limit int64) error {
	t0 := time.Now()                                               //skipit:ignore determinism host-side throughput timer, never read by simulated state
	defer func() { s.hostNanos += time.Since(t0).Nanoseconds() }() //skipit:ignore determinism host-side throughput timer, never read by simulated state
	deadline := s.now + limit
	if s.par != nil && s.allCoresDone() {
		// Windowed draining is exact only when no core can issue new memory
		// traffic: serial Drain exits at the first per-cycle quiescence
		// instant even with cores mid-program, which a window would overshoot
		// (executing real work serial never ran). With every core done, all
		// remaining events are drain traffic, and the exit cycle is exactly
		// the last event. Otherwise fall through to the serial loop — Step
		// publishes staged sends every cycle, so it is exact on a parallel
		// system too.
		return s.drainParallel(deadline)
	}
	for s.now < deadline {
		if s.Quiescent() {
			return nil
		}
		s.Step()
		// Re-check before fast-forwarding: a freshly quiescent SoC reports
		// no next event, and skipping to the deadline would miss the exit.
		if s.Quiescent() {
			return nil
		}
		s.FastForward(deadline)
	}
	return fmt.Errorf("%w while draining: %s", ErrTimeout, s.describeStall())
}

func (s *System) describeStall() string {
	out := fmt.Sprintf("cycle %d:", s.now)
	for i, c := range s.Cores {
		out += fmt.Sprintf(" core%d(done=%v)", i, c.Done())
	}
	for i, d := range s.L1s {
		st := d.FlushUnit()
		out += fmt.Sprintf(" l1[%d](busy=%v flushQ=%d fshr=%d)", i, d.Busy(), st.QueueLen(), st.ActiveFSHRs())
	}
	out += fmt.Sprintf(" l2(busy=%v) mem(out=%d)", s.L2.Busy(), s.Mem.Outstanding())
	return out
}

// Crash simulates power loss: all volatile state — cores, L1s, links, L2 —
// is destroyed; only the memory's durable contents survive. drainADR
// controls whether writes already accepted by the memory controller drain
// into the persistence domain (ADR) or are lost.
func (s *System) Crash(drainADR bool) {
	for _, c := range s.Cores {
		c.SetProgram(isa.NewBuilder().Build())
	}
	for _, d := range s.L1s {
		d.Reset()
	}
	for _, p := range s.ports {
		p.Reset()
	}
	s.L2.Reset()
	s.Mem.Crash(drainADR)
}
