// Package core implements the paper's primary contribution: the flush unit
// that gives the BOOM L1 data cache support for the RISC-V cache management
// operations CBO.CLEAN and CBO.FLUSH (§5), and the Skip It redundant-
// writeback eliminator built on top of it (§6).
//
// The unit is written against three narrow ports the data cache provides —
// metadata access, (widened) data-array access, and the TileLink C/D channel
// pair — so it can be unit-tested against fake ports and wired into the real
// L1 exactly as Fig. 8 wires it into the SonicBOOM data cache.
package core

import (
	"skipit/internal/linepool"
	"skipit/internal/metrics"
	"skipit/internal/tilelink"
	"skipit/internal/trace"
)

// LineMeta is the cache-line bookkeeping a CBO.X request snapshots when it
// enters the data cache (§5.2, "Flush Queue"): whether the line hits, whether
// it is dirty, and — with Skip It — the skip bit. It is read from the
// metadata array that is fetched with every data cache request anyway, so
// capturing it adds no metadata-array traffic.
type LineMeta struct {
	Hit   bool
	Dirty bool
	Perm  tilelink.Perm
	Skip  bool
}

// CachePorts is the interface the embedding L1 data cache provides to the
// flush unit. Addresses passed to all methods are cache-line aligned.
type CachePorts interface {
	// MetaInvalidate invalidates the line in the L1 metadata array
	// (CBO.FLUSH in the meta_write state).
	MetaInvalidate(addr uint64)
	// MetaClearDirty unsets the line's dirty bit (CBO.CLEAN on a dirty
	// line in the meta_write state).
	MetaClearDirty(addr uint64)
	// MetaLineState reports the line's current hit/dirty state, used when
	// a completed CBO.CLEAN updates the skip bit.
	MetaLineState(addr uint64) LineMeta
	// MetaSetSkip sets the line's skip bit if the line is present.
	MetaSetSkip(addr uint64, v bool)
	// DataRead returns a copy of the line's contents from the data array.
	DataRead(addr uint64) []byte
	// SendRootRelease offers a RootRelease message to the TL-C channel at
	// cycle now and reports whether the channel accepted it.
	SendRootRelease(now int64, m tilelink.Msg) bool
}

// Config parameterizes the flush unit. The defaults mirror the paper's
// implementation; the ablation flags exist so benches can quantify the
// design choices §5 calls out.
type Config struct {
	// QueueDepth is the flush queue capacity. A full queue nacks the LSU
	// (§5.2).
	QueueDepth int
	// NumFSHRs is the number of flush status holding registers; the paper
	// uses 8.
	NumFSHRs int
	// LineBytes is the cache-line size.
	LineBytes uint64
	// SkipIt enables the §6 skip bit: redundant writebacks to persisted
	// lines are dropped before entering the flush queue.
	SkipIt bool
	// Coalescing enables merging a CBO.X with a same-kind pending request
	// to the same line (§5.3).
	Coalescing bool
	// CoalesceCrossKind enables the §5.3 future-work optimization:
	// merging CBO.X requests of different kinds on the same line. A
	// CBO.CLEAN coalesces into a queued CBO.FLUSH (the flush subsumes
	// it); a CBO.FLUSH upgrades a queued CBO.CLEAN in place (the queued
	// snapshot stays valid because dependent requests are nacked until
	// execution). Off by default, matching the paper's implementation.
	CoalesceCrossKind bool
	// WideDataArray models the widened data array of §5.2 that serves a
	// full line in one cycle. When false, fill_buffer takes one cycle per
	// 8-byte word, as in the unmodified SonicBOOM.
	WideDataArray bool
	// Source is the TileLink source ID stamped on RootRelease messages.
	Source int
	// Metrics is the registry the unit registers its counters with, under
	// the instance name "flush[Source]". Nil gets a private registry, so
	// standalone units (unit tests) work unchanged; the system simulator
	// injects one shared registry for the whole SoC.
	Metrics *metrics.Registry
	// Pool recycles the FSHR data buffers. The buffer an FSHR fills via
	// DataRead is owned by the FSHR until its RootReleaseAck arrives (loads
	// forward from it, §5.3), so the FSHR — not the L2 — returns it to the
	// pool. Nil degrades to plain allocation (unit tests).
	Pool *linepool.Pool `json:"-"`
	// Txns hands out coherence-transaction ids for CBO lifecycles (enqueue
	// through RootReleaseAck); the embedding L1 injects the SoC-wide
	// sequence. Nil gets a private sequence (standalone unit tests).
	// Excluded from fingerprints: ids never change simulated behavior.
	Txns *trace.TxnSeq `json:"-"`
}

// DefaultConfig returns the paper's configuration: 8-entry queue, 8 FSHRs,
// 64 B lines, Skip It and coalescing on, widened data array.
func DefaultConfig() Config {
	return Config{
		QueueDepth:    8,
		NumFSHRs:      8,
		LineBytes:     64,
		SkipIt:        true,
		Coalescing:    true,
		WideDataArray: true,
	}
}

// OfferResult is the data cache's verdict on an incoming CBO.X request.
type OfferResult uint8

const (
	// OfferAccepted: the request was buffered in the flush queue; the
	// instruction is ready to commit (§5.2).
	OfferAccepted OfferResult = iota
	// OfferDropped: the request completed immediately without entering
	// the queue — either Skip It proved the writeback redundant (§6.1) or
	// it coalesced with a pending same-kind request (§5.3). The data
	// cache signals success to the LSU.
	OfferDropped
	// OfferNack: the flush queue is full or the request conflicts with an
	// active FSHR; the LSU retries later (§5.2, §5.3).
	OfferNack
)

func (r OfferResult) String() string {
	switch r {
	case OfferAccepted:
		return "Accepted"
	case OfferDropped:
		return "Dropped"
	case OfferNack:
		return "Nack"
	}
	return "OfferResult(?)"
}

// Stats is the flush unit's counter set, read back as one struct for the
// benchmark harness. The counters live in the metrics registry (under
// "flush[N].*"); Stats() materializes this view from them.
type Stats struct {
	Offered        uint64 // CBO.X requests presented by the LSU
	Enqueued       uint64 // requests buffered in the flush queue
	SkipDropped    uint64 // requests eliminated by the skip bit (§6.1)
	Coalesced      uint64 // requests merged with a pending same-kind one (§5.3)
	CoalescedCross uint64 // cross-kind merges/upgrades (§5.3 future work)
	NackQueueFull  uint64
	NackFSHRBusy   uint64
	RootReleases   uint64 // RootRelease messages sent to L2
	DataWritebacks uint64 // RootReleases that carried dirty data
	ProbeInvals    uint64 // queue entries adjusted by probes (§5.4.1)
	EvictInvals    uint64 // queue entries adjusted by evictions (§5.4.2)
	SkipBitsSet    uint64 // lines marked persisted on CBO.CLEAN completion

	// Stall attribution (§5.4): cycles the flush queue head could not
	// dequeue, by cause, plus TL-C backpressure on RootRelease sends.
	StallWBRdy    uint64 // writeback unit busy (wb_rdy low)
	StallProbeRdy uint64 // probe unit busy (probe_rdy low)
	StallFSHRFull uint64 // every FSHR occupied
	StallSameLine uint64 // head's line already held by an active FSHR
	StallLinkBusy uint64 // RootRelease held by TL-C channel occupancy
}
