// Package l2 models the SiFive inclusive last-level cache generator (§3.4)
// with the paper's §5.5 modifications: handling of the RootReleaseFlush and
// RootReleaseClean messages, and — for Skip It (§6) — responding to Acquire
// with GrantDataDirty whenever the granted line is dirty in L2.
//
// The cache is the TileLink manager for the per-core L1 data caches and the
// client of main memory. Coherence among L1s is enforced with an
// invalidation-based policy over a full-map directory stored with each
// line's metadata, exactly as the SiFive inclusive cache does. The moving
// parts keep their upstream names: SinkC ingests TL-C messages, the
// ListBuffer holds requests that cannot allocate an MSHR yet, the
// BankedStore holds line data, and SourceB/SourceD emit probes and
// responses.
package l2

import (
	"fmt"

	"skipit/internal/linepool"
	"skipit/internal/mem"
	"skipit/internal/metrics"
	"skipit/internal/tilelink"
	"skipit/internal/trace"
)

// Config sets the cache geometry and structural limits.
type Config struct {
	Sets       int
	Ways       int
	LineBytes  uint64
	NumClients int
	NumMSHRs   int
	// ListBufferDepth bounds buffered TL-C/TL-A requests waiting for an
	// MSHR. Overflow stalls ingestion (TileLink back-pressure).
	ListBufferDepth int
	// TagLatency is the directory/tag pipeline delay applied between a
	// request arriving at SinkA/SinkC and its MSHR starting work.
	TagLatency int
	// Metrics is the registry the cache registers its counters with, under
	// the instance name "l2". Nil gets a private registry.
	Metrics *metrics.Registry
	// Pool recycles line buffers for grants and DRAM writebacks. Nil
	// disables pooling (plain allocation).
	Pool *linepool.Pool `json:"-"`
}

// DefaultConfig returns the paper's L2: 512 KiB, 8-way, 64 B lines
// (1024 sets), shared by the configured number of clients.
func DefaultConfig(numClients int) Config {
	return Config{
		Sets:            1024,
		Ways:            8,
		LineBytes:       64,
		NumClients:      numClients,
		NumMSHRs:        16,
		ListBufferDepth: 32,
		TagLatency:      8,
	}
}

// line is one L2 frame: data (BankedStore row), tag/valid/dirty metadata and
// the full-map directory of client permissions (Directory in Fig. 4).
type line struct {
	valid    bool
	tag      uint64
	dirty    bool
	perms    []tilelink.Perm // indexed by client
	data     []byte
	lastUsed int64
	// reserved marks a way claimed by an in-flight refill so concurrent
	// misses to the set cannot double-allocate it.
	reserved bool
}

// LineState is a read-only snapshot for invariant checks and tests.
type LineState struct {
	Present bool
	Dirty   bool
	Perms   []tilelink.Perm
}

// Stats is the L2's counter set, read back as one struct for the benchmark
// harness. The counters live in the metrics registry (under "l2.*"); Stats()
// materializes this view from them.
type Stats struct {
	Acquires          uint64
	RootReleases      uint64
	RootReleaseSkips  uint64 // RootReleases that found the line clean (§5.5 trivial skip)
	RootReleaseRaces  uint64 // RootRelease dirty data arriving for a concurrently evicted line
	GrantsData        uint64
	GrantsDataDirty   uint64
	ProbesSent        uint64
	Evictions         uint64
	MemReads          uint64
	MemWrites         uint64
	VoluntaryReleases uint64

	// Stall attribution: backpressure seen at the L2's boundaries.
	LinkBackpressureB uint64 // SourceB send deferred by TL-B occupancy
	LinkBackpressureD uint64 // SourceD send deferred by TL-D occupancy
	ListBufferStalls  uint64 // TL-A/TL-C ingestion deferred by a full ListBuffer
	MSHRFullDefers    uint64 // buffered requests deferred because no MSHR was free
}

// l2Counters holds the cache's registry-backed instruments.
type l2Counters struct {
	acquires, rootReleases, rootReleaseSkips *metrics.Counter
	rootReleaseRaces                         *metrics.Counter
	grantsData, grantsDataDirty              *metrics.Counter
	probesSent, evictions                    *metrics.Counter
	memReads, memWrites                      *metrics.Counter
	voluntaryReleases                        *metrics.Counter
	linkBackpressureB, linkBackpressureD     *metrics.Counter
	listBufferStalls, mshrFullDefers         *metrics.Counter
	listBufferDepth                          *metrics.Gauge

	// ECC-model counters, registered under the SoC-wide "chaos" instance
	// (shared with the L1s; get-or-create makes them one instrument).
	eccFlips, eccDirtyUnrec *metrics.Counter
	refetchRecoveries       *metrics.Counter
}

func newL2Counters(reg *metrics.Registry, name string) l2Counters {
	return l2Counters{
		acquires:          reg.Counter(name, "acquires"),
		rootReleases:      reg.Counter(name, "root_releases"),
		rootReleaseSkips:  reg.Counter(name, "root_release_skips"),
		rootReleaseRaces:  reg.Counter(name, "root_release_races"),
		grantsData:        reg.Counter(name, "grants_data"),
		grantsDataDirty:   reg.Counter(name, "grants_data_dirty"),
		probesSent:        reg.Counter(name, "probes_sent"),
		evictions:         reg.Counter(name, "evictions"),
		memReads:          reg.Counter(name, "mem_reads"),
		memWrites:         reg.Counter(name, "mem_writes"),
		voluntaryReleases: reg.Counter(name, "voluntary_releases"),
		linkBackpressureB: reg.Counter(name, "link_backpressure_b_cycles"),
		linkBackpressureD: reg.Counter(name, "link_backpressure_d_cycles"),
		listBufferStalls:  reg.Counter(name, "listbuffer_stall_cycles"),
		mshrFullDefers:    reg.Counter(name, "mshr_full_defer_cycles"),
		listBufferDepth:   reg.Gauge(name, "listbuffer_depth"),
		eccFlips:          reg.Counter("chaos", "ecc_flips"),
		eccDirtyUnrec:     reg.Counter("chaos", "ecc_dirty_unrecoverable"),
		refetchRecoveries: reg.Counter("chaos", "refetch_recoveries"),
	}
}

// Cache is the inclusive LLC. Drive it once per cycle with Tick. In
// parallel simulation it belongs to the hub shard; L1s reach it only through
// the TileLink channels.
//
//skipit:shard-owned hub
type Cache struct {
	cfg   Config
	lines [][]line // [set][way]
	ports []*tilelink.ClientPort
	mem   *mem.Memory

	mshrs []mshr
	// listBuffer holds TL-C and TL-A requests that arrived while their
	// line had an active MSHR or no MSHR was free (ListBuffer in Fig. 4).
	listBuffer []buffered

	// outB/outD are SourceB/SourceD staging queues, drained one message
	// per client per cycle subject to link occupancy.
	outB [][]tilelink.Msg
	outD [][]tilelink.Msg

	tr  trace.Tracer
	rec *trace.Rec // flight recorder ring; nil records nothing
	ctr l2Counters

	chaos Chaos // nil unless a fault schedule is armed
	// bugDropRaceWB is a test-only mutation (PokeDropRootReleaseRaceData):
	// revert the RootRelease-vs-eviction race fix by dropping the carried
	// data instead of capturing it for write-through.
	bugDropRaceWB bool
	// poisoned marks clean frames carrying an injected ECC flip, keyed by
	// line address; nil until the first injection.
	poisoned map[uint64]struct{}

	// blockedScratch is retryListBuffer's reusable same-line-serialization
	// set (a linear-scan slice: the ListBuffer is small and bounded), kept
	// across cycles so the hot loop does not allocate.
	blockedScratch []uint64
}

type buffered struct {
	msg     tilelink.Msg
	client  int
	readyAt int64
	// wbData carries RootRelease dirty data that arrived for a line the
	// L2 had concurrently evicted (the flush raced an eviction); the
	// MSHR writes it through to DRAM instead of the absent line.
	wbData []byte
}

// New builds the L2 over the given client ports and memory. ports[i] is the
// five-channel bundle shared with client (L1) i, viewed from the client
// side: the L2 receives on A/C/E and sends on B/D.
func New(cfg Config, ports []*tilelink.ClientPort, m *mem.Memory) *Cache {
	if len(ports) != cfg.NumClients {
		panic(fmt.Sprintf("l2: %d ports for %d clients", len(ports), cfg.NumClients))
	}
	if cfg.Sets <= 0 || cfg.Ways <= 0 {
		panic("l2: bad geometry")
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	c := &Cache{
		cfg:   cfg,
		ports: ports,
		mem:   m,
		mshrs: make([]mshr, cfg.NumMSHRs),
		outB:  make([][]tilelink.Msg, cfg.NumClients),
		outD:  make([][]tilelink.Msg, cfg.NumClients),
		ctr:   newL2Counters(reg, "l2"),
	}
	c.lines = make([][]line, cfg.Sets)
	for s := range c.lines {
		c.lines[s] = make([]line, cfg.Ways)
		for w := range c.lines[s] {
			c.lines[s][w].perms = make([]tilelink.Perm, cfg.NumClients)
			c.lines[s][w].data = make([]byte, cfg.LineBytes)
		}
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the activity counters as one struct, read back from the
// metrics registry (thin view; see package metrics).
func (c *Cache) Stats() Stats {
	return Stats{
		Acquires:          c.ctr.acquires.Value(),
		RootReleases:      c.ctr.rootReleases.Value(),
		RootReleaseSkips:  c.ctr.rootReleaseSkips.Value(),
		RootReleaseRaces:  c.ctr.rootReleaseRaces.Value(),
		GrantsData:        c.ctr.grantsData.Value(),
		GrantsDataDirty:   c.ctr.grantsDataDirty.Value(),
		ProbesSent:        c.ctr.probesSent.Value(),
		Evictions:         c.ctr.evictions.Value(),
		MemReads:          c.ctr.memReads.Value(),
		MemWrites:         c.ctr.memWrites.Value(),
		VoluntaryReleases: c.ctr.voluntaryReleases.Value(),
		LinkBackpressureB: c.ctr.linkBackpressureB.Value(),
		LinkBackpressureD: c.ctr.linkBackpressureD.Value(),
		ListBufferStalls:  c.ctr.listBufferStalls.Value(),
		MSHRFullDefers:    c.ctr.mshrFullDefers.Value(),
	}
}

// SetTracer attaches an event tracer (nil disables tracing).
func (c *Cache) SetTracer(t trace.Tracer) { c.tr = t }

// SetRecorder attaches a flight-recorder ring (nil disables recording).
func (c *Cache) SetRecorder(r *trace.Rec) { c.rec = r }

func (c *Cache) index(addr uint64) int {
	return int((addr / c.cfg.LineBytes) % uint64(c.cfg.Sets))
}

func (c *Cache) tag(addr uint64) uint64 {
	return addr / c.cfg.LineBytes / uint64(c.cfg.Sets)
}

func (c *Cache) addrOf(set int, tag uint64) uint64 {
	return (tag*uint64(c.cfg.Sets) + uint64(set)) * c.cfg.LineBytes
}

// lookup returns the frame holding addr, or nil.
func (c *Cache) lookup(addr uint64) *line {
	set := c.index(addr)
	tag := c.tag(addr)
	for w := range c.lines[set] {
		l := &c.lines[set][w]
		if l.valid && l.tag == tag {
			return l
		}
	}
	return nil
}

// LineState snapshots the directory state of addr's line for tests and the
// system-wide invariant checker.
func (c *Cache) LineState(addr uint64) LineState {
	l := c.lookup(addr &^ (c.cfg.LineBytes - 1))
	if l == nil {
		return LineState{}
	}
	perms := make([]tilelink.Perm, len(l.perms))
	copy(perms, l.perms)
	return LineState{Present: true, Dirty: l.dirty, Perms: perms}
}

// PeekLine returns a copy of the line's data if present in L2.
func (c *Cache) PeekLine(addr uint64) ([]byte, bool) {
	l := c.lookup(addr &^ (c.cfg.LineBytes - 1))
	if l == nil {
		return nil, false
	}
	out := make([]byte, len(l.data))
	copy(out, l.data)
	return out, true
}

// Busy reports whether any MSHR is active or any request is buffered; used
// by the system drain loop.
func (c *Cache) Busy() bool {
	if len(c.listBuffer) > 0 {
		return true
	}
	for i := range c.mshrs {
		if c.mshrs[i].state != msFree {
			return true
		}
	}
	for cl := 0; cl < c.cfg.NumClients; cl++ {
		if len(c.outB[cl]) > 0 || len(c.outD[cl]) > 0 {
			return true
		}
	}
	return false
}

// NextEvent returns the earliest cycle after now at which the cache can
// change state without an incoming message: staged SourceB/SourceD messages
// drain every cycle, buffered requests retry once their tag-pipeline delay
// elapses, and MSHRs act every cycle except in the states where they purely
// wait on a link delivery (probe/grant acknowledgements) or a memory
// completion — both covered by the links' and controller's own NextEvent.
//
//skipit:hotpath
func (c *Cache) NextEvent(now int64) int64 {
	next := tilelink.NoEvent
	for cl := 0; cl < c.cfg.NumClients; cl++ {
		if len(c.outB[cl]) > 0 || len(c.outD[cl]) > 0 {
			return now + 1
		}
	}
	for i := range c.listBuffer {
		r := c.listBuffer[i].readyAt
		if r <= now {
			return now + 1
		}
		if r < next {
			next = r
		}
	}
	for i := range c.mshrs {
		switch m := &c.mshrs[i]; m.state {
		case msFree:
			// idle
		case msEvictProbe, msProbe, msGrant:
			// waiting on a C/E-channel delivery; the link reports it
		case msEvictMemWrite, msMemRead, msMemWrite:
			if !m.memSubmitted {
				return now + 1 // resubmitting to the controller every cycle
			}
			// waiting on the controller; mem.NextEvent reports it
		default: // msStart, msFinish act on the next tick
			return now + 1
		}
	}
	return next
}

// Reset clears all volatile state (simulated crash).
func (c *Cache) Reset() {
	for s := range c.lines {
		for w := range c.lines[s] {
			l := &c.lines[s][w]
			l.valid = false
			l.dirty = false
			l.reserved = false
			for i := range l.perms {
				l.perms[i] = tilelink.PermNone
			}
		}
	}
	for i := range c.mshrs {
		c.mshrs[i] = mshr{}
	}
	c.listBuffer = c.listBuffer[:0]
	c.poisoned = nil
	for cl := range c.outB {
		c.outB[cl] = nil
		c.outD[cl] = nil
	}
}
