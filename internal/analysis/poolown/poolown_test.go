package poolown_test

import (
	"testing"

	"skipit/internal/analysis/antest"
	"skipit/internal/analysis/poolown"
)

func TestPoolOwn(t *testing.T) {
	antest.Run(t, poolown.Analyzer, antest.Dir(t, "internal/l1"))
}
