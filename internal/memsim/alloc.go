package memsim

import "sync/atomic"

// Allocator hands out simulated addresses for the persistent heap the
// lock-free structures live in. It is a bump allocator: deterministic,
// lock-free, and 8-byte aligned, with optional padding so elision schemes
// that inflate objects (FliT adjacent) pay their true cache footprint.
type Allocator struct {
	next atomic.Uint64
}

// NewAllocator starts the heap at base (line-aligned).
func NewAllocator(base uint64) *Allocator {
	a := &Allocator{}
	a.next.Store((base + 63) &^ 63)
	return a
}

// Alloc returns an 8-byte aligned address for an object of size bytes.
// Objects never straddle a cache line unless larger than one: the allocator
// pads to the next line when the object would cross a boundary, as real
// persistent allocators do for flush efficiency.
func (a *Allocator) Alloc(size uint64) uint64 {
	if size == 0 {
		size = 8
	}
	size = (size + 7) &^ 7
	for {
		cur := a.next.Load()
		addr := cur
		if size <= 64 {
			lineOff := addr & 63
			if lineOff+size > 64 {
				addr = (addr + 63) &^ 63
			}
		} else {
			addr = (addr + 63) &^ 63
		}
		if a.next.CompareAndSwap(cur, addr+size) {
			return addr
		}
	}
}

// AllocLine returns a fresh line-aligned address and consumes the whole line.
func (a *Allocator) AllocLine() uint64 {
	for {
		cur := a.next.Load()
		addr := (cur + 63) &^ 63
		if a.next.CompareAndSwap(cur, addr+64) {
			return addr
		}
	}
}
