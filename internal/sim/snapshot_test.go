package sim

import (
	"encoding/json"
	"testing"

	"skipit/internal/isa"
)

// snapshotWorkload exercises every counter family: cold misses, evictions
// (stride picked to conflict in one L1 set), flushes, a redundant clean the
// skip bit eliminates, and a fence.
func snapshotWorkload() *isa.Program {
	b := isa.NewBuilder()
	for i := uint64(0); i < 16; i++ {
		b.Store(0x1000+i*4096, i+1) // same L1 set -> eviction writebacks
	}
	b.CboFlush(0x1000)
	b.Store(0x2000, 7).
		CboClean(0x2000).
		CboClean(0x2000). // redundant: skip bit drops it (§6.1)
		Fence().
		Load(0x2000)
	return b.Build()
}

func TestSnapshotAgreesWithLegacyStats(t *testing.T) {
	s := New(DefaultConfig(2))
	progs := []*isa.Program{snapshotWorkload(), snapshotWorkload()}
	if _, err := s.Run(progs, runLimit); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()

	var l1WB, flushOffered, flushSkipped uint64
	for _, d := range s.L1s {
		l1WB += d.Stats().Writebacks
		fs := d.FlushUnit().Stats()
		flushOffered += fs.Offered
		flushSkipped += fs.SkipDropped
	}
	l2St := s.L2.Stats()
	memSt := s.Mem.Stats()

	checks := []struct {
		key  string
		want uint64
	}{
		{"l1.writebacks", l1WB},
		{"l1[0].writebacks", s.L1s[0].Stats().Writebacks},
		{"l2.root_release_skips", l2St.RootReleaseSkips},
		{"l2.root_releases", l2St.RootReleases},
		{"l2.acquires", l2St.Acquires},
		{"mem.writes", memSt.Writes},
		{"mem.reads", memSt.Reads},
		{"flush.offered", flushOffered},
		{"flush.skip_dropped", flushSkipped},
	}
	for _, c := range checks {
		if got := snap.Counters[c.key]; got != c.want {
			t.Errorf("snapshot %q = %d, legacy stats say %d", c.key, got, c.want)
		}
	}
	if flushSkipped == 0 {
		t.Error("workload produced no skip-dropped request; skip_rate untested")
	}
	if snap.Counters["l1.writebacks"] == 0 {
		t.Error("workload produced no L1 writebacks")
	}
}

func TestSnapshotDerivedAndSeries(t *testing.T) {
	s := New(DefaultConfig(1))
	s.EnableSampling(64, "mem.writes", "l2.acquires")
	if _, err := s.Run([]*isa.Program{snapshotWorkload()}, runLimit); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()

	sr, ok := snap.Derived["skip_rate"]
	if !ok || sr <= 0 || sr >= 1 {
		t.Errorf("skip_rate = %v (present=%v), want in (0,1)", sr, ok)
	}
	if _, ok := snap.Derived["l1_load_hit_rate"]; !ok {
		t.Error("l1_load_hit_rate missing")
	}
	if wa, ok := snap.Derived["dram_write_amplification"]; !ok || wa <= 0 {
		t.Errorf("dram_write_amplification = %v (present=%v), want > 0", wa, ok)
	}

	if len(snap.Series) != 2 {
		t.Fatalf("series count = %d, want 2", len(snap.Series))
	}
	for _, ser := range snap.Series {
		if len(ser.Cycles) == 0 {
			t.Errorf("series %q has no samples", ser.Key)
		}
	}
	// Sampled cumulative counters must end at most at the final value.
	for _, ser := range snap.Series {
		last := ser.Values[len(ser.Values)-1]
		if final := snap.Counters[ser.Key]; last > final {
			t.Errorf("series %q last sample %d exceeds final value %d", ser.Key, last, final)
		}
	}

	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-serializable: %v", err)
	}
}

func TestSnapshotAggregateKeysStripInstanceIndex(t *testing.T) {
	for _, tc := range []struct {
		in, want string
		ok       bool
	}{
		{"l1[0].writebacks", "l1.writebacks", true},
		{"flush[12].offered", "flush.offered", true},
		{"l2.acquires", "", false},
		{"mem.writes", "", false},
	} {
		got, ok := aggregateKey(tc.in)
		if ok != tc.ok || got != tc.want {
			t.Errorf("aggregateKey(%q) = %q, %v; want %q, %v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}
