package l2

import (
	"fmt"

	"skipit/internal/mem"
	"skipit/internal/tilelink"
)

// Tick advances the L2 by one cycle: drain the SourceB/SourceD staging
// queues, retire memory responses, ingest the three client->manager
// channels, retry buffered requests, and advance every MSHR.
func (c *Cache) Tick(now int64) {
	c.drainSources(now)
	c.pollMemory(now)
	for cl := 0; cl < c.cfg.NumClients; cl++ {
		c.sinkE(now, cl)
	}
	for cl := 0; cl < c.cfg.NumClients; cl++ {
		c.sinkC(now, cl)
	}
	for cl := 0; cl < c.cfg.NumClients; cl++ {
		c.sinkA(now, cl)
	}
	c.retryListBuffer(now)
	c.advanceMSHRs(now)
	c.ctr.listBufferDepth.Set(int64(len(c.listBuffer)))
}

// drainSources moves staged B and D messages onto their links as occupancy
// allows, preserving per-client order.
func (c *Cache) drainSources(now int64) {
	for cl := 0; cl < c.cfg.NumClients; cl++ {
		if q := c.outB[cl]; len(q) > 0 {
			if c.ports[cl].B.Send(now, q[0]) {
				copy(q, q[1:])
				c.outB[cl] = q[:len(q)-1]
			} else {
				c.ctr.linkBackpressureB.Inc()
			}
		}
		if q := c.outD[cl]; len(q) > 0 {
			if c.ports[cl].D.Send(now, q[0]) {
				copy(q, q[1:])
				c.outD[cl] = q[:len(q)-1]
			} else {
				c.ctr.linkBackpressureD.Inc()
			}
		}
	}
}

// pollMemory routes DRAM completions to their MSHRs.
func (c *Cache) pollMemory(now int64) {
	for {
		r, ok := c.mem.PollResponse()
		if !ok {
			return
		}
		m := &c.mshrs[r.Tag]
		switch {
		case m.state == msEvictMemWrite && r.Kind == mem.Write:
			v := &c.lines[m.victimSet][m.victimWay]
			v.valid = false
			v.dirty = false
			for i := range v.perms {
				v.perms[i] = tilelink.PermNone
			}
			c.submitMemRead(now, m)
		case m.state == msMemRead && r.Kind == mem.Read:
			c.install(now, m, r.Data)
			// The read response's transaction retires at install.
			c.cfg.Pool.Put(r.Data)
		case m.state == msMemWrite && r.Kind == mem.Write:
			if l := c.lookup(m.addr); l != nil {
				l.dirty = false
			}
			c.finishRootRelease(m)
		default:
			panic(fmt.Sprintf("l2: memory %v response for MSHR %d in state %d", r.Kind, r.Tag, m.state))
		}
	}
}

// install writes a refilled line into the reserved way and grants it.
func (c *Cache) install(now int64, m *mshr, data []byte) {
	l := &c.lines[m.victimSet][m.victimWay]
	l.valid = true
	l.tag = c.tag(m.addr)
	l.dirty = false
	copy(l.data, data)
	c.clearPoison(m.addr)
	for i := range l.perms {
		l.perms[i] = tilelink.PermNone
	}
	l.lastUsed = now
	l.reserved = false
	c.sendGrant(now, m)
}

// sinkE consumes GrantAck messages, completing Acquire transactions.
func (c *Cache) sinkE(now int64, cl int) {
	for {
		msg, ok := c.ports[cl].E.Recv(now)
		if !ok {
			return
		}
		if msg.Op != tilelink.OpGrantAck {
			panic(fmt.Sprintf("l2: %v on channel E", msg.Op))
		}
		m := c.mshrFor(msg.Addr)
		if m == nil || m.state != msGrant || m.client != cl {
			panic(fmt.Sprintf("l2: stray GrantAck %#x from client %d", msg.Addr, cl))
		}
		*m = mshr{}
	}
}

// sinkC ingests the C channel: probe acknowledgements complete outstanding
// probes; voluntary releases apply inline; RootReleases allocate an MSHR or
// wait in the ListBuffer (§5.5).
func (c *Cache) sinkC(now int64, cl int) {
	for {
		msg, ok := c.ports[cl].C.Peek(now)
		if !ok {
			return
		}
		switch msg.Op {
		case tilelink.OpProbeAck, tilelink.OpProbeAckData:
			c.ports[cl].C.Recv(now)
			c.onProbeAck(now, cl, msg)

		case tilelink.OpRelease, tilelink.OpReleaseData:
			c.ports[cl].C.Recv(now)
			c.onRelease(now, cl, msg)

		case tilelink.OpRootReleaseFlush, tilelink.OpRootReleaseClean,
			tilelink.OpRootReleaseFlushData, tilelink.OpRootReleaseCleanData:
			if len(c.listBuffer) >= c.listBufferLimit(now) {
				c.ctr.listBufferStalls.Inc()
				return // back-pressure: leave the message on the link
			}
			c.ports[cl].C.Recv(now)
			// §5.5: dirty data is written to the BankedStore
			// immediately upon arrival.
			// RootRelease payloads are NOT recycled here: the sending
			// FSHR keeps forwarding loads from its buffer until the
			// acknowledgement, so the buffer stays owned by the FSHR
			// (which recycles it at OnRootReleaseAck).
			var wbData []byte
			if msg.Op.HasData() {
				if l := c.lookup(msg.Addr); l != nil {
					copy(l.data, msg.Data)
					l.dirty = true
					c.clearPoison(msg.Addr)
				} else {
					// The line was evicted while the RootRelease
					// was in flight on the C channel (the FSHR's
					// L1 copy was already invalidated, so the
					// evict probe saw nothing to hold it back).
					// The carried data is the only live copy;
					// copy it for the MSHR's direct DRAM
					// write-through (the FSHR still owns — and
					// forwards loads from — the original).
					c.ctr.rootReleaseRaces.Inc()
					if !c.bugDropRaceWB {
						wbData = c.cfg.Pool.Get(int(c.cfg.LineBytes))
						copy(wbData, msg.Data)
					}
				}
			}
			c.listBuffer = append(c.listBuffer, buffered{msg: msg, client: cl, readyAt: now + int64(c.cfg.TagLatency), wbData: wbData}) //skipit:ignore hotalloc listBuffer is bounded by cfg.ListBufferDepth; append reuses its backing after warmup

		default:
			panic(fmt.Sprintf("l2: %v on channel C", msg.Op))
		}
	}
}

// onProbeAck applies a probe acknowledgement: directory downgrade for the
// sender, dirty data into the BankedStore, and progress for the MSHR that
// issued the probe.
func (c *Cache) onProbeAck(now int64, cl int, msg tilelink.Msg) {
	l := c.lookup(msg.Addr)
	if l != nil {
		l.perms[cl] = msg.Shrink.To()
		if msg.Op == tilelink.OpProbeAckData {
			copy(l.data, msg.Data)
			l.dirty = true
			c.clearPoison(msg.Addr)
		}
	}
	if msg.Op == tilelink.OpProbeAckData {
		c.cfg.Pool.Put(msg.Data)
	}
	m := c.probeOwner(msg.Addr)
	if m == nil {
		panic(fmt.Sprintf("l2: ProbeAck %#x without outstanding probe", msg.Addr))
	}
	m.pendingProbes--
	if m.pendingProbes > 0 {
		return
	}
	switch m.state {
	case msEvictProbe:
		c.finishEvict(now, m)
	case msProbe:
		if m.kind == txnAcquire {
			c.sendGrant(now, m)
		} else {
			c.rootReleaseWriteback(now, m)
		}
	default:
		panic(fmt.Sprintf("l2: probes completed in state %d", m.state))
	}
}

// probeOwner finds the MSHR with outstanding probes on addr — either its own
// line or the victim line it is evicting.
func (c *Cache) probeOwner(addr uint64) *mshr {
	for i := range c.mshrs {
		m := &c.mshrs[i]
		if m.state == msFree || m.pendingProbes == 0 {
			continue
		}
		if m.addr == addr {
			return m
		}
		if m.hasVictim && m.state == msEvictProbe {
			v := &c.lines[m.victimSet][m.victimWay]
			if c.addrOf(m.victimSet, v.tag) == addr {
				return m
			}
		}
	}
	return nil
}

// onRelease applies a voluntary writeback from an L1 writeback unit. It is
// applied inline — even when an MSHR is transacting on the line — because
// the releasing client's probe acknowledgement is ordered after the release
// on its C channel, and the MSHR's grant must see the released data.
func (c *Cache) onRelease(now int64, cl int, msg tilelink.Msg) {
	c.ctr.voluntaryReleases.Inc()
	l := c.lookup(msg.Addr)
	if l == nil {
		panic(fmt.Sprintf("l2: Release for absent line %#x (inclusion violated)", msg.Addr))
	}
	l.perms[cl] = msg.Shrink.To()
	if msg.Op == tilelink.OpReleaseData {
		copy(l.data, msg.Data)
		l.dirty = true
		c.clearPoison(msg.Addr)
		c.cfg.Pool.Put(msg.Data)
	}
	l.lastUsed = now
	c.outD[cl] = append(c.outD[cl], tilelink.Msg{Op: tilelink.OpReleaseAck, Addr: msg.Addr, Txn: msg.Txn}) //skipit:ignore hotalloc per-client outD depth is bounded by outstanding transactions; append reuses its backing after warmup
}

// sinkA ingests Acquire requests, allocating an MSHR or buffering.
func (c *Cache) sinkA(now int64, cl int) {
	for {
		msg, ok := c.ports[cl].A.Peek(now)
		if !ok {
			return
		}
		if msg.Op == tilelink.OpAcquirePerm {
			panic("l2: AcquirePerm unsupported (§3.3)")
		}
		if msg.Op != tilelink.OpAcquireBlock {
			panic(fmt.Sprintf("l2: %v on channel A", msg.Op))
		}
		if len(c.listBuffer) >= c.listBufferLimit(now) {
			c.ctr.listBufferStalls.Inc()
			return
		}
		c.ports[cl].A.Recv(now)
		c.ctr.acquires.Inc()
		c.listBuffer = append(c.listBuffer, buffered{msg: msg, client: cl, readyAt: now + int64(c.cfg.TagLatency)}) //skipit:ignore hotalloc listBuffer is bounded by listBufferLimit (checked above); append reuses its backing after warmup
	}
}

// retryListBuffer allocates MSHRs for buffered requests in FIFO order,
// skipping entries whose line is under an active transaction or blocked
// behind an earlier buffered entry for the same line.
func (c *Cache) retryListBuffer(now int64) {
	if len(c.listBuffer) == 0 {
		return
	}
	// blocked is a linear-scan set (the ListBuffer is small and bounded);
	// its backing array persists on the Cache so the hot loop is
	// allocation-free.
	blocked := c.blockedScratch[:0]
	isBlocked := func(addr uint64) bool { //skipit:ignore hotalloc non-escaping local closure; blocked backing persists on the Cache (see comment above)
		for _, a := range blocked {
			if a == addr {
				return true
			}
		}
		return false
	}
	kept := c.listBuffer[:0]
	for _, b := range c.listBuffer {
		if b.readyAt > now || isBlocked(b.msg.Addr) || c.lineBusy(b.msg.Addr) {
			blocked = append(blocked, b.msg.Addr) //skipit:ignore hotalloc blocked reuses blockedScratch whose backing persists on the Cache
			kept = append(kept, b)                //skipit:ignore hotalloc filter-in-place reslice of listBuffer; never exceeds the original backing array
			continue
		}
		m := c.freeMSHR(now)
		if m == nil {
			c.ctr.mshrFullDefers.Inc()
			blocked = append(blocked, b.msg.Addr) //skipit:ignore hotalloc blocked reuses blockedScratch whose backing persists on the Cache
			kept = append(kept, b)                //skipit:ignore hotalloc filter-in-place reslice of listBuffer; never exceeds the original backing array
			continue
		}
		*m = mshr{state: msStart, addr: b.msg.Addr, client: b.client, since: now, txn: b.msg.Txn}
		if b.msg.Op == tilelink.OpAcquireBlock {
			m.kind = txnAcquire
			m.grow = b.msg.Grow
		} else {
			m.kind = txnRootRelease
			m.clean = b.msg.Op.IsRootReleaseClean()
			m.wbData = b.wbData
		}
		// Serialize same-line entries.
		blocked = append(blocked, b.msg.Addr) //skipit:ignore hotalloc blocked reuses blockedScratch whose backing persists on the Cache
	}
	c.listBuffer = kept
	c.blockedScratch = blocked
}

// advanceMSHRs performs the per-cycle state actions that are not driven by
// an incoming message: dispatch, memory-submit retries, and final acks.
func (c *Cache) advanceMSHRs(now int64) {
	for i := range c.mshrs {
		m := &c.mshrs[i]
		switch m.state {
		case msStart:
			if now < m.since {
				continue
			}
			if m.kind == txnAcquire {
				c.dispatchAcquire(now, m)
			} else {
				c.startRootRelease(now, m)
				c.maybeFinish(m)
			}
		case msEvictMemWrite, msMemWrite:
			if !m.memSubmitted {
				c.resubmitWrite(now, m)
			}
		case msMemRead:
			if !m.memSubmitted {
				c.submitMemRead(now, m)
			}
		case msFinish:
			c.maybeFinish(m)
		}
	}
}

// dispatchAcquire starts an Acquire, stalling in msStart when every way of
// the target set is reserved by other transactions.
func (c *Cache) dispatchAcquire(now int64, m *mshr) {
	if c.lookup(m.addr) == nil {
		set := c.index(m.addr)
		if c.pickVictim(set) < 0 {
			return // all ways under transaction; retry next cycle
		}
	}
	c.startAcquire(now, m)
}

// maybeFinish emits the RootReleaseAck for a finished RootRelease and frees
// the MSHR.
func (c *Cache) maybeFinish(m *mshr) {
	if m.state != msFinish {
		return
	}
	c.outD[m.client] = append(c.outD[m.client], tilelink.Msg{Op: tilelink.OpRootReleaseAck, Addr: m.addr, Txn: m.txn}) //skipit:ignore hotalloc per-client outD depth is bounded by outstanding transactions; append reuses its backing after warmup
	*m = mshr{}
}

// resubmitWrite retries a memory write that the controller rejected.
func (c *Cache) resubmitWrite(now int64, m *mshr) {
	var addr uint64
	var l *line
	if m.state == msEvictMemWrite {
		l = &c.lines[m.victimSet][m.victimWay]
		addr = c.addrOf(m.victimSet, l.tag)
	} else {
		addr = m.addr
		l = c.lookup(m.addr)
	}
	var data []byte
	if l != nil {
		data = c.cfg.Pool.Get(int(c.cfg.LineBytes))
		copy(data, l.data)
	} else if len(m.wbData) > 0 {
		// RootRelease write-through for a line evicted in flight: the
		// data lives only in the MSHR (see startRootRelease).
		data = m.wbData
	} else {
		panic("l2: write retry for absent line")
	}
	if c.mem.Submit(now, mem.Request{Kind: mem.Write, Addr: addr, Data: data, Tag: c.mshrIndex(m), Txn: m.txn}) {
		c.ctr.memWrites.Inc()
		m.memSubmitted = true
	} else if l != nil {
		// The freshly drawn copy goes back; m.wbData stays with the MSHR.
		c.cfg.Pool.Put(data)
	}
}
