// Package l1 models the SonicBOOM non-blocking L1 data cache (§3.3): a
// set-associative write-back cache with metadata and data SRAM arrays, miss
// status holding registers with replay queues, a writeback unit, a probe
// unit — and, per the paper's Fig. 8, the flush unit of package core wired
// in with its probe_invalidate / probe_rdy / flush_rdy / wb_rdy signals.
//
// The LSU talks to the cache through Submit/PollResponses; the L2 talks to
// it through the five-channel TileLink port.
package l1

import (
	"fmt"

	"skipit/internal/core"
	"skipit/internal/linepool"
	"skipit/internal/metrics"
	"skipit/internal/tilelink"
	"skipit/internal/trace"
)

// ReqKind classifies an LSU request into the data cache.
type ReqKind uint8

const (
	Load ReqKind = iota
	Store
	CboClean
	CboFlush
	// CflushDL1 is SiFive's vendor L1-only eviction (§2.6): the line is
	// released to the L2 through the writeback unit, bypassing the flush
	// unit entirely — and therefore never reaching main memory.
	CflushDL1
	// AmoAdd and AmoSwap are A-extension read-modify-writes: they need
	// Trunk permission like stores and return the old word value.
	AmoAdd
	AmoSwap
)

func (k ReqKind) String() string {
	return [...]string{"Load", "Store", "CboClean", "CboFlush", "CflushDL1", "AmoAdd", "AmoSwap"}[k]
}

// IsAmo reports whether the request is an atomic read-modify-write.
func (k ReqKind) IsAmo() bool { return k == AmoAdd || k == AmoSwap }

// Req is one LSU request. Load and Store operate on the 8-byte word at Addr
// (8-byte aligned); CboClean and CboFlush operate on the line containing
// Addr. ID is echoed in the response.
type Req struct {
	ID   int
	Kind ReqKind
	Addr uint64
	Data uint64 // store payload
}

// Resp completes a Req. Nack means the cache could not accept the request
// (full flush queue, no MSHR, conflict) and the LSU must retry (§3.3, §5.2).
type Resp struct {
	ID   int
	Nack bool
	Data uint64 // load result
}

// Config sets the cache geometry and structural limits.
type Config struct {
	Sets       int
	Ways       int
	LineBytes  uint64
	HitLatency int // cycles from processing to load-hit response
	CboLatency int // cycles from processing to CBO.X accept/drop response
	NumMSHRs   int
	RPQDepth   int // replay queue entries per MSHR
	InputWidth int // requests accepted per cycle (the LSU fires 2, §3.2)
	InputDepth int // request pipeline buffer
	Source     int // TileLink source ID / client index
	Flush      core.Config
	// Metrics is the registry the cache registers its counters with, under
	// the instance name "l1[Source]"; the embedded flush unit inherits it
	// as "flush[Source]". Nil gets a private registry.
	Metrics *metrics.Registry
	// Pool recycles line buffers for writebacks, probe downgrades and FSHR
	// fills; the embedded flush unit inherits it. Nil disables pooling.
	Pool *linepool.Pool `json:"-"`
	// Txns hands out coherence-transaction ids; sim.New injects the SoC-wide
	// sequence and the embedded flush unit inherits it. Nil gets a private
	// sequence (standalone unit tests). Excluded from fingerprints: ids are
	// observational and never change simulated behavior.
	Txns *trace.TxnSeq `json:"-"`
}

// DefaultConfig returns the SonicBOOM L1: 32 KiB, 8-way, 64 B lines
// (64 sets), with the paper's flush unit configuration.
func DefaultConfig(source int) Config {
	f := core.DefaultConfig()
	f.Source = source
	return Config{
		Sets:       64,
		Ways:       8,
		LineBytes:  64,
		HitLatency: 3,
		CboLatency: 10,
		NumMSHRs:   4,
		RPQDepth:   8,
		InputWidth: 2,
		InputDepth: 4,
		Source:     source,
		Flush:      f,
	}
}

// wayMeta is one metadata array entry: tag, coherence state, dirty bit
// (§3.3) and the Skip It bit (§6.1).
type wayMeta struct {
	valid    bool
	tag      uint64
	perm     tilelink.Perm
	dirty    bool
	skip     bool
	lastUsed int64
}

// LineInfo is a read-only metadata snapshot for tests and invariant checks.
type LineInfo struct {
	Valid bool
	Addr  uint64
	Perm  tilelink.Perm
	Dirty bool
	Skip  bool
}

// Stats is the data cache's counter set, read back as one struct. The
// counters live in the metrics registry (under "l1[N].*"); Stats()
// materializes this view from them.
type Stats struct {
	Loads        uint64
	Stores       uint64
	LoadHits     uint64
	StoreHits    uint64
	LoadMisses   uint64
	StoreMisses  uint64
	Nacks        uint64
	FSHRForwards uint64 // loads served from an FSHR data buffer (§5.3)
	ProbesServed uint64
	Writebacks   uint64 // WBU releases (evictions)

	// Nack attribution: every Nacks increment is also counted under
	// exactly one cause below.
	NackMSHRFull       uint64 // no free MSHR, or replay queue full
	NackMSHRBusy       uint64 // line has an in-flight miss or pending release
	NackFlushConflict  uint64 // §5.3 flush-unit conflict rules
	NackProbeTransient uint64 // line mid-probe-downgrade
	NackChaos          uint64 // forced by an armed fault schedule
}

// l1Counters holds the cache's registry-backed instruments.
type l1Counters struct {
	loads, stores              *metrics.Counter
	loadHits, storeHits        *metrics.Counter
	loadMisses, storeMisses    *metrics.Counter
	nacks, fshrForwards        *metrics.Counter
	probesServed, writebacks   *metrics.Counter
	nackMSHRFull, nackMSHRBusy *metrics.Counter
	nackFlushConflict          *metrics.Counter
	nackProbeTransient         *metrics.Counter
	nackChaos                  *metrics.Counter

	// ECC-model counters, registered under the SoC-wide "chaos" instance
	// (shared with the L2 and the sim-level registration; the registry's
	// get-or-create semantics make them one instrument).
	eccFlips, eccDirtyUnrec *metrics.Counter
	refetchRecoveries       *metrics.Counter
}

func newL1Counters(reg *metrics.Registry, name string) l1Counters {
	return l1Counters{
		loads:              reg.Counter(name, "loads"),
		stores:             reg.Counter(name, "stores"),
		loadHits:           reg.Counter(name, "load_hits"),
		storeHits:          reg.Counter(name, "store_hits"),
		loadMisses:         reg.Counter(name, "load_misses"),
		storeMisses:        reg.Counter(name, "store_misses"),
		nacks:              reg.Counter(name, "nacks"),
		fshrForwards:       reg.Counter(name, "fshr_forwards"),
		probesServed:       reg.Counter(name, "probes_served"),
		writebacks:         reg.Counter(name, "writebacks"),
		nackMSHRFull:       reg.Counter(name, "nack_mshr_full"),
		nackMSHRBusy:       reg.Counter(name, "nack_mshr_busy"),
		nackFlushConflict:  reg.Counter(name, "nack_flush_conflict"),
		nackProbeTransient: reg.Counter(name, "nack_probe_transient"),
		nackChaos:          reg.Counter(name, "nack_chaos"),
		eccFlips:           reg.Counter("chaos", "ecc_flips"),
		eccDirtyUnrec:      reg.Counter("chaos", "ecc_dirty_unrecoverable"),
		refetchRecoveries:  reg.Counter("chaos", "refetch_recoveries"),
	}
}

type pendingReq struct {
	req     Req
	readyAt int64
}

type timedResp struct {
	resp    Resp
	readyAt int64
}

// DCache is the L1 data cache. In parallel simulation each DCache belongs
// to its core's shard; the L2 reaches it only through the TileLink channels.
//
//skipit:shard-owned core
type DCache struct {
	cfg  Config
	meta [][]wayMeta
	data [][][]byte
	port *tilelink.ClientPort

	flush *core.FlushUnit
	mshrs []mshr
	wb    wbUnit
	probe probeUnit

	inQ   []pendingReq
	respQ []timedResp

	// respScratch backs PollResponses' return slice across cycles so the
	// steady-state loop does not allocate.
	respScratch []Resp

	tr   trace.Tracer
	rec  *trace.Rec // flight recorder ring; nil records nothing
	name string

	acceptedThisCycle int
	lastAcceptCycle   int64

	ctr l1Counters

	chaos Chaos // nil unless a fault schedule is armed
	// poisoned marks clean lines carrying an injected ECC flip, keyed by
	// line address; nil until the first injection.
	poisoned map[uint64]struct{}
}

// New builds a data cache over the given TileLink port (client side).
func New(cfg Config, port *tilelink.ClientPort) *DCache {
	if cfg.Sets <= 0 || cfg.Ways <= 0 || cfg.LineBytes == 0 {
		panic("l1: bad geometry")
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	if cfg.Txns == nil {
		cfg.Txns = &trace.TxnSeq{}
	}
	d := &DCache{cfg: cfg, port: port, name: fmt.Sprintf("l1[%d]", cfg.Source)}
	d.ctr = newL1Counters(reg, d.name)
	d.meta = make([][]wayMeta, cfg.Sets)
	d.data = make([][][]byte, cfg.Sets)
	for s := 0; s < cfg.Sets; s++ {
		d.meta[s] = make([]wayMeta, cfg.Ways)
		d.data[s] = make([][]byte, cfg.Ways)
		for w := 0; w < cfg.Ways; w++ {
			d.data[s][w] = make([]byte, cfg.LineBytes)
		}
	}
	d.mshrs = make([]mshr, cfg.NumMSHRs)
	fcfg := cfg.Flush
	fcfg.LineBytes = cfg.LineBytes
	fcfg.Source = cfg.Source
	fcfg.Metrics = reg
	fcfg.Pool = cfg.Pool
	fcfg.Txns = cfg.Txns
	d.flush = core.NewFlushUnit(fcfg, (*flushPorts)(d))
	return d
}

// Config returns the cache configuration.
func (d *DCache) Config() Config { return d.cfg }

// Stats returns the activity counters as one struct, read back from the
// metrics registry (thin view; see package metrics).
func (d *DCache) Stats() Stats {
	return Stats{
		Loads:              d.ctr.loads.Value(),
		Stores:             d.ctr.stores.Value(),
		LoadHits:           d.ctr.loadHits.Value(),
		StoreHits:          d.ctr.storeHits.Value(),
		LoadMisses:         d.ctr.loadMisses.Value(),
		StoreMisses:        d.ctr.storeMisses.Value(),
		Nacks:              d.ctr.nacks.Value(),
		FSHRForwards:       d.ctr.fshrForwards.Value(),
		ProbesServed:       d.ctr.probesServed.Value(),
		Writebacks:         d.ctr.writebacks.Value(),
		NackMSHRFull:       d.ctr.nackMSHRFull.Value(),
		NackMSHRBusy:       d.ctr.nackMSHRBusy.Value(),
		NackFlushConflict:  d.ctr.nackFlushConflict.Value(),
		NackProbeTransient: d.ctr.nackProbeTransient.Value(),
		NackChaos:          d.ctr.nackChaos.Value(),
	}
}

// FlushUnit exposes the embedded flush unit (for stats and fences).
func (d *DCache) FlushUnit() *core.FlushUnit { return d.flush }

// SetTracer attaches an event tracer to the cache and its flush unit (nil
// disables tracing).
func (d *DCache) SetTracer(t trace.Tracer) {
	d.tr = t
	d.flush.SetTracer(t)
}

// SetRecorder attaches a flight-recorder ring to the cache (nil disables
// recording). The embedded flush unit has its own ring; wire it via
// FlushUnit().SetRecorder.
func (d *DCache) SetRecorder(r *trace.Rec) { d.rec = r }

// Flushing mirrors the §5.3 fence gate: true while CBO.X requests are
// pending anywhere in the flush unit.
func (d *DCache) Flushing() bool { return d.flush.Flushing() }

func (d *DCache) lineAddr(addr uint64) uint64 { return addr &^ (d.cfg.LineBytes - 1) }

func (d *DCache) index(addr uint64) int {
	return int((addr / d.cfg.LineBytes) % uint64(d.cfg.Sets))
}

func (d *DCache) tagOf(addr uint64) uint64 {
	return addr / d.cfg.LineBytes / uint64(d.cfg.Sets)
}

func (d *DCache) addrOf(set int, tag uint64) uint64 {
	return (tag*uint64(d.cfg.Sets) + uint64(set)) * d.cfg.LineBytes
}

// findWay returns the way holding addr, honoring the valid bit when
// mustBeValid is set. The flush unit's fill_buffer state reads the data
// array after meta_write invalidated the line, so it looks up by tag alone;
// the §5.4.2 victim-selection interlock guarantees the way is not reused in
// that window.
func (d *DCache) findWay(addr uint64, mustBeValid bool) int {
	set := d.index(addr)
	tag := d.tagOf(addr)
	for w := range d.meta[set] {
		m := &d.meta[set][w]
		if m.tag == tag && (m.valid || !mustBeValid) {
			return w
		}
	}
	return -1
}

// lookup returns the metadata of addr's line, or nil on miss.
func (d *DCache) lookup(addr uint64) *wayMeta {
	set := d.index(addr)
	tag := d.tagOf(addr)
	for w := range d.meta[set] {
		m := &d.meta[set][w]
		if m.valid && m.tag == tag {
			return m
		}
	}
	return nil
}

// LineState snapshots addr's line for tests and invariant checks.
func (d *DCache) LineState(addr uint64) LineInfo {
	m := d.lookup(d.lineAddr(addr))
	if m == nil {
		return LineInfo{}
	}
	return LineInfo{Valid: true, Addr: d.lineAddr(addr), Perm: m.perm, Dirty: m.dirty, Skip: m.skip}
}

// Lines returns a snapshot of every valid line, for the system-wide
// invariant checker.
func (d *DCache) Lines() []LineInfo {
	var out []LineInfo
	for s := range d.meta {
		for w := range d.meta[s] {
			m := &d.meta[s][w]
			if m.valid {
				out = append(out, LineInfo{
					Valid: true,
					Addr:  d.addrOf(s, m.tag),
					Perm:  m.perm,
					Dirty: m.dirty,
					Skip:  m.skip,
				})
			}
		}
	}
	return out
}

// Busy reports whether any internal machinery is mid-flight; the system
// drain loop uses it together with link and L2 quiescence.
func (d *DCache) Busy() bool {
	if len(d.inQ) > 0 || len(d.respQ) > 0 || d.flush.Flushing() {
		return true
	}
	if !d.wb.idle() || d.probe.busy() {
		return true
	}
	for i := range d.mshrs {
		if d.mshrs[i].state != mFree {
			return true
		}
	}
	return false
}

// NextEvent returns the earliest cycle after now at which the cache can
// change state without an incoming message: pipelined requests and timed
// responses mature at their readyAt, the probe/writeback units and most MSHR
// states act every cycle, and the flush unit reports its own horizon. MSHRs
// waiting on a grant (and the WBU waiting on its ReleaseAck) generate no
// event of their own — the D-channel link reports the delivery cycle.
//
//skipit:hotpath
func (d *DCache) NextEvent(now int64) int64 {
	next := tilelink.NoEvent
	for i := range d.inQ {
		if r := d.inQ[i].readyAt; r <= now {
			return now + 1
		} else if r < next {
			next = r
		}
	}
	for i := range d.respQ {
		if r := d.respQ[i].readyAt; r <= now {
			return now + 1
		} else if r < next {
			next = r
		}
	}
	if d.probe.busy() {
		return now + 1
	}
	if d.wb.state == wbSendRelease {
		return now + 1
	}
	if t := d.flush.NextEvent(now); t < next {
		next = t
	}
	for i := range d.mshrs {
		switch d.mshrs[i].state {
		case mFree, mWaitGrant:
			// idle, or waiting on TL-D
		default:
			return now + 1
		}
	}
	return next
}

// Reset drops all volatile state (simulated crash).
func (d *DCache) Reset() {
	for s := range d.meta {
		for w := range d.meta[s] {
			d.meta[s][w] = wayMeta{}
			for i := range d.data[s][w] {
				d.data[s][w][i] = 0
			}
		}
	}
	for i := range d.mshrs {
		d.mshrs[i] = mshr{}
	}
	d.wb = wbUnit{}
	d.probe = probeUnit{}
	d.inQ = d.inQ[:0]
	d.respQ = d.respQ[:0]
	d.poisoned = nil
	d.flush.Reset()
}

func (d *DCache) readWord(set, way int, addr uint64) uint64 {
	off := addr & (d.cfg.LineBytes - 1)
	if off%8 != 0 {
		panic(fmt.Sprintf("l1: unaligned word access %#x", addr))
	}
	line := d.data[set][way]
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(line[off+i]) << (8 * i)
	}
	return v
}

func (d *DCache) writeWord(set, way int, addr uint64, v uint64) {
	off := addr & (d.cfg.LineBytes - 1)
	if off%8 != 0 {
		panic(fmt.Sprintf("l1: unaligned word access %#x", addr))
	}
	line := d.data[set][way]
	for i := uint64(0); i < 8; i++ {
		line[off+i] = byte(v >> (8 * i))
	}
}

// --- core.CachePorts implementation (the Fig. 8 wiring) ---

// flushPorts adapts DCache to the flush unit's port interface without
// exporting the mutators on DCache itself.
type flushPorts DCache

func (p *flushPorts) d() *DCache { return (*DCache)(p) }

func (p *flushPorts) MetaInvalidate(addr uint64) {
	if m := p.d().lookup(addr); m != nil {
		m.valid = false
		m.dirty = false
		m.skip = false
		p.d().clearPoison(p.d().lineAddr(addr))
	}
}

func (p *flushPorts) MetaClearDirty(addr uint64) {
	if m := p.d().lookup(addr); m != nil {
		m.dirty = false
	}
}

func (p *flushPorts) MetaLineState(addr uint64) core.LineMeta {
	m := p.d().lookup(addr)
	if m == nil {
		return core.LineMeta{}
	}
	return core.LineMeta{Hit: true, Dirty: m.dirty, Perm: m.perm, Skip: m.skip}
}

func (p *flushPorts) MetaSetSkip(addr uint64, v bool) {
	if m := p.d().lookup(addr); m != nil {
		m.skip = v
	}
}

func (p *flushPorts) DataRead(addr uint64) []byte {
	d := p.d()
	way := d.findWay(addr, false)
	if way < 0 {
		panic(fmt.Sprintf("l1: FSHR data read for unknown line %#x", addr))
	}
	set := d.index(addr)
	out := d.cfg.Pool.Get(int(d.cfg.LineBytes))
	copy(out, d.data[set][way])
	return out
}

func (p *flushPorts) SendRootRelease(now int64, m tilelink.Msg) bool {
	return p.d().port.C.Send(now, m)
}
