package sweepd

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"skipit/internal/introspect"
	"skipit/internal/sweep"
)

// assertStoresByteIdentical compares the named group files of two stores.
func assertStoresByteIdentical(t *testing.T, dirA, dirB string, groups []string) {
	t.Helper()
	for _, g := range groups {
		a, err := os.ReadFile(filepath.Join(dirA, sweep.FileName(g)))
		if err != nil {
			t.Fatalf("reading %s from %s: %v", g, dirA, err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, sweep.FileName(g)))
		if err != nil {
			t.Fatalf("reading %s from %s: %v", g, dirB, err)
		}
		if string(a) != string(b) {
			t.Errorf("BENCH_%s.json differs between %s and %s:\n--- serial ---\n%s\n--- fleet ---\n%s",
				g, dirA, dirB, a, b)
		}
	}
}

// TestE2EFaultInjectedFleet is the tentpole acceptance test: a fleet run
// over real HTTP with seed-scheduled transport faults on every link, one
// worker kill -9'd mid-run, and a coordinator crash + journal recovery —
// and every submitted job must land exactly one committed result or one
// typed terminal error, with the client's store files byte-identical to a
// serial in-process run.
func TestE2EFaultInjectedFleet(t *testing.T) {
	const (
		slow    = 30 * time.Millisecond // per-job runtime so kills land mid-run
		failIdx = 5                     // this job always errors: the typed-terminal-path probe
	)
	var jobs []sweep.Job
	for i := 0; i < 12; i++ {
		group := "e2e1"
		if i >= 7 {
			group = "e2e2"
		}
		name := fmt.Sprintf("pt%02d", i)
		cycles := float64(1000 + 13*i)
		if i == failIdx {
			jobs = append(jobs, sweep.Job{
				Group: group, Name: name, Fingerprint: "fp-" + name,
				Run: func(sweep.Sink) (sweep.Outcome, error) {
					time.Sleep(slow)
					return sweep.Outcome{}, fmt.Errorf("synthetic permanent failure")
				},
			})
			continue
		}
		jobs = append(jobs, sweep.Job{
			Group: group, Name: name, Fingerprint: "fp-" + name,
			Run: func(sweep.Sink) (sweep.Outcome, error) {
				time.Sleep(slow)
				return sweep.Outcome{Cycles: cycles, Reps: 1}, nil
			},
		})
	}

	// Serial reference run (the failing job fails here too, so both stores
	// carry exactly the successful records).
	dir := t.TempDir()
	serialStore, err := sweep.Open(filepath.Join(dir, "serial"))
	if err != nil {
		t.Fatal(err)
	}
	serial := sweep.Runner{Workers: 1, Store: serialStore}
	serialResults := serial.Run(jobs)
	if err := serialStore.Flush(); err != nil {
		t.Fatal(err)
	}

	// Coordinator 1 rides the introspection server: one listener for
	// /metrics, /events, and the job API.
	journalPath := filepath.Join(dir, "journal.jsonl")
	coordDir := filepath.Join(dir, "coord")
	coordCfg := func(st *sweep.Store) CoordConfig {
		return CoordConfig{
			Store: st, JournalPath: journalPath, Seed: 1234,
			LeaseTTL: 1200 * time.Millisecond, MaxAttempts: 5,
			BackoffBase: 20 * time.Millisecond, BackoffMax: 200 * time.Millisecond,
			Logf: t.Logf,
		}
	}
	st1, err := sweep.Open(coordDir)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := NewCoordinator(coordCfg(st1))
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := introspect.New("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	Mount(srv1, c1)

	// Every client shares one switchable HTTP transport so the test can
	// repoint the fleet at the restarted coordinator.
	link := &switchTransport{}
	link.set(&HTTPTransport{Base: "http://" + srv1.Addr()})

	source := IndexJobs(jobs)
	newWorker := func(name string, seed int64) (*Worker, *FaultTransport) {
		ft := &FaultTransport{Inner: link, Plan: FaultPlan{
			Seed: seed, DropRequest: 0.08, DropResponse: 0.08, Duplicate: 0.15,
			DelayMax: 2 * time.Millisecond,
		}}
		w := NewWorker(WorkerConfig{
			Name: name, Client: &Client{T: ft}, Source: source,
			PollEvery: 20 * time.Millisecond, JobTimeout: 10 * time.Second,
			Logf: t.Logf,
		})
		return w, ft
	}
	w1, w1link := newWorker("w1", 11)
	w2, _ := newWorker("w2", 22)
	go w1.Run() //nolint:errcheck
	go w2.Run() //nolint:errcheck
	defer w1.Stop()
	defer w2.Stop()

	// The fleet client gets its own (milder) fault plan.
	fleetStore, err := sweep.Open(filepath.Join(dir, "fleet"))
	if err != nil {
		t.Fatal(err)
	}
	clientLink := &FaultTransport{Inner: link, Plan: FaultPlan{
		Seed: 33, DropRequest: 0.05, DropResponse: 0.05,
	}}
	fleet := &Fleet{
		Client: &Client{T: clientLink}, Fallback: sweep.Runner{Workers: 2},
		Store: fleetStore, PollEvery: 50 * time.Millisecond,
		SubmitRetries: 6, Logf: t.Logf,
	}
	resCh := make(chan []sweep.JobResult, 1)
	go func() { resCh <- fleet.Run(jobs) }()

	// Let the run get going, then kill -9 one worker mid-flight.
	waitFor(t, 30*time.Second, "first completions", func() bool {
		return c1.State().Done >= 3
	})
	w1link.Kill()
	w1.Stop()

	// Crash the coordinator: sever the link, stop the server, abandon the
	// process. The journal is the only thing that survives.
	link.set(errTransport{})
	time.Sleep(50 * time.Millisecond) // drain in-flight handlers
	srv1.Close()
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: same journal, same store directory, fresh everything else.
	st2, err := sweep.Open(coordDir)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewCoordinator(coordCfg(st2))
	if err != nil {
		t.Fatalf("journal recovery: %v", err)
	}
	defer c2.Close()
	srv2, err := introspect.New("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	Mount(srv2, c2)
	link.set(&HTTPTransport{Base: "http://" + srv2.Addr()})

	// A replacement worker joins the recovered pool.
	w3, _ := newWorker("w3", 44)
	go w3.Run() //nolint:errcheck
	defer w3.Stop()

	var results []sweep.JobResult
	select {
	case results = <-resCh:
	case <-time.After(90 * time.Second):
		t.Fatalf("fleet run did not converge; coordinator state: %+v", c2.State())
	}

	// Exactly one outcome per job: a committed record or a typed error.
	for i := range jobs {
		if i == failIdx {
			var jobErr *JobError
			if !errors.As(results[i].Err, &jobErr) {
				t.Fatalf("job %d should fail typed, got %v", i, results[i].Err)
			}
			// The retry budget is usually exhausted by run errors, but under
			// injected faults the last attempt can also die as an expired
			// lease (e.g. the killed worker held it). Either way the error
			// must be typed. The exact run-error classification is pinned
			// deterministically in TestCompleteFailureConsumesRetryBudget.
			if jobErr.Failure.Code != FailRunError && jobErr.Failure.Code != FailLeaseExpired {
				t.Fatalf("job %d failure code %q, want %q or %q",
					i, jobErr.Failure.Code, FailRunError, FailLeaseExpired)
			}
			continue
		}
		if results[i].Err != nil {
			t.Fatalf("job %d (%s) failed: %v", i, jobs[i].Name, results[i].Err)
		}
		if results[i].Record.Fingerprint != jobs[i].Fingerprint {
			t.Fatalf("job %d record: %+v", i, results[i].Record)
		}
		if want := float64(1000 + 13*i); results[i].Record.Cycles != want {
			t.Fatalf("job %d cycles %v, want %v", i, results[i].Record.Cycles, want)
		}
	}

	// The coordinator's store holds each successful record exactly once
	// (names are unique per file — Validate enforces it on load).
	for _, g := range []string{"e2e1", "e2e2"} {
		f, err := sweep.LoadFile(filepath.Join(coordDir, sweep.FileName(g)))
		if err != nil {
			t.Fatalf("coordinator store %s: %v", g, err)
		}
		seen := map[string]int{}
		for _, r := range f.Records {
			seen[r.Name]++
		}
		for i := range jobs {
			if jobs[i].Group != g || i == failIdx {
				continue
			}
			if seen[jobs[i].Name] != 1 {
				t.Errorf("coordinator store %s: record %s appears %d times, want exactly 1",
					g, jobs[i].Name, seen[jobs[i].Name])
			}
		}
	}

	// The client's flushed files are byte-identical to the serial run: where
	// a record was computed cannot show in the bytes.
	if err := fleetStore.Flush(); err != nil {
		t.Fatal(err)
	}
	assertStoresByteIdentical(t, serialStore.Dir(), fleetStore.Dir(), []string{"e2e1", "e2e2"})

	// And the serial results agree with the fleet's on every success.
	for i := range jobs {
		if i == failIdx {
			continue
		}
		if !reflect.DeepEqual(serialResults[i].Record, results[i].Record) {
			t.Errorf("job %d: serial %+v != fleet %+v", i, serialResults[i].Record, results[i].Record)
		}
	}
}
