package driver_test

import (
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
	"skipit/internal/analysis/callsum"
	"skipit/internal/analysis/driver"
)

// leakFact is a minimal object fact: it marks a function so that importers
// can detect calls to it, which makes cross-package fact flow observable.
type leakFact struct{ Note string }

func (*leakFact) AFact() {}

func (f *leakFact) String() string { return "leak(" + f.Note + ")" }

// leakAnalyzer exports a leakFact on every function whose name starts with
// Leak (reporting at the declaration) and reports every static call to a
// function carrying the fact. runs counts invocations so the test can prove
// a warm cache replays without running the analyzer at all.
func leakAnalyzer(runs *int) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:      "cacheprobe",
		Doc:       "test analyzer: marks Leak* functions and flags their callers",
		FactTypes: []analysis.Fact{new(leakFact)},
		Run: func(pass *analysis.Pass) (interface{}, error) {
			*runs++
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.FuncDecl:
						if strings.HasPrefix(n.Name.Name, "Leak") {
							if obj, ok := pass.TypesInfo.Defs[n.Name].(*types.Func); ok {
								pass.ExportObjectFact(obj, &leakFact{Note: n.Name.Name})
								pass.Report(analysis.Diagnostic{Pos: n.Pos(), Message: "leaky decl " + n.Name.Name})
							}
						}
					case *ast.CallExpr:
						if callee := callsum.StaticCallee(pass.TypesInfo, n); callee != nil {
							var lf leakFact
							if pass.ImportObjectFact(callee, &lf) {
								pass.Report(analysis.Diagnostic{Pos: n.Pos(), Message: "call to leaky " + callee.Name()})
							}
						}
					}
					return true
				})
			}
			return nil, nil
		},
	}
}

// writeModule lays out a two-package module: b calls a.Leak, so analyzing b
// needs a's object fact.
func writeModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module cachetest\n\ngo 1.22\n",
		"a/a.go": "package a\n\nfunc Leak() {}\n\nfunc Clean() {}\n",
		"b/b.go": "package b\n\nimport \"cachetest/a\"\n\nfunc Use() { a.Leak() }\n",
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runOnce loads the module fresh (a new typechecked universe, as a new
// process would have) and runs the analyzer through the cache.
func runOnce(t *testing.T, dir string, an *analysis.Analyzer, cache *driver.Cache) []string {
	t.Helper()
	l := &driver.Loader{Dir: dir}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := driver.RunCached(pkgs, l.Fset, []*analysis.Analyzer{an}, cache)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Posn.String() + ": " + d.Message + " (" + d.Analyzer + ")"
	}
	return out
}

func TestCacheReplaysWithoutRerunning(t *testing.T) {
	dir := writeModule(t)
	cache := &driver.Cache{Dir: filepath.Join(dir, "cache")}
	runs := 0
	an := leakAnalyzer(&runs)

	cold := runOnce(t, dir, an, cache)
	if runs != 2 {
		t.Fatalf("cold run: analyzer ran %d times, want 2 (packages a and b)", runs)
	}
	if len(cold) != 2 {
		t.Fatalf("cold run: got %d diagnostics, want 2 (decl + call):\n%s", len(cold), strings.Join(cold, "\n"))
	}
	wantCall := false
	for _, d := range cold {
		if strings.Contains(d, "call to leaky Leak") {
			wantCall = true
		}
	}
	if !wantCall {
		t.Fatalf("cold run missing cross-package finding:\n%s", strings.Join(cold, "\n"))
	}

	runs = 0
	warm := runOnce(t, dir, an, cache)
	if runs != 0 {
		t.Errorf("warm run: analyzer ran %d times, want 0 (full replay)", runs)
	}
	if strings.Join(warm, "\n") != strings.Join(cold, "\n") {
		t.Errorf("warm diagnostics differ from cold:\ncold:\n%s\nwarm:\n%s",
			strings.Join(cold, "\n"), strings.Join(warm, "\n"))
	}
}

func TestCacheInvalidatesDependents(t *testing.T) {
	dir := writeModule(t)
	cache := &driver.Cache{Dir: filepath.Join(dir, "cache")}
	runs := 0
	an := leakAnalyzer(&runs)

	runOnce(t, dir, an, cache) // populate

	// Editing a must re-key a AND its importer b: b's findings depend on
	// a's facts, and the dependency closure in the key is what carries that.
	src := filepath.Join(dir, "a", "a.go")
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(src, append(data, []byte("\nfunc LeakMore() {}\n")...), 0o666); err != nil {
		t.Fatal(err)
	}

	runs = 0
	edited := runOnce(t, dir, an, cache)
	if runs != 2 {
		t.Errorf("after edit: analyzer ran %d times, want 2 (a and b both re-keyed)", runs)
	}
	found := false
	for _, d := range edited {
		if strings.Contains(d, "leaky decl LeakMore") {
			found = true
		}
	}
	if !found {
		t.Errorf("after edit: missing finding for new decl:\n%s", strings.Join(edited, "\n"))
	}

	// And the edited tree caches too: a third run is a full replay.
	runs = 0
	rewarm := runOnce(t, dir, an, cache)
	if runs != 0 {
		t.Errorf("re-warm run: analyzer ran %d times, want 0", runs)
	}
	if strings.Join(rewarm, "\n") != strings.Join(edited, "\n") {
		t.Errorf("re-warm diagnostics differ from post-edit run")
	}
}

// TestCacheRestoresFactsForLiveDependents is the mixed case: a hits the
// cache while b misses (its own file changed), so b's live analysis must
// import a's facts from the restored store, not from a live run.
func TestCacheRestoresFactsForLiveDependents(t *testing.T) {
	dir := writeModule(t)
	cache := &driver.Cache{Dir: filepath.Join(dir, "cache")}
	runs := 0
	an := leakAnalyzer(&runs)

	runOnce(t, dir, an, cache) // populate

	src := filepath.Join(dir, "b", "b.go")
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(src, append(data, []byte("\nfunc Use2() { a.Leak() }\n")...), 0o666); err != nil {
		t.Fatal(err)
	}

	runs = 0
	mixed := runOnce(t, dir, an, cache)
	if runs != 1 {
		t.Errorf("mixed run: analyzer ran %d times, want 1 (only b)", runs)
	}
	calls := 0
	for _, d := range mixed {
		if strings.Contains(d, "call to leaky Leak") {
			calls++
		}
	}
	if calls != 2 {
		t.Errorf("mixed run: got %d call findings, want 2 — b's live analysis must see a's cached fact:\n%s",
			calls, strings.Join(mixed, "\n"))
	}
}
