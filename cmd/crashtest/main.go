// Command crashtest is a randomized crash-consistency checker for the §4
// writeback/fence memory semantics: it runs random store/CBO.X/fence
// programs on the cycle simulator, injects a power failure at a random
// cycle, and verifies that the persistence domain (NVMM) holds a state the
// semantics allow —
//
//   - a store whose line was written back by a CBO.X ordered before a fence
//     that completed before the crash MUST be durable (Fig. 5c);
//   - any address may additionally hold the value of a later store (cache
//     evictions persist data opportunistically), but never only an older
//     one once a newer value was guaranteed.
//
// Usage:
//
//	crashtest [-runs N] [-seed S] [-cores N] [-timeout-cycles N] [-v]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"

	"skipit/internal/boom"
	"skipit/internal/isa"
	"skipit/internal/sim"
)

func main() {
	runs := flag.Int("runs", 200, "number of randomized crash scenarios")
	seed := flag.Int64("seed", 1, "random seed")
	cores := flag.Int("cores", 1, "simulated cores")
	timeoutCycles := flag.Int64("timeout-cycles", 10_000,
		"forward-progress watchdog limit per scenario (0 disables)")
	verbose := flag.Bool("v", false, "print each scenario")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	for run := 0; run < *runs; run++ {
		if err := oneRun(rng, *cores, *timeoutCycles, *verbose); err != nil {
			log.Fatalf("run %d FAILED: %v", run, err)
		}
	}
	fmt.Printf("ok: %d randomized crash scenarios, no durability violations\n", *runs)
}

// oneRun builds a random program per core (single word per line, disjoint
// address spaces per core), runs it to a random crash point, and validates
// NVMM contents.
func oneRun(rng *rand.Rand, cores int, timeoutCycles int64, verbose bool) error {
	s := sim.New(sim.DefaultConfig(cores))
	if timeoutCycles > 0 {
		s.ArmWatchdog(timeoutCycles)
	}
	baseAddrs := []uint64{0x1000, 0x2000, 0x3000, 0x11000}
	progs := make([]*isa.Program, cores)
	for c := 0; c < cores; c++ {
		b := isa.NewBuilder()
		n := 10 + rng.Intn(30)
		for i := 0; i < n; i++ {
			a := baseAddrs[rng.Intn(len(baseAddrs))] + uint64(c)*0x100000
			switch rng.Intn(5) {
			case 0, 1:
				b.Store(a, uint64(rng.Intn(100))+1)
			case 2:
				b.Cbo(a, rng.Intn(2) == 0)
			case 3:
				b.Fence()
			case 4:
				b.Load(a)
			}
		}
		b.Fence()
		progs[c] = b.Build()
		s.Cores[c].SetProgram(progs[c])
	}

	crashAt := s.Now() + int64(50+rng.Intn(2000))
	for s.Now() < crashAt {
		// StepGuarded converts both watchdog trips and simulator panics
		// into a structured HangReport instead of a hang or a crash.
		if err := s.StepGuarded(); err != nil {
			var he *sim.HangError
			if errors.As(err, &he) {
				return fmt.Errorf("%w\n%s", err, he.Report.JSON())
			}
			return err
		}
		allDone := true
		for _, c := range s.Cores {
			if !c.Done() {
				allDone = false
				break
			}
		}
		if allDone && s.Quiescent() {
			break
		}
	}
	// Snapshot per-instruction timings before the crash wipes core state.
	snapshots := make([][]boom.Timing, cores)
	for c := 0; c < cores; c++ {
		snapshots[c] = append([]boom.Timing(nil), s.Cores[c].Timings()...)
	}
	s.Crash(rng.Intn(2) == 0)

	for c := 0; c < cores; c++ {
		if err := checkCore(s, progs[c], snapshots[c], c, verbose); err != nil {
			return err
		}
	}
	return nil
}

// checkCore computes, per address, which values the §4 semantics permit in
// NVMM after the crash and verifies the actual contents.
func checkCore(s *sim.System, p *isa.Program, timings []boom.Timing, core int, verbose bool) error {
	byAddr := map[uint64][]int{}
	for i, in := range p.Instrs {
		if in.Op == isa.OpStore {
			byAddr[in.Addr] = append(byAddr[in.Addr], i)
		}
	}
	for addr, stores := range byAddr {
		guaranteed := -1
		for _, si := range stores {
			if guaranteedDurable(p, timings, si, addr) {
				guaranteed = si
			}
		}
		got := s.Mem.PeekUint64(addr)
		allowed := map[uint64]bool{}
		if guaranteed < 0 {
			allowed[0] = true // never written back: zero is fine
		}
		// Any store at or after the guaranteed one may be the durable
		// value (evictions and later flushes persist opportunistically).
		for _, si := range stores {
			if si >= guaranteed {
				allowed[p.Instrs[si].Data] = true
			}
		}
		if !allowed[got] {
			return fmt.Errorf("core %d addr %#x: NVMM holds %d; guaranteed store idx %d, allowed %v",
				core, addr, got, guaranteed, allowed)
		}
		if verbose {
			fmt.Printf("core %d addr %#x: NVMM=%d ok (guaranteed idx %d)\n", core, addr, got, guaranteed)
		}
	}
	return nil
}

// guaranteedDurable reports whether store si to addr is covered by the
// Fig. 5(c) chain: a CBO.X to its line later in program order that
// completed, followed by a fence that completed before the crash.
func guaranteedDurable(p *isa.Program, timings []boom.Timing, si int, addr uint64) bool {
	line := addr &^ 63
	for ci := si + 1; ci < len(p.Instrs); ci++ {
		in := p.Instrs[ci]
		if (in.Op == isa.OpCboClean || in.Op == isa.OpCboFlush) && in.Addr&^63 == line {
			if timings[ci].CompletedAt < 0 {
				continue
			}
			for fi := ci + 1; fi < len(p.Instrs); fi++ {
				if p.Instrs[fi].Op == isa.OpFence && timings[fi].CompletedAt >= 0 {
					return true
				}
			}
		}
	}
	return false
}
