// Package persist implements the software side of the paper's §7.4 study:
// the four flush-elision schemes compared against Skip It — plain (no
// elision), FliT with adjacent counters, FliT with a hash-table of counters
// [Wei et al., PPoPP'22], and link-and-persist [David et al., ATC'18] — plus
// the three persistence algorithms they are evaluated under (automatic,
// NVTraverse, manual).
//
// Every scheme is expressed over the memsim hierarchy, so its costs are the
// cache traffic it really generates: FliT's counters occupy cache lines,
// link-and-persist pays a masking instruction on every load, and Skip It
// pays nothing in software but one pipeline traversal per (possibly dropped)
// CBO.X.
package persist

import (
	"fmt"
	"sync"
	"sync/atomic"

	"skipit/internal/memsim"
)

// Policy is one flush-elision scheme. Data structures never call memsim
// directly for persistent memory; they go through a Policy so each scheme
// charges its true overhead.
type Policy interface {
	Name() string
	// Load reads the 8-byte word at addr.
	Load(tid int, addr uint64)
	// Store writes the 8-byte word at addr.
	Store(tid int, addr uint64)
	// Flush requests a writeback of addr's line; the scheme may elide it
	// when it can prove the line is already persisted.
	Flush(tid int, addr uint64)
	// Fence orders previously issued writebacks.
	Fence(tid int)
	// NodePad returns the extra bytes per allocated object the scheme
	// requires (FliT adjacent doubles object footprints).
	NodePad() uint64
}

// --- plain: every flush goes out, no bookkeeping ---

// Plain issues every requested writeback; it is the paper's "plain"
// baseline.
type Plain struct {
	H *memsim.Hierarchy
	// SkipItHW selects the hardware: Plain over Skip It hardware is the
	// "Skip It" configuration of Figures 14–16 (zero software overhead;
	// the L1 drops redundant writebacks).
	SkipItHW bool
	// Clean selects CBO.CLEAN (the §7.4 data-structure benchmarks use
	// CBO.FLUSH; see EXPERIMENTS.md).
	Clean bool
}

// Name identifies the configuration in benchmark output.
func (p *Plain) Name() string {
	if p.SkipItHW {
		return "skipit"
	}
	return "plain"
}

func (p *Plain) Load(tid int, addr uint64)  { p.H.Access(tid, addr, false) }
func (p *Plain) Store(tid int, addr uint64) { p.H.Access(tid, addr, true) }
func (p *Plain) Flush(tid int, addr uint64) { p.H.Flush(tid, addr, p.Clean, p.SkipItHW) }
func (p *Plain) Fence(tid int)              { p.H.Fence(tid) }
func (p *Plain) NodePad() uint64            { return 0 }

// NewPlain returns the no-elision baseline.
func NewPlain(h *memsim.Hierarchy, clean bool) *Plain {
	return &Plain{H: h, Clean: clean}
}

// NewSkipIt returns plain software over Skip It hardware.
func NewSkipIt(h *memsim.Hierarchy, clean bool) *Plain {
	return &Plain{H: h, SkipItHW: true, Clean: clean}
}

// --- FliT ---

// FliT tracks a counter of in-flight (unflushed) stores per location. A
// persistent store increments the counter, writes, flushes eagerly, and
// decrements; a flush request from anyone else is elided when the counter is
// zero, because the storing thread already persisted the data. Adjacent mode
// places each counter next to its datum (doubling object footprints); hash
// mode places counters in a fixed-size table (collisions cause spurious
// flushes but never missed ones, since counters only reach zero when every
// colliding store has flushed).
type FliT struct {
	H *memsim.Hierarchy
	// Adjacent selects per-object counters; otherwise the hash table.
	Adjacent bool
	// TableEntries sizes the counter hash table (Fig. 16 sweeps this).
	TableEntries uint64
	// TableBase is the simulated address of the counter table.
	TableBase uint64
	Clean     bool

	counters []atomic.Int64
}

// NewFliT builds a FliT policy. For hash mode, tableEntries counters live at
// tableBase in the simulated address space.
func NewFliT(h *memsim.Hierarchy, adjacent bool, tableEntries uint64, tableBase uint64, clean bool) *FliT {
	if !adjacent && tableEntries == 0 {
		panic("persist: FliT hash table needs entries")
	}
	n := tableEntries
	if adjacent {
		// Adjacent counters are addressed by data address; the backing
		// slice is still a table, sized generously and indexed by a
		// collision-free-enough hash of the line address.
		n = 1 << 22
	}
	return &FliT{
		H:            h,
		Adjacent:     adjacent,
		TableEntries: tableEntries,
		TableBase:    tableBase,
		Clean:        clean,
		counters:     make([]atomic.Int64, n),
	}
}

// Name identifies the configuration in benchmark output.
func (f *FliT) Name() string {
	if f.Adjacent {
		return "flit-adjacent"
	}
	return fmt.Sprintf("flit-hash[%d]", f.TableEntries)
}

func (f *FliT) slot(addr uint64) (idx uint64, counterAddr uint64) {
	line := addr / 64
	if f.Adjacent {
		// The counter sits in the object's padding: same cache set
		// behavior as the datum, modeled as a shadow word in a
		// parallel region so the data line itself stays clean after a
		// flush.
		return (line * 0x9E3779B97F4A7C15) >> 42, addr ^ (1 << 40)
	}
	idx = (line * 0x9E3779B97F4A7C15) % f.TableEntries
	return idx, f.TableBase + idx*8
}

// checkCycles is the arithmetic cost of locating a counter: hash mode
// computes a multiplicative hash and table index per check; adjacent mode
// only offsets a pointer.
func (f *FliT) checkCycles() float64 {
	if f.Adjacent {
		return 1
	}
	return 3
}

func (f *FliT) Load(tid int, addr uint64) { f.H.Access(tid, addr, false) }

func (f *FliT) Store(tid int, addr uint64) {
	idx, caddr := f.slot(addr)
	f.H.AddCycles(tid, f.checkCycles())
	// counter++ (a write to the counter's line), data store, eager
	// flush, counter--. The second counter touch hits in L1.
	f.counters[idx].Add(1)
	f.H.Access(tid, caddr, true)
	f.H.Access(tid, addr, true)
	f.H.Flush(tid, addr, f.Clean, false)
	f.counters[idx].Add(-1)
	f.H.Access(tid, caddr, true)
}

func (f *FliT) Flush(tid int, addr uint64) {
	idx, caddr := f.slot(addr)
	f.H.AddCycles(tid, f.checkCycles())
	// Read the counter (real cache traffic); flush only if a store is in
	// flight.
	f.H.Access(tid, caddr, false)
	if f.counters[idx].Load() != 0 {
		f.H.Flush(tid, addr, f.Clean, false)
	}
}

func (f *FliT) Fence(tid int) { f.H.Fence(tid) }

// NodePad doubles object footprints in adjacent mode.
func (f *FliT) NodePad() uint64 {
	if f.Adjacent {
		return 32
	}
	return 0
}

// --- link-and-persist ---

// LinkAndPersist steals bit 63 of each data word as a "not yet persisted"
// mark [David et al., ATC'18]: a store sets the mark for free (same word), a
// flush checks it (the word is typically already loaded — one masking cycle)
// and elides the writeback when clear, and every load pays a masking cycle
// to strip the mark. It is inapplicable to structures that use high pointer
// bits for their own logic (the BST, §7.4).
type LinkAndPersist struct {
	H     *memsim.Hierarchy
	Clean bool

	marks markSet
}

// NewLinkAndPersist builds the policy.
func NewLinkAndPersist(h *memsim.Hierarchy, clean bool) *LinkAndPersist {
	return &LinkAndPersist{H: h, Clean: clean, marks: newMarkSet()}
}

// Name identifies the configuration in benchmark output.
func (l *LinkAndPersist) Name() string { return "link-and-persist" }

// MaskCycles is the per-load cost of stripping the stolen bit.
const MaskCycles = 1

func (l *LinkAndPersist) Load(tid int, addr uint64) {
	l.H.Access(tid, addr, false)
	l.H.AddCycles(tid, MaskCycles)
}

func (l *LinkAndPersist) Store(tid int, addr uint64) {
	// The mark rides in the stored word: no extra memory traffic.
	l.marks.set(addr)
	l.H.Access(tid, addr, true)
}

func (l *LinkAndPersist) Flush(tid int, addr uint64) {
	// The caller has the word in hand; testing the bit costs a cycle.
	l.H.AddCycles(tid, MaskCycles)
	if !l.marks.testAndClear(addr) {
		return
	}
	l.H.Flush(tid, addr, l.Clean, false)
	// Clearing the mark is a CAS on the word. Only the stolen bit
	// changes — it is not persistent data — so the line is not re-marked
	// dirty in the model; the CAS costs a hit-latency touch.
	l.H.Access(tid, addr, false)
	l.H.AddCycles(tid, 2)
}

func (l *LinkAndPersist) Fence(tid int) { l.H.Fence(tid) }

// NodePad is zero: the mark lives inside existing words.
func (l *LinkAndPersist) NodePad() uint64 { return 0 }

// markSet is a sharded concurrent set of word addresses with pending marks.
type markSet struct {
	shards []markShard
}

type markShard struct {
	mu sync.Mutex
	m  map[uint64]struct{}
}

func newMarkSet() markSet {
	s := markSet{shards: make([]markShard, 64)}
	for i := range s.shards {
		s.shards[i].m = make(map[uint64]struct{})
	}
	return s
}

func (s *markSet) shard(addr uint64) *markShard {
	return &s.shards[(addr>>3)%uint64(len(s.shards))]
}

func (s *markSet) set(addr uint64) {
	sh := s.shard(addr)
	sh.mu.Lock()
	sh.m[addr] = struct{}{}
	sh.mu.Unlock()
}

func (s *markSet) testAndClear(addr uint64) bool {
	sh := s.shard(addr)
	sh.mu.Lock()
	_, ok := sh.m[addr]
	if ok {
		delete(sh.m, addr)
	}
	sh.mu.Unlock()
	return ok
}
