module skipit

go 1.22

require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e

// Vendored subset of x/tools (go/analysis and friends), copied from the Go
// toolchain's cmd/vendor tree; see third_party/golang.org/x/tools/README.md.
replace golang.org/x/tools => ./third_party/golang.org/x/tools
