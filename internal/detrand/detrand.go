// Package detrand is the shared seed-splitting discipline for every
// deterministic-randomness consumer in the repository: the chaos fuzzer, the
// TileLink agent harness (tlctest) and the sweep fingerprint jitter tests all
// derive their streams through these helpers, so seed semantics cannot drift
// between tools.
//
// The discipline is simple and deliberate:
//
//   - New(seed) is exactly rand.New(rand.NewSource(seed)). Every committed
//     repro artifact (.chaos.json, .tlc.json) encodes seeds whose expansion
//     depends on this mapping staying fixed; do not change it.
//   - Child streams are derived by drawing a fresh seed from the parent with
//     SplitSeed and expanding it with New. One top-level seed then pins an
//     arbitrary tree of independent streams, and a consumer of one child
//     cannot perturb a sibling by drawing a different number of values.
//
// Everything here is pure: no global state, no wall clock, no math/rand
// package-level functions.
package detrand

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
)

// New returns a deterministic PRNG seeded with seed. The mapping from seed to
// stream is part of the repro-artifact format and must never change.
func New(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// SplitSeed draws a child seed from the parent stream. Splitting consumes
// exactly one value, so the parent's subsequent draws are unaffected by how
// the child stream is used.
func SplitSeed(r *rand.Rand) int64 { return r.Int63() }

// Split derives an independent child stream from the parent:
// New(SplitSeed(r)).
func Split(r *rand.Rand) *rand.Rand { return New(SplitSeed(r)) }

// Mix folds string keys into a parent seed, giving every (seed, keys...)
// combination its own stable child seed without consuming parent stream
// values. Unlike SplitSeed, which allocates child streams by draw order, Mix
// addresses them by name: consumers that need a stream for a keyed entity —
// the sweepd retry-backoff jitter for (job, attempt), the fault transport's
// per-call schedule — get the same stream for the same key no matter how
// many siblings were created before it or on which goroutine. The mapping is
// FNV-1a over the seed bytes and NUL-separated keys and is part of the
// deterministic-replay contract; do not change it.
func Mix(seed int64, keys ...string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	for _, k := range keys {
		h.Write([]byte{0})
		h.Write([]byte(k))
	}
	return int64(h.Sum64())
}

// Keyed is the stream form of Mix: New(Mix(seed, keys...)).
func Keyed(seed int64, keys ...string) *rand.Rand { return New(Mix(seed, keys...)) }
