// Package metrics is the simulator's unified telemetry layer, modeled on the
// RISC-V hardware performance monitor (HPM) counters the paper reads with
// RDCYCLE/RDINSTRET on its FPGA platforms (§7.1). Components register typed
// instruments — monotonic counters, gauges, and fixed-bucket cycle-latency
// histograms — under their instance name ("l1[0]", "flush[1]", "l2", "mem"),
// and harnesses read them back individually or as one JSON-serializable
// Snapshot.
//
// All instruments are safe for concurrent use: counters and gauges are single
// atomic words, histograms take a short mutex per observation. The cycle
// simulator itself is single-goroutine, but benchmark harnesses read counters
// from other goroutines while a simulation runs, and trace.Ring already
// promises concurrency safety, so the registry does too.
package metrics

import (
	"fmt"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// Instrument keys must be mechanically convertible to valid Prometheus
// exposition-format metric names (see WritePrometheus): lower_snake
// components with an optional numeric instance index, and dot-separated
// lower_snake metric names. These are the same rules the skipit-vet
// metricname analyzer enforces statically on call sites with literal
// arguments; the runtime check below catches computed names the analyzer
// cannot see.
var (
	componentRE = regexp.MustCompile(`^[a-z0-9_]+(\[[0-9]+\])?$`)
	nameRE      = regexp.MustCompile(`^[a-z0-9_]+(\.[a-z0-9_]+)*$`)
)

// validateKey panics on an instrument key that could not be exposed as a
// Prometheus metric. It runs only on the create path of the get-or-create
// methods, so steady-state lookups never pay for the regexes.
func validateKey(kind, component, name string) {
	if !componentRE.MatchString(component) {
		panic(fmt.Sprintf("metrics: %s component %q invalid (want lower_snake with optional [index], e.g. \"l1[0]\")", kind, component))
	}
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("metrics: %s name %q invalid (want dot-separated lower_snake, e.g. \"writebacks\" or \"inflight.depth\")", kind, name))
	}
}

// Counter is a monotonically increasing event count (an HPM event counter).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous level — a queue depth, an occupancy — that moves
// both ways.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the level by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket latency distribution. Bounds are inclusive
// upper bounds in ascending order; one implicit overflow bucket catches
// everything above the last bound. Observations are cycle counts.
type Histogram struct {
	mu     sync.Mutex
	bounds []uint64
	counts []uint64 // len(bounds)+1, last is overflow
	count  uint64
	sum    uint64
	min    uint64
	max    uint64
}

// DefaultCycleBounds is a power-of-two bucket layout spanning L1-hit to
// DRAM-roundtrip latencies, suitable for flush-latency histograms.
var DefaultCycleBounds = []uint64{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}

func newHistogram(bounds []uint64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultCycleBounds
	}
	b := append([]uint64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.mu.Lock()
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v }) //skipit:ignore hotalloc sort.Search closure does not escape; the compiler keeps it on the stack
	h.counts[i]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the arithmetic mean of all observations (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper-bound estimate of the p-quantile (p in [0,1]):
// the smallest bucket bound b such that at least p of the observations are
// <= b. Observations in the overflow bucket report the observed maximum.
func (h *Histogram) Quantile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(p)
}

func (h *Histogram) quantileLocked(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := p * float64(h.count)
	cum := uint64(0)
	for i, n := range h.counts {
		cum += n
		if float64(cum) >= rank {
			if i < len(h.bounds) {
				return float64(h.bounds[i])
			}
			return float64(h.max)
		}
	}
	return float64(h.max)
}

// HistogramSnapshot is the JSON view of one histogram.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
	Mean    float64  `json:"mean"`
	P50     float64  `json:"p50"`
	P95     float64  `json:"p95"`
	P99     float64  `json:"p99"`
	Bounds  []uint64 `json:"bounds"`
	Buckets []uint64 `json:"buckets"` // len(bounds)+1; last is overflow
}

// Snapshot returns a consistent copy of the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Count:   h.count,
		Sum:     h.sum,
		Min:     h.min,
		Max:     h.max,
		P50:     h.quantileLocked(0.50),
		P95:     h.quantileLocked(0.95),
		P99:     h.quantileLocked(0.99),
		Bounds:  append([]uint64(nil), h.bounds...),
		Buckets: append([]uint64(nil), h.counts...),
	}
	if h.count > 0 {
		s.Mean = float64(h.sum) / float64(h.count)
	}
	return s
}

// Key joins a component instance name and a metric name into the registry key
// ("l1[0]" + "loads" -> "l1[0].loads").
func Key(component, name string) string { return component + "." + name }

// Registry holds every instrument of one simulated system, keyed by
// "component.metric". Instrument methods are get-or-create: the first caller
// allocates, later callers (and readers) share the same instrument.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter component.name, creating it on first use.
func (r *Registry) Counter(component, name string) *Counter {
	k := Key(component, name)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[k]
	if !ok {
		validateKey("counter", component, name)
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the gauge component.name, creating it on first use.
func (r *Registry) Gauge(component, name string) *Gauge {
	k := Key(component, name)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[k]
	if !ok {
		validateKey("gauge", component, name)
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns the histogram component.name, creating it with the given
// bucket bounds on first use (nil bounds select DefaultCycleBounds). Bounds
// passed by later callers are ignored; the first registration wins.
func (r *Registry) Histogram(component, name string, bounds []uint64) *Histogram {
	k := Key(component, name)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[k]
	if !ok {
		validateKey("histogram", component, name)
		h = newHistogram(bounds)
		r.hists[k] = h
	}
	return h
}

// CounterValue reads a counter by full key, returning 0 when absent.
func (r *Registry) CounterValue(key string) uint64 {
	r.mu.Lock()
	c := r.counters[key]
	r.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.Value()
}

// CounterKeys returns every registered counter key, sorted.
func (r *Registry) CounterKeys() []string {
	r.mu.Lock()
	keys := make([]string, 0, len(r.counters))
	for k := range r.counters {
		keys = append(keys, k)
	}
	r.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Snapshot captures every instrument's current value at the given cycle.
// Derived and Series start empty; System-level code fills them in.
func (r *Registry) Snapshot(cycle int64) Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Cycle:      cycle,
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
		Derived:    make(map[string]float64),
	}
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range r.hists {
		s.Histograms[k] = h.Snapshot()
	}
	return s
}

// Snapshot is the aggregated, JSON-serializable report of one system's
// telemetry: raw instrument values plus derived metrics and sampled time
// series.
type Snapshot struct {
	Cycle      int64                        `json:"cycle"`
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Derived    map[string]float64           `json:"derived,omitempty"`
	Series     []SeriesSnapshot             `json:"series,omitempty"`
}
