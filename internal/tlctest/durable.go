package tlctest

import "skipit/internal/mem"

// DurableQueue collects §5.5 durability checks an agent could not perform
// inline: on a parallel fabric the DRAM store belongs to the hub shard, so
// peeking it from an agent's tick would race (and could observe a cycle the
// serial run never peeked at). Agents capture the scoreboard's durability
// floor at the ack cycle and queue (cycle, agent, addr, floor); the episode
// driver resolves the queue at each window barrier.
type DurableQueue struct {
	pending []durableCheck
}

type durableCheck struct {
	cycle   int64
	agent   int
	addr    uint64
	mark    int
	npushes int
}

// Defer captures the scoreboard state the inline check would have read at
// this instant (Scoreboard.DurableFloor — the floor is consumed exactly like
// CheckDurable consumes it, so later same-window flush issues on the block
// cannot move it) and queues the value comparison. Agents tick in fixed
// order inside their shard, so queue order is (cycle, agent-tick order) —
// the order serial stepping would have performed the checks in.
func (q *DurableQueue) Defer(sb *Scoreboard, now int64, agent int, addr uint64) {
	if sb.Violation() != nil {
		return
	}
	mark, npushes := sb.DurableFloor(agent, addr)
	q.pending = append(q.pending, durableCheck{
		cycle: now, agent: agent, addr: addr, mark: mark, npushes: npushes,
	})
}

// Resolve performs the queued checks against the scoreboard. peek reads the
// current DRAM value; journal holds the pre-images of every DRAM write the
// just-finished window retired (mem.DrainWriteJournal), in retirement order.
// A write retired after a check's cycle hides the value the serial run saw,
// so the earliest such write's pre-image is the exact value at the check
// cycle; with no later write, the current value is.
func (q *DurableQueue) Resolve(sb *Scoreboard, peek func(uint64) uint64, journal []mem.WriteLog, lineBytes uint64) {
	for _, c := range q.pending {
		got := peek(c.addr)
		base := c.addr &^ (lineBytes - 1)
		for _, w := range journal {
			if w.Addr == base && w.Cycle > c.cycle {
				off := c.addr & (lineBytes - 1)
				got = 0
				for i := uint64(0); i < 8; i++ {
					got |= uint64(w.Old[off+i]) << (8 * i)
				}
				break
			}
		}
		sb.CheckDurableAt(c.cycle, c.agent, c.addr, got, c.mark, c.npushes)
	}
	q.pending = q.pending[:0]
}
