package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file renders a Snapshot in the Prometheus text exposition format
// (version 0.0.4), for the introspection server's /metrics endpoint.
//
// Registry keys are mechanically rewritten into valid Prometheus names —
// guaranteed to succeed because validateKey enforces the input grammar at
// registration time:
//
//	"l1[0].writebacks"  ->  skipit_l1_writebacks{instance="0"}
//	"mem.inflight.depth" -> skipit_mem_inflight_depth
//
// Instance indices become an "instance" label so one metric family covers
// all cores; dots become underscores; everything gets a "skipit_" prefix so
// the simulator's metrics can't collide with a scraper's own.

// promSample is one rendered sample line-in-waiting.
type promSample struct {
	labels string // rendered label set, "" or `{instance="0"}`
	value  string
}

// promKey splits a registry key into its Prometheus family name and the
// instance label, if any.
func promKey(key string) (family, labels string) {
	family = key
	var instance string
	if open := strings.IndexByte(key, '['); open >= 0 {
		if close := strings.IndexByte(key[open:], ']'); close >= 0 {
			instance = key[open+1 : open+close]
			family = key[:open] + key[open+close+1:]
		}
	}
	family = "skipit_" + strings.ReplaceAll(family, ".", "_")
	if instance != "" {
		labels = fmt.Sprintf("{instance=%q}", instance)
	}
	return family, labels
}

// writeFamilies renders one TYPE block per family, families sorted by name
// and samples sorted by label set, so the output is deterministic.
func writeFamilies(w io.Writer, typ string, families map[string][]promSample) error {
	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		samples := families[name]
		sort.Slice(samples, func(i, j int) bool { return samples[i].labels < samples[j].labels })
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ); err != nil {
			return err
		}
		for _, s := range samples {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", name, s.labels, s.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format. Counters, gauges, and histograms keep their registry identity (with
// instance indices as labels); derived ratios are exposed as gauges under
// skipit_derived_*; the snapshot cycle is exposed as skipit_cycle.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# TYPE skipit_cycle gauge\nskipit_cycle %d\n", s.Cycle); err != nil {
		return err
	}

	counters := make(map[string][]promSample)
	for key, v := range s.Counters {
		name, labels := promKey(key)
		counters[name] = append(counters[name], promSample{labels: labels, value: fmt.Sprintf("%d", v)})
	}
	if err := writeFamilies(w, "counter", counters); err != nil {
		return err
	}

	gauges := make(map[string][]promSample)
	for key, v := range s.Gauges {
		name, labels := promKey(key)
		gauges[name] = append(gauges[name], promSample{labels: labels, value: fmt.Sprintf("%d", v)})
	}
	for key, v := range s.Derived {
		gauges["skipit_derived_"+strings.ReplaceAll(key, ".", "_")] = append(
			gauges["skipit_derived_"+strings.ReplaceAll(key, ".", "_")],
			promSample{value: fmt.Sprintf("%g", v)})
	}
	if err := writeFamilies(w, "gauge", gauges); err != nil {
		return err
	}

	// Histograms expand into the _bucket/_sum/_count convention with
	// cumulative le labels.
	hists := make(map[string][]HistogramSnapshot)
	histLabels := make(map[string][]string)
	for key, h := range s.Histograms {
		name, labels := promKey(key)
		hists[name] = append(hists[name], h)
		histLabels[name] = append(histLabels[name], labels)
	}
	names := make([]string, 0, len(hists))
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		order := make([]int, len(hists[name]))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return histLabels[name][order[a]] < histLabels[name][order[b]] })
		for _, i := range order {
			h, labels := hists[name][i], histLabels[name][i]
			cum := uint64(0)
			for bi, bound := range h.Bounds {
				cum += h.Buckets[bi]
				if err := writeBucket(w, name, labels, fmt.Sprintf("%d", bound), cum); err != nil {
					return err
				}
			}
			if len(h.Buckets) > len(h.Bounds) {
				cum += h.Buckets[len(h.Bounds)]
			}
			if err := writeBucket(w, name, labels, "+Inf", cum); err != nil {
				return err
			}
			inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
			sumLabels, countLabels := "", ""
			if inner != "" {
				sumLabels = "{" + inner + "}"
				countLabels = sumLabels
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %d\n%s_count%s %d\n",
				name, sumLabels, h.Sum, name, countLabels, h.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeBucket renders one cumulative histogram bucket, merging the le label
// into any existing label set.
func writeBucket(w io.Writer, name, labels, le string, cum uint64) error {
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	if inner != "" {
		inner += ","
	}
	_, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, inner, le, cum)
	return err
}
