package sweep

import (
	"os"
	"path/filepath"
	"testing"

	"skipit/internal/sim"
)

// Golden fingerprint over a fixed literal: catches accidental changes to the
// hashing scheme itself (serialization, digest, truncation). Unlike hashes
// over real configs — which legitimately change when config structs grow —
// this value must only change with a deliberate algorithm change.
func TestFingerprintGolden(t *testing.T) {
	type fixed struct {
		A int
		B string
		C bool
	}
	got := Fingerprint(fixed{A: 7, B: "x", C: true}, map[string]int{"k": 1})
	const want = "2770330a70822f00"
	if got != want {
		t.Fatalf("golden fingerprint drifted: got %s, want %s\n"+
			"(if the hashing scheme changed on purpose, bump SchemaVersion and update this golden)", got, want)
	}
}

func TestFingerprintStableAcrossCalls(t *testing.T) {
	mk := func() sim.Config { return sim.DefaultConfig(4) }
	a := Fingerprint("fig9", mk(), map[string]any{"size": 4096, "reps": 5})
	b := Fingerprint("fig9", mk(), map[string]any{"size": 4096, "reps": 5})
	if a != b {
		t.Fatalf("identical configs hashed differently: %s vs %s", a, b)
	}
}

// Every sweep-relevant knob must perturb the hash: cores, FSHR count,
// coalescing, Skip It, and a raw latency constant (so the gate catches an
// artificially inflated timing model via fingerprint mismatch).
func TestFingerprintSensitivity(t *testing.T) {
	base := Fingerprint(sim.DefaultConfig(1))
	mutations := map[string]func(*sim.Config){
		"cores":       func(c *sim.Config) { c.NumCores = 2 },
		"fshr-count":  func(c *sim.Config) { c.L1.Flush.NumFSHRs = 4 },
		"coalescing":  func(c *sim.Config) { c.L1.Flush.Coalescing = false },
		"skip-it":     func(c *sim.Config) { c.L1.Flush.SkipIt = false },
		"mem-latency": func(c *sim.Config) { c.Mem.ReadLatency = 120 },
	}
	seen := map[string]string{"base": base}
	for name, mutate := range mutations {
		cfg := sim.DefaultConfig(1)
		mutate(&cfg)
		fp := Fingerprint(cfg)
		for prev, prevFP := range seen {
			if fp == prevFP {
				t.Errorf("mutation %q collided with %q: %s", name, prev, fp)
			}
		}
		seen[name] = fp
	}
}

func TestFingerprintOrderAndArityMatter(t *testing.T) {
	if Fingerprint("a", "b") == Fingerprint("b", "a") {
		t.Fatal("part order ignored")
	}
	if Fingerprint("a") == Fingerprint("a", "") {
		t.Fatal("arity ignored")
	}
}

// A schema-version bump must invalidate old stores: files written under
// another version are rejected on load and their records never hit.
func TestSchemaVersionInvalidatesStore(t *testing.T) {
	dir := t.TempDir()
	stale := `{"schema_version": ` + "0" + `, "group": "fig09", "records": [
		{"name": "p", "fingerprint": "deadbeef00000000", "cycles": 42, "reps": 1}]}`
	path := filepath.Join(dir, FileName("fig09"))
	if err := os.WriteFile(path, []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Fatal("LoadFile accepted a stale schema version")
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Lookup("fig09", "p", "deadbeef00000000"); ok {
		t.Fatal("stale-schema record served from the store")
	}
	// The stale file is rewritten under the current schema on Flush.
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	f, err := LoadFile(path)
	if err != nil {
		t.Fatalf("store did not refresh the stale file: %v", err)
	}
	if f.SchemaVersion != SchemaVersion || len(f.Records) != 0 {
		t.Fatalf("refreshed file = %+v", f)
	}
}
