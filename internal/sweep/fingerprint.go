package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// SchemaVersion is the result-store/code schema version. It is folded into
// every fingerprint and written into every store file; bump it whenever the
// meaning of a stored cycle count changes (a simulator timing fix, a new
// measurement protocol), and every previously stored record becomes stale at
// once — fingerprints stop matching and old store files are ignored on load.
const SchemaVersion = 1

// Fingerprint hashes a measurement's full configuration — simulator configs,
// workload parameters, repetition counts — into a short stable hex digest.
// Parts are serialized as canonical JSON (struct fields in declaration
// order, map keys sorted), so identical configurations hash identically
// across runs and processes, and any changed field — core count, FSHR
// count, coalescing, Skip It on/off, a latency constant — changes the hash.
// SchemaVersion is always included, so a schema bump invalidates every old
// fingerprint. Configs must be fingerprinted before wiring (Metrics
// registries nil), which is how the bench harnesses construct them.
func Fingerprint(parts ...any) string {
	h := sha256.New()
	fmt.Fprintf(h, "skipit-sweep-schema=%d;", SchemaVersion)
	for _, p := range parts {
		b, err := json.Marshal(p)
		if err != nil {
			panic(fmt.Sprintf("sweep: unfingerprintable part %T: %v", p, err))
		}
		h.Write(b)
		h.Write([]byte{';'})
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}
