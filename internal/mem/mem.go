// Package mem models main memory for the simulated SoC: a fixed-latency,
// bandwidth-limited DRAM controller in the style of FASED's default model,
// fronting a byte store that doubles as the persistence domain (NVMM).
//
// Everything held in this package survives a simulated crash; everything in
// caches and links does not. A write is durable once the controller has
// acknowledged it — the same point at which the paper's L2 receives the
// ReleaseAck from memory and forwards a RootReleaseAck to the requesting core
// (§5.5). Writes that were accepted but not yet acknowledged at crash time
// may or may not survive, which crash tests exercise both ways.
package mem

import (
	"fmt"
	"math"

	"skipit/internal/linepool"
	"skipit/internal/metrics"
	"skipit/internal/trace"
)

// noEvent mirrors tilelink.NoEvent without importing it: the sentinel for "no
// self-generated future event".
const noEvent int64 = math.MaxInt64 / 2

// Config sets the controller's timing and geometry.
type Config struct {
	LineBytes      uint64
	ReadLatency    int // cycles from acceptance to data response
	WriteLatency   int // cycles from acceptance to acknowledgement
	AcceptInterval int // minimum cycles between accepted requests (bandwidth)
	MaxOutstanding int // controller queue depth
	// Metrics is the registry the controller registers its counters with,
	// under the instance name "mem". Nil gets a private registry.
	Metrics *metrics.Registry
	// Pool recycles line buffers: read responses draw from it, applied
	// write payloads return to it. Nil disables pooling (plain allocation).
	Pool *linepool.Pool `json:"-"`
}

// DefaultConfig mirrors the calibration in DESIGN.md §3: ~60-cycle read
// latency, posted writes acknowledged from the controller's ADR-protected
// write queue after a short acceptance delay, and one 64 B transfer accepted
// per cycle, which bounds flush throughput the way FASED's DRAM model bounds
// the paper's.
func DefaultConfig() Config {
	return Config{
		LineBytes:      64,
		ReadLatency:    60,
		WriteLatency:   8,
		AcceptInterval: 1,
		MaxOutstanding: 32,
	}
}

// Kind distinguishes line reads from line writes.
type Kind uint8

const (
	Read Kind = iota
	Write
)

func (k Kind) String() string {
	if k == Read {
		return "Read"
	}
	return "Write"
}

// Request is a full-line memory operation. Tag is echoed in the response so
// the L2 can match completions to its MSHRs.
type Request struct {
	Kind Kind
	Addr uint64
	Data []byte // nil for reads
	Tag  int
	// Txn is the coherence-transaction id that caused this memory
	// operation, echoed for observability only; 0 means unattributed.
	Txn uint64
}

// Response completes a Request. Data is the line contents for reads and nil
// for write acknowledgements.
type Response struct {
	Kind Kind
	Addr uint64
	Data []byte
	Tag  int
}

type pending struct {
	req     Request
	readyAt int64
}

// Stats is the controller's counter set, read back as one struct for the
// benchmark harness. The counters live in the metrics registry (under
// "mem.*"); Stats() materializes this view from them.
type Stats struct {
	Reads        uint64
	Writes       uint64
	StalledSends uint64
}

// memCounters holds the controller's registry-backed instruments.
type memCounters struct {
	reads, writes, stalledSends *metrics.Counter
	inflightDepth               *metrics.Gauge
}

func newMemCounters(reg *metrics.Registry, name string) memCounters {
	return memCounters{
		reads:         reg.Counter(name, "reads"),
		writes:        reg.Counter(name, "writes"),
		stalledSends:  reg.Counter(name, "stalled_sends"),
		inflightDepth: reg.Gauge(name, "inflight_depth"),
	}
}

// Memory is the DRAM controller plus backing store. The zero value is not
// usable; construct with New. In parallel simulation it belongs to the hub
// shard, which is the only shard that ticks it.
//
//skipit:shard-owned hub
type Memory struct {
	cfg        Config
	data       map[uint64][]byte // durable contents, line granular
	inflight   []pending
	done       []Response
	nextAccept int64
	ctr        memCounters
	rec        *trace.Rec

	journalOn bool
	journal   []WriteLog
}

// WriteLog records one retired line write's pre-image: the durable contents
// the write replaced. With the journal armed, a reader holding the current
// store plus the logged pre-images can reconstruct the durable value of any
// line at any cycle the journal covers — the parallel fabric uses this to
// resolve durability checks deferred to a window barrier at the exact cycle
// a serial run would have peeked.
type WriteLog struct {
	Cycle int64
	Addr  uint64
	Old   []byte
}

// SetWriteJournal arms (or disarms) pre-image logging of retired writes.
func (m *Memory) SetWriteJournal(on bool) { m.journalOn = on }

// DrainWriteJournal returns the logged pre-images in retirement order and
// clears the journal.
func (m *Memory) DrainWriteJournal() []WriteLog {
	j := m.journal
	m.journal = nil
	return j
}

// SetRecorder attaches a flight-recorder ring; read/write retirements are
// recorded into it. Nil (the default) records nothing.
func (m *Memory) SetRecorder(r *trace.Rec) { m.rec = r }

// New returns an empty memory with the given configuration.
func New(cfg Config) *Memory {
	if cfg.LineBytes == 0 {
		panic("mem: zero line size")
	}
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 1
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Memory{cfg: cfg, data: make(map[uint64][]byte), ctr: newMemCounters(reg, "mem")}
}

// Config returns the controller configuration.
func (m *Memory) Config() Config { return m.cfg }

// CanAccept reports whether a request submitted at cycle now would be
// accepted.
func (m *Memory) CanAccept(now int64) bool {
	return now >= m.nextAccept && len(m.inflight) < m.cfg.MaxOutstanding
}

// Submit offers a request to the controller at cycle now. It reports false
// when bandwidth or queue limits reject the request; the caller retries.
func (m *Memory) Submit(now int64, req Request) bool {
	if !m.CanAccept(now) {
		m.ctr.stalledSends.Inc()
		return false
	}
	if req.Addr%m.cfg.LineBytes != 0 {
		panic(fmt.Sprintf("mem: unaligned %v to %#x", req.Kind, req.Addr))
	}
	var lat int
	switch req.Kind {
	case Read:
		lat = m.cfg.ReadLatency
		if req.Data != nil {
			panic("mem: read with payload")
		}
		m.ctr.reads.Inc()
	case Write:
		lat = m.cfg.WriteLatency
		if uint64(len(req.Data)) != m.cfg.LineBytes {
			panic(fmt.Sprintf("mem: write payload %d bytes, want %d", len(req.Data), m.cfg.LineBytes))
		}
		m.ctr.writes.Inc()
	}
	m.inflight = append(m.inflight, pending{req: req, readyAt: now + int64(lat)}) //skipit:ignore hotalloc inflight depth is bounded by AcceptInterval backpressure; append reuses its backing after warmup
	m.nextAccept = now + int64(m.cfg.AcceptInterval)
	m.ctr.inflightDepth.Set(int64(len(m.inflight)))
	return true
}

// Tick retires requests whose latency has elapsed at cycle now, applying
// writes to the durable store and queueing responses.
func (m *Memory) Tick(now int64) {
	kept := m.inflight[:0]
	for _, p := range m.inflight {
		if p.readyAt > now {
			kept = append(kept, p)
			continue
		}
		switch p.req.Kind {
		case Read:
			line := m.cfg.Pool.Get(int(m.cfg.LineBytes))
			copy(line, m.line(p.req.Addr))
			m.rec.Record(now, trace.RecMemRead, trace.CauseNone, p.req.Txn, p.req.Addr, 0)
			m.done = append(m.done, Response{Kind: Read, Addr: p.req.Addr, Data: line, Tag: p.req.Tag})
		case Write:
			if m.journalOn {
				m.journal = append(m.journal, WriteLog{
					Cycle: now, Addr: p.req.Addr,
					Old: append([]byte(nil), m.line(p.req.Addr)...),
				})
			}
			copy(m.line(p.req.Addr), p.req.Data)
			// The write payload's transaction retires here: recycle it.
			m.cfg.Pool.Put(p.req.Data)
			m.rec.Record(now, trace.RecMemWrite, trace.CauseNone, p.req.Txn, p.req.Addr, 0)
			m.done = append(m.done, Response{Kind: Write, Addr: p.req.Addr, Tag: p.req.Tag})
		}
	}
	m.inflight = kept
	m.ctr.inflightDepth.Set(int64(len(m.inflight)))
}

// PollResponse returns the oldest completed response, if any.
func (m *Memory) PollResponse() (Response, bool) {
	if len(m.done) == 0 {
		return Response{}, false
	}
	r := m.done[0]
	copy(m.done, m.done[1:])
	m.done = m.done[:len(m.done)-1]
	return r, true
}

// Outstanding returns the number of accepted-but-incomplete requests plus
// undelivered responses; zero means the controller is quiescent.
func (m *Memory) Outstanding() int { return len(m.inflight) + len(m.done) }

// NextEvent returns the earliest cycle after now at which the controller can
// change state on its own: the completion cycle of the soonest in-flight
// request, or now+1 while completed responses sit unpolled (the L2 collects
// them on its next tick). The acceptance window (nextAccept) is not an event:
// a client blocked on it reports now+1 itself.
//
//skipit:hotpath
func (m *Memory) NextEvent(now int64) int64 {
	if len(m.done) > 0 {
		return now + 1
	}
	next := noEvent
	for i := range m.inflight {
		r := m.inflight[i].readyAt
		if r <= now {
			return now + 1
		}
		if r < next {
			next = r
		}
	}
	return next
}

// Stats returns the traffic counters as one struct, read back from the
// metrics registry (thin view; see package metrics).
func (m *Memory) Stats() Stats {
	return Stats{
		Reads:        m.ctr.reads.Value(),
		Writes:       m.ctr.writes.Value(),
		StalledSends: m.ctr.stalledSends.Value(),
	}
}

func (m *Memory) line(addr uint64) []byte {
	l, ok := m.data[addr]
	if !ok {
		l = make([]byte, m.cfg.LineBytes) //skipit:ignore hotalloc sparse backing store materializes a line on first touch; a resident working set is allocation-free
		m.data[addr] = l
	}
	return l
}

// --- Persistence-domain (NVMM) inspection and crash injection ---

// PeekLine returns a copy of the durable contents of the line containing
// addr. Unwritten memory reads as zero.
func (m *Memory) PeekLine(addr uint64) []byte {
	base := addr &^ (m.cfg.LineBytes - 1)
	line := make([]byte, m.cfg.LineBytes) //skipit:ignore hotalloc PeekLine is a debug/chaos-recovery accessor; the unpoisoned steady-state path never calls it
	copy(line, m.line(base))
	return line
}

// PeekUint64 returns the durable 8-byte little-endian value at addr, which
// must be 8-byte aligned.
func (m *Memory) PeekUint64(addr uint64) uint64 {
	if addr%8 != 0 {
		panic("mem: unaligned PeekUint64")
	}
	line := m.line(addr &^ (m.cfg.LineBytes - 1))
	off := addr & (m.cfg.LineBytes - 1)
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(line[off+i]) << (8 * i)
	}
	return v
}

// PokeUint64 writes an 8-byte value directly into the durable store,
// bypassing timing. It is intended for test and benchmark initialization.
func (m *Memory) PokeUint64(addr uint64, v uint64) {
	if addr%8 != 0 {
		panic("mem: unaligned PokeUint64")
	}
	line := m.line(addr &^ (m.cfg.LineBytes - 1))
	off := addr & (m.cfg.LineBytes - 1)
	for i := uint64(0); i < 8; i++ {
		line[off+i] = byte(v >> (8 * i))
	}
}

// PokeLine writes a full line directly into the durable store, bypassing
// timing. Intended for initialization.
func (m *Memory) PokeLine(addr uint64, data []byte) {
	if addr%m.cfg.LineBytes != 0 {
		panic("mem: unaligned PokeLine")
	}
	if uint64(len(data)) != m.cfg.LineBytes {
		panic("mem: PokeLine payload size")
	}
	copy(m.line(addr), data)
}

// Crash simulates power loss at the memory controller. In-flight writes that
// were accepted but not yet acknowledged either all drain (drainInflight
// true: the controller's write queue sits inside the ADR persistence domain)
// or are all lost (false). Acknowledged writes always survive; queued
// responses and in-flight reads are always discarded.
func (m *Memory) Crash(drainInflight bool) {
	if drainInflight {
		for _, p := range m.inflight {
			if p.req.Kind == Write {
				copy(m.line(p.req.Addr), p.req.Data)
			}
		}
	}
	m.inflight = m.inflight[:0]
	m.done = m.done[:0]
	m.nextAccept = 0
}
