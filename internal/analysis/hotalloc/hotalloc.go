// Package hotalloc implements the skipit-vet analyzer that makes the CI
// alloc-gate's steady-state guarantee (BenchmarkStep: 1 alloc/op) a
// compile-time property. Functions annotated with a
//
//	//skipit:hotpath
//
// directive in their doc comment are the per-cycle paths — Step, the
// NextEvent fold, the linepool and tilelink fast paths. Inside them the
// analyzer reports every construct that allocates (or is indistinguishable,
// statically, from one that allocates), with the precise source position the
// benchmark-based gate cannot give:
//
//   - make / new
//   - append (growth cannot be bounded statically, so any append is suspect)
//   - map, slice, and pointer-to-composite literals
//   - closures that capture variables (the closure header is heap-allocated
//     when it escapes, e.g. via defer in a loop or storage)
//   - interface boxing: converting a non-pointer concrete value to an
//     interface type (call arguments, assignments, returns, conversions)
//   - string <-> []byte / []rune conversions
//   - defer inside a loop (deferred records are heap-allocated there)
//
// Cold fallbacks that live inside a hot function (the linepool's make on
// pool miss) carry //skipit:ignore waivers with reasons, keeping every
// intentional allocation documented at its site.
//
// The analyzer is also interprocedural: every function that is NOT hotpath-
// annotated but contains an unwaived allocation site (or transitively calls
// one, over the internal/analysis/callsum graph) exports an Allocates object
// fact carrying a witness chain down to the concrete site. A call from a
// //skipit:hotpath function into a function with an Allocates fact — in this
// package or any imported one — is a finding, so a hot path can no longer
// hide an allocation behind a helper in another package. Hotpath-annotated
// functions act as barriers in the propagation: their own bodies are checked
// site-by-site above, so they never carry an Allocates fact, and an audited
// hot helper does not smear "allocates" onto its callers. Functions in
// _test.go files neither earn nor propagate facts.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"skipit/internal/analysis/callsum"
	"skipit/internal/analysis/suppress"
)

// Directive marks a function as a zero-alloc hot path.
const Directive = "//skipit:hotpath"

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "report allocation sites inside //skipit:hotpath functions, including transitive ones reached through calls\n\n" +
		"Turns the benchmark-based 1-alloc/op CI gate into a static check with exact positions. " +
		"Allocates facts carry witness chains across package boundaries.",
	Requires:  []*analysis.Analyzer{callsum.Analyzer},
	FactTypes: []analysis.Fact{new(Allocates)},
	Run:       run,
}

// chainMax bounds the witness chains embedded in facts and diagnostics.
const chainMax = 8

// Allocates marks a non-hotpath function that contains (or transitively
// reaches) an unwaived allocation site. Chain is the witness path, outermost
// callee first, ending at the concrete site description.
type Allocates struct {
	Chain []string
}

// AFact marks Allocates as an analysis fact.
func (*Allocates) AFact() {}

func (a *Allocates) String() string { return "allocates(" + strings.Join(a.Chain, " -> ") + ")" }

func run(pass *analysis.Pass) (interface{}, error) {
	suppress.Apply(pass)
	sums := pass.ResultOf[callsum.Analyzer].(*callsum.Summaries)
	waived := suppress.CoveredLines(pass, pass.Analyzer.Name)

	// Intraprocedural half: report every allocation site inside hotpath
	// bodies (suppress.Apply filters the waived ones).
	for _, fi := range sums.Funcs {
		if fi.Decl.Body == nil || !IsHotpath(fi.Decl) {
			continue
		}
		fn := fi.Decl
		sites(pass, fn, func(pos token.Pos, msg string) {
			pass.Report(analysis.Diagnostic{
				Pos:     pos,
				Message: fmt.Sprintf("%s in hot path %s", msg, fn.Name.Name),
			})
		})
	}

	// Summaries: seed Allocates for non-hotpath functions with an unwaived
	// site of their own.
	allocs := make(map[*callsum.FuncInfo]*Allocates)
	for _, fi := range sums.Funcs {
		if fi.TestFile || fi.Decl.Body == nil || IsHotpath(fi.Decl) {
			continue
		}
		var first string
		sites(pass, fi.Decl, func(pos token.Pos, msg string) {
			if first == "" && !waived(pos) {
				first = fmt.Sprintf("%s at %s", msg, callsum.ShortPos(pass.Fset, pos))
			}
		})
		if first != "" {
			allocs[fi] = &Allocates{Chain: []string{first}}
		}
	}

	calleeAlloc := func(c callsum.Call) *Allocates {
		if local, ok := sums.ByObj[c.Callee]; ok {
			return allocs[local]
		}
		var fact Allocates
		if pass.ImportObjectFact(c.Callee, &fact) {
			return &fact
		}
		return nil
	}

	// Propagate bottom-up to a fixpoint; hotpath functions are barriers.
	for changed := true; changed; {
		changed = false
		for _, fi := range sums.Funcs {
			if allocs[fi] != nil || fi.TestFile || IsHotpath(fi.Decl) {
				continue
			}
			for _, c := range fi.Calls {
				a := calleeAlloc(c)
				if a == nil || waived(c.Pos) {
					continue
				}
				hop := fmt.Sprintf("%s (%s)", callsum.Name(c.Callee), callsum.ShortPos(pass.Fset, c.Pos))
				allocs[fi] = &Allocates{Chain: callsum.TrimChain(append([]string{hop}, a.Chain...), chainMax)}
				changed = true
				break
			}
		}
	}

	for fi, a := range allocs {
		pass.ExportObjectFact(fi.Obj, a)
	}

	// Interprocedural findings: hotpath calls into allocating callees.
	for _, fi := range sums.Funcs {
		if !IsHotpath(fi.Decl) {
			continue
		}
		for _, c := range fi.Calls {
			a := calleeAlloc(c)
			if a == nil {
				continue
			}
			pass.Report(analysis.Diagnostic{
				Pos: c.Pos,
				Message: fmt.Sprintf("hot path %s calls allocating function: %s -> %s",
					fi.Decl.Name.Name, callsum.Name(c.Callee), strings.Join(a.Chain, " -> ")),
			})
		}
	}
	return nil, nil
}

// IsHotpath reports whether the function's doc comment carries the
// //skipit:hotpath directive.
func IsHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == Directive || strings.HasPrefix(c.Text, Directive+" ") {
			return true
		}
	}
	return false
}

// sites walks one function body and emits every allocation site with a
// pre-formatted message. Both halves of the analyzer share it: the hotpath
// loop reports the sites, the summary loop folds them into Allocates facts.
func sites(pass *analysis.Pass, fn *ast.FuncDecl, emit func(token.Pos, string)) {
	report := func(pos token.Pos, format string, args ...interface{}) {
		emit(pos, fmt.Sprintf(format, args...))
	}

	// ast.Inspect has no exit hook, so track loop nesting with an interval
	// stack instead: a node is inside a loop if its position falls within a
	// recorded loop body.
	var loops []ast.Node
	inLoop := func(pos token.Pos) bool {
		for _, l := range loops {
			if l.Pos() <= pos && pos <= l.End() {
				return true
			}
		}
		return false
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		// Allocation while building a panic message is crash-path by
		// definition: the episode is over and steady-state budgets no longer
		// apply. Skipping the whole argument tree keeps every cold
		// panic(fmt.Sprintf(...)) guard in the component sinks out of the
		// summaries without a waiver per site.
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					return false
				}
			}
		}
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)

		case *ast.CallExpr:
			checkCall(pass, fn, n, report)

		case *ast.CompositeLit:
			checkCompositeLit(pass, n, report)

		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "pointer-to-composite literal allocates")
				}
			}

		case *ast.FuncLit:
			if captured := captures(pass, n); len(captured) > 0 {
				report(n.Pos(), "closure captures %s and may heap-allocate its environment", strings.Join(captured, ", "))
			}

		case *ast.DeferStmt:
			if inLoop(n.Pos()) {
				report(n.Pos(), "defer inside a loop heap-allocates its record")
			}

		case *ast.AssignStmt:
			for i := range n.Lhs {
				if i < len(n.Rhs) {
					checkBoxing(pass, pass.TypesInfo.TypeOf(n.Lhs[i]), n.Rhs[i], report)
				}
			}

		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					checkBoxing(pass, pass.TypesInfo.TypeOf(name), n.Values[i], report)
				}
			}

		case *ast.ReturnStmt:
			sig, ok := pass.TypesInfo.TypeOf(fn.Name).(*types.Signature)
			if !ok || sig.Results() == nil || len(n.Results) != sig.Results().Len() {
				break
			}
			for i, res := range n.Results {
				checkBoxing(pass, sig.Results().At(i).Type(), res, report)
			}
		}
		return true
	})
}

// checkCall flags make/new/append, allocation-shaped conversions, and
// interface boxing at call argument positions.
func checkCall(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr, report func(token.Pos, string, ...interface{})) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				report(call.Pos(), "append may grow and allocate (growth is not statically boundable)")
			}
			return
		}
	}

	// Conversions: T(x).
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		target := tv.Type
		if len(call.Args) == 1 {
			argT := pass.TypesInfo.TypeOf(call.Args[0])
			if isInterface(target) {
				checkBoxing(pass, target, call.Args[0], report)
			} else if argT != nil && convAllocates(target, argT) {
				report(call.Pos(), "conversion %s -> %s copies and allocates", types.TypeString(argT, types.RelativeTo(pass.Pkg)), types.TypeString(target, types.RelativeTo(pass.Pkg)))
			}
		}
		return
	}

	// Ordinary calls: box-check each argument against its parameter type.
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var paramT types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				paramT = sig.Params().At(sig.Params().Len() - 1).Type()
			} else {
				paramT = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < sig.Params().Len():
			paramT = sig.Params().At(i).Type()
		}
		if paramT != nil {
			checkBoxing(pass, paramT, arg, report)
		}
	}
}

// checkCompositeLit flags literals that always allocate.
func checkCompositeLit(pass *analysis.Pass, lit *ast.CompositeLit, report func(token.Pos, string, ...interface{})) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		report(lit.Pos(), "map literal allocates")
	case *types.Slice:
		report(lit.Pos(), "slice literal allocates")
	}
	// Struct and array value literals live on the stack unless their address
	// escapes; the &T{...} case is reported at the UnaryExpr.
}

// checkBoxing reports a conversion of a concrete non-pointer-shaped value
// into an interface slot.
func checkBoxing(pass *analysis.Pass, dst types.Type, src ast.Expr, report func(token.Pos, string, ...interface{})) {
	if dst == nil || !isInterface(dst) {
		return
	}
	tv, ok := pass.TypesInfo.Types[src]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsNil() || isInterface(tv.Type) {
		return
	}
	if pointerShaped(tv.Type) {
		return // the interface data word holds the value directly; no allocation
	}
	report(src.Pos(), "interface boxing of %s value allocates", types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
}

// convAllocates reports conversions that copy backing storage.
func convAllocates(dst, src types.Type) bool {
	d, s := dst.Underlying(), src.Underlying()
	isStr := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		sl, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(s) && isByteOrRuneSlice(d)) || (isByteOrRuneSlice(s) && isStr(d))
}

// isInterface reports whether t's underlying type is an interface.
func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// pointerShaped reports whether values of t fit in an interface's data word
// without allocation ("direct interface types" in compiler terms): pointers,
// channels, maps, funcs, unsafe.Pointer — and, recursively, single-field
// structs and length-1 arrays wrapping one of those. Wrapper structs like
// sim's clientSide exist precisely so converting them to an interface stays
// allocation-free, and must not be flagged.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct:
		return u.NumFields() == 1 && pointerShaped(u.Field(0).Type())
	case *types.Array:
		return u.Len() == 1 && pointerShaped(u.Elem())
	}
	return false
}

// captures returns the names of variables a function literal captures from
// enclosing scopes (package-level objects do not count).
func captures(pass *analysis.Pass, lit *ast.FuncLit) []string {
	seen := make(map[string]bool)
	var out []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured: declared outside the literal but not at package scope.
		if v.Parent() == nil || v.Parent() == pass.Pkg.Scope() || v.Pkg() == nil || v.Pkg().Scope() == v.Parent() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true
		}
		if !seen[v.Name()] {
			seen[v.Name()] = true
			out = append(out, v.Name())
		}
		return true
	})
	return out
}
