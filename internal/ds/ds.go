// Package ds provides the four lock-free set data structures the paper's
// §7.4 persistence study runs over: a sorted linked list [Harris, DISC'01],
// a hash table with per-bucket lists [David et al., ATC'18], an external
// binary search tree in the style of Natarajan–Mittal [PPoPP'14], and a
// skiplist [Herlihy & Shavit].
//
// All four are real concurrent lock-free implementations (CAS-based, with
// helping); every shared-memory access additionally reports itself to a
// persist.Env so the flush-elision policies charge their true costs against
// the memsim hierarchy. Keys 1..KeyMax are valid; 0 and ^uint64(0) are
// sentinels.
package ds

import (
	"skipit/internal/memsim"
	"skipit/internal/persist"
)

// KeyMax is the largest insertable key.
const KeyMax = ^uint64(0) - 16

// Set is the common concurrent-set interface. tid identifies the calling
// thread for virtual-time accounting; callers must use distinct tids for
// concurrent goroutines.
type Set interface {
	Name() string
	Insert(tid int, key uint64) bool
	Delete(tid int, key uint64) bool
	Contains(tid int, key uint64) bool
}

// Common bundles what every structure needs: the persistence environment and
// the simulated-heap allocator.
type Common struct {
	env   *persist.Env
	alloc *memsim.Allocator
}

// NewCommon builds the shared context.
func NewCommon(env *persist.Env, alloc *memsim.Allocator) Common {
	return Common{env: env, alloc: alloc}
}

// allocNode reserves simulated heap space for an object of `words` 8-byte
// words plus the policy's padding (FliT-adjacent counters).
func (c *Common) allocNode(words uint64) uint64 {
	return c.alloc.Alloc(words*8 + c.env.Pol.NodePad())
}

// Structure names as used in figures.
const (
	NameList     = "linked-list"
	NameHash     = "hash-table"
	NameBST      = "bst"
	NameSkiplist = "skiplist"
)
