package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse assembles a textual program, one instruction per line, using the
// same mnemonics Instr.String prints:
//
//	sd <addr> <value>     store 64-bit value
//	ld <addr>             load 64 bits
//	cbo.clean <addr>      non-invalidating writeback
//	cbo.flush <addr>      invalidating writeback
//	cflush.d.l1 <addr>    SiFive vendor L1 eviction
//	amoadd <addr> <value> atomic fetch-and-add
//	amoswap <addr> <value> atomic exchange
//	fence                 FENCE RW,RW
//	nop [count]           one or more no-ops
//
// Addresses and values accept decimal or 0x-prefixed hex. '#' and ';' start
// comments; blank lines are ignored. Errors carry the 1-based line number.
func Parse(src string) (*Program, error) {
	b := NewBuilder()
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		op := strings.ToLower(fields[0])
		argc := len(fields) - 1
		fail := func(format string, args ...any) (*Program, error) {
			return nil, fmt.Errorf("line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		switch op {
		case "sd", "store", "amoadd", "amoswap":
			if argc != 2 {
				return fail("%s needs <addr> <value>", op)
			}
			addr, err := parseNum(fields[1])
			if err != nil {
				return fail("bad address %q: %v", fields[1], err)
			}
			val, err := parseNum(fields[2])
			if err != nil {
				return fail("bad value %q: %v", fields[2], err)
			}
			switch op {
			case "amoadd":
				b.AmoAdd(addr, val)
			case "amoswap":
				b.AmoSwap(addr, val)
			default:
				b.Store(addr, val)
			}
		case "ld", "load":
			if argc != 1 {
				return fail("%s needs <addr>", op)
			}
			addr, err := parseNum(fields[1])
			if err != nil {
				return fail("bad address %q: %v", fields[1], err)
			}
			b.Load(addr)
		case "cbo.clean":
			if argc != 1 {
				return fail("cbo.clean needs <addr>")
			}
			addr, err := parseNum(fields[1])
			if err != nil {
				return fail("bad address %q: %v", fields[1], err)
			}
			b.CboClean(addr)
		case "cbo.flush":
			if argc != 1 {
				return fail("cbo.flush needs <addr>")
			}
			addr, err := parseNum(fields[1])
			if err != nil {
				return fail("bad address %q: %v", fields[1], err)
			}
			b.CboFlush(addr)
		case "cflush.d.l1":
			if argc != 1 {
				return fail("cflush.d.l1 needs <addr>")
			}
			addr, err := parseNum(fields[1])
			if err != nil {
				return fail("bad address %q: %v", fields[1], err)
			}
			b.CflushDL1(addr)
		case "fence":
			if argc != 0 {
				return fail("fence takes no operands")
			}
			b.Fence()
		case "nop":
			n := 1
			if argc == 1 {
				v, err := parseNum(fields[1])
				if err != nil || v == 0 || v > 1_000_000 {
					return fail("bad nop count %q", fields[1])
				}
				n = int(v)
			} else if argc > 1 {
				return fail("nop takes at most a count")
			}
			b.Nops(n)
		default:
			return fail("unknown mnemonic %q", fields[0])
		}
	}
	return b.Build(), nil
}

func parseNum(s string) (uint64, error) {
	return strconv.ParseUint(strings.TrimPrefix(strings.ToLower(s), "+"), 0, 64)
}

// Format renders a program in the syntax Parse accepts, so programs round-
// trip through text.
func Format(p *Program) string {
	var sb strings.Builder
	for _, in := range p.Instrs {
		switch in.Op {
		case OpStore:
			fmt.Fprintf(&sb, "sd %#x %d\n", in.Addr, in.Data)
		case OpAmoAdd:
			fmt.Fprintf(&sb, "amoadd %#x %d\n", in.Addr, in.Data)
		case OpAmoSwap:
			fmt.Fprintf(&sb, "amoswap %#x %d\n", in.Addr, in.Data)
		case OpLoad:
			fmt.Fprintf(&sb, "ld %#x\n", in.Addr)
		case OpCboClean:
			fmt.Fprintf(&sb, "cbo.clean %#x\n", in.Addr)
		case OpCboFlush:
			fmt.Fprintf(&sb, "cbo.flush %#x\n", in.Addr)
		case OpCflushDL1:
			fmt.Fprintf(&sb, "cflush.d.l1 %#x\n", in.Addr)
		case OpFence:
			sb.WriteString("fence\n")
		case OpNop:
			sb.WriteString("nop\n")
		}
	}
	return sb.String()
}
