// Package engine is the hotalloc interprocedural fixture's hot tier: its
// hotpath functions call across the package boundary into buf, and every
// finding carries the witness chain imported from buf's Allocates facts —
// this pass never sees buf's bodies.
package engine

import "skipit/internal/analysis/testdata/src/hotcross/buf"

// relay is a local non-hot wrapper: it inherits buf.Fill's fact, extending
// the chain across two package boundaries by the time step calls it.
func relay(n int) []byte {
	return buf.Fill(n)
}

// wrap calls only the audited hot helper, which is a barrier: no fact.
func wrap(b []byte) []byte {
	return buf.Hot(b)
}

//skipit:hotpath
func step(b []byte, n int) []byte {
	b = buf.Grow(b, n) // want `hot path step calls allocating function: buf\.Grow -> append may grow and allocate .* at buf\.go:\d+`
	_ = buf.Fill(n)    // want `buf\.Fill -> buf\.Grow \(buf\.go:\d+\) -> append may grow`
	_ = relay(n)       // want `engine\.relay -> buf\.Fill \(engine\.go:\d+\) -> buf\.Grow`
	b = buf.Reset(b)
	_ = buf.Miss(n) // ok: waived at its site, so no fact crosses
	b = buf.Hot(b)  // ok: audited hot helper is a barrier
	_ = wrap(b)     // ok: wrap only reaches the barrier
	return b
}

//skipit:hotpath
func warmup(n int) []byte {
	return buf.Fill(n) //skipit:ignore hotalloc fixture: one-time warmup fill before the measured loop
}
