// Package sweep is the experiment-orchestration subsystem behind every
// figure, ablation, and perf gate in this repository. The paper's evaluation
// (§7) is a large grid of independent measurements — each one a
// self-contained, deterministic, single-goroutine sim.System or memsim
// hierarchy (DESIGN.md §3.1) — which makes the grid embarrassingly parallel.
//
// The package provides four pieces:
//
//   - Job: one named measurement (a figure point, an ablation cell) carrying
//     a canonical config fingerprint (see Fingerprint) so a result can be
//     recognized across runs.
//   - Runner: a bounded worker pool that executes independent jobs
//     concurrently and collects results in submission order, so the output is
//     bit-identical to serial execution.
//   - Store: a content-addressed result store — one BENCH_<group>.json file
//     per figure; a record whose fingerprint still matches lets re-runs skip
//     the measurement.
//   - Compare: the regression gate — a delta table between a baseline store
//     and the current records, failing on cycle-count regressions beyond a
//     tolerance (and on fingerprint drift, which means the baseline must be
//     refreshed).
package sweep

import (
	"fmt"
	"runtime"
	"sync"

	"skipit/internal/metrics"
)

// Sink receives the labeled metrics snapshot of every completed
// cycle-accurate measurement run inside a job. Each job gets its own sink
// (or nil when snapshots are not being collected), so concurrent jobs never
// share mutable state — this replaces the former bench.SnapshotSink
// package-global, which was a data race under a parallel runner.
type Sink func(label string, snap metrics.Snapshot)

// Job is one named, fingerprinted measurement.
type Job struct {
	// Group names the result-store file the record lands in ("fig09", …).
	Group string
	// Name identifies the point within its group ("flush/size64/threads1").
	// (Group, Name) must be unique across a sweep.
	Name string
	// Series and X are plotting metadata: the CSV series label and x value.
	Series string
	X      string
	// Fingerprint is the canonical hash of everything that determines this
	// job's result (see Fingerprint). A store hit on (Name, Fingerprint)
	// skips the measurement.
	Fingerprint string
	// Run performs the measurement. The sink may be nil. Run must be
	// self-contained: it owns every simulator instance it creates and
	// touches no shared mutable state, so jobs can run on any goroutine.
	Run func(sink Sink) (Outcome, error)
}

// Outcome is what a job's Run returns.
type Outcome struct {
	Cycles  float64            // primary gated metric (virtual cycles)
	Sigma   float64            // dispersion across repetitions
	Reps    int                // repetition count behind Cycles
	Derived map[string]float64 // secondary metrics (mops, sizes, rates, …)
}

// Record is one stored result: a job's outcome plus its identity. Records
// are deliberately free of wall-clock metadata so a re-run of an unchanged
// configuration produces byte-identical store files.
type Record struct {
	Group       string             `json:"group"`
	Name        string             `json:"name"`
	Fingerprint string             `json:"fingerprint"`
	Series      string             `json:"series,omitempty"`
	X           string             `json:"x,omitempty"`
	Cycles      float64            `json:"cycles"`
	Sigma       float64            `json:"sigma,omitempty"`
	Reps        int                `json:"reps"`
	Derived     map[string]float64 `json:"derived,omitempty"`
}

// LabeledSnapshot pairs a measurement-run label with its metrics snapshot.
type LabeledSnapshot struct {
	Label    string           `json:"label"`
	Snapshot metrics.Snapshot `json:"snapshot"`
}

// JobResult is the runner's per-job output, in submission order.
type JobResult struct {
	Group  string
	Record Record
	// Snaps holds the labeled snapshots the job emitted, in emission order.
	Snaps []LabeledSnapshot
	// Cached reports that the record came from the store and Run was
	// skipped.
	Cached bool
	Err    error
}

// Runner executes jobs on a bounded worker pool. The zero value runs with
// GOMAXPROCS workers, no store, and no snapshot collection.
type Runner struct {
	// Workers bounds concurrent jobs; <= 0 means GOMAXPROCS.
	Workers int
	// Store, when non-nil, is consulted before running a job (a matching
	// fingerprint skips it) and receives every fresh record afterwards.
	Store *Store
	// Force re-measures every job even on a store hit.
	Force bool
	// WithSnapshots gives each job a collecting sink; otherwise jobs run
	// with a nil sink and emit nothing.
	WithSnapshots bool
	// Progress, when non-nil, receives a ProgressEvent at every job state
	// transition (cached, running, done, failed). It is invoked from worker
	// goroutines and must be safe for concurrent use. Observability only:
	// it must not mutate jobs or results.
	Progress func(ev ProgressEvent)
}

// ProgressEvent is one job state transition, for live sweep introspection.
type ProgressEvent struct {
	// Index is the job's position in the submitted slice; Total the slice
	// length.
	Index int    `json:"index"`
	Total int    `json:"total"`
	Group string `json:"group"`
	Name  string `json:"name"`
	// State is "cached" (store hit, run skipped), "running", "done", or
	// "failed".
	State string `json:"state"`
}

// Run executes the jobs and returns one result per job, in submission order
// regardless of completion order. Each job owns its whole simulator, so the
// records are bit-identical to what serial execution produces; only
// wall-clock time depends on Workers. Errors (including recovered panics)
// are captured per job, never propagated across jobs.
func (r Runner) Run(jobs []Job) []JobResult {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]JobResult, len(jobs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range jobs {
		job := jobs[i]
		res := &results[i]
		res.Group = job.Group
		if r.Store != nil && !r.Force {
			if rec, ok := r.Store.Lookup(job.Group, job.Name, job.Fingerprint); ok {
				res.Record = rec
				res.Cached = true
				r.notify(i, len(jobs), job, "cached")
				continue
			}
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r.notify(i, len(jobs), job, "running")
			runJob(job, res, r.WithSnapshots)
			if res.Err != nil {
				r.notify(i, len(jobs), job, "failed")
			} else {
				r.notify(i, len(jobs), job, "done")
			}
		}(i)
	}
	wg.Wait()
	if r.Store != nil {
		// Records enter the store in submission order so the files it
		// writes are deterministic for any worker count.
		for i := range results {
			if !results[i].Cached && results[i].Err == nil {
				r.Store.Put(results[i].Group, results[i].Record)
			}
		}
	}
	return results
}

// notify delivers one progress event, if a listener is installed.
func (r Runner) notify(index, total int, job Job, state string) {
	if r.Progress == nil {
		return
	}
	r.Progress(ProgressEvent{Index: index, Total: total, Group: job.Group, Name: job.Name, State: state})
}

// runJob executes one job, converting panics (the measure harnesses panic on
// simulator timeouts) into per-job errors so one bad point cannot take down
// a half-finished sweep.
func runJob(job Job, res *JobResult, withSnaps bool) {
	defer func() {
		if p := recover(); p != nil {
			res.Err = fmt.Errorf("sweep: job %s/%s panicked: %v", job.Group, job.Name, p)
		}
	}()
	var sink Sink
	if withSnaps {
		sink = func(label string, snap metrics.Snapshot) {
			res.Snaps = append(res.Snaps, LabeledSnapshot{Label: label, Snapshot: snap})
		}
	}
	out, err := job.Run(sink)
	if err != nil {
		res.Err = fmt.Errorf("sweep: job %s/%s: %w", job.Group, job.Name, err)
		return
	}
	res.Record = Record{
		Group:       job.Group,
		Name:        job.Name,
		Fingerprint: job.Fingerprint,
		Series:      job.Series,
		X:           job.X,
		Cycles:      out.Cycles,
		Sigma:       out.Sigma,
		Reps:        out.Reps,
		Derived:     out.Derived,
	}
}

// FirstError returns the first failed result, or nil.
func FirstError(results []JobResult) error {
	for i := range results {
		if results[i].Err != nil {
			return results[i].Err
		}
	}
	return nil
}

// Records extracts the records of the successful results, in order.
func Records(results []JobResult) []Record {
	out := make([]Record, 0, len(results))
	for i := range results {
		if results[i].Err == nil {
			out = append(out, results[i].Record)
		}
	}
	return out
}
