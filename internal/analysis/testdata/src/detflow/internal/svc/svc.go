// Package svc is the detflow fixture's service tier. The package sits
// outside the determinism analyzer's simulator scope, so the wall clocks and
// global rand below are legal HERE — but every function that reaches one
// earns a Tainted fact, and the sim/hot fixture packages prove the fact
// (with its witness chain) survives the cross-package export/import round
// trip through the driver's fact store.
package svc

import (
	"math/rand"
	"sort"
	"time"
)

// clock is the taint source at the bottom of the chains.
func clock() int64 {
	return time.Now().UnixNano()
}

// Stamp is tainted one hop above the source: its fact's chain names clock
// and the time.Now line.
func Stamp() int64 {
	return clock()
}

// Jitter is tainted directly by the global rand.
func Jitter() int {
	return rand.Intn(16)
}

// Keys is tainted by an order-sensitive map range (outer append, no sort).
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Spawn is tainted by an unwaived goroutine launch.
func Spawn(done chan<- struct{}) {
	go func() { done <- struct{}{} }()
}

// Sorted folds the map in sorted key order: clean.
func Sorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Seeded uses the approved explicit-seed idiom: clean.
func Seeded(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(16)
}

// Waived reads the clock behind a determinism waiver: the human certified
// the value never reaches simulated state, so no taint is recorded and
// callers stay clean.
func Waived() int64 {
	return time.Now().UnixNano() //skipit:ignore determinism fixture: value feeds a log line, never simulated state
}
