package litmus

import (
	"testing"

	"skipit/internal/isa"
	"skipit/internal/sim"
)

// contains reports whether outcome o appears in seen.
func contains(seen []Outcome, o Outcome) bool {
	k := o.key()
	for _, s := range seen {
		if s.key() == k {
			return true
		}
	}
	return false
}

func TestFig5aStoreOrderNotDurableOrder(t *testing.T) {
	// Fig. 5(a): x = 1; y = 1 with no writebacks — neither value is
	// guaranteed durable; after running to completion and crashing, both
	// are in fact still cached, so NVMM shows zeros.
	seen, err := Run(Test{
		Name: "fig5a",
		Programs: []*isa.Program{
			isa.NewBuilder().Store(0x1000, 1).Store(0x2000, 1).Fence().Build(),
		},
		Observe: []Observation{
			{Name: "x", Addr: 0x1000},
			{Name: "y", Addr: 0x2000},
		},
		Allowed: []Outcome{
			{"x": 0, "y": 0}, {"x": 1, "y": 0}, {"x": 0, "y": 1}, {"x": 1, "y": 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// With a tiny working set nothing evicts: the all-volatile outcome
	// must be observed.
	if !contains(seen, Outcome{"x": 0, "y": 0}) {
		t.Fatalf("never observed the all-volatile outcome; seen %v", seen)
	}
}

func TestFig5bWritebackOrdersOnlyItsOwnLine(t *testing.T) {
	// Fig. 5(b): x = 1; writeback(&x); y = 1; fence. x must be durable;
	// y must not be (it was never written back).
	seen, err := Run(Test{
		Name: "fig5b",
		Programs: []*isa.Program{
			isa.NewBuilder().
				Store(0x1000, 1).
				CboFlush(0x1000).
				Store(0x2000, 1).
				Fence().
				Build(),
		},
		Observe: []Observation{
			{Name: "x", Addr: 0x1000},
			{Name: "y", Addr: 0x2000},
		},
		Allowed: []Outcome{{"x": 1, "y": 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = seen
}

func TestFig5cWritebackPlusFenceIsDurable(t *testing.T) {
	// Fig. 5(c): x = 1; writeback(&x); fence; y = x. The loaded y must be
	// 1 and x must be durable by the fence.
	seen, err := Run(Test{
		Name: "fig5c",
		Programs: []*isa.Program{
			isa.NewBuilder().
				Store(0x1000, 1).
				CboFlush(0x1000).
				Fence().
				Load(0x1000).
				Fence().
				Build(),
		},
		Observe: []Observation{
			{Name: "x", Addr: 0x1000},
			{Name: "y", FromLoad: true, Core: 0, Instr: 3},
		},
		Allowed: []Outcome{{"x": 1, "y": 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = seen
}

func TestWritebacksUnorderedAcrossLines(t *testing.T) {
	// §4: writeback(c1); writeback(c2) imposes no cross-line durability
	// order; after crashing mid-flight either, both or neither may be
	// durable — but values are never corrupted.
	_, err := RunCrash(CrashTest{
		Name: "wb-unordered",
		Program: isa.NewBuilder().
			Store(0x1000, 1).
			Store(0x2000, 2).
			CboFlush(0x1000).
			CboFlush(0x2000).
			Fence().
			Build(),
		CrashCycles: []int64{10, 30, 50, 80, 120, 200, 400, 10_000},
		Observe: []Observation{
			{Name: "x", Addr: 0x1000},
			{Name: "y", Addr: 0x2000},
		},
		Allowed: []Outcome{
			{"x": 0, "y": 0}, {"x": 1, "y": 0}, {"x": 0, "y": 2}, {"x": 1, "y": 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCrashSweepEventuallyDurable(t *testing.T) {
	// Crashing after completion must always show both values.
	seen, err := RunCrash(CrashTest{
		Name: "wb-complete",
		Program: isa.NewBuilder().
			Store(0x1000, 1).
			Store(0x2000, 2).
			CboClean(0x1000).
			CboClean(0x2000).
			Fence().
			Build(),
		CrashCycles: []int64{1_000_000},
		Observe: []Observation{
			{Name: "x", Addr: 0x1000},
			{Name: "y", Addr: 0x2000},
		},
		Allowed: []Outcome{{"x": 1, "y": 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 {
		t.Fatalf("seen %v", seen)
	}
}

func TestMessagePassingWithWritebacks(t *testing.T) {
	// Two cores, durable message passing: core 0 publishes data then a
	// durable flag (each with flush+fence). Whatever the interleaving,
	// flag==durable implies data==durable.
	seen, err := Run(Test{
		Name: "mp-durable",
		Programs: []*isa.Program{
			isa.NewBuilder().
				Store(0x1000, 42). // data
				CboFlush(0x1000).
				Fence().
				Store(0x2000, 1). // flag
				CboFlush(0x2000).
				Fence().
				Build(),
			isa.NewBuilder(). // an innocent bystander doing reads
						Load(0x1000).
						Load(0x2000).
						Fence().
						Build(),
		},
		Observe: []Observation{
			{Name: "data", Addr: 0x1000},
			{Name: "flag", Addr: 0x2000},
		},
		Allowed: []Outcome{{"data": 42, "flag": 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = seen
}

func TestCoherentLoadSeesRemoteStore(t *testing.T) {
	// Coherence litmus: core 1's load of a line dirtied by core 0 must
	// return the new value once core 0's store is ordered first (core 1
	// is skewed to run after via a long nop prefix inside the suite's
	// skew variations; the outcome set admits both orders but never a
	// torn or stale third value).
	seen, err := Run(Test{
		Name: "coherent-load",
		Programs: []*isa.Program{
			isa.NewBuilder().Store(0x1000, 7).Fence().Build(),
			isa.NewBuilder().Load(0x1000).Fence().Build(),
		},
		Observe: []Observation{
			{Name: "r1", FromLoad: true, Core: 1, Instr: 0},
		},
		Allowed: []Outcome{{"r1": 0}, {"r1": 7}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Across skews both orders must actually be observable.
	if !contains(seen, Outcome{"r1": 7}) {
		t.Fatalf("remote store never observed; seen %v", seen)
	}
	if !contains(seen, Outcome{"r1": 0}) {
		t.Logf("note: load never ran before the remote store (seen %v)", seen)
	}
}

func TestRemoteFlushPersistsForeignDirtyLine(t *testing.T) {
	// §5.5 cross-core writeback: core 1 flushes a line dirty only in
	// core 0's cache; the flush+fence must make core 0's data durable.
	seen, err := Run(Test{
		Name: "remote-flush",
		Programs: []*isa.Program{
			isa.NewBuilder().Store(0x1000, 9).Fence().Build(),
			isa.NewBuilder().Nops(60).CboFlush(0x1000).Fence().Build(),
		},
		Observe: []Observation{{Name: "x", Addr: 0x1000}},
		Allowed: []Outcome{{"x": 9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = seen
}

func TestCleanKeepsLineFlushEvicts(t *testing.T) {
	// The residency difference behind Fig. 10, as a two-program litmus:
	// a re-read after clean is a fast hit; after flush it pays a refetch.
	lat := func(clean bool) int64 {
		b := isa.NewBuilder().Store(0x1000, 1).Cbo(0x1000, clean).Fence()
		idx := b.Mark()
		b.Load(0x1000)
		p := b.Build()
		seenSys := mustRunSingle(p)
		tm := seenSys.Cores[0].Timing(idx)
		return tm.CompletedAt - tm.IssuedAt
	}
	cleanLat, flushLat := lat(true), lat(false)
	if cleanLat >= flushLat {
		t.Fatalf("re-read after clean (%d) not faster than after flush (%d)", cleanLat, flushLat)
	}
}

// mustRunSingle runs a one-core program to completion.
func mustRunSingle(p *isa.Program) *sim.System {
	s := sim.New(sim.DefaultConfig(1))
	if _, err := s.Run([]*isa.Program{p}, 5_000_000); err != nil {
		panic(err)
	}
	return s
}

func TestFenceWithoutWritebackIsNotDurability(t *testing.T) {
	// A fence alone orders but persists nothing — the §2.6 pitfall.
	seen, err := Run(Test{
		Name: "fence-not-durable",
		Programs: []*isa.Program{
			isa.NewBuilder().Store(0x1000, 5).Fence().Fence().Fence().Build(),
		},
		Observe: []Observation{{Name: "x", Addr: 0x1000}},
		Allowed: []Outcome{{"x": 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = seen
}
