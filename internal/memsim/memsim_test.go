package memsim

import (
	"sync"
	"testing"
	"testing/quick"
)

func h2() *Hierarchy { return New(DefaultConfig(2)) }

func TestColdMissThenHit(t *testing.T) {
	h := h2()
	h.Access(0, 0x1000, false)
	cold := h.Clock(0)
	if cold < h.cfg.Mem {
		t.Fatalf("cold miss cost %.0f < memory latency", cold)
	}
	h.Access(0, 0x1000, false)
	if hit := h.Clock(0) - cold; hit != h.cfg.L1Hit {
		t.Fatalf("hit cost %.0f, want %.0f", hit, h.cfg.L1Hit)
	}
	st := h.Stats()
	if st.MemFills != 1 || st.L1Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSameLineDifferentWordsHit(t *testing.T) {
	h := h2()
	h.Access(0, 0x1000, false)
	before := h.Clock(0)
	h.Access(0, 0x1008, false)
	if got := h.Clock(0) - before; got != h.cfg.L1Hit {
		t.Fatalf("same-line access cost %.0f, want L1 hit", got)
	}
}

func TestWriteMakesLineDirty(t *testing.T) {
	h := h2()
	h.Access(0, 0x1000, true)
	if !h.DirtyAnywhere(0x1000) {
		t.Fatal("written line not dirty")
	}
	if h.DirtyAnywhere(0x2000) {
		t.Fatal("unwritten line dirty")
	}
}

func TestCoherenceMissCostsMoreThanL2Hit(t *testing.T) {
	h := h2()
	h.Access(0, 0x1000, true) // dirty in thread 0
	h.Access(1, 0x1000, false)
	remote := h.Clock(1)

	h.Access(0, 0x3000, false) // clean, shared through L2
	h.Access(1, 0x3000, false)
	sharedClean := h.Clock(1) - remote
	if remote <= sharedClean {
		t.Fatalf("dirty remote fetch (%.0f) not pricier than clean L2 hit (%.0f)", remote, sharedClean)
	}
	if h.Stats().CoherenceMisses != 1 {
		t.Fatalf("coherence misses = %d, want 1", h.Stats().CoherenceMisses)
	}
}

func TestWriteInvalidatesRemoteCopy(t *testing.T) {
	h := h2()
	h.Access(0, 0x1000, false)
	h.Access(1, 0x1000, true) // invalidates thread 0's copy
	c0 := h.Clock(0)
	h.Access(0, 0x1000, false) // must not be an L1 hit
	if cost := h.Clock(0) - c0; cost <= h.cfg.L1Hit {
		t.Fatalf("read after remote write cost %.0f; copy should have been invalidated", cost)
	}
}

func TestFlushPersistsAndSkipBit(t *testing.T) {
	h := h2()
	h.Access(0, 0x1000, true)
	h.Flush(0, 0x1000, true, true) // CBO.CLEAN with Skip It
	if h.DirtyAnywhere(0x1000) {
		t.Fatal("line dirty after flush")
	}
	if h.Stats().FlushWrites != 1 {
		t.Fatal("dirty flush did not write memory")
	}
	before := h.Clock(0)
	h.Flush(0, 0x1000, true, true) // redundant: dropped at L1
	if cost := h.Clock(0) - before; cost != h.cfg.CboPipeline {
		t.Fatalf("redundant flush cost %.0f, want pipeline-only %.0f", cost, h.cfg.CboPipeline)
	}
	if h.Stats().FlushDropsL1 != 1 {
		t.Fatal("redundant flush not dropped by skip bit")
	}
}

func TestFlushWithoutSkipItGoesToL2(t *testing.T) {
	h := h2()
	h.Access(0, 0x1000, true)
	h.Flush(0, 0x1000, true, false)
	before := h.Clock(0)
	h.Flush(0, 0x1000, true, false) // redundant: resolved at L2
	cost := h.Clock(0) - before
	if cost != h.cfg.CboPipeline+h.cfg.FlushL2 {
		t.Fatalf("redundant naive flush cost %.0f, want %.0f", cost, h.cfg.CboPipeline+h.cfg.FlushL2)
	}
	if h.Stats().FlushSkipsL2 != 1 {
		t.Fatal("redundant naive flush not counted as L2 skip")
	}
}

func TestCboFlushInvalidates(t *testing.T) {
	h := h2()
	h.Access(0, 0x1000, true)
	h.Flush(0, 0x1000, false, true) // CBO.FLUSH
	c := h.Clock(0)
	h.Access(0, 0x1000, false)
	if cost := h.Clock(0) - c; cost <= h.cfg.L1Hit {
		t.Fatal("flushed (invalidated) line still hit")
	}
}

func TestCleanKeepsLineResident(t *testing.T) {
	h := h2()
	h.Access(0, 0x1000, true)
	h.Flush(0, 0x1000, true, true)
	c := h.Clock(0)
	h.Access(0, 0x1000, false)
	if cost := h.Clock(0) - c; cost != h.cfg.L1Hit {
		t.Fatalf("re-read after clean cost %.0f, want L1 hit", cost)
	}
}

func TestRemoteDirtyFlushWritesBack(t *testing.T) {
	// §5.5: a flush by one thread must persist data dirty in another
	// thread's cache.
	h := h2()
	h.Access(0, 0x1000, true)
	h.Flush(1, 0x1000, true, true)
	if h.DirtyAnywhere(0x1000) {
		t.Fatal("remote dirty data survived a flush")
	}
	if h.Stats().FlushWrites != 1 {
		t.Fatal("remote dirty flush did not reach memory")
	}
}

func TestGrantDataDirtyClearsSkip(t *testing.T) {
	// A line dirty in L2 must install with skip unset (§6.1), so a flush
	// is not incorrectly dropped.
	h := h2()
	h.Access(0, 0x1000, true)  // dirty in T0
	h.Access(1, 0x1000, false) // T1 fetch: dirty moves to L2
	// T1's copy must not claim persistence.
	before := h.Clock(1)
	h.Flush(1, 0x1000, true, true)
	cost := h.Clock(1) - before
	if cost < h.cfg.FlushMem {
		t.Fatalf("flush of L2-dirty line cost %.0f; must have written back", cost)
	}
	if h.DirtyAnywhere(0x1000) {
		t.Fatal("line still dirty after flush")
	}
}

func TestCapacityEviction(t *testing.T) {
	h := h2()
	// Touch 3x the L1 capacity; early lines must be evicted.
	capacity := uint64(h.cfg.L1Sets * h.cfg.L1Ways)
	for i := uint64(0); i < 3*capacity; i++ {
		h.Access(0, i*64, false)
	}
	c := h.Clock(0)
	h.Access(0, 0, false)
	if cost := h.Clock(0) - c; cost == h.cfg.L1Hit {
		t.Fatal("line survived 3x-capacity sweep; eviction broken")
	}
}

func TestDirtyEvictionLandsInL2(t *testing.T) {
	h := h2()
	h.Access(0, 0, true)
	// Evict line 0 from L1 with a same-set sweep (same L1 set every
	// L1Sets lines).
	stride := uint64(h.cfg.L1Sets) * 64
	for i := uint64(1); i <= uint64(h.cfg.L1Ways); i++ {
		h.Access(0, i*stride, false)
	}
	if !h.DirtyAnywhere(0) {
		t.Fatal("dirty data lost on L1 eviction")
	}
}

func TestFenceChargesCost(t *testing.T) {
	h := h2()
	h.Fence(0)
	if h.Clock(0) != h.cfg.Fence {
		t.Fatalf("fence cost %.0f", h.Clock(0))
	}
	if h.Clock(1) != 0 {
		t.Fatal("fence charged the wrong thread")
	}
}

func TestMaxSecondsUsesSlowestThread(t *testing.T) {
	h := h2()
	h.AddCycles(0, 50e6) // one virtual second at 50 MHz
	h.AddCycles(1, 25e6)
	if got := h.MaxSeconds(); got < 0.99 || got > 1.01 {
		t.Fatalf("MaxSeconds = %f, want ~1.0", got)
	}
}

func TestResetClocksKeepsCacheState(t *testing.T) {
	h := h2()
	h.Access(0, 0x1000, false)
	h.ResetClocks()
	if h.Clock(0) != 0 {
		t.Fatal("clock not reset")
	}
	h.Access(0, 0x1000, false)
	if h.Clock(0) != h.cfg.L1Hit {
		t.Fatal("cache state lost on clock reset")
	}
}

func TestAllocatorAlignmentAndNoOverlap(t *testing.T) {
	a := NewAllocator(1 << 30)
	seen := map[uint64]bool{}
	prevEnd := uint64(0)
	for i := 0; i < 1000; i++ {
		size := uint64(8 + (i%7)*8)
		addr := a.Alloc(size)
		if addr%8 != 0 {
			t.Fatalf("unaligned alloc %#x", addr)
		}
		if addr < prevEnd {
			t.Fatalf("overlapping alloc %#x < %#x", addr, prevEnd)
		}
		if size <= 64 && addr/64 != (addr+size-1)/64 {
			t.Fatalf("object at %#x size %d straddles a line", addr, size)
		}
		prevEnd = addr + size
		if seen[addr] {
			t.Fatalf("duplicate address %#x", addr)
		}
		seen[addr] = true
	}
}

func TestAllocatorConcurrent(t *testing.T) {
	a := NewAllocator(0)
	var mu sync.Mutex
	seen := map[uint64]bool{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]uint64, 0, 500)
			for i := 0; i < 500; i++ {
				local = append(local, a.Alloc(24))
			}
			mu.Lock()
			for _, addr := range local {
				if seen[addr] {
					t.Errorf("duplicate concurrent alloc %#x", addr)
				}
				seen[addr] = true
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
}

// Property: flush-elision safety — whenever the skip bit would drop a flush,
// the line has no dirty data anywhere.
func TestSkipDropImpliesNotDirtyProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		h := h2()
		lines := []uint64{0, 64, 128, 4096, 8192}
		for _, op := range ops {
			tid := int(op) % 2
			addr := lines[int(op>>1)%len(lines)]
			switch (op >> 4) % 4 {
			case 0:
				h.Access(tid, addr, false)
			case 1:
				h.Access(tid, addr, true)
			case 2:
				h.Flush(tid, addr, true, true)
			case 3:
				h.Flush(tid, addr, false, true)
			}
			// Check the §6.2 predicate for every line and thread.
			for _, a := range lines {
				for t2 := 0; t2 < 2; t2++ {
					l := h.findL1(t2, h.line(a))
					if l != nil && l.valid && !l.dirty && l.skip && h.DirtyAnywhere(a) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFourThreadCoherenceRotation(t *testing.T) {
	h := New(DefaultConfig(4))
	// Each thread in turn writes the line; every successor must pay a
	// non-hit cost (the previous owner's copy is invalidated).
	for tid := 0; tid < 4; tid++ {
		before := h.Clock(tid)
		h.Access(tid, 0x1000, true)
		if cost := h.Clock(tid) - before; tid > 0 && cost <= h.cfg.L1Hit {
			t.Fatalf("thread %d wrote a migratory line at hit cost %.0f", tid, cost)
		}
	}
	// Exactly one dirty copy exists.
	holders := 0
	for tid := 0; tid < 4; tid++ {
		if l := h.findL1(tid, h.line(0x1000)); l != nil && l.valid {
			holders++
			if !l.dirty {
				t.Fatal("final owner not dirty")
			}
		}
	}
	if holders != 1 {
		t.Fatalf("%d L1 copies of a migratory write line, want 1", holders)
	}
}

func TestL2EvictionInvalidatesL1Copies(t *testing.T) {
	h := New(DefaultConfig(1))
	h.Access(0, 0, false)
	// Sweep addresses that all map to L2 set 0 until line 0 is evicted
	// from L2; inclusion requires the L1 copy to go too.
	stride := uint64(h.cfg.L2Sets) * 64
	for i := uint64(1); i <= uint64(h.cfg.L2Ways); i++ {
		h.Access(0, i*stride, false)
	}
	if l := h.findL1(0, 0); l != nil && l.valid {
		t.Fatal("L1 kept a line the inclusive L2 evicted")
	}
}

func TestFlushOfL1DirtyUnknownToL2(t *testing.T) {
	// Dirty data exists only in an L1 (never evicted): a flush must still
	// count as a memory writeback.
	h := New(DefaultConfig(2))
	h.Access(0, 0x4000, true)
	h.Flush(0, 0x4000, false, true)
	if h.Stats().FlushWrites != 1 {
		t.Fatalf("FlushWrites = %d, want 1", h.Stats().FlushWrites)
	}
	if h.DirtyAnywhere(0x4000) {
		t.Fatal("dirty after flush")
	}
}
