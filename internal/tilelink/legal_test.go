package tilelink

import "testing"

func TestGrowLegalFrom(t *testing.T) {
	cases := []struct {
		grow Grow
		from Perm
		want bool
	}{
		{GrowNtoB, PermNone, true},
		{GrowNtoT, PermNone, true},
		{GrowBtoT, PermBranch, true},
		{GrowNtoB, PermBranch, false},
		{GrowNtoT, PermTrunk, false},
		{GrowBtoT, PermNone, false},
		{GrowBtoT, PermTrunk, false},
	}
	for _, c := range cases {
		if got := c.grow.LegalFrom(c.from); got != c.want {
			t.Errorf("%v.LegalFrom(%v) = %v, want %v", c.grow, c.from, got, c.want)
		}
	}
}

func TestGrowFor(t *testing.T) {
	cases := []struct {
		cur, target Perm
		want        Grow
		ok          bool
	}{
		{PermNone, PermBranch, GrowNtoB, true},
		{PermNone, PermTrunk, GrowNtoT, true},
		{PermBranch, PermTrunk, GrowBtoT, true},
		{PermBranch, PermBranch, 0, false},
		{PermTrunk, PermTrunk, 0, false},
		{PermTrunk, PermBranch, 0, false}, // downgrade: channel C, not A
		{PermBranch, PermNone, 0, false},
		{PermNone, PermNone, 0, false},
	}
	for _, c := range cases {
		got, ok := GrowFor(c.cur, c.target)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("GrowFor(%v, %v) = %v, %v; want %v, %v", c.cur, c.target, got, ok, c.want, c.ok)
		}
	}
}

func TestProbeResp(t *testing.T) {
	cases := []struct {
		cur   Perm
		dirty bool
		cap   Cap
		op    Opcode
		sh    Shrink
		to    Perm
		data  bool
	}{
		// Dirty Trunk demoted below Trunk must surrender the data.
		{PermTrunk, true, CapToN, OpProbeAckData, ShrinkTtoN, PermNone, true},
		{PermTrunk, true, CapToB, OpProbeAckData, ShrinkTtoB, PermBranch, true},
		// Clean Trunk demotes silently.
		{PermTrunk, false, CapToN, OpProbeAck, ShrinkTtoN, PermNone, false},
		{PermTrunk, false, CapToB, OpProbeAck, ShrinkTtoB, PermBranch, false},
		// A cap at or above the held level is a report, not a demotion.
		{PermTrunk, true, CapToT, OpProbeAck, ShrinkTtoT, PermTrunk, false},
		{PermBranch, false, CapToB, OpProbeAck, ShrinkBtoB, PermBranch, false},
		{PermBranch, false, CapToT, OpProbeAck, ShrinkBtoB, PermBranch, false},
		// Branch and None holders never carry data.
		{PermBranch, false, CapToN, OpProbeAck, ShrinkBtoN, PermNone, false},
		{PermNone, false, CapToN, OpProbeAck, ShrinkNtoN, PermNone, false},
		{PermNone, false, CapToB, OpProbeAck, ShrinkNtoN, PermNone, false},
	}
	for _, c := range cases {
		op, sh, to, data := ProbeResp(c.cur, c.dirty, c.cap)
		if op != c.op || sh != c.sh || to != c.to || data != c.data {
			t.Errorf("ProbeResp(%v, dirty=%v, %v) = %v, %v, %v, %v; want %v, %v, %v, %v",
				c.cur, c.dirty, c.cap, op, sh, to, data, c.op, c.sh, c.to, c.data)
		}
	}
}

func TestReleaseFor(t *testing.T) {
	cases := []struct {
		cur, target Perm
		dirty       bool
		op          Opcode
		sh          Shrink
		ok          bool
	}{
		{PermTrunk, PermNone, true, OpReleaseData, ShrinkTtoN, true},
		{PermTrunk, PermNone, false, OpRelease, ShrinkTtoN, true},
		{PermTrunk, PermBranch, true, OpReleaseData, ShrinkTtoB, true},
		{PermBranch, PermNone, false, OpRelease, ShrinkBtoN, true},
		{PermNone, PermNone, false, 0, 0, false},
		{PermBranch, PermBranch, false, 0, 0, false},
		{PermBranch, PermTrunk, false, 0, 0, false}, // upgrade: channel A
	}
	for _, c := range cases {
		op, sh, ok := ReleaseFor(c.cur, c.target, c.dirty)
		if ok != c.ok || (ok && (op != c.op || sh != c.sh)) {
			t.Errorf("ReleaseFor(%v, %v, dirty=%v) = %v, %v, %v; want %v, %v, %v",
				c.cur, c.target, c.dirty, op, sh, ok, c.op, c.sh, c.ok)
		}
	}
}

func TestGrantCap(t *testing.T) {
	if GrantCap(GrowNtoB) != CapToB {
		t.Error("GrowNtoB must be granted toB")
	}
	if GrantCap(GrowNtoT) != CapToT || GrantCap(GrowBtoT) != CapToT {
		t.Error("exclusive growth must be granted toT")
	}
}
