// Package nextevent implements the skipit-vet analyzer guarding the
// fast-forward clock's completeness contract (internal/sim/fastforward.go):
//
//  1. In the component packages (boom, l1, l2, mem, tilelink, core), every
//     type that exposes a cycle hook — a Tick method — must also implement
//     NextEvent(int64) int64. A component without NextEvent cannot tell the
//     clock when it next acts, so every idle window containing it would have
//     to be single-stepped; worse, a conservative fold that ignores it would
//     skip cycles in which it acts, silently breaking the byte-identical
//     on/off guarantee.
//  2. In internal/sim, every System field whose type implements NextEvent
//     must be folded into (*System).nextEventCycle. Adding a component to
//     the SoC without folding it defeats fast-forward for exactly the
//     cycles that component needed — the class of bug that only shows up as
//     an A/B divergence thousands of cycles later.
package nextevent

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"skipit/internal/analysis/suppress"
)

var Analyzer = &analysis.Analyzer{
	Name: "nextevent",
	Doc: "check that every ticking component implements NextEvent and is folded into the fast-forward clock\n\n" +
		"A Step/Tick type without NextEvent, or a sim.System field left out of nextEventCycle, silently defeats fast-forward.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// componentPkgs lists the packages whose types are clocked components.
var componentPkgs = "internal/boom,internal/l1,internal/l2,internal/mem,internal/tilelink,internal/core"

func init() {
	Analyzer.Flags.StringVar(&componentPkgs, "pkgs", componentPkgs, "comma-separated import-path fragments of component packages")
}

func matches(path, list string) bool {
	for _, frag := range strings.Split(list, ",") {
		frag = strings.TrimSpace(frag)
		if frag == "" {
			continue
		}
		if path == frag || strings.HasSuffix(path, "/"+frag) || strings.Contains(path, "/"+frag+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (interface{}, error) {
	suppress.Apply(pass)
	if matches(pass.Pkg.Path(), componentPkgs) {
		checkComponents(pass)
	}
	if matches(pass.Pkg.Path(), "internal/sim") {
		checkFold(pass)
	}
	return nil, nil
}

// hasNextEvent reports whether *T implements NextEvent(int64) int64.
func hasNextEvent(t types.Type) bool {
	if named, ok := t.(*types.Named); ok {
		t = types.NewPointer(named)
	}
	m, _, _ := types.LookupFieldOrMethod(t, true, nil, "NextEvent")
	fn, ok := m.(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	isInt64 := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Kind() == types.Int64
	}
	return isInt64(sig.Params().At(0).Type()) && isInt64(sig.Results().At(0).Type())
}

// checkComponents enforces rule 1: Tick implies NextEvent.
func checkComponents(pass *analysis.Pass) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if fn.Recv == nil || fn.Name.Name != "Tick" {
			return
		}
		obj := pass.TypesInfo.Defs[fn.Name]
		if obj == nil {
			return
		}
		recv := obj.(*types.Func).Type().(*types.Signature).Recv()
		if recv == nil {
			return
		}
		rt := recv.Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		named, ok := rt.(*types.Named)
		if !ok {
			return
		}
		if !hasNextEvent(named) {
			pass.Report(analysis.Diagnostic{
				Pos: fn.Pos(),
				Message: fmt.Sprintf(
					"%s has a Tick method but no NextEvent(int64) int64: the fast-forward clock cannot see this component and may skip cycles in which it acts",
					named.Obj().Name()),
			})
		}
	})
}

// checkFold enforces rule 2: every NextEvent-bearing System field is
// consulted by (*System).nextEventCycle.
func checkFold(pass *analysis.Pass) {
	scope := pass.Pkg.Scope()
	sysObj, ok := scope.Lookup("System").(*types.TypeName)
	if !ok {
		return
	}
	sysStruct, ok := sysObj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}

	// Locate the nextEventCycle method body.
	var foldBody *ast.BlockStmt
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if fn.Recv != nil && fn.Name.Name == "nextEventCycle" && fn.Body != nil {
			foldBody = fn.Body
		}
	})

	// Fields needing a fold: type (after pointer/slice/array unwrapping)
	// implements NextEvent.
	type needed struct {
		field *types.Var
	}
	var need []needed
	for i := 0; i < sysStruct.NumFields(); i++ {
		f := sysStruct.Field(i)
		t := f.Type()
		for {
			switch u := t.(type) {
			case *types.Pointer:
				t = u.Elem()
				continue
			case *types.Slice:
				t = u.Elem()
				continue
			case *types.Array:
				t = u.Elem()
				continue
			}
			break
		}
		if hasNextEvent(t) {
			need = append(need, needed{field: f})
		}
	}
	if len(need) == 0 {
		return
	}

	if foldBody == nil {
		for _, n := range need {
			pass.Report(analysis.Diagnostic{
				Pos: n.field.Pos(),
				Message: fmt.Sprintf(
					"System field %s implements NextEvent but the package has no (*System).nextEventCycle to fold it into", n.field.Name()),
			})
		}
		return
	}

	// Which fields does the fold consult?
	folded := make(map[types.Object]bool)
	ast.Inspect(foldBody, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if obj := pass.TypesInfo.ObjectOf(sel.Sel); obj != nil {
			folded[obj] = true
		}
		return true
	})

	for _, n := range need {
		if !folded[types.Object(n.field)] {
			pass.Report(analysis.Diagnostic{
				Pos: n.field.Pos(),
				Message: fmt.Sprintf(
					"System field %s implements NextEvent but is not folded into nextEventCycle: fast-forward may skip cycles in which it acts", n.field.Name()),
			})
		}
	}
}
