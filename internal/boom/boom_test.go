package boom

import (
	"testing"

	"skipit/internal/isa"
	"skipit/internal/l1"
	"skipit/internal/l2"
	"skipit/internal/mem"
	"skipit/internal/tilelink"
)

// stack wires one core to a private L1, an L2 and memory — the minimal
// machine needed to observe the LSU rules without importing package sim.
type stack struct {
	core *Core
	dc   *l1.DCache
	l2c  *l2.Cache
	m    *mem.Memory
	now  int64
}

func newStack(t *testing.T) *stack {
	t.Helper()
	port := tilelink.NewClientPort("t", 16, 64, 1)
	dc := l1.New(l1.DefaultConfig(0), port)
	m := mem.New(mem.DefaultConfig())
	l2c := l2.New(l2.DefaultConfig(1), []*tilelink.ClientPort{port}, m)
	return &stack{core: New(DefaultConfig(), 0, dc), dc: dc, l2c: l2c, m: m}
}

func (s *stack) run(t *testing.T, p *isa.Program, limit int64) {
	t.Helper()
	s.core.SetProgram(p)
	for i := int64(0); i < limit; i++ {
		s.m.Tick(s.now)
		s.l2c.Tick(s.now)
		s.dc.Tick(s.now)
		s.core.Tick(s.now)
		s.now++
		if s.core.Done() {
			return
		}
	}
	t.Fatalf("program did not finish in %d cycles", limit)
}

func TestEmptyProgramIsDone(t *testing.T) {
	s := newStack(t)
	s.core.SetProgram(isa.NewBuilder().Build())
	if !s.core.Done() {
		t.Fatal("empty program not done")
	}
}

func TestInOrderCommit(t *testing.T) {
	s := newStack(t)
	p := isa.NewBuilder().
		Store(0x1000, 1). // cold miss: slow
		Nop().
		Nop().
		Build()
	s.run(t, p, 100_000)
	tm := s.core.Timings()
	for i := 1; i < len(tm); i++ {
		if tm[i].CommittedAt < tm[i-1].CommittedAt {
			t.Fatalf("instruction %d committed at %d before %d's %d",
				i, tm[i].CommittedAt, i-1, tm[i-1].CommittedAt)
		}
	}
	// The nops complete at dispatch but must commit after the store.
	if tm[1].CompletedAt >= tm[1].CommittedAt && tm[0].CommittedAt > tm[1].CompletedAt {
		// completed early, committed late: expected
	} else if tm[1].CommittedAt < tm[0].CommittedAt {
		t.Fatal("nop committed before the older store")
	}
}

func TestStoresFireInProgramOrder(t *testing.T) {
	s := newStack(t)
	p := isa.NewBuilder().
		Store(0x1000, 1).
		Store(0x2000, 2).
		Store(0x3000, 3).
		Build()
	s.run(t, p, 100_000)
	tm := s.core.Timings()
	if !(tm[0].IssuedAt < tm[1].IssuedAt && tm[1].IssuedAt < tm[2].IssuedAt) {
		t.Fatalf("stores issued out of order: %d %d %d",
			tm[0].IssuedAt, tm[1].IssuedAt, tm[2].IssuedAt)
	}
	// §3.2: a store fires only from the ROB head, i.e. after the previous
	// store completed.
	if tm[1].IssuedAt < tm[0].CompletedAt {
		t.Fatal("second store fired before the first completed")
	}
}

func TestLoadsCompleteOutOfOrder(t *testing.T) {
	s := newStack(t)
	// Warm the load's line so it can complete while the older store's
	// miss is still outstanding.
	warm := isa.NewBuilder().Load(0x5000).Fence().Build()
	s.run(t, warm, 100_000)
	p := isa.NewBuilder().
		Load(0x8000). // cold miss: busy for a memory round trip
		Load(0x5000). // warm: independent, should complete early
		Build()
	s.run(t, p, 100_000)
	tm := s.core.Timings()
	if tm[1].CompletedAt >= tm[0].CompletedAt {
		t.Fatalf("independent warm load (done %d) did not overtake the cold miss (done %d)",
			tm[1].CompletedAt, tm[0].CompletedAt)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	s := newStack(t)
	p := isa.NewBuilder().
		Store(0x1000, 321).
		Load(0x1000).
		Build()
	s.run(t, p, 100_000)
	tm := s.core.Timings()
	if tm[1].LoadValue != 321 {
		t.Fatalf("forwarded value %d, want 321", tm[1].LoadValue)
	}
	// Forwarding never touches the cache: IssuedAt stays -1.
	if tm[1].IssuedAt != -1 {
		t.Fatal("forwarded load was fired into the data cache")
	}
}

func TestForwardingPicksLatestOlderStore(t *testing.T) {
	s := newStack(t)
	p := isa.NewBuilder().
		Store(0x1000, 1).
		Store(0x1000, 2).
		Load(0x1000).
		Build()
	s.run(t, p, 100_000)
	if got := s.core.Timing(2).LoadValue; got != 2 {
		t.Fatalf("forwarded %d, want latest older store's 2", got)
	}
}

func TestFenceBlocksYoungerLoads(t *testing.T) {
	s := newStack(t)
	warm := isa.NewBuilder().Load(0x5000).Fence().Build()
	s.run(t, warm, 100_000)
	p := isa.NewBuilder().
		Store(0x8000, 1). // slow miss
		Fence().
		Load(0x5000). // warm, but must wait for the fence
		Build()
	s.run(t, p, 100_000)
	tm := s.core.Timings()
	if tm[2].CompletedAt <= tm[1].CompletedAt {
		t.Fatalf("load (done %d) overtook the fence (done %d)", tm[2].CompletedAt, tm[1].CompletedAt)
	}
}

func TestLoadWaitsForOlderSameLineCbo(t *testing.T) {
	// §5.3: LDQ requests dependent on a CBO.X proceed only once it is
	// buffered.
	s := newStack(t)
	p := isa.NewBuilder().
		Store(0x1000, 5).
		CboClean(0x1000).
		Load(0x1000).
		Build()
	s.run(t, p, 100_000)
	tm := s.core.Timings()
	if tm[2].CompletedAt <= tm[1].CompletedAt {
		t.Fatalf("dependent load (done %d) ran before the CBO was buffered (done %d)",
			tm[2].CompletedAt, tm[1].CompletedAt)
	}
	if tm[2].LoadValue != 5 {
		t.Fatalf("load after clean = %d, want 5", tm[2].LoadValue)
	}
}

func TestFenceWaitsForFlushCounter(t *testing.T) {
	s := newStack(t)
	p := isa.NewBuilder().
		Store(0x1000, 1).
		CboFlush(0x1000).
		Fence().
		Build()
	s.run(t, p, 100_000)
	tm := s.core.Timings()
	// The fence completes only after the writeback's RootReleaseAck,
	// i.e. far later than the CBO's own buffering.
	if tm[2].CompletedAt-tm[1].CompletedAt < 10 {
		t.Fatalf("fence (done %d) too close to CBO buffering (done %d)",
			tm[2].CompletedAt, tm[1].CompletedAt)
	}
	if got := s.m.PeekUint64(0x1000); got != 1 {
		t.Fatal("fence completed without durable data")
	}
}

func TestNackRetryEventuallySucceeds(t *testing.T) {
	// Hammer one line with CBO.X so retries occur (FSHR-busy nacks).
	s := newStack(t)
	b := isa.NewBuilder().Store(0x1000, 1)
	for i := 0; i < 20; i++ {
		b.CboClean(0x1000)
	}
	b.Fence()
	s.run(t, b.Build(), 500_000)
	totalNacks := 0
	for _, tm := range s.core.Timings() {
		totalNacks += tm.Nacks
	}
	if totalNacks == 0 {
		t.Log("no nacks observed (acceptable but unexpected); retry path unexercised")
	}
}

func TestROBCapacityBoundsDispatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ROBEntries = 4
	port := tilelink.NewClientPort("t", 16, 64, 1)
	dc := l1.New(l1.DefaultConfig(0), port)
	m := mem.New(mem.DefaultConfig())
	l2c := l2.New(l2.DefaultConfig(1), []*tilelink.ClientPort{port}, m)
	core := New(cfg, 0, dc)

	b := isa.NewBuilder().Load(0x1000) // cold load: busy until data returns
	for i := 0; i < 10; i++ {
		b.Nop()
	}
	core.SetProgram(b.Build())
	var now int64
	for i := 0; i < 20; i++ {
		m.Tick(now)
		l2c.Tick(now)
		dc.Tick(now)
		core.Tick(now)
		now++
	}
	tm := core.Timings()
	dispatched := 0
	for _, x := range tm {
		if x.DispatchedAt >= 0 {
			dispatched++
		}
	}
	if dispatched > cfg.ROBEntries {
		t.Fatalf("%d instructions dispatched with a %d-entry ROB", dispatched, cfg.ROBEntries)
	}
	for now < 100_000 && !core.Done() {
		m.Tick(now)
		l2c.Tick(now)
		dc.Tick(now)
		core.Tick(now)
		now++
	}
	if !core.Done() {
		t.Fatal("program stuck")
	}
}

func TestTimingsRecordLifecycle(t *testing.T) {
	s := newStack(t)
	p := isa.NewBuilder().Store(0x1000, 1).Load(0x1000).Fence().Build()
	s.run(t, p, 100_000)
	for i, tm := range s.core.Timings() {
		if tm.DispatchedAt < 0 || tm.CompletedAt < 0 || tm.CommittedAt < 0 {
			t.Fatalf("instruction %d has incomplete lifecycle: %+v", i, tm)
		}
		if tm.CompletedAt > tm.CommittedAt {
			t.Fatalf("instruction %d committed (%d) before completing (%d)", i, tm.CommittedAt, tm.CompletedAt)
		}
		if tm.DispatchedAt > tm.CompletedAt {
			t.Fatalf("instruction %d completed (%d) before dispatch (%d)", i, tm.CompletedAt, tm.DispatchedAt)
		}
	}
}

func TestLDQCapacityBoundsDispatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LDQEntries = 2
	cfg.ROBEntries = 64
	port := tilelink.NewClientPort("t", 16, 64, 1)
	dc := l1.New(l1.DefaultConfig(0), port)
	m := mem.New(mem.DefaultConfig())
	l2c := l2.New(l2.DefaultConfig(1), []*tilelink.ClientPort{port}, m)
	core := New(cfg, 0, dc)

	b := isa.NewBuilder()
	for i := 0; i < 6; i++ {
		b.Load(uint64(i) * 0x10000) // six cold loads, all long-latency
	}
	core.SetProgram(b.Build())
	var now int64
	for i := 0; i < 10; i++ {
		m.Tick(now)
		l2c.Tick(now)
		dc.Tick(now)
		core.Tick(now)
		now++
	}
	dispatched := 0
	for _, tm := range core.Timings() {
		if tm.DispatchedAt >= 0 {
			dispatched++
		}
	}
	if dispatched > cfg.LDQEntries {
		t.Fatalf("%d loads dispatched with a %d-entry LDQ", dispatched, cfg.LDQEntries)
	}
	for now < 100_000 && !core.Done() {
		m.Tick(now)
		l2c.Tick(now)
		dc.Tick(now)
		core.Tick(now)
		now++
	}
	if !core.Done() {
		t.Fatal("program stuck")
	}
}

func TestSTQCapacityBoundsDispatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.STQEntries = 2
	port := tilelink.NewClientPort("t", 16, 64, 1)
	dc := l1.New(l1.DefaultConfig(0), port)
	m := mem.New(mem.DefaultConfig())
	l2c := l2.New(l2.DefaultConfig(1), []*tilelink.ClientPort{port}, m)
	core := New(cfg, 0, dc)

	b := isa.NewBuilder().Load(0x90000) // cold load blocks the ROB head
	for i := 0; i < 6; i++ {
		b.Store(uint64(i)*0x10000, 1)
	}
	core.SetProgram(b.Build())
	var now int64
	for i := 0; i < 10; i++ {
		m.Tick(now)
		l2c.Tick(now)
		dc.Tick(now)
		core.Tick(now)
		now++
	}
	stqDispatched := 0
	for i, tm := range core.Timings() {
		if i > 0 && tm.DispatchedAt >= 0 {
			stqDispatched++
		}
	}
	if stqDispatched > cfg.STQEntries {
		t.Fatalf("%d stores dispatched with a %d-entry STQ", stqDispatched, cfg.STQEntries)
	}
}
