package commercial

import (
	"testing"
	"testing/quick"
)

func model(t *testing.T, vendor, instr string) Model {
	t.Helper()
	m, ok := ByName(vendor, instr)
	if !ok {
		t.Fatalf("missing model %s %s", vendor, instr)
	}
	return m
}

func TestAllEightModelsPresent(t *testing.T) {
	if got := len(Models()); got != 8 {
		t.Fatalf("Models() returned %d entries, want 8", got)
	}
	for _, pair := range [][2]string{
		{"Intel", "clflush"}, {"Intel", "clflushopt"}, {"Intel", "clwb"},
		{"AMD", "clflush"}, {"AMD", "clflushopt"}, {"AMD", "clwb"},
		{"Graviton3", "dccivac"}, {"Graviton3", "dccvac"},
	} {
		if _, ok := ByName(pair[0], pair[1]); !ok {
			t.Errorf("ByName(%s, %s) missing", pair[0], pair[1])
		}
	}
}

// Property: latency is monotonically non-decreasing in size for every model
// and thread count.
func TestLatencyMonotoneInSize(t *testing.T) {
	f := func(kib uint8, threads uint8) bool {
		size := (uint64(kib%9) + 1) * 1024
		th := 1 << (threads % 4)
		for _, m := range Models() {
			if m.Latency(size*2, th) < m.Latency(size, th) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: more threads never increase latency for large non-serializing
// sweeps (above the sync-overhead floor).
func TestThreadsHelpLargeSweeps(t *testing.T) {
	for _, m := range Models() {
		l1 := m.Latency(32<<10, 1)
		l8 := m.Latency(32<<10, 8)
		if m.Serializing {
			continue // serializing: per-thread chains still shrink, checked below
		}
		if l8 > l1 {
			t.Errorf("%s %s: 8 threads slower (%f) than 1 (%f) at 32 KiB", m.Vendor, m.Instr, l8, l1)
		}
	}
}

func TestIntelClflushDivergesAt4KiBSingleThread(t *testing.T) {
	// Fig. 11: Intel clflush is significantly worse at 4 KiB and above.
	flush := model(t, "Intel", "clflush")
	opt := model(t, "Intel", "clflushopt")
	if r := flush.Latency(4096, 1) / opt.Latency(4096, 1); r < 3 {
		t.Errorf("clflush/clflushopt at 4 KiB = %.1fx, want >= 3x divergence", r)
	}
	if r := flush.Latency(64, 1) / opt.Latency(64, 1); r > 2 {
		t.Errorf("clflush/clflushopt at 64 B = %.1fx, want near parity at one line", r)
	}
}

func TestIntelClflushDivergesOnlyAbove16KiBWith8Threads(t *testing.T) {
	// Fig. 12: with 8 threads the gap appears only above 16 KiB.
	flush := model(t, "Intel", "clflush")
	opt := model(t, "Intel", "clflushopt")
	if r := flush.Latency(4096, 8) / opt.Latency(4096, 8); r > 2 {
		t.Errorf("8T clflush/clflushopt at 4 KiB = %.1fx; sync overhead should hide the gap", r)
	}
	if r := flush.Latency(32<<10, 8) / opt.Latency(32<<10, 8); r < 2 {
		t.Errorf("8T clflush/clflushopt at 32 KiB = %.1fx, want >= 2x divergence", r)
	}
}

func TestAMDClflushMatchesClflushopt(t *testing.T) {
	// §7.3: AMD's clflush and clflushopt perform nearly identically.
	fl := model(t, "AMD", "clflush")
	opt := model(t, "AMD", "clflushopt")
	for _, size := range []uint64{64, 1024, 32 << 10} {
		r := fl.Latency(size, 1) / opt.Latency(size, 1)
		if r < 0.9 || r > 1.15 {
			t.Errorf("AMD clflush/clflushopt at %d B = %.2fx, want ~1x", size, r)
		}
	}
}

func TestGravitonSubLinearGrowth(t *testing.T) {
	// §7.3: Graviton's flush latency grows sub-linearly with size.
	g := model(t, "Graviton3", "dccivac")
	// 64 B -> 32 KiB is a 512x size increase; latency must grow far less.
	growth := g.Latency(32<<10, 1) / g.Latency(64, 1)
	if growth > 20 {
		t.Errorf("Graviton growth over 512x size = %.1fx, want sub-linear (<20x)", growth)
	}
	// And it must still grow (not be flat).
	if growth < 2 {
		t.Errorf("Graviton latency flat (%.1fx growth); expected visible scaling", growth)
	}
}

func TestGravitonBeatsIntelAtLargeSizes(t *testing.T) {
	g := model(t, "Graviton3", "dccivac")
	i := model(t, "Intel", "clflushopt")
	if g.Latency(32<<10, 1) >= i.Latency(32<<10, 1) {
		t.Error("Graviton not faster than Intel clflushopt at 32 KiB")
	}
}

func TestSerializingChainScalesLinearly(t *testing.T) {
	flush := model(t, "Intel", "clflush")
	l1 := flush.Latency(1024, 1)
	l2 := flush.Latency(2048, 1)
	ratio := (l2 - flush.Setup) / (l1 - flush.Setup)
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("serialized chain 2x size ratio = %.2f, want ~2.0", ratio)
	}
}

func TestZeroAndTinySizes(t *testing.T) {
	for _, m := range Models() {
		if l := m.Latency(0, 1); l < 0 {
			t.Errorf("%s %s: negative latency for 0 bytes", m.Vendor, m.Instr)
		}
		if m.Latency(1, 1) < m.Latency(0, 1) {
			t.Errorf("%s %s: 1 byte cheaper than 0 bytes", m.Vendor, m.Instr)
		}
	}
}

func TestThreadsClampedToOne(t *testing.T) {
	m := model(t, "AMD", "clwb")
	if m.Latency(4096, 0) != m.Latency(4096, 1) {
		t.Error("threads=0 not clamped to 1")
	}
}
