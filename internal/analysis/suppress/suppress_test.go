package suppress_test

import (
	"go/ast"
	"testing"

	"golang.org/x/tools/go/analysis"
	"skipit/internal/analysis/antest"
	"skipit/internal/analysis/suppress"
)

// testlint reports every call to a function named boom; it exists only to
// give the suppression fixture something deterministic to silence.
var testlint = &analysis.Analyzer{
	Name: "testlint",
	Doc:  "report every call to boom (suppression-mechanism fixture analyzer)",
	Run: func(pass *analysis.Pass) (interface{}, error) {
		suppress.Apply(pass)
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "boom" {
					pass.Report(analysis.Diagnostic{Pos: call.Pos(), Message: "call to boom"})
				}
				return true
			})
		}
		return nil, nil
	},
}

func TestSuppression(t *testing.T) {
	antest.Run(t, testlint, antest.Dir(t, "suppresscheck"))
}
