package trace

import (
	"strings"
	"testing"
)

func ev(cycle int64, kind string, addr uint64) Event {
	return Event{Cycle: cycle, Source: "t", Kind: kind, Addr: addr}
}

func TestRingKeepsMostRecent(t *testing.T) {
	r := NewRing(3)
	for i := int64(0); i < 5; i++ {
		r.Emit(ev(i, "x", 0))
	}
	got := r.Events()
	if len(got) != 3 {
		t.Fatalf("retained %d, want 3", len(got))
	}
	for i, e := range got {
		if e.Cycle != int64(2+i) {
			t.Fatalf("event %d has cycle %d, want %d (oldest-first)", i, e.Cycle, 2+i)
		}
	}
	if r.Total() != 5 {
		t.Fatalf("total %d, want 5", r.Total())
	}
}

func TestRingPartial(t *testing.T) {
	r := NewRing(8)
	r.Emit(ev(1, "a", 0))
	r.Emit(ev(2, "b", 0))
	got := r.Events()
	if len(got) != 2 || got[0].Kind != "a" || got[1].Kind != "b" {
		t.Fatalf("events = %v", got)
	}
}

func TestRingPanicsOnZeroSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0) did not panic")
		}
	}()
	NewRing(0)
}

func TestFilter(t *testing.T) {
	r := NewRing(8)
	r.Emit(ev(1, "cbo-drop", 64))
	r.Emit(ev(2, "grant", 64))
	r.Emit(ev(3, "cbo-enqueue", 128))
	if got := r.Filter("cbo"); len(got) != 2 {
		t.Fatalf("Filter(cbo) = %d events, want 2", len(got))
	}
	if got := r.Filter("grant"); len(got) != 1 {
		t.Fatalf("Filter(grant) = %d events, want 1", len(got))
	}
}

func TestForAddrMatchesLine(t *testing.T) {
	r := NewRing(8)
	r.Emit(ev(1, "a", 0x1000))
	r.Emit(ev(2, "b", 0x1008)) // same line
	r.Emit(ev(3, "c", 0x2000))
	if got := r.ForAddr(0x1010); len(got) != 2 {
		t.Fatalf("ForAddr = %d events, want 2 (line-granular)", len(got))
	}
}

func TestWriterStreams(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	w.Emit(ev(7, "probe", 0x40))
	if !strings.Contains(sb.String(), "probe") || !strings.Contains(sb.String(), "0x40") {
		t.Fatalf("stream output %q", sb.String())
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := NewRing(4), NewRing(4)
	m := Multi{a, b}
	m.Emit(ev(1, "x", 0))
	if a.Total() != 1 || b.Total() != 1 {
		t.Fatal("multi did not fan out")
	}
}

func TestEmitNilTracerIsNoop(t *testing.T) {
	Emit(nil, 1, "s", "k", 0, "") // must not panic
}

func TestDump(t *testing.T) {
	r := NewRing(4)
	r.Emit(ev(1, "a", 0x40))
	r.Emit(ev(2, "b", 0))
	var sb strings.Builder
	if err := r.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("dumped %d lines, want 2", len(lines))
	}
}
