package sweepd

import (
	"errors"
	"sync"
	"testing"
	"time"

	"skipit/internal/sim"
	"skipit/internal/sweep"
)

// Satellite coverage: a sim watchdog trip mid-job must surface through the
// sweep.Runner's Progress hook as a failed-job state, and the structured
// HangReport must survive the round trip onto the wire and back.

func hangJob(report *sim.HangReport) sweep.Job {
	return sweep.Job{
		Group: "g", Name: "wedge", Fingerprint: "fpW",
		Run: func(sweep.Sink) (sweep.Outcome, error) {
			return sweep.Outcome{}, &sim.HangError{Report: report}
		},
	}
}

func TestHangReportPropagatesThroughRunnerProgress(t *testing.T) {
	report := &sim.HangReport{Cycle: 12345, Reason: "no-progress", Window: 500, MemOutstanding: 3}
	var mu sync.Mutex
	var states []string
	runner := sweep.Runner{
		Workers: 1,
		Progress: func(ev sweep.ProgressEvent) {
			mu.Lock()
			states = append(states, ev.State)
			mu.Unlock()
		},
	}
	results := runner.Run([]sweep.Job{hangJob(report)})
	if len(states) != 2 || states[0] != "running" || states[1] != "failed" {
		t.Fatalf("progress states %v, want [running failed]", states)
	}
	var hang *sim.HangError
	if !errors.As(results[0].Err, &hang) {
		t.Fatalf("hang lost its type through the runner: %v", results[0].Err)
	}

	// Wire classification: the failure is typed FailHang and carries the
	// report's JSON.
	rec, fail := toWire(results[0])
	if rec != nil || fail == nil || fail.Code != FailHang {
		t.Fatalf("toWire: rec=%v fail=%+v", rec, fail)
	}
	got, err := sim.ParseHangReport(fail.HangReport)
	if err != nil {
		t.Fatalf("ParseHangReport: %v", err)
	}
	if got.Cycle != 12345 || got.Reason != "no-progress" || got.Window != 500 || got.MemOutstanding != 3 {
		t.Fatalf("report did not round-trip: %+v", got)
	}
}

func TestHangFailureRoundTripsThroughCoordinator(t *testing.T) {
	c, clk := testCoord(t, func(cfg *CoordConfig) { cfg.MaxAttempts = 1 })
	if _, err := c.Submit(SubmitRequest{Jobs: []JobSpec{spec("g", "wedge", "fpW")}}); err != nil {
		t.Fatal(err)
	}
	lease, _ := c.Lease(LeaseRequest{Worker: "w1"})
	if lease.Job == nil {
		t.Fatal("no lease")
	}

	report := &sim.HangReport{Cycle: 777, Reason: "panic", Panic: "slice bounds", Stack: "goroutine 1 ..."}
	runner := sweep.Runner{Workers: 1}
	results := runner.Run([]sweep.Job{hangJob(report)})
	_, fail := toWire(results[0])

	if _, err := c.Complete(CompleteRequest{Worker: "w1", LeaseID: lease.LeaseID, Failure: fail}); err != nil {
		t.Fatal(err)
	}
	_ = clk // MaxAttempts 1: the first failure is terminal, no backoff involved
	st := status(t, c, "g/wedge")
	if st.State != StateFailed || st.Failure == nil || st.Failure.Code != FailHang {
		t.Fatalf("hang not terminal through the coordinator: %+v", st)
	}
	got, err := sim.ParseHangReport(st.Failure.HangReport)
	if err != nil {
		t.Fatalf("report off the Results wire: %v", err)
	}
	if got.Cycle != 777 || got.Reason != "panic" || got.Panic != "slice bounds" {
		t.Fatalf("report did not survive the coordinator round trip: %+v", got)
	}
}

func TestWorkerClassifiesPanicAndTimeout(t *testing.T) {
	// A panicking job becomes a typed FailPanic, not a dead worker.
	panicJob := sweep.Job{Group: "g", Name: "boom", Fingerprint: "fpB",
		Run: func(sweep.Sink) (sweep.Outcome, error) { panic("measured into a wall") }}
	runner := sweep.Runner{Workers: 1}
	_, fail := toWire(runner.Run([]sweep.Job{panicJob})[0])
	if fail == nil || fail.Code != FailPanic {
		t.Fatalf("panic classification: %+v", fail)
	}

	// A wedged job trips the worker's wall-clock backstop.
	c, _ := testCoord(t, nil)
	if _, err := c.Submit(SubmitRequest{Jobs: []JobSpec{spec("g", "stuck", "fpS")}}); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	defer close(release)
	stuck := sweep.Job{Group: "g", Name: "stuck", Fingerprint: "fpS",
		Run: func(sweep.Sink) (sweep.Outcome, error) { <-release; return sweep.Outcome{}, nil }}
	w := NewWorker(WorkerConfig{
		Name:   "w1",
		Client: &Client{T: &coordTransport{c: c}},
		Source: IndexJobs([]sweep.Job{stuck}),
		// Fake-clocked coordinator: heartbeats are immaterial here; the
		// timeout fires on the real clock.
		PollEvery:  10 * time.Millisecond,
		JobTimeout: 50 * time.Millisecond,
		Logf:       t.Logf,
	})
	lease, _ := c.Lease(LeaseRequest{Worker: "w1"})
	if lease.Job == nil {
		t.Fatal("no lease")
	}
	w.execute(*lease.Job, lease.LeaseID, time.Hour)
	st := status(t, c, "g/stuck")
	// MaxAttempts 2 in testCoord: one timeout just requeues.
	if st.State != StatePending || st.Attempt != 1 {
		t.Fatalf("timeout should requeue: %+v", st)
	}
}
