package sim

import "skipit/internal/tilelink"

// This file implements the deterministic next-event fast-forward clock.
//
// Every component exposes NextEvent(last) — the earliest cycle strictly
// after `last` (the most recently ticked cycle) at which it could change
// state without new external input. The contract is conservative: a
// component that might act at cycle t must report a value <= t, and a
// component that acts (or increments a per-cycle counter) every cycle while
// in its current state reports last+1. Components that are only waiting on
// a TileLink delivery report no event of their own; the link's queued
// readyAt covers the wake-up.
//
// When the minimum over all components lies strictly beyond the next cycle
// to be ticked, every cycle in between is provably a no-op: ticking them
// would change no architectural state, no metric, and no trace. FastForward
// advances the clock over that window in O(1) instead of ticking through
// it, clamped so that no armed observation point is skipped:
//
//   - the sampler's next interval boundary (it must sample there),
//   - the watchdog's trip cycle (the hang must be reported at the same
//     cycle, with the same window, as under single-stepping),
//   - any caller-provided limit (run deadlines, the chaos runner's next
//     scheduled fault cycle).
//
// Because only no-op cycles are skipped, cycle-accurate results — cycle
// counts, every counter, every sampled series, chaos verdicts — are
// byte-identical with fast-forwarding on or off.

// SetFastForward enables or disables next-event fast-forwarding. It is on
// by default; turning it off forces single-stepping through idle windows
// (the -fast-forward=off escape hatch for A/B validation).
func (s *System) SetFastForward(on bool) { s.fastForward = on }

// FastForwardEnabled reports whether fast-forwarding is active.
func (s *System) FastForwardEnabled() bool { return s.fastForward }

// SkippedCycles returns the total number of cycles the fast-forward clock
// has skipped.
func (s *System) SkippedCycles() uint64 { return s.ctrSkipped.Value() }

// nextEventCycle folds every component's NextEvent into the earliest cycle
// anything in the SoC can act. last is the most recently ticked cycle.
// Components are queried busiest-first and the fold (fold.go) bails out as
// soon as the floor (last+1, nothing skippable) is reached, so on cycles
// with no idle window the scan usually stops at the first core.
//
//skipit:hotpath
func (s *System) nextEventCycle(last int64) int64 {
	next := foldNextAll(last, tilelink.NoEvent, s.Cores)
	next = foldNextAll(last, next, s.L1s)
	next = foldNext(last, next, s.L2)
	next = foldNextAll(last, next, s.ports)
	next = foldNext(last, next, s.Mem)
	return next
}

// FastForward advances the clock over a provably idle window, if one exists.
// It must be called between Steps (the components were last ticked at
// Now()-1). The clock lands on the earliest of: the next component event,
// the sampler's next interval boundary, the watchdog's trip cycle, and any
// caller-provided limits. Returns the number of cycles skipped (0 when the
// next cycle is not skippable or fast-forwarding is off).
//
//skipit:hotpath
func (s *System) FastForward(limits ...int64) int64 {
	if !s.fastForward {
		return 0
	}
	next := s.nextEventCycle(s.now - 1)
	if next <= s.now {
		// Something can act next cycle; the clamps below only ever lower
		// next, so bail before computing them.
		return 0
	}
	if s.sampler != nil {
		// The sampler fires whenever a ticked cycle is a multiple of its
		// interval; land exactly on the next boundary.
		iv := s.sampler.Interval()
		b := s.now
		if r := b % iv; r != 0 {
			b += iv - r
		}
		if b < next {
			next = b
		}
	}
	if s.hookInterval > 0 {
		// The progress hook fires whenever a ticked cycle is a multiple of
		// its interval; land exactly on the next boundary, like the sampler.
		iv := s.hookInterval
		b := s.now
		if r := b % iv; r != 0 {
			b += iv - r
		}
		if b < next {
			next = b
		}
	}
	if s.wdLimit > 0 {
		// StepGuarded trips after ticking cycle c when c+1-wdLastChange >=
		// wdLimit; the first such c must be ticked, not skipped, so the
		// trip cycle and reported window match single-stepping exactly.
		if d := s.wdLastChange + s.wdLimit - 1; d < next {
			next = d
		}
	}
	for _, l := range limits {
		if l < next {
			next = l
		}
	}
	if next >= tilelink.NoEvent {
		// Fully idle with no armed clamp: there is no meaningful cycle to
		// land on; leave the clock alone and let the caller's loop decide.
		return 0
	}
	if next <= s.now {
		return 0
	}
	skipped := next - s.now
	s.now = next
	s.ctrSkipped.Add(uint64(skipped))
	return skipped
}
