// Package tlctest is a protocol-level TileLink agent harness for the L2: a
// fleet of master agents attached straight to the cache's client ports — no
// boom core or L1 in the loop — each maintaining its own permission state per
// block and emitting randomized but protocol-legal Acquire / Release /
// GrantAck / ProbeAck traffic, checked cycle-by-cycle against a per-address
// scoreboard.
//
// The scoreboard tracks two things per address:
//
//   - the global permission invariant over the agents' views: at most one
//     Trunk, and a Trunk excludes every other holder (Branches may share only
//     under the L2's own trunk);
//   - the set of permissible values: every value a writer with write
//     permission may have installed. The set grows at writes and is pruned
//     to a singleton at ordering points — whenever a dirty copy is
//     surrendered (ProbeAckData, ReleaseData, RootRelease*Data), that value
//     becomes the only truth. Every granted value and every end-of-episode
//     resting value must be in the set.
//
// Durability (§5.5) is judged against a third piece of state: the ordered
// sequence of values pushed down to the L2 (every surrender that carried
// data, seeded with the DRAM reset value). DRAM only ever holds a pushed
// value, and pushes for one address are totally ordered — a new push
// requires Trunk, which requires the previous push to have landed. A
// RootRelease records the latest push at issue time; its ack may arrive
// arbitrarily late (the D channel jitters under chaos), so the check is that
// DRAM then holds that push or any later one. A dropped writeback leaves
// DRAM at an older push and surfaces here.
//
// Permission bookkeeping follows the TileLink ordering discipline the agents
// themselves use: downgrades are recorded when the surrendering message is
// issued, upgrades when the grant is received. The scoreboard's view is
// therefore always conservative — a transient it flags corresponds to a real
// protocol violation, never to an in-flight race.
//
// Everything is seed-derived through internal/detrand, episodes compose with
// the chaos fault schedules and the ddmin shrinker, and failures ship as
// minimal replayable .tlc.json artifacts (see artifact.go).
package tlctest

import (
	"fmt"

	"skipit/internal/metrics"
	"skipit/internal/tilelink"
)

// Violation is the structured fail-fast report of a scoreboard check that
// fired: what rule broke, where, and the per-agent permission view and
// permissible-value set at that moment.
type Violation struct {
	Kind    string `json:"kind"` // "two-trunk" | "trunk-excludes" | "value" | "write-without-trunk" | "grant-cap" | "unexpected-grant" | "durability" | "final-value"
	Cycle   int64  `json:"cycle"`
	Agent   int    `json:"agent"`
	Addr    uint64 `json:"addr"`
	Message string `json:"message"`
	// Perms is the scoreboard's per-agent permission view of Addr at the
	// failure, and Permissible the value set.
	Perms       []string `json:"perms"`
	Permissible []uint64 `json:"permissible"`
}

func (v *Violation) Error() string {
	return fmt.Sprintf("tlctest: %s at cycle %d: agent %d addr %#x: %s (perms=%v permissible=%v)",
		v.Kind, v.Cycle, v.Agent, v.Addr, v.Message, v.Perms, v.Permissible)
}

// sbBlock is the scoreboard's state for one address.
type sbBlock struct {
	perms  []tilelink.Perm // per-agent granted view
	vals   []uint64        // permissible value set
	pushes []uint64        // values pushed to the L2, in order, pushes[0] = DRAM reset
	marks  []int           // per-agent push index recorded at RootRelease issue, -1 if none
}

// Scoreboard checks the agents' collective behavior per address. It is fed
// by the agents at their own ordering points and fails fast: the first
// violation is kept and every later event is ignored.
type Scoreboard struct {
	agents int
	addrs  []uint64
	index  map[uint64]int // addr -> blocks index (lookup only, never iterated)
	blocks []sbBlock

	viol *Violation

	ctrGrantsChecked *metrics.Counter
	ctrWrites        *metrics.Counter
	ctrPrunes        *metrics.Counter
	ctrSurrenders    *metrics.Counter
	ctrViolations    *metrics.Counter
}

// NewScoreboard builds a scoreboard over the episode's address universe.
// init[i] seeds addrs[i]'s permissible-value set (the DRAM reset value).
// Counters register under the "tlc" instance of reg; nil gets a private
// registry.
func NewScoreboard(agents int, addrs []uint64, init []uint64, reg *metrics.Registry) *Scoreboard {
	if len(init) != len(addrs) {
		panic("tlctest: init/addrs length mismatch")
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	sb := &Scoreboard{
		agents:           agents,
		addrs:            append([]uint64(nil), addrs...),
		index:            make(map[uint64]int, len(addrs)),
		blocks:           make([]sbBlock, len(addrs)),
		ctrGrantsChecked: reg.Counter("tlc", "grants_checked"),
		ctrWrites:        reg.Counter("tlc", "writes_tracked"),
		ctrPrunes:        reg.Counter("tlc", "value_prunes"),
		ctrSurrenders:    reg.Counter("tlc", "surrenders"),
		ctrViolations:    reg.Counter("tlc", "violations"),
	}
	for i, a := range addrs {
		sb.index[a] = i
		marks := make([]int, agents)
		for j := range marks {
			marks[j] = -1
		}
		sb.blocks[i] = sbBlock{
			perms:  make([]tilelink.Perm, agents),
			vals:   []uint64{init[i]},
			pushes: []uint64{init[i]},
			marks:  marks,
		}
	}
	return sb
}

// Violation returns the first recorded violation, or nil.
func (sb *Scoreboard) Violation() *Violation { return sb.viol }

func (sb *Scoreboard) block(addr uint64) *sbBlock {
	i, ok := sb.index[addr]
	if !ok {
		panic(fmt.Sprintf("tlctest: scoreboard has no block for %#x", addr))
	}
	return &sb.blocks[i]
}

// fail records the first violation, annotated with the block snapshot.
func (sb *Scoreboard) fail(now int64, agent int, addr uint64, kind, msg string) {
	sb.failVals(now, agent, addr, kind, msg, sb.block(addr).vals)
}

// failVals is fail with an explicit permissible set (the durability check
// judges against a push suffix, not the live value set).
func (sb *Scoreboard) failVals(now int64, agent int, addr uint64, kind, msg string, vals []uint64) {
	if sb.viol != nil {
		return
	}
	b := sb.block(addr)
	v := &Violation{
		Kind: kind, Cycle: now, Agent: agent, Addr: addr, Message: msg,
		Permissible: append([]uint64(nil), vals...),
	}
	for _, p := range b.perms {
		v.Perms = append(v.Perms, p.String())
	}
	sb.viol = v
	sb.ctrViolations.Inc()
}

// contains reports set membership in the permissible-value set.
//
//skipit:hotpath
func (b *sbBlock) contains(v uint64) bool {
	for _, x := range b.vals {
		if x == v {
			return true
		}
	}
	return false
}

// checkInvariant enforces the global permission invariant on one block: at
// most one Trunk, and a Trunk excludes all other holders. The failure
// formatting lives in failInvariant so the clean path stays allocation-free.
//
//skipit:hotpath
func (sb *Scoreboard) checkInvariant(now int64, agent int, addr uint64) {
	if sb.viol != nil {
		return
	}
	b := sb.block(addr)
	trunks, holders := 0, 0
	for _, p := range b.perms {
		if p == tilelink.PermTrunk {
			trunks++
		}
		if p != tilelink.PermNone {
			holders++
		}
	}
	if trunks > 1 || (trunks == 1 && holders > 1) {
		sb.failInvariant(now, agent, addr, trunks, holders) //skipit:ignore hotalloc cold invariant-violation path; never runs in a passing episode
	}
}

// failInvariant is checkInvariant's cold failure path.
func (sb *Scoreboard) failInvariant(now int64, agent int, addr uint64, trunks, holders int) {
	if trunks > 1 {
		sb.fail(now, agent, addr, "two-trunk", fmt.Sprintf("%d agents hold Trunk simultaneously", trunks))
		return
	}
	sb.fail(now, agent, addr, "trunk-excludes", fmt.Sprintf("a Trunk coexists with %d other holder(s)", holders-1))
}

// OnGrant records a received grant: the value must be permissible, the cap
// must be the one the grow mandates, and the resulting view must satisfy the
// permission invariant.
func (sb *Scoreboard) OnGrant(now int64, agent int, addr uint64, cap, wantCap tilelink.Cap, val uint64) {
	if sb.viol != nil {
		return
	}
	sb.ctrGrantsChecked.Inc()
	b := sb.block(addr)
	if cap != wantCap {
		sb.fail(now, agent, addr, "grant-cap", fmt.Sprintf("granted %v, protocol mandates %v", cap, wantCap))
		return
	}
	if !b.contains(val) {
		sb.fail(now, agent, addr, "value", fmt.Sprintf("granted value %#x is not permissible", val))
		return
	}
	b.perms[agent] = cap.Perm()
	sb.checkInvariant(now, agent, addr)
}

// OnWrite records a local write by an agent: only a Trunk holder may install
// a value, and the value joins the permissible set.
func (sb *Scoreboard) OnWrite(now int64, agent int, addr uint64, val uint64) {
	if sb.viol != nil {
		return
	}
	b := sb.block(addr)
	if b.perms[agent] != tilelink.PermTrunk {
		sb.fail(now, agent, addr, "write-without-trunk",
			fmt.Sprintf("write of %#x while holding %v", val, b.perms[agent]))
		return
	}
	if !b.contains(val) {
		b.vals = append(b.vals, val)
	}
	sb.ctrWrites.Inc()
}

// OnSurrender records a downgrade message being issued (ProbeAck*, Release*,
// or the local-invalidate half of a RootRelease): the agent's view drops to
// `to`, and if the message carries dirty data that value becomes the only
// permissible one — an ordering point has published it.
func (sb *Scoreboard) OnSurrender(now int64, agent int, addr uint64, to tilelink.Perm, carriedData bool, val uint64) {
	if sb.viol != nil {
		return
	}
	b := sb.block(addr)
	sb.ctrSurrenders.Inc()
	if carriedData {
		b.vals = b.vals[:0]
		b.vals = append(b.vals, val)
		b.pushes = append(b.pushes, val)
		sb.ctrPrunes.Inc()
	}
	b.perms[agent] = to
	sb.checkInvariant(now, agent, addr)
}

// OnUnexpectedGrant records a grant the agent has no outstanding Acquire for.
func (sb *Scoreboard) OnUnexpectedGrant(now int64, agent int, addr uint64, op tilelink.Opcode) {
	sb.fail(now, agent, addr, "unexpected-grant", fmt.Sprintf("%v with no outstanding Acquire", op))
}

// OnFlushIssue records a RootRelease being issued by an agent: the latest
// push at this moment (the flush's own surrendered data, if it carried any)
// becomes the durability floor the matching ack is judged against.
func (sb *Scoreboard) OnFlushIssue(now int64, agent int, addr uint64) {
	if sb.viol != nil {
		return
	}
	b := sb.block(addr)
	b.marks[agent] = len(b.pushes) - 1
}

// CheckDurable verifies the §5.5 durability contract at a RootReleaseAck:
// DRAM must hold the push recorded at issue time or any later one. The ack
// may be arbitrarily delayed on D, so newer pushes that landed in the
// meantime are legal; anything older than the floor is a dropped or stale
// writeback.
func (sb *Scoreboard) CheckDurable(now int64, agent int, addr uint64, got uint64) {
	if sb.viol != nil {
		return
	}
	mark, npushes := sb.DurableFloor(agent, addr)
	sb.CheckDurableAt(now, agent, addr, got, mark, npushes)
}

// DurableFloor captures — and consumes, exactly as the inline check would —
// the state CheckDurable reads at this instant: the per-agent issue mark and
// the current push count. A deferred check (see DurableQueue) resolves
// against this floor, immune to marks and pushes the same window records
// after the ack arrived.
func (sb *Scoreboard) DurableFloor(agent int, addr uint64) (mark, npushes int) {
	b := sb.block(addr)
	mark = b.marks[agent]
	if mark < 0 {
		mark = 0
	}
	b.marks[agent] = -1
	return mark, len(b.pushes)
}

// CheckDurableAt is CheckDurable against a floor captured earlier by
// DurableFloor.
func (sb *Scoreboard) CheckDurableAt(now int64, agent int, addr uint64, got uint64, mark, npushes int) {
	if sb.viol != nil {
		return
	}
	allowed := sb.block(addr).pushes[mark:npushes]
	for _, v := range allowed {
		if v == got {
			return
		}
	}
	sb.failVals(now, agent, addr, "durability",
		fmt.Sprintf("RootReleaseAck received but DRAM holds %#x, older than the flushed push", got), allowed)
}

// CheckFinal verifies an address's resting value after the episode drained:
// the freshest committed copy (L2 if present, else DRAM) must be permissible.
func (sb *Scoreboard) CheckFinal(now int64, addr uint64, got uint64) {
	if sb.viol != nil {
		return
	}
	if !sb.block(addr).contains(got) {
		sb.fail(now, -1, addr, "final-value",
			fmt.Sprintf("resting value %#x is not permissible", got))
	}
}
