package sweepd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"skipit/internal/detrand"
)

// Transport carries one request/response round trip of the job API. The
// indirection exists so the fault-injection harness can sit between any
// client (worker or fleet) and the coordinator, whether the link is a real
// socket or an in-process handler.
type Transport interface {
	// Call POSTs req as JSON to path ("/api/sweepd/lease") and decodes the
	// response into resp. Any error means the caller must assume nothing
	// about whether the far side processed the request.
	Call(path string, req, resp any) error
}

// HTTPTransport speaks to a coordinator over HTTP.
type HTTPTransport struct {
	// Base is the coordinator's base URL ("http://127.0.0.1:7070").
	Base string
	// Client defaults to a client with a 30s timeout.
	Client *http.Client
}

func (t *HTTPTransport) Call(path string, req, resp any) error {
	cl := t.Client
	if cl == nil {
		cl = &http.Client{Timeout: 30 * time.Second}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("sweepd: encoding %s request: %w", path, err)
	}
	httpResp, err := cl.Post(t.Base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("sweepd: %s: %w", path, err)
	}
	defer httpResp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(httpResp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("sweepd: reading %s response: %w", path, err)
	}
	if httpResp.StatusCode != http.StatusOK {
		return fmt.Errorf("sweepd: %s: HTTP %d: %s", path, httpResp.StatusCode, bytes.TrimSpace(b))
	}
	if resp == nil {
		return nil
	}
	if err := json.Unmarshal(b, resp); err != nil {
		return fmt.Errorf("sweepd: decoding %s response: %w", path, err)
	}
	return nil
}

// FaultError is the typed error every injected fault surfaces, so tests and
// retry loops can tell injected faults from real transport failures.
type FaultError struct {
	Kind string // "drop-request" | "drop-response" | "partition"
	Call int    // global call index the fault fired on
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("sweepd: injected fault %s (call %d)", e.Kind, e.Call)
}

// FaultPlan is a seed-derived schedule of transport faults, mirroring
// internal/chaos: the same seed produces the same per-call fault decisions,
// so a failing fleet test replays.
type FaultPlan struct {
	Seed int64
	// Per-call probabilities in [0,1).
	DropRequest  float64 // request never reaches the coordinator
	DropResponse float64 // coordinator processes it; reply is lost
	Duplicate    float64 // request delivered twice (idempotence probe)
	// DelayMax, when > 0, sleeps a per-call uniform duration in [0, DelayMax)
	// before delivery.
	DelayMax time.Duration
	// Partition windows by call count (wall-clock-free, hence replayable):
	// every PartitionEvery-th call starts a window in which PartitionLen
	// consecutive calls fail outright. 0 disables.
	PartitionEvery int
	PartitionLen   int
}

// FaultTransport wraps an inner transport with a FaultPlan. Each call draws
// its fate from a stream keyed by (seed, call index): the schedule is a pure
// function of how many calls preceded it, not of wall time or goroutine
// interleaving.
type FaultTransport struct {
	Inner Transport
	Plan  FaultPlan

	mu    sync.Mutex
	calls int
	// dead, when set, drops everything — the kill -9 lever for tests.
	dead bool
}

// Kill makes every subsequent call fail without reaching the inner
// transport: the network-visible behavior of a kill -9'd process.
func (t *FaultTransport) Kill() {
	t.mu.Lock()
	t.dead = true
	t.mu.Unlock()
}

func (t *FaultTransport) Call(path string, req, resp any) error {
	t.mu.Lock()
	n := t.calls
	t.calls++
	dead := t.dead
	t.mu.Unlock()
	if dead {
		return &FaultError{Kind: "drop-request", Call: n}
	}
	rng := detrand.Keyed(t.Plan.Seed, "call", fmt.Sprint(n))
	if t.Plan.PartitionEvery > 0 && t.Plan.PartitionLen > 0 &&
		n%t.Plan.PartitionEvery < t.Plan.PartitionLen {
		return &FaultError{Kind: "partition", Call: n}
	}
	if t.Plan.DelayMax > 0 {
		time.Sleep(time.Duration(rng.Int63n(int64(t.Plan.DelayMax))))
	}
	if rng.Float64() < t.Plan.DropRequest {
		return &FaultError{Kind: "drop-request", Call: n}
	}
	dup := rng.Float64() < t.Plan.Duplicate
	dropResp := rng.Float64() < t.Plan.DropResponse
	if dup {
		// First delivery: response discarded, like a retransmitted datagram.
		t.Inner.Call(path, req, nil) //nolint:errcheck // duplicate delivery is best-effort
	}
	err := t.Inner.Call(path, req, resp)
	if err != nil {
		return err
	}
	if dropResp {
		return &FaultError{Kind: "drop-response", Call: n}
	}
	return nil
}

// Client wraps a Transport with the job API's method surface. Its zero
// retry policy is deliberate: retry belongs to the caller (the worker's
// lease loop, the fleet's submit/poll budget), not the stub.
type Client struct {
	T Transport
}

// NewClient builds a client for a coordinator base URL over plain HTTP.
func NewClient(base string) *Client {
	return &Client{T: &HTTPTransport{Base: base}}
}

func (c *Client) Submit(req SubmitRequest) (SubmitResponse, error) {
	var resp SubmitResponse
	err := c.T.Call("/api/sweepd/submit", req, &resp)
	return resp, err
}

func (c *Client) Register(req RegisterRequest) (RegisterResponse, error) {
	var resp RegisterResponse
	err := c.T.Call("/api/sweepd/register", req, &resp)
	return resp, err
}

func (c *Client) Lease(req LeaseRequest) (LeaseResponse, error) {
	var resp LeaseResponse
	err := c.T.Call("/api/sweepd/lease", req, &resp)
	return resp, err
}

func (c *Client) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	var resp HeartbeatResponse
	err := c.T.Call("/api/sweepd/heartbeat", req, &resp)
	return resp, err
}

func (c *Client) Complete(req CompleteRequest) (CompleteResponse, error) {
	var resp CompleteResponse
	err := c.T.Call("/api/sweepd/complete", req, &resp)
	return resp, err
}

func (c *Client) Results(req ResultsRequest) (ResultsResponse, error) {
	var resp ResultsResponse
	err := c.T.Call("/api/sweepd/results", req, &resp)
	return resp, err
}
