package sim

import (
	"reflect"
	"testing"

	"skipit/internal/isa"
	"skipit/internal/trace"
)

// txnWorkload drives every transaction kind through the hierarchy: store and
// load misses (Acquire chains), capacity evictions (Release writebacks), CBO
// flush lifecycles (FSHR RootReleases), and redundant CBOs (skip-audit
// drops).
func txnWorkload(core int) *isa.Program {
	base := 0x1000 + uint64(core)<<20
	b := isa.NewBuilder()
	b.StoreRegion(base, 2048, 64, 0xAB)
	b.Fence()
	b.CboRegion(base, 2048, 64, true)
	b.CboRegion(base, 2048, 64, true) // redundant: Skip It drops these
	b.Fence()
	b.LoadRegion(base, 2048, 64)
	b.StoreRegion(base+0x40000, 4096, 64, 0xCD) // forces victims in both L1 and L2
	b.CboRegion(base+0x40000, 4096, 64, false)
	b.Fence()
	return b.Build()
}

// txnTrace runs the workload with the given fast-forward setting and returns
// the full event stream plus the flight-recorder dump.
func txnTrace(t *testing.T, cores int, ff bool) ([]trace.Event, []trace.RecDump) {
	t.Helper()
	s := New(DefaultConfig(cores))
	s.SetFastForward(ff)
	s.EnableFlightRecorder(128)
	ring := trace.NewRing(1 << 16)
	s.SetTracer(ring)
	progs := make([]*isa.Program, cores)
	for i := range progs {
		progs[i] = txnWorkload(i)
	}
	if _, err := s.Run(progs, 5_000_000); err != nil {
		t.Fatal(err)
	}
	return ring.Events(), s.FlightRecorder().Dump()
}

// TestTxnIDsDeterministicAcrossFastForward pins the transaction-id layer's
// core promise: ids are assigned unconditionally on the simulation's own
// event order, so the complete causal trace — every event's cycle, source,
// kind, address, and txn id — and the flight-recorder rings are identical
// with the next-event clock on or off. (Run under -race in CI, which also
// proves id assignment involves no unsynchronized sharing.)
func TestTxnIDsDeterministicAcrossFastForward(t *testing.T) {
	for _, cores := range []int{1, 2} {
		evFF, recFF := txnTrace(t, cores, true)
		evSlow, recSlow := txnTrace(t, cores, false)
		if len(evFF) == 0 {
			t.Fatalf("cores=%d: no trace events", cores)
		}
		if !reflect.DeepEqual(evFF, evSlow) {
			for i := range evFF {
				if i >= len(evSlow) || evFF[i] != evSlow[i] {
					t.Fatalf("cores=%d: event %d diverges: ff=%+v slow=%+v", cores, i, evFF[i], evSlow[i])
				}
			}
			t.Fatalf("cores=%d: event streams diverge in length: %d vs %d", cores, len(evFF), len(evSlow))
		}
		if !reflect.DeepEqual(recFF, recSlow) {
			t.Fatalf("cores=%d: flight-recorder dumps diverge", cores)
		}
	}
}

// TestTxnSpansComplete checks causal-chain integrity on a miss-heavy
// workload: every grant-ack, release-ack, and fshr-ack closes a txn that an
// acquire, evict/release, or cbo-enqueue opened, and skip-audit records
// carry a cause.
func TestTxnSpansComplete(t *testing.T) {
	events, dumps := txnTrace(t, 2, true)
	opened := map[uint64]bool{}
	for _, e := range events {
		switch e.Kind {
		case "acquire", "evict", "cbo-enqueue":
			if e.Txn == 0 {
				t.Fatalf("%s event without txn id: %+v", e.Kind, e)
			}
			opened[e.Txn] = true
		case "grant-ack", "release-ack", "fshr-ack":
			if !opened[e.Txn] {
				t.Fatalf("%s closes txn %d that nothing opened", e.Kind, e.Txn)
			}
		}
	}
	audits := 0
	for _, d := range dumps {
		for _, e := range d.Events {
			if e.Code == "skip-audit" {
				audits++
				if e.Cause == "" {
					t.Fatalf("skip-audit without cause in %s: %+v", d.Component, e)
				}
			}
		}
	}
	if audits == 0 {
		t.Fatal("workload produced no skip-audit records in the recorder rings")
	}
}
