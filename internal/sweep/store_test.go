package sweep

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Name: "p", Fingerprint: "ab", Series: "1T", X: "64",
		Cycles: 100, Sigma: 1.5, Reps: 5, Derived: map[string]float64{"size": 64}}
	st.Put("fig09", rec)
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := st2.Lookup("fig09", "p", "ab")
	if !ok {
		t.Fatal("reloaded store missed")
	}
	if got.Cycles != 100 || got.Derived["size"] != 64 || got.Series != "1T" {
		t.Fatalf("round-trip mangled record: %+v", got)
	}
	// Wrong fingerprint is a miss even though the name exists.
	if _, ok := st2.Lookup("fig09", "p", "cd"); ok {
		t.Fatal("lookup ignored the fingerprint")
	}
}

func TestStorePutReplacesByName(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.Put("g", Record{Name: "p", Fingerprint: "old", Cycles: 1})
	st.Put("g", Record{Name: "p", Fingerprint: "new", Cycles: 2})
	recs := st.Records("g")
	if len(recs) != 1 || recs[0].Fingerprint != "new" || recs[0].Cycles != 2 {
		t.Fatalf("records = %+v", recs)
	}
}

// Identical sweeps must write byte-identical files: the determinism the
// N=1 vs N=GOMAXPROCS acceptance check relies on.
func TestStoreFilesAreByteDeterministic(t *testing.T) {
	write := func(dir string) []byte {
		st, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		st.Put("g", Record{Name: "a", Fingerprint: "f1", Cycles: 1, Reps: 1})
		st.Put("g", Record{Name: "b", Fingerprint: "f2", Cycles: 2, Reps: 1,
			Derived: map[string]float64{"z": 1, "a": 2}})
		if err := st.Flush(); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, FileName("g")))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if string(write(t.TempDir())) != string(write(t.TempDir())) {
		t.Fatal("two identical sweeps wrote different bytes")
	}
}

// A killed process may leave a partially-written file. Store writes go to a
// temp file and rename into place, so the visible BENCH_*.json is always
// complete; a torn file from a pre-atomic writer (or a scribbled-on store) is
// ignored on load and repaired by the next Flush.
func TestStoreTornFileIgnoredAndRepaired(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, FileName("g"))
	// Simulate a torn write: valid prefix of a real store file, cut mid-record.
	torn := `{"schema_version":1,"group":"g","records":[{"name":"p","fingerp`
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Lookup("g", "p", "ab"); ok {
		t.Fatal("lookup served a record out of a torn file")
	}
	// The group loaded empty and was marked dirty: the next write repairs it.
	st.Put("g", Record{Name: "p", Fingerprint: "ab", Cycles: 1, Reps: 1})
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	f, err := LoadFile(path)
	if err != nil {
		t.Fatalf("repaired file still unreadable: %v", err)
	}
	if len(f.Records) != 1 || f.Records[0].Name != "p" {
		t.Fatalf("repaired file = %+v", f)
	}
}

// An untouched dirty group with no Put still gets rewritten on Flush (the
// repair path for an unreadable file that the run never re-measured).
func TestStoreUnreadableGroupRewrittenEmpty(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, FileName("g"))
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.Records("g") // loads the group, marking it dirty
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatalf("flushed repair unreadable: %v", err)
	}
}

// The atomic write never leaves its temp file behind on success.
func TestStoreWriteLeavesNoTempFile(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.Put("g", Record{Name: "p", Fingerprint: "f", Cycles: 1, Reps: 1})
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != FileName("g") {
			t.Fatalf("unexpected file left in store dir: %s", e.Name())
		}
	}
}

func TestWriteFileStampsSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), FileName("quick"))
	if err := WriteFile(path, File{Group: "quick", Records: []Record{{Name: "p", Fingerprint: "f", Reps: 1}}}); err != nil {
		t.Fatal(err)
	}
	f, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.SchemaVersion != SchemaVersion || f.Group != "quick" || len(f.Records) != 1 {
		t.Fatalf("file = %+v", f)
	}
}
