package tilelink

import "fmt"

// Channel identifies one of the five unidirectional TileLink channels.
// A, C and E flow from client to manager; B and D flow from manager to client.
type Channel uint8

const (
	ChannelA Channel = iota
	ChannelB
	ChannelC
	ChannelD
	ChannelE
)

func (c Channel) String() string {
	return [...]string{"A", "B", "C", "D", "E"}[c]
}

// Opcode identifies a TileLink coherence message. The set covers the TL-C
// messages described in §2.2 of the paper plus the extensions of §5.1 and §6:
//
//   - RootReleaseFlush / RootReleaseClean are the paper's new C-channel
//     messages, encoded on the wire as ProbeAck with parameters FLUSH and
//     CLEAN to avoid widening the opcode bitvector (§5.1).
//   - RootReleaseAck is the paper's new D-channel message, encoded as
//     ReleaseAck with parameter ROOT.
//   - GrantDataDirty is Skip It's D-channel message (§6): identical to
//     GrantData except it tells the receiving L1 that the line is not
//     persisted, so the skip bit must be left unset.
type Opcode uint8

const (
	// Channel A (client -> manager).
	OpAcquireBlock Opcode = iota
	OpAcquirePerm         // defined by TileLink; unsupported by the BOOM L1 (§3.3)

	// Channel B (manager -> client).
	OpProbe

	// Channel C (client -> manager).
	OpProbeAck
	OpProbeAckData
	OpRelease
	OpReleaseData
	OpRootReleaseFlush     // new (§5.1); wire encoding ProbeAck{param: FLUSH}
	OpRootReleaseClean     // new (§5.1); wire encoding ProbeAck{param: CLEAN}
	OpRootReleaseFlushData // RootReleaseFlush carrying the dirty line
	OpRootReleaseCleanData // RootReleaseClean carrying the dirty line

	// Channel D (manager -> client).
	OpGrant
	OpGrantData
	OpGrantDataDirty // new (§6); GrantData for a line that is dirty in L2
	OpReleaseAck
	OpRootReleaseAck // new (§5.1); wire encoding ReleaseAck{param: ROOT}

	// Channel E (client -> manager).
	OpGrantAck
)

var opcodeNames = map[Opcode]string{
	OpAcquireBlock:         "AcquireBlock",
	OpAcquirePerm:          "AcquirePerm",
	OpProbe:                "Probe",
	OpProbeAck:             "ProbeAck",
	OpProbeAckData:         "ProbeAckData",
	OpRelease:              "Release",
	OpReleaseData:          "ReleaseData",
	OpRootReleaseFlush:     "RootReleaseFlush",
	OpRootReleaseClean:     "RootReleaseClean",
	OpRootReleaseFlushData: "RootReleaseFlushData",
	OpRootReleaseCleanData: "RootReleaseCleanData",
	OpGrant:                "Grant",
	OpGrantData:            "GrantData",
	OpGrantDataDirty:       "GrantDataDirty",
	OpReleaseAck:           "ReleaseAck",
	OpRootReleaseAck:       "RootReleaseAck",
	OpGrantAck:             "GrantAck",
}

func (o Opcode) String() string {
	if s, ok := opcodeNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Opcode(%d)", uint8(o)) //skipit:ignore hotalloc Sprintf fallback for unknown opcodes only; named opcodes return interned strings
}

// Chan returns the channel the opcode travels on.
func (o Opcode) Chan() Channel {
	switch o {
	case OpAcquireBlock, OpAcquirePerm:
		return ChannelA
	case OpProbe:
		return ChannelB
	case OpProbeAck, OpProbeAckData, OpRelease, OpReleaseData,
		OpRootReleaseFlush, OpRootReleaseClean,
		OpRootReleaseFlushData, OpRootReleaseCleanData:
		return ChannelC
	case OpGrant, OpGrantData, OpGrantDataDirty, OpReleaseAck, OpRootReleaseAck:
		return ChannelD
	case OpGrantAck:
		return ChannelE
	}
	panic(fmt.Sprintf("tilelink: opcode %v has no channel", o))
}

// HasData reports whether the message carries a full cache line of payload
// and therefore occupies the link for lineBytes/beatBytes beats.
func (o Opcode) HasData() bool {
	switch o {
	case OpProbeAckData, OpReleaseData, OpGrantData, OpGrantDataDirty,
		OpRootReleaseFlushData, OpRootReleaseCleanData:
		return true
	}
	return false
}

// IsRootRelease reports whether the opcode is one of the paper's new
// root-writeback requests.
func (o Opcode) IsRootRelease() bool {
	switch o {
	case OpRootReleaseFlush, OpRootReleaseClean,
		OpRootReleaseFlushData, OpRootReleaseCleanData:
		return true
	}
	return false
}

// IsRootReleaseClean reports whether the opcode is a RootReleaseClean
// (either variant); callers use it to pick the §5.5 probing strategy.
func (o Opcode) IsRootReleaseClean() bool {
	return o == OpRootReleaseClean || o == OpRootReleaseCleanData
}

// WireEncoding returns the pre-existing TileLink opcode and textual parameter
// the message is encoded as on the wire (§5.1). Messages that are part of
// standard TileLink encode as themselves with an empty parameter.
func (o Opcode) WireEncoding() (Opcode, string) {
	switch o {
	case OpRootReleaseFlush:
		return OpProbeAck, "FLUSH"
	case OpRootReleaseClean:
		return OpProbeAck, "CLEAN"
	case OpRootReleaseFlushData:
		return OpProbeAckData, "FLUSH"
	case OpRootReleaseCleanData:
		return OpProbeAckData, "CLEAN"
	case OpRootReleaseAck:
		return OpReleaseAck, "ROOT"
	}
	return o, ""
}

// Msg is a single TileLink message. Addr is always cache-line aligned; Data
// is nil unless Op.HasData(). Source identifies the client agent on links
// that multiplex several clients (our point-to-point links keep it for
// bookkeeping and assertions).
type Msg struct {
	Op     Opcode
	Addr   uint64
	Source int

	// Exactly one of the following parameter fields is meaningful,
	// depending on the opcode's channel:
	Grow   Grow   // Acquire*
	Cap    Cap    // Probe, Grant*
	Shrink Shrink // ProbeAck*, Release*

	// Dirty distinguishes RootRelease messages whose line carried dirty
	// data and GrantDataDirty bookkeeping in assertions.
	Dirty bool

	// Txn is the coherence-transaction id the message belongs to: assigned
	// by the initiating agent (L1 miss, writeback, flush FSHR) and echoed by
	// the responder on every reply, so a whole Acquire→Grant→GrantAck or
	// RootRelease→RootReleaseAck chain shares one id. Purely observational:
	// no component's behavior may depend on it. 0 means unassigned.
	Txn uint64

	Data []byte
}

func (m Msg) String() string {
	s := fmt.Sprintf("%s addr=%#x src=%d", m.Op, m.Addr, m.Source)
	switch m.Op.Chan() {
	case ChannelA:
		s += " grow=" + m.Grow.String()
	case ChannelB:
		s += " cap=" + m.Cap.String()
	case ChannelC:
		if !m.Op.IsRootRelease() {
			s += " shrink=" + m.Shrink.String()
		}
	case ChannelD:
		if m.Op == OpGrant || m.Op == OpGrantData || m.Op == OpGrantDataDirty {
			s += " cap=" + m.Cap.String()
		}
	}
	if m.Op.HasData() {
		s += fmt.Sprintf(" data[%d]", len(m.Data))
	}
	return s
}

// Validate checks structural legality of the message: opcode/payload
// agreement and line alignment. It is used in tests and in link assertions.
func (m Msg) Validate(lineBytes uint64) error {
	if m.Addr%lineBytes != 0 {
		return fmt.Errorf("tilelink: %v: address not line aligned", m)
	}
	if m.Op.HasData() {
		if uint64(len(m.Data)) != lineBytes {
			return fmt.Errorf("tilelink: %v: payload %d bytes, want %d", m, len(m.Data), lineBytes)
		}
	} else if m.Data != nil {
		return fmt.Errorf("tilelink: %v: unexpected payload on data-less opcode", m)
	}
	return nil
}
