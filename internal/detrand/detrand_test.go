package detrand

import (
	"math/rand"
	"testing"
)

// TestNewMatchesStdlibSeeding pins New to rand.New(rand.NewSource(seed)):
// committed repro artifacts depend on this exact mapping.
func TestNewMatchesStdlibSeeding(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, 1 << 40} {
		got := New(seed)
		want := rand.New(rand.NewSource(seed))
		for i := 0; i < 16; i++ {
			if g, w := got.Int63(), want.Int63(); g != w {
				t.Fatalf("seed %d draw %d: New diverges from stdlib seeding: %d != %d", seed, i, g, w)
			}
		}
	}
}

// TestSplitIsolation verifies that exhausting a child stream does not perturb
// the parent: the parent's post-split draws depend only on how many splits
// were taken, not on what the children did.
func TestSplitIsolation(t *testing.T) {
	a := New(7)
	b := New(7)
	ca := Split(a)
	cb := Split(b)
	for i := 0; i < 100; i++ {
		ca.Int63() // drain one child heavily
	}
	cb.Int63() // barely touch the other
	for i := 0; i < 16; i++ {
		if x, y := a.Int63(), b.Int63(); x != y {
			t.Fatalf("draw %d: parent streams diverged after unequal child use: %d != %d", i, x, y)
		}
	}
}

// TestSplitSeedDeterministic pins the split chain itself: the same root seed
// always yields the same child seeds in the same order.
func TestSplitSeedDeterministic(t *testing.T) {
	r1, r2 := New(99), New(99)
	for i := 0; i < 8; i++ {
		if s1, s2 := SplitSeed(r1), SplitSeed(r2); s1 != s2 {
			t.Fatalf("split %d: nondeterministic child seed: %d != %d", i, s1, s2)
		}
	}
}

// TestMixIsKeyedNotOrdered verifies the property Mix exists for: the child
// seed depends only on (seed, keys), not on creation order or any other
// stream's activity — and distinct keys get distinct streams.
func TestMixIsKeyedNotOrdered(t *testing.T) {
	a := Mix(7, "job/x", "attempt1")
	Keyed(7, "job/y").Int63() // unrelated sibling activity
	b := Mix(7, "job/x", "attempt1")
	if a != b {
		t.Fatalf("Mix not stable: %d != %d", a, b)
	}
	if Mix(7, "job/x", "attempt1") == Mix(7, "job/x", "attempt2") {
		t.Fatal("distinct keys collided")
	}
	if Mix(7, "job/x") == Mix(8, "job/x") {
		t.Fatal("distinct seeds collided")
	}
	// Key-boundary confusion must not alias: ("ab","c") != ("a","bc").
	if Mix(7, "ab", "c") == Mix(7, "a", "bc") {
		t.Fatal("key concatenation aliased")
	}
}

// TestMixPinned pins the exact FNV mapping: replay artifacts that encode a
// (seed, key) pair depend on it never changing.
func TestMixPinned(t *testing.T) {
	const want = int64(8737928352296427625)
	if got := Mix(42, "fig09/flush/size64/threads1", "attempt2"); got != want {
		t.Fatalf("Mix mapping drifted: %d != %d", got, want)
	}
}
