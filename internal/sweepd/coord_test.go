package sweepd

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"skipit/internal/sweep"
)

// fakeClock is an injectable wall clock for lease/backoff tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testStore(t *testing.T) *sweep.Store {
	t.Helper()
	st, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func testCoord(t *testing.T, mutate func(*CoordConfig)) (*Coordinator, *fakeClock) {
	t.Helper()
	clk := newFakeClock()
	cfg := CoordConfig{
		Store:       testStore(t),
		Seed:        42,
		LeaseTTL:    time.Second,
		MaxAttempts: 2,
		BackoffBase: 100 * time.Millisecond,
		BackoffMax:  time.Second,
		Clock:       clk.Now,
		Logf:        t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, clk
}

func spec(group, name, fp string) JobSpec {
	return JobSpec{Group: group, Name: name, Fingerprint: fp}
}

// status fetches one job's state or fails the test.
func status(t *testing.T, c *Coordinator, id string) JobStatus {
	t.Helper()
	resp, err := c.Results(ResultsRequest{IDs: []string{id}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Jobs) != 1 {
		t.Fatalf("Results returned %d jobs for one id", len(resp.Jobs))
	}
	return resp.Jobs[0]
}

func TestSubmitIdempotentAndStoreHit(t *testing.T) {
	c, _ := testCoord(t, nil)
	// Pre-commit one measurement so its submission is a content-address hit.
	c.cfg.Store.Put("fig09", sweep.Record{Group: "fig09", Name: "hit", Fingerprint: "fpA", Cycles: 10, Reps: 1})

	resp, err := c.Submit(SubmitRequest{Jobs: []JobSpec{
		spec("fig09", "hit", "fpA"),
		spec("fig09", "miss", "fpB"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 2 || resp.Known != 0 {
		t.Fatalf("first submit: %+v", resp)
	}
	if st := status(t, c, "fig09/hit"); st.State != StateDone || !st.Cached || st.Record == nil || st.Record.Cycles != 10 {
		t.Fatalf("store hit not resolved at submit: %+v", st)
	}
	if st := status(t, c, "fig09/miss"); st.State != StatePending {
		t.Fatalf("store miss should be pending: %+v", st)
	}

	// Resubmission changes nothing.
	resp, err = c.Submit(SubmitRequest{Jobs: []JobSpec{spec("fig09", "hit", "fpA"), spec("fig09", "miss", "fpB")}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 0 || resp.Known != 2 {
		t.Fatalf("resubmit: %+v", resp)
	}
}

func TestLeaseExpiryRequeuesThenExhaustsBudget(t *testing.T) {
	c, clk := testCoord(t, nil) // MaxAttempts: 2
	if _, err := c.Submit(SubmitRequest{Jobs: []JobSpec{spec("g", "a", "f")}}); err != nil {
		t.Fatal(err)
	}

	lease, err := c.Lease(LeaseRequest{Worker: "w1"})
	if err != nil {
		t.Fatal(err)
	}
	if lease.Job == nil || lease.Attempt != 1 {
		t.Fatalf("first lease: %+v", lease)
	}

	// Silent worker death: no heartbeat for over a lease TTL.
	clk.Advance(1100 * time.Millisecond)
	if err := c.Reap(); err != nil {
		t.Fatal(err)
	}
	st := status(t, c, "g/a")
	if st.State != StatePending || st.Attempt != 1 {
		t.Fatalf("after expiry: %+v", st)
	}

	// The requeue sits behind backoff: an immediate lease gets nothing.
	if l, _ := c.Lease(LeaseRequest{Worker: "w2"}); l.Job != nil {
		t.Fatalf("leased %s before backoff elapsed", l.Job.ID())
	}
	clk.Advance(300 * time.Millisecond) // past base+jitter < 2*base
	lease, err = c.Lease(LeaseRequest{Worker: "w2"})
	if err != nil {
		t.Fatal(err)
	}
	if lease.Job == nil || lease.Attempt != 2 {
		t.Fatalf("retry lease: %+v", lease)
	}

	// Second silent death exhausts the budget: terminal failure, typed.
	clk.Advance(1100 * time.Millisecond)
	if err := c.Reap(); err != nil {
		t.Fatal(err)
	}
	st = status(t, c, "g/a")
	if st.State != StateFailed || st.Failure == nil || st.Failure.Code != FailLeaseExpired {
		t.Fatalf("after budget exhausted: %+v", st)
	}
	if resp, _ := c.Results(ResultsRequest{IDs: []string{"g/a"}}); !resp.Done {
		t.Fatal("terminal failure should report Done to pollers")
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	c1, _ := testCoord(t, nil)
	c2, _ := testCoord(t, nil)
	c3, _ := testCoord(t, func(cfg *CoordConfig) { cfg.Seed = 43 })

	ids := []string{"fig09/flush/size64", "fig11/skipit/threads4", "g/a"}
	var differs bool
	for _, id := range ids {
		for attempt := 1; attempt <= 4; attempt++ {
			d1 := c1.backoffFor(id, attempt)
			d2 := c2.backoffFor(id, attempt)
			if d1 != d2 {
				t.Fatalf("same seed, different backoff for %s attempt %d: %s vs %s", id, attempt, d1, d2)
			}
			if d1 != c3.backoffFor(id, attempt) {
				differs = true
			}
			base := c1.cfg.BackoffBase << uint(attempt-1)
			if base > c1.cfg.BackoffMax {
				base = c1.cfg.BackoffMax
			}
			if d1 < base && d1 != c1.cfg.BackoffMax {
				t.Errorf("backoff %s below exponential floor %s (attempt %d)", d1, base, attempt)
			}
			if d1 > c1.cfg.BackoffMax {
				t.Errorf("backoff %s above cap %s", d1, c1.cfg.BackoffMax)
			}
		}
	}
	if !differs {
		t.Error("seed 42 and 43 produced identical schedules everywhere; jitter is not seeded")
	}
}

func TestLeaseIdempotentPerWorker(t *testing.T) {
	c, _ := testCoord(t, nil)
	if _, err := c.Submit(SubmitRequest{Jobs: []JobSpec{spec("g", "a", "f"), spec("g", "b", "f")}}); err != nil {
		t.Fatal(err)
	}
	// A duplicated request (or a dropped response) must not orphan a lease:
	// the worker gets the same grant back, at the same attempt.
	l1, _ := c.Lease(LeaseRequest{Worker: "w1"})
	l2, _ := c.Lease(LeaseRequest{Worker: "w1"})
	if l2.Job == nil || l2.Job.ID() != l1.Job.ID() || l2.LeaseID != l1.LeaseID || l2.Attempt != l1.Attempt {
		t.Fatalf("re-request changed the lease: %+v vs %+v", l1, l2)
	}
	// A different worker gets the other job.
	l3, _ := c.Lease(LeaseRequest{Worker: "w2"})
	if l3.Job == nil || l3.Job.ID() == l1.Job.ID() {
		t.Fatalf("second worker's lease: %+v", l3)
	}
}

func TestCompleteFailureConsumesRetryBudget(t *testing.T) {
	c, clk := testCoord(t, nil) // MaxAttempts: 2
	if _, err := c.Submit(SubmitRequest{Jobs: []JobSpec{spec("g", "a", "f")}}); err != nil {
		t.Fatal(err)
	}

	lease, _ := c.Lease(LeaseRequest{Worker: "w1"})
	resp, err := c.Complete(CompleteRequest{Worker: "w1", LeaseID: lease.LeaseID,
		Failure: &Failure{Code: FailRunError, Message: "measure blew up"}})
	if err != nil || !resp.Accepted {
		t.Fatalf("first failure: %+v, %v", resp, err)
	}
	if st := status(t, c, "g/a"); st.State != StatePending {
		t.Fatalf("should be requeued: %+v", st)
	}

	clk.Advance(300 * time.Millisecond)
	lease, _ = c.Lease(LeaseRequest{Worker: "w1"})
	if lease.Job == nil {
		t.Fatal("no retry lease")
	}
	if _, err := c.Complete(CompleteRequest{Worker: "w1", LeaseID: lease.LeaseID,
		Failure: &Failure{Code: FailRunError, Message: "again"}}); err != nil {
		t.Fatal(err)
	}
	st := status(t, c, "g/a")
	if st.State != StateFailed || st.Failure.Code != FailRunError || st.Attempt != 2 {
		t.Fatalf("budget exhausted: %+v", st)
	}
}

func TestCompleteIdempotentAndStale(t *testing.T) {
	c, clk := testCoord(t, func(cfg *CoordConfig) { cfg.MaxAttempts = 5 })
	if _, err := c.Submit(SubmitRequest{Jobs: []JobSpec{spec("g", "a", "fp1")}}); err != nil {
		t.Fatal(err)
	}
	rec := sweep.Record{Group: "g", Name: "a", Fingerprint: "fp1", Cycles: 77, Reps: 1}

	// w1 leases, goes silent, the lease is reclaimed and re-leased to w2.
	l1, _ := c.Lease(LeaseRequest{Worker: "w1"})
	clk.Advance(1100 * time.Millisecond)
	if err := c.Reap(); err != nil {
		t.Fatal(err)
	}
	clk.Advance(300 * time.Millisecond)
	l2, _ := c.Lease(LeaseRequest{Worker: "w2"})
	if l2.Job == nil || l2.LeaseID == l1.LeaseID {
		t.Fatalf("re-lease: %+v", l2)
	}

	// w1 resurrects and delivers its result under the dead lease. The
	// fingerprint matches, the measurement is deterministic: commit it.
	resp, err := c.Complete(CompleteRequest{Worker: "w1", LeaseID: l1.LeaseID, Record: &rec})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Accepted || !resp.Stale {
		t.Fatalf("stale matching record should commit: %+v", resp)
	}
	if st := status(t, c, "g/a"); st.State != StateDone || st.Record.Cycles != 77 {
		t.Fatalf("not committed: %+v", st)
	}
	if got, ok := c.cfg.Store.Lookup("g", "a", "fp1"); !ok || got.Cycles != 77 {
		t.Fatalf("store missing the committed record: %+v ok=%v", got, ok)
	}

	// w2 finishes too: duplicate completion of a done job is harmless.
	resp, err = c.Complete(CompleteRequest{Worker: "w2", LeaseID: l2.LeaseID, Record: &rec})
	if err != nil || !resp.Accepted || !resp.Stale {
		t.Fatalf("duplicate completion: %+v, %v", resp, err)
	}
	// A stale failure must not un-finish the job.
	resp, err = c.Complete(CompleteRequest{Worker: "w2", LeaseID: l2.LeaseID,
		Failure: &Failure{Code: FailRunError, Message: "late and wrong"}})
	if err != nil || resp.Accepted || !resp.Stale {
		t.Fatalf("stale failure should be discarded: %+v, %v", resp, err)
	}
	if st := status(t, c, "g/a"); st.State != StateDone {
		t.Fatalf("stale failure flipped a done job: %+v", st)
	}
}

func TestCompleteRejectsFingerprintDrift(t *testing.T) {
	c, _ := testCoord(t, nil)
	if _, err := c.Submit(SubmitRequest{Jobs: []JobSpec{spec("g", "a", "fp1")}}); err != nil {
		t.Fatal(err)
	}
	lease, _ := c.Lease(LeaseRequest{Worker: "w1"})
	bad := sweep.Record{Group: "g", Name: "a", Fingerprint: "fpOTHER", Cycles: 1, Reps: 1}
	resp, err := c.Complete(CompleteRequest{Worker: "w1", LeaseID: lease.LeaseID, Record: &bad})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted {
		t.Fatal("drifted fingerprint accepted")
	}
	if st := status(t, c, "g/a"); st.State != StateLeased {
		t.Fatalf("rejection should not change state: %+v", st)
	}
	if _, ok := c.cfg.Store.Lookup("g", "a", "fpOTHER"); ok {
		t.Fatal("drifted record reached the store")
	}
}

func TestOverloadSheddingByPriorityNewestFirst(t *testing.T) {
	c, _ := testCoord(t, func(cfg *CoordConfig) {
		cfg.MinWorkers = 1 // no workers registered: always below floor
		cfg.MaxQueue = 2
	})
	jobs := []JobSpec{
		{Group: "g", Name: "j0", Fingerprint: "f", Priority: 1},
		{Group: "g", Name: "j1", Fingerprint: "f", Priority: 0},
		{Group: "g", Name: "j2", Fingerprint: "f", Priority: 0},
		{Group: "g", Name: "j3", Fingerprint: "f", Priority: 1},
		{Group: "g", Name: "j4", Fingerprint: "f", Priority: 2},
	}
	resp, err := c.Submit(SubmitRequest{Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	// Lowest priority first; within a priority, newest submission first.
	want := []string{"g/j2", "g/j1", "g/j3"}
	if len(resp.Shed) != len(want) {
		t.Fatalf("shed %v, want %v", resp.Shed, want)
	}
	for i := range want {
		if resp.Shed[i] != want[i] {
			t.Fatalf("shed %v, want %v", resp.Shed, want)
		}
	}
	for _, id := range want {
		if st := status(t, c, id); st.State != StateFailed || st.Failure.Code != FailOverloaded {
			t.Fatalf("%s not typed-failed: %+v", id, st)
		}
	}
	for _, id := range []string{"g/j0", "g/j4"} {
		if st := status(t, c, id); st.State != StatePending {
			t.Fatalf("survivor %s: %+v", id, st)
		}
	}

	// With a worker alive, shedding stops.
	if _, err := c.Register(RegisterRequest{Worker: "w1"}); err != nil {
		t.Fatal(err)
	}
	resp, err = c.Submit(SubmitRequest{Jobs: []JobSpec{spec("g", "j5", "f"), spec("g", "j6", "f"), spec("g", "j7", "f")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Shed) != 0 {
		t.Fatalf("shed with a live pool: %v", resp.Shed)
	}
}

func TestJournalRecoveryAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal.jsonl")
	storeDir := filepath.Join(dir, "store")
	clk := newFakeClock()
	open := func() *Coordinator {
		st, err := sweep.Open(storeDir)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewCoordinator(CoordConfig{
			Store: st, JournalPath: journalPath, Seed: 7,
			LeaseTTL: time.Second, MaxAttempts: 3,
			BackoffBase: 50 * time.Millisecond, Clock: clk.Now, Logf: t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	c1 := open()
	if _, err := c1.Submit(SubmitRequest{Jobs: []JobSpec{
		spec("g", "done", "fpD"), spec("g", "leased", "fpL"), spec("g", "pending", "fpP"),
	}}); err != nil {
		t.Fatal(err)
	}
	// Finish one.
	l, _ := c1.Lease(LeaseRequest{Worker: "w1"})
	if l.Job == nil || l.Job.Name != "done" {
		t.Fatalf("lease order: %+v", l)
	}
	rec := sweep.Record{Group: "g", Name: "done", Fingerprint: "fpD", Cycles: 5, Reps: 1}
	if _, err := c1.Complete(CompleteRequest{Worker: "w1", LeaseID: l.LeaseID, Record: &rec}); err != nil {
		t.Fatal(err)
	}
	// Lease another and crash with it outstanding.
	if l, _ = c1.Lease(LeaseRequest{Worker: "w1"}); l.Job == nil || l.Job.Name != "leased" {
		t.Fatalf("second lease: %+v", l)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := open()
	defer c2.Close()
	if st := status(t, c2, "g/done"); st.State != StateDone || st.Record == nil || st.Record.Cycles != 5 {
		t.Fatalf("done job lost: %+v", st)
	}
	// The outstanding lease died with the coordinator: requeued at the same
	// attempt count (the budget was consumed).
	if st := status(t, c2, "g/leased"); st.State != StatePending || st.Attempt != 1 {
		t.Fatalf("leased job after replay: %+v", st)
	}
	if st := status(t, c2, "g/pending"); st.State != StatePending || st.Attempt != 0 {
		t.Fatalf("pending job after replay: %+v", st)
	}

	// The recovered queue still runs: both remaining jobs are leasable now
	// (leases are not durable, so no backoff gate survives the restart).
	// Two workers, because Lease is idempotent per worker: one worker asking
	// twice gets the same lease back, not a second job.
	names := map[string]bool{}
	for _, worker := range []string{"w2", "w3"} {
		l, err := c2.Lease(LeaseRequest{Worker: worker})
		if err != nil || l.Job == nil {
			t.Fatalf("post-recovery lease for %s: %+v, %v", worker, l, err)
		}
		names[l.Job.Name] = true
	}
	if !names["leased"] || !names["pending"] {
		t.Fatalf("post-recovery leases: %v", names)
	}
}

func TestResultsUnknownIDTerminates(t *testing.T) {
	c, _ := testCoord(t, nil)
	resp, err := c.Results(ResultsRequest{IDs: []string{"g/ghost"}})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Done || len(resp.Jobs) != 1 {
		t.Fatalf("unknown id poll: %+v", resp)
	}
	if resp.Jobs[0].State != StateFailed || resp.Jobs[0].Failure.Code != FailUnknownJob {
		t.Fatalf("unknown id should fail typed: %+v", resp.Jobs[0])
	}
}
