package chaos

import (
	"errors"
	"fmt"
	"math/rand"

	"skipit/internal/detrand"
	"skipit/internal/isa"
	"skipit/internal/sim"
	"skipit/internal/trace"
)

// recorderDepth is the per-component flight-recorder ring depth armed for
// every chaos run: enough history to see the transactions surrounding a
// failure without bloating .chaos.json artifacts.
const recorderDepth = 64

// FailKind classifies a failing run.
type FailKind string

const (
	// FailInvariant: sim.CheckInvariants reported a cross-layer violation.
	FailInvariant FailKind = "invariant"
	// FailHang: the forward-progress watchdog tripped.
	FailHang FailKind = "hang"
	// FailPanic: a panic escaped a simulator component.
	FailPanic FailKind = "panic"
	// FailTimeout: the cycle limit elapsed with progress still trickling.
	FailTimeout FailKind = "timeout"
	// FailCorruption: a load observed a value the golden sequential model
	// says it cannot (e.g. a silently leaked ECC flip).
	FailCorruption FailKind = "corruption"
)

// Failure describes one failing run.
type Failure struct {
	Kind    FailKind        `json:"kind"`
	Message string          `json:"message"`
	Cycle   int64           `json:"cycle"`
	Report  *sim.HangReport `json:"report,omitempty"` // hang/panic only
	// FlightRecorder holds the per-component event-ring dump for failures
	// without a HangReport (timeout, invariant, corruption); hang and panic
	// failures carry the dump inside Report instead. Deterministic, so
	// fast-forwarded and single-stepped replays produce identical dumps.
	FlightRecorder []trace.RecDump `json:"flight_recorder,omitempty"`
}

func (f *Failure) Error() string {
	return fmt.Sprintf("chaos: %s at cycle %d: %s", f.Kind, f.Cycle, f.Message)
}

// Stats summarizes a run's chaos activity, read back from the metrics
// registry.
type Stats struct {
	Cycles            int64        `json:"cycles"`
	FaultsInjected    uint64       `json:"faults_injected"`
	EccFlips          uint64       `json:"ecc_flips"`
	EccDirtyUnrec     uint64       `json:"ecc_dirty_unrecoverable"`
	RefetchRecoveries uint64       `json:"refetch_recoveries"`
	WatchdogTrips     uint64       `json:"watchdog_trips"`
	Flips             []FlipRecord `json:"flips,omitempty"`
}

// Case is one fuzzer iteration's parameters; everything concrete (programs,
// schedule) derives deterministically from Seed.
type Case struct {
	Seed      int64
	Cores     int
	ProgLen   int
	NumFaults int
	// CycleLimit bounds the run; WatchdogLimit arms the forward-progress
	// watchdog (0 disables).
	CycleLimit    int64
	WatchdogLimit int64
}

// DefaultCase sizes a fuzzer iteration for the default SoC.
func DefaultCase(seed int64, cores int) Case {
	return Case{
		Seed:          seed,
		Cores:         cores,
		ProgLen:       24,
		NumFaults:     12,
		CycleLimit:    300_000,
		WatchdogLimit: 20_000,
	}
}

// Input is the concrete, replayable form of a case: the programs and the
// schedule, plus the run bounds. Shrinking operates on Inputs.
type Input struct {
	Progs         []*isa.Program
	Schedule      Schedule
	CycleLimit    int64
	WatchdogLimit int64
}

// BuildInput expands a case into its concrete input. Deterministic: the same
// case always yields the same programs and schedule.
func BuildInput(c Case) Input {
	if c.Cores < 1 {
		c.Cores = 1
	}
	rng := detrand.New(c.Seed)
	progs := make([]*isa.Program, c.Cores)
	var pool []uint64
	for i := 0; i < c.Cores; i++ {
		p, addrs := genProgram(rng, i, c.ProgLen)
		progs[i] = p
		pool = append(pool, addrs...)
	}
	gcfg := DefaultGenConfig(c.Cores)
	gcfg.NumFaults = c.NumFaults
	gcfg.AddrPool = pool
	// Concentrate faults where the action is: a ProgLen-instruction program
	// retires in tens of cycles per instruction, so a span tied to program
	// length lands most faults mid-run instead of after quiescence.
	gcfg.CycleSpan = maxi64(300, int64(c.ProgLen)*25)
	gcfg.MaxDuration = maxi64(100, gcfg.CycleSpan/4)
	// Derive the schedule from the same stream so one seed fixes the whole
	// case (the detrand split discipline: one seed, one tree of streams).
	sched := Generate(detrand.SplitSeed(rng), gcfg)
	return Input{
		Progs:         progs,
		Schedule:      sched,
		CycleLimit:    c.CycleLimit,
		WatchdogLimit: c.WatchdogLimit,
	}
}

// genProgram emits a random program for one core over a private address pool
// (disjoint per core, so a sequential per-core golden model predicts every
// load). The pool mixes same-set aliases and distant lines to exercise
// victims, and the program ends with a fence so all stores land before the
// run is judged quiescent.
func genProgram(rng *rand.Rand, core, length int) (*isa.Program, []uint64) {
	base := 0x1000 + uint64(core)<<20
	lines := []uint64{
		base, base + 64, base + 128, base + 192,
		base + 0x1000, base + 0x2000, base + 0x1040,
	}
	pick := func() uint64 { return lines[rng.Intn(len(lines))] + 8*uint64(rng.Intn(8)) }
	b := isa.NewBuilder()
	for i := 0; i < length; i++ {
		switch r := rng.Intn(20); {
		case r < 6:
			b.Store(pick(), rng.Uint64()%1000+1)
		case r < 11:
			b.Load(pick())
		case r < 13:
			b.AmoAdd(pick(), rng.Uint64()%100+1)
		case r < 15:
			b.AmoSwap(pick(), rng.Uint64()%1000+1)
		case r < 17:
			b.CboClean(lines[rng.Intn(len(lines))])
		case r < 18:
			b.CboFlush(lines[rng.Intn(len(lines))])
		case r < 19:
			b.CflushDL1(lines[rng.Intn(len(lines))])
		default:
			b.Fence()
		}
	}
	b.Fence()
	return b.Build(), lines
}

// RunInput executes one concrete input on a fresh default system: faults
// armed, watchdog armed, invariants checked every cycle, and load values
// verified against the golden model afterwards. A nil Failure means the run
// survived.
func RunInput(in Input) (*Failure, Stats) {
	return runInput(in, true, 0)
}

// RunInputParallel is RunInput on a parallel system (sim.Config.Parallel =
// workers; 0 runs serially). Faults are applied at window barriers clamped to
// their scheduled cycles, so the verdict — kind, cycle, message, stats, and
// the flight-recorder dump — is identical for every worker count; it also
// matches the serial verdict except that transaction ids in recorder dumps
// are minted from per-shard strided sequences.
func RunInputParallel(in Input, workers int) (*Failure, Stats) {
	return runInput(in, true, workers)
}

// runInput is RunInput with the fast-forward clock switchable (so the
// equivalence tests can pin fast-forwarded replays against single-stepped
// ones) and the parallel worker count exposed.
func runInput(in Input, fastForward bool, parallel int) (*Failure, Stats) {
	cfg := sim.DefaultConfig(len(in.Progs))
	cfg.Parallel = parallel
	s := sim.New(cfg)
	s.SetFastForward(fastForward)
	s.EnableFlightRecorder(recorderDepth)
	if in.WatchdogLimit > 0 {
		s.ArmWatchdog(in.WatchdogLimit)
	}
	r := Arm(s, in.Schedule)
	for i, p := range in.Progs {
		if p == nil {
			p = isa.NewBuilder().Build()
		}
		s.Cores[i].SetProgram(p)
	}
	var fail *Failure
	coresDone := false
	for {
		if !coresDone {
			all := true
			for _, c := range s.Cores {
				if !c.Done() {
					all = false
					break
				}
			}
			coresDone = all
		}
		if coresDone && s.Quiescent() {
			break
		}
		if s.Now() >= in.CycleLimit {
			fail = &Failure{
				Kind:    FailTimeout,
				Cycle:   s.Now(),
				Message: fmt.Sprintf("cycle limit %d exceeded before quiescence", in.CycleLimit),
			}
			break
		}
		if err := r.StepChecked(in.CycleLimit); err != nil {
			fail = classify(err, s.Now())
			break
		}
	}
	if fail == nil {
		fail = checkValues(in.Progs, s)
	}
	if fail != nil && fail.Report == nil {
		fail.FlightRecorder = s.FlightRecorder().Dump()
	}
	m := s.Metrics()
	st := Stats{
		Cycles:            s.Now(),
		FaultsInjected:    m.Counter("chaos", "faults_injected").Value(),
		EccFlips:          m.Counter("chaos", "ecc_flips").Value(),
		EccDirtyUnrec:     m.Counter("chaos", "ecc_dirty_unrecoverable").Value(),
		RefetchRecoveries: m.Counter("chaos", "refetch_recoveries").Value(),
		WatchdogTrips:     m.Counter("sim", "watchdog_trips").Value(),
		Flips:             r.Flips(),
	}
	return fail, st
}

func classify(err error, now int64) *Failure {
	var he *sim.HangError
	if errors.As(err, &he) {
		kind := FailHang
		if he.Report.Reason == "panic" {
			kind = FailPanic
		}
		return &Failure{Kind: kind, Cycle: now, Message: he.Report.Summary(), Report: he.Report}
	}
	return &Failure{Kind: FailInvariant, Cycle: now, Message: err.Error()}
}

// checkValues replays each program against a sequential golden model. Address
// spaces are disjoint per core, so every load and AMO must observe exactly
// the value the core's own program history dictates; any divergence is data
// corruption the cache hierarchy let through.
func checkValues(progs []*isa.Program, s *sim.System) *Failure {
	for c, p := range progs {
		if p == nil {
			continue
		}
		golden := map[uint64]uint64{}
		timings := s.Cores[c].Timings()
		for i, in := range p.Instrs {
			switch in.Op {
			case isa.OpStore:
				golden[in.Addr] = in.Data
			case isa.OpLoad, isa.OpAmoAdd, isa.OpAmoSwap:
				want := golden[in.Addr]
				if got := timings[i].LoadValue; got != want {
					return &Failure{
						Kind:  FailCorruption,
						Cycle: s.Now(),
						Message: fmt.Sprintf(
							"core %d instr %d (%v %#x): loaded %#x, golden model says %#x",
							c, i, in.Op, in.Addr, got, want),
					}
				}
				switch in.Op {
				case isa.OpAmoAdd:
					golden[in.Addr] = want + in.Data
				case isa.OpAmoSwap:
					golden[in.Addr] = in.Data
				}
			}
		}
	}
	return nil
}

// Run expands and executes one fuzzer case.
func Run(c Case) (*Failure, Stats, Input) {
	in := BuildInput(c)
	fail, st := RunInput(in)
	return fail, st, in
}
