package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"skipit/internal/tilelink"
)

// fakePorts is a minimal in-memory data cache for exercising the flush unit
// in isolation.
type fakePorts struct {
	lines   map[uint64]*fakeLine
	dataArr map[uint64][]byte // survives metadata invalidation, like SRAM
	// sent collects RootRelease messages; acceptEvery models TL-C
	// occupancy by rejecting sends except when now%acceptEvery == 0
	// (acceptEvery <= 1 accepts always).
	sent        []tilelink.Msg
	acceptEvery int64

	metaInvalidates int
	metaClears      int
}

type fakeLine struct {
	dirty bool
	skip  bool
}

func newFakePorts() *fakePorts {
	return &fakePorts{
		lines:       map[uint64]*fakeLine{},
		dataArr:     map[uint64][]byte{},
		acceptEvery: 1,
	}
}

func (p *fakePorts) addLine(addr uint64, dirty, skip bool) {
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(addr>>6) + byte(i)
	}
	p.dataArr[addr] = data
	p.lines[addr] = &fakeLine{dirty: dirty, skip: skip}
}

func (p *fakePorts) meta(addr uint64) LineMeta {
	l, ok := p.lines[addr]
	if !ok {
		return LineMeta{}
	}
	return LineMeta{Hit: true, Dirty: l.dirty, Perm: tilelink.PermTrunk, Skip: l.skip}
}

func (p *fakePorts) MetaInvalidate(addr uint64) {
	p.metaInvalidates++
	delete(p.lines, addr)
}

func (p *fakePorts) MetaClearDirty(addr uint64) {
	p.metaClears++
	if l, ok := p.lines[addr]; ok {
		l.dirty = false
	}
}

func (p *fakePorts) MetaLineState(addr uint64) LineMeta { return p.meta(addr) }

func (p *fakePorts) MetaSetSkip(addr uint64, v bool) {
	if l, ok := p.lines[addr]; ok {
		l.skip = v
	}
}

func (p *fakePorts) DataRead(addr uint64) []byte {
	d, ok := p.dataArr[addr]
	if !ok {
		return make([]byte, 64)
	}
	out := make([]byte, len(d))
	copy(out, d)
	return out
}

func (p *fakePorts) SendRootRelease(now int64, m tilelink.Msg) bool {
	if p.acceptEvery > 1 && now%p.acceptEvery != 0 {
		return false
	}
	p.sent = append(p.sent, m)
	return true
}

func newUnit(t *testing.T, mut func(*Config)) (*FlushUnit, *fakePorts) {
	t.Helper()
	p := newFakePorts()
	cfg := DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	return NewFlushUnit(cfg, p), p
}

// run drives the unit until quiescent, acking every RootRelease the cycle
// after it is observed. Returns the number of cycles consumed.
func run(t *testing.T, u *FlushUnit, p *fakePorts, limit int64) int64 {
	t.Helper()
	acked := 0
	for now := int64(0); now < limit; now++ {
		u.Tick(now, true, true)
		for acked < len(p.sent) {
			u.OnRootReleaseAck(now, p.sent[acked].Addr)
			acked++
		}
		if !u.Flushing() {
			return now
		}
	}
	t.Fatalf("flush unit did not drain within %d cycles (counter=%d)", limit, u.PendingCount())
	return limit
}

func TestFlushDirtyLineFullPath(t *testing.T) {
	u, p := newUnit(t, nil)
	p.addLine(0x1000, true, false)

	if got := u.Offer(0, 0x1000, false, p.meta(0x1000)); got != OfferAccepted {
		t.Fatalf("Offer = %v, want Accepted", got)
	}
	if !u.Flushing() {
		t.Fatal("flush counter not raised on enqueue")
	}
	run(t, u, p, 100)

	if len(p.sent) != 1 {
		t.Fatalf("sent %d RootReleases, want 1", len(p.sent))
	}
	m := p.sent[0]
	if m.Op != tilelink.OpRootReleaseFlushData {
		t.Errorf("op = %v, want RootReleaseFlushData", m.Op)
	}
	if m.Data[0] != byte(0x1000>>6) {
		t.Error("RootRelease carried wrong data")
	}
	if _, present := p.lines[0x1000]; present {
		t.Error("CBO.FLUSH did not invalidate the line")
	}
	if u.Flushing() {
		t.Error("flush counter nonzero after ack")
	}
}

func TestCleanDirtyLineKeepsLineAndClearsDirty(t *testing.T) {
	u, p := newUnit(t, nil)
	p.addLine(0x2000, true, false)
	u.Offer(0, 0x2000, true, p.meta(0x2000))
	run(t, u, p, 100)

	if len(p.sent) != 1 || p.sent[0].Op != tilelink.OpRootReleaseCleanData {
		t.Fatalf("sent = %v, want one RootReleaseCleanData", p.sent)
	}
	l, present := p.lines[0x2000]
	if !present {
		t.Fatal("CBO.CLEAN invalidated the line")
	}
	if l.dirty {
		t.Error("CBO.CLEAN left dirty bit set")
	}
	if !l.skip {
		t.Error("completed CBO.CLEAN did not set the skip bit")
	}
}

func TestFlushCleanLineSendsDatalessRelease(t *testing.T) {
	u, p := newUnit(t, nil)
	p.addLine(0x3000, false, false)
	u.Offer(0, 0x3000, false, p.meta(0x3000))
	run(t, u, p, 100)

	if len(p.sent) != 1 || p.sent[0].Op != tilelink.OpRootReleaseFlush {
		t.Fatalf("sent = %v, want one data-less RootReleaseFlush", p.sent)
	}
	if _, present := p.lines[0x3000]; present {
		t.Error("flush of clean line did not invalidate metadata")
	}
	if p.metaInvalidates != 1 {
		t.Errorf("metaInvalidates = %d, want 1", p.metaInvalidates)
	}
}

func TestCleanOfCleanLineLeavesMetadataUntouched(t *testing.T) {
	u, p := newUnit(t, func(c *Config) { c.SkipIt = false })
	p.addLine(0x4000, false, false)
	u.Offer(0, 0x4000, true, p.meta(0x4000))
	run(t, u, p, 100)

	if p.metaInvalidates != 0 || p.metaClears != 0 {
		t.Error("CBO.CLEAN of clean line touched metadata")
	}
	if len(p.sent) != 1 || p.sent[0].Op != tilelink.OpRootReleaseClean {
		t.Fatalf("sent = %v, want one data-less RootReleaseClean", p.sent)
	}
}

func TestMissStillSendsRootRelease(t *testing.T) {
	// §5.2: on a miss the RootRelease is sent regardless, because the line
	// may need to be written back from other cores or from L2.
	u, p := newUnit(t, nil)
	if got := u.Offer(0, 0x5000, false, LineMeta{}); got != OfferAccepted {
		t.Fatalf("Offer on miss = %v, want Accepted", got)
	}
	run(t, u, p, 100)
	if len(p.sent) != 1 || p.sent[0].Op != tilelink.OpRootReleaseFlush {
		t.Fatalf("sent = %v, want one data-less RootReleaseFlush", p.sent)
	}
}

func TestSkipItDropsPersistedLine(t *testing.T) {
	u, p := newUnit(t, nil)
	p.addLine(0x6000, false, true)
	if got := u.Offer(0, 0x6000, false, p.meta(0x6000)); got != OfferDropped {
		t.Fatalf("Offer = %v, want Dropped", got)
	}
	if u.Flushing() {
		t.Error("dropped request raised the flush counter")
	}
	if u.Stats().SkipDropped != 1 {
		t.Error("SkipDropped not counted")
	}
}

func TestSkipItDisabledDoesNotDrop(t *testing.T) {
	u, p := newUnit(t, func(c *Config) { c.SkipIt = false })
	p.addLine(0x6000, false, true)
	if got := u.Offer(0, 0x6000, false, p.meta(0x6000)); got != OfferAccepted {
		t.Fatalf("Offer = %v, want Accepted with SkipIt off", got)
	}
}

func TestSkipBitIgnoredWhenDirty(t *testing.T) {
	// §6.2: the skip bit is only valid when the dirty bit is unset.
	u, p := newUnit(t, nil)
	p.addLine(0x7000, true, true)
	if got := u.Offer(0, 0x7000, false, p.meta(0x7000)); got != OfferAccepted {
		t.Fatalf("Offer = %v, want Accepted for dirty line", got)
	}
}

func TestCoalescingSameKindSameLine(t *testing.T) {
	u, p := newUnit(t, func(c *Config) { c.SkipIt = false })
	p.addLine(0x8000, true, false)
	if u.Offer(0, 0x8000, true, p.meta(0x8000)) != OfferAccepted {
		t.Fatal("first offer rejected")
	}
	if got := u.Offer(0, 0x8000, true, p.meta(0x8000)); got != OfferDropped {
		t.Fatalf("second same-kind offer = %v, want Dropped (coalesced)", got)
	}
	if u.PendingCount() != 1 {
		t.Fatalf("counter = %d after coalesce, want 1", u.PendingCount())
	}
}

func TestNoCoalesceAcrossKinds(t *testing.T) {
	// §5.3: a CBO.CLEAN may coalesce with a pending CBO.CLEAN but not with
	// a pending CBO.FLUSH.
	u, p := newUnit(t, func(c *Config) { c.SkipIt = false })
	p.addLine(0x8000, true, false)
	u.Offer(0, 0x8000, false, p.meta(0x8000))
	if got := u.Offer(0, 0x8000, true, p.meta(0x8000)); got == OfferDropped {
		t.Fatal("CBO.CLEAN coalesced with pending CBO.FLUSH")
	}
}

func TestNoCoalesceAcrossLines(t *testing.T) {
	u, p := newUnit(t, func(c *Config) { c.SkipIt = false })
	p.addLine(0x8000, true, false)
	p.addLine(0x9000, true, false)
	u.Offer(0, 0x8000, true, p.meta(0x8000))
	if got := u.Offer(0, 0x9000, true, p.meta(0x9000)); got != OfferAccepted {
		t.Fatalf("different-line offer = %v, want Accepted", got)
	}
	if u.PendingCount() != 2 {
		t.Fatalf("counter = %d, want 2", u.PendingCount())
	}
}

func TestQueueFullNacks(t *testing.T) {
	u, p := newUnit(t, func(c *Config) {
		c.QueueDepth = 2
		c.Coalescing = false
		c.SkipIt = false
	})
	for i := uint64(0); i < 2; i++ {
		addr := 0x1000 + i*64
		p.addLine(addr, true, false)
		if u.Offer(0, addr, false, p.meta(addr)) != OfferAccepted {
			t.Fatalf("offer %d rejected below capacity", i)
		}
	}
	p.addLine(0x8000, true, false)
	if got := u.Offer(0, 0x8000, false, p.meta(0x8000)); got != OfferNack {
		t.Fatalf("over-capacity offer = %v, want Nack", got)
	}
	if u.Stats().NackQueueFull != 1 {
		t.Error("NackQueueFull not counted")
	}
}

func TestFSHRStateSequenceDirtyFlush(t *testing.T) {
	u, p := newUnit(t, nil)
	p.addLine(0x1000, true, false)
	u.Offer(0, 0x1000, false, p.meta(0x1000))

	// Cycle 0: dequeue + meta_write (shared allocation cycle).
	u.Tick(0, true, true)
	if got := u.FSHRStates()[0]; got != FSHRFillBuffer {
		t.Fatalf("after cycle 0: %v, want fill_buffer", got)
	}
	// Cycle 1: fill_buffer completes in one cycle (wide data array).
	u.Tick(1, true, true)
	if got := u.FSHRStates()[0]; got != FSHRRootReleaseData {
		t.Fatalf("after cycle 1: %v, want root_release_data", got)
	}
	// Cycle 2: send accepted -> waiting for ack.
	u.Tick(2, true, true)
	if got := u.FSHRStates()[0]; got != FSHRRootReleaseAck {
		t.Fatalf("after cycle 2: %v, want root_release_ack", got)
	}
	u.OnRootReleaseAck(3, 0x1000)
	if got := u.FSHRStates()[0]; got != FSHRInvalid {
		t.Fatalf("after ack: %v, want invalid", got)
	}
}

func TestNarrowDataArrayTakesLonger(t *testing.T) {
	wide, pw := newUnit(t, nil)
	narrow, pn := newUnit(t, func(c *Config) { c.WideDataArray = false })
	pw.addLine(0x1000, true, false)
	pn.addLine(0x1000, true, false)
	wide.Offer(0, 0x1000, false, pw.meta(0x1000))
	narrow.Offer(0, 0x1000, false, pn.meta(0x1000))
	cw := run(t, wide, pw, 200)
	cn := run(t, narrow, pn, 200)
	if cn <= cw {
		t.Fatalf("narrow array (%d cycles) not slower than wide (%d)", cn, cw)
	}
	if cn-cw != 7 {
		t.Errorf("narrow-wide delta = %d cycles, want 7 (8-word fill vs 1)", cn-cw)
	}
}

func TestProbeInvalidateToNClearsHitAndDirty(t *testing.T) {
	u, p := newUnit(t, nil)
	p.addLine(0x1000, true, false)
	u.Offer(0, 0x1000, false, p.meta(0x1000))
	// Probe arrives before dequeue (§5.4.1 scenario).
	u.ProbeInvalidate(0x1000, tilelink.CapToN)
	// The other core extracted the data; our line is gone.
	delete(p.lines, 0x1000)
	run(t, u, p, 100)
	if len(p.sent) != 1 || p.sent[0].Op != tilelink.OpRootReleaseFlush {
		t.Fatalf("sent = %v, want data-less RootReleaseFlush after probe inval", p.sent)
	}
}

func TestProbeInvalidateToBClearsOnlyDirty(t *testing.T) {
	u, p := newUnit(t, nil)
	p.addLine(0x1000, true, false)
	u.Offer(0, 0x1000, false, p.meta(0x1000))
	u.ProbeInvalidate(0x1000, tilelink.CapToB)
	p.lines[0x1000].dirty = false // probe extracted dirty data
	run(t, u, p, 100)
	// Still a hit, no longer dirty, flush: meta invalidated + data-less.
	if len(p.sent) != 1 || p.sent[0].Op != tilelink.OpRootReleaseFlush {
		t.Fatalf("sent = %v", p.sent)
	}
	if p.metaInvalidates != 1 {
		t.Error("flush after toB probe did not invalidate metadata")
	}
}

func TestEvictInvalidate(t *testing.T) {
	u, p := newUnit(t, nil)
	p.addLine(0x1000, true, false)
	u.Offer(0, 0x1000, false, p.meta(0x1000))
	u.EvictInvalidate(0x1000)
	delete(p.lines, 0x1000) // WBU released the line
	run(t, u, p, 100)
	if len(p.sent) != 1 || p.sent[0].Op != tilelink.OpRootReleaseFlush {
		t.Fatalf("sent = %v, want data-less release after eviction", p.sent)
	}
	if u.Stats().EvictInvals != 1 {
		t.Error("EvictInvals not counted")
	}
}

func TestProbeRdyLowBlocksDequeue(t *testing.T) {
	u, p := newUnit(t, nil)
	p.addLine(0x1000, true, false)
	u.Offer(0, 0x1000, false, p.meta(0x1000))
	for now := int64(0); now < 10; now++ {
		u.Tick(now, false, true) // probe_rdy low
	}
	if u.ActiveFSHRs() != 0 {
		t.Fatal("request dequeued while probe_rdy low")
	}
	u.Tick(10, true, true)
	if u.ActiveFSHRs() != 1 {
		t.Fatal("request not dequeued once probe_rdy high")
	}
}

func TestWbRdyLowBlocksDequeue(t *testing.T) {
	u, p := newUnit(t, nil)
	p.addLine(0x1000, true, false)
	u.Offer(0, 0x1000, false, p.meta(0x1000))
	u.Tick(0, true, false) // wb_rdy low (§5.4.2)
	if u.ActiveFSHRs() != 0 {
		t.Fatal("request dequeued while wb_rdy low")
	}
}

func TestFlushRdySignalWindow(t *testing.T) {
	u, p := newUnit(t, nil)
	p.addLine(0x1000, true, false)
	u.Offer(0, 0x1000, false, p.meta(0x1000))
	if !u.FlushRdy() {
		t.Fatal("flush_rdy low with request only queued")
	}
	u.Tick(0, true, true) // allocated, in meta_write/fill path
	if u.FlushRdy() {
		t.Fatal("flush_rdy high while FSHR pre-ack")
	}
	u.Tick(1, true, true)
	u.Tick(2, true, true) // release sent, now waiting for ack
	if !u.FlushRdy() {
		t.Fatal("flush_rdy low in root_release_ack state")
	}
}

func TestLoadConflictForwardsFilledBuffer(t *testing.T) {
	u, p := newUnit(t, nil)
	p.addLine(0x1000, true, false)
	u.Offer(0, 0x1000, false, p.meta(0x1000))
	u.Tick(0, true, true) // meta_write (line invalidated) -> fill pending
	if _, nack := u.LoadConflict(0x1000); !nack {
		t.Fatal("load not nacked before buffer fill")
	}
	u.Tick(1, true, true) // buffer filled
	data, nack := u.LoadConflict(0x1000)
	if nack || data == nil {
		t.Fatal("load not forwarded from filled FSHR buffer")
	}
	if data[0] != byte(0x1000>>6) {
		t.Error("forwarded data wrong")
	}
}

func TestStoreConflictRules(t *testing.T) {
	u, p := newUnit(t, nil)
	p.addLine(0x1000, true, false)
	u.Offer(0, 0x1000, true, p.meta(0x1000)) // CBO.CLEAN, dirty line
	// Queued: store must nack.
	if !u.StoreConflict(0x1000) {
		t.Fatal("store allowed while request queued")
	}
	u.Tick(0, true, true) // meta_write
	if !u.StoreConflict(0x1000) {
		t.Fatal("store allowed before buffer filled on dirty clean")
	}
	u.Tick(1, true, true) // buffer filled
	if u.StoreConflict(0x1000) {
		t.Fatal("store nacked after CBO.CLEAN buffer filled")
	}
	// Unrelated line never conflicts.
	if u.StoreConflict(0xF000) {
		t.Fatal("store to unrelated line nacked")
	}
}

func TestStoreConflictFlushAlwaysNacks(t *testing.T) {
	u, p := newUnit(t, nil)
	p.addLine(0x1000, true, false)
	u.Offer(0, 0x1000, false, p.meta(0x1000)) // CBO.FLUSH
	u.Tick(0, true, true)
	u.Tick(1, true, true)
	u.Tick(2, true, true)
	if !u.StoreConflict(0x1000) {
		t.Fatal("store allowed against in-flight CBO.FLUSH")
	}
}

func TestOfferNacksOnActiveFSHRSameLine(t *testing.T) {
	u, p := newUnit(t, func(c *Config) { c.SkipIt = false })
	p.addLine(0x1000, true, false)
	u.Offer(0, 0x1000, false, p.meta(0x1000))
	u.Tick(0, true, true) // FSHR active
	if got := u.Offer(1, 0x1000, false, p.meta(0x1000)); got != OfferNack {
		t.Fatalf("offer against active FSHR = %v, want Nack", got)
	}
}

func TestManyLinesPipelineAcrossFSHRs(t *testing.T) {
	u, p := newUnit(t, func(c *Config) { c.QueueDepth = 64 })
	var offered int
	for i := uint64(0); i < 32; i++ {
		addr := 0x1000 + i*64
		p.addLine(addr, true, false)
		if u.Offer(0, addr, false, p.meta(addr)) == OfferAccepted {
			offered++
		}
	}
	if offered != 32 {
		t.Fatalf("accepted %d offers, want 32", offered)
	}
	run(t, u, p, 10_000)
	if len(p.sent) != 32 {
		t.Fatalf("sent %d releases, want 32", len(p.sent))
	}
}

func TestRoundRobinAllocation(t *testing.T) {
	u, p := newUnit(t, func(c *Config) { c.QueueDepth = 16 })
	// Offer four requests; stall the TL-C port so FSHRs stay occupied.
	p.acceptEvery = 1 << 60
	for i := uint64(0); i < 4; i++ {
		addr := 0x1000 + i*64
		p.addLine(addr, true, false)
		u.Offer(0, addr, false, p.meta(addr))
	}
	for now := int64(0); now < 8; now++ {
		u.Tick(now, true, true)
	}
	states := u.FSHRStates()
	busy := 0
	for _, s := range states[:4] {
		if s != FSHRInvalid {
			busy++
		}
	}
	if busy != 4 {
		t.Fatalf("round-robin did not spread 4 requests over first 4 FSHRs: %v", states)
	}
}

func TestResetQuiesces(t *testing.T) {
	u, p := newUnit(t, nil)
	p.addLine(0x1000, true, false)
	u.Offer(0, 0x1000, false, p.meta(0x1000))
	u.Tick(0, true, true)
	u.Reset()
	if u.Flushing() || u.ActiveFSHRs() != 0 || u.QueueLen() != 0 {
		t.Fatal("reset left state behind")
	}
}

func TestCrossKindCleanIntoQueuedFlush(t *testing.T) {
	u, p := newUnit(t, func(c *Config) { c.SkipIt = false; c.CoalesceCrossKind = true })
	p.addLine(0x1000, true, false)
	u.Offer(0, 0x1000, false, p.meta(0x1000)) // flush queued
	if got := u.Offer(0, 0x1000, true, p.meta(0x1000)); got != OfferDropped {
		t.Fatalf("clean into queued flush = %v, want Dropped", got)
	}
	run(t, u, p, 100)
	// One flush executed; the line must be invalidated (flush semantics).
	if _, present := p.lines[0x1000]; present {
		t.Fatal("line survived the flush the clean coalesced into")
	}
	if u.Stats().CoalescedCross != 1 {
		t.Fatal("cross-kind merge not counted")
	}
}

func TestCrossKindFlushUpgradesQueuedClean(t *testing.T) {
	u, p := newUnit(t, func(c *Config) { c.SkipIt = false; c.CoalesceCrossKind = true })
	p.addLine(0x1000, true, false)
	u.Offer(0, 0x1000, true, p.meta(0x1000)) // clean queued
	if got := u.Offer(0, 0x1000, false, p.meta(0x1000)); got != OfferDropped {
		t.Fatalf("flush into queued clean = %v, want Dropped", got)
	}
	run(t, u, p, 100)
	// The upgraded entry must execute with flush semantics: invalidation
	// plus a RootReleaseFlushData.
	if _, present := p.lines[0x1000]; present {
		t.Fatal("upgraded flush did not invalidate the line")
	}
	if len(p.sent) != 1 || p.sent[0].Op != tilelink.OpRootReleaseFlushData {
		t.Fatalf("sent %v, want one RootReleaseFlushData", p.sent)
	}
	if u.PendingCount() != 0 {
		t.Fatal("counter nonzero after upgraded flush completed")
	}
}

func TestCrossKindOffByDefault(t *testing.T) {
	u, p := newUnit(t, func(c *Config) { c.SkipIt = false })
	p.addLine(0x1000, true, false)
	u.Offer(0, 0x1000, true, p.meta(0x1000))
	if got := u.Offer(0, 0x1000, false, p.meta(0x1000)); got == OfferDropped {
		t.Fatal("cross-kind coalescing active despite default-off config")
	}
}

// Property: under random offer/probe/evict/tick schedules, the flush counter
// equals queued+active requests, never goes negative, every accepted request
// eventually yields exactly one RootRelease, and the unit always drains.
func TestFlushUnitAccountingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u, p := newUnit(t, func(c *Config) {
			c.QueueDepth = 1 + rng.Intn(8)
			c.NumFSHRs = 1 + rng.Intn(8)
			c.SkipIt = rng.Intn(2) == 0
			c.Coalescing = rng.Intn(2) == 0
			c.CoalesceCrossKind = rng.Intn(2) == 0
			c.WideDataArray = rng.Intn(2) == 0
		})
		lines := []uint64{0x1000, 0x1040, 0x2000, 0x8000}
		now := int64(0)
		acked := 0
		accepted := 0
		for i := 0; i < 300; i++ {
			addr := lines[rng.Intn(len(lines))]
			switch rng.Intn(6) {
			case 0, 1:
				if _, ok := p.lines[addr]; !ok && rng.Intn(2) == 0 {
					p.addLine(addr, rng.Intn(2) == 0, rng.Intn(2) == 0)
				}
				if u.Offer(now, addr, rng.Intn(2) == 0, p.meta(addr)) == OfferAccepted {
					accepted++
				}
			case 2:
				u.ProbeInvalidate(addr, tilelink.CapToN)
				if u.fshrFor(addr) == nil { // probes blocked otherwise
					delete(p.lines, addr)
				}
			case 3:
				if u.fshrFor(addr) == nil {
					u.EvictInvalidate(addr)
					delete(p.lines, addr)
				}
			default:
				u.Tick(now, true, true)
				for acked < len(p.sent) {
					u.OnRootReleaseAck(now, p.sent[acked].Addr)
					acked++
				}
			}
			if u.PendingCount() != u.QueueLen()+u.ActiveFSHRs() {
				return false
			}
			now++
		}
		// Drain completely.
		for i := 0; i < 10_000 && u.Flushing(); i++ {
			u.Tick(now, true, true)
			for acked < len(p.sent) {
				u.OnRootReleaseAck(now, p.sent[acked].Addr)
				acked++
			}
			now++
		}
		if u.Flushing() {
			return false
		}
		// Every accepted request produced exactly one RootRelease.
		return len(p.sent) == accepted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
