package sim

import (
	"math/rand"
	"testing"

	"skipit/internal/isa"
)

func TestAmoAddReturnsOldAndAccumulates(t *testing.T) {
	p := isa.NewBuilder().
		Store(0x1000, 10).
		AmoAdd(0x1000, 5).
		AmoAdd(0x1000, 7).
		Load(0x1000).
		Build()
	s := run1(t, p)
	tm := s.Cores[0].Timings()
	if tm[1].LoadValue != 10 {
		t.Fatalf("first amoadd returned %d, want 10", tm[1].LoadValue)
	}
	if tm[2].LoadValue != 15 {
		t.Fatalf("second amoadd returned %d, want 15", tm[2].LoadValue)
	}
	if tm[3].LoadValue != 22 {
		t.Fatalf("final load = %d, want 22", tm[3].LoadValue)
	}
}

func TestAmoSwapExchanges(t *testing.T) {
	p := isa.NewBuilder().
		Store(0x1000, 3).
		AmoSwap(0x1000, 99).
		Load(0x1000).
		Build()
	s := run1(t, p)
	tm := s.Cores[0].Timings()
	if tm[1].LoadValue != 3 {
		t.Fatalf("amoswap returned %d, want 3", tm[1].LoadValue)
	}
	if tm[2].LoadValue != 99 {
		t.Fatalf("load after swap = %d, want 99", tm[2].LoadValue)
	}
}

func TestAmoOnColdLineGoesThroughMSHR(t *testing.T) {
	s := New(DefaultConfig(1))
	s.Mem.PokeUint64(0x2000, 40)
	p := isa.NewBuilder().AmoAdd(0x2000, 2).Load(0x2000).Build()
	if _, err := s.Run([]*isa.Program{p}, runLimit); err != nil {
		t.Fatal(err)
	}
	tm := s.Cores[0].Timings()
	if tm[0].LoadValue != 40 {
		t.Fatalf("cold amoadd returned %d, want 40", tm[0].LoadValue)
	}
	if tm[1].LoadValue != 42 {
		t.Fatalf("load = %d, want 42", tm[1].LoadValue)
	}
}

// TestAtomicCounterAcrossCores is the canonical atomicity test: four cores
// each add 1 to a shared counter N times through the coherence protocol; the
// final durable value must be exactly 4N, and every AMO must have observed a
// distinct old value.
func TestAtomicCounterAcrossCores(t *testing.T) {
	const cores, perCore = 4, 25
	s := New(DefaultConfig(cores))
	progs := make([]*isa.Program, cores)
	for c := 0; c < cores; c++ {
		b := isa.NewBuilder()
		for i := 0; i < perCore; i++ {
			b.AmoAdd(0x1000, 1)
		}
		b.Fence()
		progs[c] = b.Build()
	}
	if _, err := s.Run(progs, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	seen := map[uint64]bool{}
	for c := 0; c < cores; c++ {
		for i, in := range progs[c].Instrs {
			if in.Op != isa.OpAmoAdd {
				continue
			}
			old := s.Cores[c].Timing(i).LoadValue
			if seen[old] {
				t.Fatalf("two AMOs observed the same old value %d: atomicity violated", old)
			}
			seen[old] = true
		}
	}
	// Flush the counter and verify the durable total.
	fin := isa.NewBuilder().CboFlush(0x1000).Fence().Build()
	progs2 := make([]*isa.Program, cores)
	progs2[0] = fin
	if _, err := s.Run(progs2, runLimit); err != nil {
		t.Fatal(err)
	}
	if got := s.Mem.PeekUint64(0x1000); got != cores*perCore {
		t.Fatalf("durable counter = %d, want %d", got, cores*perCore)
	}
}

// TestAmoGoldenDifferential extends the golden-model differential check to
// AMO return values under random single-core programs.
func TestAmoGoldenDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	words := []uint64{0x1000, 0x1008, 0x4000}
	for run := 0; run < 60; run++ {
		b := isa.NewBuilder()
		for i := 0; i < 40; i++ {
			w := words[rng.Intn(len(words))]
			switch rng.Intn(8) {
			case 0, 1:
				b.Store(w, uint64(rng.Intn(1000)))
			case 2:
				b.AmoAdd(w, uint64(rng.Intn(10)))
			case 3:
				b.AmoSwap(w, uint64(rng.Intn(1000)))
			case 4, 5:
				b.Load(w)
			case 6:
				b.Cbo(w, rng.Intn(2) == 0)
			case 7:
				b.Fence()
			}
		}
		b.Fence()
		p := b.Build()

		// Sequential golden semantics with AMO returns.
		mem := map[uint64]uint64{}
		var want []uint64
		for _, in := range p.Instrs {
			switch in.Op {
			case isa.OpStore:
				mem[in.Addr] = in.Data
			case isa.OpLoad:
				want = append(want, mem[in.Addr])
			case isa.OpAmoAdd:
				want = append(want, mem[in.Addr])
				mem[in.Addr] += in.Data
			case isa.OpAmoSwap:
				want = append(want, mem[in.Addr])
				mem[in.Addr] = in.Data
			}
		}

		s := run1(t, p)
		wi := 0
		for idx, in := range p.Instrs {
			switch in.Op {
			case isa.OpLoad, isa.OpAmoAdd, isa.OpAmoSwap:
				if got := s.Cores[0].Timing(idx).LoadValue; got != want[wi] {
					t.Fatalf("run %d instr %d (%v) = %d, golden %d", run, idx, in, got, want[wi])
				}
				wi++
			}
		}
	}
}
