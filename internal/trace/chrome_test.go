package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

func decodeChrome(t *testing.T, raw string) chromeDoc {
	t.Helper()
	var doc chromeDoc
	if err := json.Unmarshal([]byte(raw), &doc); err != nil {
		t.Fatalf("invalid trace_event JSON: %v\n%s", err, raw)
	}
	return doc
}

func TestChromeTracerAsyncFlushSpans(t *testing.T) {
	var sb strings.Builder
	ct := NewChromeTracer(&sb)
	Emit(ct, 100, "flush[0]", "fshr-alloc", 0x1000, "flush")
	Emit(ct, 100, "l1[0]", "cbo-enqueue", 0x1000, "")
	Emit(ct, 250, "flush[0]", "fshr-ack", 0x1000, "")
	if err := ct.Close(); err != nil {
		t.Fatal(err)
	}
	doc := decodeChrome(t, sb.String())

	var begins, ends, instants, meta int
	for _, e := range doc.TraceEvents {
		switch e.Phase {
		case "b":
			begins++
			if e.ID == "" || e.TS != 100 {
				t.Errorf("bad begin event %+v", e)
			}
		case "e":
			ends++
			if e.TS != 250 {
				t.Errorf("bad end event %+v", e)
			}
		case "i":
			instants++
			if e.Scope != "t" {
				t.Errorf("instant missing thread scope: %+v", e)
			}
		case "M":
			meta++
		}
	}
	if begins != 1 || ends != 1 || instants != 1 {
		t.Fatalf("begins=%d ends=%d instants=%d, want 1/1/1", begins, ends, instants)
	}
	if meta != 2 {
		t.Fatalf("thread_name metadata = %d, want 2 (flush[0] and l1[0])", meta)
	}
}

func TestChromeTracerThreadsAreStable(t *testing.T) {
	var sb strings.Builder
	ct := NewChromeTracer(&sb)
	Emit(ct, 1, "l2", "grant", 0x40, "")
	Emit(ct, 2, "l1[0]", "load-miss", 0x40, "")
	Emit(ct, 3, "l2", "grant", 0x80, "")
	if err := ct.Close(); err != nil {
		t.Fatal(err)
	}
	doc := decodeChrome(t, sb.String())

	names := map[int]string{}
	for _, e := range doc.TraceEvents {
		if e.Phase == "M" {
			names[e.TID] = e.Args["name"].(string)
		}
	}
	if names[0] != "l2" || names[1] != "l1[0]" {
		t.Fatalf("thread names = %v, want first-seen order l2, l1[0]", names)
	}
	for _, e := range doc.TraceEvents {
		if e.Phase == "i" && e.Name == "grant" && names[e.TID] != "l2" {
			t.Fatalf("grant event on thread %q, want l2", names[e.TID])
		}
	}
}

func TestChromeTracerCarriesAddrAndDetail(t *testing.T) {
	var sb strings.Builder
	ct := NewChromeTracer(&sb)
	Emit(ct, 5, "l2", "trivial-skip", 0x2000, "clean line")
	EmitGlobal(ct, 6, "l2", "drain", "done")
	if err := ct.Close(); err != nil {
		t.Fatal(err)
	}
	doc := decodeChrome(t, sb.String())
	var withAddr, without int
	for _, e := range doc.TraceEvents {
		if e.Phase != "i" {
			continue
		}
		if _, ok := e.Args["addr"]; ok {
			withAddr++
			if e.Args["detail"] != "clean line" {
				t.Errorf("detail lost: %+v", e)
			}
		} else {
			without++
		}
	}
	if withAddr != 1 || without != 1 {
		t.Fatalf("withAddr=%d without=%d, want 1/1", withAddr, without)
	}
}
