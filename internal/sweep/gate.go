package sweep

import (
	"fmt"
	"strings"

	"skipit/internal/stats"
)

// Status classifies one baseline-vs-current delta.
type Status string

const (
	// StatusOK: within tolerance.
	StatusOK Status = "ok"
	// StatusRegression: current cycles exceed baseline beyond tolerance.
	StatusRegression Status = "regression"
	// StatusImproved: current cycles undercut baseline beyond tolerance —
	// not a failure, but a hint that the committed baseline is stale.
	StatusImproved Status = "improved"
	// StatusMismatch: the fingerprints differ — the configuration (or the
	// schema) changed, so the cycle counts are not comparable. The gate
	// fails: an intentional perf change must refresh the baseline.
	StatusMismatch Status = "mismatch"
	// StatusNew: present only in the current run.
	StatusNew Status = "new"
	// StatusMissing: present only in the baseline (e.g. the gate targeted a
	// figure subset with -fig). Reported, not fatal.
	StatusMissing Status = "missing"
)

// Delta is one row of the gate's comparison table.
type Delta struct {
	Name     string
	Base     float64
	Current  float64
	DeltaPct float64
	Status   Status
}

// Comparison is the regression gate's verdict over a whole sweep.
type Comparison struct {
	TolerancePct float64
	Deltas       []Delta
	Regressions  int
	Mismatches   int
	Improved     int
	New          int
	Missing      int
}

// key is a record's sweep-wide identity: figure points in different groups
// may share a point name (fig11 and fig12 differ only by thread count).
func key(r Record) string {
	if r.Group == "" {
		return r.Name
	}
	return r.Group + "/" + r.Name
}

// Compare builds the delta table between a baseline and the current records,
// matching by group-qualified record name. Cycle counts compare only under
// identical fingerprints; a fingerprint mismatch is its own failure mode
// (the baseline describes a different configuration). A regression is a
// cycle-count increase beyond tolerancePct percent.
func Compare(baseline, current []Record, tolerancePct float64) Comparison {
	cmp := Comparison{TolerancePct: tolerancePct}
	base := make(map[string]Record, len(baseline))
	for _, r := range baseline {
		base[key(r)] = r
	}
	seen := make(map[string]bool, len(current))
	for _, cur := range current {
		seen[key(cur)] = true
		b, ok := base[key(cur)]
		if !ok {
			cmp.New++
			cmp.Deltas = append(cmp.Deltas, Delta{Name: key(cur), Current: cur.Cycles, Status: StatusNew})
			continue
		}
		d := Delta{Name: key(cur), Base: b.Cycles, Current: cur.Cycles,
			DeltaPct: stats.PctDelta(b.Cycles, cur.Cycles)}
		switch {
		case b.Fingerprint != cur.Fingerprint:
			d.Status = StatusMismatch
			cmp.Mismatches++
		case d.DeltaPct > tolerancePct:
			d.Status = StatusRegression
			cmp.Regressions++
		case d.DeltaPct < -tolerancePct:
			d.Status = StatusImproved
			cmp.Improved++
		default:
			d.Status = StatusOK
		}
		cmp.Deltas = append(cmp.Deltas, d)
	}
	for _, b := range baseline {
		if !seen[key(b)] {
			cmp.Missing++
			cmp.Deltas = append(cmp.Deltas, Delta{Name: key(b), Base: b.Cycles, Status: StatusMissing})
		}
	}
	return cmp
}

// OK reports whether the gate passes: no regressions and no fingerprint
// mismatches.
func (c Comparison) OK() bool { return c.Regressions == 0 && c.Mismatches == 0 }

// String renders the summary line plus every non-ok delta (ok rows are
// elided — a full quick sweep has hundreds).
func (c Comparison) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "gate: tolerance %.1f%%, %d points: %d ok, %d regressions, %d mismatches, %d improved, %d new, %d missing",
		c.TolerancePct, len(c.Deltas),
		len(c.Deltas)-c.Regressions-c.Mismatches-c.Improved-c.New-c.Missing,
		c.Regressions, c.Mismatches, c.Improved, c.New, c.Missing)
	for _, d := range c.Deltas {
		switch d.Status {
		case StatusOK:
			continue
		case StatusRegression, StatusImproved:
			fmt.Fprintf(&sb, "\n  %-10s %-44s %12.0f -> %12.0f cycles (%+.1f%%)",
				strings.ToUpper(string(d.Status)), d.Name, d.Base, d.Current, d.DeltaPct)
		case StatusMismatch:
			fmt.Fprintf(&sb, "\n  %-10s %-44s fingerprint changed (config or schema); refresh the baseline",
				"MISMATCH", d.Name)
		case StatusNew:
			fmt.Fprintf(&sb, "\n  %-10s %-44s %12.0f cycles (not in baseline)", "NEW", d.Name, d.Current)
		case StatusMissing:
			fmt.Fprintf(&sb, "\n  %-10s %-44s not measured this run", "MISSING", d.Name)
		}
	}
	return sb.String()
}
