// Package coordfix is the lockorder fixture's scoped package (its import
// path ends in internal/sweepd): self-deadlocks, locks held across direct
// and cross-package I/O, an AB/BA ordering cycle, a documented waiver, and
// the clean copy-then-write pattern.
package coordfix

import (
	"fmt"
	"os"
	"sync"

	store "skipit/internal/analysis/testdata/src/lockorder/internal/store"
)

// Coordinator mirrors the real sweep coordinator's shape.
type Coordinator struct {
	mu sync.Mutex
	n  int
	st *store.Store
}

// Broken reacquires its own non-reentrant lock.
func (c *Coordinator) Broken() {
	c.mu.Lock()
	c.mu.Lock() // want `lock sweepd\.Coordinator\.mu reacquired while already held \(self-deadlock; acquired at coord\.go:\d+\)`
	c.mu.Unlock()
	c.mu.Unlock()
}

// Flush holds the lock across a direct file sync; the deferred Unlock pins
// it held to the end, and the finding lands on the Lock line.
func (c *Coordinator) Flush(f *os.File) {
	c.mu.Lock() // want `lock sweepd\.Coordinator\.mu held across I/O: \(os\.File\)\.Sync at coord\.go:\d+`
	defer c.mu.Unlock()
	c.n++
	_ = f.Sync()
}

// Persist reaches the I/O through the store package: the witness chain is
// reconstructed from Put's imported Summary fact.
func (c *Coordinator) Persist(k, v string) {
	c.mu.Lock() // want `lock sweepd\.Coordinator\.mu held across I/O: \(store\.Store\)\.Put \(coord\.go:\d+\) -> \(os\.File\)\.WriteString at store\.go:\d+`
	defer c.mu.Unlock()
	_ = c.st.Put(k, v)
}

var stateMu sync.Mutex
var logMu sync.Mutex

// lockBoth and lockBothReversed disagree about acquisition order: each
// closing acquisition is reported with the full cycle.
func lockBoth() {
	stateMu.Lock()
	logMu.Lock() // want `lock order cycle: sweepd\.stateMu -> sweepd\.logMu -> sweepd\.stateMu`
	logMu.Unlock()
	stateMu.Unlock()
}

func lockBothReversed() {
	logMu.Lock()
	stateMu.Lock() // want `lock order cycle: sweepd\.logMu -> sweepd\.stateMu -> sweepd\.logMu`
	stateMu.Unlock()
	logMu.Unlock()
}

// Commit holds the lock across the store write BY DESIGN — the WAL rule
// says the store commit must happen under the coordinator lock — so the
// acquisition carries a documented waiver and reports nothing.
func (c *Coordinator) Commit(k, v string) {
	c.mu.Lock() //skipit:ignore lockorder fixture: WAL ordering requires the store commit under the coordinator lock
	defer c.mu.Unlock()
	_ = c.st.Put(k, v)
}

// Snapshot copies the state under the lock and writes after releasing it:
// the clean pattern, no finding.
func (c *Coordinator) Snapshot(f *os.File) error {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	_, err := fmt.Fprintln(f, n)
	return err
}
