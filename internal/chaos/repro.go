package chaos

import (
	"encoding/json"
	"fmt"
	"strings"

	"skipit/internal/isa"
)

// ReproVersion is the .chaos.json format version.
const ReproVersion = 1

// Repro is the replayable artifact the fuzzer writes for every failure:
// everything needed to reproduce the run bit-identically, with programs in
// the assembler's human-readable text form.
type Repro struct {
	Version int `json:"version"`
	// Seed is the originating fuzzer seed (informational: the programs and
	// schedule below are authoritative, since shrinking detaches them from
	// the seed).
	Seed int64 `json:"seed,omitempty"`
	// Programs holds one isa-format listing per core.
	Programs      []string `json:"programs"`
	Schedule      Schedule `json:"schedule"`
	CycleLimit    int64    `json:"cycle_limit"`
	WatchdogLimit int64    `json:"watchdog_limit"`
	// Failure records what the original run produced, so a replay can be
	// checked against it.
	Failure *Failure `json:"failure,omitempty"`
}

// NewRepro captures an input and its failure as an artifact.
func NewRepro(seed int64, in Input, fail *Failure) *Repro {
	r := &Repro{
		Version:       ReproVersion,
		Seed:          seed,
		Schedule:      in.Schedule,
		CycleLimit:    in.CycleLimit,
		WatchdogLimit: in.WatchdogLimit,
		Failure:       fail,
	}
	for _, p := range in.Progs {
		if p == nil {
			p = isa.NewBuilder().Build()
		}
		r.Programs = append(r.Programs, isa.Format(p))
	}
	return r
}

// Encode renders the artifact as indented JSON.
func (r *Repro) Encode() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// DecodeRepro parses a .chaos.json artifact.
func DecodeRepro(data []byte) (*Repro, error) {
	var r Repro
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("chaos: bad repro: %w", err)
	}
	if r.Version != ReproVersion {
		return nil, fmt.Errorf("chaos: repro version %d, want %d", r.Version, ReproVersion)
	}
	if len(r.Programs) == 0 {
		return nil, fmt.Errorf("chaos: repro has no programs")
	}
	return &r, nil
}

// Input reassembles the runnable input: programs parsed back from text, the
// schedule normalized.
func (r *Repro) Input() (Input, error) {
	in := Input{
		Schedule:      r.Schedule,
		CycleLimit:    r.CycleLimit,
		WatchdogLimit: r.WatchdogLimit,
	}
	in.Schedule.Normalize()
	for i, src := range r.Programs {
		p, err := isa.Parse(src)
		if err != nil {
			return Input{}, fmt.Errorf("chaos: repro program %d: %w", i, err)
		}
		in.Progs = append(in.Progs, p)
	}
	return in, nil
}

// Summary is a one-line description for logs.
func (r *Repro) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d core(s), %d fault(s)", len(r.Programs), len(r.Schedule.Faults))
	if r.Failure != nil {
		fmt.Fprintf(&b, ", %s: %s", r.Failure.Kind, r.Failure.Message)
	}
	return b.String()
}
