package bench

import (
	"fmt"
	"math/rand"

	"skipit/internal/ds"
	"skipit/internal/memsim"
	"skipit/internal/persist"
)

// Workload parameters for the §7.4 data-structure study. The paper runs two
// threads for 2 s wall-clock; we run a fixed operation count in virtual
// time, interleaved round-robin across the simulated threads at operation
// granularity, which keeps the coherence contention the figures depend on
// while making every run bit-reproducible — the property the sweep result
// store and regression gate are built on. Sizes follow the paper (BST with
// 10k keys, Fig. 16); the list is smaller because O(n) traversals dominate
// otherwise, as in the original FliT/NVTraverse evaluations.
var (
	PersistThreads   = 2
	PersistOpsPerThr = 20_000
	ListKeys         = uint64(512)
	HashKeys         = uint64(8192)
	TreeKeys         = uint64(10_000)
	HashBuckets      = 1024
	FliTDefaultTable = uint64(1 << 20)
)

// PolicyKind enumerates the §7.4 flush-elision schemes.
type PolicyKind int

const (
	PolicyPlain PolicyKind = iota
	PolicyFliTAdjacent
	PolicyFliTHash
	PolicyLinkAndPersist
	PolicySkipIt
	PolicyNone // non-persistent baseline (dark dotted line)
)

func (k PolicyKind) String() string {
	switch k {
	case PolicyPlain:
		return "plain"
	case PolicyFliTAdjacent:
		return "flit-adjacent"
	case PolicyFliTHash:
		return "flit-hash"
	case PolicyLinkAndPersist:
		return "link-and-persist"
	case PolicySkipIt:
		return "skipit"
	case PolicyNone:
		return "non-persistent"
	}
	return "policy(?)"
}

// PolicyKinds lists the compared schemes in figure order.
func PolicyKinds() []PolicyKind {
	return []PolicyKind{PolicyPlain, PolicyFliTAdjacent, PolicyFliTHash, PolicyLinkAndPersist, PolicySkipIt}
}

// Structures lists the four data structures in figure order.
func Structures() []string {
	return []string{ds.NameList, ds.NameHash, ds.NameBST, ds.NameSkiplist}
}

// PersistRow is one bar of Figures 14/15: throughput of one (structure,
// persistence algorithm, elision scheme, update rate) configuration.
type PersistRow struct {
	Structure string
	Mode      persist.Mode
	Policy    PolicyKind
	UpdatePct int
	Mops      float64 // million operations per second of simulated time
	Cycles    float64 // slowest thread's virtual cycles (the gated metric)
	Flushes   uint64
	Elided    uint64 // flushes avoided (scheme-dependent accounting)
}

func (r PersistRow) String() string {
	return fmt.Sprintf("%-11s %-10s %-16s upd=%3d%%  %8.3f Mops/s", r.Structure, r.Mode, r.Policy, r.UpdatePct, r.Mops)
}

// RunPersistConfig measures one (structure, mode, policy, update%) point;
// the Fig14/Fig15/Fig16 sweeps and the cmd tools compose it.
func RunPersistConfig(structure string, mode persist.Mode, kind PolicyKind, updatePct int, flitTable uint64) PersistRow {
	return runConfig(structure, mode, kind, updatePct, flitTable)
}

// runConfig measures one configuration and returns its throughput row.
func runConfig(structure string, mode persist.Mode, kind PolicyKind, updatePct int, flitTable uint64) PersistRow {
	h := memsim.New(memsim.DefaultConfig(PersistThreads))
	alloc := memsim.NewAllocator(1 << 20)

	var pol persist.Policy
	switch kind {
	case PolicyPlain, PolicyNone:
		pol = persist.NewPlain(h, false)
	case PolicySkipIt:
		pol = persist.NewSkipIt(h, false)
	case PolicyFliTAdjacent:
		pol = persist.NewFliT(h, true, 0, 0, false)
	case PolicyFliTHash:
		base := alloc.Alloc(flitTable * 8)
		pol = persist.NewFliT(h, false, flitTable, base, false)
	case PolicyLinkAndPersist:
		pol = persist.NewLinkAndPersist(h, false)
	}
	env := &persist.Env{Pol: pol, Mode: mode, NonPersistent: kind == PolicyNone}

	var set ds.Set
	var keyRange uint64
	switch structure {
	case ds.NameList:
		set = ds.NewLinkedList(env, alloc)
		keyRange = 2 * ListKeys
	case ds.NameHash:
		set = ds.NewHashTable(env, alloc, HashBuckets)
		keyRange = 2 * HashKeys
	case ds.NameBST:
		set = ds.NewBST(env, alloc)
		keyRange = 2 * TreeKeys
	case ds.NameSkiplist:
		set = ds.NewSkiplist(env, alloc)
		keyRange = 2 * TreeKeys
	default:
		panic("bench: unknown structure " + structure)
	}

	// Prefill to 50% occupancy of the key range, warming the caches.
	rng := rand.New(rand.NewSource(1))
	target := int(keyRange / 2)
	for n := 0; n < target; {
		if set.Insert(0, uint64(rng.Int63n(int64(keyRange)))+1) {
			n++
		}
	}
	h.ResetClocks()

	// Measured phase: PersistThreads simulated threads, updatePct updates
	// split evenly between inserts and deletes, the rest lookups (§7.4).
	// Each thread keeps its own operation stream; the streams interleave
	// round-robin one operation at a time, so contention on shared lines is
	// exercised deterministically instead of depending on goroutine
	// scheduling.
	rngs := make([]*rand.Rand, PersistThreads)
	for tid := range rngs {
		rngs[tid] = rand.New(rand.NewSource(int64(tid)*7919 + 13))
	}
	for i := 0; i < PersistOpsPerThr; i++ {
		for tid := 0; tid < PersistThreads; tid++ {
			r := rngs[tid]
			key := uint64(r.Int63n(int64(keyRange))) + 1
			roll := r.Intn(200)
			switch {
			case roll < updatePct:
				set.Insert(tid, key)
			case roll < 2*updatePct:
				set.Delete(tid, key)
			default:
				set.Contains(tid, key)
			}
		}
	}

	secs := h.MaxSeconds()
	totalOps := float64(PersistThreads * PersistOpsPerThr)
	st := h.Stats()
	return PersistRow{
		Structure: structure,
		Mode:      mode,
		Policy:    kind,
		UpdatePct: updatePct,
		Mops:      totalOps / secs / 1e6,
		Cycles:    secs * h.Config().ClockMHz * 1e6,
		Flushes:   st.Flushes,
		Elided:    st.FlushDropsL1,
	}
}

// Fig14 regenerates Figure 14: all four structures under the three
// persistence algorithms and five elision schemes at 5% updates, plus the
// non-persistent baseline per structure.
func Fig14() []PersistRow {
	var rows []PersistRow
	for _, structure := range Structures() {
		rows = append(rows, runConfig(structure, persist.Manual, PolicyNone, 5, FliTDefaultTable))
		for _, mode := range persist.Modes() {
			for _, kind := range PolicyKinds() {
				if kind == PolicyLinkAndPersist && structure == ds.NameBST {
					// §7.4: link-and-persist cannot be applied to
					// the BST — the algorithm owns the pointer bits.
					continue
				}
				rows = append(rows, runConfig(structure, mode, kind, 5, FliTDefaultTable))
			}
		}
	}
	return rows
}

// Fig15 regenerates Figure 15: throughput across update percentages under
// the automatic persistence algorithm (the flush-heaviest, where elision
// schemes differ most).
func Fig15(updatePcts []int) []PersistRow {
	if len(updatePcts) == 0 {
		updatePcts = []int{0, 5, 10, 20, 50, 100}
	}
	var rows []PersistRow
	for _, structure := range Structures() {
		for _, kind := range PolicyKinds() {
			if kind == PolicyLinkAndPersist && structure == ds.NameBST {
				continue
			}
			for _, pct := range updatePcts {
				rows = append(rows, runConfig(structure, persist.Automatic, kind, pct, FliTDefaultTable))
			}
		}
	}
	return rows
}

// Fig16Row is one point of the FliT hash-table size sensitivity study.
type Fig16Row struct {
	TableEntries uint64
	Mops         float64
}

func (r Fig16Row) String() string {
	return fmt.Sprintf("flit-table=%8d  %8.3f Mops/s", r.TableEntries, r.Mops)
}

// Fig16 regenerates Figure 16: BST (10k keys, 5% updates, automatic) under
// FliT with hash tables from tiny (collision-dominated) to huge
// (footprint-dominated).
func Fig16(tableSizes []uint64) []Fig16Row {
	if len(tableSizes) == 0 {
		tableSizes = []uint64{1 << 6, 1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20}
	}
	var rows []Fig16Row
	for _, size := range tableSizes {
		r := runConfig(ds.NameBST, persist.Automatic, PolicyFliTHash, 5, size)
		rows = append(rows, Fig16Row{TableEntries: size, Mops: r.Mops})
	}
	return rows
}
