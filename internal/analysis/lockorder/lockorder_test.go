package lockorder_test

import (
	"testing"

	"skipit/internal/analysis/antest"
	"skipit/internal/analysis/lockorder"
)

// TestLockOrder covers the three rules over a two-package fixture: the
// store package (out of scope) only exports Summary facts, and the sweepd
// fixture's findings — including the held-across-I/O reached through
// store.Put — must carry chains reconstructed from those facts.
func TestLockOrder(t *testing.T) {
	antest.Run(t, lockorder.Analyzer,
		antest.Dir(t, "lockorder/internal/store"),
		antest.Dir(t, "lockorder/internal/sweepd"))
}
