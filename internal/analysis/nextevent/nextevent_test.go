package nextevent_test

import (
	"testing"

	"skipit/internal/analysis/antest"
	"skipit/internal/analysis/nextevent"
)

func TestNextEvent(t *testing.T) {
	antest.Run(t, nextevent.Analyzer, antest.Dir(t, "internal/mem"), antest.Dir(t, "nextevent/internal/sim"))
}
