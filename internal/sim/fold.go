package sim

// This file is the single source of truth for next-event folding: reducing a
// set of components' NextEvent(last) reports to the earliest cycle anything
// in the set can act. System.nextEventCycle, Fabric.nextEventCycle and the
// PDES shard horizon computation (parallel.go) all fold through these two
// helpers, so the fast-forward clock and the parallel scheduler can never
// disagree about what "provably idle" means.
//
// The fold contract mirrors the NextEvent contract (fastforward.go): last is
// the most recently ticked cycle, so the floor — the earliest cycle that
// could possibly be ticked next — is last+1. Reports at or below the floor
// clamp to it, and the fold bails out the moment the floor is reached, since
// no later component can lower the minimum further. Callers seed next with
// tilelink.NoEvent (or a previous fold's result, to chain folds) and check
// for the floor between chained calls to keep the bail-out effective.

// eventSource is any component on the fast-forward clock.
type eventSource interface {
	NextEvent(last int64) int64
}

// foldNext folds a single component into a running next-event minimum.
//
//skipit:hotpath
func foldNext(last, next int64, src eventSource) int64 {
	floor := last + 1
	if next <= floor {
		return floor
	}
	if t := src.NextEvent(last); t < next {
		if t <= floor {
			return floor
		}
		next = t
	}
	return next
}

// foldNextAll folds a homogeneous component slice, bailing at the floor.
// Generic so the call sites keep their concrete slice types (static
// dispatch, no per-element interface conversions on the hot path).
//
//skipit:hotpath
func foldNextAll[T eventSource](last, next int64, srcs []T) int64 {
	floor := last + 1
	if next <= floor {
		return floor
	}
	for _, s := range srcs {
		if t := s.NextEvent(last); t < next {
			if t <= floor {
				return floor
			}
			next = t
		}
	}
	return next
}
