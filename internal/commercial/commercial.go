// Package commercial provides analytic writeback-latency models of the
// commercial CPUs the paper compares against in §7.3: AMD EPYC 7763 and
// Intel Xeon Gold 6238T (x86: clflush, clflushopt, clwb) and AWS Graviton3
// (ARMv8: dccvac, dccivac). The real machines are not available here, so
// each instruction is modeled by the structural parameters that produce the
// published latency *shapes*:
//
//   - Intel clflush is strongly ordered: every flush serializes against the
//     previous one, so latency explodes once the per-line round trip stops
//     hiding under fixed overheads (visible ≥4 KiB at 1 thread, ≥16 KiB at
//     8 threads — Figs. 11/12);
//   - clflushopt/clwb are weakly ordered and overlap up to the MLP limit;
//   - AMD executes clflush with clflushopt-like (unordered) performance, so
//     the two AMD curves coincide;
//   - Graviton3's dc civac/cvac sustain very high miss-level parallelism, so
//     latency grows sub-linearly with size and overtakes the SonicBOOM above
//     ~4 KiB.
//
// Latencies are in CPU cycles of each respective machine, like the paper's
// RDCYCLE-based plots; cross-architecture comparisons are of shape, not
// absolute time.
package commercial

import "math"

// Model captures one writeback instruction on one machine.
type Model struct {
	Vendor string
	Instr  string
	// Setup is the fixed overhead per measurement: loop setup plus the
	// trailing memory barrier (sfence / dsb).
	Setup float64
	// ThreadSetup is the additional per-measurement overhead of running
	// multi-threaded (barrier synchronization); applied when threads > 1.
	ThreadSetup float64
	// Issue is the front-end cost per flushed line.
	Issue float64
	// Mem is the memory round-trip a writeback pays before it completes.
	Mem float64
	// MLP is the number of writebacks a thread can keep in flight.
	MLP float64
	// Serializing marks strongly-ordered flushes (Intel clflush): each
	// waits for the previous to complete.
	Serializing bool
	// Bandwidth is the shared per-line drain cost (cycles per line across
	// all threads), bounding aggregate throughput.
	Bandwidth float64
}

// Latency returns the modeled cycles to write back `bytes` of dirty data
// split evenly across `threads` threads (64 B lines), including the final
// barrier — the quantity Figures 11 and 12 plot.
func (m Model) Latency(bytes uint64, threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	lines := float64((bytes + 63) / 64)
	perThread := math.Ceil(lines / float64(threads))

	var compute float64
	if m.Serializing {
		// Each flush retires before the next issues.
		compute = perThread * (m.Issue + m.Mem)
	} else {
		// One memory latency is exposed; the rest overlap, limited by
		// issue rate and per-thread MLP.
		perLine := math.Max(m.Issue, m.Mem/m.MLP)
		compute = m.Mem + perThread*perLine
	}
	shared := lines * m.Bandwidth
	total := m.Setup + math.Max(compute, shared)
	if threads > 1 {
		total += m.ThreadSetup
	}
	return total
}

// Models returns the §7.3 instruction set: two x86 vendors with three
// instructions each, and Graviton3 with its two DC ops. Parameters are
// calibrated to the published shapes (see EXPERIMENTS.md).
func Models() []Model {
	return []Model{
		// Intel Xeon Gold 6238T: clflush serializes; clflushopt/clwb
		// overlap and are the best x86 performers.
		{Vendor: "Intel", Instr: "clflush", Setup: 160, ThreadSetup: 1200,
			Issue: 25, Mem: 230, MLP: 1, Serializing: true, Bandwidth: 2},
		{Vendor: "Intel", Instr: "clflushopt", Setup: 160, ThreadSetup: 1200,
			Issue: 22, Mem: 230, MLP: 12, Bandwidth: 2},
		{Vendor: "Intel", Instr: "clwb", Setup: 160, ThreadSetup: 1200,
			Issue: 20, Mem: 230, MLP: 12, Bandwidth: 2},

		// AMD EPYC 7763: clflush behaves like clflushopt (§7.3: "nearly
		// identically").
		{Vendor: "AMD", Instr: "clflush", Setup: 180, ThreadSetup: 1200,
			Issue: 26, Mem: 260, MLP: 10, Bandwidth: 2},
		{Vendor: "AMD", Instr: "clflushopt", Setup: 180, ThreadSetup: 1200,
			Issue: 25, Mem: 260, MLP: 10, Bandwidth: 2},
		{Vendor: "AMD", Instr: "clwb", Setup: 180, ThreadSetup: 1200,
			Issue: 24, Mem: 260, MLP: 10, Bandwidth: 2},

		// AWS Graviton3: deep MLP makes growth sub-linear; overtakes the
		// SonicBOOM above ~4 KiB (§7.3).
		{Vendor: "Graviton3", Instr: "dccivac", Setup: 140, ThreadSetup: 1000,
			Issue: 4, Mem: 220, MLP: 40, Bandwidth: 1},
		{Vendor: "Graviton3", Instr: "dccvac", Setup: 140, ThreadSetup: 1000,
			Issue: 4, Mem: 220, MLP: 40, Bandwidth: 1},
	}
}

// ByName returns the model for a vendor/instruction pair, or false.
func ByName(vendor, instr string) (Model, bool) {
	for _, m := range Models() {
		if m.Vendor == vendor && m.Instr == instr {
			return m, true
		}
	}
	return Model{}, false
}
