// Command skipit-chaos fuzzes the SoC under deterministic fault injection:
// random programs crossed with seeded fault schedules (link jitter/stalls/
// backpressure, MSHR/FSHR/ListBuffer squeezes, forced nacks, ECC-style bit
// flips), stepped under the forward-progress watchdog with every cross-layer
// invariant checked each cycle and load values verified against a golden
// model. Failures are greedily shrunk to a minimal reproducer and written as
// replayable .chaos.json artifacts.
//
// Usage:
//
//	skipit-chaos [-runs N] [-seed S] [-cores N] [-faults N] [-prog-len N]
//	             [-cycle-limit N] [-watchdog N] [-shrink-runs N]
//	             [-out DIR] [-jobs N] [-v]
//	skipit-chaos -replay FILE [-v]
//
// Every run is a pure function of its seed: the same seed reproduces the
// same programs, the same schedule, the same failure, and the same shrunk
// artifact.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"skipit/internal/chaos"
)

func main() {
	runs := flag.Int("runs", 100, "number of fuzz cases")
	seed := flag.Int64("seed", 1, "first case seed (case i uses seed+i)")
	cores := flag.Int("cores", 2, "simulated cores")
	faults := flag.Int("faults", 12, "faults per schedule")
	progLen := flag.Int("prog-len", 24, "instructions per core program")
	cycleLimit := flag.Int64("cycle-limit", 300_000, "per-run cycle budget")
	watchdog := flag.Int64("watchdog", 20_000, "watchdog no-progress limit (0 disables)")
	shrinkRuns := flag.Int("shrink-runs", chaos.DefaultShrinkRuns, "max re-executions while shrinking a failure")
	out := flag.String("out", ".", "directory for .chaos.json repro artifacts")
	jobs := flag.Int("jobs", runtime.NumCPU(), "parallel workers")
	replay := flag.String("replay", "", "replay a .chaos.json artifact instead of fuzzing")
	parallel := flag.Int("parallel", 0, "deterministic parallel stepping per run with N workers (0 = serial; verdicts are identical)")
	verbose := flag.Bool("v", false, "per-case log lines")
	flag.Parse()

	if *replay != "" {
		os.Exit(replayFile(*replay, *parallel, *verbose))
	}
	os.Exit(fuzz(*runs, *seed, *cores, *faults, *progLen, *cycleLimit, *watchdog,
		*shrinkRuns, *out, *jobs, *parallel, *verbose))
}

// fuzz runs cases seed..seed+runs-1 across a worker pool. Each case is an
// independent pure function of its seed, so parallelism never changes
// results.
func fuzz(runs int, seed int64, cores, faults, progLen int, cycleLimit, watchdog int64,
	shrinkRuns int, out string, jobs, parallel int, verbose bool) int {
	if jobs < 1 {
		jobs = 1
	}
	var (
		mu       sync.Mutex // serializes logging and artifact writes
		failures int
		next     atomic.Int64
		agg      chaos.Stats
	)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(runs) {
					return
				}
				c := chaos.Case{
					Seed:          seed + i,
					Cores:         cores,
					ProgLen:       progLen,
					NumFaults:     faults,
					CycleLimit:    cycleLimit,
					WatchdogLimit: watchdog,
				}
				in := chaos.BuildInput(c)
				fail, st := chaos.RunInputParallel(in, parallel)
				mu.Lock()
				agg.FaultsInjected += st.FaultsInjected
				agg.EccFlips += st.EccFlips
				agg.EccDirtyUnrec += st.EccDirtyUnrec
				agg.RefetchRecoveries += st.RefetchRecoveries
				agg.WatchdogTrips += st.WatchdogTrips
				if verbose && fail == nil {
					fmt.Printf("seed %d: ok (%d cycles, %d faults)\n", c.Seed, st.Cycles, st.FaultsInjected)
				}
				mu.Unlock()
				if fail == nil {
					continue
				}
				shrunk, attempts := chaos.Shrink(in, fail.Kind, chaos.ShrinkOpts{MaxRuns: shrinkRuns})
				finalFail, _ := chaos.RunInput(shrunk)
				if finalFail == nil {
					// Can only happen if the shrink budget ran dry on a
					// flaky candidate; fall back to the original input.
					shrunk, finalFail = in, fail
				}
				repro := chaos.NewRepro(c.Seed, shrunk, finalFail)
				data, err := repro.Encode()
				if err != nil {
					log.Fatalf("seed %d: encode repro: %v", c.Seed, err)
				}
				path := filepath.Join(out, fmt.Sprintf("seed-%d.chaos.json", c.Seed))
				mu.Lock()
				failures++
				if err := os.WriteFile(path, data, 0o644); err != nil {
					log.Fatalf("seed %d: write repro: %v", c.Seed, err)
				}
				fmt.Printf("seed %d: FAIL %s: %s\n  shrunk to %s after %d runs -> %s\n",
					c.Seed, fail.Kind, fail.Message, repro.Summary(), attempts, path)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	fmt.Printf("chaos: %d runs, %d failures; injected=%d ecc_flips=%d recovered=%d dirty_unrec=%d watchdog_trips=%d\n",
		runs, failures, agg.FaultsInjected, agg.EccFlips, agg.RefetchRecoveries,
		agg.EccDirtyUnrec, agg.WatchdogTrips)
	if failures > 0 {
		return 1
	}
	return 0
}

// replayFile re-executes a .chaos.json artifact and compares the outcome with
// what the artifact recorded. Exit 0 iff they agree.
func replayFile(path string, parallel int, verbose bool) int {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	repro, err := chaos.DecodeRepro(data)
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	in, err := repro.Input()
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	fmt.Printf("replaying %s: %s\n", path, repro.Summary())
	fail, st := chaos.RunInputParallel(in, parallel)
	switch {
	case fail == nil && repro.Failure == nil:
		fmt.Printf("ok: run clean, as recorded (%d cycles)\n", st.Cycles)
		return 0
	case fail == nil:
		fmt.Printf("MISMATCH: recorded %s, but replay ran clean\n", repro.Failure.Kind)
		return 1
	case repro.Failure == nil:
		fmt.Printf("MISMATCH: recorded clean, but replay failed: %s\n", fail)
		return 1
	case fail.Kind != repro.Failure.Kind:
		fmt.Printf("MISMATCH: recorded %s, replay produced %s: %s\n",
			repro.Failure.Kind, fail.Kind, fail.Message)
		return 1
	default:
		fmt.Printf("reproduced: %s at cycle %d: %s\n", fail.Kind, fail.Cycle, fail.Message)
		if verbose && fail.Report != nil {
			fmt.Println(string(fail.Report.JSON()))
		}
		return 0
	}
}
