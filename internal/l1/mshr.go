package l1

import (
	"fmt"

	"skipit/internal/tilelink"
	"skipit/internal/trace"
)

// mState sequences an L1 MSHR: acquire the line from L2, evict a victim if
// the set is full, install data and metadata, replay the buffered requests
// in arrival order, and acknowledge the grant (§3.3).
type mState uint8

const (
	mFree mState = iota
	mSendAcquire
	mWaitGrant
	mVictim
	mInstall
	mReplay
	mGrantAck
)

// mshr handles one outstanding line miss. The request that allocated it is
// the primary request; later requests to the same line piggy-back through
// the replay queue as secondary requests when their required permissions do
// not exceed the primary's (§3.3 — the BOOM data cache cannot upgrade an
// in-flight Acquire because AcquirePerm is unsupported).
type mshr struct {
	state mState
	addr  uint64 // line-aligned
	grow  tilelink.Grow
	rpq   []Req
	txn   uint64 // transaction id of the miss's Acquire→Grant→GrantAck chain

	// Grant payload, held until install.
	grantData  []byte
	grantCap   tilelink.Cap
	grantDirty bool // GrantDataDirty: leave the skip bit unset (§6.1)

	way int
}

// perm returns the permission level the MSHR is acquiring.
func (m *mshr) perm() tilelink.Perm { return m.grow.To() }

// canAcceptSecondary applies the §3.3 replay-queue rule: a secondary request
// may piggy-back only if it needs no more permission than the primary
// acquired, and only while the MSHR is still waiting (replay order would be
// violated afterwards).
func (m *mshr) canAcceptSecondary(req Req, rpqDepth int) bool {
	if m.state != mSendAcquire && m.state != mWaitGrant {
		return false
	}
	if len(m.rpq) >= rpqDepth {
		return false
	}
	need := tilelink.PermBranch
	if req.Kind == Store || req.Kind.IsAmo() {
		need = tilelink.PermTrunk
	}
	return need <= m.perm()
}

// mshrFor returns the active MSHR for addr's line, if any.
func (d *DCache) mshrFor(addr uint64) *mshr {
	addr = d.lineAddr(addr)
	for i := range d.mshrs {
		m := &d.mshrs[i]
		if m.state != mFree && m.addr == addr {
			return m
		}
	}
	return nil
}

// freeMSHR returns an unused MSHR, honoring an armed chaos capacity squeeze:
// a quota below the configured count makes the cache behave as if built with
// fewer MSHRs for the window, without cancelling in-flight misses.
func (d *DCache) freeMSHR(now int64) *mshr {
	limit := len(d.mshrs)
	if d.chaos != nil {
		if q := d.chaos.MSHRQuota(now); q >= 0 && q < limit {
			limit = q
		}
	}
	inUse := 0
	var free *mshr
	for i := range d.mshrs {
		if d.mshrs[i].state == mFree {
			if free == nil {
				free = &d.mshrs[i]
			}
		} else {
			inUse++
		}
	}
	if inUse >= limit {
		return nil
	}
	return free
}

// allocMSHR sets up a new miss. The growth parameter depends on the request
// kind and whether a read-only copy is already held (store upgrade).
//
//skipit:hotpath
func (d *DCache) allocMSHR(now int64, m *mshr, req Req) {
	addr := d.lineAddr(req.Addr)
	grow := tilelink.GrowNtoB
	code := trace.RecLoadMiss
	if req.Kind == Store || req.Kind.IsAmo() {
		code = trace.RecStoreMiss
		grow = tilelink.GrowNtoT
		if meta := d.lookup(addr); meta != nil && meta.perm == tilelink.PermBranch {
			grow = tilelink.GrowBtoT
		}
	}
	// Reuse the replay queue's backing array across the MSHR's lifetimes;
	// the steady-state cycle loop must not allocate.
	rpq := append(m.rpq[:0], req) //skipit:ignore hotalloc appends one Req to a zero-length reslice of the MSHR's reused backing array; grows once per MSHR lifetime
	*m = mshr{state: mSendAcquire, addr: addr, grow: grow, rpq: rpq, way: -1, txn: d.cfg.Txns.Next()}
	d.rec.Record(now, code, trace.CauseNone, m.txn, addr, 0)
}

// release frees the MSHR, keeping the replay queue's backing array for reuse.
func (m *mshr) release() {
	rpq := m.rpq[:0]
	*m = mshr{rpq: rpq}
}

// tickMSHRs advances every MSHR one cycle.
func (d *DCache) tickMSHRs(now int64) {
	for i := range d.mshrs {
		d.tickMSHR(now, &d.mshrs[i])
	}
}

func (d *DCache) tickMSHR(now int64, m *mshr) {
	switch m.state {
	case mFree, mWaitGrant:
		// Waiting on the LSU or on TL-D; nothing to do.

	case mSendAcquire:
		if d.port.A.Send(now, tilelink.Msg{
			Op:     tilelink.OpAcquireBlock,
			Addr:   m.addr,
			Source: d.cfg.Source,
			Grow:   m.grow,
			Txn:    m.txn,
		}) {
			if d.tr != nil {
				trace.EmitTxn(d.tr, now, d.name, "acquire", m.txn, m.addr, m.grow.String())
			}
			d.rec.Record(now, trace.RecAcquire, trace.CauseNone, m.txn, m.addr, 0)
			m.state = mWaitGrant
		}

	case mVictim:
		d.tickVictim(now, m)

	case mInstall:
		set := d.index(m.addr)
		meta := &d.meta[set][m.way]
		*meta = wayMeta{
			valid:    true,
			tag:      d.tagOf(m.addr),
			perm:     m.grantCap.Perm(),
			dirty:    false,
			skip:     !m.grantDirty, // GrantData sets, GrantDataDirty unsets (§6.1)
			lastUsed: now,
		}
		copy(d.data[set][m.way], m.grantData)
		d.clearPoison(m.addr)
		// The grant payload's transaction retires here: recycle it.
		d.cfg.Pool.Put(m.grantData)
		m.grantData = nil
		m.state = mReplay

	case mReplay:
		// Drain one replay per cycle, in arrival order (§3.3).
		if len(m.rpq) == 0 {
			m.state = mGrantAck
			return
		}
		req := m.rpq[0]
		copy(m.rpq, m.rpq[1:])
		m.rpq = m.rpq[:len(m.rpq)-1]
		d.replay(now, m, req)

	case mGrantAck:
		if d.port.E.Send(now, tilelink.Msg{Op: tilelink.OpGrantAck, Addr: m.addr, Source: d.cfg.Source, Txn: m.txn}) {
			if d.tr != nil {
				trace.EmitTxn(d.tr, now, d.name, "grant-ack", m.txn, m.addr, "")
			}
			d.rec.Record(now, trace.RecGrantAck, trace.CauseNone, m.txn, m.addr, 0)
			m.release()
		}
	}
}

// onGrant accepts the TL-D grant for an MSHR and begins victim selection.
func (d *DCache) onGrant(now int64, msg tilelink.Msg) {
	m := d.mshrFor(msg.Addr)
	if m == nil || m.state != mWaitGrant {
		panic(fmt.Sprintf("l1[%d]: stray grant %v", d.cfg.Source, msg))
	}
	m.grantData = msg.Data
	m.grantCap = msg.Cap
	m.grantDirty = msg.Op == tilelink.OpGrantDataDirty
	if d.tr != nil {
		trace.EmitTxn(d.tr, now, d.name, "grant", m.txn, m.addr,
			fmt.Sprintf("%v cap=%v (skip=%v)", msg.Op, msg.Cap, !m.grantDirty)) //skipit:ignore hotalloc trace formatting runs only with a tracer attached; untraced runs never reach it
	}
	d.rec.Record(now, trace.RecGrant, trace.CauseNone, m.txn, m.addr, 0)
	if m.grantDirty {
		// Skip-audit: the line arrived dirty-in-L2, so the skip bit stays
		// unset and a future CBO on this line cannot be elided (§6).
		d.rec.Record(now, trace.RecSkipAudit, trace.CauseGrantDataDirty, m.txn, m.addr, 0)
	}
	m.state = mVictim
	d.tickVictim(now, m)
}

// tickVictim finds a way for the granted line, evicting as needed. Victim
// selection honors the §5.4.2 interlocks: it stalls while flush_rdy is low,
// never chooses a line the flush unit holds a request for, and uses the
// writeback unit (one eviction at a time) for the release.
func (d *DCache) tickVictim(now int64, m *mshr) {
	set := d.index(m.addr)

	// A store upgrade may find its line still resident (probe races can
	// also have removed it); reuse the way in place.
	if w := d.findWay(m.addr, true); w >= 0 {
		m.way = w
		m.state = mInstall
		return
	}

	// Prefer an invalid way: no eviction needed.
	for w := range d.meta[set] {
		if !d.meta[set][w].valid && !d.wayReserved(set, w, m) {
			m.way = w
			m.state = mInstall
			return
		}
	}

	// Must evict: §5.4.2 blocks victim selection while any FSHR is
	// pre-ack, and the WBU handles one release at a time.
	if !d.flush.FlushRdy() || !d.wb.idle() {
		return
	}
	best, bestUsed := -1, int64(1<<62)
	for w := range d.meta[set] {
		meta := &d.meta[set][w]
		victimAddr := d.addrOf(set, meta.tag)
		if d.flush.VictimBlocked(victimAddr) || d.wayReserved(set, w, m) {
			continue
		}
		if d.mshrFor(victimAddr) != nil {
			continue
		}
		if meta.lastUsed < bestUsed {
			best, bestUsed = w, meta.lastUsed
		}
	}
	if best < 0 {
		return // retry next cycle
	}
	meta := &d.meta[set][best]
	victimAddr := d.addrOf(set, meta.tag)
	// §5.4.2: the writeback unit invalidates flush queue entries for the
	// line it evicts.
	d.flush.EvictInvalidate(victimAddr)
	d.clearPoison(victimAddr)
	// The eviction's Release→ReleaseAck chain is its own transaction,
	// distinct from the Acquire that triggered it.
	wbTxn := d.cfg.Txns.Next()
	d.wb.start(d.cfg.Pool, victimAddr, d.data[set][best], meta.dirty, meta.perm, wbTxn)
	d.ctr.writebacks.Inc()
	d.rec.Record(now, trace.RecEvict, trace.CauseNone, wbTxn, victimAddr, 0)
	if d.tr != nil {
		trace.EmitTxn(d.tr, now, d.name, "evict", wbTxn, victimAddr,
			fmt.Sprintf("dirty=%v for refill of %#x", meta.dirty, m.addr)) //skipit:ignore hotalloc trace formatting runs only with a tracer attached; untraced runs never reach it
	}
	meta.valid = false
	meta.dirty = false
	meta.skip = false
	m.way = best
	m.state = mInstall
}

// wayReserved reports whether another MSHR has claimed the way for its own
// install.
func (d *DCache) wayReserved(set, way int, self *mshr) bool {
	for i := range d.mshrs {
		m := &d.mshrs[i]
		if m == self || m.state == mFree {
			continue
		}
		if m.way == way && d.index(m.addr) == set {
			return true
		}
	}
	return false
}

// replay re-executes a buffered request against the freshly installed line.
func (d *DCache) replay(now int64, m *mshr, req Req) {
	set := d.index(m.addr)
	meta := &d.meta[set][m.way]
	switch req.Kind {
	case Load:
		v := d.readWord(set, m.way, req.Addr)
		d.respond(now+1, Resp{ID: req.ID, Data: v})
	case Store:
		d.writeWord(set, m.way, req.Addr, req.Data)
		meta.dirty = true
		// The store was acknowledged to the LSU at acceptance (§3.3:
		// requests in MSHRs are considered complete); no response now.
	case AmoAdd, AmoSwap:
		old := d.amoApply(set, m.way, req)
		meta.dirty = true
		d.respond(now+1, Resp{ID: req.ID, Data: old})
	default:
		panic("l1: CBO request in an MSHR replay queue")
	}
	meta.lastUsed = now
}
