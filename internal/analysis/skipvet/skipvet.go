// Package skipvet assembles the skipit-vet analyzer suite: the analyzers
// that statically enforce the simulator's determinism, zero-alloc, ownership,
// shard-isolation and lock-discipline invariants. cmd/skipit-vet runs exactly
// this list; tests and future tools should import it rather than enumerating
// analyzers themselves so the suite cannot drift between entry points.
package skipvet

import (
	"golang.org/x/tools/go/analysis"
	"skipit/internal/analysis/determinism"
	"skipit/internal/analysis/detflow"
	"skipit/internal/analysis/hotalloc"
	"skipit/internal/analysis/lockorder"
	"skipit/internal/analysis/metricname"
	"skipit/internal/analysis/nextevent"
	"skipit/internal/analysis/poolown"
	"skipit/internal/analysis/shardiso"
	"skipit/internal/analysis/staleignore"
)

// Analyzers is the full skipit-vet suite, in reporting order. staleignore
// must stay last: it asks the suppress layer which waivers fired, so every
// analyzer capable of consuming a waiver has to run over the package first
// (its Requires list enforces this for the driver; the position documents
// it for readers).
var Analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	detflow.Analyzer,
	hotalloc.Analyzer,
	shardiso.Analyzer,
	lockorder.Analyzer,
	poolown.Analyzer,
	nextevent.Analyzer,
	metricname.Analyzer,
	staleignore.Analyzer,
}
