// Command skipit-sweepd is the fault-tolerant distributed sweep service: it
// runs either the coordinator (the default) or a worker, promoting the
// skipit-bench sweep from an in-process pool to simulation-as-a-service.
//
// Coordinator:
//
//	skipit-sweepd -http 127.0.0.1:7070 -store DIR [-journal FILE] [-seed N]
//	              [-lease DUR] [-max-attempts N] [-min-workers N] [-max-queue N]
//
// The coordinator serves the job API and the introspection endpoints
// (/metrics, /events with live job-state transitions, /api/sweepd/state) on
// one listener. Jobs are leased to workers with heartbeat-renewed deadlines;
// a silent worker's lease expires and the job is requeued with deterministic
// exponential backoff under a bounded retry budget. Every state transition
// is journaled (-journal), so a crashed coordinator restarted on the same
// journal and store resumes the queue; results commit idempotently into the
// content-addressed result store. With -min-workers set, a pool below that
// floor sheds the lowest-priority pending jobs past -max-queue with a typed
// overload failure instead of queueing unboundedly.
//
// Worker:
//
//	skipit-sweepd -worker -fleet http://HOST:7070 [-name ID] [-quick]
//	              [-job-timeout DUR] [-exit-when-drained]
//
// A worker compiles in the same figure job table as skipit-bench and
// resolves leased (group, name) specs back to runnable measurements; the
// job fingerprint is the interlock — a worker whose build (or -quick
// setting) would measure something different refuses the job. Jobs run
// under heartbeats carrying live progress; a panic or sim-watchdog hang
// becomes a structured failure, not a dead worker.
//
// The -fault-* flags (worker only) inject seed-scheduled transport faults —
// drops, duplicates, delays — for exercising the fault-tolerance machinery
// in CI; see internal/sweepd.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"skipit/internal/bench"
	"skipit/internal/introspect"
	"skipit/internal/sweep"
	"skipit/internal/sweepd"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		worker = flag.Bool("worker", false, "run as a worker instead of the coordinator")

		// Coordinator flags.
		httpAddr    = flag.String("http", "127.0.0.1:7070", "coordinator listen address (job API + introspection)")
		storeDir    = flag.String("store", "", "result-store directory (required for the coordinator)")
		journalPath = flag.String("journal", "", "write-ahead journal file; restarting on the same journal resumes the queue (empty = no crash recovery)")
		seed        = flag.Int64("seed", 0, "seed for the deterministic retry-backoff jitter")
		lease       = flag.Duration("lease", 10*time.Second, "lease TTL: how long a worker may go without a heartbeat")
		maxAttempts = flag.Int("max-attempts", 3, "retry budget per job before it fails terminally")
		minWorkers  = flag.Int("min-workers", 0, "degradation floor: below this many live workers, shed pending jobs past -max-queue (0 disables)")
		maxQueue    = flag.Int("max-queue", 0, "pending-queue ceiling enforced while below -min-workers")

		// Worker flags.
		fleetURL     = flag.String("fleet", "", "coordinator base URL (required for a worker), e.g. http://127.0.0.1:7070")
		name         = flag.String("name", "", "worker name (default host:pid)")
		quick        = flag.Bool("quick", false, "build the quick-mode job table (must match the submitting skipit-bench)")
		jobTimeout   = flag.Duration("job-timeout", 15*time.Minute, "per-job wall-clock backstop behind the sim watchdog (0 disables)")
		exitDrained  = flag.Bool("exit-when-drained", false, "exit once the coordinator reports every job terminal (ephemeral CI workers)")
		faultSeed    = flag.Int64("fault-seed", 0, "transport fault-injection seed (0 disables injection)")
		faultDrop    = flag.Float64("fault-drop", 0.05, "with -fault-seed: per-call request drop probability")
		faultDup     = flag.Float64("fault-dup", 0.05, "with -fault-seed: per-call duplicate-delivery probability")
		faultDelayMs = flag.Int("fault-delay-ms", 0, "with -fault-seed: max per-call injected delay in milliseconds")
	)
	flag.Parse()

	if *worker {
		return runWorker(*fleetURL, *name, *quick, *jobTimeout, *exitDrained,
			*faultSeed, *faultDrop, *faultDup, *faultDelayMs)
	}
	return runCoordinator(*httpAddr, *storeDir, *journalPath, *seed, *lease,
		*maxAttempts, *minWorkers, *maxQueue)
}

func runCoordinator(addr, storeDir, journalPath string, seed int64, lease time.Duration,
	maxAttempts, minWorkers, maxQueue int) int {
	if storeDir == "" {
		fmt.Fprintln(os.Stderr, "skipit-sweepd: -store DIR is required for the coordinator")
		return 2
	}
	store, err := sweep.Open(storeDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	coord, err := sweepd.NewCoordinator(sweepd.CoordConfig{
		Store:       store,
		JournalPath: journalPath,
		Seed:        seed,
		LeaseTTL:    lease,
		MaxAttempts: maxAttempts,
		MinWorkers:  minWorkers,
		MaxQueue:    maxQueue,
		Logf:        logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	srv, err := introspect.New(addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	sweepd.Mount(srv, coord)
	logf("skipit-sweepd: coordinator on http://%s (job API under /api/sweepd/, state at /api/sweepd/state)", srv.Addr())

	stop := make(chan struct{})
	go coord.ReapLoop(stop, lease/2)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logf("skipit-sweepd: shutting down")
	close(stop)
	srv.Close()
	if err := coord.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

func runWorker(fleetURL, name string, quick bool, jobTimeout time.Duration, exitDrained bool,
	faultSeed int64, faultDrop, faultDup float64, faultDelayMs int) int {
	if fleetURL == "" {
		fmt.Fprintln(os.Stderr, "skipit-sweepd: -worker requires -fleet URL")
		return 2
	}
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if quick {
		bench.SetQuick()
	}
	var transport sweepd.Transport = &sweepd.HTTPTransport{Base: fleetURL}
	if faultSeed != 0 {
		transport = &sweepd.FaultTransport{Inner: transport, Plan: sweepd.FaultPlan{
			Seed:         faultSeed,
			DropRequest:  faultDrop,
			DropResponse: faultDrop,
			Duplicate:    faultDup,
			DelayMax:     time.Duration(faultDelayMs) * time.Millisecond,
		}}
		fmt.Fprintf(os.Stderr, "skipit-sweepd: worker %s injecting transport faults (seed %d)\n", name, faultSeed)
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	w := sweepd.NewWorker(sweepd.WorkerConfig{
		Name:            name,
		Client:          &sweepd.Client{T: transport},
		Source:          sweepd.IndexJobs(bench.FigureJobs(quick, nil)),
		JobTimeout:      jobTimeout,
		ExitWhenDrained: exitDrained,
		Logf:            logf,
	})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		logf("skipit-sweepd: worker %s stopping after the current job", name)
		w.Stop()
	}()
	logf("skipit-sweepd: worker %s serving %s", name, fleetURL)
	if err := w.Run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}
