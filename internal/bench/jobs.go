package bench

import (
	"fmt"

	"skipit/internal/commercial"
	"skipit/internal/ds"
	"skipit/internal/isa"
	"skipit/internal/memsim"
	"skipit/internal/persist"
	"skipit/internal/sim"
	"skipit/internal/sweep"
)

// This file decomposes every figure sweep and ablation grid into sweep.Jobs:
// one job per measured point, each carrying a fingerprint over the exact
// simulator configuration and workload parameters behind it. The job
// builders must be called after sweep knobs (Reps, Sizes, quick-mode
// shrinkage) are final — jobs capture the knob values at build time.
//
// Fingerprints hash the same config values the measurement consumes
// (templates before per-core wiring, clamped thread counts, repetition
// counts), so a store hit guarantees the stored cycles describe the point
// as it would be measured today.

// opName names the CBO.X variant in job names and series.
func opName(clean bool) string {
	if clean {
		return "clean"
	}
	return "flush"
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Fig9Jobs emits one job per Figure 9 point: (threads, size) under CBO.FLUSH
// or CBO.CLEAN, each running Reps repetitions and reporting median/sigma.
func Fig9Jobs(group string, clean bool) []sweep.Job {
	var jobs []sweep.Job
	for _, threads := range ThreadCounts {
		threads := threads
		for _, size := range Sizes {
			size := size
			clean := clean
			jobs = append(jobs, sweep.Job{
				Group:  group,
				Name:   fmt.Sprintf("%s/size%d/threads%d", opName(clean), size, threads),
				Series: fmt.Sprintf("%dT", threads),
				X:      fmt.Sprint(size),
				Fingerprint: sweep.Fingerprint("fig9", sim.DefaultConfig(1), map[string]any{
					"size": size, "threads": clampThreads(size, threads), "clean": clean,
					"reps": Reps, "loopNops": LoopNops,
				}),
				Run: func(sink sweep.Sink) (sweep.Outcome, error) {
					r := measureSweepPoint(sink, size, threads, clean)
					return sweep.Outcome{Cycles: r.Cycles, Sigma: r.Sigma, Reps: Reps,
						Derived: map[string]float64{"size": float64(size), "threads": float64(threads), "clean": b2f(clean)}}, nil
				},
			})
		}
	}
	return jobs
}

// Fig10Jobs emits one job per Figure 10 point: write, 10x CBO.X, fence,
// re-read, across (threads, op, size).
func Fig10Jobs(threadCounts []int) []sweep.Job {
	var jobs []sweep.Job
	for _, threads := range threadCounts {
		threads := threads
		for _, clean := range []bool{true, false} {
			clean := clean
			for _, size := range Sizes {
				size := size
				eff := clampThreads(size, threads)
				jobs = append(jobs, sweep.Job{
					Group:  "fig10",
					Name:   fmt.Sprintf("%s/size%d/threads%d", opName(clean), size, threads),
					Series: fmt.Sprintf("%s-%dT", opName(clean), threads),
					X:      fmt.Sprint(size),
					Fingerprint: sweep.Fingerprint("fig10", sim.DefaultConfig(eff), map[string]any{
						"size": size, "threads": eff, "clean": clean, "loopNops": LoopNops,
					}),
					Run: func(sink sweep.Sink) (sweep.Outcome, error) {
						cy := measureWriteCboFenceRead(sink, size, threads, clean)
						return sweep.Outcome{Cycles: cy, Reps: 1,
							Derived: map[string]float64{"size": float64(size), "threads": float64(threads), "clean": b2f(clean)}}, nil
					},
				})
			}
		}
	}
	return jobs
}

// ComparativeJobs emits the Figure 11 (threads=1) / Figure 12 (threads=8)
// grid: the simulated SonicBOOM under both CBO.X variants plus the §7.3
// analytic commercial models, across the size sweep.
func ComparativeJobs(group string, threads int) []sweep.Job {
	var jobs []sweep.Job
	for _, clean := range []bool{false, true} {
		clean := clean
		op := "CBO.FLUSH"
		if clean {
			op = "CBO.CLEAN"
		}
		for _, size := range Sizes {
			size := size
			jobs = append(jobs, sweep.Job{
				Group:  group,
				Name:   fmt.Sprintf("sonicboom/%s/size%d", opName(clean), size),
				Series: "SonicBOOM-" + op,
				X:      fmt.Sprint(size),
				Fingerprint: sweep.Fingerprint("comparative", sim.DefaultConfig(1), map[string]any{
					"size": size, "threads": clampThreads(size, threads), "clean": clean,
					"loopNops": LoopNops,
				}),
				Run: func(sink sweep.Sink) (sweep.Outcome, error) {
					cy := SweepOnce(sink, size, threads, clean)
					return sweep.Outcome{Cycles: cy, Reps: 1,
						Derived: map[string]float64{"size": float64(size), "threads": float64(threads), "clean": b2f(clean)}}, nil
				},
			})
		}
	}
	for _, m := range commercial.Models() {
		m := m
		for _, size := range Sizes {
			size := size
			jobs = append(jobs, sweep.Job{
				Group:       group,
				Name:        fmt.Sprintf("%s/%s/size%d", m.Vendor, m.Instr, size),
				Series:      m.Vendor + "-" + m.Instr,
				X:           fmt.Sprint(size),
				Fingerprint: sweep.Fingerprint("comparative-model", m, size, threads),
				Run: func(sweep.Sink) (sweep.Outcome, error) {
					return sweep.Outcome{Cycles: m.Latency(size, threads), Reps: 1,
						Derived: map[string]float64{"size": float64(size), "threads": float64(threads)}}, nil
				},
			})
		}
	}
	return jobs
}

// Fig13Jobs emits one job per Figure 13 point: store + 1 real + `redundant`
// redundant CBO.CLEANs per line, Skip It on or off.
func Fig13Jobs(threadCounts []int, redundant int) []sweep.Job {
	var jobs []sweep.Job
	for _, threads := range threadCounts {
		threads := threads
		for _, skipIt := range []bool{false, true} {
			skipIt := skipIt
			mode := "naive"
			if skipIt {
				mode = "skipit"
			}
			for _, size := range Sizes {
				size := size
				jobs = append(jobs, sweep.Job{
					Group:  "fig13",
					Name:   fmt.Sprintf("%s/size%d/threads%d", mode, size, threads),
					Series: fmt.Sprintf("%s-%dT", mode, threads),
					X:      fmt.Sprint(size),
					Fingerprint: sweep.Fingerprint("fig13",
						redundantConfig(clampThreads(size, threads), skipIt), map[string]any{
							"size": size, "redundant": redundant, "clean": true,
							"loopNops": LoopNops,
						}),
					Run: func(sink sweep.Sink) (sweep.Outcome, error) {
						cy := measureRedundant(sink, size, threads, redundant, skipIt, true)
						return sweep.Outcome{Cycles: cy, Reps: 1,
							Derived: map[string]float64{"size": float64(size), "threads": float64(threads), "skipit": b2f(skipIt)}}, nil
					},
				})
			}
		}
	}
	return jobs
}

// persistFingerprint hashes everything a §7.4 throughput point depends on.
func persistFingerprint(structure string, mode persist.Mode, kind PolicyKind, updatePct int, flitTable uint64) string {
	return sweep.Fingerprint("persist", memsim.DefaultConfig(PersistThreads), map[string]any{
		"structure": structure, "mode": int(mode), "policy": int(kind),
		"updatePct": updatePct, "flitTable": flitTable,
		"threads": PersistThreads, "opsPerThread": PersistOpsPerThr,
		"listKeys": ListKeys, "hashKeys": HashKeys, "treeKeys": TreeKeys,
		"hashBuckets": HashBuckets,
	})
}

// persistJob wraps one RunPersistConfig point. The gated metric is the
// slowest thread's virtual cycle count; throughput rides along in Derived.
func persistJob(group, name, series, x, structure string, mode persist.Mode, kind PolicyKind, updatePct int, flitTable uint64) sweep.Job {
	return sweep.Job{
		Group: group, Name: name, Series: series, X: x,
		Fingerprint: persistFingerprint(structure, mode, kind, updatePct, flitTable),
		Run: func(sweep.Sink) (sweep.Outcome, error) {
			row := RunPersistConfig(structure, mode, kind, updatePct, flitTable)
			return sweep.Outcome{Cycles: row.Cycles, Reps: 1, Derived: map[string]float64{
				"mops": row.Mops, "flushes": float64(row.Flushes), "elided": float64(row.Elided),
				"update_pct": float64(updatePct),
			}}, nil
		},
	}
}

// Fig14Jobs emits the Figure 14 grid: every structure under every
// persistence algorithm and elision scheme at 5% updates, plus the
// non-persistent baseline per structure.
func Fig14Jobs() []sweep.Job {
	var jobs []sweep.Job
	for _, structure := range Structures() {
		jobs = append(jobs, persistJob("fig14",
			structure+"/non-persistent", structure+"-"+persist.Manual.String(), PolicyNone.String(),
			structure, persist.Manual, PolicyNone, 5, FliTDefaultTable))
		for _, mode := range persist.Modes() {
			for _, kind := range PolicyKinds() {
				if kind == PolicyLinkAndPersist && structure == ds.NameBST {
					// §7.4: link-and-persist cannot be applied to the
					// BST — the algorithm owns the pointer bits.
					continue
				}
				jobs = append(jobs, persistJob("fig14",
					fmt.Sprintf("%s/%s/%s", structure, mode, kind),
					structure+"-"+mode.String(), kind.String(),
					structure, mode, kind, 5, FliTDefaultTable))
			}
		}
	}
	return jobs
}

// Fig15Jobs emits the Figure 15 grid: throughput across update percentages
// under the automatic persistence algorithm.
func Fig15Jobs(updatePcts []int) []sweep.Job {
	var jobs []sweep.Job
	for _, structure := range Structures() {
		for _, kind := range PolicyKinds() {
			if kind == PolicyLinkAndPersist && structure == ds.NameBST {
				continue
			}
			for _, pct := range updatePcts {
				jobs = append(jobs, persistJob("fig15",
					fmt.Sprintf("%s/%s/upd%d", structure, kind, pct),
					structure+"-"+kind.String(), fmt.Sprint(pct),
					structure, persist.Automatic, kind, pct, FliTDefaultTable))
			}
		}
	}
	return jobs
}

// Fig16Jobs emits the Figure 16 sensitivity sweep: the BST under FliT with
// hash tables from tiny to huge.
func Fig16Jobs(tableSizes []uint64) []sweep.Job {
	var jobs []sweep.Job
	for _, size := range tableSizes {
		jobs = append(jobs, persistJob("fig16",
			fmt.Sprintf("flit-table%d", size), "flit-hash", fmt.Sprint(size),
			ds.NameBST, persist.Automatic, PolicyFliTHash, 5, size))
	}
	return jobs
}

// --- Ablations: the §5 design choices DESIGN.md calls out, as gated jobs ---

// measureAblationSweep runs dirty-region + flush-region + fence under cfg
// and returns cycles from first CBO issue to final fence completion.
func measureAblationSweep(sink Sink, cfg sim.Config, size uint64) float64 {
	s := newSystem(cfg)
	b := isa.NewBuilder()
	b.StoreRegion(0, size, lineBytes, 1)
	b.Fence()
	start := b.Mark()
	b.CboRegion(0, size, lineBytes, false)
	end := b.Mark()
	b.Fence()
	if _, err := s.Run([]*isa.Program{b.Build()}, runLimit); err != nil {
		panic(err)
	}
	emitSnapshot(sink, s, "ablation_sweep_size%d", size)
	tm := s.Cores[0].Timings()
	return float64(tm[end].CompletedAt - tm[start].IssuedAt)
}

// measureAblationRedundant runs store + (1+redundant) CBO.CLEANs per line.
func measureAblationRedundant(sink Sink, cfg sim.Config, size uint64, redundant int) float64 {
	s := newSystem(cfg)
	b := isa.NewBuilder()
	start := b.Mark()
	for a := uint64(0); a < size; a += lineBytes {
		b.Store(a, 1)
		for r := 0; r <= redundant; r++ {
			b.CboClean(a)
		}
	}
	end := b.Mark()
	b.Fence()
	if _, err := s.Run([]*isa.Program{b.Build()}, runLimit); err != nil {
		panic(err)
	}
	emitSnapshot(sink, s, "ablation_redundant_size%d_red%d", size, redundant)
	tm := s.Cores[0].Timings()
	return float64(tm[end].CompletedAt - tm[start].IssuedAt)
}

// AblationJobs emits the §5 design-choice grid: widened data array, FSHR
// count, same-line coalescing, and flush-queue depth, each as a gated
// 4 KiB (or redundant-clean) measurement.
func AblationJobs() []sweep.Job {
	var jobs []sweep.Job
	sweepCell := func(name, series, x string, mutate func(*sim.Config)) {
		cfg := sim.DefaultConfig(1)
		mutate(&cfg)
		const size = 4096
		jobs = append(jobs, sweep.Job{
			Group: "ablations", Name: name, Series: series, X: x,
			Fingerprint: sweep.Fingerprint("ablation-sweep", cfg, size),
			Run: func(sink sweep.Sink) (sweep.Outcome, error) {
				return sweep.Outcome{Cycles: measureAblationSweep(sink, cfg, size), Reps: 1}, nil
			},
		})
	}
	sweepCell("wide-data-array/on", "wide-data-array", "on", func(c *sim.Config) {})
	sweepCell("wide-data-array/off", "wide-data-array", "off", func(c *sim.Config) { c.L1.Flush.WideDataArray = false })
	for _, n := range []int{1, 2, 8} {
		n := n
		sweepCell(fmt.Sprintf("fshr/%d", n), "fshr-count", fmt.Sprint(n),
			func(c *sim.Config) { c.L1.Flush.NumFSHRs = n })
	}
	for _, depth := range []int{1, 8} {
		depth := depth
		sweepCell(fmt.Sprintf("flush-queue/%d", depth), "flush-queue-depth", fmt.Sprint(depth),
			func(c *sim.Config) { c.L1.Flush.QueueDepth = depth })
	}
	for _, on := range []bool{true, false} {
		on := on
		x := "off"
		if on {
			x = "on"
		}
		cfg := sim.DefaultConfig(1)
		cfg.L1.Flush.SkipIt = false
		cfg.L1.Flush.Coalescing = on
		const size, redundant = 512, 4
		jobs = append(jobs, sweep.Job{
			Group: "ablations", Name: "coalescing/" + x, Series: "coalescing", X: x,
			Fingerprint: sweep.Fingerprint("ablation-redundant", cfg, size, redundant),
			Run: func(sink sweep.Sink) (sweep.Outcome, error) {
				return sweep.Outcome{Cycles: measureAblationRedundant(sink, cfg, size, redundant), Reps: 1}, nil
			},
		})
	}
	return jobs
}
