package sim

import (
	"fmt"

	"skipit/internal/tilelink"
)

// CheckInvariants validates the coherence and Skip It invariants across the
// whole hierarchy. Tests call it every cycle during stress runs; all
// properties are designed to hold at cycle granularity, not just at
// quiescence, because updates are ordered to stay on the safe side of each
// invariant during transients.
func (s *System) CheckInvariants() error {
	for i, d := range s.L1s {
		for _, ln := range d.Lines() {
			l2state := s.L2.LineState(ln.Addr)

			// Inclusion (§3.4): every valid L1 line is present in L2.
			if !l2state.Present {
				return fmt.Errorf("inclusion: l1[%d] holds %#x absent from L2", i, ln.Addr)
			}

			// Directory conservatism: a client never holds more
			// permission than the directory granted it. (The reverse
			// can transiently hold: an FSHR invalidates the L1 copy
			// before L2 processes the RootRelease, §5.5.)
			if ln.Perm > l2state.Perms[i] {
				return fmt.Errorf("directory: l1[%d] holds %v on %#x but directory says %v",
					i, ln.Perm, ln.Addr, l2state.Perms[i])
			}

			// Dirty data requires write permission.
			if ln.Dirty && ln.Perm != tilelink.PermTrunk {
				return fmt.Errorf("l1[%d]: dirty line %#x without trunk permission", i, ln.Addr)
			}

			// Skip It (§6.2): a valid skip bit — line valid, dirty
			// bit unset, skip set — implies the line is not dirty
			// in L2. The one sanctioned exception: a CBO.CLEAN for
			// the line is still in flight (§6.1 leaves the bit
			// untouched during execution); the in-flight request
			// carries the dirty data and holds fences, so dropping
			// redundant writebacks against the stale bit is safe.
			if ln.Skip && !ln.Dirty && l2state.Dirty && !d.FlushUnit().ActiveOn(ln.Addr) {
				return fmt.Errorf("skip-bit: l1[%d] line %#x skip=1 clean, but L2 dirty", i, ln.Addr)
			}
		}
	}

	// Single-writer (MESI): per directory, a trunk owner excludes all
	// other holders; verified over every line any L1 holds.
	seen := map[uint64]bool{}
	for _, d := range s.L1s {
		for _, ln := range d.Lines() {
			if seen[ln.Addr] {
				continue
			}
			seen[ln.Addr] = true
			st := s.L2.LineState(ln.Addr)
			if !st.Present {
				continue
			}
			trunks, holders := 0, 0
			for _, p := range st.Perms {
				if p == tilelink.PermTrunk {
					trunks++
				}
				if p != tilelink.PermNone {
					holders++
				}
			}
			if trunks > 1 || (trunks == 1 && holders > 1) {
				return fmt.Errorf("single-writer: line %#x directory %v", ln.Addr, st.Perms)
			}
		}
	}

	// Flush counter accounting (§5.2): pending count equals queued plus
	// FSHR-resident requests.
	for i, d := range s.L1s {
		u := d.FlushUnit()
		if u.PendingCount() != u.QueueLen()+u.ActiveFSHRs() {
			return fmt.Errorf("flush counter: l1[%d] counter=%d queue=%d fshrs=%d",
				i, u.PendingCount(), u.QueueLen(), u.ActiveFSHRs())
		}
	}
	return nil
}

// StepChecked advances one cycle and validates invariants, for stress tests.
func (s *System) StepChecked() error {
	s.Step()
	return s.CheckInvariants()
}
