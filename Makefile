GO ?= go

.PHONY: all build test race lint fmt bench tlc

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the stock vet suite plus skipit-vet, the project's own
# go/analysis suite (determinism, hotalloc, poolown, nextevent, metricname).
# See internal/analysis/README.md for the rules and the waiver syntax.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/skipit-vet ./...

fmt:
	gofmt -w ./cmd ./internal

bench:
	$(GO) test ./internal/bench -run '^$$' -bench . -benchmem -benchtime 50x

# tlc runs the fixed-seed protocol-level agent sweep CI uses (see
# cmd/skipit-tlc; failures shrink to .tlc.json artifacts in /tmp/tlc-repros).
tlc:
	mkdir -p /tmp/tlc-repros
	$(GO) run ./cmd/skipit-tlc -episodes 2000 -seed 1 -out /tmp/tlc-repros
