package sweepd

import (
	"time"

	"skipit/internal/sweep"
)

// Fleet runs a job slice through a remote coordinator, returning results in
// submission order — a drop-in for sweep.Runner.Run, with the same local
// store semantics (content-address hits skip submission; fresh records are
// Put for the caller to Flush). Degradation is explicit: when the
// coordinator is unreachable at submit time, or polling fails
// PollFailBudget consecutive times mid-run, the remaining jobs downgrade to
// the in-process Fallback runner with a logged notice — a dead fleet costs
// wall time, never results.
type Fleet struct {
	Client *Client
	// Fallback executes jobs in process on downgrade. Its Store/Force
	// should match Fleet's so store handling stays uniform.
	Fallback sweep.Runner
	// Store and Force mirror sweep.Runner: local content-address hits are
	// served without touching the coordinator, and fresh fleet records are
	// Put (the caller flushes).
	Store *sweep.Store
	Force bool
	// Priority maps a job index to its shed priority (higher survives
	// longer under coordinator overload). Nil means all zero.
	Priority func(i int) int
	// PollEvery is the results poll interval. Default 250ms.
	PollEvery time.Duration
	// PollFailBudget is how many consecutive poll failures trigger the
	// downgrade. Default 20.
	PollFailBudget int
	// SubmitRetries bounds submit attempts before downgrading. Default 3.
	SubmitRetries int
	// Timeout caps the whole fleet run; past it the remaining jobs
	// downgrade. 0 means no cap.
	Timeout time.Duration
	// Logf receives the downgrade notices. Default discards.
	Logf func(format string, args ...any)
}

// Run executes jobs via the fleet, falling back in process when the
// coordinator is unreachable. Results are in submission order and
// bit-identical to sweep.Runner.Run on the same jobs: records are
// deterministic, so where they ran cannot show in the bytes.
func (f *Fleet) Run(jobs []sweep.Job) []sweep.JobResult {
	logf := f.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	pollEvery := f.PollEvery
	if pollEvery <= 0 {
		pollEvery = 250 * time.Millisecond
	}
	failBudget := f.PollFailBudget
	if failBudget <= 0 {
		failBudget = 20
	}
	submitRetries := f.SubmitRetries
	if submitRetries <= 0 {
		submitRetries = 3
	}

	results := make([]sweep.JobResult, len(jobs))
	byID := make(map[string]int, len(jobs))
	var specs []JobSpec
	var ids []string
	for i := range jobs {
		job := jobs[i]
		results[i].Group = job.Group
		// Local content-address hits never cross the wire.
		if f.Store != nil && !f.Force {
			if rec, ok := f.Store.Lookup(job.Group, job.Name, job.Fingerprint); ok {
				results[i].Record = rec
				results[i].Cached = true
				continue
			}
		}
		prio := 0
		if f.Priority != nil {
			prio = f.Priority(i)
		}
		spec := SpecFor(job, prio)
		byID[spec.ID()] = i
		specs = append(specs, spec)
		ids = append(ids, spec.ID())
	}
	if len(specs) == 0 {
		return results
	}

	// Submit with a short retry budget; an unreachable coordinator
	// downgrades the whole run.
	var submitted bool
	for attempt := 1; attempt <= submitRetries; attempt++ {
		if _, err := f.Client.Submit(SubmitRequest{Jobs: specs}); err == nil {
			submitted = true
			break
		} else if attempt == submitRetries {
			logf("sweepd: DEGRADED: coordinator unreachable after %d submit attempts (%v); falling back to the in-process runner for %d job(s)",
				submitRetries, err, len(specs))
		} else {
			time.Sleep(pollEvery * time.Duration(attempt))
		}
	}
	if !submitted {
		return f.fallback(jobs, results, byID, logf)
	}

	// Poll until every submitted job is terminal.
	var deadline time.Time
	if f.Timeout > 0 {
		deadline = time.Now().Add(f.Timeout)
	}
	consecutiveFails := 0
	for {
		resp, err := f.Client.Results(ResultsRequest{IDs: ids})
		if err != nil {
			consecutiveFails++
			if consecutiveFails >= failBudget {
				logf("sweepd: DEGRADED: lost the coordinator mid-run (%d consecutive poll failures: %v); finishing the remaining jobs in process",
					consecutiveFails, err)
				return f.fallback(jobs, f.absorb(results, byID, nil), byID, logf)
			}
			time.Sleep(pollEvery)
			continue
		}
		consecutiveFails = 0
		results = f.absorb(results, byID, resp.Jobs)
		if resp.Done {
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			logf("sweepd: DEGRADED: fleet run exceeded %s; finishing the remaining jobs in process", f.Timeout)
			return f.fallback(jobs, results, byID, logf)
		}
		time.Sleep(pollEvery)
	}
	f.putFresh(results)
	return results
}

// absorb folds terminal fleet statuses into the result slice.
func (f *Fleet) absorb(results []sweep.JobResult, byID map[string]int, statuses []JobStatus) []sweep.JobResult {
	for _, st := range statuses {
		i, ok := byID[st.Job.ID()]
		if !ok {
			continue
		}
		switch st.State {
		case StateDone:
			if st.Record != nil {
				results[i].Record = *st.Record
				results[i].Err = nil
			}
		case StateFailed:
			fail := Failure{Code: FailRunError}
			if st.Failure != nil {
				fail = *st.Failure
			}
			results[i].Err = &JobError{Job: st.Job, Attempts: st.Attempt, Failure: fail}
		}
	}
	return results
}

// fallback finishes every unresolved job on the in-process runner and merges
// the outcomes, preserving submission order.
func (f *Fleet) fallback(jobs []sweep.Job, results []sweep.JobResult, byID map[string]int, logf func(string, ...any)) []sweep.JobResult {
	var rest []sweep.Job
	var restIdx []int
	for i := range jobs {
		if results[i].Cached || results[i].Err != nil || results[i].Record.Name != "" {
			continue
		}
		rest = append(rest, jobs[i])
		restIdx = append(restIdx, i)
	}
	if len(rest) == 0 {
		f.putFresh(results)
		return results
	}
	logf("sweepd: running %d job(s) in process", len(rest))
	runner := f.Fallback
	runner.Store = f.Store
	runner.Force = f.Force
	sub := runner.Run(rest)
	for k, i := range restIdx {
		results[i] = sub[k]
	}
	f.putFresh(results)
	return results
}

// putFresh mirrors sweep.Runner's store handling for fleet-computed records:
// every successful non-cached result lands in the local store, in submission
// order, so the files the caller flushes are byte-identical to an in-process
// run. Double puts (a record the fallback runner already stored) replace by
// name with identical content — harmless.
func (f *Fleet) putFresh(results []sweep.JobResult) {
	if f.Store == nil {
		return
	}
	for i := range results {
		if !results[i].Cached && results[i].Err == nil && results[i].Record.Name != "" {
			f.Store.Put(results[i].Group, results[i].Record)
		}
	}
}
