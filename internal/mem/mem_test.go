package mem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func testConfig() Config {
	return Config{LineBytes: 64, ReadLatency: 10, WriteLatency: 12, AcceptInterval: 2, MaxOutstanding: 4}
}

func drain(t *testing.T, m *Memory, now *int64) []Response {
	t.Helper()
	var out []Response
	for deadline := *now + 1000; *now < deadline; *now++ {
		m.Tick(*now)
		for {
			r, ok := m.PollResponse()
			if !ok {
				break
			}
			out = append(out, r)
		}
		if m.Outstanding() == 0 {
			return out
		}
	}
	t.Fatal("memory did not drain")
	return nil
}

func TestWriteThenReadRoundTrip(t *testing.T) {
	m := New(testConfig())
	line := make([]byte, 64)
	for i := range line {
		line[i] = byte(i)
	}
	now := int64(0)
	if !m.Submit(now, Request{Kind: Write, Addr: 0x1000, Data: line, Tag: 1}) {
		t.Fatal("write rejected")
	}
	rs := drain(t, m, &now)
	if len(rs) != 1 || rs[0].Kind != Write || rs[0].Tag != 1 {
		t.Fatalf("write ack = %+v", rs)
	}
	if !m.Submit(now, Request{Kind: Read, Addr: 0x1000, Tag: 2}) {
		t.Fatal("read rejected")
	}
	rs = drain(t, m, &now)
	if len(rs) != 1 || !bytes.Equal(rs[0].Data, line) {
		t.Fatalf("read returned wrong data: %+v", rs)
	}
}

func TestReadLatencyHonored(t *testing.T) {
	m := New(testConfig())
	m.Submit(0, Request{Kind: Read, Addr: 0})
	for now := int64(0); now < 10; now++ {
		m.Tick(now)
		if _, ok := m.PollResponse(); ok {
			t.Fatalf("response at cycle %d, before ReadLatency", now)
		}
	}
	m.Tick(10)
	if _, ok := m.PollResponse(); !ok {
		t.Fatal("no response at ReadLatency")
	}
}

func TestAcceptIntervalThrottles(t *testing.T) {
	m := New(testConfig())
	if !m.Submit(0, Request{Kind: Read, Addr: 0}) {
		t.Fatal("first submit rejected")
	}
	if m.Submit(1, Request{Kind: Read, Addr: 64}) {
		t.Fatal("submit accepted inside AcceptInterval")
	}
	if !m.Submit(2, Request{Kind: Read, Addr: 64}) {
		t.Fatal("submit rejected after AcceptInterval")
	}
	if m.Stats().StalledSends != 1 {
		t.Fatalf("StalledSends = %d, want 1", m.Stats().StalledSends)
	}
}

func TestMaxOutstandingBounds(t *testing.T) {
	cfg := testConfig()
	cfg.AcceptInterval = 0
	m := New(cfg)
	for i := 0; i < cfg.MaxOutstanding; i++ {
		if !m.Submit(0, Request{Kind: Read, Addr: uint64(i) * 64}) {
			t.Fatalf("submit %d rejected below queue depth", i)
		}
	}
	if m.Submit(0, Request{Kind: Read, Addr: 0x10000}) {
		t.Fatal("submit accepted beyond MaxOutstanding")
	}
}

func TestUnackedWriteLostOnCrashWithoutADR(t *testing.T) {
	m := New(testConfig())
	line := bytes.Repeat([]byte{0xAB}, 64)
	m.Submit(0, Request{Kind: Write, Addr: 0, Data: line})
	m.Crash(false)
	if m.PeekLine(0)[0] != 0 {
		t.Fatal("unacknowledged write survived crash without ADR drain")
	}
	if m.Outstanding() != 0 {
		t.Fatal("controller not quiescent after crash")
	}
}

func TestUnackedWriteDrainsOnCrashWithADR(t *testing.T) {
	m := New(testConfig())
	line := bytes.Repeat([]byte{0xAB}, 64)
	m.Submit(0, Request{Kind: Write, Addr: 0, Data: line})
	m.Crash(true)
	if m.PeekLine(0)[0] != 0xAB {
		t.Fatal("accepted write lost despite ADR drain")
	}
}

func TestAckedWriteAlwaysSurvives(t *testing.T) {
	m := New(testConfig())
	line := bytes.Repeat([]byte{0xCD}, 64)
	now := int64(0)
	m.Submit(now, Request{Kind: Write, Addr: 64, Data: line})
	drain(t, m, &now)
	m.Crash(false)
	if m.PeekLine(64)[0] != 0xCD {
		t.Fatal("acknowledged write lost on crash")
	}
}

func TestPeekPokeUint64(t *testing.T) {
	m := New(testConfig())
	m.PokeUint64(0x2008, 0xDEADBEEFCAFE)
	if got := m.PeekUint64(0x2008); got != 0xDEADBEEFCAFE {
		t.Fatalf("PeekUint64 = %#x", got)
	}
	// Neighbors untouched.
	if got := m.PeekUint64(0x2000); got != 0 {
		t.Fatalf("neighbor clobbered: %#x", got)
	}
	line := m.PeekLine(0x2008)
	if line[8] != 0xFE {
		t.Fatalf("PeekLine misaligned view: % x", line[:16])
	}
}

func TestPokeLineRoundTrip(t *testing.T) {
	m := New(testConfig())
	line := bytes.Repeat([]byte{7}, 64)
	m.PokeLine(0x40, line)
	if !bytes.Equal(m.PeekLine(0x40), line) {
		t.Fatal("PokeLine/PeekLine mismatch")
	}
}

// Property: every submitted request gets exactly one response with matching
// tag, never earlier than its latency, and final memory contents equal the
// last acknowledged write per line.
func TestMemoryCompletenessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := testConfig()
		m := New(cfg)
		type issued struct {
			req    Request
			sentAt int64
		}
		var sent []issued
		last := map[uint64]byte{}
		responses := 0
		now := int64(0)
		total := 20 + rng.Intn(40)
		for responses < total {
			if len(sent) < total && rng.Intn(2) == 0 {
				addr := uint64(rng.Intn(8)) * 64
				var req Request
				if rng.Intn(2) == 0 {
					b := byte(rng.Intn(256))
					req = Request{Kind: Write, Addr: addr, Data: bytes.Repeat([]byte{b}, 64), Tag: len(sent)}
				} else {
					req = Request{Kind: Read, Addr: addr, Tag: len(sent)}
				}
				if m.Submit(now, req) {
					sent = append(sent, issued{req, now})
					if req.Kind == Write {
						last[addr] = req.Data[0]
					}
				}
			}
			m.Tick(now)
			for {
				r, ok := m.PollResponse()
				if !ok {
					break
				}
				responses++
				in := sent[r.Tag]
				lat := cfg.ReadLatency
				if r.Kind == Write {
					lat = cfg.WriteLatency
				}
				if now < in.sentAt+int64(lat) {
					return false
				}
				if r.Kind != in.req.Kind || r.Addr != in.req.Addr {
					return false
				}
			}
			now++
			if now > 100_000 {
				return false
			}
		}
		for addr, b := range last {
			if m.PeekLine(addr)[0] != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
