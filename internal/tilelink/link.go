package tilelink

import (
	"fmt"
	"math"
)

// NoEvent is the NextEvent sentinel meaning "no self-generated future event":
// the component cannot change state until some other component acts on it. It
// is far enough from MaxInt64 that callers can add small offsets without
// overflow.
const NoEvent int64 = math.MaxInt64 / 2

// Chaos is the fault-injection hook a link consults when armed. All methods
// must be pure functions of their arguments and the injector's schedule state
// for the current cycle, so that Peek and Recv agree within a cycle and a
// replayed schedule perturbs the link bit-identically. A nil hook (the
// default) costs one pointer compare per Send/Recv.
type Chaos interface {
	// SendFault is consulted before a send is accepted at cycle now. A
	// refuse return models acceptance backpressure (the channel holds
	// ready low; the sender retries as for ordinary occupancy); extra adds
	// wire-latency jitter to this message's delivery. Jitter delays
	// delivery but can never reorder: messages still drain strictly in
	// send order.
	SendFault(now int64) (extra int64, refuse bool)
	// RecvStall reports whether delivery of the head message must stall at
	// cycle now (beat stall on the receive side).
	RecvStall(now int64) bool
}

// Link is one unidirectional TileLink channel between two agents. It models
// occupancy in beats: a message with a data payload occupies the channel for
// lineBytes/beatBytes consecutive cycles (4 cycles for a 64 B line on the
// SonicBOOM's 16 B system bus, §3.3/Fig. 3), a data-less message for one
// cycle, and delivery additionally incurs a fixed wire latency.
//
// Links are driven by the simulation clock: producers call Send with the
// current cycle, consumers call Recv with the current cycle. A message sent
// at cycle t is never receivable before t+1, which keeps the component tick
// order of the system loop free of zero-cycle combinational paths.
type Link struct {
	Name      string
	BeatBytes uint64
	LineBytes uint64
	Latency   int // wire cycles added after the final beat

	busyUntil int64 // last cycle at which the channel is occupied
	q         []inflight
	staged    []inflight // deferred-mode sends awaiting CommitDeferred
	deferred  bool       // parallel windows: stage sends, commit at barriers
	chaos     Chaos      // nil unless a fault schedule is armed

	// Successful Send and Recv counts (summed, the watchdog progress
	// signal). Split per side so that under parallel windows the producer
	// shard owns sendEvents and the consumer shard owns recvEvents with no
	// shared write; Events() is only read at barriers.
	sendEvents uint64
	recvEvents uint64
}

type inflight struct {
	msg     Msg
	readyAt int64 // first cycle at which Recv may return the message
}

// NewLink returns a link with the given occupancy parameters. latency is the
// number of cycles between the last beat leaving the sender and the message
// becoming receivable.
func NewLink(name string, beatBytes, lineBytes uint64, latency int) *Link {
	if beatBytes == 0 || lineBytes%beatBytes != 0 {
		panic(fmt.Sprintf("tilelink: link %s: line %d not a multiple of beat %d", name, lineBytes, beatBytes))
	}
	return &Link{Name: name, BeatBytes: beatBytes, LineBytes: lineBytes, Latency: latency}
}

// Beats returns the number of beats the message occupies on this link.
//
//skipit:hotpath
func (l *Link) Beats(m Msg) int64 {
	if m.Op.HasData() {
		return int64(l.LineBytes / l.BeatBytes)
	}
	return 1
}

// CanSend reports whether the channel can accept the first beat of a new
// message at cycle now.
//
//skipit:hotpath
func (l *Link) CanSend(now int64) bool { return l.busyUntil <= now }

// Send enqueues a message at cycle now. It reports false without side
// effects when the channel is occupied; the caller must retry on a later
// cycle, as hardware would hold valid high until ready.
//
//skipit:hotpath
func (l *Link) Send(now int64, m Msg) bool {
	if !l.CanSend(now) {
		return false
	}
	if err := m.Validate(l.LineBytes); err != nil { //skipit:ignore hotalloc Validate builds errors only for illegal messages; the legal-trace path is allocation-free
		panic(err)
	}
	var extra int64
	if l.chaos != nil {
		var refuse bool
		extra, refuse = l.chaos.SendFault(now)
		if refuse {
			return false
		}
	}
	beats := l.Beats(m)
	l.busyUntil = now + beats
	f := inflight{msg: m, readyAt: now + beats + int64(l.Latency) + extra}
	if l.deferred {
		// Parallel window: the consumer shard may be draining q
		// concurrently, so stage on the producer-owned side. The message
		// cannot be due inside the current window anyway (readyAt is at
		// least now+1+Latency, beyond the conservative horizon), so
		// deferring publication to the barrier is invisible to timing.
		l.staged = append(l.staged, f) //skipit:ignore hotalloc queue growth is amortized, capacity is bounded by channel occupancy
	} else {
		l.q = append(l.q, f) //skipit:ignore hotalloc queue growth is amortized, capacity is bounded by channel occupancy
	}
	l.sendEvents++
	return true
}

// Recv returns the oldest message that has fully arrived by cycle now, or
// ok=false. Messages are delivered strictly in send order.
//
//skipit:hotpath
func (l *Link) Recv(now int64) (Msg, bool) {
	if len(l.q) == 0 || l.q[0].readyAt > now {
		return Msg{}, false
	}
	if l.chaos != nil && l.chaos.RecvStall(now) {
		return Msg{}, false
	}
	m := l.q[0].msg
	// Shift rather than re-slice so the backing array does not grow
	// without bound over long simulations.
	copy(l.q, l.q[1:])
	l.q = l.q[:len(l.q)-1]
	l.recvEvents++
	return m, true
}

// Peek is Recv without consuming the message. It consults the same chaos
// stall predicate as Recv so that a Peek-then-Recv sequence within one cycle
// sees consistent answers.
//
//skipit:hotpath
func (l *Link) Peek(now int64) (Msg, bool) {
	if len(l.q) == 0 || l.q[0].readyAt > now {
		return Msg{}, false
	}
	if l.chaos != nil && l.chaos.RecvStall(now) {
		return Msg{}, false
	}
	return l.q[0].msg, true
}

// NextEvent returns the earliest cycle after now at which this channel can
// change observable state on its own: the arrival cycle of the oldest
// undelivered message. Delivery is strictly in send order, so the head
// message gates everything behind it. A head that is already receivable (for
// example held back by a chaos RecvStall window) reports now+1 — the
// conservative answer that forbids skipping while a consumer could act.
// Channel occupancy (busyUntil) is deliberately not an event: a sender
// blocked on it is itself active and reports now+1 from its own NextEvent.
//
//skipit:hotpath
func (l *Link) NextEvent(now int64) int64 {
	if len(l.q) == 0 {
		return NoEvent
	}
	if r := l.q[0].readyAt; r > now {
		return r
	}
	return now + 1
}

// SetChaos installs (or, with nil, removes) the fault-injection hook.
func (l *Link) SetChaos(c Chaos) { l.chaos = c }

// SetDeferred switches the channel between immediate delivery (serial
// stepping: Send appends straight to the receive queue) and deferred
// delivery (parallel windows: Send stages on the producer side until
// CommitDeferred publishes at a barrier). Callers must commit any staged
// messages before switching back to immediate mode.
func (l *Link) SetDeferred(on bool) {
	if !on && len(l.staged) > 0 {
		panic(fmt.Sprintf("tilelink: link %s: leaving deferred mode with %d staged messages", l.Name, len(l.staged)))
	}
	l.deferred = on
}

// CommitDeferred publishes all staged sends into the receive queue in send
// order. It must only be called at a barrier (no concurrent Recv), which
// makes delivery order deterministic: the coordinator commits ports in index
// order and channels in a fixed A,B,C,D,E order, so queue contents after a
// barrier are a pure function of (cycle, port index, channel, send seq).
//
//skipit:hotpath
func (l *Link) CommitDeferred() {
	if len(l.staged) == 0 {
		return
	}
	l.q = append(l.q, l.staged...) //skipit:ignore hotalloc queue growth is amortized, capacity is bounded by channel occupancy
	for i := range l.staged {
		l.staged[i] = inflight{}
	}
	l.staged = l.staged[:0]
}

// Events returns the cumulative count of successful sends and deliveries on
// this link. The watchdog uses it as a cheap forward-progress signal: a
// changing count means messages are still moving. Only coherent at barriers
// when the link is in deferred mode.
func (l *Link) Events() uint64 { return l.sendEvents + l.recvEvents }

// SendEvents returns the producer-side half of Events: successful sends.
func (l *Link) SendEvents() uint64 { return l.sendEvents }

// RecvEvents returns the consumer-side half of Events: deliveries.
func (l *Link) RecvEvents() uint64 { return l.recvEvents }

// Pending returns the number of in-flight messages (sent, not yet received),
// including any still staged under deferred mode.
func (l *Link) Pending() int { return len(l.q) + len(l.staged) }

// Reset drops all in-flight messages, e.g. when simulating a crash that
// destroys volatile state.
func (l *Link) Reset() {
	l.q = l.q[:0]
	l.staged = l.staged[:0]
	l.busyUntil = 0
}

// ClientPort bundles the five channels of one client<->manager link, from the
// client's perspective: A, C, E are outbound; B, D are inbound.
type ClientPort struct {
	A, C, E *Link // client -> manager
	B, D    *Link // manager -> client
}

// NewClientPort builds a five-channel link bundle. All channels share beat
// and line geometry; only C and D can carry data in our protocol subset, but
// uniform geometry keeps the model simple and matches the shared system bus.
func NewClientPort(name string, beatBytes, lineBytes uint64, latency int) *ClientPort {
	mk := func(ch string) *Link {
		return NewLink(name+"."+ch, beatBytes, lineBytes, latency)
	}
	return &ClientPort{A: mk("A"), B: mk("B"), C: mk("C"), D: mk("D"), E: mk("E")}
}

// Pending returns the total number of in-flight messages across all five
// channels; zero means the link bundle is quiescent.
func (p *ClientPort) Pending() int {
	return p.A.Pending() + p.B.Pending() + p.C.Pending() + p.D.Pending() + p.E.Pending()
}

// Reset drops in-flight messages on all five channels.
func (p *ClientPort) Reset() {
	p.A.Reset()
	p.B.Reset()
	p.C.Reset()
	p.D.Reset()
	p.E.Reset()
}

// NextEvent returns the earliest cycle after now at which any of the five
// channels can deliver a message; NoEvent when the bundle is quiescent.
//
//skipit:hotpath
func (p *ClientPort) NextEvent(now int64) int64 {
	next := p.A.NextEvent(now)
	if t := p.B.NextEvent(now); t < next {
		next = t
	}
	if t := p.C.NextEvent(now); t < next {
		next = t
	}
	if t := p.D.NextEvent(now); t < next {
		next = t
	}
	if t := p.E.NextEvent(now); t < next {
		next = t
	}
	return next
}

// Events sums the activity counters of all five channels.
func (p *ClientPort) Events() uint64 {
	return p.A.Events() + p.B.Events() + p.C.Events() + p.D.Events() + p.E.Events()
}

// SetDeferred switches all five channels between immediate and deferred
// delivery (see Link.SetDeferred).
func (p *ClientPort) SetDeferred(on bool) {
	p.A.SetDeferred(on)
	p.B.SetDeferred(on)
	p.C.SetDeferred(on)
	p.D.SetDeferred(on)
	p.E.SetDeferred(on)
}

// CommitDeferred publishes staged sends on all five channels in the fixed
// A,B,C,D,E order, the per-port half of the deterministic delivery order.
//
//skipit:hotpath
func (p *ClientPort) CommitDeferred() {
	p.A.CommitDeferred()
	p.B.CommitDeferred()
	p.C.CommitDeferred()
	p.D.CommitDeferred()
	p.E.CommitDeferred()
}

// NextEventClient folds only the channels the client side consumes (B, D):
// the client shard's view of this port for horizon computation. Channels the
// client *produces* are not its events — a blocked sender reports now+1 from
// its own NextEvent.
//
//skipit:hotpath
func (p *ClientPort) NextEventClient(now int64) int64 {
	next := p.B.NextEvent(now)
	if t := p.D.NextEvent(now); t < next {
		next = t
	}
	return next
}

// NextEventManager folds only the channels the manager side consumes
// (A, C, E): the hub shard's view of this port.
//
//skipit:hotpath
func (p *ClientPort) NextEventManager(now int64) int64 {
	next := p.A.NextEvent(now)
	if t := p.C.NextEvent(now); t < next {
		next = t
	}
	if t := p.E.NextEvent(now); t < next {
		next = t
	}
	return next
}

// ClientEvents sums the counters the client side owns: sends on A, C, E and
// deliveries on B, D. Safe for the client shard to read mid-window; the
// per-shard watchdog progress signal. ClientEvents + ManagerEvents ==
// Events.
func (p *ClientPort) ClientEvents() uint64 {
	return p.A.SendEvents() + p.C.SendEvents() + p.E.SendEvents() +
		p.B.RecvEvents() + p.D.RecvEvents()
}

// ManagerEvents sums the counters the manager side owns: deliveries on A, C,
// E and sends on B, D.
func (p *ClientPort) ManagerEvents() uint64 {
	return p.A.RecvEvents() + p.C.RecvEvents() + p.E.RecvEvents() +
		p.B.SendEvents() + p.D.SendEvents()
}

// MsgDebug is the JSON-friendly view of one in-flight message.
type MsgDebug struct {
	Op      string `json:"op"`
	Addr    uint64 `json:"addr"`
	ReadyAt int64  `json:"ready_at"`
}

// LinkDebug is the JSON-friendly snapshot of one channel's queue, embedded in
// hang reports.
type LinkDebug struct {
	Name      string     `json:"name"`
	BusyUntil int64      `json:"busy_until"`
	Pending   []MsgDebug `json:"pending,omitempty"`
}

// Debug snapshots the channel's in-flight queue for diagnostics. Staged
// deferred-mode messages are included after the published queue; at a
// barrier the staged set is empty, so reports match serial stepping.
func (l *Link) Debug() LinkDebug {
	d := LinkDebug{Name: l.Name, BusyUntil: l.busyUntil}
	for _, f := range l.q {
		d.Pending = append(d.Pending, MsgDebug{Op: f.msg.Op.String(), Addr: f.msg.Addr, ReadyAt: f.readyAt})
	}
	for _, f := range l.staged {
		d.Pending = append(d.Pending, MsgDebug{Op: f.msg.Op.String(), Addr: f.msg.Addr, ReadyAt: f.readyAt})
	}
	return d
}

// Debug snapshots all five channels of the bundle.
func (p *ClientPort) Debug() []LinkDebug {
	return []LinkDebug{p.A.Debug(), p.B.Debug(), p.C.Debug(), p.D.Debug(), p.E.Debug()}
}
