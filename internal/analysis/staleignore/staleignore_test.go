package staleignore_test

import (
	"testing"

	"skipit/internal/analysis/antest"
	"skipit/internal/analysis/staleignore"
)

// TestStaleIgnore runs the analyzer (which pulls the entire suite in
// through its Requires list) over a fixture holding one live waiver, one
// dead one, and one misspelled analyzer name. The live waiver must stay
// silent, the dead one must be reported, and the typo must surface both the
// unknown-name finding and the un-suppressed underlying diagnostic.
func TestStaleIgnore(t *testing.T) {
	antest.Run(t, staleignore.Analyzer, antest.Dir(t, "staleignore/internal/sim"))
}
