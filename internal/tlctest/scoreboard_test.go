package tlctest

import (
	"testing"

	"skipit/internal/tilelink"
)

// The scoreboard tests exercise the permission lattice and value-set rules
// in isolation — no simulator, no agents — feeding events directly.

func newTestSB() *Scoreboard {
	return NewScoreboard(3, []uint64{0x1000, 0x1040}, []uint64{0x11, 0x22}, nil)
}

func wantViolation(t *testing.T, sb *Scoreboard, kind string) *Violation {
	t.Helper()
	v := sb.Violation()
	if v == nil {
		t.Fatalf("expected a %q violation, got none", kind)
	}
	if v.Kind != kind {
		t.Fatalf("expected a %q violation, got %q: %s", kind, v.Kind, v.Message)
	}
	return v
}

func TestScoreboardCleanGrantFlow(t *testing.T) {
	sb := newTestSB()
	// Two shared readers of the init value, then both surrender and a
	// writer takes Trunk: all legal.
	sb.OnGrant(10, 0, 0x1000, tilelink.CapToB, tilelink.CapToB, 0x11)
	sb.OnGrant(12, 1, 0x1000, tilelink.CapToB, tilelink.CapToB, 0x11)
	sb.OnSurrender(20, 0, 0x1000, tilelink.PermNone, false, 0)
	sb.OnSurrender(21, 1, 0x1000, tilelink.PermNone, false, 0)
	sb.OnGrant(30, 2, 0x1000, tilelink.CapToT, tilelink.CapToT, 0x11)
	sb.OnWrite(31, 2, 0x1000, 0xAA)
	if v := sb.Violation(); v != nil {
		t.Fatalf("legal flow flagged: %s", v.Message)
	}
}

func TestScoreboardTwoTrunk(t *testing.T) {
	sb := newTestSB()
	sb.OnGrant(10, 0, 0x1000, tilelink.CapToT, tilelink.CapToT, 0x11)
	sb.OnGrant(11, 1, 0x1000, tilelink.CapToT, tilelink.CapToT, 0x11)
	v := wantViolation(t, sb, "two-trunk")
	if v.Agent != 1 || v.Addr != 0x1000 {
		t.Errorf("violation attribution wrong: agent=%d addr=%#x", v.Agent, v.Addr)
	}
}

func TestScoreboardTrunkExcludes(t *testing.T) {
	sb := newTestSB()
	sb.OnGrant(10, 0, 0x1000, tilelink.CapToT, tilelink.CapToT, 0x11)
	sb.OnGrant(11, 1, 0x1000, tilelink.CapToB, tilelink.CapToB, 0x11)
	wantViolation(t, sb, "trunk-excludes")
}

func TestScoreboardTrunkHandoffIsLegal(t *testing.T) {
	sb := newTestSB()
	sb.OnGrant(10, 0, 0x1000, tilelink.CapToT, tilelink.CapToT, 0x11)
	sb.OnWrite(11, 0, 0x1000, 0xAA)
	// Probe extraction at issue time, then the other agent's grant: the
	// downgrade-at-send / upgrade-at-receive discipline keeps the views
	// disjoint even though the messages overlap in flight.
	sb.OnSurrender(20, 0, 0x1000, tilelink.PermNone, true, 0xAA)
	sb.OnGrant(25, 1, 0x1000, tilelink.CapToT, tilelink.CapToT, 0xAA)
	if v := sb.Violation(); v != nil {
		t.Fatalf("legal trunk handoff flagged: %s", v.Message)
	}
}

func TestScoreboardValuePruneAtSurrender(t *testing.T) {
	sb := newTestSB()
	sb.OnGrant(10, 0, 0x1000, tilelink.CapToT, tilelink.CapToT, 0x11)
	sb.OnWrite(11, 0, 0x1000, 0xAA)
	sb.OnWrite(12, 0, 0x1000, 0xBB)
	// Surrendering dirty data is an ordering point: 0xBB becomes the only
	// permissible value; the stale 0x11 and intermediate 0xAA are gone.
	sb.OnSurrender(20, 0, 0x1000, tilelink.PermNone, true, 0xBB)
	sb.OnGrant(30, 1, 0x1000, tilelink.CapToB, tilelink.CapToB, 0x11)
	v := wantViolation(t, sb, "value")
	if len(v.Permissible) != 1 || v.Permissible[0] != 0xBB {
		t.Errorf("permissible set not pruned to the surrendered value: %v", v.Permissible)
	}
}

func TestScoreboardStaleIntermediateValue(t *testing.T) {
	sb := newTestSB()
	sb.OnGrant(10, 0, 0x1000, tilelink.CapToT, tilelink.CapToT, 0x11)
	sb.OnWrite(11, 0, 0x1000, 0xAA)
	sb.OnWrite(12, 0, 0x1000, 0xBB)
	sb.OnSurrender(20, 0, 0x1000, tilelink.PermNone, true, 0xBB)
	sb.OnGrant(30, 1, 0x1000, tilelink.CapToB, tilelink.CapToB, 0xAA)
	wantViolation(t, sb, "value")
}

func TestScoreboardWriteWithoutTrunk(t *testing.T) {
	sb := newTestSB()
	sb.OnGrant(10, 0, 0x1000, tilelink.CapToB, tilelink.CapToB, 0x11)
	sb.OnWrite(11, 0, 0x1000, 0xAA)
	wantViolation(t, sb, "write-without-trunk")
}

func TestScoreboardGrantCapMismatch(t *testing.T) {
	sb := newTestSB()
	// Agent asked NtoB (mandated cap toB) but was granted toT.
	sb.OnGrant(10, 0, 0x1000, tilelink.CapToT, tilelink.CapToB, 0x11)
	wantViolation(t, sb, "grant-cap")
}

func TestScoreboardUnexpectedGrant(t *testing.T) {
	sb := newTestSB()
	sb.OnUnexpectedGrant(10, 0, 0x1000, tilelink.OpGrantData)
	wantViolation(t, sb, "unexpected-grant")
}

func TestScoreboardDurability(t *testing.T) {
	sb := newTestSB()
	sb.OnGrant(10, 0, 0x1000, tilelink.CapToT, tilelink.CapToT, 0x11)
	sb.OnWrite(11, 0, 0x1000, 0xAA)
	sb.OnSurrender(20, 0, 0x1000, tilelink.PermNone, true, 0xAA)
	sb.OnFlushIssue(20, 0, 0x1000)
	// The RootReleaseAck arrives but DRAM still holds the init value: the
	// writeback was lost.
	sb.CheckDurable(30, 0, 0x1000, 0x11)
	wantViolation(t, sb, "durability")
}

func TestScoreboardDurabilityDelayedAckSeesNewerPush(t *testing.T) {
	sb := newTestSB()
	// Agent 0 flushes 0xAA; while its ack crawls back on a jittered D
	// channel, agent 1 writes and surrenders 0xBB, which reaches DRAM via a
	// second flush. The late ack observing 0xBB is legal — it is a newer
	// push — but an ack observing the pre-flush init value is not.
	sb.OnGrant(10, 0, 0x1000, tilelink.CapToT, tilelink.CapToT, 0x11)
	sb.OnWrite(11, 0, 0x1000, 0xAA)
	sb.OnSurrender(20, 0, 0x1000, tilelink.PermNone, true, 0xAA)
	sb.OnFlushIssue(20, 0, 0x1000)
	sb.OnGrant(30, 1, 0x1000, tilelink.CapToT, tilelink.CapToT, 0xAA)
	sb.OnWrite(31, 1, 0x1000, 0xBB)
	sb.OnSurrender(40, 1, 0x1000, tilelink.PermNone, true, 0xBB)
	sb.CheckDurable(90, 0, 0x1000, 0xBB)
	if v := sb.Violation(); v != nil {
		t.Fatalf("late ack observing a newer push flagged: %s", v.Message)
	}
}

func TestScoreboardDurabilityDatalessFlushAcceptsOlderPush(t *testing.T) {
	sb := newTestSB()
	// A data-less flush issued before any push promises nothing newer than
	// the reset value: DRAM still holding init at ack time is legal even if
	// the permissible set has since been pruned past it.
	sb.OnFlushIssue(10, 0, 0x1000)
	sb.OnGrant(20, 1, 0x1000, tilelink.CapToT, tilelink.CapToT, 0x11)
	sb.OnWrite(21, 1, 0x1000, 0xCC)
	sb.OnSurrender(30, 1, 0x1000, tilelink.PermNone, true, 0xCC)
	sb.CheckDurable(90, 0, 0x1000, 0x11)
	if v := sb.Violation(); v != nil {
		t.Fatalf("data-less flush judged against later pushes: %s", v.Message)
	}
}

func TestScoreboardFinalValue(t *testing.T) {
	sb := newTestSB()
	sb.CheckFinal(100, 0x1040, 0x22)
	if sb.Violation() != nil {
		t.Fatal("resting init value flagged")
	}
	sb.CheckFinal(101, 0x1040, 0x99)
	wantViolation(t, sb, "final-value")
}

func TestScoreboardFailsFast(t *testing.T) {
	sb := newTestSB()
	sb.OnGrant(10, 0, 0x1000, tilelink.CapToT, tilelink.CapToT, 0x11)
	sb.OnGrant(11, 1, 0x1000, tilelink.CapToT, tilelink.CapToT, 0x11)
	first := sb.Violation()
	// Later events must not replace the first violation.
	sb.OnGrant(12, 2, 0x1000, tilelink.CapToT, tilelink.CapToT, 0x99)
	if sb.Violation() != first {
		t.Fatal("first violation was replaced")
	}
}

func TestScoreboardAddressesIndependent(t *testing.T) {
	sb := newTestSB()
	sb.OnGrant(10, 0, 0x1000, tilelink.CapToT, tilelink.CapToT, 0x11)
	sb.OnGrant(11, 1, 0x1040, tilelink.CapToT, tilelink.CapToT, 0x22)
	if v := sb.Violation(); v != nil {
		t.Fatalf("trunks on different addresses flagged: %s", v.Message)
	}
}
