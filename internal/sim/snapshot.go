package sim

import (
	"fmt"
	"strings"

	"skipit/internal/metrics"
)

// Snapshot captures every instrument in the SoC-wide registry at the current
// cycle and enriches it with aggregates and derived metrics:
//
//   - per-instance counters keep their registry keys ("l1[0].writebacks");
//   - instance-indexed counters are additionally summed into an aggregate
//     key with the index stripped ("l1.writebacks" = Σᵢ "l1[i].writebacks"),
//     so component totals can be read without knowing the core count;
//   - Derived holds ratios the paper's evaluation reports directly: the
//     Skip It elimination rate (§6), L1 hit rates, and DRAM write
//     amplification;
//   - Series carries the sampler's time series when sampling is enabled.
func (s *System) Snapshot() metrics.Snapshot {
	snap := s.reg.Snapshot(s.now)

	// Two-phase so the ranged map is never written mid-iteration: entries
	// added during a range may or may not be visited in that same loop, so
	// the single-pass version's output depended on map iteration order.
	agg := make(map[string]uint64)
	for key, v := range snap.Counters {
		if a, ok := aggregateKey(key); ok {
			agg[a] += v
		}
	}
	for a, v := range agg {
		snap.Counters[a] += v
	}

	c := snap.Counters
	ratio := func(num, den uint64) (float64, bool) {
		if den == 0 {
			return 0, false
		}
		return float64(num) / float64(den), true
	}
	if r, ok := ratio(c["flush.skip_dropped"], c["flush.offered"]); ok {
		snap.Derived["skip_rate"] = r
	}
	if r, ok := ratio(c["flush.skip_dropped"], c["flush.skip_dropped"]+c["flush.data_writebacks"]); ok {
		snap.Derived["writebacks_eliminated_pct"] = 100 * r
	}
	if r, ok := ratio(c["mem.writes"], c["l1.writebacks"]+c["flush.data_writebacks"]); ok {
		snap.Derived["dram_write_amplification"] = r
	}
	if r, ok := ratio(c["l1.load_hits"], c["l1.loads"]); ok {
		snap.Derived["l1_load_hit_rate"] = r
	}
	if r, ok := ratio(c["l1.store_hits"], c["l1.stores"]); ok {
		snap.Derived["l1_store_hit_rate"] = r
	}

	// Host-throughput view of the run (see fastforward.go and linepool):
	// what fraction of simulated cycles the next-event clock skipped, how
	// often the line pool served a buffer without allocating, and — when the
	// system has run — simulated cycles per host second. The last one is
	// host-dependent by nature; it lives only in snapshots and metrics
	// sidecars, never in the sweep result store.
	if r, ok := ratio(c["sim.skipped_cycles"], uint64(s.now)); ok && s.now > 0 {
		snap.Derived["ff_skipped_cycle_ratio"] = r
	}
	if r, ok := ratio(c["pool.hits"], c["pool.hits"]+c["pool.misses"]); ok {
		snap.Derived["pool_hit_rate"] = r
	}
	if s.hostNanos > 0 && s.now > 0 {
		snap.Derived["host_sim_cycles_per_sec"] = float64(s.now) / (float64(s.hostNanos) / 1e9)
	}
	if s.par != nil {
		// Per-shard host throughput from the engine's sampled window timing
		// (shard 0 is the hub). Host-dependent like host_sim_cycles_per_sec:
		// snapshot-only, never stored in sweep results.
		if sc := s.par.engine.SampledCycles(); sc > 0 {
			for i, ns := range s.par.engine.ShardNanos() {
				if ns > 0 {
					key := fmt.Sprintf("pdes.shard[%d].host_sim_cycles_per_sec", i)
					snap.Derived[key] = float64(sc) / (float64(ns) / 1e9)
				}
			}
		}
	}

	if s.sampler != nil {
		snap.Series = s.sampler.Snapshots()
	}
	return snap
}

// aggregateKey maps an instance-indexed counter key ("flush[2].offered") to
// its component aggregate ("flush.offered"). Keys without an instance index
// report ok=false.
func aggregateKey(key string) (string, bool) {
	open := strings.IndexByte(key, '[')
	if open < 0 {
		return "", false
	}
	close := strings.IndexByte(key[open:], ']')
	if close < 0 {
		return "", false
	}
	return key[:open] + key[open+close+1:], true
}
