// Package detflow implements the interprocedural half of the determinism
// contract: whole-program taint tracking from nondeterminism sources to the
// simulator packages, across function and package boundaries.
//
// The determinism analyzer is syntactic and per-function — it rejects a
// wall-clock read *written inside* a simulator package, but a helper two
// calls away in a service-tier package (where clocks are legal) that leaks
// host time back into `internal/sim` passes it silently. detflow closes that
// gap with bottom-up function summaries:
//
//  1. Every function anywhere in the program whose body contains an unwaived
//     nondeterminism source — a wall-clock read, a global math/rand call, a
//     goroutine launch (outside //skipit:parallel-scheduler waivers and
//     _test.go files), or an order-sensitive map range — is tainted.
//  2. Taint propagates bottom-up over the static call graph
//     (internal/analysis/callsum): a function that calls a tainted function
//     is tainted. Across package boundaries the taint travels as a Tainted
//     object fact carrying the shortest witness call chain down to the
//     source, so a diagnostic three packages away can still name the exact
//     time.Now that caused it.
//  3. Findings: a call into a tainted function from (a) a package in the
//     determinism analyzer's simulator scope (same -pkgs/-service lists,
//     service exclusion wins), or (b) a //skipit:hotpath function in any
//     package. The diagnostic prints the witness chain.
//
// Sources whose lines carry a //skipit:ignore determinism or
// //skipit:ignore detflow waiver do not taint: the human already certified
// the value never reaches simulated state (the pdes engine's sampled shard
// timers are the canonical case). Sources in _test.go files do not taint
// either — test compilation units cannot be linked into the simulator.
//
// Soundness limits (shared with every callsum consumer): calls through
// interfaces and function values do not resolve, so taint does not flow
// through them. The runtime golden-model and replay gates remain the
// backstop for those paths.
package detflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
	"skipit/internal/analysis/callsum"
	"skipit/internal/analysis/determinism"
	"skipit/internal/analysis/hotalloc"
	"skipit/internal/analysis/suppress"
)

var Analyzer = &analysis.Analyzer{
	Name: "detflow",
	Doc: "interprocedural determinism taint: report simulator/hotpath calls that transitively reach wall clocks, global rand, goroutines, or map-order folds\n\n" +
		"Function summaries travel as package facts, so the witness chain crosses package boundaries.",
	Requires:  []*analysis.Analyzer{callsum.Analyzer},
	FactTypes: []analysis.Fact{new(Tainted)},
	Run:       run,
}

// chainMax bounds witness chains embedded in facts and diagnostics; deeper
// chains are elided in the middle (the first hops and the source matter).
const chainMax = 8

// Tainted marks a function that transitively reaches a nondeterminism
// source. Chain is the witness call path, outermost callee first, ending at
// the source description (e.g. "time.Now at coord.go:117").
type Tainted struct {
	Chain []string
}

// AFact marks Tainted as an analysis fact.
func (*Tainted) AFact() {}

func (t *Tainted) String() string { return "tainted(" + strings.Join(t.Chain, " -> ") + ")" }

func run(pass *analysis.Pass) (interface{}, error) {
	suppress.Apply(pass)
	sums := pass.ResultOf[callsum.Analyzer].(*callsum.Summaries)

	detWaived := suppress.CoveredLines(pass, determinism.Analyzer.Name)
	flowWaived := suppress.CoveredLines(pass, pass.Analyzer.Name)
	schedWaived := determinism.SchedulerWaived(pass)
	waived := func(pos token.Pos) bool { return detWaived(pos) || flowWaived(pos) }

	// Seed: functions whose own bodies contain an unwaived source.
	tainted := make(map[*callsum.FuncInfo]*Tainted)
	for _, fi := range sums.Funcs {
		if fi.TestFile || fi.Decl.Body == nil {
			continue
		}
		if src := directSource(pass, fi, waived, schedWaived); src != "" {
			tainted[fi] = &Tainted{Chain: []string{src}}
		}
	}

	// Propagate bottom-up to a fixpoint over the in-package call graph,
	// consulting imported facts at cross-package edges. Iterating the
	// summaries in source order keeps the chosen witness chains
	// deterministic.
	calleeTaint := func(fi *callsum.FuncInfo, c callsum.Call) *Tainted {
		if local, ok := sums.ByObj[c.Callee]; ok {
			return tainted[local]
		}
		var fact Tainted
		if pass.ImportObjectFact(c.Callee, &fact) {
			return &fact
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range sums.Funcs {
			if tainted[fi] != nil || fi.TestFile {
				continue
			}
			for _, c := range fi.Calls {
				ct := calleeTaint(fi, c)
				if ct == nil || waived(c.Pos) {
					continue
				}
				hop := fmt.Sprintf("%s (%s)", callsum.Name(c.Callee), callsum.ShortPos(pass.Fset, c.Pos))
				tainted[fi] = &Tainted{Chain: callsum.TrimChain(append([]string{hop}, ct.Chain...), chainMax)}
				changed = true
				break
			}
		}
	}

	for fi, t := range tainted {
		pass.ExportObjectFact(fi.Obj, t)
	}

	// Findings: calls into tainted functions from simulator-scope packages
	// or //skipit:hotpath functions.
	simScope := determinism.InScope(pass.Pkg.Path())
	for _, fi := range sums.Funcs {
		if fi.TestFile {
			continue
		}
		hot := hotalloc.IsHotpath(fi.Decl)
		if !simScope && !hot {
			continue
		}
		for _, c := range fi.Calls {
			ct := calleeTaint(fi, c)
			if ct == nil {
				continue
			}
			where := "a simulator package"
			if !simScope {
				where = fmt.Sprintf("hot path %s", fi.Decl.Name.Name)
			}
			pass.Report(analysis.Diagnostic{
				Pos: c.Pos,
				Message: fmt.Sprintf("call into nondeterministic code from %s: %s -> %s",
					where, callsum.Name(c.Callee), strings.Join(ct.Chain, " -> ")),
			})
		}
	}
	return nil, nil
}

// directSource scans one function body for an unwaived nondeterminism
// source, returning its chain entry ("time.Now at engine.go:267") or "".
func directSource(pass *analysis.Pass, fi *callsum.FuncInfo, waived, schedWaived func(token.Pos) bool) string {
	var src string
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if src != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if desc, ok := determinism.NondetCall(pass.TypesInfo, n); ok && !waived(n.Pos()) {
				src = fmt.Sprintf("%s at %s", desc, callsum.ShortPos(pass.Fset, n.Pos()))
			}
		case *ast.GoStmt:
			if !waived(n.Pos()) && !schedWaived(n.Pos()) {
				src = fmt.Sprintf("goroutine launch at %s", callsum.ShortPos(pass.Fset, n.Pos()))
			}
		case *ast.RangeStmt:
			determinism.MapRangeIssues(pass, n, func(pos token.Pos, what string) {
				if src == "" && !waived(pos) {
					src = fmt.Sprintf("order-sensitive map range at %s", callsum.ShortPos(pass.Fset, pos))
				}
			})
		}
		return true
	})
	return src
}
