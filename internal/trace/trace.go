// Package trace is the simulator's event-tracing facility: components emit
// typed events (flush-unit state transitions, cache misses, probes, grants,
// commits) to a Tracer, and tools render them as a timeline. Tracing is
// opt-in and nil-safe: a nil Tracer costs one branch per would-be event, so
// benchmarks run untraced at full speed.
package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// Event is one timestamped simulator occurrence.
type Event struct {
	Cycle  int64
	Source string // component instance, e.g. "l1[0]", "flush[1]", "l2"
	Kind   string // event class, e.g. "cbo-offer", "fshr", "probe", "grant"
	Addr   uint64 // line address; meaningful only when HasAddr is set
	// HasAddr distinguishes an event about line 0 — a perfectly valid
	// address — from an event with no address at all.
	HasAddr bool
	// Txn is the coherence-transaction id the event belongs to; 0 means the
	// event is not part of any transaction. Renderers that understand
	// causality (ChromeTracer) stitch same-Txn events into one span.
	Txn    uint64
	Detail string // free-form specifics
}

func (e Event) String() string {
	if e.HasAddr {
		return fmt.Sprintf("%8d  %-8s %-12s %#10x  %s", e.Cycle, e.Source, e.Kind, e.Addr, e.Detail)
	}
	return fmt.Sprintf("%8d  %-8s %-12s %10s  %s", e.Cycle, e.Source, e.Kind, "", e.Detail)
}

// Tracer receives events. Implementations must tolerate concurrent Emit
// calls only if they are shared across goroutines; the cycle simulator is
// single-goroutine, but the Ring is safe either way.
type Tracer interface {
	Emit(Event)
}

// Ring is a bounded in-memory tracer keeping the most recent events.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	count int
	total uint64
}

// NewRing returns a tracer retaining the last n events.
func NewRing(n int) *Ring {
	if n <= 0 {
		panic("trace: ring size must be positive")
	}
	return &Ring{buf: make([]Event, n)}
}

// Emit records an event, evicting the oldest when full.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
	r.total++
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.count)
	start := r.next - r.count
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.count; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Total returns the number of events ever emitted (including evicted ones).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Filter returns the retained events whose Kind or Source contains the
// given substring.
func (r *Ring) Filter(substr string) []Event {
	var out []Event
	for _, e := range r.Events() {
		if strings.Contains(e.Kind, substr) || strings.Contains(e.Source, substr) {
			out = append(out, e)
		}
	}
	return out
}

// ForAddr returns the retained events for one line address — the life story
// of a cache line. Events without an address never match, even for line 0.
func (r *Ring) ForAddr(addr uint64) []Event {
	line := addr &^ 63
	var out []Event
	for _, e := range r.Events() {
		if e.HasAddr && e.Addr&^63 == line {
			out = append(out, e)
		}
	}
	return out
}

// Dump writes the retained events to w, oldest first.
func (r *Ring) Dump(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}

// Writer streams every event to an io.Writer as it is emitted.
type Writer struct {
	mu sync.Mutex
	W  io.Writer
}

// NewWriter returns a streaming tracer.
func NewWriter(w io.Writer) *Writer { return &Writer{W: w} }

// Emit writes the event immediately.
func (t *Writer) Emit(e Event) {
	t.mu.Lock()
	fmt.Fprintln(t.W, e)
	t.mu.Unlock()
}

// Multi fans events out to several tracers.
type Multi []Tracer

// Emit forwards to every tracer.
func (m Multi) Emit(e Event) {
	for _, t := range m {
		t.Emit(e)
	}
}

// Emit is the nil-safe helper components call for events about a cache
// line: a nil tracer is a no-op.
func Emit(t Tracer, cycle int64, source, kind string, addr uint64, detail string) {
	if t == nil {
		return
	}
	t.Emit(Event{Cycle: cycle, Source: source, Kind: kind, Addr: addr, HasAddr: true, Detail: detail})
}

// EmitGlobal is Emit for events that concern no particular address (drains,
// mode switches, barrier completions).
func EmitGlobal(t Tracer, cycle int64, source, kind, detail string) {
	if t == nil {
		return
	}
	t.Emit(Event{Cycle: cycle, Source: source, Kind: kind, Detail: detail})
}

// EmitTxn is Emit for events that belong to a coherence transaction: the
// txn id lets renderers reconstruct the causal chain (miss → Acquire →
// Grant → GrantAck; Release → ReleaseAck; CBO → FSHR → RootRelease → ack)
// across components. txn 0 degrades to a plain addressed event.
func EmitTxn(t Tracer, cycle int64, source, kind string, txn, addr uint64, detail string) {
	if t == nil {
		return
	}
	t.Emit(Event{Cycle: cycle, Source: source, Kind: kind, Addr: addr, HasAddr: true, Txn: txn, Detail: detail})
}

// TxnSeq hands out deterministic coherence-transaction ids. Exactly one
// sequence exists per simulated system (sim.New creates it and injects it
// into every component config; standalone component constructors fall back
// to a private one), so ids are globally unique within a run and assignment
// order follows the deterministic Tick order. Ids start at 1; 0 means "no
// transaction". Ids are assigned unconditionally — whether or not tracing
// or recording is enabled — so enabling observability can never change
// simulation behavior, and ids are identical across fast-forward on/off.
//
// Under parallel simulation each shard owns a strided sequence (see
// NewStridedTxnSeq): shard i mints i+1, i+1+N, i+1+2N, ... so ids stay
// globally unique and per-shard deterministic without any cross-shard
// synchronization. They intentionally differ from serial ids (interleaving
// across shards is host-schedule-free but not serial-order); per-shard id
// streams are identical for any worker count.
type TxnSeq struct {
	next   uint64
	stride uint64 // 0 behaves as 1 (the serial zero-value sequence)
}

// NewStridedTxnSeq returns a sequence minting first, first+stride,
// first+stride*2, ... The parallel scheduler gives shard i of N the
// sequence (i+1, N) so shards mint from disjoint residue classes.
func NewStridedTxnSeq(first, stride uint64) *TxnSeq {
	if first == 0 || stride == 0 {
		panic("trace: strided txn sequence needs first >= 1 and stride >= 1")
	}
	return &TxnSeq{next: first - stride, stride: stride}
}

// Next returns the next transaction id. Nil-safe: a nil sequence returns 0.
//
//skipit:hotpath
func (s *TxnSeq) Next() uint64 {
	if s == nil {
		return 0
	}
	if s.stride == 0 {
		s.next++
		return s.next
	}
	s.next += s.stride
	return s.next
}
