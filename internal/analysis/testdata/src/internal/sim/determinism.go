// Package simfix is the determinism-analyzer fixture. Its import path ends
// in internal/sim, so the analyzer treats it as a simulator package.
package simfix

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"
)

// Wall-clock reads.
func wallClock() int64 {
	t0 := time.Now()                 // want `wall-clock read time\.Now`
	_ = time.Since(t0).Nanoseconds() // want `wall-clock read time\.Since`
	deadline := time.Unix(0, 0)      // ok: conversion, not a clock read
	return deadline.UnixNano()
}

// Global versus seeded rand.
func randomness(seed int64) int {
	n := rand.Intn(8)                     // want `global rand\.Intn`
	rand.Shuffle(n, func(i, j int) {})    // want `global rand\.Shuffle`
	rng := rand.New(rand.NewSource(seed)) // ok: explicitly seeded
	return rng.Intn(8)
}

// Goroutines.
func spawn(done chan struct{}) {
	go func() { close(done) }() // want `goroutine launched in a simulator package`
}

// Order-sensitive map iteration.
func mapOrder(m map[string]uint64, sink chan string, w *os.File) {
	// Writing to the map being ranged.
	for k, v := range m {
		m[k+"!"] = v // want `writing to the map being ranged over`
	}

	// Channel sends and printing follow visit order.
	for k := range m {
		sink <- k          // want `channel send inside a map range`
		fmt.Fprintln(w, k) // want `printing per map entry`
	}

	// Float accumulation is order-sensitive; integer sums are not.
	var fsum float64
	var isum uint64
	for _, v := range m {
		fsum += float64(v) // want `float accumulation across map entries`
		isum += v          // ok: integer addition is commutative
	}
	_, _ = fsum, isum

	// Appending in visit order without a sort leaks the order...
	var leaked []string
	for k := range m {
		leaked = append(leaked, k) // want `appending to an outer slice in map-visit order`
	}
	_ = leaked

	// ...but the collect-then-sort idiom is the approved pattern.
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
}
