package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasicProgram(t *testing.T) {
	src := `
# durability chain
sd 0x1000 42
cbo.clean 0x1000
fence
ld 0x1000        ; re-read
nop 3
cflush.d.l1 0x1000
cbo.flush 4096
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []Instr{
		{Op: OpStore, Addr: 0x1000, Data: 42},
		{Op: OpCboClean, Addr: 0x1000},
		{Op: OpFence},
		{Op: OpLoad, Addr: 0x1000},
		{Op: OpNop}, {Op: OpNop}, {Op: OpNop},
		{Op: OpCflushDL1, Addr: 0x1000},
		{Op: OpCboFlush, Addr: 4096},
	}
	if len(p.Instrs) != len(want) {
		t.Fatalf("parsed %d instrs, want %d", len(p.Instrs), len(want))
	}
	for i, w := range want {
		if p.Instrs[i] != w {
			t.Errorf("instr %d = %+v, want %+v", i, p.Instrs[i], w)
		}
	}
}

func TestParseAliases(t *testing.T) {
	p, err := Parse("store 8 1\nload 8\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Op != OpStore || p.Instrs[1].Op != OpLoad {
		t.Fatal("aliases not accepted")
	}
}

func TestParseErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		src  string
		line string
	}{
		{"sd 0x10\n", "line 1"},
		{"fence\nbogus 1\n", "line 2"},
		{"ld zzz\n", "line 1"},
		{"fence 3\n", "line 1"},
		{"nop 0\n", "line 1"},
		{"sd 0x10 1 2\n", "line 1"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.line) {
			t.Errorf("Parse(%q) error %q lacks %q", c.src, err, c.line)
		}
	}
}

func TestParseEmptyAndCommentsOnly(t *testing.T) {
	p, err := Parse("\n# nothing\n   ; also nothing\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 0 {
		t.Fatalf("parsed %d instrs from comments", p.Len())
	}
}

// Property: Format/Parse round-trips any builder-constructed program.
func TestFormatParseRoundTrip(t *testing.T) {
	f := func(ops []uint16) bool {
		b := NewBuilder()
		for _, op := range ops {
			addr := uint64(op) * 8
			switch op % 7 {
			case 0:
				b.Store(addr, uint64(op)+1)
			case 1:
				b.Load(addr)
			case 2:
				b.CboClean(addr)
			case 3:
				b.CboFlush(addr)
			case 4:
				b.CflushDL1(addr)
			case 5:
				b.Fence()
			case 6:
				b.Nop()
			}
		}
		p := b.Build()
		q, err := Parse(Format(p))
		if err != nil {
			return false
		}
		if len(q.Instrs) != len(p.Instrs) {
			return false
		}
		for i := range p.Instrs {
			if p.Instrs[i] != q.Instrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
