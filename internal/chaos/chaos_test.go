package chaos

import (
	"os"
	"reflect"
	"strings"
	"testing"

	"skipit/internal/isa"
	"skipit/internal/l1"
	"skipit/internal/sim"
)

func TestScheduleDeterminism(t *testing.T) {
	cfg := DefaultGenConfig(2)
	cfg.AddrPool = []uint64{0x1000, 0x2000}
	a := Generate(42, cfg)
	b := Generate(42, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
	c := Generate(43, cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	for i := 1; i < len(a.Faults); i++ {
		if a.Faults[i].Cycle < a.Faults[i-1].Cycle {
			t.Fatalf("schedule not sorted at %d: %v", i, a.Faults)
		}
	}
}

func TestRunDeterminism(t *testing.T) {
	// A clean case and a faulted case must both replay bit-identically:
	// same stats, same flip outcomes, same failure (or absence of one).
	for _, seed := range []int64{3, 7} {
		c := DefaultCase(seed, 2)
		f1, s1, in1 := Run(c)
		f2, s2, in2 := Run(c)
		if !reflect.DeepEqual(in1.Schedule, in2.Schedule) {
			t.Fatalf("seed %d: schedules differ", seed)
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("seed %d: stats differ:\n%+v\n%+v", seed, s1, s2)
		}
		if !reflect.DeepEqual(f1, f2) {
			t.Fatalf("seed %d: failures differ:\n%+v\n%+v", seed, f1, f2)
		}
	}
}

// hangInput builds the canonical deterministic hang: channel D (grants)
// stalled forever starves the first miss. The junk faults are noise the
// shrinker must strip.
func hangInput(junk bool) Input {
	p, err := isa.Parse("sd 0x1000 7\nld 0x2000\nnop 4\nsd 0x3000 9\nfence\n")
	if err != nil {
		panic(err)
	}
	faults := []Fault{
		{Cycle: 0, Kind: LinkStall, Core: 0, Channel: 3, Duration: 10_000_000},
	}
	if junk {
		faults = append(faults,
			Fault{Cycle: 5, Kind: LinkDelay, Core: 0, Channel: 0, Duration: 50, Extra: 3},
			Fault{Cycle: 9, Kind: L1Nack, Core: 0, Duration: 20},
			Fault{Cycle: 40, Kind: L2MSHRSqueeze, Duration: 60, Quota: 1},
			Fault{Cycle: 300, Kind: FSHRSqueeze, Core: 0, Duration: 80, Quota: 0},
		)
	}
	s := Schedule{Faults: faults}
	s.Normalize()
	return Input{
		Progs:         []*isa.Program{p},
		Schedule:      s,
		CycleLimit:    100_000,
		WatchdogLimit: 1_000,
	}
}

func TestHangDetection(t *testing.T) {
	fail, st := RunInput(hangInput(false))
	if fail == nil || fail.Kind != FailHang {
		t.Fatalf("want hang, got %+v", fail)
	}
	if fail.Report == nil || fail.Report.Reason != "no-progress" {
		t.Fatalf("hang without report: %+v", fail)
	}
	if st.WatchdogTrips != 1 {
		t.Fatalf("watchdog_trips = %d, want 1", st.WatchdogTrips)
	}
}

func TestShrinkReducesToMinimalRepro(t *testing.T) {
	in := hangInput(true)
	fail, _ := RunInput(in)
	if fail == nil || fail.Kind != FailHang {
		t.Fatalf("want hang, got %+v", fail)
	}
	shrunk, runs := Shrink(in, FailHang, ShrinkOpts{})
	if runs == 0 || runs > DefaultShrinkRuns {
		t.Fatalf("suspicious shrink run count %d", runs)
	}
	if got := len(shrunk.Schedule.Faults); got != 1 {
		t.Fatalf("schedule not minimal: %d faults: %v", got, shrunk.Schedule.Faults)
	}
	if shrunk.Schedule.Faults[0].Kind != LinkStall {
		t.Fatalf("wrong surviving fault: %v", shrunk.Schedule.Faults[0])
	}
	// The program must have lost the instructions irrelevant to the hang;
	// a single load suffices to starve on the stalled grant channel.
	if got := len(shrunk.Progs[0].Instrs); got >= len(in.Progs[0].Instrs) {
		t.Fatalf("program not shrunk: still %d instrs", got)
	}
	fail2, _ := RunInput(shrunk)
	if fail2 == nil || fail2.Kind != FailHang {
		t.Fatalf("shrunk input no longer hangs: %+v", fail2)
	}
	// Shrinking must be deterministic too.
	shrunk2, _ := Shrink(hangInput(true), FailHang, ShrinkOpts{})
	if !reflect.DeepEqual(shrunk.Schedule, shrunk2.Schedule) {
		t.Fatal("shrink not deterministic")
	}
}

func TestReproRoundTrip(t *testing.T) {
	in := hangInput(true)
	fail, _ := RunInput(in)
	r := NewRepro(99, in, fail)
	data, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRepro(data)
	if err != nil {
		t.Fatal(err)
	}
	in2, err := back.Input()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in.Progs[0].Instrs, in2.Progs[0].Instrs) {
		t.Fatal("program did not survive the text round-trip")
	}
	fail2, _ := RunInput(in2)
	if !reflect.DeepEqual(fail, fail2) {
		t.Fatalf("replay diverged:\n%+v\n%+v", fail, fail2)
	}
}

// TestCommittedHangArtifactReplays pins the committed known-bad schedule: the
// replay must reproduce the recorded failure kind at the recorded cycle,
// bit-identically, on every machine.
func TestCommittedHangArtifactReplays(t *testing.T) {
	data, err := os.ReadFile("testdata/hang.chaos.json")
	if err != nil {
		t.Fatal(err)
	}
	r, err := DecodeRepro(data)
	if err != nil {
		t.Fatal(err)
	}
	if r.Failure == nil || r.Failure.Kind != FailHang {
		t.Fatalf("artifact should record a hang: %+v", r.Failure)
	}
	in, err := r.Input()
	if err != nil {
		t.Fatal(err)
	}
	fail, _ := RunInput(in)
	if fail == nil {
		t.Fatal("replay ran clean")
	}
	if fail.Kind != r.Failure.Kind || fail.Cycle != r.Failure.Cycle {
		t.Fatalf("replay diverged: got %s@%d, recorded %s@%d",
			fail.Kind, fail.Cycle, r.Failure.Kind, r.Failure.Cycle)
	}
}

// TestCommittedArtifactsReplayEitherClock replays every committed .chaos.json
// artifact twice — fast-forward clock on and off — and requires both runs to
// produce the recorded verdict and identical stats. This is the end-to-end
// guarantee that the next-event clock skips only no-op cycles: hang reports
// (trip cycle, window) and timeout cycles must not move by a single cycle.
func TestCommittedArtifactsReplayEitherClock(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	artifacts := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".chaos.json") {
			continue
		}
		artifacts++
		t.Run(e.Name(), func(t *testing.T) {
			data, err := os.ReadFile("testdata/" + e.Name())
			if err != nil {
				t.Fatal(err)
			}
			r, err := DecodeRepro(data)
			if err != nil {
				t.Fatal(err)
			}
			if r.Failure == nil {
				t.Fatal("artifact records no failure")
			}
			in, err := r.Input()
			if err != nil {
				t.Fatal(err)
			}
			failFF, stFF := runInput(in, true, 0)
			failSlow, stSlow := runInput(in, false, 0)
			for _, got := range []*Failure{failFF, failSlow} {
				if got == nil {
					t.Fatal("replay ran clean")
				}
				if got.Kind != r.Failure.Kind || got.Cycle != r.Failure.Cycle {
					t.Fatalf("replay diverged: got %s@%d, recorded %s@%d",
						got.Kind, got.Cycle, r.Failure.Kind, r.Failure.Cycle)
				}
			}
			if !reflect.DeepEqual(failFF, failSlow) {
				t.Fatalf("fast-forward changed the verdict:\nff:   %+v\nslow: %+v",
					failFF, failSlow)
			}
			if r.Failure.Report != nil {
				if failFF.Report == nil ||
					failFF.Report.Cycle != r.Failure.Report.Cycle ||
					failFF.Report.Window != r.Failure.Report.Window {
					t.Fatalf("hang report diverged:\ngot      %+v\nrecorded %+v",
						failFF.Report, r.Failure.Report)
				}
			}
			if !reflect.DeepEqual(stFF, stSlow) {
				t.Fatalf("fast-forward changed the stats:\nff:   %+v\nslow: %+v",
					stFF, stSlow)
			}
		})
	}
	if artifacts < 2 {
		t.Fatalf("expected at least 2 committed artifacts, found %d", artifacts)
	}
}

// TestFuzzEquivalenceEitherClock runs a handful of full fuzzer cases with the
// fast-forward clock on and off; verdicts, cycle counts and every chaos stat
// must match bit for bit.
func TestFuzzEquivalenceEitherClock(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		in := BuildInput(DefaultCase(seed, 2))
		failFF, stFF := runInput(in, true, 0)
		failSlow, stSlow := runInput(in, false, 0)
		if !reflect.DeepEqual(failFF, failSlow) {
			t.Fatalf("seed %d: verdicts differ:\nff:   %+v\nslow: %+v", seed, failFF, failSlow)
		}
		if !reflect.DeepEqual(stFF, stSlow) {
			t.Fatalf("seed %d: stats differ:\nff:   %+v\nslow: %+v", seed, stFF, stSlow)
		}
	}
}

// TestBitFlipRecovery drives the ECC model end to end on a real system: a
// flip on a clean resident line is detected at the next access and healed
// through the refetch path, with the architectural value intact.
func TestBitFlipRecovery(t *testing.T) {
	s := sim.New(sim.DefaultConfig(1))
	// Make 0x1000 resident and clean: store, then CBO.CLEAN writes it back
	// without invalidating.
	if _, err := s.Run([]*isa.Program{
		isa.NewBuilder().Store(0x1000, 77).CboClean(0x1000).Fence().Build(),
	}, 10_000); err != nil {
		t.Fatal(err)
	}
	if out := s.L1s[0].InjectBitFlip(0x1000, 13); out != l1.FlipApplied {
		t.Fatalf("flip outcome %v, want applied", out)
	}
	if _, err := s.Run([]*isa.Program{
		isa.NewBuilder().Load(0x1000).Fence().Build(),
	}, 10_000); err != nil {
		t.Fatal(err)
	}
	if got := s.Cores[0].Timing(0).LoadValue; got != 77 {
		t.Fatalf("corruption leaked: loaded %d, want 77", got)
	}
	if got := s.Metrics().Counter("chaos", "refetch_recoveries").Value(); got != 1 {
		t.Fatalf("refetch_recoveries = %d, want 1", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBitFlipDirtyUnrecoverable: a flip aimed at a dirty line must be flagged
// and not applied — healing it silently would hide real data loss.
func TestBitFlipDirtyUnrecoverable(t *testing.T) {
	s := sim.New(sim.DefaultConfig(1))
	if _, err := s.Run([]*isa.Program{
		isa.NewBuilder().Store(0x1000, 55).Fence().Build(),
	}, 10_000); err != nil {
		t.Fatal(err)
	}
	if out := s.L1s[0].InjectBitFlip(0x1000, 13); out != l1.FlipDirtyUnrecoverable {
		t.Fatalf("flip outcome %v, want dirty-unrecoverable", out)
	}
	if got := s.Metrics().Counter("chaos", "ecc_dirty_unrecoverable").Value(); got != 1 {
		t.Fatalf("ecc_dirty_unrecoverable = %d, want 1", got)
	}
	if _, err := s.Run([]*isa.Program{
		isa.NewBuilder().Load(0x1000).Fence().Build(),
	}, 10_000); err != nil {
		t.Fatal(err)
	}
	if got := s.Cores[0].Timing(0).LoadValue; got != 55 {
		t.Fatalf("dirty line was corrupted: loaded %d, want 55", got)
	}
}

// TestChaosCountersInSnapshot: the chaos and watchdog instruments must appear
// in every snapshot, armed or not, so dashboards see explicit zeros.
func TestChaosCountersInSnapshot(t *testing.T) {
	s := sim.New(sim.DefaultConfig(1))
	snap := s.Metrics().Snapshot(0)
	for _, key := range []string{
		"chaos.faults_injected", "chaos.ecc_flips",
		"chaos.ecc_dirty_unrecoverable", "chaos.refetch_recoveries",
		"sim.watchdog_trips",
	} {
		if _, ok := snap.Counters[key]; !ok {
			t.Errorf("snapshot missing %q", key)
		}
	}
}

// TestFuzzSweepClean runs a deterministic mini-sweep: every seed must survive
// with no unexplained invariant violations, hangs, or corruption. (CI runs
// the same sweep wider via cmd/skipit-chaos.)
func TestFuzzSweepClean(t *testing.T) {
	runs := int64(40)
	if testing.Short() {
		runs = 10
	}
	var injected uint64
	for seed := int64(1); seed <= runs; seed++ {
		fail, st, _ := Run(DefaultCase(seed, 2))
		if fail != nil {
			t.Fatalf("seed %d: %s: %s", seed, fail.Kind, fail.Message)
		}
		injected += st.FaultsInjected
	}
	if injected == 0 {
		t.Fatal("sweep injected no faults; schedule generation is broken")
	}
}
