// Package stats provides the small set of summary statistics the paper's
// evaluation reports: medians with standard deviations over repeated
// microbenchmark runs (§7.1 reports the median of 50 repetitions), plus
// means and speedups for the throughput studies.
package stats

import (
	"math"
	"sort"
)

// Median returns the median of xs; it panics on an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: median of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Mean returns the arithmetic mean of xs; it panics on an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: mean of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile of xs (0 <= p <= 100) using linear
// interpolation between closest ranks (the same convention as numpy's
// default): the k-th sorted element sits at percentile 100*k/(n-1), and
// values in between are interpolated. Percentile(xs, 50) equals Median(xs).
// It panics on an empty slice or a p outside [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic("stats: percentile out of [0, 100]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Sigma returns the population standard deviation of xs — the variance is
// normalized by n, not n-1. The paper's evaluation reports dispersion over
// a fixed set of 50 repetitions, which are treated as the whole population
// rather than a sample of a larger one; callers wanting the unbiased sample
// deviation (Bessel's correction, n-1) must rescale by
// Sqrt(n/(n-1)) themselves.
func Sigma(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: sigma of empty slice")
	}
	m := Mean(xs)
	v := 0.0
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	return math.Sqrt(v / float64(len(xs)))
}

// Min returns the smallest element of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// MedianSigma returns Median(xs) and Sigma(xs) in one call — the pair every
// repeated microbenchmark point reports (§7.1); it panics on an empty slice.
func MedianSigma(xs []float64) (median, sigma float64) {
	return Median(xs), Sigma(xs)
}

// PctDelta returns the signed percentage change from base to cur:
// positive when cur exceeds base. A zero base maps to 0 when cur is also
// zero and +Inf otherwise, so a regression against a degenerate baseline is
// never silently hidden.
func PctDelta(base, cur float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (cur - base) / base * 100
}

// Speedup returns base/opt, the conventional "x times faster" ratio.
func Speedup(base, opt float64) float64 {
	if opt == 0 {
		return math.Inf(1)
	}
	return base / opt
}
