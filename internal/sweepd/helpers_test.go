package sweepd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// coordTransport routes Calls through the real HTTP handler stack fully in
// process: the request and response take the same JSON round trip they take
// over a socket, without the socket.
type coordTransport struct {
	c *Coordinator
}

func (t *coordTransport) Call(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r := httptest.NewRequest("POST", path, bytes.NewReader(body))
	w := httptest.NewRecorder()
	Handler(t.c).ServeHTTP(w, r)
	if w.Code != 200 {
		return fmt.Errorf("HTTP %d: %s", w.Code, bytes.TrimSpace(w.Body.Bytes()))
	}
	if resp == nil {
		return nil
	}
	return json.Unmarshal(w.Body.Bytes(), resp)
}

// switchTransport lets a test repoint every client at a new coordinator
// mid-run — the restart lever of the e2e harness.
type switchTransport struct {
	mu    sync.Mutex
	inner Transport
}

func (s *switchTransport) set(t Transport) {
	s.mu.Lock()
	s.inner = t
	s.mu.Unlock()
}

func (s *switchTransport) Call(path string, req, resp any) error {
	s.mu.Lock()
	inner := s.inner
	s.mu.Unlock()
	return inner.Call(path, req, resp)
}

// waitFor polls cond until true or the deadline, failing the test on timeout.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %s waiting for %s", timeout, what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
