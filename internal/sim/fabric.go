package sim

import (
	"fmt"
	"runtime/debug"

	"skipit/internal/l2"
	"skipit/internal/mem"
	"skipit/internal/metrics"
	"skipit/internal/tilelink"
)

// FabricClient is a protocol-level TileLink master driven by a Fabric: it
// owns the client side of one ClientPort and is ticked once per cycle after
// the L2. The tlctest agents implement it. NextEvent follows the same
// conservative fast-forward contract as every other component (see
// fastforward.go); Done reports that the client has no further stimulus of
// its own — it may still answer probes.
type FabricClient interface {
	Tick(now int64)
	NextEvent(now int64) int64
	Done() bool
}

// FabricConfig assembles a core-less memory system: TileLink client ports
// wired straight into the L2, which fronts main memory. It is the harness
// top for protocol-level agent testing — no boom cores, no L1s.
type FabricConfig struct {
	NumClients  int
	BeatBytes   uint64 // system-bus beat width; 0 means 16 (§3.3)
	LinkLatency int    // wire cycles per channel
	L2          l2.Config
	Mem         mem.Config
	// Metrics is shared by the L2, the controller and the harness. Nil gets
	// a private registry.
	Metrics *metrics.Registry
}

// DefaultFabricConfig returns a deliberately tiny memory system for agent
// testing: a 4-set, 2-way L2 so that a handful of addresses forces
// evictions, probes and way-arbitration races that a full-size cache would
// spread over thousands of sets.
func DefaultFabricConfig(numClients int) FabricConfig {
	return FabricConfig{
		NumClients:  numClients,
		BeatBytes:   16,
		LinkLatency: 1,
		L2: l2.Config{
			Sets:            4,
			Ways:            2,
			LineBytes:       64,
			NumClients:      numClients,
			NumMSHRs:        4,
			ListBufferDepth: 8,
			TagLatency:      8,
		},
		Mem: mem.DefaultConfig(),
	}
}

// Fabric is the assembled core-less system: ports, L2, memory and the
// attached clients, advanced in lockstep by Step. It mirrors System's tick
// order (memory, then L2, then the requesters) and carries the same
// forward-progress watchdog and next-event fast-forward clock, so chaos
// schedules and hang reports behave identically under both harnesses.
type Fabric struct {
	Ports []*tilelink.ClientPort
	L2    *l2.Cache
	Mem   *mem.Memory

	clients []FabricClient
	reg     *metrics.Registry
	now     int64

	fastForward bool
	linkLatency int
	par         *fabRuntime

	wdLimit      int64
	wdLastSig    uint64
	wdLastChange int64

	ctrWatchdogTrips *metrics.Counter
	ctrSkipped       *metrics.Counter
}

// NewFabric builds the port/L2/memory stack. Clients are attached afterwards
// with Attach, since they need the constructed ports.
func NewFabric(cfg FabricConfig) *Fabric {
	if cfg.NumClients < 1 {
		panic("sim: fabric needs at least one client")
	}
	if cfg.BeatBytes == 0 {
		cfg.BeatBytes = 16
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	cfg.L2.Metrics = reg
	cfg.Mem.Metrics = reg
	cfg.L2.NumClients = cfg.NumClients
	f := &Fabric{
		reg:         reg,
		fastForward: true,
		linkLatency: cfg.LinkLatency,
		// Fabric and System are alternative harnesses over disjoint
		// registries; they share these keys so sweep/report tooling stays
		// uniform. metricname reports the duplicate at the System-side
		// registration (sim.go), which carries the waiver.
		ctrWatchdogTrips: reg.Counter("sim", "watchdog_trips"),
		ctrSkipped:       reg.Counter("sim", "skipped_cycles"),
	}
	for i := 0; i < cfg.NumClients; i++ {
		f.Ports = append(f.Ports, tilelink.NewClientPort(
			fmt.Sprintf("tlc%d", i), cfg.BeatBytes, cfg.L2.LineBytes, cfg.LinkLatency))
	}
	f.Mem = mem.New(cfg.Mem)
	f.L2 = l2.New(cfg.L2, f.Ports, f.Mem)
	return f
}

// Attach registers the clients; clients[i] must drive Ports[i].
func (f *Fabric) Attach(clients ...FabricClient) {
	if len(clients) != len(f.Ports) {
		panic(fmt.Sprintf("sim: %d fabric clients for %d ports", len(clients), len(f.Ports)))
	}
	f.clients = clients
}

// Now returns the current cycle.
func (f *Fabric) Now() int64 { return f.now }

// Metrics returns the shared registry.
func (f *Fabric) Metrics() *metrics.Registry { return f.reg }

// SetFastForward toggles the next-event clock (on by default).
func (f *Fabric) SetFastForward(on bool) { f.fastForward = on }

// Step advances one cycle: memory first, then the L2, then every client, so
// a message sent at cycle t is visible to its consumer no earlier than t+1,
// exactly as in System.Step.
func (f *Fabric) Step() {
	f.Mem.Tick(f.now)
	f.L2.Tick(f.now)
	for _, c := range f.clients {
		c.Tick(f.now)
	}
	f.now++
}

// Quiescent reports whether the memory system has fully drained: no
// outstanding DRAM requests, no active L2 transaction, nothing in flight on
// any channel.
func (f *Fabric) Quiescent() bool {
	if f.Mem.Outstanding() > 0 || f.L2.Busy() {
		return false
	}
	for _, p := range f.Ports {
		if p.Pending() > 0 {
			return false
		}
	}
	return true
}

// ArmWatchdog enables the forward-progress watchdog, as System.ArmWatchdog:
// if no TileLink message moves for limit cycles, StepGuarded returns a
// *HangError. Zero disables. Clients have no commit counters; link activity
// is the progress signal, which suffices because every client action either
// sends a message or is a bounded internal delay far below any sane limit.
func (f *Fabric) ArmWatchdog(limit int64) {
	f.wdLimit = limit
	f.wdLastSig = f.progressSignature()
	f.wdLastChange = f.now
	if f.par != nil {
		f.armFabShards()
	}
}

func (f *Fabric) progressSignature() uint64 {
	var sig uint64
	for _, p := range f.Ports {
		sig += p.Events()
	}
	return sig
}

// buildHangReport snapshots the fabric. Core and L1 sections stay empty —
// there are none — so the report shape matches System's and downstream
// tooling (artifact writers, classify) needs no second code path.
func (f *Fabric) buildHangReport(reason string) *HangReport {
	r := &HangReport{
		Cycle:          f.now,
		Reason:         reason,
		L2:             f.L2.Debug(),
		MemOutstanding: f.Mem.Outstanding(),
	}
	for _, p := range f.Ports {
		r.Links = append(r.Links, p.Debug())
	}
	return r
}

// StepGuarded advances one cycle under the watchdog and panic guard,
// mirroring System.StepGuarded.
func (f *Fabric) StepGuarded() (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			rep := f.buildHangReport("panic")
			rep.Panic = fmt.Sprint(rec)
			rep.Stack = string(debug.Stack())
			err = &HangError{Report: rep}
		}
	}()
	f.Step()
	if f.wdLimit <= 0 {
		return nil
	}
	if sig := f.progressSignature(); sig != f.wdLastSig {
		f.wdLastSig = sig
		f.wdLastChange = f.now
		return nil
	}
	if f.now-f.wdLastChange < f.wdLimit {
		return nil
	}
	f.ctrWatchdogTrips.Inc()
	rep := f.buildHangReport("no-progress")
	rep.Window = f.now - f.wdLastChange
	return &HangError{Report: rep}
}

// nextEventCycle folds every fabric component's NextEvent through the shared
// fold helpers (fold.go), bailing at the floor exactly as System's fold does.
//
//skipit:hotpath
func (f *Fabric) nextEventCycle(last int64) int64 {
	next := foldNextAll(last, tilelink.NoEvent, f.clients)
	next = foldNext(last, next, f.L2)
	next = foldNextAll(last, next, f.Ports)
	next = foldNext(last, next, f.Mem)
	return next
}

// FastForward advances the clock over a provably idle window, clamped to the
// watchdog trip cycle and any caller limits — the same contract as
// System.FastForward, so episode verdicts are byte-identical with the clock
// on or off.
//
//skipit:hotpath
func (f *Fabric) FastForward(limits ...int64) int64 {
	if !f.fastForward {
		return 0
	}
	next := f.nextEventCycle(f.now - 1)
	if next <= f.now {
		return 0
	}
	if f.wdLimit > 0 {
		if d := f.wdLastChange + f.wdLimit - 1; d < next {
			next = d
		}
	}
	for _, l := range limits {
		if l < next {
			next = l
		}
	}
	if next >= tilelink.NoEvent || next <= f.now {
		return 0
	}
	skipped := next - f.now
	f.now = next
	f.ctrSkipped.Add(uint64(skipped))
	return skipped
}
