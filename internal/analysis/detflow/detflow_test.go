package detflow_test

import (
	"testing"

	"skipit/internal/analysis/antest"
	"skipit/internal/analysis/detflow"
)

// TestDetflow proves taint crosses package boundaries: the svc fixture
// earns Tainted facts (and produces no diagnostics of its own — it is
// outside simulator scope), while the sim and hot fixtures report findings
// whose witness chains bottom out at source lines in svc. Because the sim
// and hot passes never see svc's bodies — only its exported facts — this is
// also the export/import round-trip test for the driver's fact store.
func TestDetflow(t *testing.T) {
	antest.Run(t, detflow.Analyzer,
		antest.Dir(t, "detflow/internal/svc"),
		antest.Dir(t, "detflow/internal/sim"),
		antest.Dir(t, "detflow/hot"))
}
