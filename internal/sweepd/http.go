package sweepd

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"skipit/internal/introspect"
)

// The HTTP layer is a thin JSON shim over the Coordinator's methods,
// mounted on the introspection server (one listener serves /metrics,
// /events, and the job API). Every endpoint is a POST of a JSON body from
// wire.go; /api/sweepd/state additionally answers GET for humans.

// Mount registers the coordinator's job API on an introspect server and
// wires coordinator state transitions into the server's SSE event stream.
// Call it before the coordinator starts taking requests: the Events hook is
// installed unsynchronized.
func Mount(srv *introspect.Server, c *Coordinator) {
	if c.cfg.Events == nil {
		c.cfg.Events = srv.PublishEvent
	}
	srv.Handle("/api/sweepd/submit", post(c.Submit))
	srv.Handle("/api/sweepd/register", post(c.Register))
	srv.Handle("/api/sweepd/lease", post(c.Lease))
	srv.Handle("/api/sweepd/heartbeat", post(c.Heartbeat))
	srv.Handle("/api/sweepd/complete", post(c.Complete))
	srv.Handle("/api/sweepd/results", post(c.Results))
	srv.Handle("/api/sweepd/state", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.State())
	}))
}

// Handler returns the job API as a standalone http.Handler, for embedding
// without an introspection server (tests use this with httptest-style
// in-process transports).
func Handler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/api/sweepd/submit", post(c.Submit))
	mux.Handle("/api/sweepd/register", post(c.Register))
	mux.Handle("/api/sweepd/lease", post(c.Lease))
	mux.Handle("/api/sweepd/heartbeat", post(c.Heartbeat))
	mux.Handle("/api/sweepd/complete", post(c.Complete))
	mux.Handle("/api/sweepd/results", post(c.Results))
	mux.Handle("/api/sweepd/state", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.State())
	}))
	return mux
}

// post adapts a typed coordinator method into a JSON POST handler.
func post[Req, Resp any](fn func(Req) (Resp, error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
		if err != nil {
			http.Error(w, fmt.Sprintf("reading body: %v", err), http.StatusBadRequest)
			return
		}
		var req Req
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, fmt.Sprintf("decoding request: %v", err), http.StatusBadRequest)
			return
		}
		resp, err := fn(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, resp)
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client disconnects are not actionable
}
