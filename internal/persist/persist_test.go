package persist

import (
	"math/rand"
	"testing"

	"skipit/internal/memsim"
)

func setup(t *testing.T) *memsim.Hierarchy {
	t.Helper()
	return memsim.New(memsim.DefaultConfig(2))
}

func policies(h *memsim.Hierarchy) []Policy {
	return []Policy{
		NewPlain(h, false),
		NewSkipIt(h, false),
		NewFliT(h, true, 0, 0, false),
		NewFliT(h, false, 1<<16, 1<<41, false),
		NewLinkAndPersist(h, false),
	}
}

func TestPolicyNames(t *testing.T) {
	h := setup(t)
	want := []string{"plain", "skipit", "flit-adjacent", "flit-hash[65536]", "link-and-persist"}
	for i, p := range policies(h) {
		if p.Name() != want[i] {
			t.Errorf("policy %d name = %q, want %q", i, p.Name(), want[i])
		}
	}
}

// The core safety property of every elision scheme: after Store(addr);
// Flush(addr); Fence(), the line must not be dirty anywhere.
func TestStoreFlushFencePersists(t *testing.T) {
	for _, mk := range []func(h *memsim.Hierarchy) Policy{
		func(h *memsim.Hierarchy) Policy { return NewPlain(h, false) },
		func(h *memsim.Hierarchy) Policy { return NewSkipIt(h, false) },
		func(h *memsim.Hierarchy) Policy { return NewFliT(h, true, 0, 0, false) },
		func(h *memsim.Hierarchy) Policy { return NewFliT(h, false, 64, 1<<41, false) },
		func(h *memsim.Hierarchy) Policy { return NewLinkAndPersist(h, false) },
	} {
		h := setup(t)
		p := mk(h)
		for i := uint64(0); i < 100; i++ {
			addr := 0x10000 + i*8
			p.Store(0, addr)
			p.Flush(0, addr)
			p.Fence(0)
			if h.DirtyAnywhere(addr) {
				t.Fatalf("%s: dirty after store+flush+fence at %#x", p.Name(), addr)
			}
		}
	}
}

// Randomized elision-safety: interleave stores and flushes from two threads;
// after flushing an address (and with no store by anyone since), the line is
// clean.
func TestElisionSafetyRandom(t *testing.T) {
	for _, name := range []string{"skipit", "flit-adjacent", "flit-hash", "lap"} {
		h := setup(t)
		var p Policy
		switch name {
		case "skipit":
			p = NewSkipIt(h, false)
		case "flit-adjacent":
			p = NewFliT(h, true, 0, 0, false)
		case "flit-hash":
			p = NewFliT(h, false, 32, 1<<41, false) // tiny table: many collisions
		case "lap":
			p = NewLinkAndPersist(h, false)
		}
		rng := rand.New(rand.NewSource(11))
		words := make([]uint64, 16)
		for i := range words {
			words[i] = 0x20000 + uint64(i)*8
		}
		for i := 0; i < 3000; i++ {
			tid := rng.Intn(2)
			w := words[rng.Intn(len(words))]
			if rng.Intn(2) == 0 {
				p.Store(tid, w)
			} else {
				p.Flush(tid, w)
			}
		}
		// Drain: flush every word; everything must be persisted.
		for _, w := range words {
			p.Flush(0, w)
		}
		p.Fence(0)
		for _, w := range words {
			if h.DirtyAnywhere(w) {
				t.Fatalf("%s: word %#x dirty after final flush pass", p.Name(), w)
			}
		}
	}
}

func TestSkipItCheaperOnRedundantFlushes(t *testing.T) {
	// The pattern that dominates §7.4's automatic mode: read a node, then
	// write it back "just in case". With plain CBO.FLUSH the line is
	// invalidated and refetched every iteration; with Skip It the flush is
	// dropped and the line stays hot.
	h := setup(t)
	plain := NewPlain(h, false)
	skip := NewSkipIt(h, false)

	plain.Store(0, 0x1000)
	plain.Flush(0, 0x1000)
	base := h.Clock(0)
	for i := 0; i < 10; i++ {
		plain.Load(0, 0x1000)
		plain.Flush(0, 0x1000)
	}
	plainCost := h.Clock(0) - base

	skip.Store(1, 0x9000)
	skip.Flush(1, 0x9000)
	skip.Load(1, 0x9000) // refetch once: installs with skip=1
	base = h.Clock(1)
	for i := 0; i < 10; i++ {
		skip.Load(1, 0x9000)
		skip.Flush(1, 0x9000)
	}
	skipCost := h.Clock(1) - base
	if skipCost*2 >= plainCost {
		t.Fatalf("Skip It read+flush loop (%.0f cy) not ~2x cheaper than plain (%.0f cy)", skipCost, plainCost)
	}
	if h.Stats().FlushDropsL1 != 10 {
		t.Fatalf("FlushDropsL1 = %d, want 10", h.Stats().FlushDropsL1)
	}
}

func TestFliTElidesFlushOfPersistedData(t *testing.T) {
	h := setup(t)
	f := NewFliT(h, true, 0, 0, false)
	f.Store(0, 0x1000) // eager flush inside
	st0 := h.Stats().Flushes
	f.Flush(1, 0x1000) // reader-side flush: counter is 0 -> elided
	if got := h.Stats().Flushes - st0; got != 0 {
		t.Fatalf("FliT issued %d flushes for persisted data, want 0", got)
	}
}

func TestFliTHashCollisionsAreConservative(t *testing.T) {
	h := setup(t)
	f := NewFliT(h, false, 1, 1<<41, false) // one counter: everything collides
	// A store in flight on one address must force flushes on another.
	f.counters[0].Add(1) // simulate a concurrent in-flight store
	st0 := h.Stats().Flushes
	f.Flush(0, 0x5000)
	if got := h.Stats().Flushes - st0; got != 1 {
		t.Fatalf("colliding FliT flush elided despite in-flight store (%d flushes)", got)
	}
	f.counters[0].Add(-1)
}

func TestLAPSkipsUnmarkedWords(t *testing.T) {
	h := setup(t)
	l := NewLinkAndPersist(h, false)
	l.Store(0, 0x1000)
	l.Flush(0, 0x1000) // clears the mark
	st0 := h.Stats().Flushes
	l.Flush(0, 0x1000)
	if got := h.Stats().Flushes - st0; got != 0 {
		t.Fatalf("LAP re-flushed an unmarked word (%d flushes)", got)
	}
}

func TestLAPChargesMaskingOnLoads(t *testing.T) {
	h := setup(t)
	l := NewLinkAndPersist(h, false)
	l.Load(0, 0x1000)
	withMask := h.Clock(0)
	h2 := setup(t)
	p := NewPlain(h2, false)
	p.Load(0, 0x1000)
	if withMask <= h2.Clock(0) {
		t.Fatal("LAP load not charged the masking cycle")
	}
}

func TestFliTAdjacentPadsNodes(t *testing.T) {
	h := setup(t)
	if NewFliT(h, true, 0, 0, false).NodePad() == 0 {
		t.Error("FliT adjacent reports zero node padding")
	}
	if NewFliT(h, false, 64, 1<<41, false).NodePad() != 0 {
		t.Error("FliT hash reports node padding")
	}
	if NewSkipIt(h, false).NodePad() != 0 {
		t.Error("Skip It reports node padding")
	}
}

func TestEnvModeFlushCounts(t *testing.T) {
	// Automatic flushes traversal reads; NVTraverse flushes only critical
	// reads and writes; manual flushes only commits/new nodes.
	counts := map[Mode]uint64{}
	for _, mode := range Modes() {
		h := setup(t)
		env := &Env{Pol: NewPlain(h, false), Mode: mode}
		for i := uint64(0); i < 10; i++ {
			env.ReadTraverse(0, 0x1000+i*64)
		}
		env.ReadCritical(0, 0x2000)
		env.Write(0, 0x3000)
		env.WriteCommit(0, 0x4000)
		env.FlushNew(0, 0x3000)
		env.EndOp(0, true)
		counts[mode] = h.Stats().Flushes
	}
	if !(counts[Automatic] > counts[NVTraverse] && counts[NVTraverse] > counts[Manual]) {
		t.Fatalf("flush ordering wrong: automatic=%d nvtraverse=%d manual=%d",
			counts[Automatic], counts[NVTraverse], counts[Manual])
	}
}

func TestNonPersistentIssuesNothing(t *testing.T) {
	h := setup(t)
	env := &Env{Pol: NewPlain(h, false), NonPersistent: true}
	env.ReadTraverse(0, 0x1000)
	env.WriteCommit(0, 0x2000)
	env.EndOp(0, true)
	st := h.Stats()
	if st.Flushes != 0 || st.Fences != 0 {
		t.Fatalf("non-persistent env issued flushes=%d fences=%d", st.Flushes, st.Fences)
	}
}

func TestEnvReadOnlyOpFences(t *testing.T) {
	h := setup(t)
	env := &Env{Pol: NewPlain(h, false), Mode: Automatic}
	env.ReadTraverse(0, 0x1000)
	env.EndOp(0, false)
	if h.Stats().Fences != 1 {
		t.Fatal("automatic mode must fence read-only operations")
	}

	h2m := setup(t)
	env2 := &Env{Pol: NewPlain(h2m, false), Mode: Manual}
	env2.ReadTraverse(0, 0x1000)
	env2.EndOp(0, false)
	if h2m.Stats().Fences != 0 {
		t.Fatal("manual mode must not fence read-only operations")
	}
}
