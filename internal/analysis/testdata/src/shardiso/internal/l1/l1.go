// Package l1fix is the shardiso fixture's core-domain component: its cache
// type is claimed for the core shard, so every method here exports a
// Touches fact naming the core domain.
package l1fix

// DCache is core-shard state.
//
//skipit:shard-owned core
type DCache struct {
	lines []uint64
	hits  int
}

// Lookup reads and (on a hit) writes core state.
func (c *DCache) Lookup(addr uint64) bool {
	for _, l := range c.lines {
		if l == addr {
			c.hits++
			return true
		}
	}
	return false
}

// Insert writes core state.
func (c *DCache) Insert(addr uint64) {
	c.lines = append(c.lines, addr)
}
