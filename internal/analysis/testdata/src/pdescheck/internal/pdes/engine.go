// Package pdesfix is the parallel-scheduler fixture. Its import path ends in
// internal/pdes — a simulator package under the determinism rules, and the
// one package family where a //skipit:parallel-scheduler directive may waive
// the goroutine ban, line by line.
package pdesfix

import "time"

func workers(n int, done chan struct{}) {
	// Trailing directive waives its own line.
	for w := 0; w < n; w++ {
		go func() { done <- struct{}{} }() //skipit:parallel-scheduler conservative-lookahead workers rendezvous at the barrier
	}

	// Standalone directive waives the line below.
	//skipit:parallel-scheduler drainer joins before results are read
	go func() { close(done) }()

	// Unwaived goroutines stay findings even inside the scheduler package.
	go func() { <-done }() // want `goroutine launched in a simulator package`

	// A reasonless directive waives nothing and is itself a finding.
	go func() {}() /* want `goroutine launched in a simulator package` `directive needs a reason` */ //skipit:parallel-scheduler
}

// The waiver is goroutine-only: every other simulator rule still applies to
// the scheduler, directive or not.
func hostClock() time.Time {
	return time.Now() /* want `wall-clock read time\.Now` */ //skipit:parallel-scheduler timing the barrier
}
